package flowsched

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/obs"
)

func TestSimulateRisk(t *testing.T) {
	p := prepared(t)
	res, err := p.SimulateRisk([]string{"performance"}, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 500 {
		t.Fatalf("trials = %d", len(res.Durations))
	}
	// Fig4 defaults: editor 6h×~1.6 iters + simulator 3h×~2.2 iters: mean
	// span well above the single-iteration sum (9h) and below the cap.
	mean := res.Mean()
	if mean < 9*time.Hour || mean > 40*time.Hour {
		t.Fatalf("mean span = %v", mean)
	}
	if res.Percentile(0.9) <= res.Percentile(0.1) {
		t.Fatal("no distribution spread")
	}
	// Chain flow: both activities are always critical.
	if res.Criticality["Create"] != 1 || res.Criticality["Simulate"] != 1 {
		t.Fatalf("criticality = %v", res.Criticality)
	}
	// Reproducible.
	res2, _ := p.SimulateRisk([]string{"performance"}, 500, 11)
	if res.Mean() != res2.Mean() {
		t.Fatal("risk analysis not reproducible")
	}
}

func TestSimulateRiskConsistentWithExecution(t *testing.T) {
	// The risk model and the real execution share the tool profiles, so
	// the actual span must land inside the sampled range.
	p := prepared(t)
	res, err := p.SimulateRisk([]string{"performance"}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := p.Run([]string{"performance"}, false)
	if err != nil {
		t.Fatal(err)
	}
	var actual time.Duration
	for _, o := range exec.Outcomes {
		actual += p.Calendar().WorkBetween(o.Started, o.Finished)
	}
	lo := res.Durations[0]
	hi := res.Durations[len(res.Durations)-1]
	if actual < lo/2 || actual > hi*2 {
		t.Fatalf("actual %v far outside sampled range [%v, %v]", actual, lo, hi)
	}
}

func TestSimulateRiskWorkerEquivalence(t *testing.T) {
	// The facade's parallel default must be bit-identical to a forced
	// serial run: same shards, same per-shard streams, any worker count.
	p := prepared(t)
	serial, err := p.SimulateRiskWith([]string{"performance"},
		RiskOptions{Trials: 800, Seed: 23, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := p.SimulateRiskWith([]string{"performance"},
			RiskOptions{Trials: 800, Seed: 23, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Durations {
			if got.Durations[i] != serial.Durations[i] {
				t.Fatalf("workers=%d: Durations[%d] = %v, serial %v",
					workers, i, got.Durations[i], serial.Durations[i])
			}
		}
		for name, want := range serial.Criticality {
			if got.Criticality[name] != want {
				t.Fatalf("workers=%d: Criticality[%s] differs", workers, name)
			}
		}
		for name, want := range serial.MeanIterObserved {
			if got.MeanIterObserved[name] != want {
				t.Fatalf("workers=%d: MeanIterObserved[%s] differs", workers, name)
			}
		}
	}
}

func TestSimulateRiskDefaultTrials(t *testing.T) {
	p := prepared(t)
	res, err := p.SimulateRiskWith([]string{"performance"}, RiskOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1000 {
		t.Fatalf("default trials = %d", len(res.Durations))
	}
}

func TestSimulateRiskErrors(t *testing.T) {
	p := newProject(t)
	if _, err := p.SimulateRisk([]string{"performance"}, 10, 1); err == nil ||
		!strings.Contains(err.Error(), "no tool bound") {
		t.Fatalf("err = %v, want no-tool", err)
	}
	if _, err := p.SimulateRisk([]string{"ghost"}, 10, 1); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSimulateRiskDeterministicUnderTracing(t *testing.T) {
	// Request-scoped tracing must be a pure observer: with a per-request
	// tracer capturing the view and a parent span in place (the serving
	// path's exact shape), the sampled distribution stays bit-identical
	// to the untraced serial run for any worker count.
	p, err := New(Fig4Schema, Options{Designer: "ewj", Obs: ObsOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	serial, err := p.SimulateRiskWith([]string{"performance"},
		RiskOptions{Trials: 800, Seed: 23, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		tr := obs.NewTracer(obs.DefaultMaxSpans)
		v, err := p.View()
		if err != nil {
			t.Fatal(err)
		}
		root := tr.Start(nil, "serve.risk", v.Now())
		v = v.CaptureTrace(tr, root)
		got, err := v.SimulateRiskWith([]string{"performance"},
			RiskOptions{Trials: 800, Seed: 23, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		root.End(v.Now())
		for i := range serial.Durations {
			if got.Durations[i] != serial.Durations[i] {
				t.Fatalf("workers=%d traced: Durations[%d] = %v, serial untraced %v",
					workers, i, got.Durations[i], serial.Durations[i])
			}
		}
		spans := tr.Spans()
		if err := obs.ValidateContainment(spans); err != nil {
			t.Fatalf("workers=%d: containment: %v", workers, err)
		}
		var sawMonte bool
		for _, sp := range spans {
			if sp.Name == "monte.simulate" {
				sawMonte = true
			}
		}
		if !sawMonte {
			t.Fatalf("workers=%d: request trace lacks the monte subtree", workers)
		}
	}
}

func TestProjectFlightRecorder(t *testing.T) {
	p, err := New(Fig4Schema, Options{Designer: "ewj", Obs: ObsOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SimulateRisk([]string{"performance"}, 200, 5); err != nil {
		t.Fatal(err)
	}
	recent, slowest := p.FlightRecords()
	if len(recent) != 1 || len(slowest) != 1 {
		t.Fatalf("flight tiers = %d/%d, want 1/1", len(recent), len(slowest))
	}
	rec := recent[0]
	if rec.Route != "risk" || rec.SampledTrials == 0 || rec.TraceID == "" {
		t.Fatalf("flight record = %+v", rec)
	}
	if txt := p.FlightText(); !strings.Contains(txt, "risk") {
		t.Fatalf("FlightText lacks the risk record:\n%s", txt)
	}
	if errs := p.LintMetrics(); len(errs) != 0 {
		t.Fatalf("project registry lint: %v", errs)
	}
	// Uninstrumented projects stay nil-safe.
	bare, err := New(Fig4Schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r, s := bare.FlightRecords(); r != nil || s != nil {
		t.Fatal("uninstrumented project has flight records")
	}
	if errs := bare.LintMetrics(); errs != nil {
		t.Fatalf("uninstrumented lint: %v", errs)
	}
}
