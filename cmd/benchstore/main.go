// Command benchstore measures the snapshot-isolated store and the
// what-if scenario engine, recording the numbers in BENCH_scenarios.json
// — the repo's performance-trajectory file for the copy-on-write path.
// Each invocation appends one labelled entry, so successive runs across
// PRs accumulate into a history.
//
//	benchstore -label after-cow                  # full sweep, append
//	benchstore -entries 1000,100000 -out /tmp/b.json
//
// Three families are measured:
//
//   - store: Snapshot and ForkAt over databases of growing entry count,
//     against the pre-refactor way to get an isolated copy (JSON
//     marshal + unmarshal). COW forking is O(containers), so its ns/op
//     should stay flat while the JSON clone grows linearly.
//   - scenarios: a what-if sweep over the ASIC flow (the E8 exhibit's
//     workload) across worker counts; outcomes are bit-identical for
//     every worker count, only the wall time moves.
//   - risk_sweeps: the same sweep with the Monte-Carlo risk dimension
//     on, across scenario counts. The baseline simulation is shared
//     through the subtree trial-stream memo, so the sampled
//     activity-trial count grows with the edited subtrees while the
//     naive cost ((scenarios+1) × activities × trials) grows with the
//     scenario count — the gap is the memo's savings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/monte"
	"flowsched/internal/scenario"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// storePoint compares COW forking with a JSON clone at one store size.
type storePoint struct {
	Containers  int   `json:"containers"`
	Entries     int   `json:"entries"`
	SnapshotNs  int64 `json:"snapshot_ns_per_op"`
	ForkNs      int64 `json:"fork_ns_per_op"`
	JSONCloneNs int64 `json:"json_clone_ns_per_op"`
	// ForkSpeedup is json_clone / fork (how much cheaper a COW fork is
	// than serializing the database to get an isolated copy).
	ForkSpeedup float64 `json:"fork_speedup_vs_json"`
}

// scenarioPoint is one measured what-if sweep configuration.
type scenarioPoint struct {
	Scenarios  int   `json:"scenarios"`
	Workers    int   `json:"workers"`
	Iterations int   `json:"iterations"`
	NsPerOp    int64 `json:"ns_per_op"`
}

// riskSweepPoint measures the sweep's risk dimension at one scenario
// count. Every activity-trial a scenario simulation needs is either
// sampled fresh or served from the shared memo, so sampled+reused is
// exactly the naive cold cost — the reused share is the saving.
type riskSweepPoint struct {
	Scenarios     int     `json:"scenarios"`
	Trials        int     `json:"trials"`
	NsPerOp       int64   `json:"ns_per_op"`
	SampledTrials int64   `json:"sampled_activity_trials"`
	ReusedTrials  int64   `json:"reused_activity_trials"`
	NaiveTrials   int64   `json:"naive_activity_trials"`
	SavingsPct    float64 `json:"sampling_savings_pct"`
	// NoRiskNs is the same sweep with the risk dimension off, and
	// ColdSimNs one cold simulation of the baseline model — so the
	// pre-memo cost of adding risk to the sweep reconstructs as
	// NoRiskNs + (scenarios+1)×ColdSimNs, against NsPerOp measured.
	NoRiskNs  int64 `json:"no_risk_ns_per_op"`
	ColdSimNs int64 `json:"cold_sim_ns_per_op"`
}

// entry is one benchstore invocation.
type entry struct {
	Label     string          `json:"label"`
	Date      string          `json:"date"`
	GoVersion string          `json:"go"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	CPUs      int             `json:"cpus"`
	Store     []storePoint    `json:"store"`
	Scenarios []scenarioPoint `json:"scenarios"`
	// RiskSweeps holds the risk-dimension scaling family.
	RiskSweeps []riskSweepPoint `json:"risk_sweeps,omitempty"`
}

// file is the BENCH_scenarios.json document.
type file struct {
	Description string  `json:"description"`
	Benchmarks  []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_scenarios.json", "trajectory file to append to")
	label := flag.String("label", "run", "label for this entry")
	entriesFlag := flag.String("entries", "100,1000,10000", "comma-separated store entry counts")
	containers := flag.Int("containers", 16, "containers in the benchmark store")
	workersFlag := flag.String("workers", "", "comma-separated scenario worker counts (default \"1,<cores>\")")
	scenariosFlag := flag.String("scenarios", "5,25,100", "comma-separated scenario counts for the risk-dimension sweep")
	riskTrials := flag.Int("risktrials", 1000, "Monte-Carlo trials per scenario in the risk-dimension sweep")
	flag.Parse()

	entrySweep, err := parseInts(*entriesFlag)
	if err != nil {
		fatal("bad -entries: %v", err)
	}
	if *workersFlag == "" {
		*workersFlag = fmt.Sprintf("1,%d", runtime.GOMAXPROCS(0))
	}
	workers, err := parseInts(*workersFlag)
	if err != nil {
		fatal("bad -workers: %v", err)
	}
	workers = dedupe(workers)
	scenarioCounts, err := parseInts(*scenariosFlag)
	if err != nil {
		fatal("bad -scenarios: %v", err)
	}

	doc := file{Description: "Copy-on-write store and scenario-engine trajectory (cmd/benchstore: Snapshot/ForkAt vs JSON clone, what-if sweeps over the E8 ASIC workload)"}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			fatal("existing %s is not a benchstore file: %v", *out, err)
		}
	}

	e := entry{
		Label: *label, Date: time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
	}

	for _, n := range entrySweep {
		db := populated(*containers, n)
		p := storePoint{Containers: *containers, Entries: n}
		p.SnapshotNs, _ = measure(func() error { db.Snapshot(); return nil })
		p.ForkNs, _ = measure(func() error { db.ForkAt(nil); return nil })
		p.JSONCloneNs, _ = measure(func() error { return jsonClone(db) })
		p.ForkSpeedup = float64(p.JSONCloneNs) / float64(p.ForkNs)
		fmt.Printf("store   entries=%-7d snapshot %8d ns  fork %8d ns  json-clone %10d ns  (%.0fx)\n",
			n, p.SnapshotNs, p.ForkNs, p.JSONCloneNs, p.ForkSpeedup)
		e.Store = append(e.Store, p)
	}

	edits := sweepEdits()
	for _, w := range workers {
		m := asicManager()
		opt := scenario.Options{Workers: w}
		targets := m.Schema.PrimaryOutputs()
		ns, iters := measure(func() error {
			_, err := scenario.Sweep(m, targets, edits, opt)
			return err
		})
		p := scenarioPoint{Scenarios: len(edits) + 1, Workers: w, Iterations: iters, NsPerOp: ns}
		fmt.Printf("whatif  scenarios=%-2d workers=%-2d %12d ns/op\n", p.Scenarios, w, ns)
		e.Scenarios = append(e.Scenarios, p)
	}

	for _, sc := range scenarioCounts {
		m := asicManager()
		edits := riskEdits(sc)
		targets := m.Schema.PrimaryOutputs()
		opt := scenario.Options{Risk: &scenario.RiskSpec{Trials: *riskTrials, Seed: 1995}}
		var rep *scenario.Report
		ns, _ := measure(func() error {
			r, err := scenario.Sweep(m, targets, edits, opt)
			rep = r
			return err
		})
		p := riskSweepPoint{
			Scenarios: sc, Trials: *riskTrials, NsPerOp: ns,
			SampledTrials: rep.RiskSampledTrials,
			ReusedTrials:  rep.RiskReusedTrials,
			NaiveTrials:   rep.RiskSampledTrials + rep.RiskReusedTrials,
		}
		if p.NaiveTrials > 0 {
			p.SavingsPct = 100 * float64(p.ReusedTrials) / float64(p.NaiveTrials)
		}
		p.NoRiskNs, _ = measure(func() error {
			_, err := scenario.Sweep(m, targets, edits, scenario.Options{})
			return err
		})
		tree, err := m.ExtractTree(targets...)
		if err != nil {
			fatal("%v", err)
		}
		models, err := scenario.RiskModels(m, tree)
		if err != nil {
			fatal("%v", err)
		}
		p.ColdSimNs, _ = measure(func() error {
			_, err := monte.Simulate(models, monte.Config{Trials: *riskTrials, Seed: 1995})
			return err
		})
		fmt.Printf("risk    scenarios=%-3d trials=%-6d %12d ns/op  sampled %-8d reused %-8d (%.1f%% saved)  norisk %d ns  coldsim %d ns\n",
			sc, *riskTrials, ns, p.SampledTrials, p.ReusedTrials, p.SavingsPct, p.NoRiskNs, p.ColdSimNs)
		e.RiskSweeps = append(e.RiskSweeps, p)
	}

	doc.Benchmarks = append(doc.Benchmarks, e)
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("appended entry %q to %s\n", *label, *out)
}

// populated builds a store with the given shape: entries spread evenly
// over the containers, every entry carrying a small payload.
func populated(containers, entries int) *store.DB {
	db := store.NewDB()
	at := vclock.Epoch
	names := make([]string, containers)
	for i := range names {
		names[i] = fmt.Sprintf("class%02d", i)
		if _, err := db.CreateContainer(names[i], store.ExecutionSpace, ""); err != nil {
			fatal("%v", err)
		}
	}
	for i := 0; i < entries; i++ {
		name := names[i%containers]
		if _, err := db.Put(name, at, map[string]any{"seq": i}); err != nil {
			fatal("%v", err)
		}
	}
	return db
}

// jsonClone produces an isolated copy the pre-COW way: serialize the
// whole database and load it back.
func jsonClone(db *store.DB) error {
	blob, err := json.Marshal(db)
	if err != nil {
		return err
	}
	clone := store.NewDB()
	return json.Unmarshal(blob, clone)
}

// asicManager builds the E8 workload: the ASIC flow with simulated
// tools bound and primary inputs imported.
func asicManager() *engine.Manager {
	sch := workload.ASIC()
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "benchstore")
	if err != nil {
		fatal("%v", err)
	}
	if err := m.BindDefaults(); err != nil {
		fatal("%v", err)
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
			fatal("%v", err)
		}
	}
	return m
}

// riskEdits builds n single-activity perturbations cycling over the
// ASIC flow's late-stage activities — the memo's target regime, where
// each scenario dirties a shallow subtree and the baseline's upstream
// trial streams carry the rest.
func riskEdits(n int) []scenario.Edit {
	acts := []string{"DRC", "LVS", "STA", "GateSim", "Extract"}
	edits := make([]scenario.Edit, n)
	for i := range edits {
		edits[i] = scenario.Edit{
			Name:  fmt.Sprintf("s%03d", i),
			Scale: map[string]float64{acts[i%len(acts)]: 1 + 0.01*float64(i+1)},
		}
	}
	return edits
}

func sweepEdits() []scenario.Edit {
	return []scenario.Edit{
		{Name: "synth-slow", Scale: map[string]float64{"Synthesize": 1.5}},
		{Name: "route-slip", Delay: map[string]time.Duration{"Route": 24 * time.Hour}},
		{Name: "fast-sim", Scale: map[string]float64{"GateSim": 0.5}},
		{Name: "team", Parallel: true},
	}
}

// measure times one operation with testing.Benchmark, returning ns/op
// and the iteration count it settled on.
func measure(op func() error) (int64, int) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r.NsPerOp(), r.N
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("value %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func dedupe(ns []int) []int {
	seen := make(map[int]bool, len(ns))
	var out []int
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchstore: "+format+"\n", args...)
	os.Exit(1)
}
