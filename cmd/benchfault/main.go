// Command benchfault measures the cost of the fault-injection hooks
// when they are armed but quiet, and records it in BENCH_fault.json,
// the robustness counterpart of BENCH_risk.json / BENCH_obs.json. Each
// workload is measured twice — plain, and with a zero-probability
// fault plan wrapped around every tool binding — so the recorded
// overhead is the pure per-run price of the injector (one seeded draw
// plus the history append), not of any injected fault.
//
//	benchfault -label after-fault-substrate   # append to BENCH_fault.json
//	benchfault -out /tmp/f.json               # custom file
//
// Workloads:
//
//	risk-fig4: the serial BenchmarkE6_RiskSimulation workload (1000
//	  Monte-Carlo trials over the Fig. 4 flow); the wrapped variant
//	  reads tool profiles through the injector's Profile forwarding.
//	exec-asic: one tracked plan+execute of the full ASIC flow; the
//	  wrapped variant pays one fault decision per tool run.
//
// The acceptance budget is <2% overhead on the risk workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowsched"
)

// cell is one workload measured plain and fault-wrapped.
type cell struct {
	Workload       string  `json:"workload"`
	Iterations     int     `json:"iterations"`
	NsPerOpPlain   int64   `json:"ns_per_op_plain"`
	NsPerOpWrapped int64   `json:"ns_per_op_wrapped"`
	OverheadPct    float64 `json:"overhead_pct"`
}

// entry is one benchfault invocation.
type entry struct {
	Label     string `json:"label"`
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Results   []cell `json:"results"`
}

// file is the BENCH_fault.json document.
type file struct {
	Description string  `json:"description"`
	Benchmarks  []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_fault.json", "trajectory file to append to")
	label := flag.String("label", "run", "label for this entry")
	flag.Parse()

	doc := file{Description: "Fault-hook overhead trajectory: plain vs quiet-wrapped tools (cmd/benchfault; budget <2% on the risk workload)"}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			fatal("existing %s is not a benchfault file: %v", *out, err)
		}
	}

	e := entry{
		Label: *label, Date: time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
	}
	for _, w := range []struct {
		name string
		run  func(wrapped bool) func(b *testing.B)
	}{
		{"risk-fig4", riskWorkload},
		{"exec-asic", execWorkload},
	} {
		plain := testing.Benchmark(w.run(false))
		wrapped := testing.Benchmark(w.run(true))
		c := cell{
			Workload:       w.name,
			Iterations:     plain.N,
			NsPerOpPlain:   plain.NsPerOp(),
			NsPerOpWrapped: wrapped.NsPerOp(),
		}
		c.OverheadPct = 100 * (float64(c.NsPerOpWrapped) - float64(c.NsPerOpPlain)) / float64(c.NsPerOpPlain)
		fmt.Printf("%-10s plain %12d ns/op  wrapped %12d ns/op  overhead %+.2f%%\n",
			w.name, c.NsPerOpPlain, c.NsPerOpWrapped, c.OverheadPct)
		e.Results = append(e.Results, c)
	}

	doc.Benchmarks = append(doc.Benchmarks, e)
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("appended entry %q to %s\n", *label, *out)
}

// quiet is a zero-probability fault plan: every hook fires, nothing is
// ever injected.
var quiet = flowsched.FaultConfig{Seed: 1}

// riskWorkload is the serial BenchmarkE6_RiskSimulation configuration;
// wrapped arms the quiet plan so profiles are read through injectors.
func riskWorkload(wrapped bool) func(b *testing.B) {
	return func(b *testing.B) {
		p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{Designer: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.UseSimulatedTools(); err != nil {
			b.Fatal(err)
		}
		if wrapped {
			if err := p.InjectFaults(quiet); err != nil {
				b.Fatal(err)
			}
		}
		opt := flowsched.RiskOptions{Trials: 1000, Seed: 7, Workers: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.SimulateRiskWith([]string{"performance"}, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// execWorkload plans and executes the full ASIC flow once per op;
// wrapped pays one quiet fault decision per tool run.
func execWorkload(wrapped bool) func(b *testing.B) {
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := flowsched.New(flowsched.ASICSchema, flowsched.Options{Designer: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.UseSimulatedTools(); err != nil {
				b.Fatal(err)
			}
			if wrapped {
				if err := p.InjectFaults(quiet); err != nil {
					b.Fatal(err)
				}
			}
			for _, leaf := range []string{"rtl", "constraints", "testbench"} {
				if _, err := p.Import(leaf, []byte("x")); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := p.Plan(targets, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(targets, true); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchfault: "+format+"\n", args...)
	os.Exit(1)
}
