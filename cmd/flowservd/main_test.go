package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowsched/internal/serve"
)

// TestStartupErrorsNameTheOffendingPath pins the operator contract:
// a daemon that cannot start returns a non-nil error (main exits
// non-zero) whose message names the path or flag that broke, so a
// botched unit file is diagnosable from the one log line.
func TestStartupErrorsNameTheOffendingPath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	notDir := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(notDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badSession := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badSession, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string // substring the error must carry
	}{
		{"missing session", []string{"-load", missing}, missing},
		{"corrupt session", []string{"-load", badSession}, badSession},
		{"missing schema file", []string{"-schema", missing}, missing},
		{"root is a file", []string{"-root", notDir}, notDir},
		{"root with load", []string{"-root", t.TempDir(), "-load", badSession}, "mutually exclusive"},
		{"run without plan", []string{"-run"}, "-plan"},
		{"unknown flag", []string{"-definitely-not-a-flag"}, "definitely-not-a-flag"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want startup error", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %q does not name %q", c.args, err, c.want)
			}
		})
	}
}

// TestHostStartupCreatesAndRecovers: -create seeds projects idempotently
// (a second boot over the same root must not fail on "already exists").
func TestHostStartupCreatesAndRecovers(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 2; i++ {
		h, err := buildHost(root, "alpha,beta", "builtin:fig4", "test", -1,
			serve.Options{})
		if err != nil {
			t.Fatalf("boot %d: %v", i, err)
		}
		list, err := h.Projects().List()
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != 2 {
			t.Fatalf("boot %d: %d projects, want 2", i, len(list))
		}
		if err := h.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
