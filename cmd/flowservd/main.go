// Command flowservd serves flowsched projects over HTTP: every read
// surface of the facade (status, Gantt, dashboard, CPM, milestones,
// queries, risk, what-if sweeps, predictions), the mutating routes
// (plan, run, track, complete, import, milestone, propagate, edit,
// fork) with optimistic concurrency via If-Match, a Server-Sent-Events
// stream of flow events, and virtual-time schedules, plus Prometheus
// metrics and the dual-clock trace, all answered from consistent store
// snapshots (see internal/serve and docs/serve.md).
//
// It runs in one of two modes:
//
// Single-project mode either restores a saved hercules session (-load)
// or starts a fresh project from a schema, optionally planning and
// executing a first tracked run with simulated tools so the read
// surfaces have content:
//
//	flowservd -addr :8080 -schema builtin:fig4 -plan performance -run
//	flowservd -load session.json
//
// Host mode (-root) serves every durable project under a root
// directory — one WAL-backed directory per project, loaded lazily on
// first request, evicted under memory pressure, and recovered
// bit-identically after a crash (see docs/persistence.md):
//
//	flowservd -root /var/lib/flowsched -create alpha,beta
//
// Routes gain a /p/{id}/ prefix per project, plus /projects for the
// inventory.
//
// SIGINT/SIGTERM drains gracefully: the listener closes at once,
// in-flight requests finish (bounded by -drain), and in host mode every
// resident project is checkpointed and its WAL closed before exit.
//
// Startup failures exit non-zero with a message naming the offending
// path or flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flowsched"
	"flowsched/internal/host"
	"flowsched/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("flowservd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

// drainable is the common surface of the single-project server and the
// multi-project host.
type drainable interface {
	ListenAndServe() error
	Shutdown(ctx context.Context) error
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowservd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		schemaF  = fs.String("schema", "builtin:fig4", "flow schema: builtin:fig4|builtin:asic|builtin:board|builtin:analog or a DSL file path")
		load     = fs.String("load", "", "restore a saved session JSON instead of starting from -schema")
		root     = fs.String("root", "", "host mode: serve every durable project under this directory")
		create   = fs.String("create", "", "host mode: comma-separated project IDs to create from -schema if missing")
		checkEv  = fs.Int("checkpoint-every", 0, "host mode: auto-checkpoint after this many WAL records (0 = default 4096, negative = off)")
		designer = fs.String("designer", "flowservd", "designer recorded on schedule instances")
		plan     = fs.String("plan", "", "comma-separated target data classes to plan at startup")
		hours    = fs.Int("hours", 8, "fixed per-activity estimate for the startup plan (working hours)")
		runPlan  = fs.Bool("run", false, "execute the startup plan to completion with simulated tools")
		cacheN   = fs.Int("cache", 256, "snapshot memo-cache capacity (entries)")
		noCache  = fs.Bool("no-cache", false, "disable the snapshot memo cache")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		sample   = fs.Float64("trace-sample", 0, "fraction of requests whose span tree the flight recorder retains (0 = default 0.01, negative = off)")
		slow     = fs.Duration("trace-slow", 0, "latency at which a request's trace is always retained (0 = default 500ms, negative = off)")
		pprofF   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		maxInFlight = fs.Int("max-inflight", 0, "admission-control capacity in weight units (/risk, /whatif and /run cost 8, /plan 4, other routes 1; 0 = off)")
		queueDepth  = fs.Int("queue-depth", 0, "requests allowed to wait for admission before shedding 503 (0 = 2×max-inflight)")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		routeDL     = fs.Duration("route-deadline", 0, "per-request rendering deadline; expiring simulations stop and answer 503 (0 = off)")
		tenantRate  = fs.Float64("tenant-rate", 0, "host mode: per-project fair-share tokens per second (0 = off)")
		tenantBurst = fs.Int("tenant-burst", 0, "host mode: per-project token-bucket burst (0 = ceil(tenant-rate))")

		readOnly = fs.Bool("readonly", false, "disable the mutating routes (POST /plan, /run, /track, ...): writes answer 403")
		sseQueue = fs.Int("sse-queue", 0, "per-subscriber SSE event queue; a subscriber that falls this far behind is dropped and resumes via Last-Event-ID (0 = default 64)")
		maxForks = fs.Int("max-forks", 0, "fork sessions held at once; POST /fork beyond it answers 409 (0 = default 8)")
	)
	var schedules []string
	fs.Func("schedule", "virtual-time schedule `kind:action[:targets[:hours]]` (kind hourly|daily|weekly|every=4h; action plan|run|propagate; repeatable; single-project mode)", func(v string) error {
		schedules = append(schedules, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	sopt := serve.Options{
		Addr:               *addr,
		CacheEntries:       *cacheN,
		DisableCache:       *noCache,
		TraceSampleRate:    *sample,
		SlowTraceThreshold: *slow,
		EnablePprof:        *pprofF,
		MaxInFlight:        *maxInFlight,
		QueueDepth:         *queueDepth,
		RetryAfter:         *retryAfter,
		RouteDeadline:      *routeDL,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		ReadOnly:           *readOnly,
		SSEQueue:           *sseQueue,
		MaxForks:           *maxForks,
	}

	var s drainable
	if *root != "" {
		if *load != "" {
			return fmt.Errorf("-root and -load are mutually exclusive")
		}
		if len(schedules) > 0 {
			return fmt.Errorf("-schedule is single-project only; in host mode POST /p/{id}/schedules instead")
		}
		h, err := buildHost(*root, *create, *schemaF, *designer, *checkEv, sopt)
		if err != nil {
			return err
		}
		s = h
		log.Printf("hosting projects under %s on %s", *root, *addr)
	} else {
		p, err := buildProject(*load, *schemaF, *designer)
		if err != nil {
			return err
		}
		if err := prepare(p, *plan, *hours, *runPlan); err != nil {
			return err
		}
		srv := serve.New(p, sopt)
		for _, spec := range schedules {
			sc, err := srv.AddSchedule(spec)
			if err != nil {
				return err
			}
			log.Printf("schedule %d: %s %s (next virtual fire %s)",
				sc.ID, sc.Kind, sc.Action, sc.Next.Format(time.RFC3339))
		}
		s = srv
		log.Printf("serving %s on %s (virtual now %s, cache %v)",
			p.Schema().Name, *addr, p.Now().Format(time.RFC3339), !*noCache)
	}

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		log.Print("drained")
		return nil
	}
}

// buildHost opens the multi-project host over root and seeds any
// -create projects that do not exist yet.
func buildHost(root, create, schemaF, designer string, checkEv int, sopt serve.Options) (*serve.Host, error) {
	if fi, err := os.Stat(root); err == nil && !fi.IsDir() {
		return nil, fmt.Errorf("-root %s: not a directory", root)
	}
	h, err := serve.NewHost(host.Options{
		Root:    root,
		Project: flowsched.Options{Designer: designer, Obs: flowsched.ObsOptions{Enabled: true}},
		Persist: flowsched.PersistOptions{CheckpointEvery: checkEv},
	}, sopt)
	if err != nil {
		return nil, err
	}
	if create != "" {
		src, err := schemaSource(schemaF)
		if err != nil {
			h.Shutdown(context.Background())
			return nil, err
		}
		for _, id := range strings.Split(create, ",") {
			id = strings.TrimSpace(id)
			hd, err := h.Projects().Create(id, src)
			if err != nil {
				if strings.Contains(err.Error(), "already exists") {
					continue
				}
				h.Shutdown(context.Background())
				return nil, err
			}
			hd.Release()
			log.Printf("created project %s under %s", id, root)
		}
	}
	return h, nil
}

// buildProject restores a saved session or starts a fresh project from
// a schema, with observability on either way.
func buildProject(load, schemaF, designer string) (*flowsched.Project, error) {
	opt := flowsched.Options{Designer: designer, Obs: flowsched.ObsOptions{Enabled: true}}
	if load != "" {
		b, err := os.ReadFile(load)
		if err != nil {
			return nil, err
		}
		p, err := flowsched.Load(b, opt)
		if err != nil {
			return nil, fmt.Errorf("-load %s: %w", load, err)
		}
		// A restored session has no tool processes; rebind the
		// simulated defaults so risk models and what-if sweeps work.
		if err := p.UseSimulatedTools(); err != nil {
			return nil, err
		}
		return p, nil
	}
	src, err := schemaSource(schemaF)
	if err != nil {
		return nil, err
	}
	p, err := flowsched.New(src, opt)
	if err != nil {
		return nil, fmt.Errorf("-schema %s: %w", schemaF, err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		return nil, err
	}
	return p, nil
}

func schemaSource(name string) (string, error) {
	switch name {
	case "builtin:fig4":
		return flowsched.Fig4Schema, nil
	case "builtin:asic":
		return flowsched.ASICSchema, nil
	case "builtin:board":
		return flowsched.BoardSchema, nil
	case "builtin:analog":
		return flowsched.AnalogSchema, nil
	default:
		b, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
}

// prepare optionally plans (and runs) the requested targets so a fresh
// daemon serves populated read surfaces instead of "no plan" errors.
func prepare(p *flowsched.Project, plan string, hours int, runPlan bool) error {
	if plan == "" {
		if runPlan {
			return fmt.Errorf("-run needs -plan")
		}
		return nil
	}
	// Seed every primary input so planned activities are runnable.
	for _, in := range p.Schema().PrimaryInputs() {
		if _, err := p.Import(in, []byte("seeded by flowservd")); err != nil {
			return err
		}
	}
	targets := strings.Split(plan, ",")
	if _, err := p.Plan(targets, flowsched.Fixed{Default: time.Duration(hours) * time.Hour}, flowsched.PlanOptions{}); err != nil {
		return err
	}
	log.Printf("planned %v at %dh per activity", targets, hours)
	if runPlan {
		res, err := p.Run(targets, true)
		if err != nil {
			return err
		}
		log.Printf("startup run: %d activities, %s .. %s",
			len(res.Outcomes), res.Started.Format(time.RFC3339), res.Finished.Format(time.RFC3339))
	}
	return nil
}
