// Command flowservd serves one flowsched project over HTTP: every read
// surface of the facade (status, Gantt, dashboard, CPM, milestones,
// queries, risk, what-if sweeps, predictions) plus Prometheus metrics
// and the dual-clock trace, all answered from consistent store
// snapshots (see internal/serve and docs/serve.md).
//
// The daemon either restores a saved hercules session (-load) or starts
// a fresh project from a schema, optionally planning and executing a
// first tracked run with simulated tools so the read surfaces have
// content:
//
//	flowservd -addr :8080 -schema builtin:fig4 -plan performance -run
//	flowservd -load session.json
//
// SIGINT/SIGTERM drains gracefully: the listener closes at once,
// in-flight requests finish (bounded by -drain), then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flowsched"
	"flowsched/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("flowservd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		schemaF  = flag.String("schema", "builtin:fig4", "flow schema: builtin:fig4|builtin:asic|builtin:board|builtin:analog or a DSL file path")
		load     = flag.String("load", "", "restore a saved session JSON instead of starting from -schema")
		designer = flag.String("designer", "flowservd", "designer recorded on schedule instances")
		plan     = flag.String("plan", "", "comma-separated target data classes to plan at startup")
		hours    = flag.Int("hours", 8, "fixed per-activity estimate for the startup plan (working hours)")
		runPlan  = flag.Bool("run", false, "execute the startup plan to completion with simulated tools")
		cacheN   = flag.Int("cache", 256, "snapshot memo-cache capacity (entries)")
		noCache  = flag.Bool("no-cache", false, "disable the snapshot memo cache")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		sample   = flag.Float64("trace-sample", 0, "fraction of requests whose span tree the flight recorder retains (0 = default 0.01, negative = off)")
		slow     = flag.Duration("trace-slow", 0, "latency at which a request's trace is always retained (0 = default 500ms, negative = off)")
		pprofF   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	p, err := buildProject(*load, *schemaF, *designer)
	if err != nil {
		return err
	}
	if err := prepare(p, *plan, *hours, *runPlan); err != nil {
		return err
	}

	s := serve.New(p, serve.Options{
		Addr:               *addr,
		CacheEntries:       *cacheN,
		DisableCache:       *noCache,
		TraceSampleRate:    *sample,
		SlowTraceThreshold: *slow,
		EnablePprof:        *pprofF,
	})

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	log.Printf("serving %s on %s (virtual now %s, cache %v)",
		p.Schema().Name, *addr, p.Now().Format(time.RFC3339), !*noCache)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		log.Print("drained")
		return nil
	}
}

// buildProject restores a saved session or starts a fresh project from
// a schema, with observability on either way.
func buildProject(load, schemaF, designer string) (*flowsched.Project, error) {
	opt := flowsched.Options{Designer: designer, Obs: flowsched.ObsOptions{Enabled: true}}
	if load != "" {
		b, err := os.ReadFile(load)
		if err != nil {
			return nil, err
		}
		p, err := flowsched.Load(b, opt)
		if err != nil {
			return nil, err
		}
		// A restored session has no tool processes; rebind the
		// simulated defaults so risk models and what-if sweeps work.
		if err := p.UseSimulatedTools(); err != nil {
			return nil, err
		}
		return p, nil
	}
	src, err := schemaSource(schemaF)
	if err != nil {
		return nil, err
	}
	p, err := flowsched.New(src, opt)
	if err != nil {
		return nil, err
	}
	if err := p.UseSimulatedTools(); err != nil {
		return nil, err
	}
	return p, nil
}

func schemaSource(name string) (string, error) {
	switch name {
	case "builtin:fig4":
		return flowsched.Fig4Schema, nil
	case "builtin:asic":
		return flowsched.ASICSchema, nil
	case "builtin:board":
		return flowsched.BoardSchema, nil
	case "builtin:analog":
		return flowsched.AnalogSchema, nil
	default:
		b, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
}

// prepare optionally plans (and runs) the requested targets so a fresh
// daemon serves populated read surfaces instead of "no plan" errors.
func prepare(p *flowsched.Project, plan string, hours int, runPlan bool) error {
	if plan == "" {
		if runPlan {
			return fmt.Errorf("-run needs -plan")
		}
		return nil
	}
	// Seed every primary input so planned activities are runnable.
	for _, in := range p.Schema().PrimaryInputs() {
		if _, err := p.Import(in, []byte("seeded by flowservd")); err != nil {
			return err
		}
	}
	targets := strings.Split(plan, ",")
	if _, err := p.Plan(targets, flowsched.Fixed{Default: time.Duration(hours) * time.Hour}, flowsched.PlanOptions{}); err != nil {
		return err
	}
	log.Printf("planned %v at %dh per activity", targets, hours)
	if runPlan {
		res, err := p.Run(targets, true)
		if err != nil {
			return err
		}
		log.Printf("startup run: %d activities, %s .. %s",
			len(res.Outcomes), res.Started.Format(time.RFC3339), res.Finished.Format(time.RFC3339))
	}
	return nil
}
