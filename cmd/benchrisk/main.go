// Command benchrisk measures the Monte-Carlo risk engine over a trials
// sweep and records the numbers in BENCH_risk.json, the repo's
// performance-trajectory file for the risk path. Each invocation
// appends one labelled entry (machine, engine configuration, and
// ns/op per sweep point) to the existing file, so successive runs
// across PRs accumulate into a history.
//
//	benchrisk -label after-parallel                 # sweep, append to BENCH_risk.json
//	benchrisk -workers 1 -label serial-only         # force the serial path
//	benchrisk -out /tmp/b.json -trials 1000,10000   # custom sweep
//	benchrisk -obs -label overhead                  # plain vs instrumented, BENCH_obs.json
//	benchrisk -incremental -label memo              # cold vs warm-after-edit
//
// With -obs each sweep point is measured twice — the plain engine and
// the same engine under the full observability layer, in the serving
// path's per-request shape (shared labeled-metrics registry plus a
// fresh request tracer and root span per run, per-shard spans beneath
// it) — and the entry records both plus the overhead percentage,
// appending to BENCH_obs.json by default.
//
// With -incremental each sweep point measures the subtree trial-stream
// memo over the chip-scale SoC network (-blocks ASIC-flow replicas plus
// a top-level assembly chain): a cold simulation versus a warm
// re-simulation after a single-activity edit (the memo primed with the
// baseline), in both exact and sketch mode. The warm run re-samples
// only the edited subtree — results are bit-identical to a cold run of
// the edited model — and the entry records the wall-clock speedup plus
// the deterministic sampled/reused activity-trial counts.
//
// The workload is the E6 exhibit's ASIC-flow model (the repo's
// heaviest risk network), so the numbers line up with
// BenchmarkE6_RiskSimulation and the E6 exhibit timings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/report"
	"flowsched/internal/serve"
)

// sweepPoint is one measured (trials, workers) cell. The instrumented
// fields are recorded only in -obs mode.
type sweepPoint struct {
	Trials       int     `json:"trials"`
	Workers      int     `json:"workers"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	// NsPerOpObs is the instrumented engine's time; OverheadPct its
	// cost relative to the plain run (positive = slower).
	NsPerOpObs  int64   `json:"ns_per_op_instrumented,omitempty"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// incrementalPoint is one measured -incremental cell: cold full
// simulation vs warm re-simulation after one activity edit. The trial
// counts are deterministic (they follow from the model's subtree
// structure); the timings are this machine's.
type incrementalPoint struct {
	Trials  int    `json:"trials"`
	Mode    string `json:"mode"` // "exact" or "sketch"
	ColdNs  int64  `json:"cold_ns_per_op"`
	WarmNs  int64  `json:"warm_ns_per_op"`
	Speedup float64 `json:"speedup"`
	// Activity-trials the warm run drew fresh vs served from the memo;
	// sampled+reused = activities × trials.
	WarmSampled int64 `json:"warm_sampled_activity_trials"`
	WarmReused  int64 `json:"warm_reused_activity_trials"`
}

// entry is one benchrisk invocation.
type entry struct {
	Label     string       `json:"label"`
	Date      string       `json:"date"`
	GoVersion string       `json:"go"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Results   []sweepPoint `json:"results,omitempty"`
	// Incremental holds -incremental mode's cold-vs-warm points.
	Incremental []incrementalPoint `json:"incremental,omitempty"`
}

// file is the BENCH_risk.json document.
type file struct {
	Description string  `json:"description"`
	Benchmarks  []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "trajectory file to append to (default BENCH_risk.json, or BENCH_obs.json with -obs)")
	label := flag.String("label", "run", "label for this entry")
	trialsFlag := flag.String("trials", "1000,10000,100000", "comma-separated trials sweep")
	workersFlag := flag.String("workers", "", "comma-separated worker counts (default \"1,<cores>\")")
	seed := flag.Int64("seed", 1995, "simulation seed")
	obsMode := flag.Bool("obs", false, "also measure the instrumented engine and record the overhead")
	incremental := flag.Bool("incremental", false, "measure cold vs warm-after-edit with the subtree trial-stream memo")
	editAct := flag.String("edit", "b2.DRC", "activity to perturb in -incremental mode")
	blocks := flag.Int("blocks", 4, "SoC block count for the -incremental workload")
	flag.Parse()
	if *out == "" {
		if *obsMode {
			*out = "BENCH_obs.json"
		} else {
			*out = "BENCH_risk.json"
		}
	}

	trials, err := parseInts(*trialsFlag)
	if err != nil {
		fatal("bad -trials: %v", err)
	}
	workersDefault := fmt.Sprintf("1,%d", runtime.GOMAXPROCS(0))
	if *workersFlag == "" {
		*workersFlag = workersDefault
	}
	workers, err := parseInts(*workersFlag)
	if err != nil {
		fatal("bad -workers: %v", err)
	}
	workers = dedupe(workers)

	// Validate the trajectory file before spending minutes on the sweep.
	doc := file{Description: "Monte-Carlo risk engine performance trajectory (cmd/benchrisk over the E6 ASIC model)"}
	if *obsMode {
		doc.Description = "Observability overhead trajectory: plain vs instrumented risk engine (cmd/benchrisk -obs over the E6 ASIC model)"
	}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			fatal("existing %s is not a benchrisk file: %v", *out, err)
		}
	}

	models, err := report.ASICRiskModels()
	if err != nil {
		fatal("%v", err)
	}

	e := entry{
		Label: *label, Date: time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
	}
	if *incremental {
		// The incremental workload is the chip-scale SoC network — the
		// regime the memo targets: one edited block subtree amid many
		// untouched ones.
		if models, err = report.SoCRiskModels(*blocks); err != nil {
			fatal("%v", err)
		}
		for _, n := range trials {
			for _, sketch := range []bool{false, true} {
				p := measureIncremental(models, n, *seed, sketch, *editAct)
				fmt.Printf("trials=%-8d mode=%-6s cold %12d ns/op  warm %12d ns/op  speedup %5.1fx  (sampled %d, reused %d)\n",
					p.Trials, p.Mode, p.ColdNs, p.WarmNs, p.Speedup, p.WarmSampled, p.WarmReused)
				e.Incremental = append(e.Incremental, p)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
		writeDoc(*out, doc)
		fmt.Printf("appended entry %q to %s\n", *label, *out)
		return
	}
	for _, w := range workers {
		for _, n := range trials {
			cfg := monte.Config{Trials: n, Seed: *seed, Workers: w}
			ns, iters := measure(models, cfg)
			p := sweepPoint{
				Trials: n, Workers: w, Iterations: iters, NsPerOp: ns,
				TrialsPerSec: float64(n) / (float64(ns) / 1e9),
			}
			if *obsMode {
				// One metrics registry for the whole point, as a project
				// would hold one across many analyses; each iteration
				// then gets a fresh request-scoped tracer and root span,
				// the serving path's exact per-request shape.
				cfg.Obs = obs.New()
				p.NsPerOpObs, _ = measureTraced(models, cfg)
				p.OverheadPct = 100 * (float64(p.NsPerOpObs) - float64(p.NsPerOp)) / float64(p.NsPerOp)
				fmt.Printf("trials=%-7d workers=%-2d plain %12d ns/op  instrumented %12d ns/op  overhead %+.2f%%\n",
					n, w, p.NsPerOp, p.NsPerOpObs, p.OverheadPct)
			} else {
				fmt.Printf("trials=%-7d workers=%-2d %12d ns/op  %10.0f trials/s\n",
					n, w, ns, p.TrialsPerSec)
			}
			e.Results = append(e.Results, p)
		}
	}

	doc.Benchmarks = append(doc.Benchmarks, e)
	writeDoc(*out, doc)
	fmt.Printf("appended entry %q to %s\n", *label, *out)
}

func writeDoc(path string, doc file) {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
}

// measureIncremental times a cold simulation of the edited model against
// a warm one whose memo was primed with the baseline — the serving
// pattern after a single-activity edit. Priming happens off the clock
// each iteration so the warm number is always first-edit, never
// full-hit.
func measureIncremental(base []monte.ActivityModel, trials int, seed int64, sketch bool, editAct string) incrementalPoint {
	edited := make([]monte.ActivityModel, len(base))
	copy(edited, base)
	found := false
	for i := range edited {
		if edited[i].Name == editAct {
			edited[i].Mode = edited[i].Mode * 13 / 10
			edited[i].Max = edited[i].Max * 13 / 10
			found = true
		}
	}
	if !found {
		fatal("-edit activity %q not in the model", editAct)
	}
	mode := "exact"
	if sketch {
		mode = "sketch"
	}
	cfg := monte.Config{Trials: trials, Seed: seed, Sketch: sketch}
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := monte.Simulate(edited, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Size the memo for the workload: two generations of every activity
	// stream (baseline + edited), so the 1M-trial points never evict
	// mid-prime and the warm number measures reuse, not budget pressure.
	memoBytes := 2 * int64(len(base)) * (int64(trials)*8 + 96)
	var sampled, reused int64
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			memo := monte.NewMemo(memoBytes)
			primed := cfg
			primed.Memo = memo
			if _, err := monte.Simulate(base, primed); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := monte.Simulate(edited, primed)
			if err != nil {
				b.Fatal(err)
			}
			sampled, reused = res.SampledActivityTrials, res.ReusedActivityTrials
		}
	})
	p := incrementalPoint{
		Trials: trials, Mode: mode,
		ColdNs: cold.NsPerOp(), WarmNs: warm.NsPerOp(),
		WarmSampled: sampled, WarmReused: reused,
	}
	if p.WarmNs > 0 {
		p.Speedup = float64(p.ColdNs) / float64(p.WarmNs)
	}
	return p
}

// measureTraced times one instrumented Simulate configuration the way
// the serving path runs it: cfg.Obs's metrics registry is shared across
// iterations, while each iteration carries its own bounded request
// tracer and a "serve.risk" root span that the monte subtree nests
// under (serve.Server.instrument's per-request shape).
func measureTraced(models []monte.ActivityModel, cfg monte.Config) (int64, int) {
	metrics := cfg.Obs.Metrics()
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := obs.NewTracer(serve.DefaultRequestSpans)
			root := tr.Start(nil, "serve.risk", time.Time{})
			run := cfg
			run.Obs = obs.NewWith(metrics, tr)
			run.Parent = root
			if _, err := monte.Simulate(models, run); err != nil {
				b.Fatal(err)
			}
			root.End(time.Time{})
		}
	})
	return r.NsPerOp(), r.N
}

// measure times one Simulate configuration, returning ns/op and the
// iteration count testing.Benchmark settled on.
func measure(models []monte.ActivityModel, cfg monte.Config) (int64, int) {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := monte.Simulate(models, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r.NsPerOp(), r.N
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("value %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func dedupe(ns []int) []int {
	seen := make(map[int]bool, len(ns))
	var out []int
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchrisk: "+format+"\n", args...)
	os.Exit(1)
}
