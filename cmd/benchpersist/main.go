// Command benchpersist measures the durability layer and records the
// numbers in BENCH_persist.json, the repo's performance-trajectory file
// for the WAL path. Each invocation appends one labelled entry
// (machine, configuration, and per-sweep-point costs), so successive
// runs across PRs accumulate into a history.
//
//	benchpersist -label after-wal                 # sweep, append to BENCH_persist.json
//	benchpersist -records 1000,10000 -out /tmp/b  # custom sweep
//	benchpersist -sync                            # price the per-append fsync
//
// Per sweep point (a project whose WAL holds ~N records) it measures:
//
//   - replay: full crash-recovery time from the segments alone
//     (flowsched.Open on a cold copy of the directory), total and per
//     record — the cost of the "replay = rebuild" contract;
//   - checkpoint: the cost of installing a checkpoint at that store
//     size, and the checkpoint's size on disk;
//   - recovery-from-checkpoint: crash-recovery time once a checkpoint
//     covers the log, which bounds restart latency regardless of
//     history length;
//   - density: bytes per project in memory and on disk, reported as
//     projects per GB — the capacity planning number for the
//     multi-project host (flowservd -root).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"flowsched"
)

// point is one measured WAL size.
type point struct {
	// Records is the WAL record count recovery replays (RecordsTarget
	// rounded up to the workload's operation boundary).
	Records uint64 `json:"records"`
	// StoreVersion is the recovered store's version — the mutation
	// count the records carry.
	StoreVersion uint64 `json:"store_version"`
	ReplayNs     int64  `json:"replay_ns"`
	ReplayNsRec  int64  `json:"replay_ns_per_record"`
	CheckpointNs int64  `json:"checkpoint_ns"`
	// CheckpointBytes is checkpoint.json's size after install.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// ReplayAfterCheckpointNs is crash-recovery with the checkpoint
	// installed (near-empty log): the restart-latency floor.
	ReplayAfterCheckpointNs int64 `json:"replay_after_checkpoint_ns"`
	// WALBytes is the segment + checkpoint footprint before the
	// checkpoint truncated the segments.
	WALBytes    int64 `json:"wal_bytes"`
	MemoryBytes int64 `json:"memory_bytes"`
	DiskBytes   int64 `json:"disk_bytes"`
	// Capacity-planning densities for the multi-project host.
	ProjectsPerGBRAM  float64 `json:"projects_per_gb_ram"`
	ProjectsPerGBDisk float64 `json:"projects_per_gb_disk"`
}

// entry is one benchpersist invocation.
type entry struct {
	Label     string  `json:"label"`
	Date      string  `json:"date"`
	GoVersion string  `json:"go"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Fsync     bool    `json:"fsync"`
	Results   []point `json:"results"`
}

// file is the BENCH_persist.json document.
type file struct {
	Description string  `json:"description"`
	Benchmarks  []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_persist.json", "trajectory file to append to")
	label := flag.String("label", "run", "label for this entry")
	recordsFlag := flag.String("records", "1000,10000,50000", "comma-separated WAL record-count sweep")
	sync := flag.Bool("sync", false, "fsync every append while building the workload (prices durability, slows the build)")
	reps := flag.Int("reps", 3, "replay repetitions per point (best is recorded)")
	flag.Parse()

	sweep, err := parseInts(*recordsFlag)
	if err != nil {
		fatal("bad -records: %v", err)
	}

	doc := file{Description: "Durability layer performance trajectory: WAL replay, checkpoint cost, and project density (cmd/benchpersist over the Fig. 4 flow)"}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			fatal("existing %s is not a benchpersist file: %v", *out, err)
		}
	}

	e := entry{
		Label: *label, Date: time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), Fsync: *sync,
	}
	for _, n := range sweep {
		p, err := measure(uint64(n), !*sync, *reps)
		if err != nil {
			fatal("%d records: %v", n, err)
		}
		fmt.Printf("%8d records: replay %8.2fms (%5dns/rec)  checkpoint %8.2fms (%d B)  restart-after-cp %6.2fms  %6.0f proj/GB RAM  %6.0f proj/GB disk\n",
			p.Records, float64(p.ReplayNs)/1e6, p.ReplayNsRec,
			float64(p.CheckpointNs)/1e6, p.CheckpointBytes,
			float64(p.ReplayAfterCheckpointNs)/1e6,
			p.ProjectsPerGBRAM, p.ProjectsPerGBDisk)
		e.Results = append(e.Results, p)
	}
	doc.Benchmarks = append(doc.Benchmarks, e)

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("appended entry %q to %s\n", *label, *out)
}

// measure builds one durable project with ~n WAL records and times the
// durability operations against it.
func measure(n uint64, noSync bool, reps int) (point, error) {
	root, err := os.MkdirTemp("", "benchpersist")
	if err != nil {
		return point{}, err
	}
	defer os.RemoveAll(root)
	dir := filepath.Join(root, "master")

	po := flowsched.PersistOptions{NoSync: noSync, CheckpointEvery: -1}
	p, err := flowsched.Open(dir, flowsched.Fig4Schema, flowsched.Options{Designer: "bench"}, po)
	if err != nil {
		return point{}, err
	}
	if err := p.UseSimulatedTools(); err != nil {
		return point{}, err
	}
	// The record mill: imports commit store mutations, design-data
	// puts, and events — the serving path's mutation mix.
	for i := 0; p.WALSeq() < n; i++ {
		if _, err := p.Import("stimuli", []byte(fmt.Sprintf("pulse %d", i))); err != nil {
			return point{}, err
		}
	}
	pt := point{Records: p.WALSeq()}
	pt.MemoryBytes = p.MemoryFootprint()
	if pt.WALBytes, err = p.DurableFootprint(); err != nil {
		return point{}, err
	}
	// No Close: the replay measurements below recover a crash image.

	// Replay = rebuild, on a cold copy each repetition.
	for i := 0; i < reps; i++ {
		cold, err := copyDir(root, dir, fmt.Sprintf("replay%d", i))
		if err != nil {
			return point{}, err
		}
		start := time.Now()
		if _, err := flowsched.Open(cold, "", flowsched.Options{}, po); err != nil {
			return point{}, err
		}
		elapsed := time.Since(start).Nanoseconds()
		if i == 0 || elapsed < pt.ReplayNs {
			pt.ReplayNs = elapsed
		}
	}
	pt.ReplayNsRec = pt.ReplayNs / int64(pt.Records)

	// Checkpoint cost at this store size, then restart latency with the
	// checkpoint installed.
	cpDir, err := copyDir(root, dir, "checkpoint")
	if err != nil {
		return point{}, err
	}
	cp, err := flowsched.Open(cpDir, "", flowsched.Options{}, po)
	if err != nil {
		return point{}, err
	}
	pt.StoreVersion = storeVersionOf(cp)
	start := time.Now()
	if err := cp.Checkpoint(); err != nil {
		return point{}, err
	}
	pt.CheckpointNs = time.Since(start).Nanoseconds()
	if fi, err := os.Stat(filepath.Join(cpDir, "checkpoint.json")); err == nil {
		pt.CheckpointBytes = fi.Size()
	}
	if pt.DiskBytes, err = cp.DurableFootprint(); err != nil {
		return point{}, err
	}
	start = time.Now()
	if _, err := flowsched.Open(cpDir, "", flowsched.Options{}, po); err != nil {
		return point{}, err
	}
	pt.ReplayAfterCheckpointNs = time.Since(start).Nanoseconds()

	const gb = 1 << 30
	if pt.MemoryBytes > 0 {
		pt.ProjectsPerGBRAM = float64(gb) / float64(pt.MemoryBytes)
	}
	if pt.DiskBytes > 0 {
		pt.ProjectsPerGBDisk = float64(gb) / float64(pt.DiskBytes)
	}
	return pt, nil
}

// storeVersionOf reads the recovered store version off a version view.
func storeVersionOf(p *flowsched.Project) uint64 {
	v, err := p.View()
	if err != nil {
		return 0
	}
	return v.Version()
}

// copyDir clones a project directory under root and returns the clone.
func copyDir(root, src, name string) (string, error) {
	dst := filepath.Join(root, name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return "", err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, de := range ents {
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchpersist: "+format+"\n", args...)
	os.Exit(1)
}
