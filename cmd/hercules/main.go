// Command hercules is a command-line workflow manager with integrated
// design schedule management — the textual counterpart of the Hercules
// user interface of the paper's Fig. 8.
//
// It reads commands from stdin (one per line), so sessions can be typed
// interactively or piped as scripts:
//
//	$ hercules <<'EOF'
//	schema builtin:fig4
//	tools
//	import stimuli pulse 0 5 1ns
//	plan performance 8
//	run performance
//	tree performance
//	gantt
//	query duration of Create
//	dump
//	EOF
//
// Commands:
//
//	schema builtin:fig4|asic|board|analog|<path>  load a task schema
//	tools                                     bind simulated tools to all activities
//	import <class> <text...>                  file design data for a primary input
//	plan <targets,comma-sep> <hours>          plan: simulate execution, fixed est.
//	run <targets,comma-sep> [parallel]        execute tracked against current plan;
//	                                          "parallel" overlaps independent branches
//	policy default|off                        fault-tolerance policy for run: "default"
//	                                          enables retry backoff, 72h run deadlines,
//	                                          tool failover, graceful degradation
//	faults seed=<n> [crash=p] [hang=p] [corrupt=p] [outages=n]
//	                                          arm a seeded, replayable fault plan over
//	                                          every bound tool (chaos testing)
//	faults                                    show the fault injection log
//	resume                                    after a failed run: continue from the
//	                                          checkpoint, re-running nothing completed
//	status                                    plan-vs-actual table
//	tree <targets,comma-sep>                  task tree view with schedule state
//	gantt                                     Gantt chart of the current plan
//	analyze                                   CPM/PERT critical path of the plan
//	risk <targets,comma-sep> [trials]         Monte-Carlo schedule risk analysis
//	predict <activity> [method] [size]        estimate the next duration from completed
//	                                          history (mean, ewma, regression) with a
//	                                          back-test score when history allows
//	whatif <targets> <name=edit;...> ...      what-if sweep over copy-on-write forks;
//	                                          edits: Act*1.5 (scale tool runtime),
//	                                          Act+3h / Act+2d (delay; d = 8h workday),
//	                                          parallel (team execution)
//	optimize <targets> <hours> <max-team>     smallest team near the critical path
//	query <text...>                           §IV.B query (see docs)
//	dump                                      task database dump (Figs. 5–7 view)
//	report [days]                             periodic status report (default last 7 days)
//	milestone <name> <class> <date>           commit a milestone (proposed milestone)
//	milestones                                milestone report (achieved/pending, margin)
//	export csv|mpx <path>                     export the plan for PM tooling
//	actuals <path>                            import hand-collected actual dates (CSV)
//	stats [json]                              observability metrics (Prometheus text or JSON)
//	trace [depth]                             dual-clock span tree (virtual + wall time)
//	flight                                    flight recorder: recent + slowest operations
//	events                                    new manager events since the last call
//	save <path>                               persist the whole session as JSON
//	load <path>                               restore a saved session (rebind tools after)
//	quit                                      end the session
//
// One argv-level subcommand bypasses the REPL:
//
//	hercules projects <root>                  list the durable projects under a
//	                                          flowservd host root (see docs/persistence.md)
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"flowsched"
	"flowsched/internal/scenario"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "projects" {
		if err := projectsCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hercules:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hercules:", err)
		os.Exit(1)
	}
}

// projectsCmd lists the durable projects under a flowservd host root
// without loading any of them: the inventory comes from the manifest
// files, the sizes from the WAL directories on disk.
func projectsCmd(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hercules projects <root>")
	}
	root := args[0]
	fi, err := os.Stat(root)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		return fmt.Errorf("%s: not a directory", root)
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	n := 0
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		dir := filepath.Join(root, de.Name())
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			continue
		}
		var bytes int64
		files, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				bytes += info.Size()
			}
		}
		tag := ""
		if _, err := os.Stat(filepath.Join(dir, "quarantined.json")); err == nil {
			tag = "  QUARANTINED"
		}
		fmt.Fprintf(w, "%-32s %10d bytes%s\n", de.Name(), bytes, tag)
		n++
	}
	if n == 0 {
		fmt.Fprintf(w, "no projects under %s\n", root)
	}
	return nil
}

type session struct {
	project *flowsched.Project
	out     *bufio.Writer
	// eventSeq is the events cursor: how many manager events the
	// "events" command has already printed (reset on schema/load).
	eventSeq int
	// recovery is the fault-tolerance policy "run" executes under
	// (set by "policy"; zero = historical abort-on-first-exhaustion).
	recovery flowsched.Recovery
	// resumeErr holds the last failed run's checkpoint for "resume".
	resumeErr *flowsched.ExecError
}

func run(in io.Reader, out io.Writer) error {
	s := &session{out: bufio.NewWriter(out)}
	defer s.out.Flush()
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := s.dispatch(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
		s.out.Flush()
	}
	return sc.Err()
}

func (s *session) dispatch(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	if cmd != "schema" && cmd != "load" && s.project == nil {
		return fmt.Errorf("load a schema first (schema builtin:fig4)")
	}
	switch cmd {
	case "schema":
		return s.loadSchema(args)
	case "load":
		if len(args) != 1 {
			return fmt.Errorf("usage: load <snapshot.json>")
		}
		blob, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		p, err := flowsched.Load(blob, flowsched.Options{Obs: flowsched.ObsOptions{Enabled: true}})
		if err != nil {
			return err
		}
		s.project = p
		s.eventSeq = 0
		fmt.Fprintf(s.out, "restored session at %s (rebind tools before run)\n",
			p.Now().Format("2006-01-02 15:04"))
		return nil
	case "tools":
		if err := s.project.UseSimulatedTools(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "simulated tools bound to all activities")
		return nil
	case "import":
		if len(args) < 2 {
			return fmt.Errorf("usage: import <class> <text...>")
		}
		id, err := s.project.Import(args[0], []byte(strings.Join(args[1:], " ")))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "imported as %s\n", id)
		return nil
	case "plan":
		return s.plan(args)
	case "run":
		return s.exec(args)
	case "policy":
		return s.policy(args)
	case "faults":
		return s.faults(args)
	case "resume":
		return s.resume(args)
	case "status":
		return s.status()
	case "tree":
		if len(args) != 1 {
			return fmt.Errorf("usage: tree <targets,comma-sep>")
		}
		view, err := s.project.TaskTreeView(strings.Split(args[0], ",")...)
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, view)
		return nil
	case "gantt":
		chart, err := s.project.Gantt()
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, chart)
		return nil
	case "analyze":
		return s.analyze()
	case "risk":
		return s.risk(args)
	case "predict":
		return s.predict(args)
	case "whatif":
		return s.whatif(args)
	case "optimize":
		return s.optimize(args)
	case "query":
		if len(args) == 0 {
			return fmt.Errorf("usage: query <text...>")
		}
		ans, err := s.project.Query(strings.Join(args, " "))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, ans)
		return nil
	case "dump":
		fmt.Fprint(s.out, s.project.DatabaseDump())
		return nil
	case "report":
		days := 7
		if len(args) == 1 {
			d, err := strconv.Atoi(args[0])
			if err != nil || d <= 0 {
				return fmt.Errorf("bad day count %q", args[0])
			}
			days = d
		} else if len(args) > 1 {
			return fmt.Errorf("usage: report [days]")
		}
		to := s.project.Now()
		from := to.Add(-time.Duration(days) * 24 * time.Hour)
		out, err := s.project.StatusReport(from, to)
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, out)
		return nil
	case "milestone":
		if len(args) != 3 {
			return fmt.Errorf("usage: milestone <name> <class> <YYYY-MM-DDTHH:MM>")
		}
		target, err := time.Parse("2006-01-02T15:04", args[2])
		if err != nil {
			return fmt.Errorf("bad target date %q: %v", args[2], err)
		}
		if err := s.project.SetMilestone(args[0], args[1], target.UTC()); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "milestone %s: %s by %s\n", args[0], args[1], args[2])
		return nil
	case "milestones":
		report, err := s.project.MilestoneReport()
		if err != nil {
			return err
		}
		if len(report) == 0 {
			fmt.Fprintln(s.out, "no milestones set")
			return nil
		}
		for _, m := range report {
			state := "pending"
			if m.Achieved {
				state = "achieved " + m.AchievedAt.Format("2006-01-02")
			}
			fmt.Fprintf(s.out, "  %-16s %-12s target %s  %s  margin %s\n",
				m.Name, m.Class, m.Target.Format("2006-01-02"), state,
				m.Margin.Round(time.Minute))
		}
		return nil
	case "stats":
		return s.stats(args)
	case "trace":
		return s.trace(args)
	case "flight":
		return s.flight(args)
	case "events":
		return s.events(args)
	case "export":
		return s.export(args)
	case "actuals":
		if len(args) != 1 {
			return fmt.Errorf("usage: actuals <csv-path>")
		}
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := s.project.ImportActualsCSV(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "applied %d actual(s)\n", n)
		return nil
	case "save":
		if len(args) != 1 {
			return fmt.Errorf("usage: save <path>")
		}
		blob, err := s.project.Snapshot()
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[0], blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "saved %d bytes to %s\n", len(blob), args[0])
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func (s *session) loadSchema(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: schema builtin:fig4|builtin:asic|<path>")
	}
	var src string
	switch args[0] {
	case "builtin:fig4":
		src = flowsched.Fig4Schema
	case "builtin:asic":
		src = flowsched.ASICSchema
	case "builtin:board":
		src = flowsched.BoardSchema
	case "builtin:analog":
		src = flowsched.AnalogSchema
	default:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(b)
	}
	p, err := flowsched.New(src, flowsched.Options{
		Designer: username(),
		Obs:      flowsched.ObsOptions{Enabled: true},
	})
	if err != nil {
		return err
	}
	s.project = p
	s.eventSeq = 0
	sch := p.Schema()
	fmt.Fprintf(s.out, "schema %s: %d activities, primary inputs %v, primary outputs %v\n",
		sch.Name, len(sch.Rules()), sch.PrimaryInputs(), sch.PrimaryOutputs())
	return nil
}

func (s *session) plan(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: plan <targets,comma-sep> <hours-per-activity>")
	}
	hours, err := strconv.Atoi(args[1])
	if err != nil || hours <= 0 {
		return fmt.Errorf("bad hours %q", args[1])
	}
	plan, err := s.project.Plan(strings.Split(args[0], ","),
		flowsched.Fixed{Default: time.Duration(hours) * time.Hour}, flowsched.PlanOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "plan v%d: %d activities, finish %s\n",
		plan.Version, len(plan.Activities), plan.Finish.Format("2006-01-02 15:04"))
	return nil
}

func (s *session) exec(args []string) error {
	if len(args) < 1 || len(args) > 2 || (len(args) == 2 && args[1] != "parallel") {
		return fmt.Errorf("usage: run <targets,comma-sep> [parallel]")
	}
	res, err := s.project.RunWith(strings.Split(args[0], ","), flowsched.RunOptions{
		AutoComplete: true, Parallel: len(args) == 2, Recovery: s.recovery,
	})
	if err != nil {
		var ee *flowsched.ExecError
		if errors.As(err, &ee) {
			s.resumeErr = ee
			fmt.Fprintf(s.out, "run failed: %v\n", err)
			fmt.Fprintf(s.out, "completed before the failure: %s\n", orNone(ee.Completed()))
			fmt.Fprintln(s.out, "fix the cause (rebind tools, raise limits) and \"resume\" to continue from the checkpoint")
			return nil
		}
		return err
	}
	s.printExec(res)
	return nil
}

func (s *session) printExec(res *flowsched.ExecResult) {
	for _, o := range res.Outcomes {
		fmt.Fprintf(s.out, "  %-12s %d iteration(s), final %s, finished %s\n",
			o.Activity, o.Iterations, o.FinalEntity.ID, o.Finished.Format("2006-01-02 15:04"))
	}
	if len(res.Resumed) > 0 {
		fmt.Fprintf(s.out, "  resumed from checkpoint, skipped: %s\n", strings.Join(res.Resumed, ", "))
	}
	if len(res.Blocked) > 0 {
		fmt.Fprintf(s.out, "  blocked (fenced, shown as slip in status): %s\n", strings.Join(res.Blocked, ", "))
	}
}

func orNone(list []string) string {
	if len(list) == 0 {
		return "(nothing)"
	}
	return strings.Join(list, ", ")
}

// policy selects the fault-tolerance policy subsequent runs use.
func (s *session) policy(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: policy default|off")
	}
	switch args[0] {
	case "default":
		s.recovery = flowsched.DefaultRecovery()
		r := s.recovery
		fmt.Fprintf(s.out, "policy: backoff %s x%g (max %s), run deadline %s, failover on, continue-on-block on\n",
			r.Backoff.Initial, r.Backoff.Factor, r.Backoff.Max, r.RunDeadline)
	case "off":
		s.recovery = flowsched.Recovery{}
		fmt.Fprintln(s.out, "policy: off (immediate retries, abort on first exhausted activity)")
	default:
		return fmt.Errorf("usage: policy default|off")
	}
	return nil
}

// faults arms a seeded fault plan over the bound tools, or with no
// arguments prints the injection log of the armed plan.
func (s *session) faults(args []string) error {
	if len(args) == 0 {
		hist := s.project.FaultHistory()
		if hist == nil {
			fmt.Fprintln(s.out, "no fault plan armed (faults seed=<n> crash=0.2 ...)")
			return nil
		}
		fmt.Fprintf(s.out, "fault plan: %d decision(s), %d injected\n",
			len(hist), s.project.FaultsInjected())
		for _, h := range hist {
			fmt.Fprintf(s.out, "  %s  %-12s attempt %d  %s\n",
				h.At.Format("2006-01-02 15:04"), h.Activity, h.Attempt, h.Kind)
		}
		return nil
	}
	cfg := flowsched.FaultConfig{Seed: -1}
	for _, a := range args {
		key, val, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad fault option %q (want key=value)", a)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q", val)
			}
			cfg.Seed = n
		case "crash", "hang", "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad %s probability %q", key, val)
			}
			switch key {
			case "crash":
				cfg.Crash = p
			case "hang":
				cfg.Hang = p
			case "corrupt":
				cfg.Corrupt = p
			}
		case "outages":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("bad outage count %q", val)
			}
			cfg.LicenseOutages = n
		default:
			return fmt.Errorf("unknown fault option %q (seed, crash, hang, corrupt, outages)", key)
		}
	}
	if cfg.Seed < 0 {
		return fmt.Errorf("faults needs seed=<n> (the plan replays bit-identically per seed)")
	}
	if cfg.LicenseOutages > 0 {
		cfg.LicenseStart = s.project.Now()
	}
	if err := s.project.InjectFaults(cfg); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "fault plan armed (seed %d): crash %g, hang %g, corrupt %g, license outages %d\n",
		cfg.Seed, cfg.Crash, cfg.Hang, cfg.Corrupt, cfg.LicenseOutages)
	return nil
}

// resume continues the last failed run from its checkpoint.
func (s *session) resume(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: resume")
	}
	if s.resumeErr == nil {
		return fmt.Errorf("nothing to resume (no failed run this session)")
	}
	res, err := s.resumeErr.Resume()
	if err != nil {
		var ee *flowsched.ExecError
		if errors.As(err, &ee) {
			s.resumeErr = ee
			fmt.Fprintf(s.out, "resume failed again: %v\n", err)
			fmt.Fprintf(s.out, "completed so far: %s\n", orNone(ee.Completed()))
			return nil
		}
		return err
	}
	s.resumeErr = nil
	s.printExec(res)
	return nil
}

func (s *session) status() error {
	rows, err := s.project.Status()
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%-12s %-12s %-16s %-16s %s\n",
		"activity", "state", "planned finish", "actual finish", "slip")
	for _, r := range rows {
		actual := "—"
		if !r.ActualFinish.IsZero() {
			actual = r.ActualFinish.Format("2006-01-02 15:04")
		}
		fmt.Fprintf(s.out, "%-12s %-12s %-16s %-16s %s\n",
			r.Activity, r.State, r.PlannedFinish.Format("2006-01-02 15:04"), actual,
			r.Slip.Round(time.Minute))
	}
	return nil
}

func (s *session) analyze() error {
	res, err := s.project.Analyze()
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "project span %s working; critical path: %s\n",
		res.Duration, strings.Join(res.CriticalPath, " -> "))
	for _, tm := range res.Timings {
		mark := " "
		if tm.Critical {
			mark = "*"
		}
		fmt.Fprintf(s.out, " %s %-12s ES=%-8s slack=%s\n", mark, tm.Name, tm.EarlyStart, tm.Slack)
	}
	return nil
}

// whatif runs a what-if sweep: each argument after the targets is one
// scenario, "name=edit;edit;...".
func (s *session) whatif(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: whatif <targets,comma-sep> <name=edit;edit;...> ...")
	}
	edits := make([]flowsched.ScenarioEdit, 0, len(args)-1)
	for _, spec := range args[1:] {
		e, err := scenario.ParseEdit(spec)
		if err != nil {
			return err
		}
		edits = append(edits, e)
	}
	rep, err := s.project.Scenarios(strings.Split(args[0], ","), edits, flowsched.ScenarioOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, rep.Render())
	return nil
}

func (s *session) export(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: export csv|mpx <path>")
	}
	var out string
	var err error
	switch args[0] {
	case "csv":
		out, err = s.project.ExportPlanCSV()
	case "mpx":
		out, err = s.project.ExportMPX()
	default:
		return fmt.Errorf("unknown export format %q (want csv or mpx)", args[0])
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], []byte(out), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "exported %s to %s\n", args[0], args[1])
	return nil
}

func (s *session) risk(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: risk <targets,comma-sep> [trials]")
	}
	trials := 1000
	if len(args) == 2 {
		t, err := strconv.Atoi(args[1])
		if err != nil || t <= 0 {
			return fmt.Errorf("bad trial count %q", args[1])
		}
		trials = t
	}
	res, err := s.project.SimulateRisk(strings.Split(args[0], ","), trials, 1995)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "risk over %d trials: mean %s, p10 %s, p50 %s, p90 %s\n",
		trials,
		res.Mean().Round(time.Minute),
		res.Percentile(0.1).Round(time.Minute),
		res.Percentile(0.5).Round(time.Minute),
		res.Percentile(0.9).Round(time.Minute))
	return nil
}

func (s *session) predict(args []string) error {
	if len(args) < 1 || len(args) > 3 {
		return fmt.Errorf("usage: predict <activity> [mean|ewma|regression] [size]")
	}
	opt := flowsched.PredictOptions{}
	if len(args) >= 2 {
		opt.Method = args[1]
	}
	if len(args) == 3 {
		sz, err := strconv.ParseFloat(args[2], 64)
		if err != nil || !(sz > 0) { // !(>0) also rejects NaN
			return fmt.Errorf("bad size %q", args[2])
		}
		opt.Size = sz
	}
	pred, err := s.project.PredictDuration(args[0], opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "predicted duration of %s: %s (%s over %d completed samples)\n",
		pred.Activity, pred.Estimate.Round(time.Minute), pred.Method, pred.Samples)
	// A back-test needs at least two samples; skip the score quietly
	// when history is too thin for one.
	if acc, err := s.project.EvaluatePredictor(args[0], opt, 1); err == nil && acc.N > 0 {
		fmt.Fprintf(s.out, "back-test: MAE %s, MAPE %.1f%% over %d held-out samples\n",
			acc.MAE.Round(time.Minute), acc.MAPE*100, acc.N)
	}
	return nil
}

func (s *session) optimize(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: optimize <targets,comma-sep> <hours-per-activity> <max-team>")
	}
	hours, err := strconv.Atoi(args[1])
	if err != nil || hours <= 0 {
		return fmt.Errorf("bad hours %q", args[1])
	}
	maxTeam, err := strconv.Atoi(args[2])
	if err != nil || maxTeam <= 0 {
		return fmt.Errorf("bad team size %q", args[2])
	}
	tp, err := s.project.OptimizeTeam(strings.Split(args[0], ","),
		flowsched.Fixed{Default: time.Duration(hours) * time.Hour}, maxTeam, 1.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "smallest team within 5%% of critical path: %d (makespan %s, critical path %s)\n",
		tp.Size, tp.Makespan, tp.CriticalPath)
	for _, a := range tp.Assignments {
		fmt.Fprintf(s.out, "  %-12s %-4s %8s .. %s\n", a.Task, a.Resource, a.Start, a.Finish)
	}
	return nil
}

func (s *session) stats(args []string) error {
	if len(args) > 1 || (len(args) == 1 && args[0] != "json") {
		return fmt.Errorf("usage: stats [json]")
	}
	if len(args) == 1 {
		blob, err := s.project.MetricsJSON()
		if err != nil {
			return err
		}
		s.out.Write(blob)
		fmt.Fprintln(s.out)
		return nil
	}
	text := s.project.MetricsText()
	if text == "" {
		fmt.Fprintln(s.out, "no metrics recorded yet")
		return nil
	}
	fmt.Fprint(s.out, text)
	return nil
}

func (s *session) trace(args []string) error {
	depth := 0
	if len(args) == 1 {
		d, err := strconv.Atoi(args[0])
		if err != nil || d < 1 {
			return fmt.Errorf("bad depth %q", args[0])
		}
		depth = d
	} else if len(args) > 1 {
		return fmt.Errorf("usage: trace [max-depth]")
	}
	tree := s.project.TraceTree(depth)
	if tree == "" {
		fmt.Fprintln(s.out, "no spans recorded yet")
		return nil
	}
	fmt.Fprint(s.out, tree)
	if n := s.project.TraceDropped(); n > 0 {
		fmt.Fprintf(s.out, "(%d span(s) dropped over the retention bound)\n", n)
	}
	return nil
}

// flight prints the project's flight recorder: the most recent facade
// operations and the slowest retained ones, one line each.
func (s *session) flight(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: flight")
	}
	recent, slowest := s.project.FlightRecords()
	if len(recent) == 0 && len(slowest) == 0 {
		fmt.Fprintln(s.out, "no operations recorded yet")
		return nil
	}
	fmt.Fprint(s.out, s.project.FlightText())
	return nil
}

// events prints only the manager events appended since the last call.
// EventsPage hands back the next cursor alongside the page, so the
// session never has to reconstruct it from the slice length.
func (s *session) events(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: events")
	}
	evs, next := s.project.EventsPage(s.eventSeq)
	if len(evs) == 0 {
		fmt.Fprintln(s.out, "no new events")
		return nil
	}
	s.eventSeq = next
	for _, e := range evs {
		act := e.Activity
		if act == "" {
			act = "-"
		}
		fmt.Fprintf(s.out, "  %s  %-20s %-12s %s\n",
			e.At.Format("2006-01-02 15:04"), e.Kind, act, e.Detail)
	}
	return nil
}

func username() string {
	if u := os.Getenv("USER"); u != "" {
		return u
	}
	return "designer"
}
