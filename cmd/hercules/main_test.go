package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// script runs a hercules session and returns its output.
func script(t *testing.T, lines ...string) string {
	t.Helper()
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestFullSession(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli pulse 0 5 1ns",
		"plan performance 8",
		"run performance",
		"status",
		"tree performance",
		"gantt",
		"analyze",
		"query duration of Create",
		"dump",
		"quit",
	)
	for _, want := range []string{
		"schema circuit: 2 activities",
		"simulated tools bound",
		"imported as stimuli/1",
		"plan v1",
		"iteration(s)",
		"planned finish",
		"task tree (targets: performance)",
		"plan v1 (targets performance)",
		"critical path: Create -> Simulate",
		"duration of Create",
		"schedule space:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("session output missing %q:\n%s", want, out)
		}
	}
}

func TestCommandsBeforeSchema(t *testing.T) {
	out := script(t, "plan performance 8")
	if !strings.Contains(out, "load a schema first") {
		t.Fatalf("missing guard: %s", out)
	}
}

func TestUnknownAndMalformedCommands(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"frobnicate",
		"plan",
		"plan performance zero",
		"import onlyclass",
		"tree",
		"query",
		"save",
	)
	for _, want := range []string{
		`unknown command "frobnicate"`,
		"usage: plan",
		`bad hours "zero"`,
		"usage: import",
		"usage: tree",
		"usage: query",
		"usage: save",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	out := script(t, "", "# a comment", "schema builtin:fig4")
	if strings.Contains(out, "error") {
		t.Fatalf("comment caused error: %s", out)
	}
}

func TestSchemaFromFileAndBadPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flow.fs")
	src := "schema mini\ndata d\ntool t\nrule A: d <- t()\n"
	if err := writeFile(path, src); err != nil {
		t.Fatal(err)
	}
	out := script(t, "schema "+path)
	if !strings.Contains(out, "schema mini: 1 activities") {
		t.Fatalf("file schema not loaded: %s", out)
	}
	out = script(t, "schema /nonexistent/flow.fs")
	if !strings.Contains(out, "error") {
		t.Fatalf("missing error for bad path: %s", out)
	}
}

func TestSaveAndLoadSession(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "session.json")
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"run performance",
		"save "+snap,
	)
	if !strings.Contains(out, "saved") {
		t.Fatalf("save failed: %s", out)
	}
	out = script(t,
		"load "+snap,
		"query duration of Create",
		"dump",
	)
	for _, want := range []string{"restored session", "duration of Create", "sched:Create"} {
		if !strings.Contains(out, want) {
			t.Errorf("restored session missing %q:\n%s", want, out)
		}
	}
	out = script(t, "load /nonexistent.json")
	if !strings.Contains(out, "error") {
		t.Fatalf("missing error: %s", out)
	}
}

func TestAsicBuiltin(t *testing.T) {
	out := script(t, "schema builtin:asic")
	if !strings.Contains(out, "schema asic: 8 activities") {
		t.Fatalf("asic schema: %s", out)
	}
}

// writeFile is a test helper (kept out of main.go).
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestPredictCommand(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli pulse 0 5 1ns",
		"plan performance 8",
		"run performance",
		"predict Create",
		"predict Create ewma",
	)
	for _, want := range []string{"predicted duration of Create", "(mean over", "(ewma over"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	out = script(t,
		"schema builtin:fig4",
		"predict",
		"predict Create psychic",
		"predict Create regression nan",
		"predict Create",
		"predict Nothing",
	)
	for _, want := range []string{"usage: predict", "unknown prediction method", "bad size", "no completed history", "unknown activity"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRiskAndOptimizeCommands(t *testing.T) {
	out := script(t,
		"schema builtin:asic",
		"tools",
		"risk drcreport,lvsreport,timingreport,simreport 200",
		"optimize drcreport,lvsreport,timingreport,simreport 8 6",
	)
	for _, want := range []string{"risk over 200 trials", "p50", "smallest team", "Synthesize"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	out = script(t,
		"schema builtin:fig4",
		"risk",
		"risk performance bogus",
		"optimize performance 8",
		"optimize performance zero 3",
		"optimize performance 8 zero",
	)
	for _, want := range []string{"usage: risk", "bad trial count", "usage: optimize", "bad hours", "bad team size"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExportAndActualsCommands(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "plan.csv")
	mpxPath := filepath.Join(dir, "plan.mpx")
	actualsPath := filepath.Join(dir, "actuals.csv")
	if err := writeFile(actualsPath,
		"Create,1995-06-05T09:00,1995-06-06T17:00,true\n"); err != nil {
		t.Fatal(err)
	}
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"run performance",
		"export csv "+csvPath,
		"export mpx "+mpxPath,
		"export xml nope",
		"export csv",
		"actuals "+actualsPath,
		"actuals /nonexistent.csv",
	)
	for _, want := range []string{
		"exported csv", "exported mpx",
		`unknown export format "xml"`, "usage: export",
		"error:", // actuals after auto-complete re-completes -> error surfaced
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(csvPath)
	if err != nil || !strings.Contains(string(blob), "Create") {
		t.Fatalf("csv file: %v %s", err, blob)
	}
}

func TestMilestoneCommands(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"milestones",
		"milestone perf-done performance 1995-06-09T17:00",
		"milestone bad performance not-a-date",
		"milestone toofew",
		"run performance",
		"milestones",
	)
	for _, want := range []string{
		"no milestones set",
		"milestone perf-done: performance by 1995-06-09T17:00",
		"bad target date",
		"usage: milestone",
		"achieved 1995-06-0",
		"margin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestReportCommand(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"run performance",
		"report",
		"report 30",
		"report zero",
		"report 1 2",
	)
	for _, want := range []string{
		"status report", "runs started", "completed tasks:",
		"bad day count", "usage: report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestBoardAndAnalogBuiltins(t *testing.T) {
	out := script(t,
		"schema builtin:board",
		"tools",
		"import requirements 4-layer, usb-c",
		"plan gerbers 8",
		"run gerbers",
		"schema builtin:analog",
		"tools",
		"import spec bandgap 1.2V",
		"import tbvectors corners tt ff ss",
		"plan postsim 6",
		"run postsim",
	)
	for _, want := range []string{
		"schema board: 6 activities",
		"final gerbers/",
		"schema analog: 6 activities",
		"final postsim/",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestStatsTraceAndEventsCommands(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"run performance",
		"stats",
		"stats json",
		"stats xml",
		"trace",
		"trace 1",
		"trace zero",
		"events",
		"events",
		"events now",
	)
	for _, want := range []string{
		"# TYPE engine_events_total counter",
		"# TYPE store_puts_total counter",
		`engine_events_total{kind="plan_created"} 1`,
		`"kind": "histogram"`, // JSON form
		"usage: stats",
		"engine.execute", // trace tree roots
		"engine.plan",
		"nested span(s)", // depth-limited rendering
		"bad depth",
		"plan-created",
		"run-started",
		"no new events", // cursor advanced: second call prints nothing
		"usage: events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFlightCommand(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"flight",
		"tools",
		"import stimuli vec",
		"risk performance 200",
		"flight",
		"flight extra",
	)
	for _, want := range []string{
		"no operations recorded yet", // before any facade operation
		"recent (1)",
		"slowest (1)",
		"risk",
		"usage: flight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunParallelCommand(t *testing.T) {
	out := script(t,
		"schema builtin:asic",
		"tools",
		"import rtl m",
		"import constraints c",
		"import testbench tb",
		"plan drcreport,lvsreport,timingreport,simreport 8",
		"run drcreport,lvsreport,timingreport,simreport parallel",
		"status",
		"run x sideways",
	)
	for _, want := range []string{"iteration(s)", "done", "usage: run"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPolicyAndFaultsCommands(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"faults", // nothing armed yet
		"policy default",
		"faults seed=10 crash=0.3 corrupt=0.3",
		"run performance",
		"faults",
		"resume", // nothing failed
		"policy off",
		"policy sideways",
		"faults crash=0.5",
		"faults seed=ten",
		"faults chaos",
		"resume now",
	)
	for _, want := range []string{
		"no fault plan armed",
		"policy: backoff 30m0s x2",
		"fault plan armed (seed 10): crash 0.3, hang 0, corrupt 0.3, license outages 0",
		"iteration(s)",
		"fault plan:",
		"injected",
		"nothing to resume",
		"policy: off",
		"usage: policy",
		"faults needs seed=",
		`bad seed "ten"`,
		`bad fault option "chaos"`,
		"usage: resume",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// TestResumeCommand drives the checkpoint path end to end: a violent
// fault plan with no recovery policy kills the run, a benign plan is
// swapped in, and resume finishes the flow.
func TestResumeCommand(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli vec",
		"plan performance 8",
		"faults seed=1 crash=0.95",
		"run performance",
		"faults seed=2", // benign plan replaces the violent one
		"resume",
		"resume", // checkpoint consumed
	)
	for _, want := range []string{
		"run failed:",
		"completed before the failure:",
		"\"resume\" to continue from the checkpoint",
		"final performance/",
		"nothing to resume",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestWhatifCommand(t *testing.T) {
	out := script(t,
		"schema builtin:fig4",
		"tools",
		"import stimuli pulse 0 5 1ns",
		"whatif performance sim-slow=Simulate*2 slip=Create+1d team=parallel",
		"dump",
		"whatif performance",
		"whatif performance bad",
		"whatif performance x=Simulate*fast",
		"whatif performance x=Simulate+soon",
		"whatif performance x=fly",
	)
	for _, want := range []string{
		"What-if sweep toward performance",
		"baseline",
		"sim-slow",
		"slip",
		"team",
		"usage: whatif",
		`bad scenario "bad"`,
		`bad scale "Simulate*fast"`,
		`bad delay "Simulate+soon"`,
		`bad edit "fly"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The sweep ran on forks: the live project database is untouched.
	if strings.Contains(out, "run:Create/") {
		t.Errorf("whatif wrote runs into the live database:\n%s", out)
	}
}

// TestProjectsSubcommand lists a flowservd host root from the manifests
// alone — no project is loaded, no WAL touched.
func TestProjectsSubcommand(t *testing.T) {
	root := t.TempDir()
	for _, id := range []string{"alpha", "beta"} {
		dir := filepath.Join(root, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"schema":"x"}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-project directory must not be listed.
	if err := os.MkdirAll(filepath.Join(root, "lost+found"), 0o755); err != nil {
		t.Fatal(err)
	}
	// beta carries a quarantine marker from a wedged process.
	if err := os.WriteFile(filepath.Join(root, "beta", "quarantined.json"), []byte(`{"error":"disk"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := projectsCmd([]string{root}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"alpha", "beta"} {
		if !strings.Contains(got, want) {
			t.Fatalf("projects output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "lost+found") {
		t.Fatalf("non-project directory listed:\n%s", got)
	}
	for _, line := range strings.Split(got, "\n") {
		switch {
		case strings.HasPrefix(line, "beta") && !strings.Contains(line, "QUARANTINED"):
			t.Fatalf("beta not tagged QUARANTINED:\n%s", got)
		case strings.HasPrefix(line, "alpha") && strings.Contains(line, "QUARANTINED"):
			t.Fatalf("healthy alpha tagged QUARANTINED:\n%s", got)
		}
	}

	if err := projectsCmd(nil, &out); err == nil {
		t.Fatal("missing root accepted")
	}
	if err := projectsCmd([]string{filepath.Join(root, "nope")}, &out); err == nil {
		t.Fatal("nonexistent root accepted")
	}
}
