// Command flowgen generates synthetic design-flow schemas in the
// construction-rule DSL, for feeding the hercules CLI and the scaling
// experiments:
//
//	flowgen -depth 6 -width 4 -fanin 2 -seed 11 > flow.fs
//	hercules <<EOF
//	schema flow.fs
//	...
//	EOF
//
// With -kind fig4, asic, board, or analog it prints built-in schemas instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"flowsched/internal/workload"
)

func main() {
	kind := flag.String("kind", "layered", "schema kind: layered, fig4, asic, board, analog")
	depth := flag.Int("depth", 4, "layers of activities (layered)")
	width := flag.Int("width", 4, "activities per layer (layered)")
	fanin := flag.Int("fanin", 2, "inputs per activity (layered)")
	seed := flag.Int64("seed", 1, "generator seed (layered)")
	flag.Parse()

	switch *kind {
	case "fig4":
		fmt.Print(workload.Fig4().Format())
	case "asic":
		fmt.Print(workload.ASIC().Format())
	case "board":
		fmt.Print(workload.Board().Format())
	case "analog":
		fmt.Print(workload.Analog().Format())
	case "layered":
		sch, err := workload.Layered(workload.LayeredConfig{
			Depth: *depth, Width: *width, FanIn: *fanin, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowgen:", err)
			os.Exit(1)
		}
		fmt.Print(sch.Format())
	default:
		fmt.Fprintf(os.Stderr, "flowgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
