// Command benchserve measures the HTTP serving layer with a closed-loop
// load harness and records the numbers in BENCH_serve.json, the repo's
// performance-trajectory file for the serve path. The server runs on a
// real TCP listener; N clients each keep exactly one request in flight
// (closed loop), so req/s and tail latency reflect the full
// snapshot-render-respond path rather than queueing artifacts.
//
// Every cell is measured twice: cold (the memo cache disabled, each
// request renders from its own snapshot) and cached (the cache warmed,
// each request served from the per-snapshot memo), over the cheap
// /dashboard render and the expensive /risk Monte-Carlo render.
//
// A third mode, edit-read, interleaves an unrelated store mutation
// before every /risk read, so each request lands on a fresh store
// version and the per-snapshot memo can never hit. Only the
// fingerprint tier — keyed on the risk inputs rather than the snapshot
// — keeps the Monte-Carlo off the hot path; the cell records what
// fraction of reads it absorbed.
//
// A final pair of modes prices the request-observability layer itself:
// the warmed /dashboard cell — the cheapest render, where per-request
// tracing and flight recording are the largest relative cost — is
// measured instrumented (the default) and bare
// (Options.DisableRequestObs), and the throughput delta printed.
//
// -write-mix swaps the read sweep for the mutating surface: pure
// serialized write throughput (POST /milestone), an alternating
// write/read mix, and SSE fan-out — N held /events streams while a
// writer commits at full tilt, recording writer throughput and the
// aggregate delivery rate.
//
//	benchserve -label after-serve                # append to BENCH_serve.json
//	benchserve -clients 1,4,16 -dur 2s           # custom sweep
//	benchserve -write-mix                        # write + SSE fan-out cells
//	benchserve -out /tmp/b.json                  # write elsewhere
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowsched"
	"flowsched/internal/serve"
)

// cell is one measured (route, mode, clients) combination.
type cell struct {
	Route     string  `json:"route"`
	Mode      string  `json:"mode"` // "cold" (cache off), "cached" (warmed), "edit-read", "instrumented", or "bare" (request obs off)
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// FingerprintHitPct is the share of requests the fingerprint tier
	// answered (edit-read mode only): reads that skipped the simulation
	// even though every one of them saw a fresh store version.
	FingerprintHitPct float64 `json:"fingerprint_hit_pct,omitempty"`
	// ShedPct is the share of requests shed with 503 (-overload mode
	// only); ReqPerSec then counts goodput — successful responses.
	ShedPct float64 `json:"shed_pct,omitempty"`
	// EventsPerSec is the aggregate SSE delivery rate across all
	// subscribers (-write-mix sse-fanout cell only): events received
	// per second while a writer commits at full tilt.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// entry is one benchserve invocation.
type entry struct {
	Label     string `json:"label"`
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Results   []cell `json:"results"`
}

// file is the BENCH_serve.json document.
type file struct {
	Description string  `json:"description"`
	Benchmarks  []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "trajectory file to append to")
	label := flag.String("label", "run", "label for this entry")
	clientsFlag := flag.String("clients", "1,4,16", "comma-separated closed-loop client counts")
	dur := flag.Duration("dur", 2*time.Second, "measurement window per cell")
	trials := flag.Int("trials", 1000, "Monte-Carlo trials for the /risk route")
	overload := flag.Bool("overload", false, "measure admission control under overload instead of the standard sweep")
	writeMix := flag.Bool("write-mix", false, "measure the mutating routes and SSE fan-out instead of the standard sweep")
	flag.Parse()

	clients, err := parseInts(*clientsFlag)
	if err != nil {
		fatal("bad -clients: %v", err)
	}

	// Validate the trajectory file before spending time on the sweep.
	doc := file{Description: "HTTP serving layer load trajectory (cmd/benchserve closed loop over a tracked fig4 project)"}
	if blob, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			fatal("existing %s is not a benchserve file: %v", *out, err)
		}
	}

	p, err := trackedProject()
	if err != nil {
		fatal("%v", err)
	}

	if *overload {
		e := entry{
			Label: *label + "-overload", Date: time.Now().UTC().Format("2006-01-02"),
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			CPUs: runtime.NumCPU(),
		}
		e.Results = runOverload(p, *dur, *trials)
		doc.Benchmarks = append(doc.Benchmarks, e)
		writeDoc(*out, doc)
		fmt.Printf("appended entry %q to %s\n", e.Label, *out)
		return
	}

	if *writeMix {
		e := entry{
			Label: *label + "-write-mix", Date: time.Now().UTC().Format("2006-01-02"),
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			CPUs: runtime.NumCPU(),
		}
		e.Results = runWriteMix(clients, *dur)
		doc.Benchmarks = append(doc.Benchmarks, e)
		writeDoc(*out, doc)
		fmt.Printf("appended entry %q to %s\n", e.Label, *out)
		return
	}

	routes := []string{
		"/dashboard",
		fmt.Sprintf("/risk?trials=%d&seed=1995", *trials),
	}

	e := entry{
		Label: *label, Date: time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(),
	}
	for _, mode := range []string{"cold", "cached"} {
		base, shutdown, err := startServer(p, mode == "cold", false)
		if err != nil {
			fatal("%v", err)
		}
		for _, route := range routes {
			if mode == "cached" {
				// Warm the memo so the window measures pure hits.
				if err := getOnce(base + route); err != nil {
					fatal("warm %s: %v", route, err)
				}
			}
			for _, n := range clients {
				c := hammer(base, route, mode, n, *dur, nil)
				fmt.Printf("%-28s %-7s clients=%-3d %9.0f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
					route, mode, n, c.ReqPerSec, c.P50Ms, c.P99Ms)
				e.Results = append(e.Results, c)
			}
		}
		shutdown()
	}

	// edit-read: a store mutation before every /risk read. The mutation
	// (a milestone write) advances the store version but leaves the risk
	// inputs alone, so the per-snapshot memo misses on every request and
	// the fingerprint tier is the only thing between the reader and a
	// fresh Monte-Carlo run.
	{
		base, shutdown, err := startServer(p, false, false)
		if err != nil {
			fatal("%v", err)
		}
		route := routes[1]
		if err := getOnce(base + route); err != nil {
			fatal("warm %s: %v", route, err)
		}
		var seq atomic.Int64
		edit := func() {
			target := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC).
				Add(time.Duration(seq.Add(1)) * time.Second)
			if err := p.SetMilestone("bench-edit", "performance", target); err != nil {
				fatal("edit: %v", err)
			}
		}
		const fpHits = `serve_cache_events_total{event="hit",tier="fingerprint"}`
		for _, n := range clients {
			h0 := scrapeCounter(base, fpHits)
			c := hammer(base, route, "edit-read", n, *dur, edit)
			h1 := scrapeCounter(base, fpHits)
			if c.Requests > 0 {
				c.FingerprintHitPct = 100 * float64(h1-h0) / float64(c.Requests)
			}
			fmt.Printf("%-28s %-7s clients=%-3d %9.0f req/s  p50 %7.3f ms  p99 %7.3f ms  fp-hit %5.1f%%\n",
				route, c.Mode, n, c.ReqPerSec, c.P50Ms, c.P99Ms, c.FingerprintHitPct)
			e.Results = append(e.Results, c)
		}
		shutdown()
	}

	// instrumented vs bare: the request-observability overhead on the
	// cheapest (memo-hit) render, where it is proportionally largest.
	// A fresh project keeps the comparison clean — the edit-read phase
	// above left thousands of milestone writes on the shared one, which
	// would swamp both sides with render weight.
	{
		p2, err := trackedProject()
		if err != nil {
			fatal("%v", err)
		}
		rps := map[string]float64{}
		for _, mode := range []string{"instrumented", "bare"} {
			base, shutdown, err := startServer(p2, false, mode == "bare")
			if err != nil {
				fatal("%v", err)
			}
			if err := getOnce(base + "/dashboard"); err != nil {
				fatal("warm /dashboard: %v", err)
			}
			n := clients[len(clients)-1]
			c := hammer(base, "/dashboard", mode, n, *dur, nil)
			fmt.Printf("%-28s %-12s clients=%-3d %9.0f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
				"/dashboard", mode, n, c.ReqPerSec, c.P50Ms, c.P99Ms)
			e.Results = append(e.Results, c)
			rps[mode] = c.ReqPerSec
			shutdown()
		}
		if rps["bare"] > 0 {
			fmt.Printf("request-observability overhead: %.1f%% of bare throughput\n",
				100*(1-rps["instrumented"]/rps["bare"]))
		}
	}

	doc.Benchmarks = append(doc.Benchmarks, e)
	writeDoc(*out, doc)
	fmt.Printf("appended entry %q to %s\n", *label, *out)
}

func writeDoc(out string, doc file) {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
}

// runWriteMix prices the mutating surface and the event stream:
//
//   - write: closed-loop POST /milestone (unique names, so every
//     request commits and bumps the store version) — pure serialized
//     write throughput through the write lock.
//   - write-mix: each client alternates POST /milestone and
//     GET /status — writes invalidating the memo under concurrent
//     snapshot reads, the designer-facing steady state.
//   - sse-fanout: N subscribers hold /events SSE streams while one
//     writer POSTs /import at full tilt; the cell records the writer's
//     throughput with fan-out active and the aggregate delivery rate
//     across subscribers.
//
// Each cell runs on a fresh project so accumulated milestones from one
// cell do not inflate render weight in the next.
func runWriteMix(clients []int, window time.Duration) []cell {
	var out []cell
	var seq atomic.Int64
	milestoneURL := func(base string) string {
		n := seq.Add(1)
		target := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(n) * time.Second)
		return fmt.Sprintf("%s/milestone?name=bench-w-%d&class=performance&target=%s",
			base, n, target.Format(time.RFC3339))
	}

	for _, mode := range []string{"write", "write-mix"} {
		p, err := trackedProject()
		if err != nil {
			fatal("%v", err)
		}
		base, shutdown, err := startServer(p, false, false)
		if err != nil {
			fatal("%v", err)
		}
		for _, n := range clients {
			c := hammerOps(mode, n, window, func(i, iter int, cl *http.Client) (string, error) {
				if mode == "write-mix" && iter%2 == 1 {
					return base + "/status", getWith(cl, base+"/status")
				}
				return "/milestone", postWith(cl, milestoneURL(base))
			})
			c.Route = "/milestone"
			if mode == "write-mix" {
				c.Route = "/milestone+/status"
			}
			fmt.Printf("%-28s %-10s clients=%-3d %9.0f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
				c.Route, mode, n, c.ReqPerSec, c.P50Ms, c.P99Ms)
			out = append(out, c)
		}
		shutdown()
	}

	// SSE fan-out at the largest client count.
	subs := clients[len(clients)-1]
	p, err := trackedProject()
	if err != nil {
		fatal("%v", err)
	}
	base, shutdown, err := startServer(p, false, false)
	if err != nil {
		fatal("%v", err)
	}
	c := sseFanout(base, subs, window)
	fmt.Printf("%-28s %-10s subs=%-5d %9.0f writes/s  %9.0f events/s delivered\n",
		c.Route, c.Mode, subs, c.ReqPerSec, c.EventsPerSec)
	out = append(out, c)
	shutdown()
	return out
}

// hammerOps is the generic closed loop: n clients each run op
// back-to-back for the window; op returns the label only for error
// reporting. All per-request latencies pool into one distribution.
func hammerOps(mode string, n int, window time.Duration, op func(i, iter int, cl *http.Client) (string, error)) cell {
	perClient := make([][]time.Duration, n)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for iter := 0; time.Now().Before(deadline); iter++ {
				t0 := time.Now()
				if label, err := op(i, iter, client); err != nil {
					fatal("%s: %v", label, err)
				}
				perClient[i] = append(perClient[i], time.Since(t0))
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	for _, l := range perClient {
		lat = append(lat, l...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return cell{
		Mode: mode, Clients: n, Requests: len(lat),
		ReqPerSec: float64(len(lat)) / elapsed.Seconds(),
		P50Ms:     ms(percentile(lat, 0.50)),
		P99Ms:     ms(percentile(lat, 0.99)),
	}
}

// sseFanout holds subs event streams open while one writer imports at
// full tilt, and measures both sides: writer throughput with fan-out
// active, and aggregate SSE delivery across subscribers.
func sseFanout(base string, subs int, window time.Duration) cell {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	var wg sync.WaitGroup
	ready := make(chan struct{}, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events?stream=sse", nil)
			if err != nil {
				fatal("sse request: %v", err)
			}
			req.Header.Set("Accept", "text/event-stream")
			res, err := http.DefaultClient.Do(req)
			if err != nil {
				fatal("GET /events: %v", err)
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				fatal("GET /events: status %d", res.StatusCode)
			}
			ready <- struct{}{}
			sc := bufio.NewScanner(res.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "data:") {
					delivered.Add(1)
				}
			}
		}()
	}
	for i := 0; i < subs; i++ {
		<-ready
	}

	writes := 0
	cl := &http.Client{}
	start := time.Now()
	deadline := start.Add(window)
	for time.Now().Before(deadline) {
		if err := postBodyWith(cl, base+"/import?class=stimuli", "pulse 0 5 1ns"); err != nil {
			fatal("POST /import: %v", err)
		}
		writes++
	}
	elapsed := time.Since(start)
	// Give in-flight deliveries a beat to land before tearing streams down.
	time.Sleep(100 * time.Millisecond)
	cancel()
	wg.Wait()

	return cell{
		Route: "/events (sse)", Mode: "sse-fanout", Clients: subs, Requests: writes,
		ReqPerSec:    float64(writes) / elapsed.Seconds(),
		EventsPerSec: float64(delivered.Load()) / elapsed.Seconds(),
	}
}

// runOverload measures what admission control buys: the same /risk
// closed loop at the server's configured capacity and at twice it. An
// overload-safe server sheds the excess (503 + Retry-After) and keeps
// goodput — successful responses per second — near the capacity-limit
// number instead of collapsing under queueing.
func runOverload(p *flowsched.Project, window time.Duration, trials int) []cell {
	// Capacity 16 admits two /risk renders (weight 8 each) at a time
	// with a two-deep wait queue: four closed-loop clients saturate it
	// without shedding, eight force continuous shed decisions.
	const maxInFlight, queueDepth, capacityClients = 16, 2, 4
	route := fmt.Sprintf("/risk?trials=%d&seed=1995", trials)

	s := serve.New(p, serve.Options{
		DisableCache: true, MaxInFlight: maxInFlight, QueueDepth: queueDepth,
		RetryAfter: 10 * time.Millisecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("%v", err)
	}
	go s.Serve(l)
	defer l.Close()
	base := "http://" + l.Addr().String()

	var out []cell
	for _, run := range []struct {
		mode    string
		clients int
	}{
		{"overload-capacity", capacityClients},
		{"overload-2x", 2 * capacityClients},
	} {
		c := hammerOverload(base, route, run.mode, run.clients, window)
		fmt.Printf("%-28s %-18s clients=%-3d %9.0f good req/s  p50 %7.3f ms  p99 %7.3f ms  shed %5.1f%%\n",
			route, run.mode, run.clients, c.ReqPerSec, c.P50Ms, c.P99Ms, c.ShedPct)
		out = append(out, c)
	}
	if cap0, twox := out[0].ReqPerSec, out[1].ReqPerSec; cap0 > 0 {
		fmt.Printf("goodput under 2x overload: %.1f%% of capacity-limit goodput\n", 100*twox/cap0)
	}
	return out
}

// hammerOverload is the shed-tolerant closed loop: 503s are counted,
// backed off briefly, and excluded from goodput and latency; any other
// non-200 is fatal.
func hammerOverload(base, route, mode string, n int, window time.Duration) cell {
	perClient := make([][]time.Duration, n)
	shedByClient := make([]int, n)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				res, err := client.Get(base + route)
				if err != nil {
					fatal("GET %s: %v", route, err)
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				switch res.StatusCode {
				case http.StatusOK:
					perClient[i] = append(perClient[i], time.Since(t0))
				case http.StatusServiceUnavailable:
					shedByClient[i]++
					time.Sleep(2 * time.Millisecond)
				default:
					fatal("GET %s: status %d", route, res.StatusCode)
				}
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	shed := 0
	for i, l := range perClient {
		lat = append(lat, l...)
		shed += shedByClient[i]
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	c := cell{
		Route: route, Mode: mode, Clients: n, Requests: len(lat) + shed,
		ReqPerSec: float64(len(lat)) / elapsed.Seconds(),
		P50Ms:     ms(percentile(lat, 0.50)),
		P99Ms:     ms(percentile(lat, 0.99)),
	}
	if c.Requests > 0 {
		c.ShedPct = 100 * float64(shed) / float64(c.Requests)
	}
	return c
}

// trackedProject builds the serve workload: a fig4 project with one
// tracked run completed, so /dashboard and /risk have real content.
func trackedProject() (*flowsched.Project, error) {
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{
		Designer: "bench", Obs: flowsched.ObsOptions{Enabled: true},
	})
	if err != nil {
		return nil, err
	}
	if err := p.UseSimulatedTools(); err != nil {
		return nil, err
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		return nil, err
	}
	if _, err := p.Plan([]string{"performance"}, flowsched.Fixed{Default: 8 * time.Hour}, flowsched.PlanOptions{}); err != nil {
		return nil, err
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		return nil, err
	}
	return p, nil
}

// startServer serves p on an ephemeral local port and returns the base
// URL plus a shutdown func.
func startServer(p *flowsched.Project, disableCache, disableReqObs bool) (string, func(), error) {
	s := serve.New(p, serve.Options{DisableCache: disableCache, DisableRequestObs: disableReqObs})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go s.Serve(l)
	return "http://" + l.Addr().String(), func() { l.Close() }, nil
}

// hammer runs n closed-loop clients against one route for the window
// and reduces their per-request latencies to throughput and tails. A
// non-nil pre runs before every request (off the latency clock for the
// mutation itself would be dishonest — the edit is part of the
// workload, so it is timed with the read).
func hammer(base, route, mode string, n int, window time.Duration, pre func()) cell {
	perClient := make([][]time.Duration, n)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if pre != nil {
					pre()
				}
				if err := getWith(client, base+route); err != nil {
					fatal("GET %s: %v", route, err)
				}
				perClient[i] = append(perClient[i], time.Since(t0))
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	for _, l := range perClient {
		lat = append(lat, l...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return cell{
		Route: route, Mode: mode, Clients: n, Requests: len(lat),
		ReqPerSec: float64(len(lat)) / elapsed.Seconds(),
		P50Ms:     ms(percentile(lat, 0.50)),
		P99Ms:     ms(percentile(lat, 0.99)),
	}
}

func getOnce(url string) error { return getWith(http.DefaultClient, url) }

// postBodyWith POSTs a small body and drains the response, failing on
// any non-200.
func postBodyWith(c *http.Client, url, body string) error {
	res, err := c.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if _, err := io.Copy(io.Discard, res.Body); err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", res.StatusCode)
	}
	return nil
}

func postWith(c *http.Client, url string) error { return postBodyWith(c, url, "") }

// scrapeCounter reads one counter off the server's /metrics page.
func scrapeCounter(base, name string) int64 {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		fatal("GET /metrics: %v", err)
	}
	defer res.Body.Close()
	blob, err := io.ReadAll(res.Body)
	if err != nil {
		fatal("read /metrics: %v", err)
	}
	for _, line := range strings.Split(string(blob), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				fatal("bad %s value %q", name, f[1])
			}
			return v
		}
	}
	return 0
}

func getWith(c *http.Client, url string) error {
	res, err := c.Get(url)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if _, err := io.Copy(io.Discard, res.Body); err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", res.StatusCode)
	}
	return nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchserve: "+format+"\n", args...)
	os.Exit(1)
}
