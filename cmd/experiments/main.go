// Command experiments regenerates every exhibit of the paper — Table I
// and Figures 1–8 — plus the quantitative experiments E1–E9 and E11 described in
// DESIGN.md.
//
//	experiments               # print every exhibit to stdout
//	experiments -exhibit fig5 # print one exhibit
//	experiments -list         # list exhibit names
package main

import (
	"flag"
	"fmt"
	"os"

	"flowsched/internal/report"
)

type exhibit struct {
	name string
	gen  func() (string, error)
}

func exhibits() []exhibit {
	return []exhibit{
		{"tableI", report.TableIText},
		{"fig1", report.Fig1},
		{"fig2", report.Fig2},
		{"fig3", report.Fig3},
		{"fig4", func() (string, error) { return report.Fig4(), nil }},
		{"fig5", report.Fig5},
		{"fig6", report.Fig6},
		{"fig7", report.Fig7},
		{"fig8", report.Fig8},
		{"e1", report.E1TrackingDrift},
		{"e2", report.E2Prediction},
		{"e3", report.E3Scaling},
		{"e4", report.E4CriticalPath},
		{"e5", report.E5Queries},
		{"e6", report.E6Risk},
		{"e7", report.E7Observability},
		{"e8", report.E8Scenarios},
		{"e9", report.E9FaultTolerance},
		// e10 (HTTP serving under load) is bench-backed only — see
		// cmd/benchserve and EXPERIMENTS.md.
		{"e11", report.E11IncrementalRisk},
	}
}

func main() {
	which := flag.String("exhibit", "all", "exhibit to regenerate (all, tableI, fig1..fig8, e1..e9, e11)")
	list := flag.Bool("list", false, "list exhibit names and exit")
	flag.Parse()

	all := exhibits()
	if *list {
		for _, e := range all {
			fmt.Println(e.name)
		}
		return
	}
	ran := 0
	for _, e := range all {
		if *which != "all" && *which != e.name {
			continue
		}
		out, err := e.gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", e.name, out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown exhibit %q (use -list)\n", *which)
		os.Exit(2)
	}
}
