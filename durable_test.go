package flowsched

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// openDurable opens a durable Fig4 project at dir with tools bound.
func openDurable(t *testing.T, dir string, po PersistOptions) *Project {
	t.Helper()
	po.NoSync = true
	p, err := Open(dir, Fig4Schema, Options{Designer: "ewj"}, po)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	return p
}

// driveTracked runs the standard mid-project workload: import, plan,
// tracked run, milestone.
func driveTracked(t *testing.T, p *Project) {
	t.Helper()
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns")); err != nil {
		t.Fatal(err)
	}
	est := Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	if _, err := p.Plan([]string{"performance"}, est, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMilestone("tapeout", "performance", p.Now().Add(30*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		t.Fatal(err)
	}
}

// identity captures everything recovery must reproduce bit-identically.
type projectIdentity struct {
	version     uint64
	fingerprint string
	now         time.Time
	dump        string
	events      []Event
	planVersion int
	watermarks  map[string]uint64
}

func identityOf(t *testing.T, p *Project) projectIdentity {
	t.Helper()
	fp, err := p.RiskFingerprint([]string{"performance"}, RiskOptions{Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	id := projectIdentity{
		version: p.mgr.DB.Version(), fingerprint: fp, now: p.Now(),
		dump: p.DatabaseDump(), events: p.Events(),
		watermarks: map[string]uint64{},
	}
	if p.CurrentPlan() != nil {
		id.planVersion = p.CurrentPlan().Version
	}
	for _, c := range p.mgr.DB.Containers() {
		id.watermarks[c.Name] = c.Watermark()
	}
	return id
}

func checkIdentity(t *testing.T, want, got projectIdentity) {
	t.Helper()
	if got.version != want.version {
		t.Fatalf("store version = %d, want %d", got.version, want.version)
	}
	if got.fingerprint != want.fingerprint {
		t.Fatalf("risk fingerprint = %q, want %q", got.fingerprint, want.fingerprint)
	}
	if !got.now.Equal(want.now) {
		t.Fatalf("clock = %v, want %v", got.now, want.now)
	}
	if got.dump != want.dump {
		t.Fatalf("database dump changed across recovery:\n%s\nvs\n%s", got.dump, want.dump)
	}
	if !reflect.DeepEqual(got.events, want.events) {
		t.Fatalf("event stream changed: %d events vs %d", len(got.events), len(want.events))
	}
	if got.planVersion != want.planVersion {
		t.Fatalf("tracked plan version = %d, want %d", got.planVersion, want.planVersion)
	}
	if !reflect.DeepEqual(got.watermarks, want.watermarks) {
		t.Fatalf("container watermarks changed: %v vs %v", got.watermarks, want.watermarks)
	}
}

// TestDurableRecoveryBitIdentical is the core replay=rebuild contract:
// a project recovered from its WAL alone (no Close, as after kill -9)
// matches the crashed process bit-for-bit — store version, watermarks,
// risk fingerprint, event stream, clock, tracked plan.
func TestDurableRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	want := identityOf(t, p)
	// No Close: the process "crashes" here; only the WAL survives.

	re := openDurable(t, dir, PersistOptions{})
	checkIdentity(t, want, identityOf(t, re))

	// The recovered project keeps executing and stays durable.
	if _, err := re.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
	want2 := identityOf(t, re)
	re2 := openDurable(t, dir, PersistOptions{})
	checkIdentity(t, want2, identityOf(t, re2))
}

// TestDurableRecoveryViaCheckpoint proves checkpoint + tail replay is
// equivalent to pure replay.
func TestDurableRecoveryViaCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the checkpoint land in the fresh segment.
	if _, err := p.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
	want := identityOf(t, p)

	re := openDurable(t, dir, PersistOptions{})
	checkIdentity(t, want, identityOf(t, re))
}

// TestDurableCloseAndReopen covers the graceful path: Close checkpoints,
// so reopen replays nothing and still matches.
func TestDurableCloseAndReopen(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	want := identityOf(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir, PersistOptions{})
	checkIdentity(t, want, identityOf(t, re))
}

// TestDurableAutoCheckpoint pins the replay-debt bound: with a tiny
// CheckpointEvery, mutating operations install checkpoints on their own.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{CheckpointEvery: 8})
	driveTracked(t, p)
	if p.rec.log.SinceCheckpoint() > 8+64 {
		// An operation may overshoot (checkpoint happens after it), but
		// debt must not accumulate across operations.
		t.Fatalf("replay debt %d with CheckpointEvery=8", p.rec.log.SinceCheckpoint())
	}
	if _, seq, ok := p.rec.log.Checkpoint(); !ok || seq == 0 {
		t.Fatal("no auto-checkpoint installed")
	}
	want := identityOf(t, p)
	re := openDurable(t, dir, PersistOptions{})
	checkIdentity(t, want, identityOf(t, re))
}

// TestDurableSchemaFixedAtCreate: the manifest wins over the schemaSrc
// argument on reopen, and a fresh open without a schema fails.
func TestDurableSchemaFixedAtCreate(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	want := identityOf(t, p)
	re, err := Open(dir, ASICSchema, Options{Designer: "ewj"}, PersistOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.UseSimulatedTools(); err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, want, identityOf(t, re))
	if _, err := Open(t.TempDir(), "", Options{}, PersistOptions{NoSync: true}); err == nil {
		t.Fatal("fresh open without schema accepted")
	}
}

// TestDurableForkIsNotDurable: forks explore what-ifs; they must not
// write to the parent's log.
func TestDurableForkIsNotDurable(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	seq := p.WALSeq()
	f, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.Durable() {
		t.Fatal("fork claims durability")
	}
	if _, err := f.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
	if p.WALSeq() != seq {
		t.Fatalf("fork execution appended %d records to the parent log", p.WALSeq()-seq)
	}
}

// TestDurableTornTailRecoversCleanPrefix damages the live segment's tail
// and recovers: the project must come back as a consistent earlier
// moment, never a partial mutation.
func TestDurableTornTailRecoversCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	p := openDurable(t, dir, PersistOptions{})
	driveTracked(t, p)
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	tail := segs[len(segs)-1]
	b, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, b[:len(b)-len(b)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir, PersistOptions{})
	if got := re.mgr.DB.Version(); got == 0 || got >= p.mgr.DB.Version() {
		t.Fatalf("recovered version %d vs crashed %d — want a non-empty proper prefix",
			got, p.mgr.DB.Version())
	}
	// The recovered prefix is internally consistent: it can keep going.
	if _, err := re.Run([]string{"performance"}, false); err != nil {
		t.Fatal(err)
	}
}
