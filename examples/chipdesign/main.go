// Chipdesign: an RTL-to-signoff ASIC implementation flow under a
// three-person team with resource-constrained scheduling.
//
// This is the workload the paper's introduction motivates: a project
// manager plans a multi-week design schedule, designers execute the flow
// (iterating routing until it converges), and the integrated system keeps
// the schedule current — slips propagate automatically, and the critical
// path is recomputed from live schedule instances.
//
//	go run ./examples/chipdesign
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"flowsched"
)

func main() {
	p, err := flowsched.New(flowsched.ASICSchema, flowsched.Options{Designer: "lead"})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.UseSimulatedTools(); err != nil {
		log.Fatal(err)
	}

	// The routing stage is the project risk: bind a slower, more
	// iterative router than the default.
	router, err := flowsched.NewSimTool("router", "maze-router#2", flowsched.ToolProfile{
		Base: 14 * time.Hour, Jitter: 0.35, MeanIterations: 2.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.BindTool("Route", router); err != nil {
		log.Fatal(err)
	}

	// Import the designer-supplied inputs.
	for class, content := range map[string]string{
		"rtl":         "module alu(input [31:0] a, b, output [31:0] y); ... endmodule",
		"constraints": "create_clock -period 10 clk",
		"testbench":   "initial begin a = 0; b = 0; ... end",
	} {
		if _, err := p.Import(class, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}

	// Plan with a three-person team; one engineer cannot route and run
	// STA at once, so the plan is resource-constrained.
	team := map[string][]string{
		"Synthesize": {"ann"}, "Floorplan": {"bob"}, "Route": {"bob"},
		"Extract": {"cho"}, "DRC": {"cho"}, "LVS": {"cho"},
		"STA": {"ann"}, "GateSim": {"ann"},
	}
	est := flowsched.Fixed{ByActivity: map[string]time.Duration{
		"Synthesize": 16 * time.Hour, "Floorplan": 8 * time.Hour,
		"Route": 24 * time.Hour, "Extract": 6 * time.Hour,
		"DRC": 4 * time.Hour, "LVS": 4 * time.Hour,
		"STA": 8 * time.Hour, "GateSim": 12 * time.Hour,
	}}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	plan, err := p.Plan(targets, est, flowsched.PlanOptions{
		Assignments: team, ResourceConstrained: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan v%d: %d activities, signoff planned %s\n\n",
		plan.Version, len(plan.Activities), plan.Finish.Format("Mon 2006-01-02"))

	// Commit a tape-out milestone one week after the planned signoff and
	// quantify the schedule risk before starting.
	tapeout := plan.Finish.Add(7 * 24 * time.Hour)
	if err := p.SetMilestone("tapeout", "layout", tapeout); err != nil {
		log.Fatal(err)
	}
	risk, err := p.SimulateRisk(targets, 2000, 1995)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule risk (2000 trials): p50 %s, p90 %s of working time\n\n",
		risk.Percentile(0.5).Round(time.Minute), risk.Percentile(0.9).Round(time.Minute))

	// Critical path before execution.
	cpm, err := p.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path (%s working): %s\n\n",
		cpm.Duration, strings.Join(cpm.CriticalPath, " -> "))

	// Execute the whole flow, tracked. The router iterates; expect slip.
	res, err := p.Run(targets, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution outcomes:")
	for _, o := range res.Outcomes {
		fmt.Printf("  %-11s %d iteration(s), finished %s\n",
			o.Activity, o.Iterations, o.Finished.Format("Mon 2006-01-02 15:04"))
	}
	fmt.Println()

	// Status after execution: where did we slip?
	rows, err := p.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %-6s %-15s %-15s %s\n", "activity", "state", "planned", "actual", "slip")
	for _, r := range rows {
		fmt.Printf("%-11s %-6s %-15s %-15s %s\n",
			r.Activity, r.State,
			r.PlannedFinish.Format("01-02 15:04"),
			r.ActualFinish.Format("01-02 15:04"),
			r.Slip.Round(time.Minute))
	}
	fmt.Println()

	chart, err := p.Gantt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)

	// Schedule-data queries for the next project's planning meeting.
	for _, q := range []string{"duration of Route", "mean duration of DRC", "load", "milestones"} {
		ans, err := p.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ans)
	}

	// The weekly status report the integrated system writes for free.
	weekAgo := p.Now().Add(-7 * 24 * time.Hour)
	sr, err := p.StatusReport(weekAgo, p.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(sr)
}
