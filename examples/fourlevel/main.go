// Fourlevel: the generality argument of the paper's §V.
//
// "Because flow management systems provide similar representations and
// models to perform similar activities at each level, the implementation
// of the schedule model could be extended to other flow management
// systems." This example instantiates all six surveyed systems — each
// with a working model core (Petri net for Hilda, trace for VOV, the full
// engine for Hercules, …) — prints the paper's Table I from the live
// adapters, executes the same Fig. 4 flow in each, and attaches the
// schedule model to every one of them.
//
//	go run ./examples/fourlevel
package main

import (
	"fmt"
	"log"
	"time"

	"flowsched/internal/fourlevel"
	"flowsched/internal/workload"
)

func main() {
	systems := fourlevel.AllSystems()
	for _, s := range systems {
		if err := s.Instantiate(workload.Fig4()); err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
	}

	// Table I, from live adapters.
	fmt.Println(fourlevel.TableI(systems))

	// Execute the same flow in each system's own representation.
	fmt.Println("one execution pass of the Fig. 4 flow in each system:")
	fmt.Printf("%-14s %-8s %-8s %s\n", "system", "level3", "level4", "activity order")
	for _, s := range systems {
		sum, err := s.Execute()
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("%-14s %-8d %-8d %v\n", s.Name(), sum.Level3, sum.Level4, sum.Activities)
	}
	fmt.Println()

	// Attach the schedule model to every system (fresh instances so the
	// executions above don't skew the simulated plans).
	fmt.Println("schedule model attached to each system (8h per activity):")
	for _, s := range fourlevel.AllSystems() {
		if err := s.Instantiate(workload.Fig4()); err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		insts, err := fourlevel.AttachSchedule(s, 8*time.Hour)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("%-14s %d schedule instances:", s.Name(), len(insts))
		for _, in := range insts {
			fmt.Printf(" %s@%v", in.Activity, in.Start)
		}
		fmt.Println()
	}
}
