// Blockplan: architectural schedule management — the paper's future work
// (§V): "a schedule model that considers the architectural decomposition
// as well as the task flow … allowing greater precision in tracking,
// predicting, and optimizing design schedules."
//
// A chip is decomposed into blocks (core{alu, regfile}, cache, io); each
// leaf block runs its own copy of the circuit task flow, with durations
// scaled by block size. The architectural schedule rolls block windows up
// the tree, execution actuals roll up too, a chip-level slip is
// attributed down to the leaf block that caused it, and team-size
// optimization answers how many designers the next spin needs.
//
//	go run ./examples/blockplan
package main

import (
	"fmt"
	"log"
	"time"

	"flowsched"
	"flowsched/internal/arch"
)

func main() {
	// Architectural decomposition with block sizes (cell counts).
	decomp, err := arch.NewDecomposition(&arch.Block{
		Name: "chip",
		Children: []*arch.Block{
			{Name: "core", Children: []*arch.Block{
				{Name: "alu", Size: 12000},
				{Name: "regfile", Size: 8000},
			}},
			{Name: "cache", Size: 30000},
			{Name: "io", Size: 5000},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each leaf block is a flowsched project running the Fig. 4 flow;
	// estimates scale with block size (1h of work per 1000 cells per
	// activity).
	projects := make(map[string]*flowsched.Project)
	estFor := func(size float64) flowsched.Estimator {
		return flowsched.Fixed{Default: time.Duration(size/1000) * time.Hour}
	}
	planLeaf := func(block string, size float64) (time.Time, time.Time, error) {
		p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{Designer: block + "-team"})
		if err != nil {
			return time.Time{}, time.Time{}, err
		}
		if err := p.UseSimulatedTools(); err != nil {
			return time.Time{}, time.Time{}, err
		}
		if _, err := p.Import("stimuli", []byte("vectors for "+block)); err != nil {
			return time.Time{}, time.Time{}, err
		}
		plan, err := p.Plan([]string{"performance"}, estFor(size), flowsched.PlanOptions{})
		if err != nil {
			return time.Time{}, time.Time{}, err
		}
		projects[block] = p
		return plan.Start, plan.Finish, nil
	}

	sched, err := decomp.Plan(planLeaf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("architectural plan (rolled up):")
	fmt.Println(sched.Report())

	// Execute every block's flow; record actuals into the block schedule.
	for _, leaf := range decomp.Leaves() {
		p := projects[leaf.Name]
		if _, err := p.Run([]string{"performance"}, true); err != nil {
			log.Fatal(err)
		}
		rows, err := p.Status()
		if err != nil {
			log.Fatal(err)
		}
		start := rows[0].ActualStart
		finish := rows[len(rows)-1].ActualFinish
		if err := sched.RecordActual(leaf.Name, start, finish, true); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("after execution:")
	fmt.Println(sched.Report())

	// Attribute the chip-level slip down the tree.
	chain, err := sched.SlipAttribution("chip")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip slip %s, attributed: %v\n\n",
		sched.Of("chip").Slip().Round(time.Minute), chain)

	// Optimize the team for the next spin of the biggest block.
	next, err := flowsched.New(flowsched.ASICSchema, flowsched.Options{Designer: "cache-team"})
	if err != nil {
		log.Fatal(err)
	}
	targets := []string{"drcreport", "lvsreport", "timingreport", "simreport"}
	tp, err := next.OptimizeTeam(targets, flowsched.Fixed{Default: 10 * time.Hour}, 6, 1.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next spin of cache as full ASIC flow: %d designer(s) reach makespan %s (critical path %s)\n",
		tp.Size, tp.Makespan, tp.CriticalPath)
	for _, a := range tp.Assignments {
		fmt.Printf("  %-11s %-4s %6s .. %s\n", a.Task, a.Resource, a.Start, a.Finish)
	}
}
