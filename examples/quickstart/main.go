// Quickstart: the paper's Fig. 4 circuit-design flow, end to end.
//
// A netlist is created with an editor; a circuit simulator applied to the
// netlist and stimuli yields a performance report. We plan the task by
// simulating its execution, run it for real (the simulated designer
// iterates until the design goals are met), and watch the schedule track
// itself: actual starts recorded automatically, final data linked to
// schedule instances, slips propagated.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"flowsched"
)

func main() {
	// 1. Create the project from the paper's example task schema.
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{Designer: "ewj"})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Bind simulated CAD tools and import the hand-written stimuli.
	if err := p.UseSimulatedTools(); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Import("stimuli", []byte("pulse 0 5 1ns 1ns 1ns 10ns 20ns\n")); err != nil {
		log.Fatal(err)
	}

	// 3. Plan: derive the schedule by simulating the flow's execution.
	est := flowsched.Fixed{ByActivity: map[string]time.Duration{
		"Create":   16 * time.Hour, // two working days
		"Simulate": 8 * time.Hour,  // one working day
	}}
	plan, err := p.Plan([]string{"performance"}, est, flowsched.PlanOptions{
		Assignments: map[string][]string{"Create": {"ewj"}, "Simulate": {"ewj"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan v%d: project finish %s\n\n",
		plan.Version, plan.Finish.Format("Mon 2006-01-02 15:04"))

	// 4. Execute, tracked against the plan.
	res, err := p.Run([]string{"performance"}, true)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range res.Outcomes {
		fmt.Printf("%-10s took %d iteration(s); final design data: %s\n",
			o.Activity, o.Iterations, o.FinalEntity.ID)
	}

	// 5. Examine status: tree view, Gantt chart, queries.
	fmt.Println()
	tree, err := p.TaskTreeView("performance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)
	chart, err := p.Gantt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chart)
	for _, q := range []string{"duration of Create", "duration of Simulate", "lineage"} {
		ans, err := p.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ans)
	}

	// 6. The database now shows the paper's Fig. 7 state: entity
	// instances linked to schedule instances.
	fmt.Println()
	fmt.Println(p.DatabaseDump())
}
