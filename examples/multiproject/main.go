// Multiproject: using previous schedule data to plan future projects.
//
// The paper's §I names this as a key advantage of integration: "previous
// schedule data can be used to predict the duration of future projects."
// Here three generations of the same circuit flow are executed; each new
// project is planned from the measured history of its predecessors, and
// the example compares intuition-based estimates against history-based
// ones.
//
//	go run ./examples/multiproject
package main

import (
	"fmt"
	"log"
	"time"

	"flowsched"
)

// executeProject runs one full fig4 project and returns it.
func executeProject(gen int, est flowsched.Estimator) (*flowsched.Project, error) {
	p, err := flowsched.New(flowsched.Fig4Schema, flowsched.Options{
		Designer: fmt.Sprintf("designer-gen%d", gen),
	})
	if err != nil {
		return nil, err
	}
	if err := p.UseSimulatedTools(); err != nil {
		return nil, err
	}
	// Each generation's stimuli differ, so tool runtimes differ too.
	if _, err := p.Import("stimuli", []byte(fmt.Sprintf("vectors for generation %d", gen))); err != nil {
		return nil, err
	}
	if _, err := p.Plan([]string{"performance"}, est, flowsched.PlanOptions{}); err != nil {
		return nil, err
	}
	if _, err := p.Run([]string{"performance"}, true); err != nil {
		return nil, err
	}
	return p, nil
}

func plannedVsActual(p *flowsched.Project) (est, actual time.Duration, err error) {
	rows, err := p.Status()
	if err != nil {
		return 0, 0, err
	}
	cal := p.Calendar()
	for _, r := range rows {
		est += cal.WorkBetween(r.PlannedStart, r.PlannedFinish)
		actual += cal.WorkBetween(r.ActualStart, r.ActualFinish)
	}
	return est, actual, nil
}

func main() {
	// Generation 1 is planned from pure intuition.
	intuition := flowsched.Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	fmt.Println("generation 1: planned from designer intuition")
	g1, err := executeProject(1, intuition)
	if err != nil {
		log.Fatal(err)
	}
	report(g1)

	// Generation 2 is planned from generation 1's measured history.
	fmt.Println("generation 2: planned from generation 1 history")
	g2, err := executeProject(2, g1.HistoricalEstimator(intuition))
	if err != nil {
		log.Fatal(err)
	}
	report(g2)

	// Generation 3 uses generation 2's history (which itself accumulated
	// both projects' schedule instances via the estimator chain).
	fmt.Println("generation 3: planned from generation 2 history")
	g3, err := executeProject(3, g2.HistoricalEstimator(intuition))
	if err != nil {
		log.Fatal(err)
	}
	report(g3)

	// Show the basis recorded on generation 3's estimates: they are
	// historical, not fixed.
	for _, act := range []string{"Create", "Simulate"} {
		ans, err := g3.Query("estimate of " + act)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ans)
	}
}

func report(p *flowsched.Project) {
	est, actual, err := plannedVsActual(p)
	if err != nil {
		log.Fatal(err)
	}
	errFrac := 0.0
	if actual > 0 {
		errFrac = 100 * (float64(est) - float64(actual)) / float64(actual)
	}
	fmt.Printf("  planned %v vs actual %v working time (error %+.0f%%)\n\n",
		est.Round(time.Minute), actual.Round(time.Minute), errFrac)
}
