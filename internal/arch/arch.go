// Package arch implements the paper's stated future work (§V): "a
// schedule model that considers the architectural decomposition as well
// as the task flow … allowing greater precision in tracking, predicting,
// and optimizing design schedules" (along the lines of Jacome & Director
// [8]).
//
// A Decomposition is a tree of design blocks (chip → units → blocks);
// each leaf block carries its own task flow (a scope within the shared
// task schema, scaled by the block's size). The architectural schedule
// model plans every leaf block with the ordinary flow-schedule machinery
// and rolls the results up the tree, so tracking can attribute a chip-
// level slip to the unit and block that caused it, and prediction can
// scale history by block size.
package arch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Block is a node of the architectural decomposition.
type Block struct {
	// Name is unique within the decomposition (e.g. "alu", "core/alu").
	Name string
	// Size quantifies the block (gate count, cell count); duration
	// estimates scale with it. Leaf blocks need Size > 0.
	Size float64
	// Children are sub-blocks; empty for leaves.
	Children []*Block

	parent *Block
}

// Leaf reports whether the block has no children.
func (b *Block) Leaf() bool { return len(b.Children) == 0 }

// Decomposition is a validated block tree.
type Decomposition struct {
	Root   *Block
	byName map[string]*Block
	leaves []*Block
}

// NewDecomposition validates a block tree: unique non-empty names,
// positive leaf sizes, no sharing.
func NewDecomposition(root *Block) (*Decomposition, error) {
	if root == nil {
		return nil, fmt.Errorf("arch: nil root")
	}
	d := &Decomposition{Root: root, byName: make(map[string]*Block)}
	var walk func(b, parent *Block) error
	walk = func(b, parent *Block) error {
		if b.Name == "" {
			return fmt.Errorf("arch: block with empty name under %q", nameOf(parent))
		}
		if _, dup := d.byName[b.Name]; dup {
			return fmt.Errorf("arch: duplicate block %q", b.Name)
		}
		if b.parent != nil && b.parent != parent {
			return fmt.Errorf("arch: block %q appears in two places", b.Name)
		}
		b.parent = parent
		d.byName[b.Name] = b
		if b.Leaf() {
			if b.Size <= 0 {
				return fmt.Errorf("arch: leaf block %q needs positive size", b.Name)
			}
			d.leaves = append(d.leaves, b)
			return nil
		}
		for _, c := range b.Children {
			if err := walk(c, b); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	return d, nil
}

func nameOf(b *Block) string {
	if b == nil {
		return "(root)"
	}
	return b.Name
}

// Block returns a block by name, or nil.
func (d *Decomposition) Block(name string) *Block { return d.byName[name] }

// Leaves returns the leaf blocks in depth-first order.
func (d *Decomposition) Leaves() []*Block { return append([]*Block(nil), d.leaves...) }

// TotalSize sums leaf sizes under a block.
func (d *Decomposition) TotalSize(b *Block) float64 {
	if b.Leaf() {
		return b.Size
	}
	var total float64
	for _, c := range b.Children {
		total += d.TotalSize(c)
	}
	return total
}

// BlockSchedule is the planned/actual schedule of one block.
type BlockSchedule struct {
	Block         string
	PlannedStart  time.Time
	PlannedFinish time.Time
	ActualStart   time.Time
	ActualFinish  time.Time
	Done          bool
}

// Slip reports the block's finish slip (zero when on time or pending
// without projection).
func (s BlockSchedule) Slip() time.Duration {
	if s.ActualFinish.IsZero() || !s.ActualFinish.After(s.PlannedFinish) {
		return 0
	}
	return s.ActualFinish.Sub(s.PlannedFinish)
}

// Schedule is the architectural schedule: per-leaf schedules plus
// roll-ups for internal blocks.
type Schedule struct {
	d      *Decomposition
	byName map[string]*BlockSchedule
}

// PlanFunc plans one leaf block, returning its planned window. The
// block's size is supplied so estimates can scale.
type PlanFunc func(block string, size float64) (start, finish time.Time, err error)

// Plan builds the architectural schedule by planning every leaf with
// planLeaf and rolling the windows up the tree (an internal block spans
// its children).
func (d *Decomposition) Plan(planLeaf PlanFunc) (*Schedule, error) {
	if planLeaf == nil {
		return nil, fmt.Errorf("arch: nil plan function")
	}
	s := &Schedule{d: d, byName: make(map[string]*BlockSchedule)}
	for _, leaf := range d.leaves {
		start, finish, err := planLeaf(leaf.Name, leaf.Size)
		if err != nil {
			return nil, fmt.Errorf("arch: plan %s: %w", leaf.Name, err)
		}
		if finish.Before(start) {
			return nil, fmt.Errorf("arch: plan %s: finish %v before start %v", leaf.Name, finish, start)
		}
		s.byName[leaf.Name] = &BlockSchedule{
			Block: leaf.Name, PlannedStart: start, PlannedFinish: finish,
		}
	}
	if err := s.rollupPlanned(d.Root); err != nil {
		return nil, err
	}
	return s, nil
}

// rollupPlanned computes internal-block windows from children.
func (s *Schedule) rollupPlanned(b *Block) error {
	if b.Leaf() {
		if s.byName[b.Name] == nil {
			return fmt.Errorf("arch: leaf %q not planned", b.Name)
		}
		return nil
	}
	agg := &BlockSchedule{Block: b.Name}
	for i, c := range b.Children {
		if err := s.rollupPlanned(c); err != nil {
			return err
		}
		cs := s.byName[c.Name]
		if i == 0 || cs.PlannedStart.Before(agg.PlannedStart) {
			agg.PlannedStart = cs.PlannedStart
		}
		if cs.PlannedFinish.After(agg.PlannedFinish) {
			agg.PlannedFinish = cs.PlannedFinish
		}
	}
	s.byName[b.Name] = agg
	return nil
}

// Of returns a block's schedule row, or nil.
func (s *Schedule) Of(block string) *BlockSchedule { return s.byName[block] }

// RecordActual records a leaf block's actual window; Done marks
// completion. Internal blocks update by roll-up.
func (s *Schedule) RecordActual(block string, start, finish time.Time, done bool) error {
	b := s.d.Block(block)
	if b == nil {
		return fmt.Errorf("arch: unknown block %q", block)
	}
	if !b.Leaf() {
		return fmt.Errorf("arch: %q is not a leaf; actuals roll up automatically", block)
	}
	if !finish.IsZero() && finish.Before(start) {
		return fmt.Errorf("arch: block %s: finish %v before start %v", block, finish, start)
	}
	row := s.byName[block]
	row.ActualStart, row.ActualFinish, row.Done = start, finish, done
	s.rollupActual(s.d.Root)
	return nil
}

// rollupActual recomputes internal actual windows: started when any
// child started, finished (and done) when all children are done.
func (s *Schedule) rollupActual(b *Block) (started, finished time.Time, done bool) {
	if b.Leaf() {
		row := s.byName[b.Name]
		return row.ActualStart, row.ActualFinish, row.Done
	}
	done = true
	for _, c := range b.Children {
		cs, cf, cd := s.rollupActual(c)
		if !cs.IsZero() && (started.IsZero() || cs.Before(started)) {
			started = cs
		}
		if cf.After(finished) {
			finished = cf
		}
		if !cd {
			done = false
		}
	}
	row := s.byName[b.Name]
	row.ActualStart = started
	row.Done = done
	if done {
		row.ActualFinish = finished
	} else {
		row.ActualFinish = time.Time{}
	}
	return started, row.ActualFinish, done
}

// SlipAttribution explains a block's slip by its worst-slipping children,
// recursively down to leaves — the "greater precision in tracking" the
// paper's future work asks for. It returns the chain from the given
// block to the leaf most responsible for its slip.
func (s *Schedule) SlipAttribution(block string) ([]string, error) {
	b := s.d.Block(block)
	if b == nil {
		return nil, fmt.Errorf("arch: unknown block %q", block)
	}
	var chain []string
	for {
		chain = append(chain, b.Name)
		if b.Leaf() {
			return chain, nil
		}
		var worst *Block
		var worstSlip time.Duration = -1
		for _, c := range b.Children {
			if sl := s.byName[c.Name].Slip(); sl > worstSlip {
				worst, worstSlip = c, sl
			}
		}
		b = worst
	}
}

// Report renders the schedule tree with plan/actual/slip per block.
func (s *Schedule) Report() string {
	var b strings.Builder
	var walk func(blk *Block, depth int)
	walk = func(blk *Block, depth int) {
		row := s.byName[blk.Name]
		status := "pending"
		switch {
		case row.Done:
			status = "done"
		case !row.ActualStart.IsZero():
			status = "in-progress"
		}
		slip := ""
		if d := row.Slip(); d > 0 {
			slip = fmt.Sprintf("  SLIP %s", d.Round(time.Minute))
		}
		fmt.Fprintf(&b, "%s%-12s [%s .. %s] %s%s\n",
			strings.Repeat("  ", depth), blk.Name,
			row.PlannedStart.Format("01-02"), row.PlannedFinish.Format("01-02"),
			status, slip)
		kids := append([]*Block(nil), blk.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].Name < kids[j].Name })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(s.d.Root, 0)
	return b.String()
}
