package arch

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

func day(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

// chip: core (alu, regfile) + cache.
func chip(t *testing.T) *Decomposition {
	t.Helper()
	d, err := NewDecomposition(&Block{
		Name: "chip",
		Children: []*Block{
			{Name: "core", Children: []*Block{
				{Name: "alu", Size: 12000},
				{Name: "regfile", Size: 8000},
			}},
			{Name: "cache", Size: 30000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// serialPlan plans leaves back to back, one day per 10k size units.
func serialPlan() PlanFunc {
	next := t0
	return func(block string, size float64) (time.Time, time.Time, error) {
		start := next
		finish := start.Add(time.Duration(size/10000*24) * time.Hour)
		next = finish
		return start, finish, nil
	}
}

func TestNewDecompositionValidation(t *testing.T) {
	cases := []struct {
		name string
		root *Block
		want string
	}{
		{"nil root", nil, "nil root"},
		{"empty name", &Block{Name: ""}, "empty name"},
		{"duplicate", &Block{Name: "a", Children: []*Block{
			{Name: "b", Size: 1}, {Name: "b", Size: 1},
		}}, "duplicate"},
		{"zero leaf size", &Block{Name: "a", Children: []*Block{
			{Name: "b"},
		}}, "positive size"},
	}
	for _, tc := range cases {
		if _, err := NewDecomposition(tc.root); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Shared subtree rejected.
	shared := &Block{Name: "s", Size: 1}
	root := &Block{Name: "r", Children: []*Block{
		{Name: "x", Children: []*Block{shared}},
	}}
	if _, err := NewDecomposition(root); err != nil {
		t.Fatal(err)
	}
	root2 := &Block{Name: "r2", Children: []*Block{shared, {Name: "y", Size: 1}}}
	if _, err := NewDecomposition(root2); err == nil {
		t.Fatal("shared block accepted across decompositions")
	}
}

func TestLeavesAndSizes(t *testing.T) {
	d := chip(t)
	leaves := d.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	if got := d.TotalSize(d.Root); got != 50000 {
		t.Fatalf("TotalSize(chip) = %v", got)
	}
	if got := d.TotalSize(d.Block("core")); got != 20000 {
		t.Fatalf("TotalSize(core) = %v", got)
	}
	if d.Block("ghost") != nil {
		t.Fatal("unknown block returned")
	}
}

func TestPlanRollsUp(t *testing.T) {
	d := chip(t)
	s, err := d.Plan(serialPlan())
	if err != nil {
		t.Fatal(err)
	}
	// alu: day 0 → 1.2d; regfile → 2.0d; cache → 5.0d (serial plan).
	core := s.Of("core")
	if core == nil {
		t.Fatal("core not rolled up")
	}
	if !core.PlannedStart.Equal(t0) {
		t.Fatalf("core start = %v", core.PlannedStart)
	}
	if !core.PlannedFinish.Equal(s.Of("regfile").PlannedFinish) {
		t.Fatalf("core finish = %v", core.PlannedFinish)
	}
	chipRow := s.Of("chip")
	if !chipRow.PlannedFinish.Equal(s.Of("cache").PlannedFinish) {
		t.Fatalf("chip finish = %v", chipRow.PlannedFinish)
	}
}

func TestPlanValidation(t *testing.T) {
	d := chip(t)
	if _, err := d.Plan(nil); err == nil {
		t.Fatal("nil plan func accepted")
	}
	bad := func(string, float64) (time.Time, time.Time, error) {
		return day(2), day(1), nil // finish before start
	}
	if _, err := d.Plan(bad); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestRecordActualRollsUp(t *testing.T) {
	d := chip(t)
	s, _ := d.Plan(serialPlan())
	if err := s.RecordActual("alu", t0, day(2), true); err != nil {
		t.Fatal(err)
	}
	core := s.Of("core")
	if !core.ActualStart.Equal(t0) || core.Done {
		t.Fatalf("core after alu = %+v", core)
	}
	if err := s.RecordActual("regfile", day(2), day(3), true); err != nil {
		t.Fatal(err)
	}
	core = s.Of("core")
	if !core.Done || !core.ActualFinish.Equal(day(3)) {
		t.Fatalf("core after both = %+v", core)
	}
	chipRow := s.Of("chip")
	if chipRow.Done {
		t.Fatal("chip done before cache")
	}
	if err := s.RecordActual("cache", day(1), day(6), true); err != nil {
		t.Fatal(err)
	}
	chipRow = s.Of("chip")
	if !chipRow.Done || !chipRow.ActualFinish.Equal(day(6)) || !chipRow.ActualStart.Equal(t0) {
		t.Fatalf("chip = %+v", chipRow)
	}
}

func TestRecordActualValidation(t *testing.T) {
	d := chip(t)
	s, _ := d.Plan(serialPlan())
	if err := s.RecordActual("ghost", t0, day(1), true); err == nil {
		t.Fatal("unknown block accepted")
	}
	if err := s.RecordActual("core", t0, day(1), true); err == nil {
		t.Fatal("internal block accepted")
	}
	if err := s.RecordActual("alu", day(2), day(1), true); err == nil {
		t.Fatal("inverted actuals accepted")
	}
}

func TestSlipAttribution(t *testing.T) {
	d := chip(t)
	s, _ := d.Plan(serialPlan())
	// alu on time; regfile slips 3 days past its plan; cache on time.
	s.RecordActual("alu", t0, s.Of("alu").PlannedFinish, true)
	s.RecordActual("regfile", day(2), s.Of("regfile").PlannedFinish.Add(72*time.Hour), true)
	s.RecordActual("cache", day(1), s.Of("cache").PlannedFinish, true)

	chain, err := s.SlipAttribution("chip")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"chip", "core", "regfile"}
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	if _, err := s.SlipAttribution("ghost"); err == nil {
		t.Fatal("unknown block accepted")
	}
	// Leaf attribution is itself.
	leafChain, _ := s.SlipAttribution("cache")
	if len(leafChain) != 1 || leafChain[0] != "cache" {
		t.Fatalf("leaf chain = %v", leafChain)
	}
}

func TestBlockScheduleSlip(t *testing.T) {
	row := BlockSchedule{PlannedFinish: day(1), ActualFinish: day(3)}
	if row.Slip() != 48*time.Hour {
		t.Fatalf("slip = %v", row.Slip())
	}
	onTime := BlockSchedule{PlannedFinish: day(3), ActualFinish: day(2)}
	if onTime.Slip() != 0 {
		t.Fatalf("early finish slip = %v", onTime.Slip())
	}
	pending := BlockSchedule{PlannedFinish: day(1)}
	if pending.Slip() != 0 {
		t.Fatalf("pending slip = %v", pending.Slip())
	}
}

func TestReport(t *testing.T) {
	d := chip(t)
	s, _ := d.Plan(serialPlan())
	s.RecordActual("alu", t0, s.Of("alu").PlannedFinish.Add(48*time.Hour), true)
	out := s.Report()
	for _, want := range []string{"chip", "core", "alu", "regfile", "cache", "SLIP", "done", "pending"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
