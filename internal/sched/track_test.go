package sched

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/meta"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// trackedFixture sets up fig4 with both schedule and execution spaces on
// one DB, plans, and provides an entity instance to link against.
type trackedFixture struct {
	*fixture
	exec *meta.Space
	plan Plan
}

func newTracked(t *testing.T) *trackedFixture {
	t.Helper()
	fx := newFixture(t, fig4, "performance")
	exec, err := meta.NewSpace(fx.space.DB, fx.space.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fx.space.Plan(fx.tree, t0,
		fixedEst(map[string]int{"Create": 16, "Simulate": 8}), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return &trackedFixture{fixture: fx, exec: exec, plan: res.Plan}
}

// recordNetlist runs Create once and records a netlist entity.
func (fx *trackedFixture) recordNetlist(t *testing.T, start, finish time.Time) *store.Entry {
	t.Helper()
	r, err := fx.exec.BeginRun("Create", "editor#1", "ewj", start)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.exec.FinishRun(r.ID, finish, meta.RunSucceeded); err != nil {
		t.Fatal(err)
	}
	e, err := fx.exec.RecordEntity("netlist", r.ID, design.Ref{Class: "netlist", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMarkStarted(t *testing.T) {
	fx := newTracked(t)
	at := t0.Add(2 * time.Hour)
	if err := fx.space.MarkStarted(&fx.plan, "Create", at); err != nil {
		t.Fatal(err)
	}
	_, in, _ := fx.space.Instance(&fx.plan, "Create")
	if !in.ActualStart.Equal(at) {
		t.Fatalf("ActualStart = %v", in.ActualStart)
	}
	// Second mark is a no-op (first data instance sets the date).
	if err := fx.space.MarkStarted(&fx.plan, "Create", at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, in, _ = fx.space.Instance(&fx.plan, "Create")
	if !in.ActualStart.Equal(at) {
		t.Fatalf("ActualStart overwritten: %v", in.ActualStart)
	}
	if err := fx.space.MarkStarted(&fx.plan, "Nope", at); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestCompleteLinksEntity(t *testing.T) {
	fx := newTracked(t)
	finish := t0.Add(8 * time.Hour)
	ent := fx.recordNetlist(t, t0, finish)
	if err := fx.space.MarkStarted(&fx.plan, "Create", t0); err != nil {
		t.Fatal(err)
	}
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, finish); err != nil {
		t.Fatal(err)
	}
	se, in, _ := fx.space.Instance(&fx.plan, "Create")
	if !in.Done || in.LinkedEntity != ent.ID || !in.ActualFinish.Equal(finish) {
		t.Fatalf("instance = %+v", in)
	}
	// Fig. 7: link is recorded bidirectionally in the database.
	if !fx.space.DB.Linked(se.ID, ent.ID) || !fx.space.DB.Linked(ent.ID, se.ID) {
		t.Fatal("schedule<->entity link missing")
	}
}

func TestCompleteErrors(t *testing.T) {
	fx := newTracked(t)
	finish := t0.Add(8 * time.Hour)
	ent := fx.recordNetlist(t, t0, finish)
	if err := fx.space.Complete(&fx.plan, "Create", "ghost/1", finish); err == nil {
		t.Fatal("missing entity accepted")
	}
	// Linking the wrong class: entity is a netlist, Simulate produces
	// performance.
	if err := fx.space.Complete(&fx.plan, "Simulate", ent.ID, finish); err == nil {
		t.Fatal("class-mismatched link accepted")
	}
	fx.space.MarkStarted(&fx.plan, "Create", t0)
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, t0.Add(-time.Hour)); err == nil {
		t.Fatal("finish before start accepted")
	}
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, finish); err != nil {
		t.Fatal(err)
	}
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, finish); err == nil {
		t.Fatal("double completion accepted")
	}
	if err := fx.space.MarkStarted(&fx.plan, "Create", finish); err == nil {
		t.Fatal("MarkStarted after completion accepted")
	}
}

func TestCompleteWithoutStartSetsStart(t *testing.T) {
	fx := newTracked(t)
	finish := t0.Add(8 * time.Hour)
	ent := fx.recordNetlist(t, t0, finish)
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, finish); err != nil {
		t.Fatal(err)
	}
	_, in, _ := fx.space.Instance(&fx.plan, "Create")
	if !in.Started() {
		t.Fatal("completion did not set actual start")
	}
}

func TestPropagateSlip(t *testing.T) {
	fx := newTracked(t)
	// Create was planned to finish Tue 17:00. It actually finishes
	// Thursday 17:00 — a two-day slip.
	lateFinish := time.Date(1995, time.June, 8, 17, 0, 0, 0, time.UTC)
	ent := fx.recordNetlist(t, t0, lateFinish)
	fx.space.MarkStarted(&fx.plan, "Create", t0)
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, lateFinish); err != nil {
		t.Fatal(err)
	}
	projected, err := fx.space.Propagate(&fx.plan, lateFinish)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate (8h) now starts Friday 09:00 and finishes Friday 17:00.
	_, sim, _ := fx.space.Instance(&fx.plan, "Simulate")
	wantStart := time.Date(1995, time.June, 9, 9, 0, 0, 0, time.UTC)
	wantFinish := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC)
	if !sim.PlannedStart.Equal(wantStart) || !sim.PlannedFinish.Equal(wantFinish) {
		t.Fatalf("Simulate replanned to %v..%v, want %v..%v",
			sim.PlannedStart, sim.PlannedFinish, wantStart, wantFinish)
	}
	if !projected.Equal(wantFinish) {
		t.Fatalf("projected finish = %v, want %v", projected, wantFinish)
	}
	// The plan entry itself was updated.
	_, p, _ := fx.space.PlanByVersion(fx.plan.Version)
	if !p.Finish.Equal(wantFinish) {
		t.Fatalf("persisted plan finish = %v", p.Finish)
	}
}

func TestPropagateRunningTaskCannotFinishInPast(t *testing.T) {
	fx := newTracked(t)
	fx.space.MarkStarted(&fx.plan, "Create", t0)
	// It is now Friday; Create (16h, planned to finish Tuesday) still
	// isn't done — the projected finish must be pushed to now.
	now := time.Date(1995, time.June, 9, 13, 0, 0, 0, time.UTC)
	if _, err := fx.space.Propagate(&fx.plan, now); err != nil {
		t.Fatal(err)
	}
	_, in, _ := fx.space.Instance(&fx.plan, "Create")
	if in.PlannedFinish.Before(now) {
		t.Fatalf("running task projected to finish in the past: %v < %v", in.PlannedFinish, now)
	}
	if !in.PlannedStart.Equal(t0) {
		t.Fatalf("running task lost its actual start: %v", in.PlannedStart)
	}
}

func TestPropagateNoSlipKeepsPlan(t *testing.T) {
	fx := newTracked(t)
	// Propagate immediately at project start: dates should be unchanged.
	orig := map[string][2]time.Time{}
	for _, act := range fx.plan.Activities {
		_, in, _ := fx.space.Instance(&fx.plan, act)
		orig[act] = [2]time.Time{in.PlannedStart, in.PlannedFinish}
	}
	if _, err := fx.space.Propagate(&fx.plan, t0); err != nil {
		t.Fatal(err)
	}
	for _, act := range fx.plan.Activities {
		_, in, _ := fx.space.Instance(&fx.plan, act)
		if !in.PlannedStart.Equal(orig[act][0]) || !in.PlannedFinish.Equal(orig[act][1]) {
			t.Errorf("%s moved without slip: %v..%v", act, in.PlannedStart, in.PlannedFinish)
		}
	}
}

func TestPropagatePrecedencePreserved(t *testing.T) {
	fx := newFixture(t, diamond, "merged")
	res, err := fx.space.Plan(fx.tree, t0, Fixed{Default: 8 * time.Hour}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	now := t0.Add(7 * 24 * time.Hour)
	if _, err := fx.space.Propagate(&res.Plan, now); err != nil {
		t.Fatal(err)
	}
	finish := map[string]time.Time{}
	for _, act := range res.Plan.Activities {
		_, in, _ := fx.space.Instance(&res.Plan, act)
		for _, pred := range predecessorsIn(&res.Plan, fx.space, act) {
			if in.PlannedStart.Before(finish[pred]) {
				t.Errorf("after propagate, %s starts before producer %s finishes", act, pred)
			}
		}
		finish[act] = in.PlannedFinish
	}
}

// Regression pin for the traversal-order invariant: Propagate's single
// forward pass assumes p.Activities is topologically ordered. Pre-pin,
// an out-of-order plan was silently accepted and the consumer read its
// unvisited predecessor's finish as the zero time, pulling dates
// arbitrarily early. Now it must fail loudly.
func TestPropagateRejectsNonTopologicalPlan(t *testing.T) {
	fx := newTracked(t)
	// Sanity: the well-formed plan propagates fine.
	if _, err := fx.space.Propagate(&fx.plan, t0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the order: Simulate consumes Create's netlist, so listing
	// it first violates the invariant.
	bad := fx.plan
	bad.Activities = []string{"Simulate", "Create"}
	_, err := fx.space.Propagate(&bad, t0)
	if err == nil {
		t.Fatal("out-of-order plan accepted; Propagate would read a zero-time predecessor finish")
	}
	if !strings.Contains(err.Error(), "topologically") {
		t.Fatalf("error does not name the invariant: %v", err)
	}
	// The rejected pass must not have rewritten any instance dates.
	_, sim, _ := fx.space.Instance(&fx.plan, "Simulate")
	if sim.PlannedStart.IsZero() || sim.PlannedStart.Before(t0) {
		t.Fatalf("rejected propagate mutated Simulate: start %v", sim.PlannedStart)
	}
}

func TestStatus(t *testing.T) {
	fx := newTracked(t)
	ent := fx.recordNetlist(t, t0, t0.Add(8*time.Hour))
	fx.space.MarkStarted(&fx.plan, "Create", t0)
	now := t0.Add(8 * time.Hour)
	st, err := fx.space.Status(&fx.plan, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("status rows = %d", len(st))
	}
	if st[0].Activity != "Create" || st[0].State != InProgress {
		t.Fatalf("Create status = %+v", st[0])
	}
	if st[1].State != Pending {
		t.Fatalf("Simulate status = %+v", st[1])
	}
	// Complete with a slip: planned Tue 17:00, actual Wed 17:00 → 8h slip.
	late := time.Date(1995, time.June, 7, 17, 0, 0, 0, time.UTC)
	if err := fx.space.Complete(&fx.plan, "Create", ent.ID, late); err != nil {
		t.Fatal(err)
	}
	st, _ = fx.space.Status(&fx.plan, late)
	if st[0].State != Done || st[0].Slip != 8*time.Hour {
		t.Fatalf("completed status = %+v, want 8h slip", st[0])
	}
}

func TestHistoricalEstimator(t *testing.T) {
	fx := newTracked(t)
	// Complete Create with an actual span of 24 working hours (3 days).
	finish := time.Date(1995, time.June, 7, 17, 0, 0, 0, time.UTC)
	ent := fx.recordNetlist(t, t0, finish)
	fx.space.MarkStarted(&fx.plan, "Create", t0)
	fx.space.Complete(&fx.plan, "Create", ent.ID, finish)

	h := Historical{Sched: fx.space, Exec: fx.exec, Fallback: Fixed{Default: 4 * time.Hour}}
	est, err := h.Estimate("Create", fx.space.Schema.RuleByActivity("Create"))
	if err != nil {
		t.Fatal(err)
	}
	if est.Work != 24*time.Hour {
		t.Fatalf("historical estimate = %v, want 24h working time", est.Work)
	}
	if est.Basis != "historical-schedule(n=1)" {
		t.Fatalf("basis = %q", est.Basis)
	}
	// Simulate has no completed history; falls back.
	est2, err := h.Estimate("Simulate", fx.space.Schema.RuleByActivity("Simulate"))
	if err != nil {
		t.Fatal(err)
	}
	if est2.Work != 4*time.Hour || est2.Basis != "fixed-default" {
		t.Fatalf("fallback estimate = %+v", est2)
	}
}

func TestHistoricalFromRuns(t *testing.T) {
	fx := newTracked(t)
	// Two finished Create runs of 8h working time each, no schedule
	// completion: fromRuns totals 16h.
	fx.recordNetlist(t, t0, t0.Add(8*time.Hour))
	day2 := t0.Add(24 * time.Hour)
	fx.recordNetlist(t, day2, day2.Add(8*time.Hour))

	// Use a fresh schedule space so no completed schedule instances exist.
	h := Historical{Sched: fx.space, Exec: fx.exec, Fallback: Fixed{Default: time.Hour}}
	// Clear completion state: plan instances are not Done, so
	// fromSchedule yields nothing and runs are consulted.
	est, err := h.Estimate("Create", fx.space.Schema.RuleByActivity("Create"))
	if err != nil {
		t.Fatal(err)
	}
	if est.Work != 16*time.Hour {
		t.Fatalf("runs-based estimate = %v, want 16h", est.Work)
	}
}

func TestHistoricalNeedsFallback(t *testing.T) {
	h := Historical{}
	if _, err := h.Estimate("X", nil); err == nil {
		t.Fatal("missing fallback accepted")
	}
}

func TestPERTEstimator(t *testing.T) {
	p := PERT{ByActivity: map[string]ThreePoint{
		"Create": {Optimistic: 8 * time.Hour, Likely: 14 * time.Hour, Pessimistic: 32 * time.Hour},
	}}
	est, err := p.Estimate("Create", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := (8*time.Hour + 4*14*time.Hour + 32*time.Hour) / 6
	if est.Work != want {
		t.Fatalf("PERT expected = %v, want %v", est.Work, want)
	}
	if est.Optimistic != 8*time.Hour || est.Pessimistic != 32*time.Hour {
		t.Fatalf("bounds = %v/%v", est.Optimistic, est.Pessimistic)
	}
	if _, err := p.Estimate("Missing", nil); err == nil {
		t.Fatal("missing activity accepted")
	}
	bad := PERT{ByActivity: map[string]ThreePoint{
		"X": {Optimistic: 10 * time.Hour, Likely: 5 * time.Hour, Pessimistic: 20 * time.Hour},
	}}
	if _, err := bad.Estimate("X", nil); err == nil {
		t.Fatal("unordered three-point accepted")
	}
}

func TestPlanKeepsLevel12Untouched(t *testing.T) {
	// Invariant from §IV.A: planning creates only Level 3 schedule data.
	fx := newTracked(t)
	before := fx.space.DB.Stats()[store.ExecutionSpace]
	fx.space.Plan(fx.tree, t0, fixedEst(map[string]int{"Create": 8, "Simulate": 8}), PlanOptions{})
	after := fx.space.DB.Stats()[store.ExecutionSpace]
	if before != after {
		t.Fatalf("planning changed execution space: %+v -> %+v", before, after)
	}
	if fx.space.Schema.Format() == "" {
		t.Fatal("schema lost")
	}
}

var _ = vclock.Standard // keep import if fixtures change
