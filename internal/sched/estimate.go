package sched

import (
	"fmt"
	"time"

	"flowsched/internal/meta"
	"flowsched/internal/schema"
)

// Estimate is one activity-duration estimate.
type Estimate struct {
	// Work is the expected working time.
	Work time.Duration
	// Optimistic and Pessimistic bound Work for PERT-style analysis; both
	// zero when the basis provides only a point estimate.
	Optimistic, Pessimistic time.Duration
	// Basis names the strategy ("fixed", "pert", "historical", …).
	Basis string
}

// Estimator produces duration estimates during schedule planning. §III:
// "the duration of an activity can be based either on the designer's
// intuition or on the measured results of similar tasks" — Fixed/PERT
// capture intuition, Historical captures measurement.
type Estimator interface {
	Estimate(activity string, rule *schema.Rule) (Estimate, error)
}

// Fixed estimates from a per-activity table with an optional default.
type Fixed struct {
	// ByActivity maps activity names to working-time estimates.
	ByActivity map[string]time.Duration
	// Default is used for activities missing from ByActivity; if zero,
	// missing activities are an error.
	Default time.Duration
}

// Estimate implements Estimator.
func (f Fixed) Estimate(activity string, _ *schema.Rule) (Estimate, error) {
	if d, ok := f.ByActivity[activity]; ok {
		return Estimate{Work: d, Basis: "fixed"}, nil
	}
	if f.Default > 0 {
		return Estimate{Work: f.Default, Basis: "fixed-default"}, nil
	}
	return Estimate{}, fmt.Errorf("no fixed estimate for activity %q", activity)
}

// ThreePoint is a PERT three-point estimate for one activity.
type ThreePoint struct {
	Optimistic, Likely, Pessimistic time.Duration
}

// PERT estimates with the classic (O + 4M + P)/6 expected value.
type PERT struct {
	ByActivity map[string]ThreePoint
}

// Estimate implements Estimator.
func (p PERT) Estimate(activity string, _ *schema.Rule) (Estimate, error) {
	tp, ok := p.ByActivity[activity]
	if !ok {
		return Estimate{}, fmt.Errorf("no three-point estimate for activity %q", activity)
	}
	if tp.Optimistic <= 0 || tp.Likely < tp.Optimistic || tp.Pessimistic < tp.Likely {
		return Estimate{}, fmt.Errorf("three-point estimate for %q not ordered (O=%v M=%v P=%v)",
			activity, tp.Optimistic, tp.Likely, tp.Pessimistic)
	}
	expected := (tp.Optimistic + 4*tp.Likely + tp.Pessimistic) / 6
	return Estimate{
		Work: expected, Optimistic: tp.Optimistic, Pessimistic: tp.Pessimistic,
		Basis: "pert",
	}, nil
}

// Historical estimates an activity's duration from the measured spans of
// its prior completed schedule instances and, failing that, from the runs
// recorded in an execution space — "the metadata from previous designs is
// available" (§III). Fallback is used when an activity has no history.
type Historical struct {
	// Sched supplies prior schedule instances (may be from an earlier
	// project's database). Optional.
	Sched *Space
	// Exec supplies prior run metadata. Optional.
	Exec *meta.Space
	// Fallback handles activities with no history. Required.
	Fallback Estimator
}

// Estimate implements Estimator.
func (h Historical) Estimate(activity string, rule *schema.Rule) (Estimate, error) {
	if h.Fallback == nil {
		return Estimate{}, fmt.Errorf("historical estimator needs a fallback")
	}
	if d, n := h.fromSchedule(activity); n > 0 {
		return Estimate{Work: d, Basis: fmt.Sprintf("historical-schedule(n=%d)", n)}, nil
	}
	if d, n := h.fromRuns(activity); n > 0 {
		return Estimate{Work: d, Basis: fmt.Sprintf("historical-runs(n=%d)", n)}, nil
	}
	return h.Fallback.Estimate(activity, rule)
}

// fromSchedule averages the actual working spans of completed schedule
// instances of the activity.
func (h Historical) fromSchedule(activity string) (time.Duration, int) {
	if h.Sched == nil {
		return 0, 0
	}
	_, insts, err := h.Sched.History(activity)
	if err != nil {
		return 0, 0
	}
	var total time.Duration
	n := 0
	for _, in := range insts {
		if !in.Done || in.ActualStart.IsZero() || in.ActualFinish.IsZero() {
			continue
		}
		total += h.Sched.Calendar.WorkBetween(in.ActualStart, in.ActualFinish)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return total / time.Duration(n), n
}

// fromRuns sums, per task completion, the working spans of the activity's
// successful runs; with no completion markers it falls back to the mean
// run span times the observed iteration count.
func (h Historical) fromRuns(activity string) (time.Duration, int) {
	if h.Exec == nil || h.Sched == nil {
		return 0, 0
	}
	_, runs, err := h.Exec.Runs(activity)
	if err != nil {
		return 0, 0
	}
	var total time.Duration
	n := 0
	for _, r := range runs {
		if r.Status == meta.RunInProgress || r.Finished.IsZero() {
			continue
		}
		total += h.Sched.Calendar.WorkBetween(r.Started, r.Finished)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	// All iterations of an activity contribute to one task's duration,
	// so the estimate is the total work across runs (iteration included).
	return total, n
}
