package sched_test

import (
	"testing"
	"testing/quick"
	"time"

	"flowsched/internal/flow"
	"flowsched/internal/sched"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// planRandom plans a random layered workload and returns the space, plan,
// and instances, or false on generation failure (never expected).
func planRandom(t *testing.T, depth, width int, seed int64, constrained bool) (*sched.Space, sched.Plan, []sched.Instance) {
	t.Helper()
	sch, err := workload.Layered(workload.LayeredConfig{
		Depth: depth, Width: width, FanIn: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := flow.FromSchema(sch)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Extract(sch.PrimaryOutputs()...)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.NewSpace(store.NewDB(), sch, vclock.Standard())
	if err != nil {
		t.Fatal(err)
	}
	est, err := workload.Estimates(sch, 8*time.Hour, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	team := []string{"a", "b", "c"}
	res, err := sp.Plan(tree, vclock.Epoch, est, sched.PlanOptions{
		Assignments:         workload.Assignments(sch, team),
		ResourceConstrained: constrained,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, insts, err := sp.Instances(&res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return sp, res.Plan, insts
}

// Property: every planned window lies inside working time — starts and
// finishes are working instants, and the window length equals the
// estimate in working time.
func TestPlanWindowsAreWorkingTime(t *testing.T) {
	cal := vclock.Standard()
	f := func(seed int64, d, w uint8) bool {
		depth, width := int(d%4)+1, int(w%4)+1
		_, _, insts := planRandom(t, depth, width, seed, false)
		for _, in := range insts {
			if !cal.NextWorkInstant(in.PlannedStart).Equal(in.PlannedStart) {
				return false
			}
			if cal.WorkBetween(in.PlannedStart, in.PlannedFinish) != in.EstWork {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the schedule space mirrors the planned scope — exactly one
// instance per activity per plan version (DESIGN.md invariant).
func TestMirrorInvariant(t *testing.T) {
	f := func(seed int64) bool {
		sp, plan, insts := planRandom(t, 3, 3, seed, false)
		if len(insts) != len(plan.Activities) {
			return false
		}
		seen := map[string]bool{}
		for _, in := range insts {
			if in.PlanVersion != plan.Version || seen[in.Activity] {
				return false
			}
			seen[in.Activity] = true
		}
		// Each activity container holds exactly plan-version instances.
		for _, act := range plan.Activities {
			_, hist, err := sp.History(act)
			if err != nil || len(hist) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: under resource constraints, activities sharing a resource
// never overlap, and the constrained finish is never earlier than the
// unconstrained one.
func TestResourceConstraintProperty(t *testing.T) {
	f := func(seed int64) bool {
		_, planU, _ := planRandom(t, 3, 3, seed, false)
		_, planC, instsC := planRandom(t, 3, 3, seed, true)
		if planC.Finish.Before(planU.Finish) {
			return false
		}
		byResource := map[string][]sched.Instance{}
		for _, in := range instsC {
			for _, r := range in.Resources {
				byResource[r] = append(byResource[r], in)
			}
		}
		for _, list := range byResource {
			for i := range list {
				for j := i + 1; j < len(list); j++ {
					a, b := list[i], list[j]
					if a.PlannedStart.Before(b.PlannedFinish) && b.PlannedStart.Before(a.PlannedFinish) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: propagation at arbitrary future instants preserves precedence
// and never projects a finish before `now` for unfinished work.
func TestPropagateProperty(t *testing.T) {
	f := func(seed int64, hoursAhead uint16) bool {
		sp, plan, _ := planRandom(t, 3, 2, seed, false)
		now := vclock.Epoch.Add(time.Duration(hoursAhead%2000) * time.Hour)
		projected, err := sp.Propagate(&plan, now)
		if err != nil {
			return false
		}
		if projected.Before(vclock.Standard().NextWorkInstant(now)) && projected.Before(now) {
			return false
		}
		finish := map[string]time.Time{}
		for _, act := range plan.Activities {
			_, in, err := sp.Instance(&plan, act)
			if err != nil {
				return false
			}
			if in.PlannedFinish.Before(now) {
				return false
			}
			for _, pred := range producersIn(sp, &plan, act) {
				if in.PlannedStart.Before(finish[pred]) {
					return false
				}
			}
			finish[act] = in.PlannedFinish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// producersIn returns the in-plan producer activities of act.
func producersIn(sp *sched.Space, p *sched.Plan, act string) []string {
	inPlan := make(map[string]bool, len(p.Activities))
	for _, a := range p.Activities {
		inPlan[a] = true
	}
	rule := sp.Schema.RuleByActivity(act)
	if rule == nil {
		return nil
	}
	var out []string
	for _, in := range rule.Inputs {
		if prod := sp.Schema.Producer(in); prod != nil && inPlan[prod.Activity] {
			out = append(out, prod.Activity)
		}
	}
	return out
}
