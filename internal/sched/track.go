package sched

import (
	"fmt"
	"time"
)

// MarkStarted records the actual start of an activity under a plan: "once
// a data instance for the particular task is created, the actual start
// date for the task is set" (§IV.C). Marking an already-started activity
// is a no-op, since only the *first* data instance sets the date.
func (s *Space) MarkStarted(p *Plan, activity string, at time.Time) error {
	db, err := s.writable()
	if err != nil {
		return err
	}
	e, in, err := s.Instance(p, activity)
	if err != nil {
		return err
	}
	if in.Done {
		return fmt.Errorf("sched: activity %s already complete", activity)
	}
	if in.Started() && !in.Blocked {
		return nil
	}
	if !in.Started() {
		in.ActualStart = at
	}
	// A blocked activity producing data again is recovering.
	in.Blocked = false
	in.BlockedWhy = ""
	return db.SetPayload(e.ID, in)
}

// Complete marks an activity done: the designer has verified that the
// task's objectives are met and designates entityID as the final design
// data. The schedule instance records the actual finish and is *linked*
// to the entity instance (Fig. 7); the link is bidirectional in the
// database, so schedule queries reach design metadata and vice versa.
func (s *Space) Complete(p *Plan, activity, entityID string, at time.Time) error {
	db, err := s.writable()
	if err != nil {
		return err
	}
	e, in, err := s.Instance(p, activity)
	if err != nil {
		return err
	}
	if in.Done {
		return fmt.Errorf("sched: activity %s already complete", activity)
	}
	ent := db.Get(entityID)
	if ent == nil {
		return fmt.Errorf("sched: entity instance %q does not exist", entityID)
	}
	rule := s.Schema.RuleByActivity(activity)
	if rule != nil && ent.Container != rule.Output {
		return fmt.Errorf("sched: entity %s is a %s instance, but activity %s produces %s",
			entityID, ent.Container, activity, rule.Output)
	}
	if !in.Started() {
		in.ActualStart = at
	}
	if at.Before(in.ActualStart) {
		return fmt.Errorf("sched: completion %v precedes actual start %v", at, in.ActualStart)
	}
	in.ActualFinish = at
	in.Done = true
	in.LinkedEntity = entityID
	in.Blocked = false
	in.BlockedWhy = ""
	if err := db.SetPayload(e.ID, in); err != nil {
		return err
	}
	return db.Link(e.ID, entityID)
}

// MarkBlocked records that an activity's execution exhausted its
// recovery policy (or that a producer's did, fencing this one too). A
// blocked activity is not done — its dates keep slipping with `now` on
// every Propagate until a later execution clears the blockage by
// completing it. Blocking an already-complete activity is rejected.
func (s *Space) MarkBlocked(p *Plan, activity, why string, at time.Time) error {
	db, err := s.writable()
	if err != nil {
		return err
	}
	e, in, err := s.Instance(p, activity)
	if err != nil {
		return err
	}
	if in.Done {
		return fmt.Errorf("sched: activity %s already complete, cannot block", activity)
	}
	in.Blocked = true
	in.BlockedWhy = why
	return db.SetPayload(e.ID, in)
}

// Propagate updates the current plan's dates to reflect reality as of
// now: completed activities contribute their actual finishes, running or
// pending activities are re-simulated forward from max(predecessor
// finish, now). This is the automatic plan update of §IV.C — "if any slip
// in the schedule occurs, the schedule plan updates automatically to
// reflect the new schedule." It returns the new projected project finish.
//
// The single forward pass requires p.Activities in topological order
// (every in-plan predecessor before its consumer — the post order Plan
// produces). A violating plan is rejected loudly rather than silently
// treating an unvisited predecessor as finishing at the zero time.
func (s *Space) Propagate(p *Plan, now time.Time) (time.Time, error) {
	db, err := s.writable()
	if err != nil {
		return time.Time{}, err
	}
	if err := s.checkTopoOrder(p); err != nil {
		return time.Time{}, err
	}
	effFinish := make(map[string]time.Time)
	resFree := make(map[string]time.Time)
	projected := p.Start
	for _, act := range p.Activities {
		e, in, err := s.Instance(p, act)
		if err != nil {
			return time.Time{}, err
		}
		if in.Done {
			effFinish[act] = in.ActualFinish
			if p.ResourceConstrained {
				for _, r := range in.Resources {
					if in.ActualFinish.After(resFree[r]) {
						resFree[r] = in.ActualFinish
					}
				}
			}
			if in.ActualFinish.After(projected) {
				projected = in.ActualFinish
			}
			continue
		}
		earliest := p.Start
		for _, pred := range predecessorsIn(p, s, act) {
			if effFinish[pred].After(earliest) {
				earliest = effFinish[pred]
			}
		}
		if p.ResourceConstrained {
			for _, r := range in.Resources {
				if resFree[r].After(earliest) {
					earliest = resFree[r]
				}
			}
		}
		if in.Started() {
			// A running task keeps its actual start; its finish cannot lie
			// in the past, so slips surface as soon as `now` passes the
			// original planned finish without completion.
			in.PlannedStart = in.ActualStart
			pf := s.Calendar.AddWork(in.ActualStart, in.EstWork)
			if lower := s.Calendar.NextWorkInstant(now); lower.After(pf) {
				pf = lower
			}
			in.PlannedFinish = pf
		} else {
			if now.After(earliest) {
				earliest = now
			}
			in.PlannedStart = s.Calendar.NextWorkInstant(earliest)
			in.PlannedFinish = s.Calendar.AddWork(in.PlannedStart, in.EstWork)
		}
		effFinish[act] = in.PlannedFinish
		if p.ResourceConstrained {
			for _, r := range in.Resources {
				if in.PlannedFinish.After(resFree[r]) {
					resFree[r] = in.PlannedFinish
				}
			}
		}
		if in.PlannedFinish.After(projected) {
			projected = in.PlannedFinish
		}
		if err := db.SetPayload(e.ID, in); err != nil {
			return time.Time{}, err
		}
	}
	// Persist the new projected finish on the plan entry.
	planEntry, plan, err := s.PlanByVersion(p.Version)
	if err != nil {
		return time.Time{}, err
	}
	plan.Finish = projected
	if err := db.SetPayload(planEntry.ID, plan); err != nil {
		return time.Time{}, err
	}
	p.Finish = projected
	return projected, nil
}

// checkTopoOrder verifies the traversal-order invariant Propagate's
// single forward pass depends on: every in-plan predecessor of an
// activity appears earlier in p.Activities. Plan emits activities in
// dependency post order, so a violation means the plan was corrupted
// (or hand-built) and must not be propagated — the pass would read the
// unvisited predecessor's effective finish as the zero time and pull
// its consumers arbitrarily early.
func (s *Space) checkTopoOrder(p *Plan) error {
	pos := make(map[string]int, len(p.Activities))
	for i, a := range p.Activities {
		pos[a] = i
	}
	for i, act := range p.Activities {
		for _, pred := range predecessorsIn(p, s, act) {
			if pos[pred] > i {
				return fmt.Errorf("sched: plan v%d is not topologically ordered: %s (position %d) precedes its predecessor %s (position %d)",
					p.Version, act, i, pred, pos[pred])
			}
		}
	}
	return nil
}

// predecessorsIn returns the in-plan producer activities of act.
func predecessorsIn(p *Plan, s *Space, act string) []string {
	inPlan := make(map[string]bool, len(p.Activities))
	for _, a := range p.Activities {
		inPlan[a] = true
	}
	rule := s.Schema.RuleByActivity(act)
	if rule == nil {
		return nil
	}
	var out []string
	for _, in := range rule.Inputs {
		if prod := s.Schema.Producer(in); prod != nil && inPlan[prod.Activity] {
			out = append(out, prod.Activity)
		}
	}
	return out
}

// State classifies an activity's progress.
type State string

const (
	Pending    State = "pending"
	InProgress State = "in-progress"
	Done       State = "done"
	// Blocked marks an activity fenced off after exhausting its recovery
	// policy; its slip keeps growing with `now` until re-execution
	// completes it.
	Blocked State = "blocked"
)

// ActivityStatus is one row of a plan status report: proposed schedule
// beside accomplished schedule, the two series a Gantt chart displays
// (§IV.B).
type ActivityStatus struct {
	Activity      string
	State         State
	Resources     []string
	PlannedStart  time.Time
	PlannedFinish time.Time
	ActualStart   time.Time
	ActualFinish  time.Time
	// Slip is the working time by which the activity's (actual or
	// currently projected) finish exceeds zero slip against the plan
	// version's original intent; negative means ahead of schedule is not
	// reported (clamped to zero).
	Slip time.Duration
}

// Status reports the per-activity plan-vs-actual state of a plan as of
// now. Slip for a finished activity compares actual to planned finish;
// for an unfinished one it compares the projected finish (planned finish
// after Propagate) with `now` pressure applied by the caller beforehand.
func (s *Space) Status(p *Plan, now time.Time) ([]ActivityStatus, error) {
	var out []ActivityStatus
	for _, act := range p.Activities {
		_, in, err := s.Instance(p, act)
		if err != nil {
			return nil, err
		}
		st := ActivityStatus{
			Activity: act, Resources: in.Resources,
			PlannedStart: in.PlannedStart, PlannedFinish: in.PlannedFinish,
			ActualStart: in.ActualStart, ActualFinish: in.ActualFinish,
		}
		switch {
		case in.Done:
			st.State = Done
			st.Slip = s.Calendar.WorkBetween(in.PlannedFinish, in.ActualFinish)
		case in.Blocked:
			st.State = Blocked
			st.Slip = s.Calendar.WorkBetween(in.PlannedFinish, now)
		case in.Started():
			st.State = InProgress
			st.Slip = s.Calendar.WorkBetween(in.PlannedFinish, now)
		default:
			st.State = Pending
			st.Slip = s.Calendar.WorkBetween(in.PlannedFinish, now)
		}
		out = append(out, st)
	}
	return out, nil
}
