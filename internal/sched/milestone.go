package sched

import (
	"fmt"
	"sort"
	"time"

	"flowsched/internal/store"
)

// MilestoneContainer holds the milestone instances of the schedule space.
const MilestoneContainer = "milestone"

// Milestone is the payload of a milestone instance: a named target date
// bound to a data class — the "proposed milestones" of the paper's
// Fig. 1. A milestone is achieved when the activity producing its data
// class completes under the tracked plan.
type Milestone struct {
	Name string `json:"name"`
	// Class is the data class whose final version marks the milestone
	// (e.g. "layout" for a tape-out milestone).
	Class string `json:"class"`
	// Target is the committed date.
	Target time.Time `json:"target"`
	// PlanVersion ties the milestone to the plan it was set against.
	PlanVersion int `json:"planVersion"`
	// Achieved and AchievedAt record completion.
	Achieved   bool      `json:"achieved"`
	AchievedAt time.Time `json:"achievedAt,omitempty"`
}

// ensureMilestones creates the milestone container on first use.
func (s *Space) ensureMilestones() error {
	db, err := s.writable()
	if err != nil {
		return err
	}
	_, err = db.CreateContainer(MilestoneContainer, store.ScheduleSpace, "milestone")
	return err
}

// SetMilestone records a milestone against a plan. The class must be
// produced by an in-plan activity.
func (s *Space) SetMilestone(p *Plan, name, class string, target time.Time) (*store.Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("sched: empty milestone name")
	}
	rule := s.Schema.Producer(class)
	if rule == nil {
		return nil, fmt.Errorf("sched: class %q has no producing activity", class)
	}
	inPlan := false
	for _, a := range p.Activities {
		if a == rule.Activity {
			inPlan = true
			break
		}
	}
	if !inPlan {
		return nil, fmt.Errorf("sched: producer %s of %s is not in plan v%d",
			rule.Activity, class, p.Version)
	}
	if err := s.ensureMilestones(); err != nil {
		return nil, err
	}
	return s.DB.Put(MilestoneContainer, target, Milestone{
		Name: name, Class: class, Target: target, PlanVersion: p.Version,
	})
}

// milestonesWritable reports whether milestone achievement can be persisted
// (false for a view-bound space, where refreshes are computed in memory).
func (s *Space) milestonesWritable() bool { return s.DB != nil }

// Milestones returns the milestone instances for a plan version, sorted
// by target date.
func (s *Space) Milestones(p *Plan) ([]*store.Entry, []Milestone, error) {
	c := s.Reader().Container(MilestoneContainer)
	if c == nil {
		return nil, nil, nil // none set
	}
	var entries []*store.Entry
	var ms []Milestone
	for _, e := range c.Entries {
		var m Milestone
		if err := e.Decode(&m); err != nil {
			return nil, nil, err
		}
		if m.PlanVersion != p.Version {
			continue
		}
		entries = append(entries, e)
		ms = append(ms, m)
	}
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Target.Before(ms[j].Target) })
	sort.SliceStable(entries, func(i, j int) bool {
		var a, b Milestone
		entries[i].Decode(&a)
		entries[j].Decode(&b)
		return a.Target.Before(b.Target)
	})
	return entries, ms, nil
}

// RefreshMilestones updates milestone achievement from the plan's
// completion state: a milestone is achieved when the producing activity
// of its class is done, at that activity's actual finish. It returns the
// refreshed milestones. On a view-bound space the achievement is computed
// in memory only — reporting stays correct, nothing is persisted.
func (s *Space) RefreshMilestones(p *Plan) ([]Milestone, error) {
	entries, ms, err := s.Milestones(p)
	if err != nil {
		return nil, err
	}
	for i := range ms {
		if ms[i].Achieved {
			continue
		}
		rule := s.Schema.Producer(ms[i].Class)
		if rule == nil {
			continue
		}
		_, in, err := s.Instance(p, rule.Activity)
		if err != nil {
			return nil, err
		}
		if in.Done {
			ms[i].Achieved = true
			ms[i].AchievedAt = in.ActualFinish
			if s.milestonesWritable() {
				if err := s.DB.SetPayload(entries[i].ID, ms[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return ms, nil
}

// MilestoneStatus is one row of a milestone report.
type MilestoneStatus struct {
	Milestone
	// Margin is the working time between (projected or actual) completion
	// and the target: positive = ahead, negative = late.
	Margin time.Duration
}

// MilestoneReport refreshes and scores every milestone of a plan. For an
// unachieved milestone the producing activity's current planned finish is
// the projection.
func (s *Space) MilestoneReport(p *Plan) ([]MilestoneStatus, error) {
	ms, err := s.RefreshMilestones(p)
	if err != nil {
		return nil, err
	}
	var out []MilestoneStatus
	for _, m := range ms {
		row := MilestoneStatus{Milestone: m}
		var ref time.Time
		if m.Achieved {
			ref = m.AchievedAt
		} else {
			rule := s.Schema.Producer(m.Class)
			_, in, err := s.Instance(p, rule.Activity)
			if err != nil {
				return nil, err
			}
			ref = in.PlannedFinish
		}
		if ref.After(m.Target) {
			row.Margin = -s.Calendar.WorkBetween(m.Target, ref)
		} else {
			row.Margin = s.Calendar.WorkBetween(ref, m.Target)
		}
		out = append(out, row)
	}
	return out, nil
}
