package sched

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/meta"
)

// newExecSpace attaches an execution space to a fixture's database so
// completion links have entity containers to point at.
func newExecSpace(fx *fixture) (*meta.Space, error) {
	return meta.NewSpace(fx.space.DB, fx.space.Schema)
}

// milestoneFixture plans fig4 and returns plan + space.
func milestoneFixture(t *testing.T) (*Space, Plan) {
	t.Helper()
	fx := newFixture(t, fig4, "performance")
	res, err := fx.space.Plan(fx.tree, t0,
		fixedEst(map[string]int{"Create": 16, "Simulate": 8}), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return fx.space, res.Plan
}

func TestSetMilestone(t *testing.T) {
	sp, plan := milestoneFixture(t)
	target := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC)
	e, err := sp.SetMilestone(&plan, "first-silicon-model", "performance", target)
	if err != nil {
		t.Fatal(err)
	}
	if e.Container != MilestoneContainer {
		t.Fatalf("container = %s", e.Container)
	}
	_, ms, err := sp.Milestones(&plan)
	if err != nil || len(ms) != 1 || ms[0].Name != "first-silicon-model" {
		t.Fatalf("milestones = %+v, %v", ms, err)
	}
}

func TestSetMilestoneValidation(t *testing.T) {
	sp, plan := milestoneFixture(t)
	target := t0.Add(24 * time.Hour)
	if _, err := sp.SetMilestone(&plan, "", "performance", target); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := sp.SetMilestone(&plan, "m", "stimuli", target); err == nil {
		t.Fatal("primary-input class accepted")
	}
	if _, err := sp.SetMilestone(&plan, "m", "ghost", target); err == nil {
		t.Fatal("unknown class accepted")
	}
	// Out-of-plan producer: extract a partial plan with only Create.
	fx := newFixture(t, fig4, "netlist")
	res, _ := fx.space.Plan(fx.tree, t0, fixedEst(map[string]int{"Create": 8}), PlanOptions{})
	if _, err := fx.space.SetMilestone(&res.Plan, "m", "performance", target); err == nil ||
		!strings.Contains(err.Error(), "not in plan") {
		t.Fatalf("err = %v", err)
	}
}

func TestMilestonesSortedAndScoped(t *testing.T) {
	sp, plan := milestoneFixture(t)
	late := t0.Add(20 * 24 * time.Hour)
	early := t0.Add(5 * 24 * time.Hour)
	sp.SetMilestone(&plan, "late", "performance", late)
	sp.SetMilestone(&plan, "early", "netlist", early)
	_, ms, err := sp.Milestones(&plan)
	if err != nil || len(ms) != 2 {
		t.Fatalf("milestones = %+v, %v", ms, err)
	}
	if ms[0].Name != "early" || ms[1].Name != "late" {
		t.Fatalf("order = %v %v", ms[0].Name, ms[1].Name)
	}
	// A second plan sees no milestones from the first.
	fx := newFixture(t, fig4, "performance")
	res2, _ := fx.space.Plan(fx.tree, t0, fixedEst(map[string]int{"Create": 8, "Simulate": 8}), PlanOptions{})
	_, none, err := fx.space.Milestones(&res2.Plan)
	if err != nil || len(none) != 0 {
		t.Fatalf("cross-plan milestones = %+v", none)
	}
}

func TestMilestonesNoneSet(t *testing.T) {
	sp, plan := milestoneFixture(t)
	entries, ms, err := sp.Milestones(&plan)
	if err != nil || entries != nil || ms != nil {
		t.Fatalf("unset milestones = %v %v %v", entries, ms, err)
	}
	if _, err := sp.RefreshMilestones(&plan); err != nil {
		t.Fatal(err)
	}
}

func TestMilestoneAchievementAndReport(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	// Attach an execution space for completion links.
	tf := &trackedFixture{fixture: fx}
	exec, err := newExecSpace(fx)
	if err != nil {
		t.Fatal(err)
	}
	tf.exec = exec
	res, err := fx.space.Plan(fx.tree, t0,
		fixedEst(map[string]int{"Create": 16, "Simulate": 8}), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tf.plan = res.Plan

	// Milestone: netlist done by Thursday 17:00.
	target := time.Date(1995, time.June, 8, 17, 0, 0, 0, time.UTC)
	if _, err := fx.space.SetMilestone(&tf.plan, "netlist-frozen", "netlist", target); err != nil {
		t.Fatal(err)
	}
	// Before completion: pending, margin = planned finish (Tue 17:00) to
	// target (Thu 17:00) = +16h.
	report, err := fx.space.MilestoneReport(&tf.plan)
	if err != nil {
		t.Fatal(err)
	}
	if report[0].Achieved || report[0].Margin != 16*time.Hour {
		t.Fatalf("pending report = %+v", report[0])
	}
	// Complete Create one day late (Wed 17:00): achieved, margin +8h.
	finish := time.Date(1995, time.June, 7, 17, 0, 0, 0, time.UTC)
	ent := tf.recordNetlist(t, t0, finish)
	fx.space.MarkStarted(&tf.plan, "Create", t0)
	if err := fx.space.Complete(&tf.plan, "Create", ent.ID, finish); err != nil {
		t.Fatal(err)
	}
	report, err = fx.space.MilestoneReport(&tf.plan)
	if err != nil {
		t.Fatal(err)
	}
	if !report[0].Achieved || !report[0].AchievedAt.Equal(finish) {
		t.Fatalf("achieved report = %+v", report[0])
	}
	if report[0].Margin != 8*time.Hour {
		t.Fatalf("margin = %v, want 8h", report[0].Margin)
	}
	// A missed milestone shows negative margin: target before completion.
	early := time.Date(1995, time.June, 6, 17, 0, 0, 0, time.UTC)
	fx.space.SetMilestone(&tf.plan, "optimistic", "netlist", early)
	report, _ = fx.space.MilestoneReport(&tf.plan)
	var missed *MilestoneStatus
	for i := range report {
		if report[i].Name == "optimistic" {
			missed = &report[i]
		}
	}
	if missed == nil || missed.Margin != -8*time.Hour {
		t.Fatalf("missed = %+v", missed)
	}
}
