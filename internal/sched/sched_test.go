package sched

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/flow"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch // Monday 1995-06-05 09:00 UTC

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

const diamond = `
schema diamond
data src, left, right, merged
tool t
rule A: src    <- t()
rule B: left   <- t(src)
rule C: right  <- t(src)
rule D: merged <- t(left, right)
`

type fixture struct {
	space *Space
	tree  *flow.Tree
}

func newFixture(t *testing.T, src, target string) *fixture {
	t.Helper()
	sch := schema.MustParse(src)
	g, err := flow.FromSchema(sch)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Extract(target)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpace(store.NewDB(), sch, vclock.Standard())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{space: sp, tree: tree}
}

func fixedEst(hours map[string]int) Fixed {
	m := make(map[string]time.Duration, len(hours))
	for k, v := range hours {
		m[k] = time.Duration(v) * time.Hour
	}
	return Fixed{ByActivity: m}
}

func TestNewSpaceCreatesScheduleContainers(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	for _, name := range []string{PlanContainer, "sched:Create", "sched:Simulate"} {
		if fx.space.DB.Container(name) == nil {
			t.Errorf("container %q missing", name)
		}
	}
	// §IV.A: the schedule model has no effect on Level 1 — NewSpace only
	// creates schedule-space containers.
	for _, c := range fx.space.DB.Containers() {
		if c.Space != store.ScheduleSpace {
			t.Errorf("unexpected non-schedule container %q", c.Name)
		}
	}
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(store.NewDB(), schema.New("empty"), vclock.Standard()); err == nil {
		t.Fatal("invalid schema accepted")
	}
	if _, err := NewSpace(store.NewDB(), schema.MustParse(fig4), nil); err == nil {
		t.Fatal("nil calendar accepted")
	}
}

func TestPlanSimulatesPostOrder(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	res, err := fx.space.Plan(fx.tree, t0, fixedEst(map[string]int{"Create": 16, "Simulate": 8}), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	if p.Version != 1 {
		t.Fatalf("version = %d", p.Version)
	}
	_, create, err := fx.space.Instance(&p, "Create")
	if err != nil {
		t.Fatal(err)
	}
	_, sim, err := fx.space.Instance(&p, "Simulate")
	if err != nil {
		t.Fatal(err)
	}
	// Create: Mon 09:00 + 16h work = Tue 17:00. Simulate starts Wed 09:00
	// (next work instant after Tue 17:00) + 8h = Wed 17:00.
	if !create.PlannedStart.Equal(t0) {
		t.Errorf("Create start = %v", create.PlannedStart)
	}
	wantCreateFinish := time.Date(1995, time.June, 6, 17, 0, 0, 0, time.UTC)
	if !create.PlannedFinish.Equal(wantCreateFinish) {
		t.Errorf("Create finish = %v, want %v", create.PlannedFinish, wantCreateFinish)
	}
	wantSimStart := time.Date(1995, time.June, 7, 9, 0, 0, 0, time.UTC)
	if !sim.PlannedStart.Equal(wantSimStart) {
		t.Errorf("Simulate start = %v, want %v", sim.PlannedStart, wantSimStart)
	}
	wantSimFinish := time.Date(1995, time.June, 7, 17, 0, 0, 0, time.UTC)
	if !sim.PlannedFinish.Equal(wantSimFinish) {
		t.Errorf("Simulate finish = %v, want %v", sim.PlannedFinish, wantSimFinish)
	}
	if !p.Finish.Equal(wantSimFinish) {
		t.Errorf("plan finish = %v, want %v", p.Finish, wantSimFinish)
	}
}

func TestPlanValidation(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	est := fixedEst(map[string]int{"Create": 8, "Simulate": 8})
	if _, err := fx.space.Plan(nil, t0, est, PlanOptions{}); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := fx.space.Plan(fx.tree, t0, nil, PlanOptions{}); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, err := fx.space.Plan(fx.tree, t0, Fixed{}, PlanOptions{}); err == nil {
		t.Fatal("estimator without data accepted")
	}
	if _, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{BasedOn: []string{"ghost/1"}}); err == nil {
		t.Fatal("bogus basedOn accepted")
	}
	bad := Fixed{ByActivity: map[string]time.Duration{"Create": -time.Hour, "Simulate": time.Hour}}
	if _, err := fx.space.Plan(fx.tree, t0, bad, PlanOptions{}); err == nil {
		t.Fatal("negative estimate accepted")
	}
}

// Fig. 5: planning twice yields two schedule-instance versions per
// activity container (CC1, CC2 / SC1, SC2) and two plan versions.
func TestFig5TwoPlanningPasses(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	est := fixedEst(map[string]int{"Create": 16, "Simulate": 8})
	r1, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fx.space.Plan(fx.tree, t0.Add(24*time.Hour), est, PlanOptions{BasedOn: []string{r1.Entry.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Plan.Version != 2 {
		t.Fatalf("second plan version = %d", r2.Plan.Version)
	}
	for _, act := range []string{"Create", "Simulate"} {
		c := fx.space.DB.Container(Container(act))
		if len(c.Entries) != 2 {
			t.Errorf("%s schedule container has %d instances, want 2 (Fig. 5)", act, len(c.Entries))
		}
	}
	dump := fx.space.DB.Dump()
	for _, want := range []string{"sched:Create/2", "sched:Simulate/2", "schedule/2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Lineage: plan 2 derives from plan 1.
	chain, err := fx.space.Lineage(r2.Entry.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != r1.Entry.ID {
		t.Fatalf("Lineage = %v", chain)
	}
}

func TestCurrentPlanAndByVersion(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	_, p, err := fx.space.CurrentPlan()
	if err != nil || p != nil {
		t.Fatalf("empty CurrentPlan = %v, %v", p, err)
	}
	est := fixedEst(map[string]int{"Create": 8, "Simulate": 8})
	fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	_, cur, err := fx.space.CurrentPlan()
	if err != nil || cur == nil || cur.Version != 2 {
		t.Fatalf("CurrentPlan = %+v, %v", cur, err)
	}
	_, p1, err := fx.space.PlanByVersion(1)
	if err != nil || p1.Version != 1 {
		t.Fatalf("PlanByVersion(1) = %+v, %v", p1, err)
	}
	if _, _, err := fx.space.PlanByVersion(9); err == nil {
		t.Fatal("missing version accepted")
	}
}

func TestPlanParallelBranches(t *testing.T) {
	fx := newFixture(t, diamond, "merged")
	est := fixedEst(map[string]int{"A": 8, "B": 8, "C": 16, "D": 8})
	res, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, b, _ := fx.space.Instance(&res.Plan, "B")
	_, c, _ := fx.space.Instance(&res.Plan, "C")
	_, d, _ := fx.space.Instance(&res.Plan, "D")
	// B and C both start when A finishes (parallel, unconstrained).
	if !b.PlannedStart.Equal(c.PlannedStart) {
		t.Errorf("B and C start apart: %v vs %v", b.PlannedStart, c.PlannedStart)
	}
	// D starts at max(B,C) = C's finish.
	if !d.PlannedStart.Equal(fx.space.Calendar.NextWorkInstant(c.PlannedFinish)) {
		t.Errorf("D start = %v, want after C finish %v", d.PlannedStart, c.PlannedFinish)
	}
}

func TestPlanResourceConstrained(t *testing.T) {
	fx := newFixture(t, diamond, "merged")
	est := fixedEst(map[string]int{"A": 8, "B": 8, "C": 8, "D": 8})
	assign := map[string][]string{"A": {"pat"}, "B": {"pat"}, "C": {"pat"}, "D": {"pat"}}
	unres, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{Assignments: assign})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{Assignments: assign, ResourceConstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Finish.After(unres.Plan.Finish) {
		t.Fatalf("resource-constrained finish %v not after unconstrained %v",
			res.Plan.Finish, unres.Plan.Finish)
	}
	// With one person, B and C serialize.
	_, b, _ := fx.space.Instance(&res.Plan, "B")
	_, c, _ := fx.space.Instance(&res.Plan, "C")
	if b.PlannedStart.Equal(c.PlannedStart) {
		t.Error("B and C overlap despite shared resource")
	}
}

func TestInstanceErrors(t *testing.T) {
	fx := newFixture(t, fig4, "performance")
	est := fixedEst(map[string]int{"Create": 8, "Simulate": 8})
	res, _ := fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	if _, _, err := fx.space.Instance(&res.Plan, "Nope"); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if _, _, err := fx.space.History("Nope"); err == nil {
		t.Fatal("unknown history activity accepted")
	}
	if _, err := fx.space.Lineage("ghost/1"); err == nil {
		t.Fatal("bogus lineage id accepted")
	}
}

func TestInstancesPostOrder(t *testing.T) {
	fx := newFixture(t, diamond, "merged")
	est := Fixed{Default: 8 * time.Hour}
	res, err := fx.space.Plan(fx.tree, t0, est, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entries, insts, err := fx.space.Instances(&res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || len(insts) != 4 {
		t.Fatalf("Instances = %d entries", len(entries))
	}
	if insts[0].Activity != "A" || insts[3].Activity != "D" {
		t.Fatalf("order = %v...%v", insts[0].Activity, insts[3].Activity)
	}
	// Post-order invariant: every instance's planned start is at or after
	// all in-plan producers' planned finishes.
	finish := map[string]time.Time{}
	for _, in := range insts {
		for _, pred := range predecessorsIn(&res.Plan, fx.space, in.Activity) {
			if in.PlannedStart.Before(finish[pred]) {
				t.Errorf("%s starts %v before producer %s finishes %v",
					in.Activity, in.PlannedStart, pred, finish[pred])
			}
		}
		finish[in.Activity] = in.PlannedFinish
	}
}
