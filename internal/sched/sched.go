// Package sched implements the paper's primary contribution: the design
// schedule model, integrated at Level 3 of the flow-management
// architecture.
//
// A design schedule is derived by *simulating the execution of a flow*
// (paper §III): planning performs the same post-order traversal of the task
// tree that execution does, but instead of running tools it creates
// *schedule instances* — one per activity — recording who should perform
// the activity, when it should start, and how long it should take. The
// schedule instances mirror the entity instances of the execution space
// (Fig. 3): a Plan in the schedule space corresponds to a Run in the
// execution space, schedule instances correspond to entity instances.
//
// A plan can be recreated at any time; each planning pass appends new
// versions of the schedule instances (Fig. 5 shows containers holding
// CC1/CC2 and SC1/SC2 after two passes). Tracking links schedule instances
// to the entity instances that complete their tasks (Fig. 7) and
// propagates slips through the remaining plan automatically (§IV.C).
package sched

import (
	"fmt"
	"time"

	"flowsched/internal/flow"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// Container returns the schedule-space container name for an activity.
func Container(activity string) string { return "sched:" + activity }

// PlanContainer is the container holding one instance per planning pass,
// the schedule-space analogue of a Run.
const PlanContainer = "schedule"

// Instance is the payload of a schedule instance: the Level 3 schedule
// data for one activity under one plan version. Quoting §III: "if Level 3
// design metadata describes when an activity is performed and by whom,
// Level 3 schedule data ought to describe when an activity should be
// performed and which person or persons are assigned the task."
type Instance struct {
	Activity    string `json:"activity"`
	PlanVersion int    `json:"planVersion"`
	// Resources are the persons (or machines) assigned to the activity.
	Resources []string `json:"resources,omitempty"`
	// EstWork is the estimated working time for the activity, including
	// expected iteration.
	EstWork time.Duration `json:"estWork"`
	// Optimistic/Pessimistic are the PERT three-point bounds on EstWork
	// (zero when the estimation basis does not provide them).
	Optimistic  time.Duration `json:"optimistic,omitempty"`
	Pessimistic time.Duration `json:"pessimistic,omitempty"`
	// Basis names the estimation strategy that produced EstWork.
	Basis string `json:"basis"`
	// PlannedStart/PlannedFinish are the simulated execution dates.
	PlannedStart  time.Time `json:"plannedStart"`
	PlannedFinish time.Time `json:"plannedFinish"`
	// ActualStart is set when the first data instance for the task is
	// created (§IV.C); ActualFinish when the designer marks the task
	// complete.
	ActualStart  time.Time `json:"actualStart,omitempty"`
	ActualFinish time.Time `json:"actualFinish,omitempty"`
	// Done reports task completion; LinkedEntity is the ID of the final
	// entity instance linked to this schedule instance.
	Done         bool   `json:"done"`
	LinkedEntity string `json:"linkedEntity,omitempty"`
	// Blocked marks an activity whose execution exhausted its recovery
	// policy (or whose producer did): it is fenced off, its dates keep
	// slipping with `now` until it is re-executed. BlockedWhy records the
	// cause for status surfaces.
	Blocked    bool   `json:"blocked,omitempty"`
	BlockedWhy string `json:"blockedWhy,omitempty"`
}

// Started reports whether the activity has begun executing.
func (in *Instance) Started() bool { return !in.ActualStart.IsZero() }

// Plan is the payload of one planning pass over a task tree. Its BasedOn
// field records plan lineage — the schedule *metadata* the paper's §IV.B
// queries ("which schedule plans were used to create the present plan").
type Plan struct {
	Version   int       `json:"version"`
	Targets   []string  `json:"targets"`
	Start     time.Time `json:"start"`
	CreatedAt time.Time `json:"createdAt"`
	// Activities in post order, with their schedule instance IDs.
	Activities []string          `json:"activities"`
	Instances  map[string]string `json:"instances"` // activity -> entry ID
	// BasedOn are the plan entry IDs this plan was derived from.
	BasedOn []string `json:"basedOn,omitempty"`
	// Finish is the planned project completion (max planned finish).
	Finish time.Time `json:"finish"`
	// ResourceConstrained records whether the plan serialized activities
	// sharing a resource; slip propagation honors the same discipline.
	ResourceConstrained bool `json:"resourceConstrained,omitempty"`
}

// Space is the schedule space of a task database for one schema.
//
// A Space is normally bound to a live *store.DB and supports both reads and
// writes. AtView rebinds it to an immutable snapshot: reads then answer
// from a consistent moment of the database and every write method fails.
type Space struct {
	// DB is the write target; nil for a view-bound (read-only) space.
	DB       *store.DB
	Schema   *schema.Schema
	Calendar *vclock.Calendar

	// rd overrides the read source when view-bound; nil means read the DB.
	rd store.Reader
}

// Reader returns the space's read source: the bound snapshot for a
// view-bound space, otherwise the live database.
func (s *Space) Reader() store.Reader {
	if s.rd != nil {
		return s.rd
	}
	return s.DB
}

// AtView returns a read-only copy of the space whose queries execute
// against the snapshot v. Write methods (Plan, MarkStarted, Complete,
// Propagate, SetMilestone, …) return an error on the returned space.
func (s *Space) AtView(v *store.View) *Space {
	return &Space{Schema: s.Schema, Calendar: s.Calendar, rd: v}
}

// writable returns the live DB, or an error for a view-bound space.
func (s *Space) writable() (*store.DB, error) {
	if s.DB == nil {
		return nil, fmt.Errorf("sched: space is bound to a read-only view")
	}
	return s.DB, nil
}

// NewSpace initializes the schedule space. As §IV.A requires, containers
// are created from the task schema — one per activity (construction-rule
// function) plus the plan container — and Level 1/2 data is untouched.
func NewSpace(db *store.DB, sch *schema.Schema, cal *vclock.Calendar) (*Space, error) {
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if cal == nil {
		return nil, fmt.Errorf("sched: nil calendar")
	}
	if _, err := db.CreateContainer(PlanContainer, store.ScheduleSpace, "plan"); err != nil {
		return nil, err
	}
	for _, r := range sch.Rules() {
		if _, err := db.CreateContainer(Container(r.Activity), store.ScheduleSpace, r.Activity); err != nil {
			return nil, err
		}
	}
	return &Space{DB: db, Schema: sch, Calendar: cal}, nil
}

// PlanOptions tunes a planning pass.
type PlanOptions struct {
	// Assignments maps activities to assigned resources. Activities
	// without an entry get no resource (allowed: estimation still works).
	Assignments map[string][]string
	// ResourceConstrained serializes activities sharing a resource: an
	// activity cannot start before all its resources are free.
	ResourceConstrained bool
	// BasedOn records the plan entry IDs this plan derives from; the new
	// plan entry also gets store dependencies on them.
	BasedOn []string
}

// PlanResult pairs a created plan with its entry.
type PlanResult struct {
	Entry *store.Entry
	Plan  Plan
}

// Plan simulates the execution of the task tree starting at start,
// creating one new schedule instance per in-scope activity and a new plan
// version. The simulation walks the tree in post order — exactly the
// traversal Execute performs — computing planned dates on the calendar:
// an activity starts when its last in-scope producer finishes (and, under
// ResourceConstrained, when its resources are free), and finishes after
// its estimated working time.
func (s *Space) Plan(tree *flow.Tree, start time.Time, est Estimator, opt PlanOptions) (*PlanResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("sched: nil task tree")
	}
	if est == nil {
		return nil, fmt.Errorf("sched: nil estimator")
	}
	db, err := s.writable()
	if err != nil {
		return nil, err
	}
	for _, b := range opt.BasedOn {
		e := db.Get(b)
		if e == nil || e.Container != PlanContainer {
			return nil, fmt.Errorf("sched: basedOn %q is not a plan entry", b)
		}
	}
	version := len(db.Container(PlanContainer).Entries) + 1
	finishOf := make(map[string]time.Time) // activity -> planned finish
	resFree := make(map[string]time.Time)  // resource -> free at
	instIDs := make(map[string]string)
	projectFinish := start

	for _, act := range tree.Activities() {
		rule := s.Schema.RuleByActivity(act)
		e, err := est.Estimate(act, rule)
		if err != nil {
			return nil, fmt.Errorf("sched: estimate %s: %w", act, err)
		}
		if e.Work <= 0 {
			return nil, fmt.Errorf("sched: estimate for %s is non-positive (%v)", act, e.Work)
		}
		earliest := start
		for _, pred := range tree.Graph.Predecessors(act) {
			if tree.Contains(pred) && finishOf[pred].After(earliest) {
				earliest = finishOf[pred]
			}
		}
		resources := opt.Assignments[act]
		if opt.ResourceConstrained {
			for _, r := range resources {
				if resFree[r].After(earliest) {
					earliest = resFree[r]
				}
			}
		}
		ps := s.Calendar.NextWorkInstant(earliest)
		pf := s.Calendar.AddWork(ps, e.Work)
		finishOf[act] = pf
		if opt.ResourceConstrained {
			for _, r := range resources {
				resFree[r] = pf
			}
		}
		if pf.After(projectFinish) {
			projectFinish = pf
		}
		entry, err := db.Put(Container(act), start, Instance{
			Activity: act, PlanVersion: version,
			Resources: append([]string(nil), resources...),
			EstWork:   e.Work, Optimistic: e.Optimistic, Pessimistic: e.Pessimistic,
			Basis:        e.Basis,
			PlannedStart: ps, PlannedFinish: pf,
		})
		if err != nil {
			return nil, err
		}
		instIDs[act] = entry.ID
	}

	p := Plan{
		Version: version, Targets: append([]string(nil), tree.Targets...),
		Start: start, CreatedAt: start,
		Activities: tree.Activities(), Instances: instIDs,
		BasedOn:             append([]string(nil), opt.BasedOn...),
		Finish:              projectFinish,
		ResourceConstrained: opt.ResourceConstrained,
	}
	entry, err := db.Put(PlanContainer, start, p, opt.BasedOn...)
	if err != nil {
		return nil, err
	}
	return &PlanResult{Entry: entry, Plan: p}, nil
}

// CurrentPlan returns the latest plan, or nil if none has been created.
func (s *Space) CurrentPlan() (*store.Entry, *Plan, error) {
	c := s.Reader().Container(PlanContainer)
	if c == nil {
		return nil, nil, fmt.Errorf("sched: schedule space not initialized")
	}
	e := c.Latest()
	if e == nil {
		return nil, nil, nil
	}
	var p Plan
	if err := e.Decode(&p); err != nil {
		return nil, nil, err
	}
	return e, &p, nil
}

// PlanByVersion returns the plan with the given version.
func (s *Space) PlanByVersion(version int) (*store.Entry, *Plan, error) {
	e := s.Reader().Get(fmt.Sprintf("%s/%d", PlanContainer, version))
	if e == nil {
		return nil, nil, fmt.Errorf("sched: no plan version %d", version)
	}
	var p Plan
	if err := e.Decode(&p); err != nil {
		return nil, nil, err
	}
	return e, &p, nil
}

// Instance returns the schedule instance of an activity under a plan.
func (s *Space) Instance(p *Plan, activity string) (*store.Entry, *Instance, error) {
	id, ok := p.Instances[activity]
	if !ok {
		return nil, nil, fmt.Errorf("sched: activity %q not in plan version %d", activity, p.Version)
	}
	e := s.Reader().Get(id)
	if e == nil {
		return nil, nil, fmt.Errorf("sched: dangling instance %q", id)
	}
	var in Instance
	if err := e.Decode(&in); err != nil {
		return nil, nil, err
	}
	return e, &in, nil
}

// Instances returns all schedule instances of a plan in post order.
func (s *Space) Instances(p *Plan) ([]*store.Entry, []Instance, error) {
	entries := make([]*store.Entry, 0, len(p.Activities))
	insts := make([]Instance, 0, len(p.Activities))
	for _, act := range p.Activities {
		e, in, err := s.Instance(p, act)
		if err != nil {
			return nil, nil, err
		}
		entries = append(entries, e)
		insts = append(insts, *in)
	}
	return entries, insts, nil
}

// History returns every schedule instance ever created for an activity, in
// version order — the raw material for §IV.B's schedule-data queries.
func (s *Space) History(activity string) ([]*store.Entry, []Instance, error) {
	c := s.Reader().Container(Container(activity))
	if c == nil {
		return nil, nil, fmt.Errorf("sched: unknown activity %q", activity)
	}
	insts := make([]Instance, len(c.Entries))
	for i, e := range c.Entries {
		if err := e.Decode(&insts[i]); err != nil {
			return nil, nil, err
		}
	}
	return append([]*store.Entry(nil), c.Entries...), insts, nil
}

// Lineage returns the ancestor chain of a plan entry (the plans it was
// based on, transitively), oldest first — §IV.B's schedule-metadata query
// "show the evolution of a design schedule".
func (s *Space) Lineage(planID string) ([]string, error) {
	e := s.Reader().Get(planID)
	if e == nil || e.Container != PlanContainer {
		return nil, fmt.Errorf("sched: %q is not a plan entry", planID)
	}
	var chain []string
	seen := map[string]bool{planID: true}
	var walk func(id string) error
	walk = func(id string) error {
		entry := s.Reader().Get(id)
		var p Plan
		if err := entry.Decode(&p); err != nil {
			return err
		}
		for _, parent := range p.BasedOn {
			if seen[parent] {
				continue
			}
			seen[parent] = true
			if err := walk(parent); err != nil {
				return err
			}
			chain = append(chain, parent)
		}
		return nil
	}
	if err := walk(planID); err != nil {
		return nil, err
	}
	return chain, nil
}
