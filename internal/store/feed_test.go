package store

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// replay applies a recorded mutation stream to an empty database the way
// WAL recovery does.
func replay(t *testing.T, muts []Mutation) *DB {
	t.Helper()
	db := NewDB()
	for _, m := range muts {
		switch m.Kind {
		case MutCreate:
			if _, err := db.CreateContainer(m.Container, m.Space, m.Class); err != nil {
				t.Fatalf("replay create: %v", err)
			}
		case MutPut:
			e := m.Entry
			var payload any
			if e.Payload != nil {
				payload = e.Payload
			}
			got, err := db.Put(e.Container, e.Created, payload, e.Deps...)
			if err != nil {
				t.Fatalf("replay put: %v", err)
			}
			if got.ID != e.ID {
				t.Fatalf("replay put id = %q, want %q", got.ID, e.ID)
			}
		case MutPayload:
			if err := db.SetPayload(m.ID, m.Payload); err != nil {
				t.Fatalf("replay payload: %v", err)
			}
		case MutLink:
			if err := db.Link(m.A, m.B); err != nil {
				t.Fatalf("replay link: %v", err)
			}
		default:
			t.Fatalf("replay: unknown kind %q", m.Kind)
		}
		if got := db.Version(); got != m.Version {
			t.Fatalf("replay %s: version = %d, want %d", m.Kind, got, m.Version)
		}
	}
	return db
}

// mutate drives one of every mutation shape, including the no-op paths
// that must stay silent on the feed.
func mutate(t *testing.T, db *DB) {
	t.Helper()
	mustCreate := func(name string, sp Space, class string) {
		if _, err := db.CreateContainer(name, sp, class); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("netlist", ExecutionSpace, "netlist")
	mustCreate("sched:Create", ScheduleSpace, "Create")
	mustCreate("netlist", ExecutionSpace, "netlist") // idempotent: no commit
	if _, err := db.Put("netlist", t0, map[string]int{"gates": 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("sched:Create", t0.Add(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("netlist", t0.Add(2), "v2", "netlist/1"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetPayload("netlist/1", map[string]int{"gates": 150}); err != nil {
		t.Fatal(err)
	}
	if err := db.Link("netlist/1", "sched:Create/1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Link("netlist/1", "sched:Create/1"); err != nil { // no-op: no commit
		t.Fatal(err)
	}
	if err := db.Link("netlist/2", "sched:Create/1"); err != nil {
		t.Fatal(err)
	}
}

func TestCommitFeedReplayIsBitIdentical(t *testing.T) {
	db := NewDB()
	var muts []Mutation
	db.SetCommitHook(func(m Mutation) { muts = append(muts, m) })
	mutate(t, db)

	// Idempotent create and duplicate link committed nothing: 2 creates,
	// 3 puts, 1 payload, 2 links. Each link bumped the version twice (one
	// clone-and-swap per endpoint) but emitted once.
	if len(muts) != 8 {
		t.Fatalf("recorded %d mutations, want 8", len(muts))
	}
	if got := db.Version(); got != 10 {
		t.Fatalf("version = %d, want 10", got)
	}

	got := replay(t, muts)
	if got.Version() != db.Version() {
		t.Fatalf("replayed version = %d, want %d", got.Version(), db.Version())
	}
	a, _ := json.Marshal(db)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("replayed database differs:\n%s\nvs\n%s", a, b)
	}
	for _, c := range db.Containers() {
		if rc := got.Container(c.Name); rc == nil || rc.Watermark() != c.Watermark() {
			t.Fatalf("container %q watermark not reproduced", c.Name)
		}
	}
}

func TestCommitFeedVersionsAreCommitted(t *testing.T) {
	db := NewDB()
	var last uint64
	db.SetCommitHook(func(m Mutation) {
		if m.Version <= last {
			t.Fatalf("feed version went %d -> %d", last, m.Version)
		}
		last = m.Version
		if got := db.version; got != m.Version {
			t.Fatalf("feed version %d but db at %d", m.Version, got)
		}
	})
	mutate(t, db)
	if last != db.Version() {
		t.Fatalf("last feed version %d, db version %d", last, db.Version())
	}
}

func TestCommitFeedSilentOnNoOps(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Put("netlist", t0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("sched:Create", t0, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Link("netlist/1", "sched:Create/1"); err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(func(m Mutation) {
		t.Fatalf("no-op emitted %+v", m)
	})
	if _, err := db.CreateContainer("netlist", ExecutionSpace, "netlist"); err != nil {
		t.Fatal(err)
	}
	if err := db.Link("netlist/1", "sched:Create/1"); err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(nil)
	if _, err := db.Put("netlist", t0, nil); err != nil { // hook removed
		t.Fatal(err)
	}
}

func TestForkedChildDoesNotInheritHook(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Put("netlist", t0, nil); err != nil {
		t.Fatal(err)
	}
	fired := 0
	db.SetCommitHook(func(Mutation) { fired++ })
	child := db.ForkAt(db.Snapshot())
	before := fired
	if _, err := child.Put("netlist", t0, nil); err != nil {
		t.Fatal(err)
	}
	if fired != before {
		t.Fatal("child mutation reached parent hook")
	}
}

func TestStateRoundTripPreservesIdentity(t *testing.T) {
	db := NewDB()
	mutate(t, db)

	st := db.State()
	// Marshal/unmarshal to prove the checkpoint survives serialization.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := FromState(&back)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != db.Version() {
		t.Fatalf("restored version = %d, want %d", got.Version(), db.Version())
	}
	want := db.Containers()
	have := got.Containers()
	if len(want) != len(have) {
		t.Fatalf("container count %d, want %d", len(have), len(want))
	}
	for i, c := range want {
		r := have[i]
		if r.Name != c.Name || r.Space != c.Space || r.Class != c.Class {
			t.Fatalf("container %d mismatch: %+v vs %+v", i, r, c)
		}
		if r.Watermark() != c.Watermark() {
			t.Fatalf("container %q watermark = %d, want %d", c.Name, r.Watermark(), c.Watermark())
		}
		if !reflect.DeepEqual(r.Entries, c.Entries) {
			t.Fatalf("container %q entries differ", c.Name)
		}
	}

	// Writes to the restored database must not bleed into the original
	// through the aliased entry slices.
	if err := got.SetPayload("netlist/1", "mutated"); err != nil {
		t.Fatal(err)
	}
	if string(db.Get("netlist/1").Payload) == `"mutated"` {
		t.Fatal("restored-database write visible in original")
	}
}

func TestStateAliasesAreCopyOnWrite(t *testing.T) {
	db := NewDB()
	mutate(t, db)
	st := db.State()
	before := string(st.Containers[0].Entries[0].Payload)
	// Mutating the live database after State must not change the state.
	if err := db.SetPayload("netlist/1", "after-state"); err != nil {
		t.Fatal(err)
	}
	if got := string(st.Containers[0].Entries[0].Payload); got != before {
		t.Fatalf("checkpoint payload changed after live write: %q -> %q", before, got)
	}
}

func TestFromStateRejectsCorruptStates(t *testing.T) {
	db := NewDB()
	mutate(t, db)
	good, _ := json.Marshal(db.State())

	corrupt := func(name string, f func(*State)) {
		var s State
		if err := json.Unmarshal(good, &s); err != nil {
			t.Fatal(err)
		}
		f(&s)
		if _, err := FromState(&s); err == nil {
			t.Fatalf("%s: corrupt state accepted", name)
		}
	}
	corrupt("duplicate container", func(s *State) {
		s.Containers = append(s.Containers, s.Containers[0])
	})
	corrupt("watermark beyond version", func(s *State) {
		s.Containers[0].Watermark = s.Version + 1
	})
	corrupt("non-dense versions", func(s *State) {
		c := &s.Containers[0]
		e := *c.Entries[len(c.Entries)-1]
		e.Version += 2
		e.ID = fmt.Sprintf("%s/%d", c.Name, e.Version)
		c.Entries = append(c.Entries[:len(c.Entries):len(c.Entries)], &e)
	})
	corrupt("bad entry id", func(s *State) {
		c := &s.Containers[0]
		e := *c.Entries[0]
		e.ID = "elsewhere/1"
		c.Entries = append([]*Entry{&e}, c.Entries[1:]...)
	})
	corrupt("dangling link", func(s *State) {
		c := &s.Containers[0]
		e := *c.Entries[0]
		e.Links = append(append([]string(nil), e.Links...), "ghost/1")
		c.Entries = append([]*Entry{&e}, c.Entries[1:]...)
	})
}
