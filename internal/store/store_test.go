package store

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.CreateContainer("netlist", ExecutionSpace, "netlist"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateContainer("sched:Create", ScheduleSpace, "Create"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateContainer(t *testing.T) {
	db := newTestDB(t)
	if db.Container("netlist") == nil {
		t.Fatal("container missing")
	}
	// Idempotent identical redefinition.
	if _, err := db.CreateContainer("netlist", ExecutionSpace, "netlist"); err != nil {
		t.Fatalf("idempotent create failed: %v", err)
	}
	// Mismatching redefinition rejected.
	if _, err := db.CreateContainer("netlist", ScheduleSpace, "netlist"); err == nil {
		t.Fatal("space-changing redefinition accepted")
	}
	if _, err := db.CreateContainer("", ExecutionSpace, "x"); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := db.CreateContainer("a/b", ExecutionSpace, "x"); err == nil {
		t.Fatal("slash in name accepted")
	}
}

func TestPutAssignsDenseVersions(t *testing.T) {
	db := newTestDB(t)
	for i := 1; i <= 3; i++ {
		e, err := db.Put("netlist", t0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.Version != i {
			t.Fatalf("version = %d, want %d", e.Version, i)
		}
		if e.ID != fmt.Sprintf("netlist/%d", i) {
			t.Fatalf("ID = %q", e.ID)
		}
	}
	if got := db.Container("netlist").Latest().Version; got != 3 {
		t.Fatalf("Latest = %d", got)
	}
}

func TestPutUnknownContainer(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Put("nope", t0, nil); err == nil {
		t.Fatal("Put to unknown container accepted")
	}
}

func TestPutDepsChecked(t *testing.T) {
	db := newTestDB(t)
	e1, _ := db.Put("netlist", t0, nil)
	e2, err := db.Put("netlist", t0, nil, e1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Deps) != 1 || e2.Deps[0] != e1.ID {
		t.Fatalf("Deps = %v", e2.Deps)
	}
	if _, err := db.Put("netlist", t0, nil, "ghost/1"); err == nil {
		t.Fatal("dangling dep accepted")
	}
}

type payload struct {
	Who   string `json:"who"`
	Hours int    `json:"hours"`
}

func TestPayloadRoundTrip(t *testing.T) {
	db := newTestDB(t)
	e, err := db.Put("sched:Create", t0, payload{Who: "ejohnson", Hours: 16})
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if err := db.Get(e.ID).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Who != "ejohnson" || p.Hours != 16 {
		t.Fatalf("payload = %+v", p)
	}
	// Update payload in place.
	p.Hours = 24
	if err := db.SetPayload(e.ID, p); err != nil {
		t.Fatal(err)
	}
	var p2 payload
	db.Get(e.ID).Decode(&p2)
	if p2.Hours != 24 {
		t.Fatalf("updated payload = %+v", p2)
	}
	if err := db.SetPayload("ghost/1", p); err == nil {
		t.Fatal("SetPayload on missing entry accepted")
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	db := newTestDB(t)
	e, _ := db.Put("netlist", t0, nil)
	var p payload
	if err := e.Decode(&p); err == nil {
		t.Fatal("Decode of empty payload succeeded")
	}
}

func TestLink(t *testing.T) {
	db := newTestDB(t)
	n, _ := db.Put("netlist", t0, nil)
	s, _ := db.Put("sched:Create", t0, nil)
	if err := db.Link(s.ID, n.ID); err != nil {
		t.Fatal(err)
	}
	if !db.Linked(s.ID, n.ID) || !db.Linked(n.ID, s.ID) {
		t.Fatal("link not bidirectional")
	}
	// Idempotent.
	if err := db.Link(s.ID, n.ID); err != nil {
		t.Fatal(err)
	}
	if len(db.Get(s.ID).Links) != 1 {
		t.Fatalf("duplicate link stored: %v", db.Get(s.ID).Links)
	}
	if err := db.Link(s.ID, s.ID); err == nil {
		t.Fatal("self link accepted")
	}
	if err := db.Link(s.ID, "ghost/1"); err == nil {
		t.Fatal("dangling link accepted")
	}
	if err := db.Link("ghost/1", s.ID); err == nil {
		t.Fatal("dangling link accepted")
	}
	if db.Linked("ghost/1", s.ID) {
		t.Fatal("Linked true for missing entry")
	}
}

func TestContainersInAndStats(t *testing.T) {
	db := newTestDB(t)
	db.Put("netlist", t0, nil)
	db.Put("netlist", t0, nil)
	db.Put("sched:Create", t0, nil)
	if got := len(db.ContainersIn(ExecutionSpace)); got != 1 {
		t.Fatalf("execution containers = %d", got)
	}
	st := db.Stats()
	if st[ExecutionSpace].Instances != 2 || st[ScheduleSpace].Instances != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestParseID(t *testing.T) {
	c, v, err := ParseID("sched:Create/7")
	if err != nil || c != "sched:Create" || v != 7 {
		t.Fatalf("ParseID = %q %d %v", c, v, err)
	}
	for _, bad := range []string{"noversion", "x/", "x/0", "x/-1", "x/abc"} {
		if _, _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	db := newTestDB(t)
	n1, _ := db.Put("netlist", t0, payload{Who: "a", Hours: 1})
	n2, _ := db.Put("netlist", t0.Add(time.Hour), nil, n1.ID)
	s1, _ := db.Put("sched:Create", t0, nil)
	db.Link(s1.ID, n2.ID)

	blob, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	re := NewDB()
	if err := json.Unmarshal(blob, re); err != nil {
		t.Fatal(err)
	}
	if re.Get("netlist/2") == nil || !re.Linked("sched:Create/1", "netlist/2") {
		t.Fatalf("restore lost data:\n%s", re.Dump())
	}
	var p payload
	if err := re.Get("netlist/1").Decode(&p); err != nil || p.Who != "a" {
		t.Fatalf("restored payload = %+v, %v", p, err)
	}
	// Round trip is stable.
	blob2, _ := json.Marshal(re)
	if string(blob) != string(blob2) {
		t.Fatal("snapshot not stable across restore")
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	cases := []struct{ name, blob string }{
		{"bad json", "{"},
		{"dup container", `{"containers":[{"name":"a","space":"execution","class":"a"},{"name":"a","space":"execution","class":"a"}]}`},
		{"non-dense", `{"containers":[{"name":"a","space":"execution","class":"a","entries":[{"id":"a/2","container":"a","version":2}]}]}`},
		{"bad id", `{"containers":[{"name":"a","space":"execution","class":"a","entries":[{"id":"b/1","container":"a","version":1}]}]}`},
		{"dangling dep", `{"containers":[{"name":"a","space":"execution","class":"a","entries":[{"id":"a/1","container":"a","version":1,"deps":["x/1"]}]}]}`},
	}
	for _, tc := range cases {
		db := NewDB()
		if err := json.Unmarshal([]byte(tc.blob), db); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", tc.name)
		}
	}
	// Restore into non-empty DB rejected.
	db := newTestDB(t)
	if err := json.Unmarshal([]byte(`{"containers":[]}`), db); err == nil {
		t.Error("restore into non-empty DB accepted")
	}
}

func TestDump(t *testing.T) {
	db := newTestDB(t)
	n, _ := db.Put("netlist", t0, nil)
	s, _ := db.Put("sched:Create", t0, nil)
	db.Link(s.ID, n.ID)
	d := db.Dump()
	for _, want := range []string{"execution space:", "schedule space:", "netlist/1", "sched:Create/1", "->{netlist/1}"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestConcurrentPut(t *testing.T) {
	db := newTestDB(t)
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := db.Put("netlist", t0, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c := db.Container("netlist")
	if len(c.Entries) != workers*each {
		t.Fatalf("entries = %d, want %d", len(c.Entries), workers*each)
	}
	seen := make(map[int]bool)
	for _, e := range c.Entries {
		if seen[e.Version] {
			t.Fatalf("duplicate version %d", e.Version)
		}
		seen[e.Version] = true
	}
}

// Property: versions stay dense and IDs parse back to (container, version)
// under arbitrary interleavings of puts across containers.
func TestDenseVersionsProperty(t *testing.T) {
	f := func(ops []bool) bool {
		db := newTestDB(t)
		counts := map[string]int{}
		for _, op := range ops {
			name := "netlist"
			if op {
				name = "sched:Create"
			}
			e, err := db.Put(name, t0, nil)
			if err != nil {
				return false
			}
			counts[name]++
			c, v, err := ParseID(e.ID)
			if err != nil || c != name || v != counts[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
