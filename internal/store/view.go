package store

import (
	"fmt"
	"sort"
	"strings"
)

// Reader is the read-only surface shared by the live *DB and an immutable
// *View. Packages that only query the task database (schedule/execution
// space reads, the query engine, reports) accept a Reader so they can be
// bound either to the live database or to a consistent snapshot of it.
type Reader interface {
	// Container returns the named container, or nil.
	Container(name string) *Container
	// Containers returns all containers in creation order.
	Containers() []*Container
	// ContainersIn returns the containers of one space, in creation order.
	ContainersIn(space Space) []*Container
	// Get returns the entry with the given ID, or nil.
	Get(id string) *Entry
	// Linked reports whether entries a and b are linked.
	Linked(a, b string) bool
}

var (
	_ Reader = (*DB)(nil)
	_ Reader = (*View)(nil)
)

// View is an immutable, point-in-time snapshot of a DB. It shares entry
// slices with the database it was taken from (clipped to their length at
// snapshot time), so taking one is O(containers) regardless of how many
// instances the database holds. Views need no locking: every entry and
// every clipped slice they reference is frozen.
type View struct {
	version    uint64
	containers map[string]*Container
	order      []string
}

// Snapshot returns an immutable View of the database's current state.
//
// The view's containers are shallow copies whose Entries slices are clipped
// with full slice expressions (entries[:n:n]), so later appends to the live
// database — even ones that land in the same backing array — are invisible
// to the view. The live containers are marked shared, which makes the next
// in-place entry replacement copy its slice first (copy-on-write); appends
// never copy.
func (db *DB) Snapshot() *View {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := &View{
		version:    db.version,
		containers: make(map[string]*Container, len(db.order)),
		order:      append([]string(nil), db.order...),
	}
	for _, n := range db.order {
		c := db.containers[n]
		c.shared = true
		k := len(c.Entries)
		v.containers[n] = &Container{
			Name:      c.Name,
			Space:     c.Space,
			Class:     c.Class,
			Entries:   c.Entries[:k:k],
			shared:    true,
			watermark: c.watermark,
		}
	}
	db.mSnaps.Inc()
	return v
}

// ForkAt branches a new child database off the given view in O(containers).
// A nil view forks the database's current state. The child starts with the
// view's containers aliased (copy-on-write): nothing per-entry is copied
// until a side actually replaces an entry in a container, and appends on
// either side are invisible to the other because the fork is clipped to the
// snapshot length. Parent and child are fully independent afterwards —
// writes never cross over in either direction.
//
// The child is uninstrumented; call Instrument to attach its own metrics.
func (db *DB) ForkAt(v *View) *DB {
	if v == nil {
		v = db.Snapshot()
	}
	child := &DB{
		containers: make(map[string]*Container, len(v.order)),
		order:      append([]string(nil), v.order...),
		version:    v.version,
	}
	for n, vc := range v.containers {
		cc := *vc // shares the clipped Entries slice; shared bit carries over
		child.containers[n] = &cc
	}
	db.mu.RLock()
	f := db.mForks
	db.mu.RUnlock()
	f.Inc()
	return child
}

// Version returns the source database's mutation counter at snapshot time.
func (v *View) Version() uint64 { return v.version }

// Container returns the named container, or nil.
func (v *View) Container(name string) *Container { return v.containers[name] }

// Containers returns all containers in creation order.
func (v *View) Containers() []*Container {
	out := make([]*Container, 0, len(v.order))
	for _, n := range v.order {
		out = append(out, v.containers[n])
	}
	return out
}

// ContainersIn returns the containers of one space, in creation order.
func (v *View) ContainersIn(space Space) []*Container {
	var out []*Container
	for _, c := range v.Containers() {
		if c.Space == space {
			out = append(out, c)
		}
	}
	return out
}

// Get returns the entry with the given ID, or nil.
func (v *View) Get(id string) *Entry {
	name, ver, err := ParseID(id)
	if err != nil {
		return nil
	}
	c := v.containers[name]
	if c == nil || ver > len(c.Entries) {
		return nil
	}
	return c.Entries[ver-1]
}

// Linked reports whether entries a and b are linked.
func (v *View) Linked(a, b string) bool {
	ea := v.Get(a)
	if ea == nil {
		return false
	}
	for _, l := range ea.Links {
		if l == b {
			return true
		}
	}
	return false
}

// Stats summarizes the view: containers and instances per space.
func (v *View) Stats() map[Space]struct{ Containers, Instances int } {
	out := make(map[Space]struct{ Containers, Instances int })
	for _, c := range v.containers {
		s := out[c.Space]
		s.Containers++
		s.Instances += len(c.Entries)
		out[c.Space] = s
	}
	return out
}

// Dump renders the view as text, one container per line with its
// instances — the form used to reproduce the paper's Figs. 5–7.
func (v *View) Dump() string {
	var b strings.Builder
	for _, space := range []Space{ExecutionSpace, ScheduleSpace} {
		cs := v.ContainersIn(space)
		if len(cs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s space:\n", space)
		for _, c := range cs {
			ids := make([]string, 0, len(c.Entries))
			for _, e := range c.Entries {
				label := e.ID
				if len(e.Links) > 0 {
					linked := append([]string(nil), e.Links...)
					sort.Strings(linked)
					label += "->{" + strings.Join(linked, ",") + "}"
				}
				ids = append(ids, label)
			}
			fmt.Fprintf(&b, "  %-24s [%s]\n", c.Name, strings.Join(ids, " "))
		}
	}
	return b.String()
}
