package store

import (
	"encoding/json"
	"testing"
	"time"

	"flowsched/internal/obs"
)

func TestInstrumentedDBCountsOps(t *testing.T) {
	o := obs.New()
	db := NewDB()
	db.Instrument(o)
	if _, err := db.CreateContainer("netlist", ExecutionSpace, "netlist"); err != nil {
		t.Fatal(err)
	}
	at := time.Date(1995, 6, 5, 9, 0, 0, 0, time.UTC)
	a, err := db.Put("netlist", at, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Put("netlist", at, nil, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	db.Get(a.ID)
	db.Get("nope")
	if _, err := json.Marshal(db); err != nil {
		t.Fatal(err)
	}

	m := o.Metrics()
	if got := m.Counter("store_puts_total").Value(); got != 2 {
		t.Fatalf("store_puts_total = %d, want 2", got)
	}
	if got := m.Counter("store_gets_total").Value(); got != 2 {
		t.Fatalf("store_gets_total = %d, want 2", got)
	}
	if got := m.Counter("store_links_total").Value(); got != 1 {
		t.Fatalf("store_links_total = %d, want 1", got)
	}
	if got := m.Gauge("store_entries").Value(); got != 2 {
		t.Fatalf("store_entries = %d, want 2", got)
	}
	h := m.Histogram("store_snapshot_bytes", obs.SizeBuckets)
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("store_snapshot_bytes count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestInstrumentSeedsEntriesGaugeAndTakesNil(t *testing.T) {
	db := NewDB()
	db.Instrument(nil) // no-op
	if _, err := db.CreateContainer("c", ExecutionSpace, "c"); err != nil {
		t.Fatal(err)
	}
	at := time.Date(1995, 6, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := db.Put("c", at, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Instrumenting an already-populated DB seeds the gauge.
	o := obs.New()
	db.Instrument(o)
	if got := o.Metrics().Gauge("store_entries").Value(); got != 3 {
		t.Fatalf("store_entries seeded to %d, want 3", got)
	}
}
