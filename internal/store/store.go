// Package store implements the Hercules-style task database: a set of
// containers, one per entity or schedule class, each holding versioned
// instances created during flow execution or schedule planning.
//
// The database is the shared substrate beneath Level 3 of the four-level
// architecture. The execution space (package meta) and the schedule space
// (package sched) both store their instances here, which is precisely what
// lets the paper's schedule model mirror the execution model and link the
// two spaces together (paper Figs. 3, 5–7).
//
// Instances are append-only and versioned densely per container (version 1,
// 2, 3, …), matching the paper's CC1/CC2, SC1/SC2, N1/N2 labelling. Typed
// payloads are carried as JSON so the database itself stays schema-neutral.
//
// # Snapshot isolation and copy-on-write
//
// Entries are immutable once appended: SetPayload and Link replace the
// affected *Entry with a clone rather than mutating it in place. That makes
// two cheap operations safe:
//
//   - Snapshot returns an immutable View of the whole database in
//     O(containers), sharing the entry slices with the live DB (clipped with
//     full slice expressions so later appends stay invisible).
//   - ForkAt branches a child DB off a View in O(containers); parent and
//     child alias unmodified containers and copy a container's entry slice
//     only on first write (copy-on-write, tracked by a shared bit).
//
// See docs/store.md for the aliasing rules and fork semantics.
package store

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowsched/internal/obs"
)

// Space identifies which Level 3 space a container belongs to.
type Space string

const (
	// ExecutionSpace containers hold design metadata from actual runs.
	ExecutionSpace Space = "execution"
	// ScheduleSpace containers hold schedule instances from simulated runs.
	ScheduleSpace Space = "schedule"
)

// Entry is one versioned instance inside a container.
//
// Entries are immutable once stored: packages outside store must treat every
// field — including Links and Payload — as read-only. SetPayload and Link
// swap in a cloned entry instead of mutating, so a pointer obtained from Get
// (or from a View) is a stable value forever.
type Entry struct {
	// ID is the globally unique identifier "container/version".
	ID string `json:"id"`
	// Container names the owning container.
	Container string `json:"container"`
	// Version is the dense, 1-based version within the container.
	Version int `json:"version"`
	// Created is the virtual time at which the instance was created.
	Created time.Time `json:"created"`
	// Deps are the IDs of the entries this instance was created from
	// (instance dependencies, drawn as lines in the paper's figures).
	Deps []string `json:"deps,omitempty"`
	// Links are cross-space associations: a schedule instance linked to the
	// entity instance that completed its task, and vice versa (Fig. 7).
	Links []string `json:"links,omitempty"`
	// Payload carries the typed instance data (run metadata, schedule
	// parameters, …) marshalled as JSON by the owning package.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Container groups the versioned instances of one class.
type Container struct {
	// Name is the container name, unique within the database (e.g.
	// "netlist", "sched:Create").
	Name string `json:"name"`
	// Space tells whether the container belongs to the execution or the
	// schedule space.
	Space Space `json:"space"`
	// Class is the schema class or activity the container was created for.
	Class string `json:"class"`
	// Entries holds instances in version order.
	Entries []*Entry `json:"entries"`

	// shared marks the Entries backing array as possibly aliased by a View
	// or a forked DB; the next in-place entry replacement must copy the
	// slice first. Appends never need the copy: aliases are clipped to
	// their snapshot length, so writing Entries[len] is invisible to them.
	shared bool
	// watermark is the owning DB's version counter at this container's last
	// mutation.
	watermark uint64
}

// Latest returns the highest-version entry, or nil for an empty container.
func (c *Container) Latest() *Entry {
	if len(c.Entries) == 0 {
		return nil
	}
	return c.Entries[len(c.Entries)-1]
}

// Watermark returns the owning database's version counter at this
// container's last mutation. Comparing watermarks across a Snapshot tells
// which containers changed since.
func (c *Container) Watermark() uint64 { return c.watermark }

// DB is the task database. The zero value is not usable; call NewDB.
// DB is safe for concurrent use.
type DB struct {
	mu         sync.RWMutex
	containers map[string]*Container
	order      []string
	// version counts mutations (container creations, puts, payload swaps,
	// links); each mutation stamps the touched container's watermark.
	version uint64
	// commitHook, when set, observes every committed mutation in commit
	// order (see SetCommitHook) — the change feed a write-ahead log
	// subscribes to. Called under mu.
	commitHook func(Mutation)

	// Cached observability handles (nil = uninstrumented, no-op).
	// Written by Instrument and read by container ops, both under mu.
	mPuts     *obs.Counter   // store_puts_total
	mGets     *obs.Counter   // store_gets_total
	mLinks    *obs.Counter   // store_links_total
	mSnaps    *obs.Counter   // store_snapshots_total
	mForks    *obs.Counter   // store_forks_total
	gEntries  *obs.Gauge     // store_entries
	hSnapshot *obs.Histogram // store_snapshot_bytes
}

// Instrument attaches observability to the database: container-op
// counters, fork/snapshot counters, a live instance-count gauge, and a
// snapshot-size histogram. Call it before sharing the DB; a nil Obs is a
// no-op.
func (db *DB) Instrument(o *obs.Obs) {
	m := o.Metrics()
	if m == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mPuts = m.Counter("store_puts_total")
	db.mGets = m.Counter("store_gets_total")
	db.mLinks = m.Counter("store_links_total")
	db.mSnaps = m.Counter("store_snapshots_total")
	db.mForks = m.Counter("store_forks_total")
	db.gEntries = m.Gauge("store_entries")
	db.hSnapshot = m.Histogram("store_snapshot_bytes", obs.SizeBuckets)
	var entries int64
	for _, c := range db.containers {
		entries += int64(len(c.Entries))
	}
	db.gEntries.Set(entries)
}

// NewDB returns an empty task database.
func NewDB() *DB {
	return &DB{containers: make(map[string]*Container)}
}

// Version returns the database's mutation counter. It increases on every
// container creation, put, payload swap, link, and touch.
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// Touch commits a contentless version bump and returns the new version.
// It exists for mutations that live outside the database — a scenario
// edit rebinds tool profiles, changing every future estimate — yet must
// invalidate version-keyed snapshot caches and fail concurrent
// optimistic writes, exactly like a data mutation. The bump is emitted
// to the commit feed (MutTouch) so write-ahead replay reproduces the
// version counter bit-identically.
func (db *DB) Touch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.version++
	db.emitLocked(Mutation{Kind: MutTouch, Version: db.version})
	return db.version
}

// CreateContainer adds an empty container. Creating an existing container
// with identical space and class is a no-op; mismatching redefinition is an
// error.
func (db *DB) CreateContainer(name string, space Space, class string) (*Container, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty container name")
	}
	if strings.ContainsRune(name, '/') {
		return nil, fmt.Errorf("store: container name %q must not contain '/'", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.containers[name]; ok {
		if c.Space != space || c.Class != class {
			return nil, fmt.Errorf("store: container %q redefined (%s/%s vs %s/%s)",
				name, c.Space, c.Class, space, class)
		}
		return c, nil
	}
	db.version++
	c := &Container{Name: name, Space: space, Class: class, watermark: db.version}
	db.containers[name] = c
	db.order = append(db.order, name)
	db.emitLocked(Mutation{
		Kind: MutCreate, Version: db.version,
		Container: name, Space: space, Class: class,
	})
	return c, nil
}

// Container returns the named container, or nil.
func (db *DB) Container(name string) *Container {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.containers[name]
}

// Containers returns all containers in creation order.
func (db *DB) Containers() []*Container {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Container, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.containers[n])
	}
	return out
}

// ContainersIn returns the containers of one space, in creation order.
func (db *DB) ContainersIn(space Space) []*Container {
	var out []*Container
	for _, c := range db.Containers() {
		if c.Space == space {
			out = append(out, c)
		}
	}
	return out
}

// lookupLocked resolves an entry ID by parsing it and indexing the dense
// version into its container. Caller holds mu (read or write). Entry IDs
// are "container/version" with versions 1..len(Entries), so no secondary
// index is needed — which is what keeps Snapshot and ForkAt O(containers).
func (db *DB) lookupLocked(id string) *Entry {
	name, v, err := ParseID(id)
	if err != nil {
		return nil
	}
	c := db.containers[name]
	if c == nil || v > len(c.Entries) {
		return nil
	}
	return c.Entries[v-1]
}

// cowLocked prepares a container for an in-place entry replacement: if the
// Entries backing array may be aliased by a View or a fork, it is copied
// first. Caller holds mu for writing.
func (db *DB) cowLocked(c *Container) {
	if !c.shared {
		return
	}
	c.Entries = append(make([]*Entry, 0, len(c.Entries)+1), c.Entries...)
	c.shared = false
}

// Put appends a new instance to the named container, assigning the next
// version. All deps must reference existing entries. payload may be nil.
func (db *DB) Put(container string, created time.Time, payload any, deps ...string) (*Entry, error) {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, fmt.Errorf("store: marshal payload for %q: %w", container, err)
		}
		raw = b
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.containers[container]
	if !ok {
		return nil, fmt.Errorf("store: unknown container %q", container)
	}
	for _, d := range deps {
		if db.lookupLocked(d) == nil {
			return nil, fmt.Errorf("store: dependency %q does not exist", d)
		}
	}
	e := &Entry{
		ID:        fmt.Sprintf("%s/%d", container, len(c.Entries)+1),
		Container: container,
		Version:   len(c.Entries) + 1,
		Created:   created,
		Deps:      append([]string(nil), deps...),
		Payload:   raw,
	}
	// Appending is safe even on a shared backing array: every alias is
	// clipped to cap == its snapshot length, so it cannot observe the new
	// element whether the append reallocates or writes in place.
	c.Entries = append(c.Entries, e)
	db.version++
	c.watermark = db.version
	db.mPuts.Inc()
	db.gEntries.Add(1)
	db.emitLocked(Mutation{Kind: MutPut, Version: db.version, Entry: e})
	return e, nil
}

// Get returns the entry with the given ID, or nil. The returned entry is
// immutable; it keeps its value even if the payload is later replaced.
func (db *DB) Get(id string) *Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.mGets.Inc()
	return db.lookupLocked(id)
}

// Decode unmarshals an entry's payload into out.
func (e *Entry) Decode(out any) error {
	if len(e.Payload) == 0 {
		return fmt.Errorf("store: entry %s has no payload", e.ID)
	}
	return json.Unmarshal(e.Payload, out)
}

// SetPayload replaces an entry's payload. Instances are append-only in
// identity and dependencies, but their typed payloads evolve (a schedule
// instance acquires actual dates as execution proceeds). The previous
// *Entry value is left untouched — existing Views keep observing it.
func (db *DB) SetPayload(id string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: marshal payload for %s: %w", id, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e := db.lookupLocked(id)
	if e == nil {
		return fmt.Errorf("store: unknown entry %q", id)
	}
	clone := *e
	clone.Payload = b
	c := db.containers[clone.Container]
	db.cowLocked(c)
	c.Entries[clone.Version-1] = &clone
	db.version++
	c.watermark = db.version
	db.emitLocked(Mutation{Kind: MutPayload, Version: db.version, ID: id, Payload: b})
	return nil
}

// Link records a bidirectional cross-space association between two entries,
// typically a schedule instance and the entity instance that completed its
// task. Linking the same pair twice is a no-op. As with SetPayload, the
// affected entries are replaced by clones, never mutated.
func (db *DB) Link(a, b string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ea, eb := db.lookupLocked(a), db.lookupLocked(b)
	if ea == nil {
		return fmt.Errorf("store: link endpoint %q does not exist", a)
	}
	if eb == nil {
		return fmt.Errorf("store: link endpoint %q does not exist", b)
	}
	if a == b {
		return fmt.Errorf("store: cannot link %q to itself", a)
	}
	before := db.version
	db.linkOneLocked(ea, b)
	db.linkOneLocked(eb, a)
	db.mLinks.Inc()
	if db.version != before {
		// Replaying Link(a, b) reproduces the per-endpoint no-op logic,
		// so one mutation covers both clone-and-swaps.
		db.emitLocked(Mutation{Kind: MutLink, Version: db.version, A: a, B: b})
	}
	return nil
}

// linkOneLocked adds target to e's links via clone-and-swap, unless already
// present. Caller holds mu for writing.
func (db *DB) linkOneLocked(e *Entry, target string) {
	for _, l := range e.Links {
		if l == target {
			return
		}
	}
	clone := *e
	clone.Links = append(append([]string(nil), e.Links...), target)
	c := db.containers[clone.Container]
	db.cowLocked(c)
	c.Entries[clone.Version-1] = &clone
	db.version++
	c.watermark = db.version
}

// Linked reports whether entries a and b are linked.
func (db *DB) Linked(a, b string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ea := db.lookupLocked(a)
	if ea == nil {
		return false
	}
	for _, l := range ea.Links {
		if l == b {
			return true
		}
	}
	return false
}

// Stats summarizes the database: containers and instances per space. It is
// computed on a Snapshot, so a concurrent writer cannot skew the counts.
func (db *DB) Stats() map[Space]struct{ Containers, Instances int } {
	return db.Snapshot().Stats()
}

// ParseID splits an entry ID into container name and version.
func ParseID(id string) (container string, version int, err error) {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return "", 0, fmt.Errorf("store: malformed id %q", id)
	}
	v, err := strconv.Atoi(id[i+1:])
	if err != nil || v < 1 {
		return "", 0, fmt.Errorf("store: malformed version in id %q", id)
	}
	return id[:i], v, nil
}

// snapshot is the JSON persistence format.
type snapshot struct {
	Containers []*Container `json:"containers"`
}

// MarshalJSON serializes the whole database deterministically.
func (db *DB) MarshalJSON() ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := snapshot{Containers: make([]*Container, 0, len(db.order))}
	for _, n := range db.order {
		s.Containers = append(s.Containers, db.containers[n])
	}
	out, err := json.Marshal(s)
	if err == nil {
		db.hSnapshot.Observe(float64(len(out)))
	}
	return out, err
}

// UnmarshalJSON restores a database serialized by MarshalJSON into an empty
// DB. Restoring into a non-empty DB is an error.
func (db *DB) UnmarshalJSON(data []byte) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.containers) != 0 {
		return fmt.Errorf("store: restore into non-empty database")
	}
	if db.containers == nil {
		db.containers = make(map[string]*Container)
	}
	for _, c := range s.Containers {
		if _, dup := db.containers[c.Name]; dup {
			return fmt.Errorf("store: restore: duplicate container %q", c.Name)
		}
		db.containers[c.Name] = c
		db.order = append(db.order, c.Name)
		for i, e := range c.Entries {
			if e.Version != i+1 {
				return fmt.Errorf("store: restore: container %q has non-dense versions", c.Name)
			}
			if want := fmt.Sprintf("%s/%d", c.Name, e.Version); e.ID != want {
				return fmt.Errorf("store: restore: entry id %q, want %q", e.ID, want)
			}
			db.version++
		}
		c.watermark = db.version
	}
	// Verify referential integrity of deps and links.
	for _, c := range s.Containers {
		for _, e := range c.Entries {
			for _, d := range append(append([]string(nil), e.Deps...), e.Links...) {
				if db.lookupLocked(d) == nil {
					return fmt.Errorf("store: restore: entry %s references missing %q", e.ID, d)
				}
			}
		}
	}
	return nil
}

// Dump renders the database as text, one container per line with its
// instances — the form used to reproduce the paper's Figs. 5–7. The text is
// produced from a Snapshot, so a dump taken mid-run is a consistent moment
// of the database, not a torn read.
func (db *DB) Dump() string {
	return db.Snapshot().Dump()
}
