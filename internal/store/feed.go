package store

import "encoding/json"

// MutationKind classifies one committed task-database mutation.
type MutationKind string

const (
	// MutCreate is a container creation (idempotent re-creations of an
	// existing container do not commit and are not emitted).
	MutCreate MutationKind = "create"
	// MutPut is an appended instance.
	MutPut MutationKind = "put"
	// MutPayload is a payload swap on an existing instance.
	MutPayload MutationKind = "payload"
	// MutLink is a bidirectional cross-space link.
	MutLink MutationKind = "link"
	// MutTouch is a contentless version bump: a committed mutation that
	// lives outside the database (a scenario edit rebinding tool
	// profiles) but must still advance the version counter so
	// version-keyed caches and optimistic-concurrency checks see it.
	MutTouch MutationKind = "touch"
)

// Mutation describes one committed mutation, emitted to the commit hook
// in commit order. Replaying the same mutations against an empty
// database — CreateContainer, Put, SetPayload, Link, in order — rebuilds
// it bit-identically, including the Version counter and every
// container's watermark, which is what a write-ahead log needs.
type Mutation struct {
	Kind MutationKind
	// Version is the database's mutation counter after the commit.
	// Links bump it twice (one clone-and-swap per endpoint, unless an
	// endpoint already carried the link); Version is the final value.
	Version uint64

	// Container/Space/Class describe a MutCreate.
	Container string
	Space     Space
	Class     string

	// Entry is the appended instance of a MutPut. Entries are immutable;
	// the hook may retain the pointer.
	Entry *Entry

	// ID and Payload carry a MutPayload (the exact marshalled bytes the
	// entry now holds).
	ID      string
	Payload json.RawMessage

	// A and B are a MutLink's endpoints.
	A, B string
}

// SetCommitHook installs fn as the database's commit hook: every
// committed mutation is passed to fn, in commit order, while the
// database lock is held — fn must be fast and must not call back into
// the database. One hook at most; nil removes it. Snapshots, forks, and
// reads are not mutations and are not emitted; forked children start
// with no hook.
func (db *DB) SetCommitHook(fn func(Mutation)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.commitHook = fn
}

// emitLocked passes a committed mutation to the hook. Caller holds mu
// for writing.
func (db *DB) emitLocked(m Mutation) {
	if db.commitHook != nil {
		db.commitHook(m)
	}
}
