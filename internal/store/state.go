package store

import "fmt"

// State is the full-fidelity checkpoint form of a database. Unlike the
// MarshalJSON session format — which recounts the version from entry
// counts and therefore loses the exact mutation counter and per-container
// watermarks — State carries them verbatim, so a database restored with
// FromState is bit-identical to the original: same Version(), same
// Watermark() per container, same entry bytes. That identity is what lets
// snapshot fingerprints and `X-Flowsched-Version` headers survive a
// crash-recovery cycle.
type State struct {
	// Version is the database mutation counter at checkpoint time.
	Version uint64 `json:"version"`
	// Containers holds every container in creation order.
	Containers []ContainerState `json:"containers"`
}

// ContainerState is one container's checkpoint form.
type ContainerState struct {
	Name      string   `json:"name"`
	Space     Space    `json:"space"`
	Class     string   `json:"class"`
	Watermark uint64   `json:"watermark"`
	Entries   []*Entry `json:"entries"`
}

// State captures the database as a checkpoint. Like Snapshot, it is
// O(containers): entry slices are shared with the live database (clipped
// with full slice expressions) and the containers are marked shared so
// the next in-place replacement copies first. Entries are immutable, so
// the caller may marshal the State at leisure while writers proceed.
func (db *DB) State() *State {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &State{Version: db.version, Containers: make([]ContainerState, 0, len(db.order))}
	for _, n := range db.order {
		c := db.containers[n]
		c.shared = true
		s.Containers = append(s.Containers, ContainerState{
			Name:      c.Name,
			Space:     c.Space,
			Class:     c.Class,
			Watermark: c.watermark,
			Entries:   c.Entries[:len(c.Entries):len(c.Entries)],
		})
	}
	return s
}

// FromState reconstructs a database from a checkpoint, restoring the
// mutation counter and per-container watermarks exactly. It validates the
// same invariants as UnmarshalJSON: dense versions, canonical IDs, and
// referential integrity of deps and links.
func FromState(s *State) (*DB, error) {
	db := NewDB()
	db.version = s.Version
	for i := range s.Containers {
		cs := &s.Containers[i]
		if _, dup := db.containers[cs.Name]; dup {
			return nil, fmt.Errorf("store: state: duplicate container %q", cs.Name)
		}
		if cs.Watermark > s.Version {
			return nil, fmt.Errorf("store: state: container %q watermark %d exceeds version %d",
				cs.Name, cs.Watermark, s.Version)
		}
		c := &Container{
			Name:      cs.Name,
			Space:     cs.Space,
			Class:     cs.Class,
			watermark: cs.Watermark,
			// The checkpoint may alias a live database's entry slices;
			// mark shared so this database copies before replacing.
			shared:  true,
			Entries: cs.Entries[:len(cs.Entries):len(cs.Entries)],
		}
		for j, e := range c.Entries {
			if e == nil {
				return nil, fmt.Errorf("store: state: container %q has nil entry", cs.Name)
			}
			if e.Version != j+1 {
				return nil, fmt.Errorf("store: state: container %q has non-dense versions", cs.Name)
			}
			if want := fmt.Sprintf("%s/%d", cs.Name, e.Version); e.ID != want {
				return nil, fmt.Errorf("store: state: entry id %q, want %q", e.ID, want)
			}
		}
		db.containers[cs.Name] = c
		db.order = append(db.order, cs.Name)
	}
	for _, n := range db.order {
		for _, e := range db.containers[n].Entries {
			for _, d := range append(append([]string(nil), e.Deps...), e.Links...) {
				if db.lookupLocked(d) == nil {
					return nil, fmt.Errorf("store: state: entry %s references missing %q", e.ID, d)
				}
			}
		}
	}
	return db, nil
}
