package store

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustPut(t *testing.T, db *DB, container string, at time.Time, payload any, deps ...string) *Entry {
	t.Helper()
	e, err := db.Put(container, at, payload, deps...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSnapshotInvisibleToLaterWrites(t *testing.T) {
	db := newTestDB(t)
	n1 := mustPut(t, db, "netlist", t0, map[string]int{"gen": 1})
	s1 := mustPut(t, db, "sched:Create", t0, nil)

	v := db.Snapshot()
	wantDump := v.Dump()

	// Append, payload swap, and link after the snapshot.
	mustPut(t, db, "netlist", t0.Add(time.Hour), nil, n1.ID)
	if err := db.SetPayload(n1.ID, map[string]int{"gen": 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Link(n1.ID, s1.ID); err != nil {
		t.Fatal(err)
	}

	if got := len(v.Container("netlist").Entries); got != 1 {
		t.Fatalf("snapshot sees %d netlist entries, want 1", got)
	}
	var p map[string]int
	if err := v.Get(n1.ID).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p["gen"] != 1 {
		t.Fatalf("snapshot sees payload gen=%d, want 1", p["gen"])
	}
	if v.Linked(n1.ID, s1.ID) {
		t.Fatal("snapshot sees a link made after it was taken")
	}
	if v.Dump() != wantDump {
		t.Fatal("snapshot dump changed after parent writes")
	}
	// The live DB, by contrast, sees everything.
	if db.Get(n1.ID).Payload == nil || !db.Linked(n1.ID, s1.ID) {
		t.Fatal("live DB lost its own writes")
	}
}

// randomOps drives a deterministic pseudo-random mix of container ops.
func randomOps(t *testing.T, db *DB, rng *rand.Rand, n int) {
	t.Helper()
	containers := []string{"netlist", "sched:Create"}
	var ids []string
	for _, c := range containers {
		for _, e := range db.Container(c).Entries {
			ids = append(ids, e.ID)
		}
	}
	for i := 0; i < n; i++ {
		switch op := rng.Intn(4); {
		case op == 0 && len(ids) >= 2:
			a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if a != b {
				if err := db.Link(a, b); err != nil {
					t.Fatal(err)
				}
			}
		case op == 1 && len(ids) > 0:
			if err := db.SetPayload(ids[rng.Intn(len(ids))], map[string]int{"i": i}); err != nil {
				t.Fatal(err)
			}
		default:
			e := mustPut(t, db, containers[rng.Intn(len(containers))], t0.Add(time.Duration(i)*time.Minute), map[string]int{"op": i})
			ids = append(ids, e.ID)
		}
	}
}

// Property (a): a fork's reads are bit-identical to the parent snapshot it
// branched from.
func TestForkBitIdenticalToParentSnapshot(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		db := newTestDB(t)
		randomOps(t, db, rand.New(rand.NewSource(seed)), 60)

		before := marshal(t, db)
		fork := db.ForkAt(nil)
		if got := marshal(t, fork); got != before {
			t.Fatalf("seed %d: fork serialization differs from parent at fork time", seed)
		}
		if fork.Dump() != db.Dump() {
			t.Fatalf("seed %d: fork dump differs from parent at fork time", seed)
		}
	}
}

// Property (b): parent writes after the fork never appear in the child and
// vice versa.
func TestForkIsolationBothDirections(t *testing.T) {
	db := newTestDB(t)
	rng := rand.New(rand.NewSource(42))
	randomOps(t, db, rng, 40)

	fork := db.ForkAt(nil)
	atFork := marshal(t, fork)

	// Diverge both sides with different deterministic op streams.
	randomOps(t, db, rand.New(rand.NewSource(7)), 40)
	parentAfter := marshal(t, db)
	if marshal(t, fork) != atFork {
		t.Fatal("parent writes leaked into fork")
	}

	randomOps(t, fork, rand.New(rand.NewSource(9)), 40)
	if marshal(t, db) != parentAfter {
		t.Fatal("fork writes leaked into parent")
	}
	if marshal(t, fork) == atFork {
		t.Fatal("fork writes had no effect on fork")
	}

	// A second fork from the parent's new state must not see the first
	// fork's divergence.
	fork2 := db.ForkAt(nil)
	if got := marshal(t, fork2); got != parentAfter {
		t.Fatal("second fork differs from parent state")
	}
}

func TestForkWritesIndependent(t *testing.T) {
	db := newTestDB(t)
	e := mustPut(t, db, "netlist", t0, map[string]string{"who": "parent"})

	fork := db.ForkAt(nil)
	// Same-slot payload swap on both sides with different values.
	if err := db.SetPayload(e.ID, map[string]string{"who": "parent-v2"}); err != nil {
		t.Fatal(err)
	}
	if err := fork.SetPayload(e.ID, map[string]string{"who": "child-v2"}); err != nil {
		t.Fatal(err)
	}
	var pp, cp map[string]string
	if err := db.Get(e.ID).Decode(&pp); err != nil {
		t.Fatal(err)
	}
	if err := fork.Get(e.ID).Decode(&cp); err != nil {
		t.Fatal(err)
	}
	if pp["who"] != "parent-v2" || cp["who"] != "child-v2" {
		t.Fatalf("writes crossed over: parent=%q child=%q", pp["who"], cp["who"])
	}
	// Same-container appends on both sides get the same version number,
	// independently.
	pe := mustPut(t, db, "netlist", t0, nil)
	ce := mustPut(t, fork, "netlist", t0, nil)
	if pe.Version != 2 || ce.Version != 2 {
		t.Fatalf("independent appends: parent v%d, child v%d, want 2 and 2", pe.Version, ce.Version)
	}
}

// Forking must be O(containers): the same number of allocations regardless
// of how many entries the containers hold.
func TestForkAllocsIndependentOfEntryCount(t *testing.T) {
	build := func(entries int) *DB {
		db := NewDB()
		for i := 0; i < 8; i++ {
			if _, err := db.CreateContainer(fmt.Sprintf("c%d", i), ExecutionSpace, "x"); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < entries; j++ {
				if _, err := db.Put(fmt.Sprintf("c%d", i), t0, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db
	}
	small, large := build(4), build(400)
	allocs := func(db *DB) float64 {
		return testing.AllocsPerRun(50, func() {
			v := db.Snapshot()
			_ = db.ForkAt(v)
		})
	}
	a, b := allocs(small), allocs(large)
	if a != b {
		t.Fatalf("snapshot+fork allocations scale with entries: %v (4/container) vs %v (400/container)", a, b)
	}
}

// checkDumpParses asserts the Dump text is well-formed: space headers,
// container lines whose every instance label is a valid entry ID with
// optional sorted link sets.
func checkDumpParses(t *testing.T, dump string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "  ") {
			if line != "execution space:" && line != "schedule space:" {
				t.Fatalf("unexpected header line %q", line)
			}
			continue
		}
		open := strings.IndexByte(line, '[')
		if open < 0 || !strings.HasSuffix(line, "]") {
			t.Fatalf("container line without [..] list: %q", line)
		}
		body := line[open+1 : len(line)-1]
		if body == "" {
			continue
		}
		for _, label := range strings.Fields(body) {
			id, links, _ := strings.Cut(label, "->{")
			if _, _, err := ParseID(id); err != nil {
				t.Fatalf("bad instance label %q in %q: %v", label, line, err)
			}
			if links != "" {
				if !strings.HasSuffix(links, "}") {
					t.Fatalf("unterminated link set in %q", label)
				}
				for _, l := range strings.Split(strings.TrimSuffix(links, "}"), ",") {
					if _, _, err := ParseID(l); err != nil {
						t.Fatalf("bad link target %q in %q: %v", l, label, err)
					}
				}
			}
		}
	}
}

// Satellite: Dump() taken mid-parallel-run parses cleanly — concurrent
// writers cannot tear the text because it is rendered from a Snapshot.
func TestDumpDuringConcurrentWritesParses(t *testing.T) {
	db := newTestDB(t)
	seedA := mustPut(t, db, "netlist", t0, nil)
	seedB := mustPut(t, db, "sched:Create", t0, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := "netlist"
				if i%2 == 0 {
					c = "sched:Create"
				}
				e, err := db.Put(c, t0, map[string]int{"w": w, "i": i})
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := db.Link(e.ID, seedA.ID); err != nil && !strings.Contains(err.Error(), "itself") {
						t.Error(err)
						return
					}
				}
				if i%5 == 0 {
					if err := db.SetPayload(seedB.ID, map[string]int{"i": i}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		checkDumpParses(t, db.Dump())
	}
	close(stop)
	wg.Wait()
	checkDumpParses(t, db.Dump())
}

// Snapshots, forks, stats, and reads racing live writers — the tier-1
// -race pass exercises this.
func TestConcurrentSnapshotsAndForks(t *testing.T) {
	db := newTestDB(t)
	root := mustPut(t, db, "netlist", t0, map[string]int{"v": 0})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Put("netlist", t0, nil, root.ID); err != nil {
				t.Error(err)
				return
			}
			if err := db.SetPayload(root.ID, map[string]int{"v": i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // snapshot/fork readers
			defer wg.Done()
			for i := 0; i < 40; i++ {
				v := db.Snapshot()
				n := len(v.Container("netlist").Entries)
				fork := db.ForkAt(v)
				if got := len(fork.Container("netlist").Entries); got != n {
					t.Errorf("fork sees %d entries, view has %d", got, n)
					return
				}
				if _, err := fork.Put("netlist", t0, nil); err != nil {
					t.Error(err)
					return
				}
				_ = v.Stats()
				_ = v.Get(root.ID)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	_ = db.Stats()
}

func TestWatermarksAdvanceOnMutation(t *testing.T) {
	db := newTestDB(t)
	c := db.Container("netlist")
	w0 := c.Watermark()
	e := mustPut(t, db, "netlist", t0, nil)
	if c.Watermark() <= w0 {
		t.Fatal("put did not advance watermark")
	}
	w1 := c.Watermark()
	if err := db.SetPayload(e.ID, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if c.Watermark() <= w1 {
		t.Fatal("payload swap did not advance watermark")
	}
	// Untouched container keeps its watermark; DB version is monotonic.
	if db.Container("sched:Create").Watermark() >= db.Version() && db.Version() == 0 {
		t.Fatal("version accounting broken")
	}
	v := db.Snapshot()
	if v.Version() != db.Version() {
		t.Fatalf("view version %d != db version %d", v.Version(), db.Version())
	}
}
