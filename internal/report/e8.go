package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/scenario"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// E8Scenarios runs a what-if sweep over the ASIC flow: the full
// RTL-to-signoff project is forked copy-on-write once per scenario and
// every fork is re-planned and re-executed against perturbed tool
// profiles — slower synthesis, a slipped router, a fully-staffed team —
// then compared with the untouched baseline. The exhibit shows the
// manager's question the paper leaves open ("what does this slip do to
// the finish date?") answered without disturbing the live project.
func E8Scenarios() (string, error) {
	sch := workload.ASIC()
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "e8")
	if err != nil {
		return "", err
	}
	if err := m.BindDefaults(); err != nil {
		return "", err
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
			return "", err
		}
	}
	targets := sch.PrimaryOutputs()
	edits := []scenario.Edit{
		{Name: "synth-slow", Scale: map[string]float64{"Synthesize": 1.5}},
		{Name: "route-slip", Delay: map[string]time.Duration{"Route": 24 * time.Hour}},
		{Name: "fast-sim", Scale: map[string]float64{"GateSim": 0.5}},
		{Name: "team", Parallel: true},
		{Name: "crunch-team", Scale: map[string]float64{"Synthesize": 0.8, "Route": 0.8}, Parallel: true},
	}
	rep, err := scenario.Sweep(m, targets, edits, scenario.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E8 — What-if scenario sweep over copy-on-write project forks\n\n")
	b.WriteString(rep.Render())
	b.WriteString("\nBaseline is an unedited fork; deltas are working time on the\n")
	b.WriteString("project calendar. The live project database is never written.\n")
	fmt.Fprintf(&b, "Forks: %d, containers copied per fork: 0 (entries shared COW).\n",
		len(edits)+1)
	return b.String(), nil
}
