package report

import (
	"strings"
	"testing"
)

func TestScenarioReproducesFig5Population(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5: two schedule-instance versions per activity, two plans, no
	// execution metadata beyond the imported stimuli.
	for _, act := range []string{"Create", "Simulate"} {
		c := s.Mgr.DB.Container("sched:" + act)
		if len(c.Entries) != 2 {
			t.Errorf("sched:%s instances = %d, want 2 (CC1/CC2, SC1/SC2)", act, len(c.Entries))
		}
	}
	if got := len(s.Mgr.DB.Container("schedule").Entries); got != 2 {
		t.Errorf("plans = %d, want 2", got)
	}
	if got := len(s.Mgr.DB.Container("netlist").Entries); got != 0 {
		t.Errorf("netlist entities before execution = %d", got)
	}
	if got := len(s.Mgr.DB.Container("stimuli").Entries); got != 1 {
		t.Errorf("stimuli entities = %d, want 1", got)
	}
}

func TestScenarioReproducesFig6Fig7Population(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	// Fig. 6: each activity iterated exactly twice -> two entity instances
	// per produced class and two runs per activity.
	for _, class := range []string{"netlist", "performance"} {
		if got := len(s.Mgr.DB.Container(class).Entries); got != 2 {
			t.Errorf("%s entities = %d, want 2 (N1/N2, P1/P2)", class, got)
		}
	}
	for _, act := range []string{"Create", "Simulate"} {
		if got := len(s.Mgr.DB.Container("run:" + act).Entries); got != 2 {
			t.Errorf("run:%s = %d, want 2", act, got)
		}
	}
	// Fig. 7: exactly the final entity instance of each activity is linked
	// to the current (version 2) schedule instance.
	for _, pair := range []struct{ class, act string }{
		{"netlist", "Create"}, {"performance", "Simulate"},
	} {
		final := s.Mgr.DB.Container(pair.class).Latest()
		schedInst := s.Mgr.DB.Get("sched:" + pair.act + "/2")
		if !s.Mgr.DB.Linked(schedInst.ID, final.ID) {
			t.Errorf("%s not linked to %s", schedInst.ID, final.ID)
		}
		first := s.Mgr.DB.Container(pair.class).Entries[0]
		if len(first.Links) != 0 {
			t.Errorf("non-final entity %s has links %v", first.ID, first.Links)
		}
	}
}

func TestFigureTexts(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (string, error)
		want []string
	}{
		{"Fig1", Fig1, []string{"Level 2", "Create --netlist--> Simulate", "sched:Create/2", "<-> netlist/2"}},
		{"Fig2", Fig2, []string{"Level 1", "2 construction rules", "Level 3", "Level 4"}},
		{"Fig3", Fig3, []string{"execution space", "schedule space", "2 runs", "2 schedule instances"}},
		{"Fig5", Fig5, []string{"Planning Phase", "sched:Create", "sched:Simulate/2", "schedule/2"}},
		{"Fig6", Fig6, []string{"Execution Phase", "netlist/2", "performance/2", "run:Create/2"}},
		{"Fig7", Fig7, []string{"Completion", "->{", "netlist/2", "sched:Create/2"}},
		{"Fig8", Fig8, []string{"task tree", "Create", "plan v2", "actual", "done"}},
	}
	for _, tc := range cases {
		out, err := tc.gen()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing %q:\n%s", tc.name, want, out)
			}
		}
	}
}

func TestFig4Text(t *testing.T) {
	out := Fig4()
	for _, want := range []string{"netlist", "performance <- simulator(netlist, stimuli)", "rule Create"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 missing %q:\n%s", want, out)
		}
	}
}

func TestTableIText(t *testing.T) {
	out, err := TableIText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE I", "Hercules", "VOV", "Run, Entity Inst."} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI missing %q:\n%s", want, out)
		}
	}
}

func TestE1TrackingDrift(t *testing.T) {
	out, err := E1TrackingDrift()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"integrated", "separate", "meanLag"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 missing %q:\n%s", want, out)
		}
	}
	// Shape check: the integrated row reports zero lag.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "integrated") && !strings.Contains(line, "0s") {
			t.Errorf("integrated lag not zero: %s", line)
		}
	}
}

func TestE2Prediction(t *testing.T) {
	out, err := E2Prediction()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mean", "ewma(0.5)", "regression", "MAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 missing %q:\n%s", want, out)
		}
	}
}

func TestE3Scaling(t *testing.T) {
	out, err := E3Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "depth width acts") {
		t.Fatalf("E3 header missing:\n%s", out)
	}
	// Four sweep rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "2 ") || strings.HasPrefix(line, "4 ") ||
			strings.HasPrefix(line, "6 ") || strings.HasPrefix(line, "8 ") {
			rows++
		}
	}
	if rows != 4 {
		t.Fatalf("E3 rows = %d:\n%s", rows, out)
	}
}

func TestE4CriticalPath(t *testing.T) {
	out, err := E4CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path:", "Synthesize", "project duration:", "P(finish within"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 missing %q:\n%s", want, out)
		}
	}
	// The critical path must start at Synthesize (the flow's root).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "critical path:") && !strings.Contains(line, "Synthesize ->") {
			t.Errorf("critical path does not start at Synthesize: %s", line)
		}
	}
}

func TestE5Queries(t *testing.T) {
	out, err := E5Queries()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"duration of Create", "lineage", "schedule/1 -> schedule/2", "runs of Create\n  runs of Create = 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("E5 missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioDeterministic(t *testing.T) {
	out1, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("scenario not deterministic")
	}
}

func TestE6Risk(t *testing.T) {
	out, err := E6Risk()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Monte-Carlo", "p50", "criticality", "Synthesize", "Route", "serial", "parallel"} {
		if !strings.Contains(out, want) {
			t.Errorf("E6 missing %q:\n%s", want, out)
		}
	}
	// The backbone chain must dominate criticality over the side branches.
	if !strings.Contains(out, "Route       1.00") {
		t.Errorf("Route not fully critical:\n%s", out)
	}
}

func TestE7Observability(t *testing.T) {
	out, err := E7Observability()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"span tree",
		"engine.plan", "engine.execute", "monte.simulate",
		"nested span(s)", // depth-2 rendering summarizes runs and shards
		"virtual containment: ok",
		"engine_events_total", "monte_trials_total", "store_puts_total",
		"engine_activity_virtual_seconds", "histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 missing %q:\n%s", want, out)
		}
	}
}

func TestE9FaultTolerance(t *testing.T) {
	out, err := E9FaultTolerance()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"with and without faults",
		"clean finish", "faulty finish", "slip (working)",
		"Synthesize", "GateSim",
		"project finish: clean",
		"fault plan (seed 1995):",
		"injected",
		"retries (backoff)",
		"failovers",
		"replays bit-identically",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E9 missing %q:\n%s", want, out)
		}
	}
	// The exhibit's own claim: seeded faults replay bit-identically.
	again, err := E9FaultTolerance()
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("E9 not reproducible across runs")
	}
}
