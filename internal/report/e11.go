package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/scenario"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// E11IncrementalRisk demonstrates the subtree trial-stream memo on the
// sweep's risk dimension: a what-if sweep with Monte-Carlo risk on
// every scenario simulates the baseline model once, shares its
// per-subtree streams across the forks, and re-samples only the
// subtrees each edit dirtied — so total sampling scales with the
// edited subtrees, not the scenario count. The exhibit prints the
// deterministic sampled/reused activity-trial split at growing
// scenario counts (single-activity edits cycling over the ASIC flow's
// late-stage activities), plus one scenario's distribution to show the
// numbers are real. Wall-clock trajectories live in
// BENCH_scenarios.json (risk_sweeps) and BENCH_risk.json
// (-incremental); everything printed here is exact and reproducible.
func E11IncrementalRisk() (string, error) {
	const trials = 1000
	var b strings.Builder
	b.WriteString("E11 — Incremental risk: sweep sampling scales with edited subtrees\n\n")
	fmt.Fprintf(&b, "  %-10s %-15s %-14s %-19s %s\n",
		"scenarios", "sampled trials", "reused trials", "naive (cold) trials", "saved")

	var last *scenario.Report
	for _, sc := range []int{5, 25, 100} {
		m, err := e11manager()
		if err != nil {
			return "", err
		}
		rep, err := scenario.Sweep(m, m.Schema.PrimaryOutputs(), e11edits(sc), scenario.Options{
			Workers: 1, // serial: the sampled/reused split is exactly reproducible
			Risk:    &scenario.RiskSpec{Trials: trials, Seed: 1995},
		})
		if err != nil {
			return "", err
		}
		naive := rep.RiskSampledTrials + rep.RiskReusedTrials
		fmt.Fprintf(&b, "  %-10d %-15d %-14d %-19d %.1f%%\n",
			sc, rep.RiskSampledTrials, rep.RiskReusedTrials, naive,
			100*float64(rep.RiskReusedTrials)/float64(naive))
		last = rep
	}

	o := last.Scenarios[0]
	fmt.Fprintf(&b, "\nscenario %q risk (trials %d): mean %s, p50 %s, p90 %s — bit-identical\n",
		o.Name, o.Risk.Trials,
		o.Risk.Mean.Round(time.Minute), o.Risk.P50.Round(time.Minute),
		o.Risk.P90.Round(time.Minute))
	b.WriteString("to a cold simulation of the same edited fork (TestSweepRiskMatchesColdFork).\n")
	b.WriteString("\nEach scenario perturbs one late-stage activity, so its fork re-samples\n")
	b.WriteString("a 1-2 activity subtree and reuses the shared baseline streams for the\n")
	b.WriteString("remaining six or seven; naive cost is (scenarios+2) x activities x trials\n")
	b.WriteString("(the shared pre-warm plus the baseline fork included).\n")
	return b.String(), nil
}

// e11manager builds the same ASIC workload as E8, with simulated tools
// bound and primary inputs imported.
func e11manager() (*engine.Manager, error) {
	sch := workload.ASIC()
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "e11")
	if err != nil {
		return nil, err
	}
	if err := m.BindDefaults(); err != nil {
		return nil, err
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// e11edits mirrors cmd/benchstore's risk sweep: n single-activity
// perturbations cycling over the flow's late-stage activities.
func e11edits(n int) []scenario.Edit {
	acts := []string{"DRC", "LVS", "STA", "GateSim", "Extract"}
	edits := make([]scenario.Edit, n)
	for i := range edits {
		edits[i] = scenario.Edit{
			Name:  fmt.Sprintf("s%03d", i),
			Scale: map[string]float64{acts[i%len(acts)]: 1 + 0.01*float64(i+1)},
		}
	}
	return edits
}
