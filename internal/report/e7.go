package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/sched"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// E7Observability runs the ASIC flow end-to-end under full
// instrumentation — plan, parallel execution, Monte-Carlo risk — and
// prints the dual-clock account of the session: the span tree showing
// where the simulated project's design time went alongside the wall
// compute each step cost, plus the recorded metrics.
func E7Observability() (string, error) {
	o := obs.New()
	sch := workload.ASIC()
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "e7")
	if err != nil {
		return "", err
	}
	m.Instrument(o)
	if err := m.BindDefaults(); err != nil {
		return "", err
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
			return "", err
		}
	}
	tree, err := m.ExtractTree(sch.PrimaryOutputs()...)
	if err != nil {
		return "", err
	}
	est, err := workload.Estimates(sch, 10*time.Hour, 0.3, 9)
	if err != nil {
		return "", err
	}
	pr, err := m.Plan(tree, est, sched.PlanOptions{})
	if err != nil {
		return "", err
	}
	if _, err := m.ExecuteTask(tree, engine.ExecOptions{
		Plan: &pr.Plan, AutoComplete: true, Parallel: true,
	}); err != nil {
		return "", err
	}
	models, err := ASICRiskModels()
	if err != nil {
		return "", err
	}
	if _, err := monte.Simulate(models, monte.Config{
		Trials: 2000, Seed: 1995, Obs: o, VirtNow: m.Clock.Now(),
	}); err != nil {
		return "", err
	}

	spans := o.Tracer().Spans()
	var b strings.Builder
	b.WriteString("E7 — Dual-clock observability of an instrumented ASIC session\n\n")
	b.WriteString("span tree (virtual design time vs wall compute, depth 2):\n\n")
	b.WriteString(obs.RenderTree(spans, 2))
	if err := obs.ValidateContainment(spans); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\n%d spans recorded; virtual containment: ok\n", len(spans))
	b.WriteString("\nmetrics:\n")
	for _, ms := range o.Metrics().Snapshot() {
		if ms.Kind == "histogram" {
			fmt.Fprintf(&b, "  %-36s histogram  n=%d sum=%.4g\n", ms.Name, ms.Count, ms.Value)
			continue
		}
		fmt.Fprintf(&b, "  %-36s %-9s  %d\n", ms.Name, ms.Kind, int64(ms.Value))
	}
	return b.String(), nil
}
