package report

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"flowsched/internal/baseline"
	"flowsched/internal/engine"
	"flowsched/internal/monte"
	"flowsched/internal/par"
	"flowsched/internal/pert"
	"flowsched/internal/predict"
	"flowsched/internal/sched"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// E1TrackingDrift measures the paper's automatic-update advantage:
// the same execution event stream is tracked by the integrated system
// (zero lag by construction) and by a separate PM system fed at status
// meetings of varying cadence. Columns: reporting period, mean lag, max
// lag, stale fraction.
func E1TrackingDrift() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	// Ground truth events from the engine's event stream.
	var events []baseline.Event
	for _, ev := range s.Mgr.Events() {
		switch ev.Kind {
		case engine.EvTaskStarted:
			events = append(events, baseline.Event{Activity: ev.Activity, Kind: baseline.Start, At: ev.At})
		case engine.EvTaskComplete:
			events = append(events, baseline.Event{Activity: ev.Activity, Kind: baseline.Finish, At: ev.At})
		}
	}
	var b strings.Builder
	b.WriteString("E1 — Integrated vs. separate schedule tracking\n\n")
	b.WriteString("channel       period   meanLag     maxLag      stale%\n")
	id, err := baseline.Drift(baseline.SimulateIntegrated(events))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "integrated    —        %-11s %-11s %5.1f\n",
		id.MeanLag, id.MaxLag, 100*id.StaleFraction)
	for _, days := range []int{1, 2, 5, 7, 14} {
		cfg := baseline.SeparateConfig{
			Period:       time.Duration(days) * 24 * time.Hour,
			FirstMeeting: vclock.Epoch.Add(time.Duration(days) * 24 * time.Hour),
			MissProb:     0.10,
			Seed:         42,
		}
		reps, err := baseline.SimulateSeparate(events, cfg)
		if err != nil {
			return "", err
		}
		st, err := baseline.Drift(reps)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "separate      %2dd      %-11s %-11s %5.1f\n",
			days, st.MeanLag.Round(time.Hour), st.MaxLag.Round(time.Hour), 100*st.StaleFraction)
	}
	return b.String(), nil
}

// E2Prediction evaluates history-based duration prediction: a sequence of
// completed projects with drifting durations is predicted by each
// predictor, scoring MAPE as the history grows.
func E2Prediction() (string, error) {
	// Synthetic but structured history: durations drift upward with mild
	// noise, sizes grow — the regime where Historical beats Fixed.
	var samples []predict.Sample
	noise := []float64{0.4, -0.3, 0.2, -0.1, 0.3, -0.4, 0.1, -0.2, 0.25, -0.15, 0.05, -0.05}
	for i := 0; i < 12; i++ {
		base := 20.0 + 1.5*float64(i) // hours
		samples = append(samples, predict.Sample{
			Duration: time.Duration((base + noise[i]*4) * float64(time.Hour)),
			Size:     1 + 0.1*float64(i),
		})
	}
	var b strings.Builder
	b.WriteString("E2 — History-based duration prediction (12 projects, rising workload)\n\n")
	b.WriteString("predictor     warmup  N   MAE        MAPE\n")
	preds := []struct {
		name string
		p    predict.Predictor
	}{
		{"mean", predict.Mean{}},
		{"ewma(0.5)", predict.EWMA{Alpha: 0.5}},
		{"regression", predict.Regression{}},
	}
	for _, warmup := range []int{2, 4} {
		for _, pr := range preds {
			acc, err := predict.Evaluate(pr.p, samples, warmup)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-13s %-7d %-3d %-10s %5.1f%%\n",
				pr.name, warmup, acc.N, acc.MAE.Round(time.Minute), 100*acc.MAPE)
		}
	}
	b.WriteString("\n(regression tracks the trend; plain mean lags it — the paper's\n")
	b.WriteString(" motivation for keeping schedule history queryable)\n")
	return b.String(), nil
}

// E3Scaling sweeps layered flows to show planning-by-simulation and
// execution scale with flow size. Columns: activities, plan span, exec
// instances. The sweep points build isolated engines, so they run on
// the shared worker pool (internal/par); rows are assembled by index,
// keeping the exhibit byte-identical to a serial run.
func E3Scaling() (string, error) {
	sizes := []struct{ d, w int }{{2, 2}, {4, 4}, {6, 6}, {8, 8}}
	rows := make([]string, len(sizes))
	err := par.New(0).ForEachErr(len(sizes), func(i int) error {
		sz := sizes[i]
		sch, err := workload.Layered(workload.LayeredConfig{
			Depth: sz.d, Width: sz.w, FanIn: 2, Seed: 11,
		})
		if err != nil {
			return err
		}
		m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "bench")
		if err != nil {
			return err
		}
		if err := m.BindDefaults(); err != nil {
			return err
		}
		for _, leaf := range sch.PrimaryInputs() {
			if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
				return err
			}
		}
		tree, err := m.ExtractTree(sch.PrimaryOutputs()...)
		if err != nil {
			return err
		}
		est, err := workload.Estimates(sch, 8*time.Hour, 0.2, 5)
		if err != nil {
			return err
		}
		pr, err := m.Plan(tree, est, sched.PlanOptions{})
		if err != nil {
			return err
		}
		if _, err := m.ExecuteTask(tree, engine.ExecOptions{Plan: &pr.Plan, AutoComplete: true}); err != nil {
			return err
		}
		span := pr.Plan.Finish.Sub(pr.Plan.Start)
		runs, entities := 0, 0
		for _, r := range sch.Rules() {
			_, rs, err := m.Exec.Runs(r.Activity)
			if err != nil {
				return err
			}
			runs += len(rs)
			entities += len(m.DB.Container(r.Output).Entries)
		}
		rows[i] = fmt.Sprintf("%-5d %-5d %-5d %-13s %-8d %d\n",
			sz.d, sz.w, len(sch.Rules()), span.Round(time.Hour), runs, entities)
		return nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E3 — Scaling of planning and execution with flow size\n\n")
	b.WriteString("depth width acts  planSpan      execRuns execEntities\n")
	for _, row := range rows {
		b.WriteString(row)
	}
	return b.String(), nil
}

// E4CriticalPath analyses the ASIC flow's plan with CPM: early/late
// dates, slack, critical path, and PERT completion probabilities.
func E4CriticalPath() (string, error) {
	sch := workload.ASIC()
	fixed, err := workload.Estimates(sch, 10*time.Hour, 0.3, 9)
	if err != nil {
		return "", err
	}
	tp := workload.ThreePoints(fixed)
	var acts []pert.Activity
	for _, r := range sch.Rules() {
		est, err := tp.Estimate(r.Activity, r)
		if err != nil {
			return "", err
		}
		var preds []string
		for _, in := range r.Inputs {
			if p := sch.Producer(in); p != nil {
				preds = append(preds, p.Activity)
			}
		}
		acts = append(acts, pert.Activity{
			Name: r.Activity, Duration: est.Work,
			Optimistic: est.Optimistic, Pessimistic: est.Pessimistic,
			Preds: preds,
		})
	}
	net, err := pert.NewNetwork(acts)
	if err != nil {
		return "", err
	}
	res, err := net.Analyze()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E4 — CPM/PERT analysis of the ASIC flow plan\n\n")
	b.WriteString("activity    ES      EF      slack   critical\n")
	for _, tm := range res.Timings {
		fmt.Fprintf(&b, "%-11s %-7s %-7s %-7s %v\n",
			tm.Name, tm.EarlyStart.Round(time.Hour), tm.EarlyFinish.Round(time.Hour),
			tm.Slack.Round(time.Hour), tm.Critical)
	}
	fmt.Fprintf(&b, "\nproject duration: %s working time\n", res.Duration.Round(time.Hour))
	fmt.Fprintf(&b, "critical path:    %s\n", strings.Join(res.CriticalPath, " -> "))
	for _, frac := range []float64{0.9, 1.0, 1.1, 1.25} {
		target := time.Duration(float64(res.Duration) * frac)
		fmt.Fprintf(&b, "P(finish within %3.0f%% of plan) = %.2f\n",
			100*frac, res.CompletionProbability(target))
	}
	return b.String(), nil
}

// E5Queries exercises the §IV.B query set over a populated database and
// prints the answers.
func E5Queries() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	eng, err := newQueryEngine(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E5 — Schedule data and schedule metadata queries (§IV.B)\n\n")
	queries := []string{
		"duration of Create",
		"duration of Simulate",
		"durations of Create",
		"mean duration of Simulate",
		"estimate of Simulate",
		"lineage",
		"load",
		"runs of Create",
	}
	for _, q := range queries {
		ans, err := eng.Eval(q)
		if err != nil {
			return "", fmt.Errorf("report: query %q: %w", q, err)
		}
		fmt.Fprintf(&b, "> %s\n  %s\n", q, ans)
	}
	return b.String(), nil
}

// ASICRiskModels derives the Monte-Carlo activity models for the ASIC
// flow from the standard tool profiles. It is the stochastic model
// behind exhibit E6 and the benchrisk harness.
func ASICRiskModels() ([]monte.ActivityModel, error) {
	sch := workload.ASIC()
	profiles := tools.StandardProfiles()
	var models []monte.ActivityModel
	for _, r := range sch.Rules() {
		prof, ok := profiles[r.Tool]
		if !ok {
			return nil, fmt.Errorf("report: no profile for tool %s", r.Tool)
		}
		var preds []string
		for _, in := range r.Inputs {
			if p := sch.Producer(in); p != nil {
				preds = append(preds, p.Activity)
			}
		}
		min := time.Duration(float64(prof.Base) * (1 - prof.Jitter))
		max := time.Duration(float64(prof.Base) * (1 + prof.Jitter))
		models = append(models, monte.ActivityModel{
			Name: r.Activity, Min: min, Mode: prof.Base, Max: max,
			MeanIterations: prof.MeanIterations, Preds: preds,
		})
	}
	return models, nil
}

// SoCRiskModels builds a chip-scale risk network: the ASIC flow
// replicated per block (activities namespaced "b<k>."), plus a
// top-level assembly chain that integrates every block's layout and
// signs the chip off. It is the workload for the incremental-risk
// benchmarks and the E11 exhibit — wide enough that a single-block edit
// leaves most of the network's trial streams reusable, which is the
// regime the subtree memo is for.
func SoCRiskModels(blocks int) ([]monte.ActivityModel, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("report: soc model needs >= 1 block, got %d", blocks)
	}
	base, err := ASICRiskModels()
	if err != nil {
		return nil, err
	}
	var models []monte.ActivityModel
	var layoutActs []string
	for k := 1; k <= blocks; k++ {
		ns := fmt.Sprintf("b%d.", k)
		for _, m := range base {
			nm := m
			nm.Name = ns + m.Name
			nm.Preds = make([]string, len(m.Preds))
			for i, p := range m.Preds {
				nm.Preds[i] = ns + p
			}
			models = append(models, nm)
			if m.Name == "Route" {
				layoutActs = append(layoutActs, nm.Name)
			}
		}
	}
	h := func(n int) time.Duration { return time.Duration(n) * time.Hour }
	models = append(models,
		monte.ActivityModel{
			Name: "Assemble", Min: h(6), Mode: h(10), Max: h(18),
			MeanIterations: 1.5, Preds: layoutActs,
		},
		monte.ActivityModel{
			Name: "ChipDRC", Min: h(3), Mode: h(5), Max: h(9),
			MeanIterations: 1.8, Preds: []string{"Assemble"},
		},
		monte.ActivityModel{
			Name: "Signoff", Min: h(2), Mode: h(3), Max: h(6),
			MeanIterations: 1.2, Preds: []string{"ChipDRC"},
		},
	)
	return models, nil
}

// E6Risk runs the Monte-Carlo schedule risk analysis over the ASIC flow,
// comparing it with the analytic PERT approximation from E4.
func E6Risk() (string, error) {
	models, err := ASICRiskModels()
	if err != nil {
		return "", err
	}
	res, err := monte.Simulate(models, monte.Config{Trials: 5000, Seed: 1995})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E6 — Monte-Carlo schedule risk for the ASIC flow (5000 trials)\n\n")
	fmt.Fprintf(&b, "mean span %s; p10 %s, p50 %s, p90 %s\n",
		res.Mean().Round(time.Minute),
		res.Percentile(0.1).Round(time.Minute),
		res.Percentile(0.5).Round(time.Minute),
		res.Percentile(0.9).Round(time.Minute))
	for _, frac := range []float64{1.0, 1.1, 1.25} {
		target := time.Duration(float64(res.Percentile(0.5)) * frac)
		fmt.Fprintf(&b, "P(finish within %3.0f%% of median) = %.2f\n", 100*frac, res.ProbWithin(target))
	}
	b.WriteString("\nactivity criticality (fraction of trials on the critical path):\n")
	var names []string
	for _, m := range models {
		names = append(names, m.Name)
	}
	sort.Slice(names, func(i, j int) bool {
		return res.Criticality[names[i]] > res.Criticality[names[j]]
	})
	for _, n := range names {
		fmt.Fprintf(&b, "  %-11s %.2f  (mean iterations %.2f)\n",
			n, res.Criticality[n], res.MeanIterObserved[n])
	}

	// Engine timings: the sharded engine returns bit-identical results
	// for every worker count, so the comparison below is pure speed.
	const timingTrials = 100000
	serial, err := timeSimulate(models, timingTrials, 1)
	if err != nil {
		return "", err
	}
	parallel, err := timeSimulate(models, timingTrials, 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nengine (%d trials, deterministic shards): serial %s; parallel %s on %d cores (%.1fx)\n",
		timingTrials, serial.Round(time.Millisecond), parallel.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), float64(serial)/float64(parallel))
	return b.String(), nil
}

// timeSimulate measures one wall-clock Simulate run at the given worker
// count.
func timeSimulate(models []monte.ActivityModel, trials, workers int) (time.Duration, error) {
	start := time.Now()
	if _, err := monte.Simulate(models, monte.Config{Trials: trials, Seed: 1995, Workers: workers}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
