// Package report regenerates every exhibit of the paper — Table I and
// Figs. 1–8 — from live system objects, plus the quantitative experiments
// E1–E5 described in DESIGN.md. The cmd/experiments binary prints these;
// EXPERIMENTS.md records the outputs against the paper's versions.
package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/flow"
	"flowsched/internal/fourlevel"
	"flowsched/internal/gantt"
	"flowsched/internal/sched"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// scriptedTool is a tools.Tool whose goal decision is fully scripted: the
// activity iterates exactly Iterations times, each run taking Work. It
// gives the paper-scenario figures their exact instance populations
// (N1/N2, P1/P2, …).
type scriptedTool struct {
	class, instance string
	work            time.Duration
	iterations      int
}

func (s *scriptedTool) Instance() string { return s.instance }
func (s *scriptedTool) Class() string    { return s.class }

func (s *scriptedTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	out := fmt.Sprintf("# %s output, iteration %d of %d\n", s.instance, iteration, s.iterations)
	return tools.Result{
		Output:  []byte(out),
		Work:    s.work,
		GoalMet: iteration >= s.iterations,
	}, nil
}

// Scenario is the canonical paper scenario: the Fig. 4 circuit schema,
// two planning passes, then an execution in which each activity iterates
// exactly twice before its goals are met — reproducing the database
// states of Figs. 5, 6, and 7.
type Scenario struct {
	Mgr   *engine.Manager
	Tree  *flow.Tree
	Plan1 *sched.PlanResult
	Plan2 *sched.PlanResult
	Exec  *engine.ExecResult
}

// NewScenario builds the scenario up to (but not including) execution.
func NewScenario() (*Scenario, error) {
	m, err := engine.New(workload.Fig4(), vclock.Standard(), vclock.Epoch, "ewj")
	if err != nil {
		return nil, err
	}
	if err := m.BindTool("Create", &scriptedTool{
		class: "editor", instance: "editor#1", work: 6 * time.Hour, iterations: 2,
	}); err != nil {
		return nil, err
	}
	if err := m.BindTool("Simulate", &scriptedTool{
		class: "simulator", instance: "simulator#1", work: 3 * time.Hour, iterations: 2,
	}); err != nil {
		return nil, err
	}
	if _, err := m.Import("stimuli", []byte("pulse 0 5 1ns 1ns 1ns 10ns 20ns\n")); err != nil {
		return nil, err
	}
	tree, err := m.ExtractTree("performance")
	if err != nil {
		return nil, err
	}
	est := sched.Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	assign := map[string][]string{"Create": {"ewj"}, "Simulate": {"ewj"}}
	p1, err := m.Plan(tree, est, sched.PlanOptions{Assignments: assign})
	if err != nil {
		return nil, err
	}
	// The plan is refined once before execution (Fig. 5 shows two
	// schedule-instance versions per activity).
	est.ByActivity["Create"] = 12 * time.Hour
	p2, err := m.Plan(tree, est, sched.PlanOptions{
		Assignments: assign, BasedOn: []string{p1.Entry.ID},
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{Mgr: m, Tree: tree, Plan1: p1, Plan2: p2}, nil
}

// Execute runs the scenario's task against plan 2 with auto-completion.
func (s *Scenario) Execute() error {
	res, err := s.Mgr.ExecuteTask(s.Tree, engine.ExecOptions{
		Plan: &s.Plan2.Plan, AutoComplete: true,
	})
	if err != nil {
		return err
	}
	s.Exec = res
	return nil
}

// Fig1 renders the schedule model within the system representation: the
// Level 2 flow above the two Level 3 populations (proposed milestones and
// actual design metadata) with their links.
func Fig1() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 1 — Schedule Model within the System Representation\n\n")
	b.WriteString("Level 2 (pre-execution): process flow\n")
	for _, arc := range s.Mgr.Graph.Arcs() {
		fmt.Fprintf(&b, "  %s --%s--> %s\n", arc.From, arc.Class, arc.To)
	}
	b.WriteString("\nLevel 3 (post-execution):\n")
	b.WriteString("  proposed schedule          actual design metadata\n")
	for _, act := range s.Tree.Activities() {
		se, in, err := s.Mgr.Sched.Instance(&s.Plan2.Plan, act)
		if err != nil {
			return "", err
		}
		link := "(unlinked)"
		if in.LinkedEntity != "" {
			link = "<-> " + in.LinkedEntity
		}
		fmt.Fprintf(&b, "  %-26s %s\n", se.ID, link)
	}
	return b.String(), nil
}

// Fig2 renders the Hercules four-level architecture populated with live
// object counts.
func Fig2() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 2 — Hercules Architecture Representation\n\n")
	fmt.Fprintf(&b, "Level 1  task schema: %d entity classes, %d construction rules\n",
		len(s.Mgr.Schema.Classes()), len(s.Mgr.Schema.Rules()))
	fmt.Fprintf(&b, "Level 2  flow model:  %d task nodes, %d arcs\n",
		len(s.Mgr.Graph.Nodes()), len(s.Mgr.Graph.Arcs()))
	st := s.Mgr.DB.Stats()
	for _, sp := range []struct {
		name string
		key  string
	}{{"execution space", "execution"}, {"schedule space", "schedule"}} {
		for space, v := range st {
			if string(space) == sp.key {
				fmt.Fprintf(&b, "Level 3  %s: %d containers, %d instances\n",
					sp.name, v.Containers, v.Instances)
			}
		}
	}
	fmt.Fprintf(&b, "Level 4  design data: %d objects, %d bytes\n",
		s.Mgr.Data.TotalObjects(), s.Mgr.Data.TotalBytes())
	return b.String(), nil
}

// Fig3 renders the mirrored Level 3 spaces: execution objects beside
// their schedule counterparts.
func Fig3() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 3 — Execution and Schedule Model in Hercules (Level 3)\n\n")
	b.WriteString("  execution space              schedule space\n")
	b.WriteString("  ---------------              --------------\n")
	fmt.Fprintf(&b, "  %-28s %s\n", "Run (per tool application)", "Schedule (per planning pass)")
	fmt.Fprintf(&b, "  %-28s %s\n", "Entity instance", "Schedule instance")
	fmt.Fprintf(&b, "  %-28s %s\n\n", "Instance dependency", "Schedule dependency")
	for _, act := range s.Tree.Activities() {
		_, runs, err := s.Mgr.Exec.Runs(act)
		if err != nil {
			return "", err
		}
		_, hist, err := s.Mgr.Sched.History(act)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-10s %d runs %14s %d schedule instances\n",
			act, len(runs), "", len(hist))
	}
	return b.String(), nil
}

// Fig4 renders the example task schema.
func Fig4() string {
	s := workload.Fig4()
	var b strings.Builder
	b.WriteString("Fig. 4 — Example Task Schema\n\n")
	b.WriteString(s.Format())
	b.WriteString("\nconstruction rules as expressions:\n")
	for _, r := range s.Rules() {
		fmt.Fprintf(&b, "  %s <- %s(%s)\n", r.Output, r.Tool, strings.Join(r.Inputs, ", "))
	}
	return b.String()
}

// Fig5 renders the database during the planning phase: two planning
// passes populate the schedule containers with two versions each (CC1,
// CC2, SC1, SC2) while the execution space holds only the imported
// stimuli.
func Fig5() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	return "Fig. 5 — Hercules Database during Planning Phase\n\n" + s.Mgr.DB.Dump(), nil
}

// Fig6 renders the database during the execution phase: each activity
// iterated twice, so netlist and performance each hold two entity
// instances, with two runs per activity — and no links yet.
func Fig6() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	// Execute without auto-completion: Fig. 6 precedes task sign-off.
	if _, err := s.Mgr.ExecuteTask(s.Tree, engine.ExecOptions{Plan: &s.Plan2.Plan}); err != nil {
		return "", err
	}
	return "Fig. 6 — Hercules Database during Execution Phase\n\n" + s.Mgr.DB.Dump(), nil
}

// Fig7 renders the database at completion of execution: the final entity
// instances are linked to the current schedule instances.
func Fig7() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	return "Fig. 7 — Hercules Database at Completion of Execution\n\n" + s.Mgr.DB.Dump(), nil
}

// Fig8 renders the user-interface view: the task tree with schedule
// state, and the Gantt chart of planned versus accomplished schedule.
func Fig8() (string, error) {
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	if err := s.Execute(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 8 — Hercules User Interface (task tree + schedule view)\n\n")
	b.WriteString(TaskTree(s.Mgr, s.Tree, &s.Plan2.Plan))
	b.WriteString("\n")
	chart, err := Chart(s.Mgr, &s.Plan2.Plan, s.Mgr.Clock.Now())
	if err != nil {
		return "", err
	}
	b.WriteString(chart)
	return b.String(), nil
}

// TaskTree renders the task tree with per-node schedule state, the
// central feature of the Hercules UI.
func TaskTree(m *engine.Manager, tree *flow.Tree, p *sched.Plan) string {
	var b strings.Builder
	b.WriteString("task tree (targets: " + strings.Join(tree.Targets, ", ") + ")\n")
	for _, act := range tree.Activities() {
		state := "unplanned"
		detail := ""
		if p != nil {
			if _, in, err := m.Sched.Instance(p, act); err == nil {
				switch {
				case in.Done:
					state = "done"
					detail = fmt.Sprintf(" -> %s", in.LinkedEntity)
				case in.Started():
					state = "in-progress"
				default:
					state = "planned"
				}
				detail += fmt.Sprintf("  [%s .. %s]",
					in.PlannedStart.Format("01-02"), in.PlannedFinish.Format("01-02"))
			}
		}
		rule := m.Schema.RuleByActivity(act)
		fmt.Fprintf(&b, "  %-10s %s(%s) -> %s  [%s]%s\n",
			act, rule.Tool, strings.Join(rule.Inputs, ","), rule.Output, state, detail)
	}
	return b.String()
}

// Chart renders the plan's Gantt chart at time now.
func Chart(m *engine.Manager, p *sched.Plan, now time.Time) (string, error) {
	_, insts, err := m.Sched.Instances(p)
	if err != nil {
		return "", err
	}
	rows := make([]gantt.Row, 0, len(insts))
	for _, in := range insts {
		rows = append(rows, gantt.Row{
			Name: in.Activity, Resources: in.Resources,
			PlannedStart: in.PlannedStart, PlannedFinish: in.PlannedFinish,
			ActualStart: in.ActualStart, ActualFinish: in.ActualFinish,
			Done: in.Done,
		})
	}
	// Refresh achievement state first — the integrated system updates the
	// schedule automatically, so the chart never shows a stale milestone.
	milestones, err := m.Sched.RefreshMilestones(p)
	if err != nil {
		return "", err
	}
	markers := make([]gantt.Marker, 0, len(milestones))
	for _, ms := range milestones {
		markers = append(markers, gantt.Marker{Name: ms.Name, At: ms.Target, Achieved: ms.Achieved})
	}
	c := &gantt.Chart{
		Title:    fmt.Sprintf("plan v%d (targets %s)", p.Version, strings.Join(p.Targets, ",")),
		Calendar: m.Calendar, Rows: rows, Milestones: markers, Now: now,
	}
	return c.Render(), nil
}

// TableIText renders the paper's Table I from live adapters instantiated
// on the Fig. 4 schema.
func TableIText() (string, error) {
	systems := fourlevel.AllSystems()
	for _, sys := range systems {
		if err := sys.Instantiate(workload.Fig4()); err != nil {
			return "", fmt.Errorf("report: instantiate %s: %w", sys.Name(), err)
		}
	}
	return fourlevel.TableI(systems), nil
}
