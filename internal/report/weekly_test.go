package report

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/vclock"
)

func TestStatusReport(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	from := vclock.Epoch
	to := from.Add(7 * 24 * time.Hour)
	out, err := StatusReport(s.Mgr, &s.Plan2.Plan, from, to)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"status report 1995-06-05 .. 1995-06-12",
		"4 runs started, 4 finished",
		"completed tasks:",
		"Create",
		"Simulate",
		"projected project finish:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStatusReportEmptyWindow(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StatusReport(s.Mgr, &s.Plan2.Plan, vclock.Epoch, vclock.Epoch); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := StatusReport(nil, nil, vclock.Epoch, vclock.Epoch.Add(time.Hour)); err == nil {
		t.Fatal("nil manager accepted")
	}
}

func TestStatusReportQuietWindow(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	// A window a year later: nothing happened, nothing upcoming.
	from := vclock.Epoch.AddDate(1, 0, 0)
	out, err := StatusReport(s.Mgr, &s.Plan2.Plan, from, from.Add(7*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 runs started") {
		t.Fatalf("quiet window report:\n%s", out)
	}
	if strings.Contains(out, "completed tasks:") {
		t.Fatalf("stale completions in quiet window:\n%s", out)
	}
}

func TestStatusReportWithoutPlan(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	out, err := StatusReport(s.Mgr, nil, vclock.Epoch, vclock.Epoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "projected project finish") {
		t.Fatalf("plan section without plan:\n%s", out)
	}
}
