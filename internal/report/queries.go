package report

import (
	"flowsched/internal/query"
)

// newQueryEngine builds the §IV.B query engine over a scenario's database.
func newQueryEngine(s *Scenario) (*query.Engine, error) {
	return query.New(s.Mgr.Sched, s.Mgr.Exec)
}
