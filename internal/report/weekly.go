package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/sched"
)

// StatusReport renders the project-manager's periodic report for the
// window [from, to): what ran, what completed, what slipped, and what
// the plan expects next. Everything is drawn from the manager's event
// stream and the current plan — the integrated system's answer to the
// weekly status meeting the separate-PM baseline depends on.
func StatusReport(m *engine.Manager, p *sched.Plan, from, to time.Time) (string, error) {
	if m == nil {
		return "", fmt.Errorf("report: nil manager")
	}
	if !to.After(from) {
		return "", fmt.Errorf("report: empty window %v .. %v", from, to)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "status report %s .. %s\n\n",
		from.Format("2006-01-02"), to.Format("2006-01-02"))

	inWindow := func(at time.Time) bool { return !at.Before(from) && at.Before(to) }
	counts := map[engine.EventKind]int{}
	var completed, slips, violations []engine.Event
	for _, ev := range m.Events() {
		if !inWindow(ev.At) {
			continue
		}
		counts[ev.Kind]++
		switch ev.Kind {
		case engine.EvTaskComplete:
			completed = append(completed, ev)
		case engine.EvSlip:
			slips = append(slips, ev)
		case engine.EvConstraint:
			violations = append(violations, ev)
		}
	}
	fmt.Fprintf(&b, "activity: %d runs started, %d finished, %d failed; %d data versions created\n",
		counts[engine.EvRunStarted], counts[engine.EvRunFinished],
		counts[engine.EvRunFailed], counts[engine.EvEntityCreated])
	if len(completed) > 0 {
		b.WriteString("\ncompleted tasks:\n")
		for _, ev := range completed {
			fmt.Fprintf(&b, "  %-12s %s (%s)\n", ev.Activity,
				ev.At.Format("Mon 01-02 15:04"), ev.Detail)
		}
	}
	if len(violations) > 0 {
		b.WriteString("\nconstraint violations:\n")
		for _, ev := range violations {
			fmt.Fprintf(&b, "  %-12s %s\n", ev.Activity, ev.Detail)
		}
	}
	if len(slips) > 0 {
		b.WriteString("\nschedule slips:\n")
		for _, ev := range slips {
			fmt.Fprintf(&b, "  %s\n", ev.Detail)
		}
	}
	if p != nil {
		var upcoming []string
		for _, act := range p.Activities {
			_, in, err := m.Sched.Instance(p, act)
			if err != nil {
				return "", err
			}
			if in.Done || in.Started() {
				continue
			}
			if !in.PlannedStart.Before(to) && in.PlannedStart.Before(to.Add(to.Sub(from))) {
				upcoming = append(upcoming, fmt.Sprintf("  %-12s starts %s (%v)",
					act, in.PlannedStart.Format("Mon 01-02"), in.Resources))
			}
		}
		if len(upcoming) > 0 {
			b.WriteString("\nnext period:\n")
			b.WriteString(strings.Join(upcoming, "\n"))
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "\nprojected project finish: %s\n",
			p.Finish.Format("Mon 2006-01-02 15:04"))
	}
	return b.String(), nil
}
