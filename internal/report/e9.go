package report

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/fault"
	"flowsched/internal/sched"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
	"flowsched/internal/workload"
)

// E9FaultTolerance executes the ASIC flow twice from the same epoch —
// once clean, once under a seeded fault plan (crashes, hangs, corrupted
// outputs, license-loss windows) with the full recovery policy — and
// compares the tracked schedules. The paper's schedule manager records
// slips as they happen; this exhibit shows where the slips come from
// when the tools themselves misbehave, and what retry backoff, run
// deadlines, tool failover, and output verification cost on the
// calendar.
func E9FaultTolerance() (string, error) {
	clean, err := e9run(nil)
	if err != nil {
		return "", err
	}
	faulty, err := e9run(&fault.Config{
		Seed:           1995,
		Crash:          0.2,
		CrashBurst:     2,
		Hang:           0.03,
		HangWork:       200 * time.Hour,
		Corrupt:        0.1,
		LicenseOutages: 2,
		LicenseStart:   vclock.Epoch,
		LicenseHorizon: 30 * 24 * time.Hour,
		LicenseLength:  8 * time.Hour,
	})
	if err != nil {
		return "", err
	}

	finished := make(map[string]time.Time, len(faulty.res.Outcomes))
	for _, o := range faulty.res.Outcomes {
		finished[o.Activity] = o.Finished
	}
	blocked := make(map[string]bool, len(faulty.res.Blocked))
	for _, a := range faulty.res.Blocked {
		blocked[a] = true
	}

	var b strings.Builder
	b.WriteString("E9 — Fault-tolerant execution: tracked schedule with and without faults\n\n")
	fmt.Fprintf(&b, "  %-12s %-17s %-17s %s\n", "activity", "clean finish", "faulty finish", "slip (working)")
	cal := clean.m.Calendar
	for _, o := range clean.res.Outcomes {
		ff, ok := finished[o.Activity]
		switch {
		case blocked[o.Activity]:
			fmt.Fprintf(&b, "  %-12s %-17s %-17s —\n",
				o.Activity, o.Finished.Format("2006-01-02 15:04"), "blocked")
		case !ok:
			fmt.Fprintf(&b, "  %-12s %-17s %-17s —\n",
				o.Activity, o.Finished.Format("2006-01-02 15:04"), "fenced")
		default:
			fmt.Fprintf(&b, "  %-12s %-17s %-17s +%s\n",
				o.Activity, o.Finished.Format("2006-01-02 15:04"),
				ff.Format("2006-01-02 15:04"),
				cal.WorkBetween(o.Finished, ff).Round(time.Minute))
		}
	}
	fmt.Fprintf(&b, "\nproject finish: clean %s, faulty %s (+%s working)\n",
		clean.res.Finished.Format("2006-01-02 15:04"),
		faulty.res.Finished.Format("2006-01-02 15:04"),
		cal.WorkBetween(clean.res.Finished, faulty.res.Finished).Round(time.Minute))

	byKind := map[fault.Kind]int{}
	for _, h := range faulty.fp.History() {
		if h.Kind != fault.None {
			byKind[h.Kind]++
		}
	}
	fmt.Fprintf(&b, "\nfault plan (seed %d): %d decisions, %d injected — %d crash, %d hang, %d corrupt, %d license\n",
		faulty.fp.Seed(), len(faulty.fp.History()), faulty.fp.Injected(),
		byKind[fault.Crash], byKind[fault.Hang], byKind[fault.Corrupt], byKind[fault.License])

	events := map[engine.EventKind]int{}
	for _, e := range faulty.m.Events() {
		events[e.Kind]++
	}
	fmt.Fprintf(&b, "recovery: %d retries (backoff), %d failovers, %d deadline aborts, %d verify rejections, %d blocked\n",
		events[engine.EvRunRetry], events[engine.EvFailover],
		events[engine.EvRunTimeout], events[engine.EvVerifyFailed],
		len(faulty.res.Blocked))
	b.WriteString("\nBoth runs execute the same construction rules from the same epoch;\n")
	b.WriteString("only the fault plan differs. Every fault decision is drawn from the\n")
	b.WriteString("plan's seed, so the faulty schedule replays bit-identically.\n")
	return b.String(), nil
}

type e9result struct {
	m   *engine.Manager
	res *engine.ExecResult
	fp  *fault.Plan // nil for the clean run
}

// e9run executes the full ASIC flow once, optionally under a fault plan.
func e9run(cfg *fault.Config) (*e9result, error) {
	sch := workload.ASIC()
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "e9")
	if err != nil {
		return nil, err
	}
	if err := m.BindDefaults(); err != nil {
		return nil, err
	}
	// A second simulator license for GateSim: with faults on, the
	// recovery policy rotates to it when the first keeps crashing.
	alt, err := tools.DefaultFor("simulator", "simulator#2")
	if err != nil {
		return nil, err
	}
	if err := m.Tools.AddAlternate("GateSim", alt); err != nil {
		return nil, err
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed "+leaf)); err != nil {
			return nil, err
		}
	}
	var fp *fault.Plan
	if cfg != nil {
		if fp, err = fault.NewPlan(*cfg); err != nil {
			return nil, err
		}
		if err := fp.WrapRegistry(m.Tools, m.Clock.Now); err != nil {
			return nil, err
		}
	}
	tree, err := m.ExtractTree(sch.PrimaryOutputs()...)
	if err != nil {
		return nil, err
	}
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		return nil, err
	}
	rec := engine.DefaultRecovery()
	rec.Verify = fault.Check
	res, err := m.ExecuteTask(tree, engine.ExecOptions{
		Plan: &pr.Plan, AutoComplete: true,
		MaxIterations: 30, MaxFailures: 5,
		Recovery: rec,
	})
	if err != nil {
		return nil, err
	}
	return &e9result{m: m, res: res, fp: fp}, nil
}
