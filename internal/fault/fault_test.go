package fault

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/tools"
)

func TestConfigValidate(t *testing.T) {
	anchor := time.Date(1995, 6, 5, 9, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{Seed: 7, Crash: 0.2, Hang: 0.1, Corrupt: 0.05}, true},
		{"crash negative", Config{Crash: -0.1}, false},
		{"crash one", Config{Crash: 1}, false},
		{"crash NaN", Config{Crash: math.NaN()}, false},
		{"hang NaN", Config{Hang: math.NaN()}, false},
		{"corrupt NaN", Config{Corrupt: math.NaN()}, false},
		{"sum at one", Config{Crash: 0.5, Hang: 0.3, Corrupt: 0.2}, false},
		{"burst negative", Config{CrashBurst: -1}, false},
		{"outages negative", Config{LicenseOutages: -1}, false},
		{"outages without anchor", Config{LicenseOutages: 2}, false},
		{"outages with anchor", Config{LicenseOutages: 2, LicenseStart: anchor}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !c.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

// TestPlanDeterminism: two plans with the same seed make bit-identical
// decisions however the activities interleave; a different seed diverges.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Crash: 0.25, CrashBurst: 3, Hang: 0.15, Corrupt: 0.1}
	run := func(seed int64) []Injection {
		c := cfg
		c.Seed = seed
		p, err := NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			// Interleave two activities; each stream is independent.
			p.decide("Place", "router", time.Time{})
			p.decide("Route", "router", time.Time{})
		}
		return p.History()
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Kind != c[i].Kind {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical fault sequences")
	}
}

// TestCrashBursts: once a burst starts, the scheduled number of follow-up
// applications crash unconditionally before the stream resumes drawing.
func TestCrashBursts(t *testing.T) {
	p, err := NewPlan(Config{Seed: 9, Crash: 0.3, CrashBurst: 4})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for i := 0; i < 200; i++ {
		kinds = append(kinds, p.decide("Sim", "simulator", time.Time{}).kind)
	}
	crashes, bursty := 0, false
	for i, k := range kinds {
		if k == Crash {
			crashes++
			if i > 0 && kinds[i-1] == Crash {
				bursty = true
			}
		}
	}
	if crashes == 0 {
		t.Fatal("200 applications at 30% crash probability injected nothing")
	}
	if !bursty {
		t.Fatal("CrashBurst=4 never produced consecutive crashes in 200 applications")
	}
	if got := p.Injected(); got != crashes {
		t.Fatalf("Injected() = %d, want %d", got, crashes)
	}
}

// TestLicenseWindows: windows are deterministic per (seed, class), sorted,
// sized around LicenseLength, and preempt the activity stream without
// consuming its draws.
func TestLicenseWindows(t *testing.T) {
	anchor := time.Date(1995, 6, 5, 0, 0, 0, 0, time.UTC)
	cfg := Config{
		Seed: 5, LicenseOutages: 3, LicenseStart: anchor,
		LicenseHorizon: 10 * 24 * time.Hour, LicenseLength: 4 * time.Hour,
	}
	p1, _ := NewPlan(cfg)
	p2, _ := NewPlan(cfg)
	w1, w2 := p1.Windows("simulator"), p2.Windows("simulator")
	if len(w1) != 3 || len(w2) != 3 {
		t.Fatalf("windows = %d/%d, want 3", len(w1), len(w2))
	}
	for i := range w1 {
		if !w1[i].From.Equal(w2[i].From) || !w1[i].To.Equal(w2[i].To) {
			t.Fatalf("window %d not deterministic: %+v vs %+v", i, w1[i], w2[i])
		}
		if i > 0 && w1[i].From.Before(w1[i-1].From) {
			t.Fatalf("windows unsorted at %d", i)
		}
		length := w1[i].To.Sub(w1[i].From)
		if length < 2*time.Hour || length >= 6*time.Hour {
			t.Fatalf("window %d length %v outside [0.5, 1.5) of 4h", i, length)
		}
	}
	if ws := p1.Windows("editor"); len(ws) == 3 && ws[0].From.Equal(w1[0].From) {
		t.Fatal("distinct classes share identical outage windows")
	}

	// Inside a window: License, with Until = window end.
	inside := w1[0].From.Add(time.Minute)
	d := p1.decide("Sim", "simulator", inside)
	if d.kind != License || !d.until.Equal(w1[0].To) {
		t.Fatalf("decision inside window = %+v, want License until %v", d, w1[0].To)
	}
	// The license hit did not consume the activity stream: p1's next
	// non-license decisions match p2's from the start.
	var after, clean []Kind
	for i := 0; i < 20; i++ {
		after = append(after, p1.decide("Sim", "simulator", time.Time{}).kind)
		clean = append(clean, p2.decide("Sim", "simulator", time.Time{}).kind)
	}
	for i := range after {
		if after[i] != clean[i] {
			t.Fatalf("license hit shifted the activity stream at %d: %v vs %v", i, after[i], clean[i])
		}
	}
}

// stubTool is a deterministic inner tool for injector tests.
type stubTool struct{ instance, class string }

func (s *stubTool) Instance() string { return s.instance }
func (s *stubTool) Class() string    { return s.class }
func (s *stubTool) Run(map[string][]byte, int) (tools.Result, error) {
	return tools.Result{Output: []byte("payload"), Work: 2 * time.Hour, GoalMet: true}, nil
}

// decideAll wraps a stub tool under a config whose dominant probability
// makes (essentially) every application inject the same kind.
func decideAll(t *testing.T, cfg Config) tools.Tool {
	t.Helper()
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p.Wrap("Act", &stubTool{instance: "s#1", class: "simulator"}, nil)
}

func TestInjectorCrash(t *testing.T) {
	// Crash=0.999 < 1 keeps the config valid while crashing (essentially)
	// every application.
	wrapped := decideAll(t, Config{Seed: 1, Crash: 0.999})
	res, err := wrapped.Run(nil, 1)
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
	if ce.Activity != "Act" || ce.Attempt != 1 {
		t.Fatalf("crash error = %+v", ce)
	}
	if res.Work <= 0 || res.Work >= 2*time.Hour {
		t.Fatalf("crash consumed %v, want partial of 2h", res.Work)
	}
	if len(res.Output) != 0 {
		t.Fatal("crashed run produced output")
	}
}

func TestInjectorHang(t *testing.T) {
	wrapped := decideAll(t, Config{Seed: 1, Hang: 0.999, HangWork: 500 * time.Hour})
	res, err := wrapped.Run(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != 500*time.Hour {
		t.Fatalf("hang work = %v, want 500h", res.Work)
	}
	if !bytes.Equal(res.Output, []byte("payload")) {
		t.Fatal("hang garbled output")
	}
}

func TestInjectorCorruptAndCheck(t *testing.T) {
	wrapped := decideAll(t, Config{Seed: 1, Corrupt: 0.999})
	res, err := wrapped.Run(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCorrupt(res.Output) {
		t.Fatal("corrupt output not detected by IsCorrupt")
	}
	if Check("Act", res.Output) == nil {
		t.Fatal("Check accepted corrupt output")
	}
	if Check("Act", []byte("payload")) != nil {
		t.Fatal("Check rejected clean output")
	}
	if bytes.Contains(res.Output, []byte("payload")) {
		t.Fatal("corruption left the payload readable")
	}
}

func TestInjectorLicense(t *testing.T) {
	anchor := time.Date(1995, 6, 5, 0, 0, 0, 0, time.UTC)
	p, err := NewPlan(Config{
		Seed: 5, LicenseOutages: 1, LicenseStart: anchor,
		LicenseHorizon: 24 * time.Hour, LicenseLength: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := p.Windows("simulator")[0]
	now := w.From.Add(time.Minute)
	wrapped := p.Wrap("Act", &stubTool{instance: "s#1", class: "simulator"},
		func() time.Time { return now })
	res, err := wrapped.Run(nil, 1)
	var le *LicenseError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LicenseError", err)
	}
	if !le.RetryAfter().Equal(w.To) {
		t.Fatalf("RetryAfter = %v, want window end %v", le.RetryAfter(), w.To)
	}
	if res.Work >= time.Hour {
		t.Fatalf("license probe consumed %v, want fast failure", res.Work)
	}
}

// TestWrapForwardsProfile: wrapping a SimTool must keep Profile()
// reachable, or risk analysis on a chaos-wrapped registry breaks.
func TestWrapForwardsProfile(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 1})
	sim, err := tools.NewSim("simulator", "spice#1",
		tools.Profile{Base: 3 * time.Hour, Jitter: 0.2, MeanIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := p.Wrap("Sim", sim, nil)
	pt, ok := wrapped.(interface{ Profile() tools.Profile })
	if !ok {
		t.Fatal("wrapped SimTool lost Profile()")
	}
	if pt.Profile() != sim.Profile() {
		t.Fatal("forwarded profile differs")
	}
	if wrapped.Instance() != "spice#1" || wrapped.Class() != "simulator" {
		t.Fatal("identity not forwarded")
	}
	// Idempotent: wrapping the wrapped tool is a no-op.
	if again := p.Wrap("Sim", wrapped, nil); again != wrapped {
		t.Fatal("double wrap created a second injector")
	}
	plain := p.Wrap("Sim", &stubTool{instance: "s#1", class: "t"}, nil)
	if again := p.Wrap("Sim", plain, nil); again != plain {
		t.Fatal("double wrap of plain injector created a second injector")
	}
}

// TestWrapReplacesOtherPlan: arming a new plan over an already-wrapped
// tool swaps the plans instead of stacking injectors — the old plan's
// faults must stop firing.
func TestWrapReplacesOtherPlan(t *testing.T) {
	old, _ := NewPlan(Config{Seed: 1, Crash: 0.999})
	clean, _ := NewPlan(Config{Seed: 2})
	inner := &stubTool{instance: "s#1", class: "t"}
	rewrapped := clean.Wrap("Sim", old.Wrap("Sim", inner, nil), nil)
	inj, ok := rewrapped.(*Injector)
	if !ok || inj.plan != clean || inj.inner != tools.Tool(inner) {
		t.Fatalf("rewrap = %#v, want a clean-plan injector around the original tool", rewrapped)
	}
	if _, err := rewrapped.Run(nil, 1); err != nil {
		t.Fatalf("old plan's crashes survived the rewrap: %v", err)
	}
	// Profiled variant too.
	sim, err := tools.NewSim("simulator", "spice#1",
		tools.Profile{Base: time.Hour, Jitter: 0.1, MeanIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	pw := clean.Wrap("Sim", old.Wrap("Sim", sim, nil), nil)
	pinj, ok := pw.(*profiledInjector)
	if !ok || pinj.plan != clean {
		t.Fatalf("profiled rewrap = %#v, want a clean-plan profiled injector", pw)
	}
}

func TestWrapRegistry(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 1, Crash: 0.999})
	r := tools.NewRegistry()
	if err := r.Bind("Sim", &stubTool{instance: "a#1", class: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddAlternate("Sim", &stubTool{instance: "a#2", class: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := p.WrapRegistry(r, nil); err != nil {
		t.Fatal(err)
	}
	bound := r.Bound("Sim")
	if len(bound) != 2 {
		t.Fatalf("bound = %d, want 2 (alternate preserved)", len(bound))
	}
	for _, tl := range bound {
		if _, err := tl.Run(nil, 1); err == nil {
			t.Fatalf("instance %s not wrapped (no injected crash)", tl.Instance())
		}
	}
	if bound[0].Instance() != "a#1" || bound[1].Instance() != "a#2" {
		t.Fatalf("rotation order changed: %s, %s", bound[0].Instance(), bound[1].Instance())
	}
}

func TestPlanInstrument(t *testing.T) {
	o := obs.New()
	p, _ := NewPlan(Config{Seed: 9, Crash: 0.3, CrashBurst: 4})
	p.Instrument(o)
	for i := 0; i < 100; i++ {
		p.decide("Sim", "simulator", time.Time{})
	}
	faults := o.Metrics().CounterVec("fault_injected_total", "kind")
	total := faults.With("crash").Value()
	if total == 0 {
		t.Fatal(`fault_injected_total{kind="crash"} stayed zero`)
	}
	if int(total) != p.Injected() {
		t.Fatalf("counter %d != Injected() %d", total, p.Injected())
	}
}
