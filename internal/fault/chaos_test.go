package fault_test

import (
	"fmt"
	"testing"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/fault"
	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
)

// A nontrivial flow: seven data classes, six activities, a diamond between
// Synthesize and Timing, two leaf imports.
const socSchema = `
schema soc
data spec, rtl, stimuli, netlist, simres, layout, timing
tool editor, synthesizer, simulator, router, sta
rule Spec:       spec    <- editor()
rule RTL:        rtl     <- editor(spec)
rule Synthesize: netlist <- synthesizer(rtl)
rule Simulate:   simres  <- simulator(netlist, stimuli)
rule Route:      layout  <- router(netlist)
rule Timing:     timing  <- sta(layout, simres)
`

// chaosRun executes the soc flow under one seeded fault plan with the full
// recovery policy on, returning everything the invariants inspect.
type chaosRun struct {
	m       *engine.Manager
	plan    *fault.Plan
	res     *engine.ExecResult
	tracked sched.Plan
	history []fault.Injection
	events  []engine.Event
}

func runChaos(t *testing.T, seed int64) *chaosRun {
	t.Helper()
	m, err := engine.New(schema.MustParse(socSchema), vclock.Standard(), vclock.Epoch, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindDefaults(); err != nil {
		t.Fatal(err)
	}
	// A failover alternate on the simulator farm.
	alt, err := tools.DefaultFor("simulator", "simulator#2")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tools.AddAlternate("Simulate", alt); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Import("stimuli", []byte("pulse 0 5 1ns\n")); err != nil {
		t.Fatal(err)
	}

	fp, err := fault.NewPlan(fault.Config{
		Seed:           seed,
		Crash:          0.15,
		CrashBurst:     2,
		Hang:           0.05,
		HangWork:       300 * time.Hour,
		Corrupt:        0.10,
		LicenseOutages: 2,
		LicenseStart:   vclock.Epoch,
		LicenseHorizon: 20 * 24 * time.Hour,
		LicenseLength:  6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.WrapRegistry(m.Tools, m.Clock.Now); err != nil {
		t.Fatal(err)
	}

	tree, err := m.ExtractTree("timing")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent poller tails the event stream while the execution
	// appends to it — the data race the -race recipe watches for.
	done := make(chan struct{})
	polled := make(chan int)
	go func() {
		seen := 0
		for {
			seen += len(m.EventsSince(seen))
			select {
			case <-done:
				seen += len(m.EventsSince(seen))
				polled <- seen
				return
			default:
			}
		}
	}()

	res, err := m.ExecuteTask(tree, engine.ExecOptions{
		Plan: &pr.Plan, AutoComplete: true,
		MaxIterations: 30, MaxFailures: 5,
		Recovery: engine.Recovery{
			Backoff:         engine.Backoff{Initial: 30 * time.Minute, Factor: 2, Max: 8 * time.Hour},
			RunDeadline:     72 * time.Hour,
			Failover:        true,
			ContinueOnBlock: true,
			Verify:          fault.Check,
		},
	})
	close(done)
	seen := <-polled
	if err != nil {
		t.Fatalf("seed %d: chaos execution aborted: %v", seed, err)
	}
	events := m.Events()
	if seen != len(events) {
		t.Fatalf("seed %d: poller saw %d events, stream has %d", seed, seen, len(events))
	}
	return &chaosRun{
		m: m, plan: fp, res: res, tracked: pr.Plan,
		history: fp.History(), events: events,
	}
}

// TestChaosHarness is the chaos property test: 100 seeded fault plans
// through the soc flow, each asserting no data loss, a well-ordered event
// stream, schedule<->metadata link consistency, and bit-identical replay.
// Run under -race (the tier-1 recipe does) so the concurrent event poller
// exercises the stream's locking.
func TestChaosHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is not -short")
	}
	for seed := int64(0); seed < 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			a := runChaos(t, seed)
			assertNoDataLoss(t, a)
			assertEventOrder(t, a)
			assertLinkConsistency(t, a)
			b := runChaos(t, seed)
			assertIdenticalReplay(t, a, b)
		})
	}
}

// assertNoDataLoss: every completed activity's accepted output is present
// in the design store, non-empty, and clean (the verifier kept corrupt
// versions from being accepted).
func assertNoDataLoss(t *testing.T, r *chaosRun) {
	t.Helper()
	if len(r.res.Outcomes)+len(r.res.Blocked) != 6 {
		t.Fatalf("outcomes %d + blocked %d != 6 activities",
			len(r.res.Outcomes), len(r.res.Blocked))
	}
	for _, o := range r.res.Outcomes {
		if o.FinalEntity == nil {
			t.Fatalf("completed %s has no final entity", o.Activity)
		}
		var ent meta.Entity
		if err := o.FinalEntity.Decode(&ent); err != nil {
			t.Fatalf("completed %s: undecodable entity payload: %v", o.Activity, err)
		}
		obj, err := r.m.Data.Get(ent.Data)
		if err != nil {
			t.Fatalf("completed %s: data lost: %v", o.Activity, err)
		}
		if len(obj.Bytes) == 0 {
			t.Fatalf("completed %s: empty accepted output", o.Activity)
		}
		if fault.Check(o.Activity, obj.Bytes) != nil {
			t.Fatalf("completed %s: corrupt output was accepted", o.Activity)
		}
	}
	// Every run recorded in metadata belongs to a known activity and
	// carries a positive iteration — the failure path filed everything.
	for _, act := range []string{"Spec", "RTL", "Synthesize", "Simulate", "Route", "Timing"} {
		_, runs, err := r.m.Exec.Runs(act)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range runs {
			if run.Iteration < 1 {
				t.Fatalf("%s run %+v has iteration < 1", act, run)
			}
		}
	}
}

// assertEventOrder: per activity, event timestamps never go backwards
// (the global stream interleaves activities in parallel mode; here the
// serial traversal keeps even the global stream ordered per activity).
func assertEventOrder(t *testing.T, r *chaosRun) {
	t.Helper()
	last := map[string]time.Time{}
	for i, e := range r.events {
		if e.Activity == "" {
			continue
		}
		if prev, ok := last[e.Activity]; ok && e.At.Before(prev) {
			t.Fatalf("event %d (%s %s at %v) precedes earlier %s event at %v",
				i, e.Kind, e.Activity, e.At, e.Activity, prev)
		}
		last[e.Activity] = e.At
	}
}

// assertLinkConsistency: done schedule instances link to existing entity
// instances (Fig. 7's bidirectional link), blocked instances match the
// execution's blocked set, and nothing is both done and blocked.
func assertLinkConsistency(t *testing.T, r *chaosRun) {
	t.Helper()
	blockedSet := map[string]bool{}
	for _, a := range r.res.Blocked {
		blockedSet[a] = true
	}
	for _, act := range r.tracked.Activities {
		e, in, err := r.m.Sched.Instance(&r.tracked, act)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case in.Done:
			if in.Blocked {
				t.Fatalf("%s is both done and blocked", act)
			}
			if in.LinkedEntity == "" {
				t.Fatalf("done %s has no linked entity", act)
			}
			if r.m.DB.Get(in.LinkedEntity) == nil {
				t.Fatalf("done %s links to missing entity %s", act, in.LinkedEntity)
			}
			if !r.m.DB.Linked(e.ID, in.LinkedEntity) {
				t.Fatalf("%s link to %s not bidirectional in the database", act, in.LinkedEntity)
			}
		case blockedSet[act]:
			if !in.Blocked {
				t.Fatalf("%s blocked in execution but not on the schedule", act)
			}
			if in.BlockedWhy == "" {
				t.Fatalf("blocked %s has no recorded cause", act)
			}
		}
	}
}

// assertIdenticalReplay: the same seed replays bit-identically — fault
// history, event stream, outcomes, blockages, and final virtual time.
func assertIdenticalReplay(t *testing.T, a, b *chaosRun) {
	t.Helper()
	if len(a.history) != len(b.history) {
		t.Fatalf("fault histories differ in length: %d vs %d", len(a.history), len(b.history))
	}
	for i := range a.history {
		if a.history[i] != b.history[i] {
			t.Fatalf("fault history diverged at %d: %+v vs %+v", i, a.history[i], b.history[i])
		}
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("event stream diverged at %d: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	if len(a.res.Outcomes) != len(b.res.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.res.Outcomes), len(b.res.Outcomes))
	}
	for i := range a.res.Outcomes {
		oa, ob := a.res.Outcomes[i], b.res.Outcomes[i]
		if oa.Activity != ob.Activity || oa.Iterations != ob.Iterations ||
			oa.Failures != ob.Failures || !oa.Finished.Equal(ob.Finished) {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
	if fmt.Sprint(a.res.Blocked) != fmt.Sprint(b.res.Blocked) {
		t.Fatalf("blocked sets differ: %v vs %v", a.res.Blocked, b.res.Blocked)
	}
	if !a.res.Finished.Equal(b.res.Finished) {
		t.Fatalf("final virtual times differ: %v vs %v", a.res.Finished, b.res.Finished)
	}
}
