package fault

import (
	"bytes"
	"fmt"
	"time"

	"flowsched/internal/tools"
)

// corruptMarker prefixes garbled output so Check can detect it — the
// stand-in for a checksum mismatch on real design data.
var corruptMarker = []byte("\x00!fault:corrupt!\x00")

// IsCorrupt reports whether output bytes carry the corruption marker.
func IsCorrupt(b []byte) bool { return bytes.HasPrefix(b, corruptMarker) }

// Check is an output verifier in the shape engine recovery expects: it
// fails on corrupted bytes, forcing the engine to iterate the activity
// instead of accepting bad data.
func Check(activity string, output []byte) error {
	if IsCorrupt(output) {
		return fmt.Errorf("fault: %s output failed verification (corrupted)", activity)
	}
	return nil
}

// Injector wraps a tools.Tool with the plan's faults. It implements
// tools.Tool; Wrap returns a variant that also forwards Profile() when
// the inner tool exposes one, so risk analysis and profile-derived
// estimates keep working on chaos-wrapped registries.
type Injector struct {
	inner    tools.Tool
	plan     *Plan
	activity string
	now      func() time.Time
}

var _ tools.Tool = (*Injector)(nil)

// Wrap binds a tool into the plan for one activity. The now function
// supplies the virtual clock for license windows; nil disables them for
// this tool. Wrapping a tool already wrapped by this plan returns it
// unchanged (a facade's chaos setup is idempotent); one wrapped by a
// different plan is rewrapped around the original tool, so arming a new
// plan replaces the old faults instead of stacking them.
func (p *Plan) Wrap(activity string, t tools.Tool, now func() time.Time) tools.Tool {
	if t == nil || p == nil {
		return t
	}
	switch prev := t.(type) {
	case *Injector:
		if prev.plan == p {
			return t
		}
		t = prev.inner
	case *profiledInjector:
		if prev.plan == p {
			return t
		}
		t = prev.Injector.inner
	}
	inj := &Injector{inner: t, plan: p, activity: activity, now: now}
	if pt, ok := t.(interface{ Profile() tools.Profile }); ok {
		return &profiledInjector{Injector: *inj, prof: pt}
	}
	return inj
}

// Instance forwards the inner tool's instance ref, so run metadata and
// failover rotation stay truthful about which tool actually executed.
func (i *Injector) Instance() string { return i.inner.Instance() }

// Class forwards the inner tool class.
func (i *Injector) Class() string { return i.inner.Class() }

// Unwrap returns the wrapped tool.
func (i *Injector) Unwrap() tools.Tool { return i.inner }

// Run applies the plan's fault decision, then (except for license loss)
// the inner tool.
func (i *Injector) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	var at time.Time
	if i.now != nil {
		at = i.now()
	}
	d := i.plan.decide(i.activity, i.inner.Class(), at)
	switch d.kind {
	case License:
		// Fail fast: the tool never launches, so the run burns only the
		// probe time, and the error tells backoff when to come back.
		return tools.Result{Work: 5 * time.Minute},
			&LicenseError{Class: i.inner.Class(), Until: d.until}
	case Crash:
		res, err := i.inner.Run(inputs, iteration)
		if err != nil {
			return res, err // the tool failed on its own first
		}
		return tools.Result{Work: time.Duration(float64(res.Work) * d.workFrac)},
			&CrashError{Activity: i.activity, Attempt: d.attempt}
	case Hang:
		res, err := i.inner.Run(inputs, iteration)
		if err != nil {
			return res, err
		}
		// The run eventually finishes with its real output, but only
		// after consuming the hang's virtual working time; a run
		// deadline aborts it long before.
		res.Work = i.plan.cfg.HangWork
		return res, nil
	case Corrupt:
		res, err := i.inner.Run(inputs, iteration)
		if err != nil {
			return res, err
		}
		res.Output = corrupt(res.Output)
		return res, nil
	default:
		return i.inner.Run(inputs, iteration)
	}
}

// corrupt garbles output deterministically: marker prefix plus a bit
// flip over the payload.
func corrupt(b []byte) []byte {
	out := make([]byte, 0, len(corruptMarker)+len(b))
	out = append(out, corruptMarker...)
	for _, c := range b {
		out = append(out, c^0xA5)
	}
	return out
}

// profiledInjector is an Injector whose inner tool exposes a simulation
// profile; it forwards Profile so the wrapped registry still supports
// risk analysis and profile-derived estimation.
type profiledInjector struct {
	Injector
	prof interface{ Profile() tools.Profile }
}

// Profile forwards the inner tool's profile.
func (i *profiledInjector) Profile() tools.Profile { return i.prof.Profile() }

// WrapRegistry wraps every binding (including alternates) of every
// activity in the registry with the plan's faults. The now function
// supplies the virtual clock for license windows.
func (p *Plan) WrapRegistry(r *tools.Registry, now func() time.Time) error {
	if r == nil {
		return fmt.Errorf("fault: nil registry")
	}
	for _, act := range r.Activities() {
		bound := r.Bound(act)
		for idx, t := range bound {
			bound[idx] = p.Wrap(act, t, now)
		}
		if err := r.Bind(act, bound[0]); err != nil {
			return err
		}
		for _, t := range bound[1:] {
			if err := r.AddAlternate(act, t); err != nil {
				return err
			}
		}
	}
	return nil
}
