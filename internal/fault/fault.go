// Package fault is the deterministic fault-injection substrate: seeded,
// replayable fault plans that wrap any tools.Tool with injectable crash
// bursts, virtual-clock hangs, corrupt output, and license-loss windows.
//
// The paper's premise is that schedules stay truthful because the flow
// manager observes real execution — including crashed tools, lost
// licenses, and re-run iterations (§IV, Hercules case study). The fault
// layer is the chaos analogue of the Monte-Carlo shard streams: every
// injected fault is a pure function of (seed, activity, attempt) and the
// virtual clock, so one seed replays bit-identically however often the
// flow is re-executed — which is what makes chaos runs assertable in
// tests and comparable in exhibits.
//
// Faults model four production failure modes:
//
//   - crash: the run errors after consuming part of its working time,
//     possibly as a burst of consecutive crashes (a wedged queue);
//   - hang: the run succeeds but consumes an absurd amount of virtual
//     working time (a simulator stuck over a weekend) — only a run
//     deadline (engine.Recovery.RunDeadline) cuts it short;
//   - corrupt: the run reports success but its output bytes are garbled;
//     Check detects the garbling, so an engine output verifier forces
//     another iteration instead of accepting bad data;
//   - license: windows of virtual time during which every run of a tool
//     class fails fast with a LicenseError carrying RetryAfter — the
//     retry/backoff layer waits the outage out.
package fault

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"flowsched/internal/obs"
)

// Kind classifies an injected fault.
type Kind string

const (
	// None marks a pass-through application (recorded only in History).
	None Kind = "none"
	// Crash makes the run return an error after partial work.
	Crash Kind = "crash"
	// Hang makes the run consume Config.HangWork of virtual working time.
	Hang Kind = "hang"
	// Corrupt garbles the run's output bytes (success is still reported).
	Corrupt Kind = "corrupt"
	// License fails the run fast inside a license-loss window.
	License Kind = "license"
)

// Config parameterizes a fault plan. Probabilities are per tool
// application; Crash+Hang+Corrupt must stay below 1.
type Config struct {
	// Seed derives every stream in the plan. Two plans with the same
	// seed and config inject the identical fault sequence.
	Seed int64
	// Crash is the per-application probability of starting a crash burst.
	Crash float64
	// CrashBurst bounds a burst's length: a burst crashes 1..CrashBurst
	// consecutive applications (default 1, no bursting).
	CrashBurst int
	// Hang is the per-application probability of a virtual-clock hang.
	Hang float64
	// HangWork is the working time a hung run consumes when no run
	// deadline aborts it (default 720h — a tool wedged for a month).
	HangWork time.Duration
	// Corrupt is the per-application probability of garbled output.
	Corrupt float64
	// LicenseOutages is the number of license-loss windows injected per
	// tool class over the horizon (default 0, no outages).
	LicenseOutages int
	// LicenseStart anchors the outage horizon (required when
	// LicenseOutages > 0; typically the project start).
	LicenseStart time.Time
	// LicenseHorizon is the span over which outages are placed
	// (default 30 days of calendar time).
	LicenseHorizon time.Duration
	// LicenseLength is the nominal outage duration; actual lengths are
	// uniform in [0.5, 1.5) of it (default 4h).
	LicenseLength time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CrashBurst <= 0 {
		c.CrashBurst = 1
	}
	if c.HangWork <= 0 {
		c.HangWork = 720 * time.Hour
	}
	if c.LicenseHorizon <= 0 {
		c.LicenseHorizon = 30 * 24 * time.Hour
	}
	if c.LicenseLength <= 0 {
		c.LicenseLength = 4 * time.Hour
	}
	return c
}

// Validate rejects malformed configurations: probabilities must be
// finite, in [0,1), and sum below 1 so a pass-through remains possible.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"crash", c.Crash}, {"hang", c.Hang}, {"corrupt", c.Corrupt}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v >= 1 {
			return fmt.Errorf("fault: %s probability %v out of [0,1)", p.name, p.v)
		}
	}
	if s := c.Crash + c.Hang + c.Corrupt; s >= 1 {
		return fmt.Errorf("fault: crash+hang+corrupt = %v must stay below 1", s)
	}
	if c.CrashBurst < 0 {
		return fmt.Errorf("fault: crash burst %d must be >= 0", c.CrashBurst)
	}
	if c.LicenseOutages < 0 {
		return fmt.Errorf("fault: license outages %d must be >= 0", c.LicenseOutages)
	}
	if c.LicenseOutages > 0 && c.LicenseStart.IsZero() {
		return fmt.Errorf("fault: license outages need a LicenseStart anchor")
	}
	return nil
}

// Injection is one recorded fault decision — the plan's replay log.
type Injection struct {
	Activity string
	Attempt  int
	Kind     Kind
	At       time.Time // virtual time of the application (zero without a clock)
}

// CrashError is the error an injected crash returns.
type CrashError struct {
	Activity string
	Attempt  int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: injected crash on %s (attempt %d)", e.Activity, e.Attempt)
}

// LicenseError is the error a run inside a license-loss window returns.
// It implements RetryAfter, so a backoff policy can wait the outage out
// instead of burning retries against a dead license server.
type LicenseError struct {
	Class string
	Until time.Time
}

func (e *LicenseError) Error() string {
	return fmt.Sprintf("fault: %s license lost until %s", e.Class, e.Until.Format("2006-01-02 15:04"))
}

// RetryAfter reports when the license returns.
func (e *LicenseError) RetryAfter() time.Time { return e.Until }

// window is one license outage interval [From, To).
type window struct{ From, To time.Time }

// Plan is a seeded fault plan shared by every injector wrapped from it.
// All methods are safe for concurrent use; decisions are deterministic
// per (seed, activity, attempt) regardless of wrapping order.
type Plan struct {
	cfg Config

	mu      sync.Mutex
	acts    map[string]*actState
	classes map[string][]window
	history []Injection

	// obs (nil until Instrument): injected-fault counters by kind.
	mFaults *obs.CounterVec
	byKind  map[Kind]*obs.Counter
	reg     *obs.Registry
}

// actState is one activity's fault stream: a splitmix64 generator plus
// the crash-burst countdown.
type actState struct {
	rng      rng
	attempts int
	burst    int // remaining forced crashes of the current burst
}

// NewPlan builds a fault plan from a validated config.
func NewPlan(cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plan{
		cfg:     cfg.withDefaults(),
		acts:    make(map[string]*actState),
		classes: make(map[string][]window),
	}, nil
}

// Seed reports the plan's seed.
func (p *Plan) Seed() int64 { return p.cfg.Seed }

// Config reports the plan's (default-filled) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Instrument attaches the fault_injected_total{kind=...} family to the
// registry (one labeled series per fault kind). Returns p for chaining.
func (p *Plan) Instrument(o *obs.Obs) *Plan {
	if p == nil || o == nil || o.Metrics() == nil {
		return p
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = o.Metrics()
	p.mFaults = p.reg.BoundedCounterVec("fault_injected_total", 16, "kind")
	p.byKind = make(map[Kind]*obs.Counter)
	return p
}

// History returns a copy of every decision the plan has made, including
// pass-throughs — the replay log the chaos tests compare.
func (p *Plan) History() []Injection {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Injection(nil), p.history...)
}

// Injected counts the non-pass-through decisions so far.
func (p *Plan) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, h := range p.history {
		if h.Kind != None {
			n++
		}
	}
	return n
}

// streamFor derives the deterministic per-activity stream.
func (p *Plan) streamFor(activity string) *actState {
	st, ok := p.acts[activity]
	if !ok {
		st = &actState{rng: newStream(p.cfg.Seed, "act:"+activity)}
		p.acts[activity] = st
	}
	return st
}

// windowsFor derives (lazily, deterministically) the license-loss
// windows of one tool class.
func (p *Plan) windowsFor(class string) []window {
	ws, ok := p.classes[class]
	if ok {
		return ws
	}
	r := newStream(p.cfg.Seed, "class:"+class)
	ws = make([]window, 0, p.cfg.LicenseOutages)
	for i := 0; i < p.cfg.LicenseOutages; i++ {
		off := time.Duration(r.float64() * float64(p.cfg.LicenseHorizon))
		length := time.Duration((0.5 + r.float64()) * float64(p.cfg.LicenseLength))
		from := p.cfg.LicenseStart.Add(off)
		ws = append(ws, window{From: from, To: from.Add(length)})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].From.Before(ws[j].From) })
	p.classes[class] = ws
	return ws
}

// Windows reports the license-loss windows of a tool class (for exhibits
// and tests; deterministic per seed).
func (p *Plan) Windows(class string) []struct{ From, To time.Time } {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.windowsFor(class)
	out := make([]struct{ From, To time.Time }, len(ws))
	for i, w := range ws {
		out[i] = struct{ From, To time.Time }{w.From, w.To}
	}
	return out
}

// decision is the resolved fault for one application.
type decision struct {
	kind     Kind
	attempt  int
	until    time.Time // license window end
	workFrac float64   // crash: fraction of the run's work consumed
}

// decide resolves the fault for one application of activity/class at
// virtual time now, records it in the history, and bumps the counters.
func (p *Plan) decide(activity, class string, now time.Time) decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.streamFor(activity)
	st.attempts++
	d := decision{attempt: st.attempts, kind: None}

	// License windows preempt the activity stream: they are a property
	// of (class, time), not of the attempt, so waiting them out does not
	// consume or shift the activity's fault sequence.
	if !now.IsZero() {
		for _, w := range p.windowsFor(class) {
			if !now.Before(w.From) && now.Before(w.To) {
				d.kind = License
				d.until = w.To
				p.record(activity, d, now)
				return d
			}
		}
	}

	if st.burst > 0 {
		st.burst--
		d.kind = Crash
		d.workFrac = 0.1 + 0.9*st.rng.float64()
		p.record(activity, d, now)
		return d
	}

	u := st.rng.float64()
	switch {
	case u < p.cfg.Crash:
		d.kind = Crash
		if p.cfg.CrashBurst > 1 {
			st.burst = int(st.rng.next() % uint64(p.cfg.CrashBurst))
		}
		d.workFrac = 0.1 + 0.9*st.rng.float64()
	case u < p.cfg.Crash+p.cfg.Hang:
		d.kind = Hang
	case u < p.cfg.Crash+p.cfg.Hang+p.cfg.Corrupt:
		d.kind = Corrupt
	}
	p.record(activity, d, now)
	return d
}

// record appends to the history and counts injected faults.
func (p *Plan) record(activity string, d decision, now time.Time) {
	p.history = append(p.history, Injection{
		Activity: activity, Attempt: d.attempt, Kind: d.kind, At: now,
	})
	if d.kind == None || p.reg == nil {
		return
	}
	c, ok := p.byKind[d.kind]
	if !ok {
		c = p.mFaults.With(string(d.kind))
		p.byKind[d.kind] = c
	}
	c.Inc()
}

// rng is a splitmix64 stream (the monte engine's determinism idiom): the
// state advances by a fixed odd constant and the output is a bijective
// hash of the state.
type rng uint64

const golden = 0x9e3779b97f4a7c15

// newStream derives the stream for one namespace (activity or class)
// under a seed: the namespace is hashed so adjacent names land in
// decorrelated states.
func newStream(seed int64, namespace string) rng {
	h := fnv.New64a()
	h.Write([]byte(namespace))
	return rng(mix64(mix64(uint64(seed)) + golden*mix64(h.Sum64())))
}

func (r *rng) next() uint64 {
	*r += golden
	return mix64(uint64(*r))
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
