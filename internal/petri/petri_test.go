package petri

import (
	"strings"
	"testing"
	"testing/quick"
)

// fig4Net models the paper's Fig. 4 flow as a Petri net: tokens in rtl
// sources flow through Create and Simulate.
func fig4Net(t *testing.T) *Net {
	t.Helper()
	n := NewNet()
	for _, p := range []struct {
		name   string
		tokens int
	}{{"ready", 1}, {"netlist", 0}, {"stimuli", 1}, {"performance", 0}} {
		if err := n.AddPlace(p.name, p.tokens); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddTransition("Create",
		map[string]int{"ready": 1}, map[string]int{"netlist": 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTransition("Simulate",
		map[string]int{"netlist": 1, "stimuli": 1},
		map[string]int{"performance": 1}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAddPlaceValidation(t *testing.T) {
	n := NewNet()
	if err := n.AddPlace("", 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := n.AddPlace("p", -1); err == nil {
		t.Fatal("negative marking accepted")
	}
	if err := n.AddPlace("p", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPlace("p", 0); err == nil {
		t.Fatal("duplicate place accepted")
	}
}

func TestAddTransitionValidation(t *testing.T) {
	n := NewNet()
	n.AddPlace("p", 1)
	cases := []struct {
		name    string
		tname   string
		in, out map[string]int
	}{
		{"empty name", "", nil, nil},
		{"undeclared input", "t", map[string]int{"ghost": 1}, nil},
		{"undeclared output", "t", nil, map[string]int{"ghost": 1}},
		{"zero weight", "t", map[string]int{"p": 0}, nil},
	}
	for _, tc := range cases {
		if err := n.AddTransition(tc.tname, tc.in, tc.out); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if err := n.AddTransition("t", map[string]int{"p": 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTransition("t", nil, nil); err == nil {
		t.Fatal("duplicate transition accepted")
	}
}

func TestEnabledAndFire(t *testing.T) {
	n := fig4Net(t)
	if !n.Enabled("Create") {
		t.Fatal("Create should be enabled")
	}
	if n.Enabled("Simulate") {
		t.Fatal("Simulate enabled without netlist token")
	}
	if n.Enabled("Ghost") {
		t.Fatal("unknown transition enabled")
	}
	if err := n.Fire("Simulate"); err == nil {
		t.Fatal("fired disabled transition")
	}
	if err := n.Fire("Create"); err != nil {
		t.Fatal(err)
	}
	if n.Marking("ready") != 0 || n.Marking("netlist") != 1 {
		t.Fatalf("marking after Create: %s", n)
	}
	if !n.Enabled("Simulate") {
		t.Fatal("Simulate should be enabled now")
	}
	if err := n.Fire("Simulate"); err != nil {
		t.Fatal(err)
	}
	if n.Marking("performance") != 1 || n.Marking("stimuli") != 0 {
		t.Fatalf("final marking: %s", n)
	}
	if n.Fired() != 2 {
		t.Fatalf("fired = %d", n.Fired())
	}
	if n.Marking("ghost") != -1 {
		t.Fatal("unknown place marking not -1")
	}
}

func TestRunToCompletion(t *testing.T) {
	n := fig4Net(t)
	seq, err := n.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[0] != "Create" || seq[1] != "Simulate" {
		t.Fatalf("sequence = %v", seq)
	}
	if !n.Dead() {
		t.Fatal("net should be dead after completion")
	}
}

func TestRunLimitOnLiveNet(t *testing.T) {
	n := NewNet()
	n.AddPlace("p", 1)
	n.AddTransition("loop", map[string]int{"p": 1}, map[string]int{"p": 1})
	if _, err := n.Run(10); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want limit error", err)
	}
	if _, err := n.Run(0); err == nil {
		t.Fatal("zero limit accepted")
	}
}

func TestString(t *testing.T) {
	n := fig4Net(t)
	s := n.String()
	for _, want := range []string{"ready:1", "netlist:0", "stimuli:1", "performance:0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// Property: firing a transition conserves tokens exactly per arc weights.
func TestFireConservationProperty(t *testing.T) {
	f := func(inW, outW uint8) bool {
		iw := int(inW%3) + 1
		ow := int(outW%3) + 1
		n := NewNet()
		n.AddPlace("a", 10)
		n.AddPlace("b", 0)
		n.AddTransition("t", map[string]int{"a": iw}, map[string]int{"b": ow})
		before := n.TotalTokens()
		if err := n.Fire("t"); err != nil {
			return false
		}
		return n.TotalTokens() == before-iw+ow &&
			n.Marking("a") == 10-iw && n.Marking("b") == ow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain net of length k runs to completion in exactly k
// firings.
func TestChainRunsProperty(t *testing.T) {
	f := func(k uint8) bool {
		depth := int(k%8) + 1
		n := NewNet()
		n.AddPlace("p0", 1)
		for i := 1; i <= depth; i++ {
			n.AddPlace(name(i), 0)
			n.AddTransition("t"+name(i),
				map[string]int{name(i - 1): 1}, map[string]int{name(i): 1})
		}
		seq, err := n.Run(1000)
		return err == nil && len(seq) == depth && n.Marking(name(depth)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string {
	if i == 0 {
		return "p0"
	}
	return "p" + string(rune('0'+i))
}
