// Package petri implements a minimal place/transition Petri net — the
// representation the Hilda CAD framework uses to describe design flows
// (paper §II, [2]). The fourlevel package builds its Hilda adapter on this
// engine, demonstrating that the paper's schedule model attaches to a
// Petri-net-based flow manager just as it does to Hercules.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Net is a place/transition net with integer markings. Build one with
// AddPlace/AddTransition, set the initial marking, then fire transitions.
type Net struct {
	places      map[string]int // current marking
	placeOrder  []string
	transitions map[string]*Transition
	transOrder  []string
	fired       int
}

// Transition consumes tokens from its input places and produces tokens on
// its output places.
type Transition struct {
	Name    string
	Inputs  map[string]int // place -> weight
	Outputs map[string]int // place -> weight
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{
		places:      make(map[string]int),
		transitions: make(map[string]*Transition),
	}
}

// AddPlace declares a place with an initial marking. Redeclaring a place
// is an error.
func (n *Net) AddPlace(name string, tokens int) error {
	if name == "" {
		return fmt.Errorf("petri: empty place name")
	}
	if tokens < 0 {
		return fmt.Errorf("petri: place %q initial marking %d negative", name, tokens)
	}
	if _, dup := n.places[name]; dup {
		return fmt.Errorf("petri: duplicate place %q", name)
	}
	n.places[name] = tokens
	n.placeOrder = append(n.placeOrder, name)
	return nil
}

// AddTransition declares a transition with weighted input and output arcs.
// All referenced places must exist; weights must be positive.
func (n *Net) AddTransition(name string, inputs, outputs map[string]int) error {
	if name == "" {
		return fmt.Errorf("petri: empty transition name")
	}
	if _, dup := n.transitions[name]; dup {
		return fmt.Errorf("petri: duplicate transition %q", name)
	}
	check := func(arcs map[string]int, kind string) error {
		for p, w := range arcs {
			if _, ok := n.places[p]; !ok {
				return fmt.Errorf("petri: transition %q %s arc to undeclared place %q", name, kind, p)
			}
			if w <= 0 {
				return fmt.Errorf("petri: transition %q %s arc weight %d must be positive", name, kind, w)
			}
		}
		return nil
	}
	if err := check(inputs, "input"); err != nil {
		return err
	}
	if err := check(outputs, "output"); err != nil {
		return err
	}
	t := &Transition{Name: name, Inputs: copyArcs(inputs), Outputs: copyArcs(outputs)}
	n.transitions[name] = t
	n.transOrder = append(n.transOrder, name)
	return nil
}

func copyArcs(a map[string]int) map[string]int {
	out := make(map[string]int, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Marking returns the current token count of a place (-1 if undeclared).
func (n *Net) Marking(place string) int {
	if v, ok := n.places[place]; ok {
		return v
	}
	return -1
}

// TotalTokens sums the marking.
func (n *Net) TotalTokens() int {
	total := 0
	for _, v := range n.places {
		total += v
	}
	return total
}

// Fired reports how many transition firings have occurred.
func (n *Net) Fired() int { return n.fired }

// Enabled reports whether the named transition can fire.
func (n *Net) Enabled(name string) bool {
	t, ok := n.transitions[name]
	if !ok {
		return false
	}
	for p, w := range t.Inputs {
		if n.places[p] < w {
			return false
		}
	}
	return true
}

// EnabledTransitions lists all enabled transitions in declaration order.
func (n *Net) EnabledTransitions() []string {
	var out []string
	for _, name := range n.transOrder {
		if n.Enabled(name) {
			out = append(out, name)
		}
	}
	return out
}

// Fire fires one transition, updating the marking.
func (n *Net) Fire(name string) error {
	t, ok := n.transitions[name]
	if !ok {
		return fmt.Errorf("petri: unknown transition %q", name)
	}
	if !n.Enabled(name) {
		return fmt.Errorf("petri: transition %q not enabled", name)
	}
	for p, w := range t.Inputs {
		n.places[p] -= w
	}
	for p, w := range t.Outputs {
		n.places[p] += w
	}
	n.fired++
	return nil
}

// Run fires enabled transitions deterministically (declaration order)
// until none is enabled or maxFirings is reached. It returns the firing
// sequence. maxFirings guards nets with live cycles.
func (n *Net) Run(maxFirings int) ([]string, error) {
	if maxFirings <= 0 {
		return nil, fmt.Errorf("petri: maxFirings must be positive")
	}
	var seq []string
	for len(seq) < maxFirings {
		en := n.EnabledTransitions()
		if len(en) == 0 {
			return seq, nil
		}
		if err := n.Fire(en[0]); err != nil {
			return seq, err
		}
		seq = append(seq, en[0])
	}
	return seq, fmt.Errorf("petri: firing limit %d reached; net may be live", maxFirings)
}

// Dead reports whether no transition is enabled.
func (n *Net) Dead() bool { return len(n.EnabledTransitions()) == 0 }

// String renders the marking compactly: "p1:2 p2:0 ...".
func (n *Net) String() string {
	parts := make([]string, 0, len(n.placeOrder))
	names := append([]string(nil), n.placeOrder...)
	sort.Strings(names)
	for _, p := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", p, n.places[p]))
	}
	return strings.Join(parts, " ")
}
