package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseEdit parses one scenario spec of the form
// "name=Act*1.5;Act+3h;parallel": scale factors multiply an activity's
// tool runtime, "+duration" injects a delay (Go durations plus a "d"
// suffix meaning 8-hour working days), and "parallel" switches the fork
// to team-parallel execution. Shared by the hercules CLI and the HTTP
// serving layer so both speak the same what-if vocabulary.
func ParseEdit(spec string) (Edit, error) {
	var e Edit
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return e, fmt.Errorf("bad scenario %q (want name=edit;edit;...)", spec)
	}
	e.Name = name
	for _, part := range strings.Split(rest, ";") {
		switch {
		case part == "parallel":
			e.Parallel = true
		case strings.Contains(part, "*"):
			act, val, _ := strings.Cut(part, "*")
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return e, fmt.Errorf("bad scale %q in scenario %q", part, name)
			}
			if e.Scale == nil {
				e.Scale = make(map[string]float64)
			}
			e.Scale[act] = f
		case strings.Contains(part, "+"):
			act, val, _ := strings.Cut(part, "+")
			d, err := ParseWorkDuration(val)
			if err != nil {
				return e, fmt.Errorf("bad delay %q in scenario %q", part, name)
			}
			if e.Delay == nil {
				e.Delay = make(map[string]time.Duration)
			}
			e.Delay[act] = d
		default:
			return e, fmt.Errorf("bad edit %q in scenario %q (want Act*factor, Act+duration, or parallel)", part, name)
		}
	}
	return e, nil
}

// ParseWorkDuration accepts Go durations plus a "d" suffix meaning
// 8-hour working days ("2d" = 16h of working time).
func ParseWorkDuration(v string) (time.Duration, error) {
	if strings.HasSuffix(v, "d") {
		n, err := strconv.ParseFloat(strings.TrimSuffix(v, "d"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", v)
		}
		return time.Duration(n * 8 * float64(time.Hour)), nil
	}
	return time.ParseDuration(v)
}
