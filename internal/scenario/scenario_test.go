package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/fault"
	"flowsched/internal/flow"
	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/schema"
	"flowsched/internal/vclock"
)

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

var t0 = vclock.Epoch

func ready(t *testing.T) *engine.Manager {
	t.Helper()
	m, err := engine.New(schema.MustParse(fig4), vclock.Standard(), t0, "ewj")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindDefaults(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Import("stimuli", []byte("pulse 0 5 1ns\n")); err != nil {
		t.Fatal(err)
	}
	return m
}

// eightEdits is a sweep wide enough to exercise the worker pool.
func eightEdits() []Edit {
	return []Edit{
		{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}},
		{Name: "sim-fast", Scale: map[string]float64{"Simulate": 0.5}},
		{Name: "edit-slow", Scale: map[string]float64{"Create": 1.5}},
		{Name: "edit-slip", Delay: map[string]time.Duration{"Create": 16 * time.Hour}},
		{Name: "sim-slip", Delay: map[string]time.Duration{"Simulate": 8 * time.Hour}},
		{Name: "both-slow", Scale: map[string]float64{"Create": 1.25, "Simulate": 1.25}},
		{Name: "team", Parallel: true},
		{Name: "crunch", Scale: map[string]float64{"Create": 0.75, "Simulate": 0.75}},
	}
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 8} {
		m := ready(t)
		rep, err := Sweep(m, []string{"performance"}, eightEdits(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshal(t, rep)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d sweep differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func TestSweepLeavesParentUntouched(t *testing.T) {
	m := ready(t)
	before := m.DB.Dump()
	objects := m.Data.TotalObjects()
	events := len(m.Events())
	if _, err := Sweep(m, []string{"performance"}, eightEdits(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if m.DB.Dump() != before {
		t.Fatal("sweep wrote the parent task database")
	}
	if m.Data.TotalObjects() != objects {
		t.Fatal("sweep wrote the parent design store")
	}
	if len(m.Events()) != events {
		t.Fatal("sweep appended to the parent event stream")
	}
	if m.Clock.Now() != t0 {
		t.Fatal("sweep advanced the parent clock")
	}
}

func TestSweepDeltasAreSigned(t *testing.T) {
	m := ready(t)
	rep, err := Sweep(m, []string{"performance"}, []Edit{
		{Name: "slower", Scale: map[string]float64{"Simulate": 3}},
		{Name: "faster", Scale: map[string]float64{"Create": 0.25, "Simulate": 0.25}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slower, faster := rep.Scenarios[0], rep.Scenarios[1]
	if !slower.Finish.After(rep.Baseline.Finish) || slower.Delta <= 0 {
		t.Fatalf("slower scenario: finish %v delta %v vs baseline %v",
			slower.Finish, slower.Delta, rep.Baseline.Finish)
	}
	if !faster.Finish.Before(rep.Baseline.Finish) || faster.Delta >= 0 {
		t.Fatalf("faster scenario: finish %v delta %v vs baseline %v",
			faster.Finish, faster.Delta, rep.Baseline.Finish)
	}
	if rep.Baseline.Delta != 0 {
		t.Fatalf("baseline delta = %v", rep.Baseline.Delta)
	}
}

func TestSweepAnalysis(t *testing.T) {
	m := ready(t)
	rep, err := Sweep(m, []string{"performance"}, []Edit{
		{Name: "slip", Delay: map[string]time.Duration{"Simulate": 6 * time.Hour}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range append([]Outcome{rep.Baseline}, rep.Scenarios...) {
		// Create feeds Simulate with no parallel branch: both critical.
		if len(o.CriticalPath) != 2 || o.CriticalPath[0] != "Create" || o.CriticalPath[1] != "Simulate" {
			t.Fatalf("%s critical path = %v", o.Name, o.CriticalPath)
		}
		for act, slack := range o.Slack {
			if slack != 0 {
				t.Fatalf("%s slack[%s] = %v, want 0 on a chain", o.Name, act, slack)
			}
		}
		if o.PlanVersion == 0 || o.PlanFinish.IsZero() || o.Finish.IsZero() {
			t.Fatalf("%s outcome incomplete: %+v", o.Name, o)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	m := ready(t)
	cases := []struct {
		label string
		edits []Edit
	}{
		{"empty name", []Edit{{Scale: map[string]float64{"Create": 2}}}},
		{"duplicate name", []Edit{{Name: "x"}, {Name: "x"}}},
		{"reserved baseline name", []Edit{{Name: "baseline"}}},
		{"zero scale", []Edit{{Name: "x", Scale: map[string]float64{"Create": 0}}}},
		{"negative scale", []Edit{{Name: "x", Scale: map[string]float64{"Create": -1}}}},
		{"unknown activity", []Edit{{Name: "x", Scale: map[string]float64{"Route": 2}}}},
	}
	for _, c := range cases {
		if _, err := Sweep(m, []string{"performance"}, c.edits, Options{}); err == nil {
			t.Errorf("%s accepted", c.label)
		}
	}
	if _, err := Sweep(nil, []string{"performance"}, nil, Options{}); err == nil {
		t.Error("nil manager accepted")
	}
	if _, err := Sweep(m, []string{"ghost"}, nil, Options{}); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestProfileEstimatorErrors(t *testing.T) {
	if _, err := (ProfileEstimator{}).Estimate("Create", nil); err == nil {
		t.Error("nil registry accepted")
	}
	m := ready(t)
	if _, err := (ProfileEstimator{Tools: m.Tools}).Estimate("Route", nil); err == nil {
		t.Error("unbound activity accepted")
	}
}

func TestSweepObservability(t *testing.T) {
	m := ready(t)
	o := obs.NewWith(obs.NewRegistry(), obs.NewTracer(0))
	if _, err := Sweep(m, []string{"performance"}, eightEdits(), Options{Workers: 2, Obs: o}); err != nil {
		t.Fatal(err)
	}
	var runs int64
	for _, s := range o.Metrics().Snapshot() {
		if s.Name == "scenario_runs_total" {
			runs = int64(s.Value)
		}
	}
	if runs != 9 { // 8 scenarios + baseline
		t.Fatalf("scenario_runs_total = %d, want 9", runs)
	}
	spans := o.Tracer().Spans()
	var sweep, children int
	for _, s := range spans {
		switch {
		case s.Name == "scenario.sweep":
			sweep++
		case strings.HasPrefix(s.Name, "scenario:"):
			children++
		}
	}
	if sweep != 1 || children != 9 {
		t.Fatalf("spans: %d sweep, %d scenario (want 1/9)", sweep, children)
	}
}

// TestSweepWithFaults: a fault-injecting scenario degrades its fork's
// schedule, replays deterministically, and never touches the parent or
// its fault-free sibling scenarios.
func TestSweepWithFaults(t *testing.T) {
	edits := func() []Edit {
		return []Edit{
			{Name: "clean", Scale: map[string]float64{"Simulate": 1.1}},
			{Name: "chaotic", Faults: &fault.Config{
				Seed:           7,
				Crash:          0.4,
				Corrupt:        0.2,
				LicenseOutages: 1,
				LicenseStart:   t0,
				LicenseHorizon: 5 * 24 * time.Hour,
			}},
		}
	}
	opt := Options{Recovery: engine.DefaultRecovery()}
	m := ready(t)
	rep, err := Sweep(m, []string{"performance"}, edits(), opt)
	if err != nil {
		t.Fatal(err)
	}
	clean, chaotic := rep.Scenarios[0], rep.Scenarios[1]
	if clean.FaultsInjected != 0 {
		t.Fatalf("fault-free scenario reports %d faults", clean.FaultsInjected)
	}
	if chaotic.FaultsInjected == 0 {
		t.Fatal("chaotic scenario injected no faults (seed 7 should)")
	}
	if !chaotic.Finish.After(rep.Baseline.Finish) {
		t.Fatalf("faults did not slow the schedule: chaotic %v vs baseline %v",
			chaotic.Finish, rep.Baseline.Finish)
	}
	// Same seed, same sweep: bit-identical replay.
	rep2, err := Sweep(ready(t), []string{"performance"}, edits(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, rep) != marshal(t, rep2) {
		t.Fatalf("fault sweep not reproducible:\n%s\nvs\n%s", marshal(t, rep), marshal(t, rep2))
	}
	// A malformed fault config is rejected before any fork executes.
	if _, err := Sweep(ready(t), []string{"performance"}, []Edit{
		{Name: "bad", Faults: &fault.Config{Seed: 1, Crash: 1.5}},
	}, opt); err == nil {
		t.Fatal("invalid fault config accepted")
	}
}

func TestReportRender(t *testing.T) {
	m := ready(t)
	rep, err := Sweep(m, []string{"performance"}, []Edit{
		{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"What-if sweep toward performance", "baseline", "sim-slow", "Create > Simulate", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSweepExtractsTreeOnce pins the hoist: a sweep extracts the task
// tree exactly once, no matter how many forks run — the tree is
// schema-derived and read-only, so per-fork re-extraction was waste.
func TestSweepExtractsTreeOnce(t *testing.T) {
	orig := extractTree
	defer func() { extractTree = orig }()
	calls := 0
	extractTree = func(m *engine.Manager, targets []string) (*flow.Tree, error) {
		calls++
		return orig(m, targets)
	}
	m := ready(t)
	if _, err := Sweep(m, []string{"performance"}, eightEdits(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sweep extracted the tree %d times, want 1", calls)
	}
}

// TestSweepRiskSharedBaseline: the risk dimension simulates the
// baseline once and every scenario pays only for its edited subtrees.
func TestSweepRiskSharedBaseline(t *testing.T) {
	m := ready(t)
	const trials = 400
	rep, err := Sweep(m, []string{"performance"}, []Edit{
		{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}},
		{Name: "edit-slow", Scale: map[string]float64{"Create": 1.5}},
	}, Options{Risk: &RiskSpec{Trials: trials, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range append([]Outcome{rep.Baseline}, rep.Scenarios...) {
		r := o.Risk
		if r == nil {
			t.Fatalf("scenario %q has no risk stats", o.Name)
		}
		if r.Trials != trials {
			t.Fatalf("scenario %q: %d trials, want %d", o.Name, r.Trials, trials)
		}
		if !(r.P10 <= r.P50 && r.P50 <= r.P90 && r.P90 <= r.P95) {
			t.Fatalf("scenario %q: percentiles out of order: %+v", o.Name, r)
		}
	}
	if rep.Scenarios[0].Risk.Mean <= rep.Baseline.Risk.Mean {
		t.Fatal("doubling Simulate did not raise the risk mean")
	}
	// Cost accounting: the pre-warm samples both activities (2×trials);
	// the baseline fork's in-pool run reuses everything; sim-slow
	// dirties only the Simulate subtree (1×trials); edit-slow dirties
	// Create and its dependent Simulate (2×trials).
	wantSampled := int64(2*trials + 0 + 1*trials + 2*trials)
	if rep.RiskSampledTrials != wantSampled {
		t.Fatalf("sampled %d activity-trials, want %d", rep.RiskSampledTrials, wantSampled)
	}
	// Reused: baseline in-pool full hit (2×trials) plus sim-slow's
	// untouched Create subtree (1×trials).
	wantReused := int64(2*trials + 1*trials)
	if rep.RiskReusedTrials != wantReused {
		t.Fatalf("reused %d activity-trials, want %d", rep.RiskReusedTrials, wantReused)
	}
}

// TestSweepRiskMatchesColdFork: a scenario's risk stats must be
// bit-identical to a cold, memo-less simulation of that fork's edited
// model — sharing the baseline streams is pure reuse, never drift.
func TestSweepRiskMatchesColdFork(t *testing.T) {
	m := ready(t)
	edit := Edit{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}}
	rep, err := Sweep(m, []string{"performance"}, []Edit{edit},
		Options{Risk: &RiskSpec{Trials: 500, Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.ForkAtView(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := apply(f, &edit); err != nil {
		t.Fatal(err)
	}
	tree, err := f.ExtractTree("performance")
	if err != nil {
		t.Fatal(err)
	}
	models, err := RiskModels(f, tree)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := monte.Simulate(models, monte.Config{Trials: 500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Scenarios[0].Risk
	want := RiskStats{
		Trials: cold.Trials(), Mean: cold.Mean(),
		P10: cold.Percentile(0.10), P50: cold.Percentile(0.50),
		P90: cold.Percentile(0.90), P95: cold.Percentile(0.95),
	}
	if *got != want {
		t.Fatalf("sweep risk %+v differs from cold fork simulation %+v", *got, want)
	}
}

// TestSweepRiskDeterministicAcrossWorkers extends the sweep determinism
// contract to the risk dimension (including the advisory cost counters,
// which are deterministic here because every edit dirties a distinct
// fingerprint and the memo budget never evicts).
func TestSweepRiskDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 8} {
		m := ready(t)
		rep, err := Sweep(m, []string{"performance"}, eightEdits(),
			Options{Workers: workers, Risk: &RiskSpec{Trials: 300, Seed: 5}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshal(t, rep)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d risk sweep differs from workers=1", workers)
		}
	}
}

// TestSweepRiskSketch: sketch mode composes with the sweep.
func TestSweepRiskSketch(t *testing.T) {
	m := ready(t)
	rep, err := Sweep(m, []string{"performance"}, []Edit{
		{Name: "sim-slow", Scale: map[string]float64{"Simulate": 2}},
	}, Options{Risk: &RiskSpec{Trials: 2000, Seed: 3, Sketch: true}})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Scenarios[0].Risk
	if r == nil || r.Trials != 2000 {
		t.Fatalf("sketch risk stats = %+v", r)
	}
	if !(r.P10 <= r.P50 && r.P50 <= r.P90) {
		t.Fatalf("sketch percentiles out of order: %+v", r)
	}
}
