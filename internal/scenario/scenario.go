// Package scenario is the what-if engine: it forks a workflow manager
// into N isolated copies, perturbs each copy's tool profiles per a
// scenario edit, re-plans and re-executes every copy concurrently, and
// compares the outcomes against an unedited baseline fork.
//
// The paper's schedule manager answers "when will the design finish?"
// for the plan in force; a what-if sweep answers the manager's next
// question — "and if simulation runs twice as slow?", "and if layout
// slips three days?" — without disturbing the live project. Forks are
// copy-on-write snapshots of the Level 3 task database (store.DB.ForkAt),
// so a sweep over a large project costs O(containers) per scenario, not
// O(entries).
//
// Determinism: forks are created serially from the same parent state and
// each fork's execution is driven entirely by its own virtual clock and
// seeded pseudo-tools, so a sweep's outcomes are bit-identical no matter
// how many workers run it.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"flowsched/internal/engine"
	"flowsched/internal/fault"
	"flowsched/internal/flow"
	"flowsched/internal/monte"
	"flowsched/internal/obs"
	"flowsched/internal/par"
	"flowsched/internal/pert"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/tools"
)

// Edit is one scenario: a named set of perturbations applied to a fork
// before it re-plans and re-executes.
type Edit struct {
	// Name labels the scenario in the report. Required, unique per sweep.
	Name string
	// Scale multiplies the named activities' tool base runtimes
	// (e.g. 1.5 = 50% slower, 0.5 = twice as fast). Factors must be > 0.
	Scale map[string]float64
	// Delay adds working time to the named activities' tool base
	// runtimes (a slip injected at the tool level).
	Delay map[string]time.Duration
	// Parallel executes independent branches concurrently on the
	// scenario's virtual timeline (a fully-staffed team) instead of the
	// serial single-designer post order.
	Parallel bool
	// Faults, when non-nil, arms a seeded fault-injection plan over the
	// fork's tool bindings — "and if tools crash, hang, and lose
	// licenses at these rates?" as a what-if. The plan is seeded, so
	// the scenario replays bit-identically. Pair with Options.Recovery
	// (e.g. engine.DefaultRecovery()) so injected faults degrade the
	// schedule instead of aborting the scenario.
	Faults *fault.Config
}

// activities returns the union of the edit's perturbed activities, sorted.
func (e *Edit) activities() []string {
	set := make(map[string]bool, len(e.Scale)+len(e.Delay))
	for a := range e.Scale {
		set[a] = true
	}
	for a := range e.Delay {
		set[a] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Options configure a sweep.
type Options struct {
	// Estimator produces activity estimates for each scenario's plan.
	// Nil selects ProfileEstimator over the scenario's (edited) tool
	// registry, so an edit shifts the plan as well as the execution.
	Estimator sched.Estimator
	// Workers bounds concurrent scenario executions (<= 0: GOMAXPROCS).
	// Outcomes do not depend on it.
	Workers int
	// Obs, when non-nil, records a sweep span with one child span per
	// scenario and a scenario_runs_total counter.
	Obs *obs.Obs
	// Parent, when non-nil, nests the sweep's spans under an enclosing
	// span on Obs's tracer (a request root), and additionally records
	// live per-scenario spans — with the fork's engine and risk spans
	// nested inside — as each fork executes. Nil keeps the sweep's
	// post-hoc summary spans as trace roots and leaves forks untraced.
	Parent *obs.Span
	// Recovery is the fault-tolerance policy every fork executes under.
	// The zero value aborts a scenario on its first exhausted activity;
	// with ContinueOnBlock the blockage is reported in the outcome
	// instead. For edits that inject faults and leave Verify nil, the
	// fault detector is installed automatically.
	Recovery engine.Recovery
	// BaseView, when non-nil, pins every fork to that snapshot of the
	// task database instead of the live head — a sweep stays consistent
	// with one observed moment even while the parent keeps executing.
	BaseView *store.View
	// Risk, when non-nil, adds a Monte-Carlo risk analysis to every
	// scenario. The baseline model is simulated once before the fork
	// pool starts and its per-subtree trial streams are cached in a
	// shared memo, so each edited fork re-samples only the subtrees its
	// edit dirtied — a sweep's total sampling cost scales with the
	// edited subtrees, not the scenario count.
	Risk *RiskSpec
	// Ctx, when non-nil, cancels the sweep cooperatively: no new
	// scenario forks start once it is done, in-flight risk simulations
	// stop at their batch boundaries, and Sweep returns the context's
	// error. Uncancelled sweeps are unaffected (outcomes stay
	// bit-identical with or without a context).
	Ctx context.Context
}

// RiskSpec configures the sweep's risk dimension.
type RiskSpec struct {
	// Trials is the Monte-Carlo sample count per scenario (default 1000).
	Trials int
	// Seed makes every scenario's analysis reproducible. All scenarios
	// share the seed — differences between outcomes are purely the
	// edits, never sampling noise.
	Seed int64
	// Sketch answers percentiles from the mergeable quantile sketch
	// instead of sorting full trial sets (see monte.Config.Sketch).
	Sketch bool
	// Memo, when non-nil, is the shared subtree trial-stream cache —
	// pass a long-lived memo to share baseline streams across sweeps.
	// Nil builds a sweep-local memo.
	Memo *monte.Memo
}

// RiskStats is one scenario's finish-span distribution summary. The
// values are deterministic: bit-identical for any sweep or engine
// worker count.
type RiskStats struct {
	Trials                   int
	Mean, P10, P50, P90, P95 time.Duration
}

// Outcome is one scenario's result.
type Outcome struct {
	// Name is the scenario name ("baseline" for the unedited fork).
	Name string
	// PlanVersion is the plan version the scenario created in its fork.
	PlanVersion int
	// PlanFinish is the planned completion date; Finish the simulated
	// actual completion after executing the whole task tree.
	PlanFinish, Finish time.Time
	// Delta is the working-time difference between this scenario's
	// finish and the baseline's (positive = later than baseline).
	// Zero for the baseline itself.
	Delta time.Duration
	// CriticalPath is the zero-slack chain of the scenario's plan.
	CriticalPath []string
	// Slack maps each activity to its scheduling slack in the
	// scenario's plan.
	Slack map[string]time.Duration
	// Blocked lists activities fenced off by graceful degradation
	// (Options.Recovery.ContinueOnBlock) in this scenario, in the
	// order they blocked. Empty when everything completed.
	Blocked []string
	// FaultsInjected counts the faults the scenario's plan actually
	// injected (zero without Edit.Faults).
	FaultsInjected int
	// Risk is the scenario's Monte-Carlo finish distribution summary
	// (nil unless Options.Risk was set).
	Risk *RiskStats
}

// Report is a full sweep result.
type Report struct {
	// Targets are the data classes the sweep planned toward.
	Targets []string
	// Baseline is the unedited fork's outcome.
	Baseline Outcome
	// Scenarios are the edited forks' outcomes, in edit order.
	Scenarios []Outcome
	// RiskSampledTrials / RiskReusedTrials aggregate the sweep's
	// activity×trial sampling cost across every scenario simulation
	// (zero without Options.Risk). They are advisory observability:
	// the distribution results are always bit-identical, but the
	// sampled/reused split can shift when concurrent scenarios race on
	// an identical edited subtree or the memo budget forces evictions.
	RiskSampledTrials, RiskReusedTrials int64
}

// profiled is implemented by tools that expose simulation parameters
// (tools.SimTool); scenario edits and profile-derived estimates need it.
type profiled interface {
	Profile() tools.Profile
}

// ProfileEstimator derives schedule estimates from the bound simulated
// tools: expected work is one application's base runtime times the
// expected iteration count, with PERT bounds from the runtime jitter and
// the tool's iteration safeguard (iteration >= 2x mean always succeeds).
type ProfileEstimator struct {
	Tools *tools.Registry
}

// Estimate implements sched.Estimator.
func (pe ProfileEstimator) Estimate(activity string, _ *schema.Rule) (sched.Estimate, error) {
	if pe.Tools == nil {
		return sched.Estimate{}, fmt.Errorf("scenario: no tool registry to estimate from")
	}
	t := pe.Tools.For(activity)
	if t == nil {
		return sched.Estimate{}, fmt.Errorf("scenario: no tool bound to activity %q", activity)
	}
	p, ok := t.(profiled)
	if !ok {
		return sched.Estimate{}, fmt.Errorf("scenario: tool %s for %q has no profile", t.Instance(), activity)
	}
	prof := p.Profile()
	return sched.Estimate{
		Work:        time.Duration(float64(prof.Base) * prof.MeanIterations),
		Optimistic:  time.Duration(float64(prof.Base) * (1 - prof.Jitter)),
		Pessimistic: time.Duration(float64(prof.Base) * (1 + prof.Jitter) * 2 * prof.MeanIterations),
		Basis:       "profile",
	}, nil
}

// Sweep forks m once per edit plus an unedited baseline, applies each
// edit to its fork's tool bindings, then re-plans and re-executes every
// fork concurrently. The parent manager is never written; all forks
// observe the identical parent snapshot.
func Sweep(m *engine.Manager, targets []string, edits []Edit, opt Options) (*Report, error) {
	if m == nil {
		return nil, fmt.Errorf("scenario: nil manager")
	}
	// The task tree is extracted once and shared: it is derived from the
	// schema (identical in every fork) and read-only throughout planning
	// and execution, so per-fork re-extraction inside the worker loop
	// would be pure waste. Edits are validated once here too.
	tree, err := extractTree(m, targets)
	if err != nil {
		return nil, err
	}
	if err := validate(m, tree.Activities(), edits); err != nil {
		return nil, err
	}

	// Fork serially: every fork must branch from the same parent state,
	// and fork creation mutates parent bookkeeping (shared-container
	// marks) that is cheap but not worth contending on.
	runs := make([]run, len(edits)+1)
	runs[0] = run{name: "baseline"}
	for i := range edits {
		runs[i+1] = run{name: edits[i].Name, edit: &edits[i]}
	}
	for i := range runs {
		f, err := m.ForkAtView(opt.BaseView)
		if err != nil {
			return nil, fmt.Errorf("scenario: fork %q: %w", runs[i].name, err)
		}
		if runs[i].edit != nil {
			if err := apply(f, runs[i].edit); err != nil {
				return nil, err
			}
			if cfg := runs[i].edit.Faults; cfg != nil {
				fp, err := fault.NewPlan(*cfg)
				if err != nil {
					return nil, fmt.Errorf("scenario %q: faults: %w", runs[i].name, err)
				}
				if err := fp.WrapRegistry(f.Tools, f.Clock.Now); err != nil {
					return nil, fmt.Errorf("scenario %q: faults: %w", runs[i].name, err)
				}
				runs[i].faults = fp
			}
		}
		// Request-traced sweeps thread the tracer (only — fork metrics
		// would double-count against the parent's registry) into each
		// fork so engine spans land in the request's trace.
		if opt.Parent != nil {
			if tr := opt.Obs.Tracer(); tr != nil {
				f.Instrument(obs.NewWith(nil, tr))
			}
		}
		runs[i].mgr = f
	}

	// Risk dimension: simulate the unedited baseline model once, up
	// front, into the shared memo. Every scenario simulation inside the
	// pool then reuses the baseline's per-subtree trial streams and
	// samples only the subtrees its edit dirtied — bit-identical to the
	// cold simulation each fork would have run alone.
	var riskMemo *monte.Memo
	var warmSampled, warmReused int64
	if opt.Risk != nil {
		riskMemo = opt.Risk.Memo
		if riskMemo == nil {
			riskMemo = monte.NewMemo(0)
		}
		models, err := RiskModels(runs[0].mgr, tree)
		if err != nil {
			return nil, fmt.Errorf("scenario: risk baseline: %w", err)
		}
		warm, err := monte.Simulate(models, monte.Config{
			Trials: opt.Risk.Trials, Seed: opt.Risk.Seed, Workers: opt.Workers,
			Sketch: opt.Risk.Sketch, Memo: riskMemo, Obs: opt.Obs,
			Parent: opt.Parent, VirtNow: m.Clock.Now(), Ctx: opt.Ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: risk baseline: %w", err)
		}
		warmSampled, warmReused = warm.SampledActivityTrials, warm.ReusedActivityTrials
	}

	virtStart := m.Clock.Now()
	outcomes := make([]Outcome, len(runs))
	sampled := make([]int64, len(runs))
	reusedTr := make([]int64, len(runs))
	execErr := par.New(opt.Workers).ForEachErrCtx(opt.Ctx, len(runs), func(i int) error {
		// Live per-scenario span under the request's root, ended at the
		// fork's own (advanced) clock; the parent stretches to cover it.
		var sp *obs.Span
		if opt.Parent != nil {
			sp = opt.Obs.Tracer().Start(opt.Parent, "scenario.run", runs[i].mgr.Clock.Now())
			sp.SetDetail(runs[i].name)
		}
		o, sa, re, err := runOne(runs[i], tree, &opt, riskMemo, sp)
		sp.End(runs[i].mgr.Clock.Now())
		if err != nil {
			return fmt.Errorf("scenario %q: %w", runs[i].name, err)
		}
		outcomes[i], sampled[i], reusedTr[i] = *o, sa, re
		return nil
	})
	if execErr != nil {
		return nil, execErr
	}

	// Deltas are working time on the project calendar, signed.
	base := outcomes[0]
	for i := 1; i < len(outcomes); i++ {
		outcomes[i].Delta = workDelta(m, base.Finish, outcomes[i].Finish)
	}

	record(opt.Obs, opt.Parent, virtStart, outcomes)
	rep := &Report{
		Targets:   append([]string(nil), tree.Targets...),
		Baseline:  base,
		Scenarios: outcomes[1:],
	}
	rep.RiskSampledTrials, rep.RiskReusedTrials = warmSampled, warmReused
	for i := range runs {
		rep.RiskSampledTrials += sampled[i]
		rep.RiskReusedTrials += reusedTr[i]
	}
	return rep, nil
}

// extractTree is a seam over Manager.ExtractTree so tests can pin that
// a sweep extracts the task tree exactly once for the whole run.
var extractTree = func(m *engine.Manager, targets []string) (*flow.Tree, error) {
	return m.ExtractTree(targets...)
}

type run struct {
	name   string
	edit   *Edit // nil for the baseline
	mgr    *engine.Manager
	faults *fault.Plan // nil unless edit.Faults
}

// validate rejects malformed edits before any fork is created.
func validate(m *engine.Manager, inScope []string, edits []Edit) error {
	scope := make(map[string]bool, len(inScope))
	for _, a := range inScope {
		scope[a] = true
	}
	seen := make(map[string]bool, len(edits)+1)
	seen["baseline"] = true
	for i := range edits {
		e := &edits[i]
		if e.Name == "" {
			return fmt.Errorf("scenario: edit %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", e.Name)
		}
		seen[e.Name] = true
		for act, factor := range e.Scale {
			if factor <= 0 {
				return fmt.Errorf("scenario %q: scale factor %g for %q must be > 0", e.Name, factor, act)
			}
		}
		for _, act := range e.activities() {
			if !scope[act] {
				return fmt.Errorf("scenario %q: activity %q is not in the task tree", e.Name, act)
			}
			t := m.Tools.For(act)
			if t == nil {
				return fmt.Errorf("scenario %q: no tool bound to activity %q", e.Name, act)
			}
			if _, ok := t.(profiled); !ok {
				return fmt.Errorf("scenario %q: tool %s for %q has no profile to edit", e.Name, t.Instance(), act)
			}
		}
	}
	return nil
}

// Apply commits one edit to a live manager instead of a fork — the
// write-path variant behind `POST /edit`: a designer accepts a what-if
// (say "Simulate will run 1.5× slow from now on") and rebinds the real
// tools accordingly. Faults edits are refused — arming fault injection
// is a separate, explicit surface. The Parallel flag is ignored (it
// describes how a scenario fork executes, not a binding).
func Apply(m *engine.Manager, e Edit) error {
	if e.Faults != nil {
		return fmt.Errorf("scenario %q: fault edits cannot be applied to a live project", e.Name)
	}
	for act, factor := range e.Scale {
		if factor <= 0 {
			return fmt.Errorf("scenario %q: scale factor %g for %q must be > 0", e.Name, factor, act)
		}
	}
	for _, act := range e.activities() {
		t := m.Tools.For(act)
		if t == nil {
			return fmt.Errorf("scenario %q: no tool bound to activity %q", e.Name, act)
		}
		if _, ok := t.(profiled); !ok {
			return fmt.Errorf("scenario %q: tool %s for %q has no profile to edit", e.Name, t.Instance(), act)
		}
	}
	return apply(m, &e)
}

// apply rebinds each perturbed activity's tool in the fork with an
// adjusted profile. The instance name is kept, so the tool's seed — and
// with it iteration counts and output content — is unchanged: an edit
// shifts time, not design behaviour.
func apply(f *engine.Manager, e *Edit) error {
	for _, act := range e.activities() {
		t := f.Tools.For(act)
		p := t.(profiled).Profile()
		base := float64(p.Base)
		if factor, ok := e.Scale[act]; ok {
			base *= factor
		}
		p.Base = time.Duration(base) + e.Delay[act]
		edited, err := tools.NewSim(t.Class(), t.Instance(), p)
		if err != nil {
			return fmt.Errorf("scenario %q: edit %q: %w", e.Name, act, err)
		}
		if err := f.BindTool(act, edited); err != nil {
			return fmt.Errorf("scenario %q: rebind %q: %w", e.Name, act, err)
		}
	}
	return nil
}

// runOne plans and executes one fork and analyzes the resulting plan.
// It returns the outcome plus the activity×trial counts its risk
// simulation sampled fresh and reused from the shared memo.
func runOne(r run, tree *flow.Tree, opt *Options, riskMemo *monte.Memo, span *obs.Span) (*Outcome, int64, int64, error) {
	f := r.mgr
	est := opt.Estimator
	if est == nil {
		est = ProfileEstimator{Tools: f.Tools}
	}
	res, err := f.Plan(tree, est, sched.PlanOptions{})
	if err != nil {
		return nil, 0, 0, err
	}
	parallel := r.edit != nil && r.edit.Parallel
	rec := opt.Recovery
	if r.faults != nil && rec.Verify == nil {
		rec.Verify = fault.Check
	}
	exec, err := f.ExecuteTask(tree, engine.ExecOptions{
		Plan: &res.Plan, AutoComplete: true, Parallel: parallel,
		Recovery: rec, TraceParent: span,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	cpm, err := analyze(f, &res.Plan)
	if err != nil {
		return nil, 0, 0, err
	}
	slack := make(map[string]time.Duration, len(cpm.Timings))
	for _, tm := range cpm.Timings {
		slack[tm.Name] = tm.Slack
	}
	o := &Outcome{
		Name:         r.name,
		PlanVersion:  res.Plan.Version,
		PlanFinish:   res.Plan.Finish,
		Finish:       exec.Finished,
		CriticalPath: cpm.CriticalPath,
		Slack:        slack,
		Blocked:      append([]string(nil), exec.Blocked...),
	}
	if r.faults != nil {
		o.FaultsInjected = r.faults.Injected()
	}
	var sampled, reused int64
	if opt.Risk != nil {
		// Workers 1: the sweep pool supplies the parallelism; nesting a
		// full shard pool per fork would only oversubscribe the cores.
		// The model comes from the fork's *edited* registry, so every
		// unedited subtree fingerprints identically to the pre-warmed
		// baseline and is served from the memo.
		models, err := RiskModels(f, tree)
		if err != nil {
			return nil, 0, 0, err
		}
		cfg := monte.Config{
			Trials: opt.Risk.Trials, Seed: opt.Risk.Seed, Workers: 1,
			Sketch: opt.Risk.Sketch, Memo: riskMemo, Ctx: opt.Ctx,
		}
		if span != nil {
			// Traced sweep: the fork's risk spans nest under its live
			// scenario.run span (tracer only — see the fork loop).
			cfg.Obs = obs.NewWith(nil, opt.Obs.Tracer())
			cfg.Parent = span
			cfg.VirtNow = f.Clock.Now()
		}
		rr, err := monte.Simulate(models, cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		o.Risk = &RiskStats{
			Trials: rr.Trials(),
			Mean:   rr.Mean(),
			P10:    rr.Percentile(0.10),
			P50:    rr.Percentile(0.50),
			P90:    rr.Percentile(0.90),
			P95:    rr.Percentile(0.95),
		}
		sampled, reused = rr.SampledActivityTrials, rr.ReusedActivityTrials
	}
	return o, sampled, reused, nil
}

// RiskModels derives the Monte-Carlo activity models for a manager's
// bound simulated tools over one task tree: triangular durations over
// Base±Jitter with the tool's expected iteration count, predecessor
// edges from the schema within the tree. Shared by the facade's
// SimulateRisk and the sweep's risk dimension, so the risk analysis
// and the actual execution always share one model.
func RiskModels(m *engine.Manager, tree *flow.Tree) ([]monte.ActivityModel, error) {
	var models []monte.ActivityModel
	for _, act := range tree.Activities() {
		tool := m.Tools.For(act)
		if tool == nil {
			return nil, fmt.Errorf("scenario: no tool bound to %q", act)
		}
		pt, ok := tool.(profiled)
		if !ok {
			return nil, fmt.Errorf("scenario: tool %s bound to %q exposes no profile; bind a simulated tool for risk analysis",
				tool.Instance(), act)
		}
		prof := pt.Profile()
		rule := m.Schema.RuleByActivity(act)
		var preds []string
		for _, in := range rule.Inputs {
			if prod := m.Schema.Producer(in); prod != nil && tree.Contains(prod.Activity) {
				preds = append(preds, prod.Activity)
			}
		}
		min := time.Duration(float64(prof.Base) * (1 - prof.Jitter))
		max := time.Duration(float64(prof.Base) * (1 + prof.Jitter))
		models = append(models, monte.ActivityModel{
			Name: act, Min: min, Mode: prof.Base, Max: max,
			MeanIterations: prof.MeanIterations, Preds: preds,
		})
	}
	return models, nil
}

// analyze runs CPM/PERT over a fork's plan (the facade's Analyze,
// against the fork's spaces).
func analyze(f *engine.Manager, plan *sched.Plan) (*pert.Result, error) {
	_, insts, err := f.Sched.Instances(plan)
	if err != nil {
		return nil, err
	}
	inPlan := make(map[string]bool, len(plan.Activities))
	for _, a := range plan.Activities {
		inPlan[a] = true
	}
	acts := make([]pert.Activity, 0, len(insts))
	for _, in := range insts {
		rule := f.Schema.RuleByActivity(in.Activity)
		var preds []string
		for _, input := range rule.Inputs {
			if prod := f.Schema.Producer(input); prod != nil && inPlan[prod.Activity] {
				preds = append(preds, prod.Activity)
			}
		}
		acts = append(acts, pert.Activity{
			Name: in.Activity, Duration: in.EstWork,
			Optimistic: in.Optimistic, Pessimistic: in.Pessimistic,
			Preds: preds,
		})
	}
	net, err := pert.NewNetwork(acts)
	if err != nil {
		return nil, err
	}
	return net.Analyze()
}

// workDelta returns the signed working time between the baseline finish
// and a scenario finish on the project calendar.
func workDelta(m *engine.Manager, base, finish time.Time) time.Duration {
	if finish.After(base) {
		return m.Calendar.WorkBetween(base, finish)
	}
	return -m.Calendar.WorkBetween(finish, base)
}

// record emits the sweep's observability after the pool has drained:
// spans and counters are recorded serially, in scenario order, so traces
// are deterministic regardless of worker interleaving.
func record(o *obs.Obs, parent *obs.Span, virtStart time.Time, outcomes []Outcome) {
	if o == nil {
		return
	}
	o.Metrics().Counter("scenario_runs_total").Add(int64(len(outcomes)))
	tr := o.Tracer()
	root := tr.Start(parent, "scenario.sweep", virtStart)
	root.Detailf("%d scenarios", len(outcomes))
	last := virtStart
	for i := range outcomes {
		sp := tr.Start(root, "scenario:"+outcomes[i].Name, virtStart)
		sp.Detailf("finish %s plan v%d", outcomes[i].Finish.Format("2006-01-02 15:04"), outcomes[i].PlanVersion)
		sp.End(outcomes[i].Finish)
		if outcomes[i].Finish.After(last) {
			last = outcomes[i].Finish
		}
	}
	root.End(last)
}

// Render formats the sweep as a comparison table: one row per scenario
// with its simulated finish, working-time delta against the baseline,
// and critical path.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "What-if sweep toward %s (baseline plan v%d)\n\n",
		strings.Join(r.Targets, ", "), r.Baseline.PlanVersion)
	rows := append([]Outcome{r.Baseline}, r.Scenarios...)
	nameW := len("scenario")
	for _, o := range rows {
		if len(o.Name) > nameW {
			nameW = len(o.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-17s  %9s  critical path\n", nameW, "scenario", "finish", "delta")
	for i, o := range rows {
		delta := "-"
		if i > 0 {
			delta = signedDur(o.Delta.Round(time.Minute))
		}
		blocked := ""
		if len(o.Blocked) > 0 {
			blocked = fmt.Sprintf("  [blocked: %s]", strings.Join(o.Blocked, ", "))
		}
		fmt.Fprintf(&b, "  %-*s  %-17s  %9s  %s%s\n", nameW, o.Name,
			o.Finish.Format("2006-01-02 15:04"), delta,
			strings.Join(o.CriticalPath, " > "), blocked)
	}
	return b.String()
}

// signedDur renders a duration with an explicit sign ("+6h0m0s").
func signedDur(d time.Duration) string {
	if d >= 0 {
		return "+" + d.String()
	}
	return d.String()
}
