package host

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"flowsched"
	"flowsched/internal/obs"
)

// newRegistry builds a registry over a temp root with fsync disabled
// (tests exercise logic, not disk durability).
func newRegistry(t *testing.T, opt Options) *Registry {
	t.Helper()
	if opt.Root == "" {
		opt.Root = t.TempDir()
	}
	opt.Persist.NoSync = true
	r, err := NewRegistry(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// createProject creates project id with the Fig4 schema and a little
// state, then releases it.
func createProject(t *testing.T, r *Registry, id string) uint64 {
	t.Helper()
	h, err := r.Create(id, flowsched.Fig4Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	var version uint64
	err = h.Do(func(p *flowsched.Project) error {
		if _, err := p.Import("stimuli", []byte("pulse "+id)); err != nil {
			return err
		}
		v, err := p.View()
		if err != nil {
			return err
		}
		version = v.Version()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return version
}

func versionOf(t *testing.T, h *Handle) uint64 {
	t.Helper()
	v, err := h.Project().View()
	if err != nil {
		t.Fatal(err)
	}
	return v.Version()
}

func TestCreateGetEvictReload(t *testing.T) {
	r := newRegistry(t, Options{})
	want := createProject(t, r, "alpha")

	// Second create of the same ID must fail; the directory exists.
	if _, err := r.Create("alpha", flowsched.Fig4Schema); err == nil {
		t.Fatal("duplicate create accepted")
	}

	h, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := versionOf(t, h); got != want {
		t.Fatalf("resident version %d, want %d", got, want)
	}
	h.Release()

	if err := r.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	// Re-load from disk reproduces the same store version.
	h2, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if got := versionOf(t, h2); got != want {
		t.Fatalf("re-loaded version %d, want %d", got, want)
	}
}

func TestGetUnknownAndInvalidIDs(t *testing.T) {
	r := newRegistry(t, Options{})
	if _, err := r.Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown project") {
		t.Fatalf("unknown project error = %v", err)
	}
	for _, id := range []string{"", ".hidden", "a/b", "a b", strings.Repeat("x", 65)} {
		if ValidID(id) {
			t.Fatalf("ValidID(%q) = true", id)
		}
		if _, err := r.Get(id); err == nil {
			t.Fatalf("Get(%q) accepted", id)
		}
	}
	if !ValidID("chip-2.rev_B") {
		t.Fatal("ValidID rejected a legal id")
	}
}

// TestPinSurvivesEviction is the registry's core safety property: an
// evicted-but-pinned project keeps serving, its WAL is closed only at
// the last release, and a re-load waits for that close — then serves
// the same store version.
func TestPinSurvivesEviction(t *testing.T) {
	r := newRegistry(t, Options{})
	want := createProject(t, r, "alpha")

	h, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	// The pinned instance still answers reads mid-eviction.
	if got := versionOf(t, h); got != want {
		t.Fatalf("pinned version after evict = %d, want %d", got, want)
	}

	// A concurrent Get must block on the grave until the pin drops —
	// never open the WAL directory twice.
	got := make(chan uint64, 1)
	errc := make(chan error, 1)
	go func() {
		h2, err := r.Get("alpha")
		if err != nil {
			errc <- err
			return
		}
		defer h2.Release()
		v, err := h2.Project().View()
		if err != nil {
			errc <- err
			return
		}
		got <- v.Version()
	}()
	select {
	case v := <-got:
		t.Fatalf("re-load completed (version %d) while the old instance was pinned", v)
	case err := <-errc:
		t.Fatalf("re-load failed: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	h.Release() // finalizes: checkpoint, close WAL, clear grave
	select {
	case v := <-got:
		if v != want {
			t.Fatalf("re-loaded version %d, want %d", v, want)
		}
	case err := <-errc:
		t.Fatalf("re-load failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("re-load never unblocked after release")
	}
}

// TestLRUEvictionUnderByteBudget: with a budget that fits roughly one
// project, loading several keeps residency bounded and the evicted
// ones remain recoverable.
func TestLRUEvictionUnderByteBudget(t *testing.T) {
	root := t.TempDir()
	seed := newRegistry(t, Options{Root: root})
	versions := map[string]uint64{}
	for _, id := range []string{"p0", "p1", "p2", "p3"} {
		versions[id] = createProject(t, seed, id)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	// Size the budget to ~1.5 projects so the LRU must shed some.
	probe, err := flowsched.Open(root+"/p0", "", flowsched.Options{}, flowsched.PersistOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MemoryFootprint() + probe.MemoryFootprint()/2
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	r := newRegistry(t, Options{Root: root, MaxResidentBytes: budget})
	for _, id := range []string{"p0", "p1", "p2", "p3"} {
		h, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	resident := 0
	for _, info := range list {
		if info.Resident {
			resident++
		}
	}
	if resident == 0 || resident >= 4 {
		t.Fatalf("resident projects = %d, want LRU to keep a strict subset", resident)
	}
	if r.ResidentBytes() > budget {
		t.Fatalf("resident bytes %d exceed budget %d", r.ResidentBytes(), budget)
	}
	// Every project — evicted or not — still serves its version.
	for id, want := range versions {
		h, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := versionOf(t, h); got != want {
			t.Fatalf("%s: version %d, want %d", id, got, want)
		}
		h.Release()
	}
}

func TestListUnionsDiskAndResident(t *testing.T) {
	r := newRegistry(t, Options{})
	createProject(t, r, "alpha")
	createProject(t, r, "beta")
	if err := r.Evict("beta"); err != nil {
		t.Fatal(err)
	}
	h, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "alpha" || list[1].ID != "beta" {
		t.Fatalf("list = %+v", list)
	}
	if !list[0].Resident || list[0].Pinned != 1 {
		t.Fatalf("alpha should be resident and pinned: %+v", list[0])
	}
	if list[1].Resident {
		t.Fatalf("beta should be evicted: %+v", list[1])
	}
}

func TestPerTenantMetrics(t *testing.T) {
	o := obs.New()
	r := newRegistry(t, Options{Obs: o})
	createProject(t, r, "alpha")
	if err := r.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("alpha"); err != nil {
		t.Fatal(err)
	}
	if got := r.mLoads.With("alpha").Value(); got != 2 {
		t.Fatalf("host_project_loads_total{alpha} = %d, want 2", got)
	}
	if got := r.mEvicts.With("alpha").Value(); got != 1 {
		t.Fatalf("host_project_evictions_total{alpha} = %d, want 1", got)
	}
	if got := r.mRecover.With("alpha").Value(); got != 1 {
		t.Fatalf("host_project_recoveries_total{alpha} = %d, want 1", got)
	}
	if r.gLoaded.Value() != 1 {
		t.Fatalf("host_resident_projects = %d", r.gLoaded.Value())
	}
	if errs := o.Metrics().Lint(); len(errs) != 0 {
		t.Fatalf("metric lint: %v", errs)
	}
}

// TestMetricCardinalityBounded: more projects than the label budget
// must overflow into "other", never grow unbounded series.
func TestMetricCardinalityBounded(t *testing.T) {
	o := obs.New()
	r := newRegistry(t, Options{Obs: o})
	// Drive the counter directly — creating 70 real projects is slow.
	for i := 0; i < maxProjectLabels+10; i++ {
		r.mLoads.With(fmt.Sprintf("p%03d", i)).Inc()
	}
	if n := r.mLoads.Len(); n > maxProjectLabels {
		t.Fatalf("series count %d exceeds bound %d", n, maxProjectLabels)
	}
	over, dropped := r.mLoads.Overflowed()
	if !over || dropped == 0 {
		t.Fatal("expected overflow into the reserved series")
	}
}

// TestConcurrentGetEvict hammers pin/evict/re-load under the race
// detector: no double-open, no lost finalize, every handle usable.
func TestConcurrentGetEvict(t *testing.T) {
	r := newRegistry(t, Options{})
	want := createProject(t, r, "alpha")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				h, err := r.Get("alpha")
				if err != nil {
					t.Error(err)
					return
				}
				if got := versionOf(t, h); got != want {
					t.Errorf("version %d, want %d", got, want)
				}
				h.Release()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := r.Evict("alpha"); err != nil {
					t.Errorf("evict: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestCloseFlushesAll: Close drains every resident WAL; a fresh
// registry over the same root recovers every project from checkpoints.
func TestCloseFlushesAll(t *testing.T) {
	root := t.TempDir()
	r := newRegistry(t, Options{Root: root})
	versions := map[string]uint64{}
	for _, id := range []string{"a", "b", "c"} {
		versions[id] = createProject(t, r, id)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); err == nil {
		t.Fatal("Get succeeded on a closed registry")
	}
	r2 := newRegistry(t, Options{Root: root})
	for id, want := range versions {
		h, err := r2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := versionOf(t, h); got != want {
			t.Fatalf("%s recovered at version %d, want %d", id, got, want)
		}
		h.Release()
	}
}

// TestHandleReleaseIdempotent: double release must not corrupt the
// refcount (a later evict would otherwise finalize while pinned).
func TestHandleReleaseIdempotent(t *testing.T) {
	r := newRegistry(t, Options{})
	createProject(t, r, "alpha")
	h, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release()
	h2, err := r.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	refs := h2.e.refs
	r.mu.Unlock()
	if refs != 1 {
		t.Fatalf("refs = %d after double release + one pin, want 1", refs)
	}
	h2.Release()
}
