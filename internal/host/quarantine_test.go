package host

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"flowsched"
	"flowsched/internal/obs"
	"flowsched/internal/persist"
)

// flakyFS is an FS seam whose writes can be switched off at runtime,
// simulating a disk that dies mid-flight. Reads keep working — exactly
// the failure mode quarantine exists for.
type flakyFS struct {
	persist.OSFS
	fail atomic.Bool
}

var errDiskGone = errors.New("flakyfs: disk gone")

func (f *flakyFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	fl, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: fl, fs: f}, nil
}

type flakyFile struct {
	persist.File
	fs *flakyFS
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.fs.fail.Load() {
		return 0, errDiskGone
	}
	return f.File.Write(p)
}

// TestQuarantineLifecycle walks the full operator story: a write hits a
// dead disk, the project quarantines (reads fine, writes refused, gauge
// and listing flag it, marker on disk), and a host Reopen over a healthy
// disk restores service with the clean prefix.
func TestQuarantineLifecycle(t *testing.T) {
	ffs := &flakyFS{}
	o := obs.New()
	root := t.TempDir()
	r := newRegistry(t, Options{
		Root:    root,
		Obs:     o,
		Persist: flowsched.PersistOptions{FS: ffs},
	})
	createProject(t, r, "q0")

	h, err := r.Get("q0")
	if err != nil {
		t.Fatal(err)
	}
	goodVersion := versionOf(t, h)

	// Disk dies. The next committed mutation wedges the recorder.
	ffs.fail.Store(true)
	err = h.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("lost write"))
		return err
	})
	if !errors.Is(err, flowsched.ErrQuarantined) {
		t.Fatalf("write on dead disk: got %v, want ErrQuarantined", err)
	}
	var qe *flowsched.QuarantineError
	if !errors.As(err, &qe) || qe.Cause == nil {
		t.Fatalf("want *QuarantineError with cause, got %v", err)
	}

	// Health, gauge, listing, and on-disk marker all report it.
	if hl := h.Health(); !hl.Quarantined || hl.Err == "" {
		t.Fatalf("Health = %+v, want quarantined with error", hl)
	}
	if got := r.gQuar.With("q0").Value(); got != 1 {
		t.Fatalf("host_project_quarantined{q0} = %d, want 1", got)
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	listed := false
	for _, pi := range infos {
		if pi.ID == "q0" {
			listed = true
			if !pi.Quarantined {
				t.Fatal("List: q0 not flagged quarantined")
			}
		}
	}
	if !listed {
		t.Fatal("List: q0 missing")
	}
	marker := filepath.Join(root, "q0", "quarantined.json")
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("quarantine marker: %v", err)
	}

	// Reads still serve.
	if v := versionOf(t, h); v < goodVersion {
		t.Fatalf("read-only version went backwards: %d < %d", v, goodVersion)
	}
	// Further writes are refused with the same typed error.
	err = h.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("still dead"))
		return err
	})
	if !errors.Is(err, flowsched.ErrQuarantined) {
		t.Fatalf("second write: got %v, want ErrQuarantined", err)
	}
	h.Release()

	// Disk comes back; Reopen recovers the clean prefix and clears the
	// quarantine end to end.
	ffs.fail.Store(false)
	h2, err := r.Reopen("q0")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if hl := h2.Health(); hl.Quarantined {
		t.Fatalf("post-reopen Health = %+v, want healthy", hl)
	}
	if got := r.gQuar.With("q0").Value(); got != 0 {
		t.Fatalf("post-reopen host_project_quarantined{q0} = %d, want 0", got)
	}
	if _, err := os.Stat(marker); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("marker should be gone, stat = %v", err)
	}
	// The acked prefix survived and the project accepts writes again.
	if v := versionOf(t, h2); v != goodVersion {
		t.Fatalf("recovered version = %d, want %d", v, goodVersion)
	}
	if err := h2.Do(func(p *flowsched.Project) error {
		_, err := p.Import("stimuli", []byte("back online"))
		return err
	}); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
	if errs := o.Metrics().Lint(); len(errs) != 0 {
		t.Fatalf("metric lint: %v", errs)
	}
}

// TestListShowsDeadProcessQuarantine: a non-resident project whose last
// owner wedged still shows quarantined via the on-disk marker.
func TestListShowsDeadProcessQuarantine(t *testing.T) {
	r := newRegistry(t, Options{})
	createProject(t, r, "zombie")
	if err := r.Evict("zombie"); err != nil {
		t.Fatal(err)
	}
	marker := filepath.Join(r.dir("zombie"), quarantineMarkerName)
	if err := os.WriteFile(marker, []byte(`{"error":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range infos {
		if pi.ID == "zombie" && !pi.Quarantined {
			t.Fatal("non-resident quarantined project not flagged in List")
		}
	}
	// Loading it re-runs recovery and clears the marker.
	h, err := r.Get("zombie")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := os.Stat(marker); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("marker should be cleared by load, stat = %v", err)
	}
}
