// Package host implements the multi-project registry: project IDs
// mapped to lazily-loaded durable projects, with per-project locking, a
// byte-budgeted LRU over resident projects, and per-tenant metrics.
//
// The registry is the layer between the durable store (flowsched.Open —
// one WAL-backed directory per project under a common root) and the
// multi-tenant serving layer: a daemon hosts *many* projects in one
// process, loads each on first touch, evicts cold ones under memory
// pressure, and recovers any of them bit-identically after a crash.
//
// # Pinning and eviction
//
// Get returns a pinned Handle: the project cannot be finalized while
// handles are outstanding, so a request that resolved a project keeps a
// consistent view even if the project is evicted mid-request (reads are
// snapshot-isolated on top — see internal/serve). Evict removes the
// project from the registry immediately — new Gets re-load from disk —
// but the checkpoint-and-close happens only when the last pin is
// released, and a re-load waits for that finalize so two processes never
// hold one WAL.
package host

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"flowsched"
	"flowsched/internal/obs"
)

// Options configures a Registry.
type Options struct {
	// Root is the directory holding one durable project directory per
	// project ID.
	Root string
	// MaxResidentBytes is the LRU byte budget over resident projects
	// (estimated via Project.MemoryFootprint). 0 = unlimited.
	MaxResidentBytes int64
	// Project configures every loaded project (calendar, obs, designer
	// override). Designer is only applied to newly created projects.
	Project flowsched.Options
	// Persist configures every project's WAL.
	Persist flowsched.PersistOptions
	// Prepare runs after a project is loaded or created, before it is
	// served — the place to rebind tools (not persisted). Nil binds
	// simulated tools to every activity.
	Prepare func(*flowsched.Project) error
	// Obs attaches registry-level metrics (per-tenant load/evict
	// counters, resident gauges). Nil = uninstrumented.
	Obs *obs.Obs
}

// maxProjectLabels bounds the per-tenant label cardinality: past this
// many distinct projects, per-tenant counters overflow into the
// reserved "other" series (see obs.OverflowValue).
const maxProjectLabels = 64

// entry is one registry slot. refs counts outstanding Handles; wmu is
// the per-project write lock (Handle.Do).
type entry struct {
	id      string
	ready   chan struct{} // closed when load finishes
	loadErr error
	project *flowsched.Project
	bytes   int64
	refs    int
	lastUse uint64
	evicted bool
	grave   chan struct{} // set at eviction, closed when finalized
	wmu     sync.Mutex
}

// Registry maps project IDs to resident projects. Safe for concurrent
// use.
type Registry struct {
	opt     Options
	prepare func(*flowsched.Project) error

	mu       sync.Mutex
	projects map[string]*entry
	graves   map[string]chan struct{}
	tick     uint64
	closed   bool

	mLoads   *obs.CounterVec // host_project_loads_total{project}
	mEvicts  *obs.CounterVec // host_project_evictions_total{project}
	gLoaded  *obs.Gauge      // host_resident_projects
	gBytes   *obs.Gauge      // host_resident_bytes
	mRecover *obs.CounterVec // host_project_recoveries_total{project}
	gQuar    *obs.GaugeVec   // host_project_quarantined{project}: 1 = resident and read-only
}

// NewRegistry opens a registry over root. The root directory is created
// if missing; existing project directories are listed lazily, not
// loaded.
func NewRegistry(opt Options) (*Registry, error) {
	if opt.Root == "" {
		return nil, fmt.Errorf("host: empty root")
	}
	if err := os.MkdirAll(opt.Root, 0o755); err != nil {
		return nil, fmt.Errorf("host: root %s: %w", opt.Root, err)
	}
	r := &Registry{
		opt:      opt,
		prepare:  opt.Prepare,
		projects: make(map[string]*entry),
		graves:   make(map[string]chan struct{}),
	}
	if r.prepare == nil {
		r.prepare = func(p *flowsched.Project) error { return p.UseSimulatedTools() }
	}
	if m := opt.Obs.Metrics(); m != nil {
		r.mLoads = m.BoundedCounterVec("host_project_loads_total", maxProjectLabels, "project")
		r.mEvicts = m.BoundedCounterVec("host_project_evictions_total", maxProjectLabels, "project")
		r.mRecover = m.BoundedCounterVec("host_project_recoveries_total", maxProjectLabels, "project")
		r.gLoaded = m.Gauge("host_resident_projects")
		r.gBytes = m.Gauge("host_resident_bytes")
		r.gQuar = m.BoundedGaugeVec("host_project_quarantined", maxProjectLabels, "project")
	}
	return r, nil
}

// ValidID reports whether id is a usable project ID: 1–64 characters
// from [a-zA-Z0-9._-], not starting with a dot (IDs name directories
// under the root).
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) dir(id string) string { return filepath.Join(r.opt.Root, id) }

// exists reports whether a durable project directory for id is on disk.
func (r *Registry) exists(id string) bool {
	_, err := os.Stat(filepath.Join(r.dir(id), "manifest.json"))
	return err == nil
}

// Handle is a pinned reference to a resident project. Release it when
// done; the project stays resident at least until the last release.
type Handle struct {
	e    *entry
	r    *Registry
	once sync.Once
}

// Project returns the pinned project. Reads should go through snapshot
// views (flowsched.ProjectView); mutations through Do.
func (h *Handle) Project() *flowsched.Project { return h.e.project }

// ID returns the project ID.
func (h *Handle) ID() string { return h.e.id }

// Do runs fn under the project's write lock, serializing mutations (and
// checkpoints) against other writers of the same project. It then
// refreshes the project's byte estimate and applies the LRU budget.
func (h *Handle) Do(fn func(*flowsched.Project) error) error {
	h.e.wmu.Lock()
	err := fn(h.e.project)
	h.e.wmu.Unlock()
	h.r.refreshBytes(h.e)
	h.r.refreshHealth(h.e)
	h.r.enforceBudget(h.e)
	return err
}

// Health reports the pinned project's serving state (see
// flowsched.Project.Health) and refreshes the registry's quarantine
// gauge as a side effect.
func (h *Handle) Health() flowsched.Health {
	hl := h.e.project.Health()
	h.r.setQuarGauge(h.e.id, hl.Quarantined)
	return hl
}

// Release unpins the project. Idempotent. If the project was evicted
// while pinned, the last release checkpoints and closes it.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.refs--
		fin := h.e.evicted && h.e.refs == 0
		h.r.mu.Unlock()
		if fin {
			h.r.finalize(h.e)
		}
	})
}

// Create initializes a new durable project under the root and returns a
// pinned handle to it. The ID must be unused.
func (r *Registry) Create(id, schemaSrc string) (*Handle, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("host: invalid project id %q", id)
	}
	if r.exists(id) {
		return nil, fmt.Errorf("host: project %q already exists", id)
	}
	return r.acquire(id, schemaSrc)
}

// Get returns a pinned handle to the project, loading it from its WAL
// directory on first touch. Unknown IDs fail.
func (r *Registry) Get(id string) (*Handle, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("host: invalid project id %q", id)
	}
	return r.acquire(id, "")
}

// acquire pins an existing resident entry or becomes the loader for a
// new one. schemaSrc non-empty means create-if-missing (Create path).
func (r *Registry) acquire(id, schemaSrc string) (*Handle, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, fmt.Errorf("host: registry closed")
		}
		if e, ok := r.projects[id]; ok {
			e.refs++
			r.tick++
			e.lastUse = r.tick
			r.mu.Unlock()
			<-e.ready
			if e.loadErr != nil {
				// The loader removed the entry; drop the pin.
				r.mu.Lock()
				e.refs--
				r.mu.Unlock()
				return nil, e.loadErr
			}
			return &Handle{e: e, r: r}, nil
		}
		if g, ok := r.graves[id]; ok {
			// An evicted instance is still checkpointing; wait so two
			// instances never hold one WAL directory.
			r.mu.Unlock()
			<-g
			continue
		}
		if schemaSrc == "" && !r.exists(id) {
			r.mu.Unlock()
			return nil, fmt.Errorf("host: unknown project %q", id)
		}
		// Become the loader: publish the slot so concurrent Gets wait on
		// ready instead of double-loading.
		e := &entry{id: id, ready: make(chan struct{}), refs: 1}
		r.tick++
		e.lastUse = r.tick
		r.projects[id] = e
		r.mu.Unlock()
		return r.load(e, schemaSrc)
	}
}

// load opens the project's durable directory and publishes the result.
func (r *Registry) load(e *entry, schemaSrc string) (*Handle, error) {
	recovered := r.exists(e.id)
	p, err := flowsched.Open(r.dir(e.id), schemaSrc, r.opt.Project, r.opt.Persist)
	if err == nil && r.prepare != nil {
		if perr := r.prepare(p); perr != nil {
			p.Close()
			err = perr
		}
	}
	r.mu.Lock()
	if err != nil {
		e.loadErr = fmt.Errorf("host: load project %q: %w", e.id, err)
		e.refs = 0
		delete(r.projects, e.id)
		r.mu.Unlock()
		close(e.ready)
		return nil, e.loadErr
	}
	e.project = p
	e.bytes = p.MemoryFootprint()
	r.mu.Unlock()
	close(e.ready)
	r.mLoads.With(e.id).Inc()
	if recovered {
		r.mRecover.With(e.id).Inc()
	}
	// A freshly opened project went through clean-prefix recovery, so it
	// is healthy by construction.
	r.setQuarGauge(e.id, false)
	r.updateGauges()
	r.enforceBudget(e)
	return &Handle{e: e, r: r}, nil
}

// refreshHealth syncs the quarantine gauge with the project's live
// state; called after every write (writes are what trigger quarantine).
func (r *Registry) refreshHealth(e *entry) {
	if r.gQuar == nil {
		return
	}
	r.setQuarGauge(e.id, e.project.Health().Quarantined)
}

func (r *Registry) setQuarGauge(id string, quarantined bool) {
	if r.gQuar == nil {
		return
	}
	var v int64
	if quarantined {
		v = 1
	}
	r.gQuar.With(id).Set(v)
}

// Reopen evicts the project (flushing and closing its WAL — for a
// quarantined project the close reports the quarantine but still
// releases the log) and loads it fresh from disk, re-running
// clean-prefix recovery. This is the operator path that clears
// quarantine: the recovered instance serves the longest clean record
// prefix and accepts writes again. Blocks until outstanding pins drain.
func (r *Registry) Reopen(id string) (*Handle, error) {
	// The eviction error is deliberately dropped: a quarantined
	// project's final checkpoint is refused by its failed log, which is
	// exactly why it is being reopened.
	_ = r.Evict(id)
	return r.Get(id)
}

// Evict removes the project from the registry: subsequent Gets re-load
// from disk. If no handles are pinned the project is checkpointed and
// closed now; otherwise the last Release does it, and a concurrent
// re-load waits for that. Evicting a non-resident project is a no-op.
func (r *Registry) Evict(id string) error {
	r.mu.Lock()
	e, ok := r.projects[id]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	fin := r.evictLocked(e)
	r.mu.Unlock()
	r.mEvicts.With(id).Inc()
	r.updateGauges()
	if fin {
		return r.finalize(e)
	}
	return nil
}

// evictLocked unlinks e from the live map and digs its grave. Returns
// whether the caller must finalize (no pins outstanding). Caller holds
// r.mu.
func (r *Registry) evictLocked(e *entry) bool {
	delete(r.projects, e.id)
	e.evicted = true
	e.grave = make(chan struct{})
	r.graves[e.id] = e.grave
	return e.refs == 0
}

// finalize checkpoints and closes an evicted project, then clears its
// grave so waiting re-loads proceed.
func (r *Registry) finalize(e *entry) error {
	// Serialize against any in-flight Do: a writer mid-mutation must
	// commit its WAL records before the final checkpoint.
	e.wmu.Lock()
	err := e.project.Close()
	e.wmu.Unlock()
	r.mu.Lock()
	delete(r.graves, e.id)
	r.mu.Unlock()
	close(e.grave)
	// The gauge tracks *resident* quarantined projects; a finalized one
	// is no longer resident (its on-disk marker still shows in List).
	r.setQuarGauge(e.id, false)
	r.updateGauges()
	return err
}

// refreshBytes re-estimates a project's resident size after mutations.
func (r *Registry) refreshBytes(e *entry) {
	b := e.project.MemoryFootprint()
	r.mu.Lock()
	e.bytes = b
	r.mu.Unlock()
	r.updateGauges()
}

// enforceBudget evicts least-recently-used unpinned projects until the
// resident estimate fits MaxResidentBytes. keep is never evicted (the
// project just touched — evicting it would thrash).
func (r *Registry) enforceBudget(keep *entry) {
	if r.opt.MaxResidentBytes <= 0 {
		return
	}
	for {
		r.mu.Lock()
		var total int64
		for _, e := range r.projects {
			total += e.bytes
		}
		if total <= r.opt.MaxResidentBytes {
			r.mu.Unlock()
			return
		}
		var victim *entry
		for _, e := range r.projects {
			if e == keep || e.refs > 0 || e.project == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			r.mu.Unlock()
			return // everything is pinned; nothing to shed
		}
		r.evictLocked(victim)
		r.mu.Unlock()
		r.mEvicts.With(victim.id).Inc()
		r.finalize(victim)
	}
}

func (r *Registry) updateGauges() {
	if r.gLoaded == nil {
		return
	}
	r.mu.Lock()
	n := int64(len(r.projects))
	var bytes int64
	for _, e := range r.projects {
		bytes += e.bytes
	}
	r.mu.Unlock()
	r.gLoaded.Set(n)
	r.gBytes.Set(bytes)
}

// ProjectInfo describes one project, resident or on disk.
type ProjectInfo struct {
	ID       string `json:"id"`
	Resident bool   `json:"resident"`
	Pinned   int    `json:"pinned,omitempty"`
	// Bytes is the resident-size estimate (0 when not resident).
	Bytes int64 `json:"bytes,omitempty"`
	// Quarantined reports read-only quarantine after a WAL failure: the
	// live state for resident projects, the on-disk marker left by a
	// wedged (possibly dead) process for non-resident ones. A host
	// Reopen — or any successful load — clears it.
	Quarantined bool `json:"quarantined,omitempty"`
}

// quarantineMarkerName mirrors the marker flowsched writes beside a
// wedged project's WAL (and removes on successful Open).
const quarantineMarkerName = "quarantined.json"

// quarantinedOnDisk reports whether a project directory carries the
// quarantine marker of a wedged process.
func (r *Registry) quarantinedOnDisk(id string) bool {
	_, err := os.Stat(filepath.Join(r.dir(id), quarantineMarkerName))
	return err == nil
}

// List returns every project under the root — resident or not — sorted
// by ID.
func (r *Registry) List() ([]ProjectInfo, error) {
	ents, err := os.ReadDir(r.opt.Root)
	if err != nil {
		return nil, fmt.Errorf("host: list %s: %w", r.opt.Root, err)
	}
	r.mu.Lock()
	resident := make(map[string]*entry, len(r.projects))
	for id, e := range r.projects {
		resident[id] = e
	}
	r.mu.Unlock()
	seen := make(map[string]bool)
	var out []ProjectInfo
	for _, de := range ents {
		if !de.IsDir() || !ValidID(de.Name()) || !r.exists(de.Name()) {
			continue
		}
		info := ProjectInfo{ID: de.Name()}
		if e, ok := resident[de.Name()]; ok && e.project != nil {
			info.Resident, info.Pinned, info.Bytes = true, e.refs, e.bytes
			info.Quarantined = e.project.Health().Quarantined
		} else {
			info.Quarantined = r.quarantinedOnDisk(de.Name())
		}
		seen[de.Name()] = true
		out = append(out, info)
	}
	// A just-created project whose directory write races the listing.
	for id, e := range resident {
		if !seen[id] && e.project != nil {
			out = append(out, ProjectInfo{
				ID: id, Resident: true, Pinned: e.refs, Bytes: e.bytes,
				Quarantined: e.project.Health().Quarantined,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ResidentBytes reports the current resident-size estimate.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.projects {
		total += e.bytes
	}
	return total
}

// Close evicts and finalizes every resident project — the graceful
// drain flushing all WALs. The caller must have released all handles;
// Close finalizes regardless, so call it only after the serving layer
// has drained.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var list []*entry
	for _, e := range r.projects {
		list = append(list, e)
	}
	for _, e := range list {
		r.evictLocked(e)
	}
	r.mu.Unlock()
	var first error
	for _, e := range list {
		<-e.ready // never finalize a half-loaded project
		if e.loadErr != nil {
			continue
		}
		if err := r.finalize(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}
