package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// metricNameRE is the repo's naming convention: lower-snake-case,
// starting with a letter, no leading/trailing/double underscores.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnitSuffixes are the unit suffixes a histogram name must
// end with, per the convention that a histogram's name states what it
// measures.
var histogramUnitSuffixes = []string{"_seconds", "_bytes"}

// Lint walks every registered metric and labeled family and reports
// convention violations: malformed (non-snake-case) metric or label
// names, counters missing the _total suffix, histograms missing a
// unit suffix, a name registered under more than one kind, and any
// family whose live series count exceeds its declared cardinality
// bound. It is cheap static-analysis insurance against label-explosion
// and naming regressions; a nil registry lints clean.
func (r *Registry) Lint() []error {
	if r == nil {
		return nil
	}
	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	checkName := func(name, kind string) {
		if !metricNameRE.MatchString(name) {
			addf("obs: %s %q is not snake_case", kind, name)
		}
	}
	checkCounterName := func(name string) {
		checkName(name, "counter")
		if !strings.HasSuffix(name, "_total") {
			addf("obs: counter %q missing _total suffix", name)
		}
	}
	checkHistogramName := func(name string) {
		checkName(name, "histogram")
		for _, suf := range histogramUnitSuffixes {
			if strings.HasSuffix(name, suf) {
				return
			}
		}
		addf("obs: histogram %q missing a unit suffix (%s)", name, strings.Join(histogramUnitSuffixes, ", "))
	}

	r.mu.RLock()
	defer r.mu.RUnlock()

	// A family name must live under exactly one kind, or the exposition
	// emits contradictory TYPE lines.
	kinds := make(map[string][]string)
	for name := range r.counters {
		kinds[name] = append(kinds[name], "counter")
	}
	for name := range r.gauges {
		kinds[name] = append(kinds[name], "gauge")
	}
	for name := range r.histograms {
		kinds[name] = append(kinds[name], "histogram")
	}
	for name := range r.counterVecs {
		kinds[name] = append(kinds[name], "counter vec")
	}
	for name := range r.gaugeVecs {
		kinds[name] = append(kinds[name], "gauge vec")
	}
	for name := range r.histogramVecs {
		kinds[name] = append(kinds[name], "histogram vec")
	}
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if k := kinds[name]; len(k) > 1 {
			addf("obs: %q registered as %s", name, strings.Join(k, " and "))
		}
	}

	for _, name := range names {
		if _, ok := r.counters[name]; ok {
			checkCounterName(name)
		}
		if _, ok := r.gauges[name]; ok {
			checkName(name, "gauge")
		}
		if _, ok := r.histograms[name]; ok {
			checkHistogramName(name)
		}
		if v, ok := r.counterVecs[name]; ok {
			checkCounterName(name)
			lintVec(addf, name, v.ls, v.Len())
		}
		if v, ok := r.gaugeVecs[name]; ok {
			checkName(name, "gauge")
			lintVec(addf, name, v.ls, v.Len())
		}
		if v, ok := r.histogramVecs[name]; ok {
			checkHistogramName(name)
			lintVec(addf, name, v.ls, v.Len())
		}
	}
	return errs
}

func lintVec(addf func(string, ...any), name string, ls *labelSet, live int) {
	for _, k := range ls.keys {
		if !metricNameRE.MatchString(k) {
			addf("obs: family %q label key %q is not snake_case", name, k)
		}
	}
	if live > ls.max {
		addf("obs: family %q holds %d live series, over its bound of %d", name, live, ls.max)
	}
}
