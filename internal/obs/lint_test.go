package obs

import (
	"strings"
	"testing"
)

func lintMessages(r *Registry) []string {
	var msgs []string
	for _, err := range r.Lint() {
		msgs = append(msgs, err.Error())
	}
	return msgs
}

func TestLintCleanRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_runs_total")
	r.Gauge("pool_workers")
	r.Histogram("exec_wall_seconds", nil)
	r.Histogram("snapshot_bytes", SizeBuckets)
	r.CounterVec("serve_requests_total", "route", "cache").With("risk", "hit").Inc()
	r.HistogramVec("serve_request_seconds", nil, "route").With("risk").Observe(1)
	if errs := r.Lint(); len(errs) != 0 {
		t.Fatalf("clean registry linted dirty: %v", errs)
	}
	var nilReg *Registry
	if errs := nilReg.Lint(); errs != nil {
		t.Fatalf("nil registry linted dirty: %v", errs)
	}
}

func TestLintCatchesMalformedNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("CamelCase")          // not snake_case, missing _total
	r.Counter("engine_runs")        // missing _total
	r.Gauge("double__underscore")   // malformed
	r.Histogram("exec_wall", nil)   // missing unit suffix
	r.CounterVec("ok_total", "Bad") // malformed label key
	msgs := strings.Join(lintMessages(r), "\n")
	for _, want := range []string{
		`"CamelCase" is not snake_case`,
		`"engine_runs" missing _total`,
		`"double__underscore" is not snake_case`,
		`"exec_wall" missing a unit suffix`,
		`label key "Bad" is not snake_case`,
	} {
		if !strings.Contains(msgs, want) {
			t.Errorf("lint output lacks %q:\n%s", want, msgs)
		}
	}
}

func TestLintCatchesOverBoundFamily(t *testing.T) {
	// The admit path enforces the bound, so an over-bound family can
	// only arise from a future code change; simulate one by shrinking
	// the declared bound after series were minted.
	r := NewRegistry()
	v := r.BoundedCounterVec("wild_total", 16, "id")
	for _, id := range []string{"a", "b", "c", "d"} {
		v.With(id).Inc()
	}
	v.ls.max = 2
	msgs := strings.Join(lintMessages(r), "\n")
	if !strings.Contains(msgs, `"wild_total" holds 4 live series, over its bound of 2`) {
		t.Fatalf("lint missed the over-bound family:\n%s", msgs)
	}
}

func TestLintCatchesKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total")
	r.GaugeVec("thing_total", "k")
	msgs := strings.Join(lintMessages(r), "\n")
	if !strings.Contains(msgs, `"thing_total" registered as`) {
		t.Fatalf("lint missed the kind collision:\n%s", msgs)
	}
}
