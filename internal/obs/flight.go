package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Defaults for the flight recorder's two retention tiers.
const (
	DefaultFlightRing = 256 // most-recent requests kept in the ring
	DefaultFlightSlow = 32  // slowest requests retained past eviction
)

// FlightRecord is one wide record of a completed operation on the
// serving path: everything needed to reconstruct the request after the
// fact, including (for sampled or slow requests) the full span tree.
type FlightRecord struct {
	TraceID string    `json:"traceId"`
	Route   string    `json:"route"`
	Status  int       `json:"status,omitempty"`
	Start   time.Time `json:"start"`
	// Latency is the request's wall duration in nanoseconds.
	Latency      time.Duration `json:"latencyNs"`
	StoreVersion uint64        `json:"storeVersion,omitempty"`
	VirtualNow   time.Time     `json:"virtualNow"`
	// Cache is the tier that answered: "hit", "fingerprint", "miss",
	// "off", or "" for non-view operations.
	Cache string `json:"cache,omitempty"`
	// SampledTrials and ReusedTrials carry the risk engine's
	// freshly-sampled vs memo-reused activity-trial split, when the
	// operation ran a simulation.
	SampledTrials int64  `json:"sampledTrials,omitempty"`
	ReusedTrials  int64  `json:"reusedTrials,omitempty"`
	Error         string `json:"error,omitempty"`
	// Spans is the request's captured span tree — present only when the
	// request was trace-sampled or crossed the slow threshold.
	Spans []SpanData `json:"spans,omitempty"`
}

// FlightRecorder retains completed FlightRecords in two tiers: a ring
// of the most recent records (old records evicted in FIFO order) and a
// slowest-N tier that survives ring eviction, so the requests most
// worth explaining are never the first ones forgotten. Record is a
// single short critical section — an O(1) ring store plus one latency
// comparison — so it stays cheap on the serving hot path. All methods
// are nil-safe.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []FlightRecord
	next    int // ring slot for the next record
	filled  bool
	slow    []FlightRecord // ascending by latency, at most slowN
	slowN   int
	records *Counter // total records accepted
	evicted *Counter // ring slots overwritten
}

// NewFlightRecorder returns a recorder with the given ring capacity
// and slowest-N retention (values <= 0 select DefaultFlightRing and
// DefaultFlightSlow).
func NewFlightRecorder(ring, slowN int) *FlightRecorder {
	if ring <= 0 {
		ring = DefaultFlightRing
	}
	if slowN <= 0 {
		slowN = DefaultFlightSlow
	}
	return &FlightRecorder{ring: make([]FlightRecord, ring), slowN: slowN}
}

// Instrument wires the recorder's accounting into reg under the given
// family prefix: <prefix>_records_total counts accepted records and
// <prefix>_evictions_total counts ring overwrites (records whose only
// remaining copy, if any, is in the slowest-N tier).
func (f *FlightRecorder) Instrument(reg *Registry, prefix string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.records = reg.Counter(prefix + "_records_total")
	f.evicted = reg.Counter(prefix + "_evictions_total")
}

// Record accepts one completed request record.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	records, evicted := f.records, f.evicted
	overwrote := f.filled
	f.ring[f.next] = rec
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.filled = true
	}
	// Slowest-N: admit if there is room or rec beats the current floor.
	if len(f.slow) < f.slowN {
		f.insertSlow(rec)
	} else if rec.Latency > f.slow[0].Latency {
		f.slow = f.slow[1:]
		f.insertSlow(rec)
	}
	f.mu.Unlock()
	records.Inc()
	if overwrote {
		evicted.Inc()
	}
}

// insertSlow keeps f.slow sorted ascending by latency. Called with
// f.mu held.
func (f *FlightRecorder) insertSlow(rec FlightRecord) {
	i := sort.Search(len(f.slow), func(i int) bool { return f.slow[i].Latency > rec.Latency })
	f.slow = append(f.slow, FlightRecord{})
	copy(f.slow[i+1:], f.slow[i:])
	f.slow[i] = rec
}

// Snapshot returns the recent tier (newest first) and the slowest tier
// (slowest first).
func (f *FlightRecorder) Snapshot() (recent, slowest []FlightRecord) {
	if f == nil {
		return nil, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.filled {
		n = len(f.ring)
	}
	recent = make([]FlightRecord, 0, n)
	for i := 0; i < n; i++ {
		slot := f.next - 1 - i
		if slot < 0 {
			slot += len(f.ring)
		}
		recent = append(recent, f.ring[slot])
	}
	slowest = make([]FlightRecord, len(f.slow))
	for i, r := range f.slow {
		slowest[len(f.slow)-1-i] = r
	}
	return recent, slowest
}

// Find returns the retained record with the given trace ID, preferring
// the recent tier, then the slowest tier.
func (f *FlightRecorder) Find(traceID string) (FlightRecord, bool) {
	recent, slowest := f.Snapshot()
	for _, r := range recent {
		if r.TraceID == traceID {
			return r, true
		}
	}
	for _, r := range slowest {
		if r.TraceID == traceID {
			return r, true
		}
	}
	return FlightRecord{}, false
}

// RenderFlight renders the two tiers as an aligned text table for CLI
// consumption.
func RenderFlight(recent, slowest []FlightRecord) string {
	var b strings.Builder
	section := func(title string, recs []FlightRecord) {
		fmt.Fprintf(&b, "%s (%d)\n", title, len(recs))
		if len(recs) == 0 {
			b.WriteString("  (none)\n")
			return
		}
		for _, r := range recs {
			status := ""
			if r.Status != 0 {
				status = fmt.Sprintf(" %d", r.Status)
			}
			extra := ""
			if r.Cache != "" {
				extra += " cache=" + r.Cache
			}
			if r.SampledTrials > 0 || r.ReusedTrials > 0 {
				extra += fmt.Sprintf(" trials=%d/%d", r.SampledTrials, r.ReusedTrials)
			}
			if r.Error != "" {
				extra += " error=" + r.Error
			}
			if len(r.Spans) > 0 {
				extra += fmt.Sprintf(" spans=%d", len(r.Spans))
			}
			fmt.Fprintf(&b, "  %-18s %-14s%s  %10s  v%d%s\n",
				shortID(r.TraceID), r.Route, status,
				r.Latency.Round(time.Microsecond), r.StoreVersion, extra)
		}
	}
	section("recent", recent)
	b.WriteString("\n")
	section("slowest", slowest)
	return b.String()
}

// shortID abbreviates a 32-hex trace ID for one-line table output.
func shortID(id string) string {
	if len(id) <= 16 {
		return id
	}
	return id[:16] + "…"
}
