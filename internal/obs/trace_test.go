package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var v0 = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

func TestSpanDualClock(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(nil, "execute", v0)
	child := tr.Start(root, "activity", v0.Add(time.Hour))
	child.SetDetail("Create")
	child.End(v0.Add(9 * time.Hour))
	root.End(v0.Add(24 * time.Hour))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "activity" || r.Name != "execute" {
		t.Fatalf("span order: %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parentage: child.Parent=%d root.ID=%d root.Parent=%d", c.Parent, r.ID, r.Parent)
	}
	if c.VDur() != 8*time.Hour {
		t.Fatalf("child virtual duration = %v, want 8h", c.VDur())
	}
	if c.WallDur < 0 || r.WallDur < c.WallDur {
		t.Fatalf("wall durations: child %v, root %v", c.WallDur, r.WallDur)
	}
	if c.Detail != "Create" {
		t.Fatalf("detail = %q", c.Detail)
	}
	if err := ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClamping(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(nil, "root", v0)
	// Child claims to start before its parent: clamped up.
	child := tr.Start(root, "child", v0.Add(-time.Hour))
	// Child claims to end before it started: clamped to a point interval.
	child.End(v0.Add(-2 * time.Hour))
	root.End(v0.Add(time.Hour))
	spans := tr.Spans()
	c := spans[0]
	if !c.VStart.Equal(v0) || !c.VEnd.Equal(v0) {
		t.Fatalf("clamped interval = [%v, %v], want point at %v", c.VStart, c.VEnd, v0)
	}
	if err := ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
}

// TestChildRaisesParentVirtualEnd covers the error-path shape in the
// engine: an activity's local virtual cursor runs past the global
// clock, so the parent is asked to end before its child did. The
// child's end must floor the parent's.
func TestChildRaisesParentVirtualEnd(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(nil, "execute", v0)
	child := tr.Start(root, "activity", v0)
	grand := tr.Start(child, "run", v0)
	grand.End(v0.Add(12 * time.Hour))
	child.End(v0.Add(10 * time.Hour)) // floored to 12h by grand
	root.End(v0)                      // floored to 12h by child
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if !s.VEnd.Equal(v0.Add(12 * time.Hour)) {
			t.Fatalf("span %q VEnd = %v, want %v", s.Name, s.VEnd, v0.Add(12*time.Hour))
		}
	}
	if err := ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
}

func TestValidateContainmentCatchesEscape(t *testing.T) {
	spans := []SpanData{
		{ID: 1, Name: "p", VStart: v0, VEnd: v0.Add(time.Hour)},
		{ID: 2, Parent: 1, Name: "c", VStart: v0, VEnd: v0.Add(2 * time.Hour)},
	}
	if err := ValidateContainment(spans); err == nil {
		t.Fatal("want containment violation")
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start(nil, "x", v0)
	s.End(v0)
	s.End(v0.Add(time.Hour))
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestMaxSpansDropsAndCounts(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Start(nil, "s", v0).End(v0)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(nil, "root", v0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Start(root, "shard", v0).End(v0)
			}
		}()
	}
	wg.Wait()
	root.End(v0)
	if tr.Len() != 1601 {
		t.Fatalf("len = %d, want 1601", tr.Len())
	}
	if err := ValidateContainment(tr.Spans()); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTree(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(nil, "engine.execute", v0)
	a := tr.Start(root, "activity", v0)
	a.SetDetail("Create")
	run := tr.Start(a, "run", v0)
	run.End(v0.Add(8 * time.Hour))
	a.End(v0.Add(8 * time.Hour))
	root.End(v0.Add(8 * time.Hour))

	out := RenderTree(tr.Spans(), 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "engine.execute") ||
		!strings.HasPrefix(lines[1], "  activity") ||
		!strings.HasPrefix(lines[2], "    run") {
		t.Fatalf("tree shape wrong:\n%s", out)
	}
	if !strings.Contains(lines[1], "(Create)") {
		t.Fatalf("detail missing:\n%s", out)
	}
	// Depth-limited rendering summarizes the hidden subtree.
	limited := RenderTree(tr.Spans(), 1)
	if !strings.Contains(limited, "… 2 nested span(s)") {
		t.Fatalf("depth limit summary missing:\n%s", limited)
	}
}
