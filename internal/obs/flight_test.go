package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func rec(id string, lat time.Duration) FlightRecord {
	return FlightRecord{TraceID: id, Route: "risk", Latency: lat}
}

func TestFlightRingEvictsFIFO(t *testing.T) {
	f := NewFlightRecorder(3, 2)
	f.Record(rec("a", 1*time.Millisecond))
	f.Record(rec("b", 2*time.Millisecond))
	f.Record(rec("c", 3*time.Millisecond))
	f.Record(rec("d", 4*time.Millisecond))
	recent, _ := f.Snapshot()
	if len(recent) != 3 {
		t.Fatalf("recent len = %d, want 3", len(recent))
	}
	// Newest first; "a" was evicted.
	for i, want := range []string{"d", "c", "b"} {
		if recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %q, want %q", i, recent[i].TraceID, want)
		}
	}
}

func TestFlightSlowestSurvivesEviction(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	f.Record(rec("slowest", time.Second))
	f.Record(rec("slower", 500*time.Millisecond))
	for i := 0; i < 10; i++ {
		f.Record(rec("fast", time.Millisecond))
	}
	recent, slowest := f.Snapshot()
	for _, r := range recent {
		if r.TraceID != "fast" {
			t.Fatalf("ring still holds %q", r.TraceID)
		}
	}
	if len(slowest) != 2 || slowest[0].TraceID != "slowest" || slowest[1].TraceID != "slower" {
		t.Fatalf("slowest tier = %+v, want [slowest slower]", slowest)
	}
	// Find falls through to the slowest tier after ring eviction.
	if r, ok := f.Find("slowest"); !ok || r.Latency != time.Second {
		t.Fatalf("Find(slowest) = %+v/%v", r, ok)
	}
	if _, ok := f.Find("nope"); ok {
		t.Fatal("Find invented a record")
	}
}

func TestFlightInstrumentCounts(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(2, 1)
	f.Instrument(r, "serve_flight")
	for i := 0; i < 5; i++ {
		f.Record(rec("x", time.Millisecond))
	}
	if got := r.Counter("serve_flight_records_total").Value(); got != 5 {
		t.Fatalf("records_total = %d, want 5", got)
	}
	// Ring holds 2; the 3rd..5th records each overwrote a slot.
	if got := r.Counter("serve_flight_evictions_total").Value(); got != 3 {
		t.Fatalf("evictions_total = %d, want 3", got)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(rec("x", 0))
	f.Instrument(NewRegistry(), "p")
	if recent, slowest := f.Snapshot(); recent != nil || slowest != nil {
		t.Fatal("nil recorder snapshot should be nil")
	}
	if _, ok := f.Find("x"); ok {
		t.Fatal("nil recorder found a record")
	}
}

func TestRenderFlight(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	f.Record(FlightRecord{
		TraceID: "0123456789abcdef0123456789abcdef", Route: "risk", Status: 200,
		Latency: 1500 * time.Millisecond, StoreVersion: 7, Cache: "miss",
		SampledTrials: 100, ReusedTrials: 900,
		Spans:         []SpanData{{Name: "serve.risk"}},
	})
	out := RenderFlight(f.Snapshot())
	for _, want := range []string{"recent (1)", "slowest (1)", "risk", "cache=miss", "trials=100/900", "spans=1", "v7", "0123456789abcdef…"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestFlightConcurrency(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(rec("t", time.Duration(i)*time.Microsecond))
				if i%50 == 0 {
					f.Snapshot()
					f.Find("t")
				}
			}
		}(w)
	}
	wg.Wait()
	recent, slowest := f.Snapshot()
	if len(recent) != 16 || len(slowest) != 4 {
		t.Fatalf("tiers = %d/%d, want 16/4", len(recent), len(slowest))
	}
}
