package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("runs_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("occupancy")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 556.5; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Cumulative counts: le=1 -> 2 (0.5 and 1), le=10 -> 3, le=100 -> 4, +Inf -> 5.
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range snap[0].Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap[0].Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", snap[0].Buckets[3].UpperBound)
	}
	// First registration wins.
	if r.Histogram("lat_seconds", []float64{42}) != h {
		t.Fatal("re-registration must return the existing histogram")
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("work_seconds", nil) // DefBuckets
	h.ObserveDuration(90 * time.Second)
	if h.Sum() != 90 {
		t.Fatalf("sum = %v, want 90", h.Sum())
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Gauge("a_gauge").Set(2)
	r.Histogram("c_seconds", []float64{0.1, 1}).Observe(0.05)
	text := r.PromText()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge 2\n",
		"# TYPE b_total counter\nb_total 3\n",
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{le="0.1"} 1`,
		`c_seconds_bucket{le="1"} 1`,
		`c_seconds_bucket{le="+Inf"} 1`,
		"c_seconds_sum 0.05",
		"c_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Sorted by name: a before b before c.
	if !(strings.Index(text, "a_gauge") < strings.Index(text, "b_total") &&
		strings.Index(text, "b_total") < strings.Index(text, "c_seconds")) {
		t.Fatalf("metrics not sorted:\n%s", text)
	}
}

func TestJSONDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	blob, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap []MetricSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].Name != "x_total" || snap[0].Value != 1 {
		t.Fatalf("json roundtrip = %+v", snap)
	}
}

// TestJSONDumpWithHistogram guards the +Inf bucket bound: JSON has no
// infinity literal, so the last bucket must marshal as the string
// "+Inf" rather than failing the whole dump.
func TestJSONDumpWithHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", []float64{1, 10}).Observe(42)
	blob, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"le": "+Inf"`, `"le": "10"`, `"observations": 1`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("json dump missing %s:\n%s", want, blob)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	// Every chained call on the uninstrumented handle must be a no-op.
	o.Metrics().Counter("x").Inc()
	o.Metrics().Gauge("y").Set(1)
	o.Metrics().Histogram("z", nil).Observe(1)
	o.Tracer().Start(nil, "root", time.Time{}).End(time.Time{})
	if o.Metrics().Snapshot() != nil || o.Tracer().Spans() != nil {
		t.Fatal("nil handles must report empty state")
	}
	if NewWith(nil, nil) != nil {
		t.Fatal("NewWith(nil, nil) must be the nil handle")
	}
	var c *Counter
	c.Add(1)
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	var s *Span
	s.End(time.Time{})
	s.Detailf("x")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
