package obs

import (
	"strings"
	"testing"
)

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || !isHex(a) {
		t.Fatalf("NewTraceID() = %q, want 32 hex chars", a)
	}
	if a == b {
		t.Fatal("two trace IDs collided")
	}
	if s := NewSpanID(); len(s) != 16 || !isHex(s) {
		t.Fatalf("NewSpanID() = %q, want 16 hex chars", s)
	}
}

func TestParseTraceparent(t *testing.T) {
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	good := "00-" + id + "-00f067aa0ba902b7-01"
	if got, ok := ParseTraceparent(good); !ok || got != id {
		t.Fatalf("ParseTraceparent(%q) = %q/%v", good, got, ok)
	}
	if got, ok := ParseTraceparent("  " + good + "  "); !ok || got != id {
		t.Fatalf("surrounding whitespace rejected: %q/%v", got, ok)
	}
	for name, h := range map[string]string{
		"empty":          "",
		"three parts":    "00-" + id + "-01",
		"bad version":    "ff-" + id + "-00f067aa0ba902b7-01",
		"upper hex":      "00-" + strings.ToUpper(id) + "-00f067aa0ba902b7-01",
		"zero trace id":  "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",
		"zero parent id": "00-" + id + "-" + strings.Repeat("0", 16) + "-01",
		"short trace id": "00-abc123-00f067aa0ba902b7-01",
		"bad flags":      "00-" + id + "-00f067aa0ba902b7-zz",
	} {
		if got, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted %q", name, h, got)
		}
	}
}

func TestFormatTraceparentRoundTrips(t *testing.T) {
	id := NewTraceID()
	h := FormatTraceparent(id)
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("round trip %q -> %q/%v", h, got, ok)
	}
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q not version-00/sampled", h)
	}
}
