package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds a tracer's retained spans unless overridden.
const DefaultMaxSpans = 16384

// SpanData is one finished span: a named piece of work carrying both
// clocks. The wall interval measures real compute on the Go process;
// the virtual interval measures simulated design time on the project's
// vclock. A span whose work does not advance virtual time (a
// Monte-Carlo shard, a database snapshot) has VStart == VEnd.
type SpanData struct {
	// ID is unique within the tracer; Parent is the enclosing span's ID,
	// 0 for a root span.
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Name classifies the work (e.g. "engine.execute", "monte.shard").
	Name string `json:"name"`
	// Detail is an optional free-form annotation.
	Detail string `json:"detail,omitempty"`
	// WallStart and WallDur are the real-time clock.
	WallStart time.Time     `json:"wallStart"`
	WallDur   time.Duration `json:"wallDur"`
	// VStart and VEnd are the virtual design-time clock.
	VStart time.Time `json:"vStart"`
	VEnd   time.Time `json:"vEnd"`
}

// VDur is the span's virtual design-time duration.
func (s SpanData) VDur() time.Duration { return s.VEnd.Sub(s.VStart) }

// Span is an in-flight span handle. It is owned by the goroutine that
// started it until End, which publishes the finished SpanData to the
// tracer. All methods are nil-safe.
type Span struct {
	tr        *Tracer
	id        int64
	parent    int64
	parentSp  *Span
	name      string
	detail    string
	wallStart time.Time
	vstart    time.Time
	ended     bool
	// vfloor is the maximum virtual end among ended children
	// (UnixNano; math.MinInt64 when unset). A parent that ends while a
	// child's virtual cursor ran ahead (e.g. an aborted activity whose
	// local timeline outran the global clock) is stretched to cover it,
	// so finished traces satisfy containment by construction.
	vfloor atomic.Int64
}

// Tracer records finished spans, bounded at max spans (later spans are
// dropped and counted). Safe for concurrent use.
type Tracer struct {
	nextID  atomic.Int64
	dropped atomic.Int64
	max     int
	mu      sync.Mutex
	spans   []SpanData
}

// NewTracer returns a tracer retaining at most max spans; max <= 0
// selects DefaultMaxSpans.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Tracer{max: max}
}

// Start opens a span under parent (nil for a root span) beginning at
// virtual time vnow. The wall clock starts immediately. A child's
// virtual start is clamped to its parent's so that finished traces
// always satisfy parent-interval containment.
func (t *Tracer) Start(parent *Span, name string, vnow time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: t.nextID.Add(1), name: name, wallStart: time.Now(), vstart: vnow}
	s.vfloor.Store(math.MinInt64)
	if parent != nil {
		s.parent = parent.id
		s.parentSp = parent
		if vnow.Before(parent.vstart) {
			s.vstart = parent.vstart
		}
	}
	return s
}

// Detailf attaches a formatted annotation to the span.
func (s *Span) Detailf(format string, args ...any) {
	if s == nil {
		return
	}
	s.detail = fmt.Sprintf(format, args...)
}

// SetDetail attaches a preformatted annotation (no fmt cost).
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.detail = d
}

// End closes the span at virtual time vend, publishes it, and returns
// the span's wall duration (0 on a nil or already-ended span) so the
// caller can feed a histogram without a second clock read. A vend
// before the span's virtual start is clamped to it, and a vend before
// an already-ended child's is stretched to cover it (virtual time is
// monotonic and parent intervals contain their children's). Ending
// twice is a no-op; a child ending after its parent ended cannot
// stretch the published parent.
func (s *Span) End(vend time.Time) time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	if vend.Before(s.vstart) {
		vend = s.vstart
	}
	if f := s.vfloor.Load(); f != math.MinInt64 {
		if ft := time.Unix(0, f).UTC(); ft.After(vend) {
			vend = ft
		}
	}
	if p := s.parentSp; p != nil {
		n := vend.UnixNano()
		for {
			old := p.vfloor.Load()
			if old >= n || p.vfloor.CompareAndSwap(old, n) {
				break
			}
		}
	}
	wall := time.Since(s.wallStart)
	data := SpanData{
		ID: s.id, Parent: s.parent, Name: s.name, Detail: s.detail,
		WallStart: s.wallStart, WallDur: wall,
		VStart: s.vstart, VEnd: vend,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, data)
		t.mu.Unlock()
		return wall
	}
	t.mu.Unlock()
	t.dropped.Add(1)
	return wall
}

// Spans returns a copy of the finished spans in end order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports how many spans were discarded over the max.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// ValidateContainment checks the dual-clock invariant: every span's
// virtual interval lies within its parent's. Spans whose parent was
// dropped (or never ended) are treated as roots. It returns the first
// violation found, or nil.
func ValidateContainment(spans []SpanData) error {
	byID := make(map[int64]SpanData, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			continue
		}
		if s.VStart.Before(p.VStart) || s.VEnd.After(p.VEnd) {
			return fmt.Errorf("obs: span %d %q virtual [%s, %s] escapes parent %d %q [%s, %s]",
				s.ID, s.Name, s.VStart.Format(time.RFC3339), s.VEnd.Format(time.RFC3339),
				p.ID, p.Name, p.VStart.Format(time.RFC3339), p.VEnd.Format(time.RFC3339))
		}
	}
	return nil
}

// RenderTree renders spans as an indented tree, children under their
// parents, siblings in virtual-start order (ties broken by ID). Each
// line shows both clocks: the virtual interval and duration, and the
// wall compute time. maxDepth > 0 limits the printed depth (roots are
// depth 1); deeper spans are summarized per parent.
func RenderTree(spans []SpanData, maxDepth int) string {
	children := make(map[int64][]SpanData)
	byID := make(map[int64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []SpanData
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(ss []SpanData) {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].VStart.Equal(ss[j].VStart) {
				return ss[i].VStart.Before(ss[j].VStart)
			}
			return ss[i].ID < ss[j].ID
		})
	}
	order(roots)
	var b strings.Builder
	var walk func(s SpanData, depth int)
	walk = func(s SpanData, depth int) {
		indent := strings.Repeat("  ", depth-1)
		detail := ""
		if s.Detail != "" {
			detail = "  (" + s.Detail + ")"
		}
		fmt.Fprintf(&b, "%s%-*s  virt %s..%s (%s)  wall %s%s\n",
			indent, 24-2*(depth-1), s.Name,
			s.VStart.Format("01-02 15:04"), s.VEnd.Format("01-02 15:04"),
			s.VDur().Round(time.Minute), s.WallDur.Round(time.Microsecond), detail)
		kids := append([]SpanData(nil), children[s.ID]...)
		if len(kids) == 0 {
			return
		}
		if maxDepth > 0 && depth >= maxDepth {
			fmt.Fprintf(&b, "%s  … %d nested span(s)\n", indent, countNested(children, s.ID))
			return
		}
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
	return b.String()
}

func countNested(children map[int64][]SpanData, id int64) int {
	n := len(children[id])
	for _, k := range children[id] {
		n += countNested(children, k.ID)
	}
	return n
}
