package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("serve_requests_total", "route", "cache")
	v.With("risk", "hit").Add(3)
	v.With("risk", "hit").Inc()
	v.With("risk", "miss").Inc()
	if got := v.With("risk", "hit").Value(); got != 4 {
		t.Fatalf("hit series = %d, want 4", got)
	}
	if got := v.With("risk", "miss").Value(); got != 1 {
		t.Fatalf("miss series = %d, want 1", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	// Same name returns the same family regardless of later arguments.
	if r.CounterVec("serve_requests_total", "bogus") != v {
		t.Fatal("second registration did not return the first family")
	}
}

func TestVecKeyOrderIsDeclarationOrder(t *testing.T) {
	// Keys are interned sorted, but With takes values in declaration
	// order: (tier, event) here, even though "event" sorts first.
	r := NewRegistry()
	v := r.CounterVec("cache_events_total", "tier", "event")
	v.With("memo", "hit").Inc()
	text := r.PromText()
	want := `cache_events_total{event="hit",tier="memo"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition lacks %q:\n%s", want, text)
	}
}

func TestVecArityMismatchIsNoop(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "a", "b")
	c := v.With("only-one")
	if c != nil {
		t.Fatal("arity mismatch should yield a nil counter")
	}
	c.Inc() // nil-safe no-op
	if v.Len() != 0 {
		t.Fatalf("Len = %d after arity mismatch, want 0", v.Len())
	}
}

func TestVecNilSafety(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	if cv.Len() != 0 || gv.Len() != 0 || hv.Len() != 0 {
		t.Fatal("nil vec Len should be 0")
	}
	var r *Registry
	r.CounterVec("x_total", "k").With("v").Inc()
	r.GaugeVec("x", "k").With("v").Set(1)
	r.HistogramVec("x_seconds", nil, "k").With("v").Observe(1)
}

func TestVecCardinalityOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.BoundedCounterVec("bounded_total", 4, "id")
	// 3 real series fit (the 4th slot is reserved for overflow).
	v.With("a").Inc()
	v.With("b").Inc()
	v.With("c").Inc()
	if over, _ := v.Overflowed(); over {
		t.Fatal("overflowed before the bound")
	}
	// Everything past the bound lands on the shared overflow series.
	v.With("d").Add(10)
	v.With("e").Add(5)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (3 real + overflow)", v.Len())
	}
	over, dropped := v.Overflowed()
	if !over || dropped != 2 {
		t.Fatalf("Overflowed = %v/%d, want true/2", over, dropped)
	}
	if got := v.With("other").Value(); got != 15 {
		t.Fatalf("overflow series = %d, want 15", got)
	}
	// Established series keep their identity after overflow starts.
	v.With("a").Inc()
	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("series a = %d, want 2", got)
	}
	want := `bounded_total{id="other"} 15`
	if text := r.PromText(); !strings.Contains(text, want) {
		t.Fatalf("exposition lacks %q:\n%s", want, text)
	}
}

func TestOverflowValueNeverMintsRealSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("k_total", "kind")
	// A caller-supplied "other" routes to the overflow series even while
	// the family is far under its bound.
	v.With(OverflowValue).Inc()
	v.With("real").Inc()
	v.With(OverflowValue).Inc()
	if got := v.With(OverflowValue).Value(); got != 2 {
		t.Fatalf("overflow series = %d, want 2", got)
	}
	if over, dropped := v.Overflowed(); over || dropped != 0 {
		t.Fatalf("explicit %q should not count as a drop: %v/%d", OverflowValue, over, dropped)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("weird_total", "val")
	v.With(`quote " backslash \ newline` + "\n" + `end`).Inc()
	text := r.PromText()
	want := `weird_total{val="quote \" backslash \\ newline\nend"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition lacks %q:\n%s", want, text)
	}
	if strings.Count(text, "\n") != 2 { // TYPE line + series line
		t.Fatalf("raw newline leaked into exposition:\n%q", text)
	}
}

func TestHistogramVecExemplars(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("req_seconds", []float64{0.1, 1}, "route")
	h := v.With("risk")
	h.ObserveEx(0.05, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.ObserveEx(0.5, "11112222333344441111222233334444")
	h.Observe(0.6) // no exemplar; must not clobber the previous one
	text := r.PromText()
	want := `req_seconds_bucket{route="risk",le="1"} 3 # {trace_id="11112222333344441111222233334444"} 0.5`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition lacks %q:\n%s", want, text)
	}
	if !strings.Contains(text, `le="0.1"} 1 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.05`) {
		t.Fatalf("first bucket lost its exemplar:\n%s", text)
	}
}

func TestVecSnapshotAndJSONCarryLabels(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("a_total", "k").With("v1").Inc()
	r.GaugeVec("b", "k").With("v2").Set(7)
	r.HistogramVec("c_seconds", nil, "k").With("v3").Observe(1)
	byName := map[string]MetricSnapshot{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m
	}
	for name, want := range map[string]string{"a_total": "v1", "b": "v2", "c_seconds": "v3"} {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("snapshot lacks %s", name)
		}
		if m.Labels["k"] != want {
			t.Fatalf("%s labels = %v, want k=%s", name, m.Labels, want)
		}
	}
	blob, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"labels"`) {
		t.Fatalf("JSON dump lacks labels:\n%s", blob)
	}
}

func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.BoundedCounterVec("conc_total", 8, "id")
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(ids[i%len(ids)]).Inc()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, m := range r.Snapshot() {
		total += int64(m.Value)
	}
	if total != 8000 {
		t.Fatalf("total = %d, want 8000 (no increments lost to overflow routing)", total)
	}
	if v.Len() > 8 {
		t.Fatalf("Len = %d, exceeds bound 8", v.Len())
	}
}
