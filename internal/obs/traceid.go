package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// NewTraceID returns a fresh 32-hex-character (128-bit) W3C trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// would be invalid per W3C, so brand it distinctly instead.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-character (64-bit) W3C parent-id.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// (version-traceid-parentid-flags). It accepts only well-formed
// version-00 values with a non-zero trace ID.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 {
		return "", false
	}
	version, id, parent, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return "", false
	}
	if len(id) != 32 || !isHex(id) || id == strings.Repeat("0", 32) {
		return "", false
	}
	if len(parent) != 16 || !isHex(parent) || parent == strings.Repeat("0", 16) {
		return "", false
	}
	if len(flags) != 2 || !isHex(flags) {
		return "", false
	}
	return id, true
}

// FormatTraceparent renders a version-00 traceparent for the given
// trace ID with a fresh parent-id and the sampled flag set.
func FormatTraceparent(traceID string) string {
	return "00-" + traceID + "-" + NewSpanID() + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
