package obs

import (
	"testing"
	"time"
)

// BenchmarkCounterAdd is the instrumented hot-path cost: one atomic add.
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddNil is the uninstrumented cost: one nil check.
func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSpanStartEnd measures a full span lifecycle (two time.Now
// calls plus one mutexed append). The tracer is emptied outside the
// timed region so the loop measures the steady publish path, not
// b.N-sized slice growth and GC pressure.
func BenchmarkSpanStartEnd(b *testing.B) {
	const batch = 1024
	tr := NewTracer(batch)
	v := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%batch == 0 {
			b.StopTimer()
			tr.mu.Lock()
			tr.spans = tr.spans[:0]
			tr.mu.Unlock()
			b.StartTimer()
		}
		tr.Start(nil, "s", v).End(v)
	}
}

// BenchmarkSpanStartEndNil is the uninstrumented tracer cost.
func BenchmarkSpanStartEndNil(b *testing.B) {
	var tr *Tracer
	v := time.Unix(0, 0)
	for i := 0; i < b.N; i++ {
		tr.Start(nil, "s", v).End(v)
	}
}
