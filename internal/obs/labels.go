package obs

import (
	"sort"
	"strings"
	"sync"
)

// DefaultMaxSeries bounds the live series a labeled family may hold
// before new label combinations overflow into the reserved
// OverflowValue series. The bound exists so a label fed from request
// input (a route, a cache tier, a fault kind) can never grow the
// registry without limit: past the bound, increments still count, they
// just lose dimensionality.
const DefaultMaxSeries = 64

// OverflowValue is the reserved label value carried (on every label
// key) by a family's overflow series. Real series never use it: a
// caller-supplied value equal to OverflowValue is itself routed to the
// overflow series rather than minting a counterfeit "real" one.
const OverflowValue = "other"

// labelSep joins interned label values; it cannot appear in a metric
// label value that round-trips through the exposition escaper anyway,
// and the interned key is never exposed.
const labelSep = "\x1f"

// labelSet is the shared label machinery behind CounterVec, GaugeVec
// and HistogramVec: sorted-key interning, a hard series bound, and the
// reserved overflow series.
type labelSet struct {
	name string
	keys []string // sorted label keys
	perm []int    // perm[i] = position in caller order of sorted key i
	max  int

	mu       sync.RWMutex
	index    map[string][]string // interned key -> values (sorted-key order)
	overflow bool                // the overflow series has been minted
	dropped  int64               // distinct label combinations routed to overflow
}

func newLabelSet(name string, max int, keys []string) *labelSet {
	if max <= 0 {
		max = DefaultMaxSeries
	}
	ls := &labelSet{name: name, max: max, index: make(map[string][]string)}
	type kp struct {
		k string
		i int
	}
	kps := make([]kp, len(keys))
	for i, k := range keys {
		kps[i] = kp{k, i}
	}
	sort.Slice(kps, func(i, j int) bool { return kps[i].k < kps[j].k })
	ls.keys = make([]string, len(kps))
	ls.perm = make([]int, len(kps))
	for i, p := range kps {
		ls.keys[i] = p.k
		ls.perm[i] = p.i
	}
	return ls
}

// intern maps caller-order values to the canonical sorted-key interned
// string, or "", false on arity mismatch.
func (ls *labelSet) intern(values []string) (string, bool) {
	if len(values) != len(ls.keys) {
		return "", false
	}
	sorted := make([]string, len(values))
	overflow := false
	for i, p := range ls.perm {
		sorted[i] = values[p]
		if values[p] == OverflowValue {
			overflow = true
		}
	}
	if overflow {
		return ls.overflowKey(), true
	}
	return strings.Join(sorted, labelSep), true
}

func (ls *labelSet) overflowKey() string {
	vals := make([]string, len(ls.keys))
	for i := range vals {
		vals[i] = OverflowValue
	}
	return strings.Join(vals, labelSep)
}

// admit decides, under ls.mu, whether a new interned key may become a
// real series (true) or must be the overflow series (false). The
// overflow series itself occupies one of the max slots, reserved up
// front so it is always available.
func (ls *labelSet) admit(key string) bool {
	if key == ls.overflowKey() {
		ls.overflow = true
		return true
	}
	if len(ls.index) < ls.max-1 || (ls.overflow && len(ls.index) < ls.max) {
		return true
	}
	ls.dropped++
	ls.overflow = true
	return false
}

// labels reconstructs the key->value map for an interned key.
func (ls *labelSet) labels(key string) map[string]string {
	vals := strings.Split(key, labelSep)
	m := make(map[string]string, len(ls.keys))
	for i, k := range ls.keys {
		if i < len(vals) {
			m[k] = vals[i]
		}
	}
	return m
}

// CounterVec is a family of counters sharing a name and a label-key
// set, one Counter per distinct label-value combination. The family
// holds at most MaxSeries live series; further combinations share the
// reserved OverflowValue series. All methods are nil-safe.
type CounterVec struct {
	ls     *labelSet
	mu     sync.RWMutex
	series map[string]*Counter
}

// With returns the counter for the given label values, in the key
// order the family was declared with. A nil receiver or a value count
// that does not match the declared keys yields a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key, ok := v.ls.intern(values)
	if !ok {
		return nil
	}
	v.mu.RLock()
	c := v.series[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.series[key]; c != nil {
		return c
	}
	if !v.ls.admit(key) {
		key = v.ls.overflowKey()
		if c = v.series[key]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.series[key] = c
	v.ls.index[key] = nil
	return c
}

// Name reports the family name.
func (v *CounterVec) Name() string { return v.ls.name }

// Keys reports the sorted label keys.
func (v *CounterVec) Keys() []string { return append([]string(nil), v.ls.keys...) }

// MaxSeries reports the family's hard series bound.
func (v *CounterVec) MaxSeries() int { return v.ls.max }

// Len reports the live series count (the overflow series included).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// Overflowed reports whether any label combination has been routed to
// the reserved overflow series, and how many distinct combinations
// were.
func (v *CounterVec) Overflowed() (bool, int64) {
	if v == nil {
		return false, 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.ls.dropped > 0, v.ls.dropped
}

// GaugeVec is a family of gauges; see CounterVec for the label and
// cardinality semantics.
type GaugeVec struct {
	ls     *labelSet
	mu     sync.RWMutex
	series map[string]*Gauge
}

// With returns the gauge for the given label values (nil on arity
// mismatch or nil receiver).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key, ok := v.ls.intern(values)
	if !ok {
		return nil
	}
	v.mu.RLock()
	g := v.series[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.series[key]; g != nil {
		return g
	}
	if !v.ls.admit(key) {
		key = v.ls.overflowKey()
		if g = v.series[key]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.series[key] = g
	v.ls.index[key] = nil
	return g
}

// Name reports the family name.
func (v *GaugeVec) Name() string { return v.ls.name }

// Keys reports the sorted label keys.
func (v *GaugeVec) Keys() []string { return append([]string(nil), v.ls.keys...) }

// MaxSeries reports the family's hard series bound.
func (v *GaugeVec) MaxSeries() int { return v.ls.max }

// Len reports the live series count.
func (v *GaugeVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// HistogramVec is a family of histograms; see CounterVec for the
// label and cardinality semantics. Every series shares the family's
// bucket bounds.
type HistogramVec struct {
	ls      *labelSet
	buckets []float64
	mu      sync.RWMutex
	series  map[string]*Histogram
}

// With returns the histogram for the given label values (nil on arity
// mismatch or nil receiver).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key, ok := v.ls.intern(values)
	if !ok {
		return nil
	}
	v.mu.RLock()
	h := v.series[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.series[key]; h != nil {
		return h
	}
	if !v.ls.admit(key) {
		key = v.ls.overflowKey()
		if h = v.series[key]; h != nil {
			return h
		}
	}
	h = newHistogram(v.buckets)
	v.series[key] = h
	v.ls.index[key] = nil
	return h
}

// Name reports the family name.
func (v *HistogramVec) Name() string { return v.ls.name }

// Keys reports the sorted label keys.
func (v *HistogramVec) Keys() []string { return append([]string(nil), v.ls.keys...) }

// MaxSeries reports the family's hard series bound.
func (v *HistogramVec) MaxSeries() int { return v.ls.max }

// Len reports the live series count.
func (v *HistogramVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// CounterVec returns (creating if needed) the named counter family
// with the given label keys and the DefaultMaxSeries bound. The first
// registration wins: later callers get the existing family regardless
// of the keys or bound they pass.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	return r.BoundedCounterVec(name, 0, keys...)
}

// BoundedCounterVec is CounterVec with an explicit series bound
// (maxSeries <= 0 selects DefaultMaxSeries).
func (r *Registry) BoundedCounterVec(name string, maxSeries int, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.counterVecs[name]; v == nil {
		v = &CounterVec{ls: newLabelSet(name, maxSeries, keys), series: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns (creating if needed) the named gauge family with
// the given label keys and the DefaultMaxSeries bound.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	return r.BoundedGaugeVec(name, 0, keys...)
}

// BoundedGaugeVec is GaugeVec with an explicit series bound.
func (r *Registry) BoundedGaugeVec(name string, maxSeries int, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.gaugeVecs[name]; v == nil {
		v = &GaugeVec{ls: newLabelSet(name, maxSeries, keys), series: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns (creating if needed) the named histogram family
// with the given bucket bounds (nil selects DefBuckets), label keys,
// and the DefaultMaxSeries bound.
func (r *Registry) HistogramVec(name string, buckets []float64, keys ...string) *HistogramVec {
	return r.BoundedHistogramVec(name, 0, buckets, keys...)
}

// BoundedHistogramVec is HistogramVec with an explicit series bound.
func (r *Registry) BoundedHistogramVec(name string, maxSeries int, buckets []float64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.histogramVecs[name]; v == nil {
		v = &HistogramVec{
			ls:      newLabelSet(name, maxSeries, keys),
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*Histogram),
		}
		r.histogramVecs[name] = v
	}
	return v
}

// snapshotVecs appends every vec series as a labeled MetricSnapshot.
// Called with r.mu held (read).
func (r *Registry) snapshotVecs(out []MetricSnapshot) []MetricSnapshot {
	for name, v := range r.counterVecs {
		v.mu.RLock()
		for key, c := range v.series {
			out = append(out, MetricSnapshot{
				Name: name, Kind: "counter", Labels: v.ls.labels(key), Value: float64(c.Value()),
			})
		}
		v.mu.RUnlock()
	}
	for name, v := range r.gaugeVecs {
		v.mu.RLock()
		for key, g := range v.series {
			out = append(out, MetricSnapshot{
				Name: name, Kind: "gauge", Labels: v.ls.labels(key), Value: float64(g.Value()),
			})
		}
		v.mu.RUnlock()
	}
	for name, v := range r.histogramVecs {
		v.mu.RLock()
		for key, h := range v.series {
			s := MetricSnapshot{
				Name: name, Kind: "histogram", Labels: v.ls.labels(key),
				Value: h.Sum(), Count: h.Count(), Buckets: h.buckets(),
			}
			out = append(out, s)
		}
		v.mu.RUnlock()
	}
	return out
}
