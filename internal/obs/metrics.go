package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain one from Registry.Counter. All methods are nil-safe
// and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (pool occupancy, sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reports the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative-style buckets
// (recorded per-bucket, exposed cumulatively like Prometheus).
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets covers both clocks: sub-millisecond wall compute up
// through multi-week virtual design time, in seconds.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 600,
	3600, 4 * 3600, 24 * 3600, 7 * 24 * 3600,
}

// SizeBuckets suits byte-size observations (snapshot sizes).
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a thread-safe named-metric registry. Metrics are created
// lazily on first use and live for the registry's lifetime; hot paths
// should look a metric up once and cache the handle. All methods are
// nil-safe, returning nil (no-op) handles from a nil registry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. buckets
// are ascending upper bounds in the observed unit; nil selects
// DefBuckets. The first registration wins: later callers get the
// existing histogram regardless of the buckets they pass.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound;
	// math.Inf(1) for the last bucket.
	UpperBound float64 `json:"-"`
	// Count is the cumulative observation count up to UpperBound.
	Count int64 `json:"count"`
}

// MarshalJSON renders the bound as a Prometheus-style string ("+Inf"
// for the last bucket) — JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// MetricSnapshot is one metric's point-in-time state.
type MetricSnapshot struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value holds the counter/gauge value, or the histogram sum.
	Value float64 `json:"value"`
	// Count is the histogram observation count (histograms only).
	Count int64 `json:"observations,omitempty"`
	// Buckets are the cumulative histogram buckets (histograms only).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures every metric, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.histograms {
		s := MetricSnapshot{Name: name, Kind: "histogram", Value: h.Sum(), Count: h.Count()}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteProm writes the registry in the Prometheus text exposition
// format, metrics sorted by name.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				m.Name, formatFloat(m.Value), m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromText renders the Prometheus exposition as a string.
func (r *Registry) PromText() string {
	var b strings.Builder
	_ = r.WriteProm(&b)
	return b.String()
}

// JSON dumps the full snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	return json.MarshalIndent(snap, "", "  ")
}

// formatFloat renders v the way Prometheus text format expects:
// integral values without an exponent, others in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
