package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain one from Registry.Counter. All methods are nil-safe
// and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (pool occupancy, sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reports the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative-style buckets
// (recorded per-bucket, exposed cumulatively like Prometheus). Each
// bucket optionally remembers the last exemplar observed into it — a
// trace ID plus the observed value — so a tail bucket links directly
// to a recorded trace.
type Histogram struct {
	bounds    []float64      // ascending upper bounds; implicit +Inf last
	counts    []atomic.Int64 // len(bounds)+1
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-updated
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to the trace that produced it.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	Value   float64 `json:"value"`
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// DefBuckets covers both clocks: sub-millisecond wall compute up
// through multi-week virtual design time, in seconds.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 600,
	3600, 4 * 3600, 24 * 3600, 7 * 24 * 3600,
}

// SizeBuckets suits byte-size observations (snapshot sizes).
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveEx records one sample and, when traceID is non-empty, stamps
// it as the containing bucket's last exemplar.
func (h *Histogram) ObserveEx(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// buckets snapshots the cumulative bucket counts (and per-bucket
// exemplars, where present).
func (h *Histogram) buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		b := Bucket{UpperBound: ub, Count: cum}
		if len(h.exemplars) == len(h.counts) {
			b.Exemplar = h.exemplars[i].Load()
		}
		out = append(out, b)
	}
	return out
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a thread-safe named-metric registry. Metrics are created
// lazily on first use and live for the registry's lifetime; hot paths
// should look a metric up once and cache the handle. All methods are
// nil-safe, returning nil (no-op) handles from a nil registry.
type Registry struct {
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. buckets
// are ascending upper bounds in the observed unit; nil selects
// DefBuckets. The first registration wins: later callers get the
// existing histogram regardless of the buckets they pass.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound;
	// math.Inf(1) for the last bucket.
	UpperBound float64 `json:"-"`
	// Count is the cumulative observation count up to UpperBound.
	Count int64 `json:"count"`
	// Exemplar is the last exemplar observed into this bucket, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the bound as a Prometheus-style string ("+Inf"
// for the last bucket) — JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return json.Marshal(struct {
		Le       string    `json:"le"`
		Count    int64     `json:"count"`
		Exemplar *Exemplar `json:"exemplar,omitempty"`
	}{le, b.Count, b.Exemplar})
}

// MetricSnapshot is one metric's point-in-time state. Series from a
// labeled family share a Name and differ in Labels.
type MetricSnapshot struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Labels are the series' label key/value pairs (labeled families
	// only; nil for plain metrics).
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds the counter/gauge value, or the histogram sum.
	Value float64 `json:"value"`
	// Count is the histogram observation count (histograms only).
	Count int64 `json:"observations,omitempty"`
	// Buckets are the cumulative histogram buckets (histograms only).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// promLabels renders the series' labels as the inner part of a
// Prometheus label set — `k1="v1",k2="v2"`, keys sorted, values
// escaped — or "" for an unlabeled metric.
func (m MetricSnapshot) promLabels() string {
	if len(m.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + promEscape(m.Labels[k]) + `"`
	}
	return strings.Join(parts, ",")
}

// promEscape escapes a label value for the Prometheus text format:
// backslash, double quote, and newline.
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Snapshot captures every metric — plain and labeled — sorted by name,
// then by label set within a family.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.histograms {
		out = append(out, MetricSnapshot{
			Name: name, Kind: "histogram", Value: h.Sum(), Count: h.Count(), Buckets: h.buckets(),
		})
	}
	out = r.snapshotVecs(out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].promLabels() < out[j].promLabels()
	})
	return out
}

// WriteProm writes the registry in the Prometheus text exposition
// format, families sorted by name (one TYPE line per family), label
// values escaped. Histogram buckets carrying an exemplar append it
// OpenMetrics-style: `# {trace_id="..."} value`.
func (r *Registry) WriteProm(w io.Writer) error {
	last := ""
	for _, m := range r.Snapshot() {
		if m.Name != last {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			last = m.Name
		}
		inner := m.promLabels()
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				sep := ""
				if inner != "" {
					sep = ","
				}
				ex := ""
				if b.Exemplar != nil {
					ex = fmt.Sprintf(" # {trace_id=%q} %s", b.Exemplar.TraceID, formatFloat(b.Exemplar.Value))
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d%s\n", m.Name, inner, sep, le, b.Count, ex); err != nil {
					return err
				}
			}
			suffix := ""
			if inner != "" {
				suffix = "{" + inner + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				m.Name, suffix, formatFloat(m.Value), m.Name, suffix, m.Count); err != nil {
				return err
			}
		default:
			suffix := ""
			if inner != "" {
				suffix = "{" + inner + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, suffix, formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromText renders the Prometheus exposition as a string.
func (r *Registry) PromText() string {
	var b strings.Builder
	_ = r.WriteProm(&b)
	return b.String()
}

// JSON dumps the full snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	return json.MarshalIndent(snap, "", "  ")
}

// formatFloat renders v the way Prometheus text format expects:
// integral values without an exponent, others in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
