// Package obs is the repo's zero-dependency observability substrate: a
// thread-safe metrics registry (atomic counters, gauges, fixed-bucket
// histograms with Prometheus-style text exposition and a JSON dump) and
// a dual-clock span tracer.
//
// The dual clock is the flowsched twist: every span carries both the
// wall-clock compute interval (what the Go process spent) and the
// virtual design-time interval on the project's vclock (what the
// simulated project spent). One trace therefore answers "where did the
// CPU go" and "where did the design schedule go" simultaneously —
// exactly the runtime provenance that makes a flow manager operable
// (cf. Souza et al., distributed in-memory workflow telemetry).
//
// Everything is nil-safe: methods on a nil *Obs, *Registry, *Tracer,
// *Counter, *Gauge, *Histogram, or *Span are no-ops, so instrumented
// code paths thread a possibly-nil handle and uninstrumented callers
// pay only a nil check.
package obs

// Obs bundles a metrics registry and a span tracer. Either part may be
// nil (metrics-only or tracing-only instrumentation).
type Obs struct {
	reg *Registry
	tr  *Tracer
}

// New returns an Obs with a fresh registry and a tracer retaining at
// most DefaultMaxSpans spans.
func New() *Obs { return &Obs{reg: NewRegistry(), tr: NewTracer(DefaultMaxSpans)} }

// NewWith assembles an Obs from the given parts. If both are nil it
// returns nil, the uninstrumented handle.
func NewWith(reg *Registry, tr *Tracer) *Obs {
	if reg == nil && tr == nil {
		return nil
	}
	return &Obs{reg: reg, tr: tr}
}

// Metrics returns the registry, or nil on a nil or tracing-only Obs.
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the tracer, or nil on a nil or metrics-only Obs.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}
