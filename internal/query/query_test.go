package query

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/flow"
	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

// fixture: plans twice (v2 based on v1), completes Create under plan 2
// with a 16h actual duration.
type fixture struct {
	eng  *Engine
	plan sched.Plan
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sch := schema.MustParse(fig4)
	db := store.NewDB()
	exec, err := meta.NewSpace(db, sch)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.NewSpace(db, sch, vclock.Standard())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := flow.FromSchema(sch)
	tree, _ := g.Extract("performance")
	est := sched.Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	assign := map[string][]string{"Create": {"ewj"}, "Simulate": {"ewj", "jbb"}}
	r1, err := sp.Plan(tree, t0, est, sched.PlanOptions{Assignments: assign})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sp.Plan(tree, t0, est, sched.PlanOptions{
		Assignments: assign, BasedOn: []string{r1.Entry.ID}})
	if err != nil {
		t.Fatal(err)
	}
	// Execute Create: one run, 16h working (Mon 09:00 - Tue 17:00).
	finish := time.Date(1995, time.June, 6, 17, 0, 0, 0, time.UTC)
	run, _ := exec.BeginRun("Create", "editor#1", "ewj", t0)
	exec.FinishRun(run.ID, finish, meta.RunSucceeded)
	ent, _ := exec.RecordEntity("netlist", run.ID, design.Ref{Class: "netlist", Version: 1})
	sp.MarkStarted(&r2.Plan, "Create", t0)
	if err := sp.Complete(&r2.Plan, "Create", ent.ID, finish); err != nil {
		t.Fatal(err)
	}
	eng, err := New(sp, exec)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, plan: r2.Plan}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil sched accepted")
	}
}

func TestLastDuration(t *testing.T) {
	fx := newFixture(t)
	d, err := fx.eng.LastDuration("Create")
	if err != nil {
		t.Fatal(err)
	}
	if d != 16*time.Hour {
		t.Fatalf("LastDuration = %v, want 16h", d)
	}
	if _, err := fx.eng.LastDuration("Simulate"); err == nil {
		t.Fatal("uncompleted activity accepted")
	}
	if _, err := fx.eng.LastDuration("Nope"); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestDurationsAndMean(t *testing.T) {
	fx := newFixture(t)
	ds, err := fx.eng.Durations("Create")
	if err != nil || len(ds) != 1 || ds[0] != 16*time.Hour {
		t.Fatalf("Durations = %v, %v", ds, err)
	}
	m, err := fx.eng.MeanDuration("Create")
	if err != nil || m != 16*time.Hour {
		t.Fatalf("MeanDuration = %v, %v", m, err)
	}
	if _, err := fx.eng.MeanDuration("Simulate"); err == nil {
		t.Fatal("mean of empty accepted")
	}
}

func TestEstimate(t *testing.T) {
	fx := newFixture(t)
	in, err := fx.eng.Estimate("Simulate")
	if err != nil {
		t.Fatal(err)
	}
	if in.EstWork != 8*time.Hour || in.PlanVersion != 2 {
		t.Fatalf("Estimate = %+v", in)
	}
	if _, err := fx.eng.Estimate("Nope"); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestSlip(t *testing.T) {
	fx := newFixture(t)
	// Create planned to finish Tue 17:00, actually finished Tue 17:00: no slip.
	d, err := fx.eng.Slip("Create", time.Date(1995, time.June, 6, 17, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Slip = %v, want 0", d)
	}
	if _, err := fx.eng.Slip("Nope", t0); err == nil {
		t.Fatal("unknown activity accepted")
	}
}

func TestLineage(t *testing.T) {
	fx := newFixture(t)
	chain, err := fx.eng.Lineage()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0] != "schedule/1" || chain[1] != "schedule/2" {
		t.Fatalf("Lineage = %v", chain)
	}
}

func TestResourceLoad(t *testing.T) {
	fx := newFixture(t)
	load, err := fx.eng.ResourceLoad()
	if err != nil {
		t.Fatal(err)
	}
	if load["ewj"] != 24*time.Hour || load["jbb"] != 8*time.Hour {
		t.Fatalf("load = %v", load)
	}
}

func TestIterations(t *testing.T) {
	fx := newFixture(t)
	n, err := fx.eng.Iterations("Create")
	if err != nil || n != 1 {
		t.Fatalf("Iterations = %d, %v", n, err)
	}
	noExec := &Engine{Sched: fx.eng.Sched}
	if _, err := noExec.Iterations("Create"); err == nil {
		t.Fatal("missing exec space accepted")
	}
}

func TestEval(t *testing.T) {
	fx := newFixture(t)
	cases := []struct{ q, want string }{
		{"duration of Create", "= 16h"},
		{"durations of Create", "[16h]"},
		{"mean duration of Create", "= 16h"},
		{"estimate of Simulate", "8h (fixed)"},
		{"lineage", "schedule/1 -> schedule/2"},
		{"load", "ewj=24h"},
		{"runs of Create", "= 1"},
		{"slip of Create at 1995-06-06T17:00:00Z", "= 0h"},
	}
	for _, tc := range cases {
		got, err := fx.eng.Eval(tc.q)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.q, err)
			continue
		}
		if !strings.Contains(got, tc.want) {
			t.Errorf("Eval(%q) = %q, want contains %q", tc.q, got, tc.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	fx := newFixture(t)
	for _, q := range []string{
		"", "bogus", "duration of Nope", "slip of Create", "slip of Create at yesterday",
	} {
		if _, err := fx.eng.Eval(q); err == nil {
			t.Errorf("Eval(%q) accepted", q)
		}
	}
}

func TestQueriesWithoutPlan(t *testing.T) {
	sch := schema.MustParse(fig4)
	sp, _ := sched.NewSpace(store.NewDB(), sch, vclock.Standard())
	eng, _ := New(sp, nil)
	if _, err := eng.Estimate("Create"); err == nil {
		t.Fatal("Estimate without plan accepted")
	}
	if _, err := eng.Lineage(); err == nil {
		t.Fatal("Lineage without plan accepted")
	}
	if _, err := eng.ResourceLoad(); err == nil {
		t.Fatal("ResourceLoad without plan accepted")
	}
	if _, err := eng.Slip("Create", t0); err == nil {
		t.Fatal("Slip without plan accepted")
	}
}

func TestEvalPlansAndMilestones(t *testing.T) {
	fx := newFixture(t)
	got, err := fx.eng.Eval("plans")
	if err != nil || !strings.Contains(got, "v1(") || !strings.Contains(got, "v2(") {
		t.Fatalf("plans = %q, %v", got, err)
	}
	// No milestones set yet.
	got, err = fx.eng.Eval("milestones")
	if err != nil || got != "no milestones set" {
		t.Fatalf("milestones = %q, %v", got, err)
	}
	// Set one and query again.
	_, p, _ := fx.eng.Sched.CurrentPlan()
	target := time.Date(1995, time.June, 9, 17, 0, 0, 0, time.UTC)
	if _, err := fx.eng.Sched.SetMilestone(p, "netlist-frozen", "netlist", target); err != nil {
		t.Fatal(err)
	}
	got, err = fx.eng.Eval("milestones")
	if err != nil || !strings.Contains(got, "netlist-frozen(achieved") {
		t.Fatalf("milestones = %q, %v", got, err)
	}
}

func TestEvalPlansEmpty(t *testing.T) {
	sch := schema.MustParse(fig4)
	sp, _ := sched.NewSpace(store.NewDB(), sch, vclock.Standard())
	eng, _ := New(sp, nil)
	got, err := eng.Eval("plans")
	if err != nil || got != "no plans exist" {
		t.Fatalf("plans = %q, %v", got, err)
	}
	if _, err := eng.Eval("milestones"); err == nil {
		t.Fatal("milestones without plan accepted")
	}
}
