package query

import (
	"testing"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/flow"
	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// buildFuzzEngine populates a small database without needing *testing.T.
func buildFuzzEngine() (*Engine, error) {
	sch := schema.MustParse(fig4)
	db := store.NewDB()
	exec, err := meta.NewSpace(db, sch)
	if err != nil {
		return nil, err
	}
	sp, err := sched.NewSpace(db, sch, vclock.Standard())
	if err != nil {
		return nil, err
	}
	g, err := flow.FromSchema(sch)
	if err != nil {
		return nil, err
	}
	tree, err := g.Extract("performance")
	if err != nil {
		return nil, err
	}
	res, err := sp.Plan(tree, t0, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{
		Assignments: map[string][]string{"Create": {"ewj"}},
	})
	if err != nil {
		return nil, err
	}
	run, err := exec.BeginRun("Create", "editor#1", "ewj", t0)
	if err != nil {
		return nil, err
	}
	finish := t0.Add(8 * time.Hour)
	if err := exec.FinishRun(run.ID, finish, meta.RunSucceeded); err != nil {
		return nil, err
	}
	ent, err := exec.RecordEntity("netlist", run.ID, design.Ref{Class: "netlist", Version: 1})
	if err != nil {
		return nil, err
	}
	if err := sp.MarkStarted(&res.Plan, "Create", t0); err != nil {
		return nil, err
	}
	if err := sp.Complete(&res.Plan, "Create", ent.ID, finish); err != nil {
		return nil, err
	}
	return New(sp, exec)
}

// FuzzEval checks the textual query parser never panics on arbitrary
// input against a populated database, and never returns an empty answer
// without an error.
func FuzzEval(f *testing.F) {
	seeds := []string{
		"",
		"duration of Create",
		"durations of Create",
		"mean duration of Create",
		"estimate of Simulate",
		"slip of Create at 1995-06-06T17:00:00Z",
		"slip of Create at",
		"lineage",
		"load",
		"runs of Create",
		"duration of",
		"slip of  at bogus",
		"mean duration of mean duration of",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	eng, err := buildFuzzEngine()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, q string) {
		ans, err := eng.Eval(q)
		if err == nil && ans == "" {
			t.Fatalf("empty answer without error for %q", q)
		}
	})
}
