// Package query implements §IV.B of the paper: queries into the task
// database for schedule status, schedule data, and schedule metadata.
//
// Two kinds of query are supported, mirroring the paper:
//
//   - queries into design schedule *data* — e.g. "the duration of an
//     activity the last time it was performed", usable to predict the
//     duration of the present design;
//   - queries into design schedule *metadata* — e.g. which schedule plans
//     were used to create the present plan, showing the evolution of a
//     design schedule.
//
// The typed API (Engine methods) backs the public library; Eval adds the
// small textual query language used by the hercules CLI.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"flowsched/internal/meta"
	"flowsched/internal/sched"
)

// Engine answers queries over one task database.
type Engine struct {
	Sched *sched.Space
	Exec  *meta.Space // optional; enables run-level queries
}

// New builds a query engine. Sched is required.
func New(s *sched.Space, e *meta.Space) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("query: nil schedule space")
	}
	return &Engine{Sched: s, Exec: e}, nil
}

// LastDuration reports the actual working duration of the most recent
// completed schedule instance of the activity.
func (q *Engine) LastDuration(activity string) (time.Duration, error) {
	_, insts, err := q.Sched.History(activity)
	if err != nil {
		return 0, err
	}
	for i := len(insts) - 1; i >= 0; i-- {
		in := insts[i]
		if in.Done && !in.ActualStart.IsZero() {
			return q.Sched.Calendar.WorkBetween(in.ActualStart, in.ActualFinish), nil
		}
	}
	return 0, fmt.Errorf("query: activity %q has no completed executions", activity)
}

// Durations reports every completed actual working duration of an
// activity, oldest first.
func (q *Engine) Durations(activity string) ([]time.Duration, error) {
	_, insts, err := q.Sched.History(activity)
	if err != nil {
		return nil, err
	}
	var out []time.Duration
	for _, in := range insts {
		if in.Done && !in.ActualStart.IsZero() {
			out = append(out, q.Sched.Calendar.WorkBetween(in.ActualStart, in.ActualFinish))
		}
	}
	return out, nil
}

// MeanDuration averages Durations.
func (q *Engine) MeanDuration(activity string) (time.Duration, error) {
	ds, err := q.Durations(activity)
	if err != nil {
		return 0, err
	}
	if len(ds) == 0 {
		return 0, fmt.Errorf("query: activity %q has no completed executions", activity)
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds)), nil
}

// Estimate reports the current plan's estimate for an activity.
func (q *Engine) Estimate(activity string) (sched.Instance, error) {
	_, p, err := q.Sched.CurrentPlan()
	if err != nil {
		return sched.Instance{}, err
	}
	if p == nil {
		return sched.Instance{}, fmt.Errorf("query: no plan exists")
	}
	_, in, err := q.Sched.Instance(p, activity)
	if err != nil {
		return sched.Instance{}, err
	}
	return *in, nil
}

// Slip reports the current working-time slip of an activity under the
// current plan at time now (zero when on schedule).
func (q *Engine) Slip(activity string, now time.Time) (time.Duration, error) {
	_, p, err := q.Sched.CurrentPlan()
	if err != nil {
		return 0, err
	}
	if p == nil {
		return 0, fmt.Errorf("query: no plan exists")
	}
	sts, err := q.Sched.Status(p, now)
	if err != nil {
		return 0, err
	}
	for _, st := range sts {
		if st.Activity == activity {
			return st.Slip, nil
		}
	}
	return 0, fmt.Errorf("query: activity %q not in current plan", activity)
}

// Lineage reports the plan-evolution chain of the current plan, oldest
// first (schedule metadata query).
func (q *Engine) Lineage() ([]string, error) {
	e, p, err := q.Sched.CurrentPlan()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("query: no plan exists")
	}
	chain, err := q.Sched.Lineage(e.ID)
	if err != nil {
		return nil, err
	}
	return append(chain, e.ID), nil
}

// ResourceLoad sums, per resource, the planned working time assigned under
// the current plan.
func (q *Engine) ResourceLoad() (map[string]time.Duration, error) {
	_, p, err := q.Sched.CurrentPlan()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("query: no plan exists")
	}
	_, insts, err := q.Sched.Instances(p)
	if err != nil {
		return nil, err
	}
	load := make(map[string]time.Duration)
	for _, in := range insts {
		for _, r := range in.Resources {
			load[r] += in.EstWork
		}
	}
	return load, nil
}

// Iterations reports how many runs each completed task of an activity
// took, using the execution space.
func (q *Engine) Iterations(activity string) (int, error) {
	if q.Exec == nil {
		return 0, fmt.Errorf("query: no execution space attached")
	}
	_, runs, err := q.Exec.Runs(activity)
	if err != nil {
		return 0, err
	}
	return len(runs), nil
}

// Eval parses and answers one textual query. Supported forms:
//
//	duration of <activity>        last completed actual duration
//	durations of <activity>       all completed actual durations
//	mean duration of <activity>   average completed duration
//	estimate of <activity>        current plan estimate and dates
//	slip of <activity> at <RFC3339>   slip against the current plan
//	plans                         list every plan version
//	milestones                    milestone report for the current plan
//	lineage                       plan evolution chain
//	load                          planned work per resource
//	runs of <activity>            run count from the execution space
func (q *Engine) Eval(text string) (string, error) {
	fields := strings.Fields(strings.TrimSpace(text))
	if len(fields) == 0 {
		return "", fmt.Errorf("query: empty query")
	}
	join := strings.Join(fields, " ")
	switch {
	case strings.HasPrefix(join, "mean duration of "):
		act := strings.TrimPrefix(join, "mean duration of ")
		d, err := q.MeanDuration(act)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("mean duration of %s = %s", act, fmtDur(d)), nil
	case strings.HasPrefix(join, "durations of "):
		act := strings.TrimPrefix(join, "durations of ")
		ds, err := q.Durations(act)
		if err != nil {
			return "", err
		}
		if len(ds) == 0 {
			return fmt.Sprintf("%s has no completed executions", act), nil
		}
		parts := make([]string, len(ds))
		for i, d := range ds {
			parts[i] = fmtDur(d)
		}
		return fmt.Sprintf("durations of %s = [%s]", act, strings.Join(parts, " ")), nil
	case strings.HasPrefix(join, "duration of "):
		act := strings.TrimPrefix(join, "duration of ")
		d, err := q.LastDuration(act)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("duration of %s (last execution) = %s", act, fmtDur(d)), nil
	case strings.HasPrefix(join, "estimate of "):
		act := strings.TrimPrefix(join, "estimate of ")
		in, err := q.Estimate(act)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("estimate of %s = %s (%s), planned %s .. %s",
			act, fmtDur(in.EstWork), in.Basis,
			in.PlannedStart.Format("2006-01-02 15:04"),
			in.PlannedFinish.Format("2006-01-02 15:04")), nil
	case strings.HasPrefix(join, "slip of "):
		rest := strings.TrimPrefix(join, "slip of ")
		act, now, err := splitAt(rest)
		if err != nil {
			return "", err
		}
		d, err := q.Slip(act, now)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("slip of %s = %s", act, fmtDur(d)), nil
	case join == "plans":
		c := q.Sched.Reader().Container(sched.PlanContainer)
		if c == nil || len(c.Entries) == 0 {
			return "no plans exist", nil
		}
		var parts []string
		for _, e := range c.Entries {
			var p sched.Plan
			if err := e.Decode(&p); err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("v%d(targets %s, finish %s)",
				p.Version, strings.Join(p.Targets, "+"), p.Finish.Format("2006-01-02")))
		}
		return "plans: " + strings.Join(parts, " "), nil
	case join == "milestones":
		_, p, err := q.Sched.CurrentPlan()
		if err != nil {
			return "", err
		}
		if p == nil {
			return "", fmt.Errorf("query: no plan exists")
		}
		report, err := q.Sched.MilestoneReport(p)
		if err != nil {
			return "", err
		}
		if len(report) == 0 {
			return "no milestones set", nil
		}
		var parts []string
		for _, m := range report {
			state := "pending"
			if m.Achieved {
				state = "achieved"
			}
			parts = append(parts, fmt.Sprintf("%s(%s, margin %s)", m.Name, state, fmtDur(m.Margin)))
		}
		return "milestones: " + strings.Join(parts, " "), nil
	case join == "lineage":
		chain, err := q.Lineage()
		if err != nil {
			return "", err
		}
		return "plan lineage: " + strings.Join(chain, " -> "), nil
	case join == "load":
		load, err := q.ResourceLoad()
		if err != nil {
			return "", err
		}
		if len(load) == 0 {
			return "no resources assigned", nil
		}
		names := make([]string, 0, len(load))
		for r := range load {
			names = append(names, r)
		}
		sort.Strings(names)
		var parts []string
		for _, r := range names {
			parts = append(parts, fmt.Sprintf("%s=%s", r, fmtDur(load[r])))
		}
		return "planned load: " + strings.Join(parts, " "), nil
	case strings.HasPrefix(join, "runs of "):
		act := strings.TrimPrefix(join, "runs of ")
		n, err := q.Iterations(act)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("runs of %s = %d", act, n), nil
	default:
		return "", fmt.Errorf("query: unrecognized query %q", join)
	}
}

// splitAt separates "<activity> at <RFC3339>" into its parts.
func splitAt(s string) (string, time.Time, error) {
	i := strings.LastIndex(s, " at ")
	if i < 0 {
		return "", time.Time{}, fmt.Errorf("query: slip query needs 'at <RFC3339 time>'")
	}
	act := strings.TrimSpace(s[:i])
	ts := strings.TrimSpace(s[i+4:])
	now, err := time.Parse(time.RFC3339, ts)
	if err != nil {
		return "", time.Time{}, fmt.Errorf("query: bad time %q: %w", ts, err)
	}
	return act, now, nil
}

// fmtDur renders a working duration tersely (e.g. "12h", "1.5h").
func fmtDur(d time.Duration) string {
	h := d.Hours()
	if h == float64(int64(h)) {
		return strconv.FormatInt(int64(h), 10) + "h"
	}
	return strconv.FormatFloat(h, 'f', 1, 64) + "h"
}
