package tools

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sim(t *testing.T, class, inst string, p Profile) *SimTool {
	t.Helper()
	s, err := NewSim(class, inst, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var basic = Profile{Base: 4 * time.Hour, Jitter: 0.25, MeanIterations: 2}

func TestNewSimValidation(t *testing.T) {
	cases := []struct {
		name        string
		class, inst string
		p           Profile
	}{
		{"empty class", "", "x", basic},
		{"empty instance", "sim", "", basic},
		{"zero base", "sim", "x", Profile{Base: 0, MeanIterations: 1}},
		{"negative jitter", "sim", "x", Profile{Base: time.Hour, Jitter: -0.1, MeanIterations: 1}},
		{"jitter one", "sim", "x", Profile{Base: time.Hour, Jitter: 1, MeanIterations: 1}},
		{"mean iterations zero", "sim", "x", Profile{Base: time.Hour, MeanIterations: 0}},
		{"failure rate one", "sim", "x", Profile{Base: time.Hour, MeanIterations: 1, FailureRate: 1}},
	}
	for _, tc := range cases {
		if _, err := NewSim(tc.class, tc.inst, tc.p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := sim(t, "simulator", "hspice#1", basic)
	in := map[string][]byte{"netlist": []byte("v1"), "stimuli": []byte("s")}
	r1, err1 := a.Run(in, 1)
	r2, err2 := a.Run(in, 1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Work != r2.Work || r1.GoalMet != r2.GoalMet || string(r1.Output) != string(r2.Output) {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestRunVariesByIterationAndInput(t *testing.T) {
	a := sim(t, "simulator", "hspice#1", basic)
	in1 := map[string][]byte{"netlist": []byte("v1")}
	in2 := map[string][]byte{"netlist": []byte("v2")}
	r1, _ := a.Run(in1, 1)
	r2, _ := a.Run(in1, 2)
	r3, _ := a.Run(in2, 1)
	if r1.Work == r2.Work && string(r1.Output) == string(r2.Output) {
		t.Fatal("iteration did not change outcome")
	}
	if string(r1.Output) == string(r3.Output) {
		t.Fatal("input change did not change output")
	}
}

func TestRunWorkWithinJitterBounds(t *testing.T) {
	a := sim(t, "simulator", "hspice#1", basic)
	lo := time.Duration(float64(basic.Base) * (1 - basic.Jitter))
	hi := time.Duration(float64(basic.Base) * (1 + basic.Jitter))
	for i := 1; i <= 50; i++ {
		r, err := a.Run(map[string][]byte{"n": {byte(i)}}, i)
		if err != nil {
			continue
		}
		if r.Work < lo || r.Work > hi {
			t.Fatalf("iteration %d work %v outside [%v,%v]", i, r.Work, lo, hi)
		}
	}
}

func TestRunIterationValidation(t *testing.T) {
	a := sim(t, "simulator", "s#1", basic)
	if _, err := a.Run(nil, 0); err == nil {
		t.Fatal("iteration 0 accepted")
	}
}

func TestGoalAlwaysMetByIterationBound(t *testing.T) {
	p := Profile{Base: time.Hour, Jitter: 0, MeanIterations: 3}
	a := sim(t, "router", "r#1", p)
	// Iteration 6 = 2*MeanIterations must always meet goals.
	r, err := a.Run(map[string][]byte{"x": []byte("y")}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.GoalMet {
		t.Fatal("safeguard iteration did not meet goal")
	}
}

func TestMeanIterationsRoughlyHonored(t *testing.T) {
	p := Profile{Base: time.Hour, Jitter: 0, MeanIterations: 2}
	a := sim(t, "simulator", "s#1", p)
	met := 0
	const n = 400
	for i := 0; i < n; i++ {
		r, err := a.Run(map[string][]byte{"in": {byte(i), byte(i >> 8)}}, 1)
		if err != nil {
			continue
		}
		if r.GoalMet {
			met++
		}
	}
	frac := float64(met) / n
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("first-iteration goal rate %.2f, want ~0.5", frac)
	}
}

func TestFailureRate(t *testing.T) {
	p := Profile{Base: time.Hour, Jitter: 0, MeanIterations: 1, FailureRate: 0.5}
	a := sim(t, "router", "r#1", p)
	fails := 0
	const n = 300
	for i := 0; i < n; i++ {
		_, err := a.Run(map[string][]byte{"in": {byte(i), byte(i >> 8)}}, 1)
		if err != nil {
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("failure rate %.2f, want ~0.5", frac)
	}
}

func TestFailedRunConsumesTime(t *testing.T) {
	p := Profile{Base: time.Hour, Jitter: 0, MeanIterations: 1, FailureRate: 0.999}
	a := sim(t, "router", "r#1", p)
	r, err := a.Run(map[string][]byte{"in": []byte("x")}, 1)
	if err == nil {
		t.Skip("improbable success")
	}
	if r.Work != time.Hour {
		t.Fatalf("failed run work = %v, want 1h", r.Work)
	}
	if r.Output != nil {
		t.Fatal("failed run produced output")
	}
}

func TestOutputMentionsProvenance(t *testing.T) {
	a := sim(t, "simulator", "hspice#1", basic)
	r, err := a.Run(map[string][]byte{"netlist": []byte("v1")}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := string(r.Output)
	for _, want := range []string{"hspice#1", "simulator", "iteration 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	tool := sim(t, "editor", "e#1", basic)
	if err := r.Bind("Create", tool); err != nil {
		t.Fatal(err)
	}
	if got := r.For("Create"); got != Tool(tool) {
		t.Fatalf("For = %v", got)
	}
	if r.For("Nope") != nil {
		t.Fatal("unbound activity returned tool")
	}
	if err := r.Bind("", tool); err == nil {
		t.Fatal("empty activity accepted")
	}
	if err := r.Bind("Create", nil); err == nil {
		t.Fatal("nil tool accepted")
	}
	// Rebinding replaces.
	tool2 := sim(t, "editor", "e#2", basic)
	r.Bind("Create", tool2)
	if got := r.For("Create"); got.Instance() != "e#2" {
		t.Fatalf("rebind ignored: %v", got.Instance())
	}
	if acts := r.Activities(); len(acts) != 1 || acts[0] != "Create" {
		t.Fatalf("Activities = %v", acts)
	}
}

func TestStandardProfilesValid(t *testing.T) {
	for class, p := range StandardProfiles() {
		if _, err := NewSim(class, class+"#std", p); err != nil {
			t.Errorf("standard profile %s invalid: %v", class, err)
		}
	}
}

func TestDefaultFor(t *testing.T) {
	known, err := DefaultFor("simulator", "s#1")
	if err != nil || known.Profile().Base != 3*time.Hour {
		t.Fatalf("DefaultFor known = %+v, %v", known, err)
	}
	unknown, err := DefaultFor("exotic", "x#1")
	if err != nil || unknown.Profile().Base != 4*time.Hour {
		t.Fatalf("DefaultFor unknown = %+v, %v", unknown, err)
	}
}

// Property: Run never produces work outside jitter bounds nor an empty
// output on success, for arbitrary inputs.
func TestRunBoundsProperty(t *testing.T) {
	a := sim(t, "simulator", "p#1", basic)
	lo := time.Duration(float64(basic.Base) * (1 - basic.Jitter))
	hi := time.Duration(float64(basic.Base) * (1 + basic.Jitter))
	f := func(data []byte, iter uint8) bool {
		it := int(iter%10) + 1
		r, err := a.Run(map[string][]byte{"in": data}, it)
		if err != nil {
			return r.Work >= lo && r.Work <= hi
		}
		return r.Work >= lo && r.Work <= hi && len(r.Output) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"typical", Profile{Base: time.Hour, Jitter: 0.3, MeanIterations: 2, FailureRate: 0.1}, true},
		{"zero jitter and failures", Profile{Base: time.Hour, MeanIterations: 1}, true},
		{"near-one bounds", Profile{Base: time.Hour, Jitter: 0.999, MeanIterations: 1, FailureRate: 0.999}, true},
		{"zero base", Profile{MeanIterations: 1}, false},
		{"negative base", Profile{Base: -time.Hour, MeanIterations: 1}, false},
		{"jitter below zero", Profile{Base: time.Hour, Jitter: -0.01, MeanIterations: 1}, false},
		{"jitter at one", Profile{Base: time.Hour, Jitter: 1, MeanIterations: 1}, false},
		{"jitter NaN", Profile{Base: time.Hour, Jitter: nan, MeanIterations: 1}, false},
		{"failure below zero", Profile{Base: time.Hour, MeanIterations: 1, FailureRate: -0.01}, false},
		{"failure at one", Profile{Base: time.Hour, MeanIterations: 1, FailureRate: 1}, false},
		{"failure NaN", Profile{Base: time.Hour, MeanIterations: 1, FailureRate: nan}, false},
		{"mean below one", Profile{Base: time.Hour, MeanIterations: 0.9}, false},
		{"mean NaN", Profile{Base: time.Hour, MeanIterations: nan}, false},
		{"mean Inf", Profile{Base: time.Hour, MeanIterations: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestRegistryAlternatesAndRotation(t *testing.T) {
	r := NewRegistry()
	a := sim(t, "editor", "e#1", basic)
	b := sim(t, "editor", "e#2", basic)
	c := sim(t, "editor", "e#3", basic)

	// AddAlternate on an unbound activity acts as Bind.
	if err := r.AddAlternate("Create", a); err != nil {
		t.Fatal(err)
	}
	if r.For("Create") != Tool(a) {
		t.Fatal("first alternate did not become active")
	}
	if err := r.AddAlternate("Create", b); err != nil {
		t.Fatal(err)
	}
	if err := r.AddAlternate("Create", c); err != nil {
		t.Fatal(err)
	}
	// Duplicate instance refs are rejected (failover to an identical tool
	// would retry the identical failure).
	if err := r.AddAlternate("Create", sim(t, "editor", "e#2", basic)); err == nil {
		t.Fatal("duplicate instance accepted as alternate")
	}
	if err := r.AddAlternate("Create", nil); err == nil {
		t.Fatal("nil alternate accepted")
	}
	got := r.Bound("Create")
	if len(got) != 3 || got[0].Instance() != "e#1" || got[1].Instance() != "e#2" || got[2].Instance() != "e#3" {
		t.Fatalf("Bound order wrong: %v", got)
	}

	// Rotation walks the ring and Bound follows the active instance.
	next, rotated := r.Rotate("Create")
	if !rotated || next.Instance() != "e#2" {
		t.Fatalf("Rotate -> %v, %v", next, rotated)
	}
	if bound := r.Bound("Create"); bound[0].Instance() != "e#2" || bound[2].Instance() != "e#1" {
		t.Fatalf("Bound after rotate: %v", bound)
	}
	r.Rotate("Create")
	next, _ = r.Rotate("Create")
	if next.Instance() != "e#1" {
		t.Fatalf("ring did not wrap: %v", next.Instance())
	}
	// Single-instance and unbound activities do not rotate.
	r.Bind("Solo", a)
	if tl, rotated := r.Rotate("Solo"); rotated || tl != Tool(a) {
		t.Fatal("single binding rotated")
	}
	if _, rotated := r.Rotate("Nope"); rotated {
		t.Fatal("unbound activity rotated")
	}
	// Bind replaces the whole ring, alternates included.
	r.Bind("Create", c)
	if bound := r.Bound("Create"); len(bound) != 1 || bound[0].Instance() != "e#3" {
		t.Fatalf("Bind did not replace alternates: %v", bound)
	}
}

func TestRegistryCloneIndependentAlternates(t *testing.T) {
	r := NewRegistry()
	r.Bind("Create", sim(t, "editor", "e#1", basic))
	r.AddAlternate("Create", sim(t, "editor", "e#2", basic))
	c := r.Clone()
	// Rotating and extending the clone leaves the original alone.
	c.Rotate("Create")
	c.AddAlternate("Create", sim(t, "editor", "e#3", basic))
	if r.For("Create").Instance() != "e#1" {
		t.Fatal("clone rotation leaked into original")
	}
	if len(r.Bound("Create")) != 2 {
		t.Fatal("clone alternate leaked into original")
	}
	if c.For("Create").Instance() != "e#2" || len(c.Bound("Create")) != 3 {
		t.Fatal("clone state wrong")
	}
}
