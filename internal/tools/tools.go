// Package tools provides simulated CAD tools.
//
// The paper's Hercules installation drove real Mentor Graphics tools; this
// reproduction substitutes deterministic pseudo-tools (DESIGN.md §5). Each
// simulated tool consumes design data bytes, produces derived output bytes,
// and reports how much *working time* the application took on the virtual
// clock. Runtimes, goal attainment (does the designer accept this version
// or iterate?), and failures are drawn from a PRNG seeded by the tool
// instance and iteration number, so every experiment is reproducible while
// still exercising the iterate-until-goals-met behaviour the schedule
// tracker must handle.
package tools

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Result is the outcome of one tool application.
type Result struct {
	// Output is the produced design data.
	Output []byte
	// Work is the working time the application consumed.
	Work time.Duration
	// GoalMet reports whether the produced version meets the design goals;
	// if false the designer will iterate the activity.
	GoalMet bool
}

// Tool is a runnable tool instance bound to an activity.
type Tool interface {
	// Instance is the unique tool instance reference, e.g. "hspice#1".
	Instance() string
	// Class is the schema tool class, e.g. "simulator".
	Class() string
	// Run applies the tool to the named inputs for the given 1-based
	// iteration. It returns an error to model a failed run (crash, license
	// loss); failed runs consume time but produce no data.
	Run(inputs map[string][]byte, iteration int) (Result, error)
}

// Profile parameterizes a simulated tool.
type Profile struct {
	// Base is the nominal working time of one application.
	Base time.Duration
	// Jitter is the relative runtime spread: actual runtime is uniform in
	// [Base*(1-Jitter), Base*(1+Jitter)]. Must be in [0, 1).
	Jitter float64
	// MeanIterations is the expected number of applications before the
	// design goals are met (≥ 1). Goal attainment per iteration has
	// probability 1/MeanIterations, with the final safeguard that
	// iteration 2*MeanIterations always succeeds.
	MeanIterations float64
	// FailureRate is the probability that an application fails outright.
	FailureRate float64
}

// Validate rejects malformed profiles at construction time. Jitter and
// FailureRate must lie in [0,1) and be actual numbers — NaN compares
// false against every bound, so without the explicit checks a NaN
// profile slips through and silently misbehaves (NaN work durations,
// never-failing failure draws).
func (p Profile) Validate() error {
	if p.Base <= 0 {
		return fmt.Errorf("tools: profile base %v must be positive", p.Base)
	}
	if math.IsNaN(p.Jitter) || p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("tools: profile jitter %v out of [0,1)", p.Jitter)
	}
	if math.IsNaN(p.MeanIterations) || math.IsInf(p.MeanIterations, 0) || p.MeanIterations < 1 {
		return fmt.Errorf("tools: mean iterations %v must be >= 1", p.MeanIterations)
	}
	if math.IsNaN(p.FailureRate) || p.FailureRate < 0 || p.FailureRate >= 1 {
		return fmt.Errorf("tools: failure rate %v out of [0,1)", p.FailureRate)
	}
	return nil
}

// SimTool is a deterministic simulated tool.
type SimTool struct {
	instance string
	class    string
	profile  Profile
	seed     uint64
}

var _ Tool = (*SimTool)(nil)

// NewSim builds a simulated tool instance. The seed namespace is the
// instance name, so distinct instances of the same class behave
// differently but reproducibly.
func NewSim(class, instance string, p Profile) (*SimTool, error) {
	if class == "" || instance == "" {
		return nil, fmt.Errorf("tools: class and instance must be non-empty")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(instance))
	return &SimTool{instance: instance, class: class, profile: p, seed: h.Sum64()}, nil
}

// Instance implements Tool.
func (t *SimTool) Instance() string { return t.instance }

// Class implements Tool.
func (t *SimTool) Class() string { return t.class }

// Profile returns the tool's simulation parameters.
func (t *SimTool) Profile() Profile { return t.profile }

// rng returns the deterministic PRNG for one application: it depends on
// the tool identity, the iteration, and the input content, so re-running
// the same application reproduces the same result.
func (t *SimTool) rng(inputs map[string][]byte, iteration int) *rand.Rand {
	h := fnv.New64a()
	var keys []string
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write(inputs[k])
		h.Write([]byte{0})
	}
	seed := t.seed ^ h.Sum64() ^ (uint64(iteration) * 0x9e3779b97f4a7c15)
	return rand.New(rand.NewSource(int64(seed)))
}

// Run implements Tool.
func (t *SimTool) Run(inputs map[string][]byte, iteration int) (Result, error) {
	if iteration < 1 {
		return Result{}, fmt.Errorf("tools: iteration %d must be >= 1", iteration)
	}
	rng := t.rng(inputs, iteration)
	spread := 1 + t.profile.Jitter*(2*rng.Float64()-1)
	work := time.Duration(float64(t.profile.Base) * spread)
	if rng.Float64() < t.profile.FailureRate {
		return Result{Work: work}, fmt.Errorf("tools: %s failed on iteration %d", t.instance, iteration)
	}
	goalMet := rng.Float64() < 1/t.profile.MeanIterations ||
		float64(iteration) >= 2*t.profile.MeanIterations
	out := t.synthesize(inputs, iteration, rng)
	return Result{Output: out, Work: work, GoalMet: goalMet}, nil
}

// synthesize derives output design data from the inputs: a deterministic
// text artifact whose content reflects the tool, iteration, and an input
// digest — enough to give Level 4 distinct, traceable versions.
func (t *SimTool) synthesize(inputs map[string][]byte, iteration int, rng *rand.Rand) []byte {
	h := fnv.New64a()
	var keys []string
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write(inputs[k])
	}
	return []byte(fmt.Sprintf("# produced by %s (class %s)\n# iteration %d\n# input digest %016x\n# quality %.4f\n",
		t.instance, t.class, iteration, h.Sum64(), rng.Float64()))
}

// Registry maps activities to bound tool instances for an execution
// session: the "binding tools to tasks" half of task preparation.
//
// An activity may carry several interchangeable instances (a simulator
// farm, two license pools): the first is active, the rest are failover
// alternates the engine rotates to when runs keep failing.
//
// A Registry is safe for concurrent use: the serving layer reads
// bindings (For, Bound) while an executing run may Rotate to an
// alternate or rebind after a fault.
type Registry struct {
	mu         sync.RWMutex
	byActivity map[string]*binding
}

// binding is one activity's instances; instances[active] runs next.
type binding struct {
	instances []Tool
	active    int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byActivity: make(map[string]*binding)} }

// Bind assigns a tool instance to an activity, replacing any previous
// bindings including alternates (tools "are not tied to specific tasks"
// — rebinding is normal).
func (r *Registry) Bind(activity string, t Tool) error {
	if activity == "" {
		return fmt.Errorf("tools: empty activity")
	}
	if t == nil {
		return fmt.Errorf("tools: nil tool for activity %q", activity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byActivity[activity] = &binding{instances: []Tool{t}}
	return nil
}

// AddAlternate appends a failover instance for an activity. The first
// bound instance stays active; alternates run only after Rotate. Binding
// the same instance ref twice is rejected — failover to an identical
// tool would retry the identical failure.
func (r *Registry) AddAlternate(activity string, t Tool) error {
	if t == nil {
		return fmt.Errorf("tools: nil tool for activity %q", activity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.byActivity[activity]
	if b == nil {
		if activity == "" {
			return fmt.Errorf("tools: empty activity")
		}
		r.byActivity[activity] = &binding{instances: []Tool{t}}
		return nil
	}
	for _, have := range b.instances {
		if have.Instance() == t.Instance() {
			return fmt.Errorf("tools: instance %s already bound to %q", t.Instance(), activity)
		}
	}
	b.instances = append(b.instances, t)
	return nil
}

// For returns the active tool bound to an activity, or nil.
func (r *Registry) For(activity string) Tool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b := r.byActivity[activity]
	if b == nil {
		return nil
	}
	return b.instances[b.active]
}

// Bound returns all instances bound to an activity, active first in
// rotation order.
func (r *Registry) Bound(activity string) []Tool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b := r.byActivity[activity]
	if b == nil {
		return nil
	}
	out := make([]Tool, 0, len(b.instances))
	for i := range b.instances {
		out = append(out, b.instances[(b.active+i)%len(b.instances)])
	}
	return out
}

// Rotate advances an activity's binding to its next alternate and
// returns the newly active tool. With fewer than two instances it
// reports rotated=false and leaves the binding alone.
func (r *Registry) Rotate(activity string) (t Tool, rotated bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.byActivity[activity]
	if b == nil {
		return nil, false
	}
	if len(b.instances) < 2 {
		return b.instances[b.active], false
	}
	b.active = (b.active + 1) % len(b.instances)
	return b.instances[b.active], true
}

// Clone returns an independent registry with the same bindings. Tool
// instances are shared (they are stateless); rebinding in the clone never
// affects the original — what a forked project needs to explore
// alternative tool profiles.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for a, b := range r.byActivity {
		c.byActivity[a] = &binding{
			instances: append([]Tool(nil), b.instances...),
			active:    b.active,
		}
	}
	return c
}

// Activities returns the bound activities, sorted.
func (r *Registry) Activities() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byActivity))
	for a := range r.byActivity {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// StandardProfiles returns representative profiles for the CAD tool
// classes used across the examples and benchmarks. Times are working time
// on a designer's calendar.
func StandardProfiles() map[string]Profile {
	h := time.Hour
	return map[string]Profile{
		"editor":      {Base: 6 * h, Jitter: 0.40, MeanIterations: 1.6},
		"simulator":   {Base: 3 * h, Jitter: 0.30, MeanIterations: 2.2},
		"synthesizer": {Base: 8 * h, Jitter: 0.25, MeanIterations: 1.8},
		"planner":     {Base: 5 * h, Jitter: 0.35, MeanIterations: 1.4},
		"router":      {Base: 12 * h, Jitter: 0.30, MeanIterations: 2.0},
		"checker":     {Base: 2 * h, Jitter: 0.20, MeanIterations: 1.3},
		"sta":         {Base: 3 * h, Jitter: 0.20, MeanIterations: 1.5},
		"extractor":   {Base: 4 * h, Jitter: 0.25, MeanIterations: 1.2},
		"lvs":         {Base: 2 * h, Jitter: 0.20, MeanIterations: 1.3},
	}
}

// DefaultFor builds a simulated instance for a tool class, using its
// standard profile when known and a generic profile otherwise.
func DefaultFor(class, instance string) (*SimTool, error) {
	p, ok := StandardProfiles()[class]
	if !ok {
		p = Profile{Base: 4 * time.Hour, Jitter: 0.3, MeanIterations: 1.7}
	}
	return NewSim(class, instance, p)
}
