// Deterministic per-activity random streams. Each (shard, activity)
// pair of a simulation owns one splitmix64 generator whose initial
// state is derived from (Config.Seed, shard index, activity name)
// alone, so the sample sequence an activity draws within a shard is a
// pure function of the configuration — independent of how many workers
// execute the shards, in what order, and crucially independent of the
// *other* activities in the model. That last property is what makes
// subtree memoization exact: an activity's finish-time samples depend
// only on its own predecessor closure (the subtree fingerprint), never
// on unrelated activities sharing the run, so cached samples compose
// bit-identically with freshly drawn ones.
package monte

// rng is a splitmix64 stream: the state advances by a fixed odd
// constant (Weyl sequence) and the output is a bijective hash of the
// state. It is far cheaper than math/rand's generator and more than
// adequate statistically for Monte-Carlo sampling.
type rng uint64

// golden is 2^64 / phi, the canonical splitmix64 gamma.
const golden = 0x9e3779b97f4a7c15

// newActivityRNG derives the stream for one activity within one shard.
// The shard index and the activity's stream key (a hash of its name)
// are folded into the seed through hash rounds so that adjacent seeds,
// adjacent shards, and similarly named activities all land in
// decorrelated states.
func newActivityRNG(seed int64, shard int, streamKey uint64) rng {
	h := mix64(mix64(uint64(seed)) + golden*uint64(shard+1))
	return rng(mix64(h ^ streamKey))
}

// next returns the stream's next 64 uniform bits.
func (r *rng) next() uint64 {
	*r += golden
	return mix64(uint64(*r))
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
