// Deterministic per-shard random streams. Each shard of a simulation
// owns one splitmix64 generator whose initial state is derived from
// (Config.Seed, shard index) alone, so the sample sequence a shard
// draws is a pure function of the configuration — independent of how
// many workers execute the shards or in what order. That is the whole
// determinism guarantee: bit-identical results for any worker count.
package monte

// rng is a splitmix64 stream: the state advances by a fixed odd
// constant (Weyl sequence) and the output is a bijective hash of the
// state. It is far cheaper than math/rand's generator and more than
// adequate statistically for Monte-Carlo sampling.
type rng uint64

// golden is 2^64 / phi, the canonical splitmix64 gamma.
const golden = 0x9e3779b97f4a7c15

// newShardRNG derives the stream for one shard. The shard index is
// folded into the seed through two hash rounds so that adjacent seeds
// and adjacent shards land in decorrelated states.
func newShardRNG(seed int64, shard int) rng {
	r := rng(mix64(mix64(uint64(seed)) + golden*uint64(shard+1)))
	return r
}

// next returns the stream's next 64 uniform bits.
func (r *rng) next() uint64 {
	*r += golden
	return mix64(uint64(*r))
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
