package monte

import (
	"math"
	"sort"
	"time"
)

// Sketch is a deterministic, mergeable quantile sketch over project
// spans: a fixed-boundary histogram whose bucket edges grow
// geometrically between a model-derived lower and upper bound. Because
// the boundaries are fixed up front from the model alone (never from
// the data), per-shard sketches merge by plain counter addition, which
// commutes — so sketch-mode results keep the engine's bit-identical
// determinism for any worker count. The price is bounded quantile
// error instead of exactness; see the versioned contract below.
//
// Determinism contract, version 1 (SketchVersion):
//   - Bucket boundaries are a pure function of (model, SketchBuckets):
//     K log-spaced edges between lo = max over activities of Min (a
//     valid lower bound on any project span) and hi = Σ over activities
//     of iterationCap×Max (a valid upper bound).
//   - Quantile estimates are the upper edge of the bucket holding the
//     nearest rank, clamped to the exact observed [min, max]. The
//     estimate's relative error versus the exact sorted-trials quantile
//     is at most (hi/lo)^(1/K) − 1, plus 1ns of integer rounding.
//   - Quantile(0) and Quantile(1) are the exact observed extremes;
//     Mean is computed from the exact running sum (float64), not from
//     bucket midpoints.
//   - ProbWithin counts whole buckets at or below the target, so it
//     underestimates by at most one bucket's mass and is monotone in
//     the target.
//
// Any change to the boundary formula, the estimate rule, or the rank
// convention bumps SketchVersion.
type Sketch struct {
	bounds []time.Duration // ascending inclusive upper bucket edges
	counts []int64
	n      int64
	sum    float64 // exact sum of observed spans, in ns
	min    time.Duration
	max    time.Duration
	gamma  float64 // per-bucket growth factor (hi/lo)^(1/K)
}

// SketchVersion identifies the sketch determinism contract documented
// on Sketch. Results from different versions must not be compared
// bit-for-bit.
const SketchVersion = 1

// defaultSketchBuckets bounds the relative quantile error at roughly
// (hi/lo)^(1/4096)−1 — under 0.5% even when the model's static bounds
// span nine orders of magnitude — while keeping a sketch at 64KiB of
// counters, mergeable in microseconds.
const defaultSketchBuckets = 4096

// newSketch builds an empty sketch with K log-spaced bucket edges over
// [lo, hi]. The edges are monotonically increasing even when float
// spacing collapses below 1ns (the bottom of the range degrades to
// linear 1ns buckets, which is strictly more accurate).
func newSketch(lo, hi time.Duration, buckets int) *Sketch {
	if buckets <= 0 {
		buckets = defaultSketchBuckets
	}
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	k := float64(buckets)
	logLo := math.Log(float64(lo))
	logRatio := math.Log(float64(hi) / float64(lo))
	bounds := make([]time.Duration, buckets)
	for j := 0; j < buckets; j++ {
		b := time.Duration(math.Ceil(math.Exp(logLo + logRatio*float64(j+1)/k)))
		if j > 0 && b <= bounds[j-1] {
			b = bounds[j-1] + 1
		}
		bounds[j] = b
	}
	if bounds[buckets-1] < hi {
		bounds[buckets-1] = hi
	}
	return &Sketch{
		bounds: bounds,
		counts: make([]int64, buckets),
		gamma:  math.Exp(logRatio / k),
	}
}

// emptyClone returns a fresh zero-count sketch sharing the (immutable)
// boundary table — what each shard accumulates into before the serial
// merge.
func (s *Sketch) emptyClone() *Sketch {
	return &Sketch{
		bounds: s.bounds,
		counts: make([]int64, len(s.counts)),
		gamma:  s.gamma,
	}
}

// observe folds one project span into the sketch.
func (s *Sketch) observe(d time.Duration) {
	if s.n == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.n++
	s.sum += float64(d)
	s.counts[s.bucket(d)]++
}

// bucket returns the index of the bucket whose (prevEdge, edge] range
// holds d, clamping spans outside [lo, hi] into the end buckets.
func (s *Sketch) bucket(d time.Duration) int {
	j := sort.Search(len(s.bounds), func(j int) bool { return s.bounds[j] >= d })
	if j == len(s.bounds) {
		j--
	}
	return j
}

// merge folds another sketch built over the same boundary table into
// this one. Counter addition commutes, but callers merge in shard-index
// order anyway so the float64 running sum is order-deterministic too.
func (s *Sketch) merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	for j, c := range o.counts {
		s.counts[j] += c
	}
}

// Count returns the number of observed trials.
func (s *Sketch) Count() int64 { return s.n }

// Min returns the exact smallest observed span.
func (s *Sketch) Min() time.Duration { return s.min }

// Max returns the exact largest observed span.
func (s *Sketch) Max() time.Duration { return s.max }

// Buckets returns the sketch resolution K.
func (s *Sketch) Buckets() int { return len(s.bounds) }

// Version returns the determinism-contract version (SketchVersion).
func (s *Sketch) Version() int { return SketchVersion }

// RelativeError returns the contract's quantile error bound,
// (hi/lo)^(1/K) − 1.
func (s *Sketch) RelativeError() float64 { return s.gamma - 1 }

// Mean returns the mean observed span, computed from the exact running
// sum (not from bucket edges).
func (s *Sketch) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / float64(s.n))
}

// Quantile estimates the q-quantile (q in [0,1]) using the same
// nearest-rank convention as the exact sorted-trials path, answering
// with the upper edge of the rank's bucket clamped to the observed
// extremes. Estimates are monotone in q.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := int64(math.Round(q * float64(s.n-1)))
	var cum int64
	for j, c := range s.counts {
		cum += c
		if cum > rank {
			est := s.bounds[j]
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// ProbWithin estimates the probability that the project finishes within
// the target span, counting whole buckets at or below the target. The
// estimate never exceeds the exact empirical probability and trails it
// by at most one bucket's mass.
func (s *Sketch) ProbWithin(target time.Duration) float64 {
	if s.n == 0 {
		return 0
	}
	if target >= s.max {
		return 1
	}
	if target < s.min {
		return 0
	}
	var cum int64
	for j, c := range s.counts {
		if s.bounds[j] > target {
			break
		}
		cum += c
	}
	return float64(cum) / float64(s.n)
}
