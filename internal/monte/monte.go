// Package monte implements Monte-Carlo schedule risk analysis: the
// paper's planning-by-simulation (§III) taken statistically. Where a
// single planning pass simulates one execution of the flow with point
// estimates, a Monte-Carlo run samples many executions — activity
// durations drawn from per-activity distributions, iteration counts
// drawn geometrically — and reports the empirical distribution of the
// project finish. It complements the analytic PERT approximation of
// package pert with a distribution-free answer, and exposes per-activity
// criticality (how often each activity lies on the sampled critical
// path).
package monte

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// ActivityModel is the stochastic model of one activity.
type ActivityModel struct {
	Name string
	// Min, Mode, Max parameterize a triangular duration distribution for
	// one iteration of the activity.
	Min, Mode, Max time.Duration
	// MeanIterations is the expected number of iterations until the
	// design goals are met (geometric; >= 1).
	MeanIterations float64
	// Preds are the producing activities that must finish first.
	Preds []string
}

func (a ActivityModel) validate() error {
	if a.Name == "" {
		return fmt.Errorf("monte: activity with empty name")
	}
	if a.Min <= 0 || a.Mode < a.Min || a.Max < a.Mode {
		return fmt.Errorf("monte: activity %q needs 0 < Min <= Mode <= Max (got %v/%v/%v)",
			a.Name, a.Min, a.Mode, a.Max)
	}
	if a.MeanIterations < 1 {
		return fmt.Errorf("monte: activity %q mean iterations %v must be >= 1", a.Name, a.MeanIterations)
	}
	return nil
}

// Config tunes a simulation.
type Config struct {
	// Trials is the number of sampled executions (default 1000).
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
}

// Result is the outcome of a Monte-Carlo run.
type Result struct {
	// Durations holds each trial's project span, sorted ascending.
	Durations []time.Duration
	// Criticality maps each activity to the fraction of trials in which
	// it lay on the critical path.
	Criticality map[string]float64
	// MeanIterObserved maps each activity to the mean sampled iteration
	// count.
	MeanIterObserved map[string]float64
}

// Mean returns the mean project span.
func (r *Result) Mean() time.Duration {
	if len(r.Durations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range r.Durations {
		total += d
	}
	return total / time.Duration(len(r.Durations))
}

// Percentile returns the q-quantile (q in [0,1]) of the project span.
func (r *Result) Percentile(q float64) time.Duration {
	if len(r.Durations) == 0 {
		return 0
	}
	if q <= 0 {
		return r.Durations[0]
	}
	if q >= 1 {
		return r.Durations[len(r.Durations)-1]
	}
	i := int(q * float64(len(r.Durations)-1))
	return r.Durations[i]
}

// ProbWithin returns the empirical probability that the project finishes
// within the target span.
func (r *Result) ProbWithin(target time.Duration) float64 {
	n := sort.Search(len(r.Durations), func(i int) bool {
		return r.Durations[i] > target
	})
	if len(r.Durations) == 0 {
		return 0
	}
	return float64(n) / float64(len(r.Durations))
}

// Simulate runs the Monte-Carlo analysis over the activity network.
func Simulate(acts []ActivityModel, cfg Config) (*Result, error) {
	if len(acts) == 0 {
		return nil, fmt.Errorf("monte: no activities")
	}
	idx := make(map[string]int, len(acts))
	for i, a := range acts {
		if err := a.validate(); err != nil {
			return nil, err
		}
		if _, dup := idx[a.Name]; dup {
			return nil, fmt.Errorf("monte: duplicate activity %q", a.Name)
		}
		idx[a.Name] = i
	}
	order, err := topo(acts, idx)
	if err != nil {
		return nil, err
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := &Result{
		Durations:        make([]time.Duration, 0, cfg.Trials),
		Criticality:      make(map[string]float64, len(acts)),
		MeanIterObserved: make(map[string]float64, len(acts)),
	}
	critCount := make(map[string]int, len(acts))
	iterTotal := make(map[string]int, len(acts))

	finish := make([]time.Duration, len(acts))
	critPred := make([]int, len(acts)) // index of the pred on the longest chain, -1 for none
	for t := 0; t < cfg.Trials; t++ {
		var projectFinish time.Duration
		last := -1
		for _, i := range order {
			a := acts[i]
			var start time.Duration
			critPred[i] = -1
			for _, p := range a.Preds {
				pi := idx[p]
				if finish[pi] > start {
					start = finish[pi]
					critPred[i] = pi
				}
			}
			iters := sampleIterations(rng, a.MeanIterations)
			iterTotal[a.Name] += iters
			var work time.Duration
			for k := 0; k < iters; k++ {
				work += sampleTriangular(rng, a.Min, a.Mode, a.Max)
			}
			finish[i] = start + work
			if finish[i] > projectFinish {
				projectFinish = finish[i]
				last = i
			}
		}
		res.Durations = append(res.Durations, projectFinish)
		// Walk the sampled critical chain backwards.
		for i := last; i >= 0; i = critPred[i] {
			critCount[acts[i].Name]++
		}
	}
	sort.Slice(res.Durations, func(i, j int) bool { return res.Durations[i] < res.Durations[j] })
	for _, a := range acts {
		res.Criticality[a.Name] = float64(critCount[a.Name]) / float64(cfg.Trials)
		res.MeanIterObserved[a.Name] = float64(iterTotal[a.Name]) / float64(cfg.Trials)
	}
	return res, nil
}

// topo orders activity indices producers-first, detecting cycles and
// dangling predecessors.
func topo(acts []ActivityModel, idx map[string]int) ([]int, error) {
	state := make([]int, len(acts))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("monte: precedence cycle through %q", acts[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		for _, p := range acts[i].Preds {
			pi, ok := idx[p]
			if !ok {
				return fmt.Errorf("monte: activity %q references unknown predecessor %q", acts[i].Name, p)
			}
			if pi == i {
				return fmt.Errorf("monte: activity %q is its own predecessor", acts[i].Name)
			}
			if err := visit(pi); err != nil {
				return err
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := range acts {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sampleTriangular draws from a triangular distribution.
func sampleTriangular(rng *rand.Rand, min, mode, max time.Duration) time.Duration {
	a, c, b := float64(min), float64(mode), float64(max)
	if a == b {
		return min
	}
	u := rng.Float64()
	fc := (c - a) / (b - a)
	var x float64
	if u < fc {
		x = a + math.Sqrt(u*(b-a)*(c-a))
	} else {
		x = b - math.Sqrt((1-u)*(b-a)*(b-c))
	}
	return time.Duration(x)
}

// sampleIterations draws a geometric iteration count with the given mean
// (success probability 1/mean), capped at 2×mean like the simulated
// tools.
func sampleIterations(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	limit := int(2 * mean)
	if limit < 1 {
		limit = 1
	}
	n := 1
	for rng.Float64() >= p && n < limit {
		n++
	}
	return n
}
