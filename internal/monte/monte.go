// Package monte implements Monte-Carlo schedule risk analysis: the
// paper's planning-by-simulation (§III) taken statistically. Where a
// single planning pass simulates one execution of the flow with point
// estimates, a Monte-Carlo run samples many executions — activity
// durations drawn from per-activity distributions, iteration counts
// drawn geometrically — and reports the empirical distribution of the
// project finish. It complements the analytic PERT approximation of
// package pert with a distribution-free answer, and exposes per-activity
// criticality (how often each activity lies on the sampled critical
// path).
//
// The engine is incremental: sampling streams are keyed per (seed,
// shard, activity), every activity carries a canonical fingerprint of
// its predecessor closure (fingerprint.go), and an optional Memo caches
// per-subtree trial streams so a re-simulation after an edit re-samples
// only the subtrees whose fingerprint changed — with the composed
// result provably bit-identical to a cold full run. An optional
// mergeable quantile sketch (sketch.go) replaces the sorted Durations
// slice at large trial counts.
package monte

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/par"
)

// ActivityModel is the stochastic model of one activity.
type ActivityModel struct {
	Name string
	// Min, Mode, Max parameterize a triangular duration distribution for
	// one iteration of the activity.
	Min, Mode, Max time.Duration
	// MeanIterations is the expected number of iterations until the
	// design goals are met (geometric; >= 1).
	MeanIterations float64
	// Preds are the producing activities that must finish first.
	Preds []string
}

func errNoActivities() error      { return fmt.Errorf("monte: no activities") }
func errDuplicate(n string) error { return fmt.Errorf("monte: duplicate activity %q", n) }

func (a ActivityModel) validate() error {
	if a.Name == "" {
		return fmt.Errorf("monte: activity with empty name")
	}
	if a.Min <= 0 || a.Mode < a.Min || a.Max < a.Mode {
		return fmt.Errorf("monte: activity %q needs 0 < Min <= Mode <= Max (got %v/%v/%v)",
			a.Name, a.Min, a.Mode, a.Max)
	}
	if a.MeanIterations < 1 {
		return fmt.Errorf("monte: activity %q mean iterations %v must be >= 1", a.Name, a.MeanIterations)
	}
	return nil
}

// Config tunes a simulation.
type Config struct {
	// Trials is the number of sampled executions (default 1000).
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
	// Workers caps how many shards run concurrently: 0 uses all cores
	// (runtime.GOMAXPROCS), 1 forces the serial path. The result is
	// bit-identical for every value — see docs/risk.md.
	Workers int
	// Memo, when non-nil, reuses cached per-subtree trial streams and
	// caches the streams this run samples. Reuse never changes the
	// result — a warm run is bit-identical to a cold one with the same
	// Trials/Seed — it only skips sampling for activities whose subtree
	// fingerprint, seed, and trial count hit the cache.
	Memo *Memo
	// Sketch answers the distribution from a mergeable fixed-boundary
	// quantile sketch instead of materializing and sorting the full
	// Durations slice — the O(1)-memory path for 1M+-trial runs.
	// Sketch-mode results follow their own versioned determinism
	// contract (see Sketch); percentiles carry a bounded relative
	// error instead of being exact.
	Sketch bool
	// SketchBuckets overrides the sketch resolution (default 4096).
	SketchBuckets int
	// Obs, when non-nil, records a simulation span, trial counters,
	// and — for runs whose shards are big enough to amortize the clock
	// stamps — per-shard spans and timings. Instrumentation never
	// affects the sampled results: the RNG streams are untouched, so
	// bit-identical determinism holds with and without it.
	Obs *obs.Obs
	// Parent, when non-nil, nests the simulation's root span under an
	// enclosing span (a request's root, a scenario run) on the same
	// tracer. Nil keeps the simulation a trace root.
	Parent *obs.Span
	// VirtNow anchors the simulation's spans on the virtual clock (a
	// Monte-Carlo run consumes no virtual design time, so its spans are
	// point intervals at VirtNow). Zero is fine for uninstrumented or
	// facade-less use.
	VirtNow time.Time
	// Ctx, when non-nil, cancels the simulation cooperatively: shards
	// stop at iteration-batch boundaries once the context is done and
	// Simulate returns the context's error. Cancellation checks never
	// touch the RNG streams, so an uncancelled run is bit-identical
	// with or without a context. Nil means "never canceled".
	Ctx context.Context
}

// Result is the outcome of a Monte-Carlo run.
type Result struct {
	// Durations holds each trial's project span, sorted ascending. Nil
	// in sketch mode — use the accessor methods, which answer from
	// Sketch instead.
	Durations []time.Duration
	// Sketch holds the project-span distribution when Config.Sketch was
	// set; nil otherwise.
	Sketch *Sketch
	// Criticality maps each activity to the fraction of trials in which
	// it lay on the sampled critical path.
	Criticality map[string]float64
	// MeanIterObserved maps each activity to the mean sampled iteration
	// count.
	MeanIterObserved map[string]float64
	// SampledActivityTrials counts activity×trial samples this run drew
	// fresh; ReusedActivityTrials counts those served from the memo.
	// Sampled+Reused always equals len(acts)×Trials. They describe the
	// run's cost, not its outcome — two runs with different splits still
	// return bit-identical distributions — so they are excluded from
	// serialized results.
	SampledActivityTrials int64 `json:"-"`
	ReusedActivityTrials  int64 `json:"-"`
}

// Mean returns the mean project span. The accumulator is float64: an
// int64 sum of durations overflows around 1M trials of multi-week
// spans, well inside the sketch-mode regime.
func (r *Result) Mean() time.Duration {
	if r.Sketch != nil {
		return r.Sketch.Mean()
	}
	if len(r.Durations) == 0 {
		return 0
	}
	var total float64
	for _, d := range r.Durations {
		total += float64(d)
	}
	return time.Duration(total / float64(len(r.Durations)))
}

// Percentile returns the q-quantile (q in [0,1]) of the project span,
// using nearest-rank rounding over the sorted trials — or, in sketch
// mode, the sketch's bounded-error estimate under the same rank
// convention.
func (r *Result) Percentile(q float64) time.Duration {
	if r.Sketch != nil {
		return r.Sketch.Quantile(q)
	}
	n := len(r.Durations)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return r.Durations[0]
	}
	if q >= 1 {
		return r.Durations[n-1]
	}
	return r.Durations[int(math.Round(q*float64(n-1)))]
}

// ProbWithin returns the empirical probability that the project finishes
// within the target span (sketch mode: a monotone estimate at most one
// bucket's mass below the exact value).
func (r *Result) ProbWithin(target time.Duration) float64 {
	if r.Sketch != nil {
		return r.Sketch.ProbWithin(target)
	}
	if len(r.Durations) == 0 {
		return 0
	}
	n := sort.Search(len(r.Durations), func(i int) bool {
		return r.Durations[i] > target
	})
	return float64(n) / float64(len(r.Durations))
}

// Trials returns the number of sampled executions behind the result.
func (r *Result) Trials() int {
	if r.Sketch != nil {
		return int(r.Sketch.Count())
	}
	return len(r.Durations)
}

// numShards is the fixed shard count of a simulation. Trials are split
// into numShards contiguous blocks, each activity sampling from its own
// per-shard RNG stream, so the set of drawn samples depends only on
// (Trials, Seed) — never on the worker count — and merges commute. 64
// shards keep all cores of any realistic machine busy while staying
// coarse enough that per-shard setup cost is noise.
const numShards = 64

// shardObsMinTrials is the per-shard trial count below which per-shard
// spans and shard timings are skipped (the root span and the trial
// counters still cover the whole run). Stamping the clock twice per
// shard costs a few hundred nanoseconds; a shard below this size does
// only a few microseconds of sampling, so per-shard observation would
// cost more than the 5% overhead budget it is meant to police. From
// this size up the cost amortizes to well under 1%.
const shardObsMinTrials = 256

// shardLabels precomputes the span annotations so the instrumented
// shard loop does no string formatting.
var shardLabels = func() [numShards]string {
	var a [numShards]string
	for i := range a {
		a[i] = "shard=" + strconv.Itoa(i)
	}
	return a
}()

// compiled is an ActivityModel lowered for the trial loop: predecessor
// names resolved to indices, triangular and geometric parameters
// precomputed, no map lookups or string hashing on the hot path.
type compiled struct {
	lo, hi    float64 // triangular min/max in float ns
	fc        float64 // CDF split point (mode-min)/(max-min)
	upWidth   float64 // (max-min)*(mode-min)
	downWidth float64 // (max-min)*(max-mode)
	point     bool    // min == max: constant duration
	p         float64 // geometric success probability 1/mean (0 → single iteration)
	limit     int     // iteration cap 2×mean
	preds     []int32
}

func compileActs(acts []ActivityModel, idx map[string]int) []compiled {
	comp := make([]compiled, len(acts))
	for i, act := range acts {
		a, c, b := float64(act.Min), float64(act.Mode), float64(act.Max)
		ca := compiled{
			lo: a, hi: b, point: a == b,
			limit: 1,
		}
		if !ca.point {
			ca.fc = (c - a) / (b - a)
			ca.upWidth = (b - a) * (c - a)
			ca.downWidth = (b - a) * (b - c)
		}
		if act.MeanIterations > 1 {
			ca.p = 1 / act.MeanIterations
			ca.limit = int(2 * act.MeanIterations)
			if ca.limit < 1 {
				ca.limit = 1
			}
		}
		ca.preds = make([]int32, len(act.Preds))
		for j, p := range act.Preds {
			ca.preds[j] = int32(idx[p])
		}
		comp[i] = ca
	}
	return comp
}

// sketchBounds derives the sketch's static span bounds from the model:
// every project span is at least the largest single-iteration Min (some
// activity must run at least one iteration) and at most the sum of
// every activity's iteration cap times its Max.
func sketchBounds(acts []ActivityModel, comp []compiled) (lo, hi time.Duration) {
	var hiF float64
	for i := range acts {
		if acts[i].Min > lo {
			lo = acts[i].Min
		}
		hiF += float64(comp[i].limit) * float64(acts[i].Max)
	}
	if hiF >= math.MaxInt64 {
		hi = math.MaxInt64
	} else {
		hi = time.Duration(hiF)
	}
	return lo, hi
}

// Simulate runs the Monte-Carlo analysis over the activity network.
//
// Trials are partitioned into a fixed number of shards executed on a
// bounded worker pool (Config.Workers; see internal/par). Each activity
// draws from its own seed-derived per-shard RNG stream, so the returned
// Result is bit-identical for every worker count, including a 1-worker
// serial run — and, when Config.Memo is set, bit-identical whether an
// activity's samples were drawn fresh or reused from the cache.
func Simulate(acts []ActivityModel, cfg Config) (*Result, error) {
	if len(acts) == 0 {
		return nil, errNoActivities()
	}
	idx := make(map[string]int, len(acts))
	for i, a := range acts {
		if err := a.validate(); err != nil {
			return nil, err
		}
		if _, dup := idx[a.Name]; dup {
			return nil, errDuplicate(a.Name)
		}
		idx[a.Name] = i
	}
	order, err := topo(acts, idx)
	if err != nil {
		return nil, err
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1000
	}
	n := len(acts)
	comp := compileActs(acts, idx)
	keys := streamKeys(acts)

	// Probe the memo: cached[i] non-nil means activity i's finish-time
	// samples for this (fingerprint, seed, trials) are served from the
	// cache and its RNG stream is never touched. fresh[i] non-nil means
	// the run materializes the samples it draws so they can seed the
	// cache afterwards (skipped when a stream cannot fit the budget —
	// results are identical either way).
	cached := make([][]time.Duration, n)
	cachedIters := make([]int64, n)
	var fresh [][]time.Duration
	var fps []uint64
	reused := 0
	if cfg.Memo != nil {
		fps = subtreeFingerprints(acts, idx, order)
		for i := range acts {
			if f, it, ok := cfg.Memo.lookup(memoKey{fps[i], cfg.Seed, cfg.Trials}); ok {
				cached[i], cachedIters[i] = f, it
				reused++
			}
		}
		if reused < n && cfg.Memo.admits(cfg.Trials) {
			fresh = make([][]time.Duration, n)
			for i := range acts {
				if cached[i] == nil {
					fresh[i] = make([]time.Duration, cfg.Trials)
				}
			}
		}
	}
	res, err := simulate(acts, cfg, order, comp, keys, cached, cachedIters, fresh, reused)
	if err != nil {
		return nil, err
	}
	if fresh != nil {
		for i := range acts {
			if fresh[i] != nil {
				cfg.Memo.insert(memoKey{fps[i], cfg.Seed, cfg.Trials}, fresh[i], res.iterTotals[i])
			}
		}
	}
	return res.Result, nil
}

// simResult pairs the public Result with the per-activity iteration
// totals the memo insert path needs.
type simResult struct {
	*Result
	iterTotals []int64
}

// simulate is the sharded sampling core shared by the cold and memoized
// paths.
func simulate(acts []ActivityModel, cfg Config, order []int,
	comp []compiled, keys []uint64, cached [][]time.Duration, cachedIters []int64,
	fresh [][]time.Duration, reused int) (*simResult, error) {

	n := len(acts)
	res := &Result{
		Criticality:      make(map[string]float64, n),
		MeanIterObserved: make(map[string]float64, n),
	}
	var proto *Sketch
	if cfg.Sketch {
		lo, hi := sketchBounds(acts, comp)
		proto = newSketch(lo, hi, cfg.SketchBuckets)
		res.Sketch = proto
	} else {
		res.Durations = make([]time.Duration, cfg.Trials)
	}

	// Contiguous trial blocks per shard; the first Trials%numShards
	// shards absorb the remainder.
	offsets := make([]int, numShards+1)
	base, rem := cfg.Trials/numShards, cfg.Trials%numShards
	for s := 0; s < numShards; s++ {
		offsets[s+1] = offsets[s] + base
		if s < rem {
			offsets[s+1]++
		}
	}

	// Observability: one root span for the simulation, plus — when the
	// shards are big enough to amortize the clock stamps — one child
	// span and one shard-seconds sample per shard. All spans are point
	// intervals on the virtual clock (risk analysis consumes no design
	// time). Metric handles are resolved once, outside the shard loop.
	tr := cfg.Obs.Tracer()
	root := tr.Start(cfg.Parent, "monte.simulate", cfg.VirtNow)
	root.SetDetail("trials=" + strconv.Itoa(cfg.Trials))
	// monte_trials_total advances per completed shard (not upfront) so
	// the counter is a live progress signal: a canceled run stops
	// advancing it. Completed runs still account for exactly Trials.
	var mTrials *obs.Counter
	if m := cfg.Obs.Metrics(); m != nil {
		m.Counter("monte_simulations_total").Inc()
		mTrials = m.Counter("monte_trials_total")
		m.Counter("monte_activity_trials_sampled_total").Add(int64(n-reused) * int64(cfg.Trials))
		m.Counter("subtree_reuse_trials_total").Add(int64(reused) * int64(cfg.Trials))
	}
	shardObs := tr != nil && cfg.Trials/numShards >= shardObsMinTrials
	var hShard *obs.Histogram
	if shardObs {
		hShard = cfg.Obs.Metrics().Histogram("monte_shard_seconds", nil)
	}

	// Sinks: activities nothing in the model depends on. Every successor
	// strictly outlives its predecessors (work is always positive), so a
	// trial's project finish — and the first activity attaining it in
	// topo order — is found by scanning sinks alone. Both kernels below
	// exploit this; the results are bit-identical to a scan of every
	// activity.
	hasSucc := make([]bool, n)
	for i := range comp {
		for _, pi := range comp[i].preds {
			hasSucc[pi] = true
		}
	}
	var sinks []int32
	for _, i := range order {
		if !hasSucc[i] {
			sinks = append(sinks, int32(i))
		}
	}
	// Memo-less runs keep finishes in a scalar scratch per trial (best
	// locality); runs that read or fill trial-stream arrays switch to a
	// column kernel where a cached activity costs nothing in the trial
	// loop. Both consume each activity's RNG stream in the same order,
	// so they produce identical results — the incremental property
	// tests pin warm-column against cold-scalar runs.
	columns := reused > 0 || fresh != nil

	// Cooperative cancellation: one cheap shared flag, refreshed by a
	// non-blocking poll of the context at shard starts and every 1024
	// trials. The checks read no RNG state, preserving bit-identity for
	// uncancelled runs.
	var canceled atomic.Bool
	var ctxDone <-chan struct{}
	if cfg.Ctx != nil {
		ctxDone = cfg.Ctx.Done()
	}
	cancelCheck := func() bool {
		if ctxDone == nil {
			return false
		}
		if canceled.Load() {
			return true
		}
		select {
		case <-ctxDone:
			canceled.Store(true)
			return true
		default:
			return false
		}
	}

	critCounts := make([][]int64, numShards)
	iterTotals := make([][]int64, numShards)
	shardSketches := make([]*Sketch, numShards)
	par.New(cfg.Workers).Instrument(cfg.Obs).ForEachCtx(cfg.Ctx, numShards, func(s int) {
		if cancelCheck() {
			return
		}
		var sp *obs.Span
		if shardObs {
			sp = tr.Start(root, "monte.shard", cfg.VirtNow)
			sp.SetDetail(shardLabels[s])
		}
		critCount := make([]int64, n)
		iterTotal := make([]int64, n)
		lo, hi := offsets[s], offsets[s+1]
		block := hi - lo
		var out []time.Duration
		if !cfg.Sketch {
			out = res.Durations[lo:hi]
		}
		var sk *Sketch
		if cfg.Sketch {
			sk = proto.emptyClone()
		}
		if columns {
			// Column kernel: per-activity sampling passes over the
			// shard's trial block. Cached activities contribute their
			// memoized arrays directly; sampled activities read their
			// preds' columns — the composition that makes warm runs
			// bit-identical to cold ones.
			fin := make([][]time.Duration, n)
			for i := 0; i < n; i++ {
				if cached[i] != nil {
					fin[i] = cached[i][lo:hi]
				}
			}
			for _, i := range order {
				if cached[i] != nil {
					continue
				}
				var dst []time.Duration
				if fresh != nil && fresh[i] != nil {
					dst = fresh[i][lo:hi]
				} else {
					dst = make([]time.Duration, block)
				}
				ca := &comp[i]
				r := newActivityRNG(cfg.Seed, s, keys[i])
				total := int64(0)
				for t := 0; t < block; t++ {
					if t&1023 == 0 && cancelCheck() {
						return
					}
					var start time.Duration
					for _, pi := range ca.preds {
						if f := fin[pi][t]; f > start {
							start = f
						}
					}
					iters := ca.sampleIterations(&r)
					total += int64(iters)
					var work time.Duration
					for k := 0; k < iters; k++ {
						work += ca.sampleWork(&r)
					}
					dst[t] = start + work
				}
				iterTotal[i] = total
				fin[i] = dst
			}
			for t := 0; t < block; t++ {
				if t&1023 == 0 && cancelCheck() {
					return
				}
				var pf time.Duration
				last := int32(-1)
				for _, si := range sinks {
					if f := fin[si][t]; f > pf {
						pf = f
						last = si
					}
				}
				if sk != nil {
					sk.observe(pf)
				} else {
					out[t] = pf
				}
				// Walk the sampled critical chain backwards, resolving
				// each step's longest-chain predecessor (first strict
				// maximum over the finish columns) lazily. Criticality is
				// recomputed every run — cached or fresh — because the
				// critical chain crosses subtree boundaries; the walk
				// involves no RNG, so cached subtrees compose exactly.
				for i := last; i >= 0; {
					critCount[i]++
					next := int32(-1)
					var best time.Duration
					for _, pi := range comp[i].preds {
						if f := fin[pi][t]; f > best {
							best = f
							next = pi
						}
					}
					i = next
				}
			}
		} else {
			finish := make([]time.Duration, n)
			rngs := make([]rng, n)
			for i := 0; i < n; i++ {
				rngs[i] = newActivityRNG(cfg.Seed, s, keys[i])
			}
			for t := 0; t < block; t++ {
				if t&1023 == 0 && cancelCheck() {
					return
				}
				var projectFinish time.Duration
				last := int32(-1)
				for _, i := range order {
					ca := &comp[i]
					var start time.Duration
					for _, pi := range ca.preds {
						if finish[pi] > start {
							start = finish[pi]
						}
					}
					r := &rngs[i]
					iters := ca.sampleIterations(r)
					iterTotal[i] += int64(iters)
					var work time.Duration
					for k := 0; k < iters; k++ {
						work += ca.sampleWork(r)
					}
					fin := start + work
					finish[i] = fin
					if fin > projectFinish {
						projectFinish = fin
						last = int32(i)
					}
				}
				if sk != nil {
					sk.observe(projectFinish)
				} else {
					out[t] = projectFinish
				}
				for i := last; i >= 0; {
					critCount[i]++
					next := int32(-1)
					var best time.Duration
					for _, pi := range comp[i].preds {
						if finish[pi] > best {
							best = finish[pi]
							next = pi
						}
					}
					i = next
				}
			}
		}
		mTrials.Add(int64(block))
		critCounts[s] = critCount
		iterTotals[s] = iterTotal
		shardSketches[s] = sk
		if sp != nil {
			hShard.Observe(sp.End(cfg.VirtNow).Seconds())
		}
	})
	root.End(cfg.VirtNow)
	if cancelCheck() {
		return nil, fmt.Errorf("monte: simulation canceled: %w", cfg.Ctx.Err())
	}

	if cfg.Sketch {
		// Merge in shard-index order: counters commute, but the float64
		// running sum stays order-deterministic this way.
		for s := 0; s < numShards; s++ {
			proto.merge(shardSketches[s])
		}
	} else {
		slices.Sort(res.Durations)
	}
	iterTot := make([]int64, n)
	for i, a := range acts {
		var crit int64
		for s := 0; s < numShards; s++ {
			crit += critCounts[s][i]
			iterTot[i] += iterTotals[s][i]
		}
		if cached[i] != nil {
			iterTot[i] = cachedIters[i]
		}
		res.Criticality[a.Name] = float64(crit) / float64(cfg.Trials)
		res.MeanIterObserved[a.Name] = float64(iterTot[i]) / float64(cfg.Trials)
	}
	res.SampledActivityTrials = int64(n-reused) * int64(cfg.Trials)
	res.ReusedActivityTrials = int64(reused) * int64(cfg.Trials)
	return &simResult{Result: res, iterTotals: iterTot}, nil
}

// topo orders activity indices producers-first, detecting cycles and
// dangling predecessors.
func topo(acts []ActivityModel, idx map[string]int) ([]int, error) {
	state := make([]int, len(acts))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("monte: precedence cycle through %q", acts[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		for _, p := range acts[i].Preds {
			pi, ok := idx[p]
			if !ok {
				return fmt.Errorf("monte: activity %q references unknown predecessor %q", acts[i].Name, p)
			}
			if pi == i {
				return fmt.Errorf("monte: activity %q is its own predecessor", acts[i].Name)
			}
			if err := visit(pi); err != nil {
				return err
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := range acts {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sampleWork draws one iteration's duration from the activity's
// triangular distribution via inverse-CDF sampling.
func (ca *compiled) sampleWork(r *rng) time.Duration {
	if ca.point {
		return time.Duration(ca.lo)
	}
	u := r.float64()
	var x float64
	if u < ca.fc {
		x = ca.lo + math.Sqrt(u*ca.upWidth)
	} else {
		x = ca.hi - math.Sqrt((1-u)*ca.downWidth)
	}
	return time.Duration(x)
}

// sampleIterations draws a geometric iteration count with the modelled
// mean (success probability 1/mean), capped at 2×mean like the
// simulated tools.
func (ca *compiled) sampleIterations(r *rng) int {
	if ca.p <= 0 {
		return 1
	}
	n := 1
	for r.float64() >= ca.p && n < ca.limit {
		n++
	}
	return n
}
