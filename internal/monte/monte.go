// Package monte implements Monte-Carlo schedule risk analysis: the
// paper's planning-by-simulation (§III) taken statistically. Where a
// single planning pass simulates one execution of the flow with point
// estimates, a Monte-Carlo run samples many executions — activity
// durations drawn from per-activity distributions, iteration counts
// drawn geometrically — and reports the empirical distribution of the
// project finish. It complements the analytic PERT approximation of
// package pert with a distribution-free answer, and exposes per-activity
// criticality (how often each activity lies on the sampled critical
// path).
package monte

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/par"
)

// ActivityModel is the stochastic model of one activity.
type ActivityModel struct {
	Name string
	// Min, Mode, Max parameterize a triangular duration distribution for
	// one iteration of the activity.
	Min, Mode, Max time.Duration
	// MeanIterations is the expected number of iterations until the
	// design goals are met (geometric; >= 1).
	MeanIterations float64
	// Preds are the producing activities that must finish first.
	Preds []string
}

func (a ActivityModel) validate() error {
	if a.Name == "" {
		return fmt.Errorf("monte: activity with empty name")
	}
	if a.Min <= 0 || a.Mode < a.Min || a.Max < a.Mode {
		return fmt.Errorf("monte: activity %q needs 0 < Min <= Mode <= Max (got %v/%v/%v)",
			a.Name, a.Min, a.Mode, a.Max)
	}
	if a.MeanIterations < 1 {
		return fmt.Errorf("monte: activity %q mean iterations %v must be >= 1", a.Name, a.MeanIterations)
	}
	return nil
}

// Config tunes a simulation.
type Config struct {
	// Trials is the number of sampled executions (default 1000).
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
	// Workers caps how many shards run concurrently: 0 uses all cores
	// (runtime.GOMAXPROCS), 1 forces the serial path. The result is
	// bit-identical for every value — see docs/risk.md.
	Workers int
	// Obs, when non-nil, records a simulation span, trial counters,
	// and — for runs whose shards are big enough to amortize the clock
	// stamps — per-shard spans and timings. Instrumentation never
	// affects the sampled results: the RNG streams are untouched, so
	// bit-identical determinism holds with and without it.
	Obs *obs.Obs
	// VirtNow anchors the simulation's spans on the virtual clock (a
	// Monte-Carlo run consumes no virtual design time, so its spans are
	// point intervals at VirtNow). Zero is fine for uninstrumented or
	// facade-less use.
	VirtNow time.Time
}

// Result is the outcome of a Monte-Carlo run.
type Result struct {
	// Durations holds each trial's project span, sorted ascending.
	Durations []time.Duration
	// Criticality maps each activity to the fraction of trials in which
	// it lay on the critical path.
	Criticality map[string]float64
	// MeanIterObserved maps each activity to the mean sampled iteration
	// count.
	MeanIterObserved map[string]float64
}

// Mean returns the mean project span.
func (r *Result) Mean() time.Duration {
	if len(r.Durations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range r.Durations {
		total += d
	}
	return total / time.Duration(len(r.Durations))
}

// Percentile returns the q-quantile (q in [0,1]) of the project span,
// using nearest-rank rounding over the sorted trials.
func (r *Result) Percentile(q float64) time.Duration {
	n := len(r.Durations)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return r.Durations[0]
	}
	if q >= 1 {
		return r.Durations[n-1]
	}
	return r.Durations[int(math.Round(q*float64(n-1)))]
}

// ProbWithin returns the empirical probability that the project finishes
// within the target span.
func (r *Result) ProbWithin(target time.Duration) float64 {
	if len(r.Durations) == 0 {
		return 0
	}
	n := sort.Search(len(r.Durations), func(i int) bool {
		return r.Durations[i] > target
	})
	return float64(n) / float64(len(r.Durations))
}

// numShards is the fixed shard count of a simulation. Trials are split
// into numShards contiguous blocks, each sampled from its own RNG
// stream, so the set of drawn samples depends only on (Trials, Seed) —
// never on the worker count — and merges commute. 64 shards keep all
// cores of any realistic machine busy while staying coarse enough that
// per-shard setup cost is noise.
const numShards = 64

// shardObsMinTrials is the per-shard trial count below which per-shard
// spans and shard timings are skipped (the root span and the trial
// counters still cover the whole run). Stamping the clock twice per
// shard costs a few hundred nanoseconds; a shard below this size does
// only a few microseconds of sampling, so per-shard observation would
// cost more than the 5% overhead budget it is meant to police. From
// this size up the cost amortizes to well under 1%.
const shardObsMinTrials = 256

// shardLabels precomputes the span annotations so the instrumented
// shard loop does no string formatting.
var shardLabels = func() [numShards]string {
	var a [numShards]string
	for i := range a {
		a[i] = "shard=" + strconv.Itoa(i)
	}
	return a
}()

// compiled is an ActivityModel lowered for the trial loop: predecessor
// names resolved to indices, triangular and geometric parameters
// precomputed, no map lookups or string hashing on the hot path.
type compiled struct {
	lo, hi    float64 // triangular min/max in float ns
	fc        float64 // CDF split point (mode-min)/(max-min)
	upWidth   float64 // (max-min)*(mode-min)
	downWidth float64 // (max-min)*(max-mode)
	point     bool    // min == max: constant duration
	p         float64 // geometric success probability 1/mean (0 → single iteration)
	limit     int     // iteration cap 2×mean
	preds     []int32
}

func compileActs(acts []ActivityModel, idx map[string]int) []compiled {
	comp := make([]compiled, len(acts))
	for i, act := range acts {
		a, c, b := float64(act.Min), float64(act.Mode), float64(act.Max)
		ca := compiled{
			lo: a, hi: b, point: a == b,
			limit: 1,
		}
		if !ca.point {
			ca.fc = (c - a) / (b - a)
			ca.upWidth = (b - a) * (c - a)
			ca.downWidth = (b - a) * (b - c)
		}
		if act.MeanIterations > 1 {
			ca.p = 1 / act.MeanIterations
			ca.limit = int(2 * act.MeanIterations)
			if ca.limit < 1 {
				ca.limit = 1
			}
		}
		ca.preds = make([]int32, len(act.Preds))
		for j, p := range act.Preds {
			ca.preds[j] = int32(idx[p])
		}
		comp[i] = ca
	}
	return comp
}

// Simulate runs the Monte-Carlo analysis over the activity network.
//
// Trials are partitioned into a fixed number of shards executed on a
// bounded worker pool (Config.Workers; see internal/par). Each shard
// draws from its own seed-derived RNG stream, so the returned Result is
// bit-identical for every worker count, including a 1-worker serial
// run.
func Simulate(acts []ActivityModel, cfg Config) (*Result, error) {
	if len(acts) == 0 {
		return nil, fmt.Errorf("monte: no activities")
	}
	idx := make(map[string]int, len(acts))
	for i, a := range acts {
		if err := a.validate(); err != nil {
			return nil, err
		}
		if _, dup := idx[a.Name]; dup {
			return nil, fmt.Errorf("monte: duplicate activity %q", a.Name)
		}
		idx[a.Name] = i
	}
	order, err := topo(acts, idx)
	if err != nil {
		return nil, err
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1000
	}
	comp := compileActs(acts, idx)

	res := &Result{
		Durations:        make([]time.Duration, cfg.Trials),
		Criticality:      make(map[string]float64, len(acts)),
		MeanIterObserved: make(map[string]float64, len(acts)),
	}

	// Contiguous trial blocks per shard; the first Trials%numShards
	// shards absorb the remainder.
	offsets := make([]int, numShards+1)
	base, rem := cfg.Trials/numShards, cfg.Trials%numShards
	for s := 0; s < numShards; s++ {
		offsets[s+1] = offsets[s] + base
		if s < rem {
			offsets[s+1]++
		}
	}

	// Observability: one root span for the simulation, plus — when the
	// shards are big enough to amortize the clock stamps — one child
	// span and one shard-seconds sample per shard. All spans are point
	// intervals on the virtual clock (risk analysis consumes no design
	// time). Metric handles are resolved once, outside the shard loop.
	tr := cfg.Obs.Tracer()
	root := tr.Start(nil, "monte.simulate", cfg.VirtNow)
	root.SetDetail("trials=" + strconv.Itoa(cfg.Trials))
	if m := cfg.Obs.Metrics(); m != nil {
		m.Counter("monte_simulations_total").Inc()
		m.Counter("monte_trials_total").Add(int64(cfg.Trials))
	}
	shardObs := tr != nil && cfg.Trials/numShards >= shardObsMinTrials
	var hShard *obs.Histogram
	if shardObs {
		hShard = cfg.Obs.Metrics().Histogram("monte_shard_seconds", nil)
	}

	critCounts := make([][]int64, numShards)
	iterTotals := make([][]int64, numShards)
	par.New(cfg.Workers).Instrument(cfg.Obs).ForEach(numShards, func(s int) {
		var sp *obs.Span
		if shardObs {
			sp = tr.Start(root, "monte.shard", cfg.VirtNow)
			sp.SetDetail(shardLabels[s])
		}
		critCount := make([]int64, len(acts))
		iterTotal := make([]int64, len(acts))
		finish := make([]time.Duration, len(acts))
		critPred := make([]int32, len(acts)) // pred on the longest chain, -1 for none
		r := newShardRNG(cfg.Seed, s)
		out := res.Durations[offsets[s]:offsets[s+1]]
		for t := range out {
			var projectFinish time.Duration
			last := int32(-1)
			for _, i := range order {
				ca := &comp[i]
				var start time.Duration
				critPred[i] = -1
				for _, pi := range ca.preds {
					if finish[pi] > start {
						start = finish[pi]
						critPred[i] = pi
					}
				}
				iters := ca.sampleIterations(&r)
				iterTotal[i] += int64(iters)
				var work time.Duration
				for k := 0; k < iters; k++ {
					work += ca.sampleWork(&r)
				}
				finish[i] = start + work
				if finish[i] > projectFinish {
					projectFinish = finish[i]
					last = int32(i)
				}
			}
			out[t] = projectFinish
			// Walk the sampled critical chain backwards.
			for i := last; i >= 0; i = critPred[i] {
				critCount[i]++
			}
		}
		critCounts[s] = critCount
		iterTotals[s] = iterTotal
		if sp != nil {
			hShard.Observe(sp.End(cfg.VirtNow).Seconds())
		}
	})
	root.End(cfg.VirtNow)

	slices.Sort(res.Durations)
	for i, a := range acts {
		var crit, iter int64
		for s := 0; s < numShards; s++ {
			crit += critCounts[s][i]
			iter += iterTotals[s][i]
		}
		res.Criticality[a.Name] = float64(crit) / float64(cfg.Trials)
		res.MeanIterObserved[a.Name] = float64(iter) / float64(cfg.Trials)
	}
	return res, nil
}

// topo orders activity indices producers-first, detecting cycles and
// dangling predecessors.
func topo(acts []ActivityModel, idx map[string]int) ([]int, error) {
	state := make([]int, len(acts))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("monte: precedence cycle through %q", acts[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		for _, p := range acts[i].Preds {
			pi, ok := idx[p]
			if !ok {
				return fmt.Errorf("monte: activity %q references unknown predecessor %q", acts[i].Name, p)
			}
			if pi == i {
				return fmt.Errorf("monte: activity %q is its own predecessor", acts[i].Name)
			}
			if err := visit(pi); err != nil {
				return err
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := range acts {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sampleWork draws one iteration's duration from the activity's
// triangular distribution via inverse-CDF sampling.
func (ca *compiled) sampleWork(r *rng) time.Duration {
	if ca.point {
		return time.Duration(ca.lo)
	}
	u := r.float64()
	var x float64
	if u < ca.fc {
		x = ca.lo + math.Sqrt(u*ca.upWidth)
	} else {
		x = ca.hi - math.Sqrt((1-u)*ca.downWidth)
	}
	return time.Duration(x)
}

// sampleIterations draws a geometric iteration count with the modelled
// mean (success probability 1/mean), capped at 2×mean like the
// simulated tools.
func (ca *compiled) sampleIterations(r *rng) int {
	if ca.p <= 0 {
		return 1
	}
	n := 1
	for r.float64() >= ca.p && n < ca.limit {
		n++
	}
	return n
}
