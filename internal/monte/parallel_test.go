package monte

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

// branchy is a stochastic network with parallel branches and a join —
// enough structure that criticality is genuinely split between paths.
func branchy() []ActivityModel {
	return []ActivityModel{
		{Name: "spec", Min: h(2), Mode: h(4), Max: h(8), MeanIterations: 1.3},
		{Name: "rtl", Min: h(6), Mode: h(10), Max: h(20), MeanIterations: 2, Preds: []string{"spec"}},
		{Name: "tb", Min: h(4), Mode: h(8), Max: h(18), MeanIterations: 1.8, Preds: []string{"spec"}},
		{Name: "syn", Min: h(3), Mode: h(5), Max: h(9), MeanIterations: 1.5, Preds: []string{"rtl"}},
		{Name: "sim", Min: h(2), Mode: h(6), Max: h(14), MeanIterations: 2.5, Preds: []string{"rtl", "tb"}},
		{Name: "signoff", Min: h(1), Mode: h(2), Max: h(4), MeanIterations: 1, Preds: []string{"syn", "sim"}},
	}
}

// TestSerialParallelEquivalence is the engine's determinism contract:
// the same seed must produce bit-identical results whether the shards
// run on 1, 2, or 8 workers.
func TestSerialParallelEquivalence(t *testing.T) {
	for _, trials := range []int{1, 50, 1000} {
		serial, err := Simulate(branchy(), Config{Trials: trials, Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Simulate(branchy(), Config{Trials: trials, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Durations) != len(serial.Durations) {
				t.Fatalf("trials=%d workers=%d: %d durations, want %d",
					trials, workers, len(got.Durations), len(serial.Durations))
			}
			for i := range serial.Durations {
				if got.Durations[i] != serial.Durations[i] {
					t.Fatalf("trials=%d workers=%d: Durations[%d] = %v, serial %v",
						trials, workers, i, got.Durations[i], serial.Durations[i])
				}
			}
			for name, want := range serial.Criticality {
				if got.Criticality[name] != want {
					t.Fatalf("trials=%d workers=%d: Criticality[%s] = %v, serial %v",
						trials, workers, name, got.Criticality[name], want)
				}
			}
			for name, want := range serial.MeanIterObserved {
				if got.MeanIterObserved[name] != want {
					t.Fatalf("trials=%d workers=%d: MeanIterObserved[%s] = %v, serial %v",
						trials, workers, name, got.MeanIterObserved[name], want)
				}
			}
		}
	}
}

// TestWorkersDefaultMatchesSerial pins the facade-facing default:
// Workers 0 (all cores) is still bit-identical to the serial run.
func TestWorkersDefaultMatchesSerial(t *testing.T) {
	serial, err := Simulate(branchy(), Config{Trials: 500, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Simulate(branchy(), Config{Trials: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Durations {
		if serial.Durations[i] != auto.Durations[i] {
			t.Fatalf("Durations[%d] differ between Workers=1 and Workers=0", i)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	r := &Result{Durations: []time.Duration{h(1), h(2), h(3), h(4)}}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, h(1)}, {1, h(4)}, {-0.5, h(1)}, {1.5, h(4)},
		// rank q*(n-1): 0.5*3 = 1.5 rounds to index 2, not truncates to 1.
		{0.5, h(3)},
		// 0.4*3 = 1.2 rounds down to index 1.
		{0.4, h(2)},
		// 0.9*3 = 2.7 rounds up to index 3; truncation would give 2.
		{0.9, h(4)},
	}
	for _, tc := range cases {
		if got := r.Percentile(tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestProbWithinEmptyResult(t *testing.T) {
	r := &Result{}
	// The empty guard must run before the rank search: no NaN, no panic.
	for _, target := range []time.Duration{0, h(1), -h(1)} {
		if p := r.ProbWithin(target); p != 0 {
			t.Errorf("ProbWithin(%v) on empty result = %v, want 0", target, p)
		}
	}
}

func TestPercentileEmptyResult(t *testing.T) {
	r := &Result{}
	for _, q := range []float64{0, 0.5, 1} {
		if got := r.Percentile(q); got != 0 {
			t.Errorf("Percentile(%v) on empty result = %v, want 0", q, got)
		}
	}
}

// Property: percentiles are monotone non-decreasing in q.
func TestPercentileMonotoneProperty(t *testing.T) {
	res, err := Simulate(branchy(), Config{Trials: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	f := func(qaRaw, qbRaw uint16) bool {
		qa := float64(qaRaw) / math.MaxUint16
		qb := float64(qbRaw) / math.MaxUint16
		if qa > qb {
			qa, qb = qb, qa
		}
		return res.Percentile(qa) <= res.Percentile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ProbWithin is monotone non-decreasing in the target span.
func TestProbWithinMonotoneProperty(t *testing.T) {
	res, err := Simulate(branchy(), Config{Trials: 400, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint32) bool {
		a := time.Duration(aRaw) * time.Minute
		b := time.Duration(bRaw) * time.Minute
		if a > b {
			a, b = b, a
		}
		return res.ProbWithin(a) <= res.ProbWithin(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: criticality is a probability, and on a pure chain every
// activity is critical in every trial.
func TestCriticalityProperties(t *testing.T) {
	f := func(seed int64) bool {
		res, err := Simulate(branchy(), Config{Trials: 100, Seed: seed})
		if err != nil {
			return false
		}
		sawFull := false
		for _, c := range res.Criticality {
			if c < 0 || c > 1 {
				return false
			}
			if c == 1 {
				sawFull = true
			}
		}
		// Some activity (at least the join points) must be on every
		// sampled critical path.
		return sawFull
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}

	// Chain flow: every activity lies on the single path, so every
	// criticality is exactly 1.
	chain := []ActivityModel{
		{Name: "a", Min: h(1), Mode: h(2), Max: h(4), MeanIterations: 1.5},
		{Name: "b", Min: h(1), Mode: h(2), Max: h(4), MeanIterations: 2, Preds: []string{"a"}},
		{Name: "c", Min: h(1), Mode: h(2), Max: h(4), MeanIterations: 1, Preds: []string{"b"}},
	}
	res, err := Simulate(chain, Config{Trials: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range res.Criticality {
		if c != 1 {
			t.Errorf("chain criticality[%s] = %v, want 1", name, c)
		}
	}
}

// TestActivityRNGStreamsDiffer guards against per-(shard, activity)
// streams collapsing to the same sequence (which would silently bias
// the sample): every shard of every activity must start decorrelated.
func TestActivityRNGStreamsDiffer(t *testing.T) {
	keys := streamKeys(branchy())
	seen := make(map[uint64]string)
	for _, k := range keys {
		for s := 0; s < numShards; s++ {
			r := newActivityRNG(7, s, k)
			v := r.next()
			id := "key=" + strconv.FormatUint(k, 16) + " shard=" + strconv.Itoa(s)
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %s and %s start with the same draw", prev, id)
			}
			seen[v] = id
		}
	}
	// Different seeds must shift every stream.
	a := newActivityRNG(1, 0, keys[0])
	b := newActivityRNG(2, 0, keys[0])
	if a.next() == b.next() {
		t.Fatal("seed has no effect on activity stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := newActivityRNG(99, 0, 12345)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		u := r.float64()
		if u < 0 || u >= 1 {
			t.Fatalf("float64 draw %v out of [0,1)", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("uniform mean = %v", mean)
	}
}
