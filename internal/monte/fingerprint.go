package monte

import "math"

// Canonical risk-model fingerprints. Every activity gets a Merkle-style
// hash over its *subtree* — the activity's own distribution parameters
// plus the fingerprints of its predecessors, recursively — so two
// activities share a fingerprint exactly when their entire predecessor
// closures are parameter-identical. Because the sampling streams are
// keyed per activity name (see rng.go) and an activity's finish time is
// a function of its own draws plus its predecessors' finishes, the
// per-trial finish samples of an activity are a pure function of
// (subtree fingerprint, seed, trial count). That is the soundness
// argument for the trial-stream memo: a fingerprint hit may reuse the
// cached samples and the composed result is bit-identical to a cold
// run.

// fnv64a parameters, used for canonical string hashing.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashString folds a string into a running fnv64a state.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// combine folds one 64-bit value into a running hash. The construction
// is order-sensitive (combine(combine(h,a),b) != combine(combine(h,b),a)
// in general), which a Merkle chain needs.
func combine(h, x uint64) uint64 {
	return mix64(h ^ (x + golden))
}

// subtreeFingerprints computes each activity's subtree fingerprint.
// order must be a producers-first topological order (see topo), so a
// predecessor's fingerprint is final before any successor folds it in.
func subtreeFingerprints(acts []ActivityModel, idx map[string]int, order []int) []uint64 {
	fps := make([]uint64, len(acts))
	for _, i := range order {
		a := &acts[i]
		h := hashString(fnvOffset, a.Name)
		h = combine(h, uint64(a.Min))
		h = combine(h, uint64(a.Mode))
		h = combine(h, uint64(a.Max))
		h = combine(h, math.Float64bits(a.MeanIterations))
		for _, p := range a.Preds {
			h = combine(h, fps[idx[p]])
		}
		fps[i] = mix64(h)
	}
	return fps
}

// streamKeys returns each activity's RNG stream key: a hash of the name
// alone. Streams are keyed by name rather than by subtree fingerprint
// so that editing an activity leaves its successors' own draws intact —
// their finish times change only through the edited start times, which
// is exactly how a cold run of the edited model behaves.
func streamKeys(acts []ActivityModel) []uint64 {
	keys := make([]uint64, len(acts))
	for i := range acts {
		keys[i] = mix64(hashString(fnvOffset, acts[i].Name))
	}
	return keys
}

// ModelsFingerprint returns a canonical fingerprint of a whole activity
// network in its listed order. Two model sets with equal fingerprints
// produce bit-identical Simulate results for equal Configs (Trials,
// Seed, Sketch settings), for any worker count. The model set is
// validated exactly like Simulate validates it.
func ModelsFingerprint(acts []ActivityModel) (uint64, error) {
	if len(acts) == 0 {
		return 0, errNoActivities()
	}
	idx := make(map[string]int, len(acts))
	for i, a := range acts {
		if err := a.validate(); err != nil {
			return 0, err
		}
		if _, dup := idx[a.Name]; dup {
			return 0, errDuplicate(a.Name)
		}
		idx[a.Name] = i
	}
	order, err := topo(acts, idx)
	if err != nil {
		return 0, err
	}
	fps := subtreeFingerprints(acts, idx, order)
	h := hashString(fnvOffset, "monte.models.v1")
	for _, fp := range fps {
		h = combine(h, fp)
	}
	return mix64(h), nil
}
