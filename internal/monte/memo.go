package monte

import (
	"container/list"
	"sync"
	"time"
)

// Memo is a byte-budgeted LRU cache of per-subtree trial streams: for
// each (subtree fingerprint, seed, trial count) it keeps the activity's
// finish-time sample per trial index, plus the total iteration count
// behind those samples. A Simulate call given a Memo reuses cached
// samples for every activity whose fingerprint hits and re-samples only
// the rest — and because the RNG streams are keyed per activity, the
// composed result is bit-identical to a cold full run (see
// fingerprint.go for the soundness argument). The memo therefore never
// changes results, only how much sampling work a run performs; when an
// entry would not fit the byte budget the run simply samples without
// caching.
//
// A Memo is safe for concurrent use and is meant to be long-lived:
// shared across a project's re-simulations, across the forks of a
// scenario sweep, and across serve-layer requests.
type Memo struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *memoEntry
	entries  map[memoKey]*list.Element

	hits, misses, evictions, rejects int64
}

// memoKey identifies one activity's trial stream. The fingerprint
// covers the activity's whole predecessor closure (names, distribution
// parameters, structure); seed and trials pin the sampling layout.
type memoKey struct {
	fp     uint64
	seed   int64
	trials int
}

// memoEntry is one cached stream. finish is read-only after insert and
// may be shared by any number of concurrent readers.
type memoEntry struct {
	key    memoKey
	finish []time.Duration
	iters  int64
}

// memoEntryOverhead approximates per-entry bookkeeping bytes (map
// cell, list element, header) on top of the sample array.
const memoEntryOverhead = 96

// DefaultMemoBytes is the budget used when NewMemo is given a
// non-positive limit: room for ~64 activities at 500k trials, or a few
// hundred at benchmark scale.
const DefaultMemoBytes = 256 << 20

// NewMemo returns an empty memo bounded to maxBytes of cached samples
// (DefaultMemoBytes when maxBytes <= 0).
func NewMemo(maxBytes int64) *Memo {
	if maxBytes <= 0 {
		maxBytes = DefaultMemoBytes
	}
	return &Memo{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[memoKey]*list.Element),
	}
}

// entrySize is the budgeted footprint of a stream with the given trial
// count.
func entrySize(trials int) int64 {
	return int64(trials)*int64(8) + memoEntryOverhead
}

// admits reports whether a stream of the given trial count can fit the
// budget at all. Simulate skips materializing fresh sample arrays when
// it cannot — the run still produces identical results, it just cannot
// seed the cache.
func (m *Memo) admits(trials int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if entrySize(trials) > m.maxBytes {
		m.rejects++
		return false
	}
	return true
}

// lookup returns the cached stream for k, marking it most recently
// used. The returned slice is shared and must be treated as read-only.
func (m *Memo) lookup(k memoKey) ([]time.Duration, int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k]
	if !ok {
		m.misses++
		return nil, 0, false
	}
	m.hits++
	m.ll.MoveToFront(el)
	e := el.Value.(*memoEntry)
	return e.finish, e.iters, true
}

// insert caches a freshly sampled stream, evicting least-recently-used
// entries until it fits. A key already present is left alone (two
// concurrent cold runs produce bit-identical arrays, so either copy
// serves). Streams larger than the whole budget are rejected.
func (m *Memo) insert(k memoKey, finish []time.Duration, iters int64) {
	size := entrySize(k.trials)
	m.mu.Lock()
	defer m.mu.Unlock()
	if size > m.maxBytes {
		m.rejects++
		return
	}
	if _, ok := m.entries[k]; ok {
		return
	}
	for m.bytes+size > m.maxBytes {
		back := m.ll.Back()
		if back == nil {
			break
		}
		old := back.Value.(*memoEntry)
		m.ll.Remove(back)
		delete(m.entries, old.key)
		m.bytes -= entrySize(old.key.trials)
		m.evictions++
	}
	m.entries[k] = m.ll.PushFront(&memoEntry{key: k, finish: finish, iters: iters})
	m.bytes += size
}

// MemoStats is a point-in-time snapshot of memo effectiveness.
type MemoStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      int64 // subtree lookups served from cache
	Misses    int64 // subtree lookups that required sampling
	Evictions int64 // entries dropped for space
	Rejects   int64 // streams too large for the budget entirely
}

// Stats returns current counters and occupancy.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Entries:   len(m.entries),
		Bytes:     m.bytes,
		MaxBytes:  m.maxBytes,
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
		Rejects:   m.rejects,
	}
}

// Reset drops every cached stream but keeps the lifetime counters.
func (m *Memo) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll.Init()
	m.entries = make(map[memoKey]*list.Element)
	m.bytes = 0
}
