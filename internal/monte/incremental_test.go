package monte

import (
	"testing"
	"testing/quick"
	"time"
)

// edited returns branchy() with one activity's duration parameters
// scaled — the "designer re-estimates one subtree" edit the memo is
// built for.
func edited(target string, scale float64) []ActivityModel {
	acts := branchy()
	for i := range acts {
		if acts[i].Name == target {
			acts[i].Mode = time.Duration(float64(acts[i].Mode) * scale)
			acts[i].Max = time.Duration(float64(acts[i].Max) * scale)
		}
	}
	return acts
}

// sameResult fails the test unless two results are bit-identical in
// every deterministic field.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Durations) != len(want.Durations) {
		t.Fatalf("%s: %d durations, want %d", label, len(got.Durations), len(want.Durations))
	}
	for i := range want.Durations {
		if got.Durations[i] != want.Durations[i] {
			t.Fatalf("%s: Durations[%d] = %v, want %v", label, i, got.Durations[i], want.Durations[i])
		}
	}
	for name, w := range want.Criticality {
		if got.Criticality[name] != w {
			t.Fatalf("%s: Criticality[%s] = %v, want %v", label, name, got.Criticality[name], w)
		}
	}
	for name, w := range want.MeanIterObserved {
		if got.MeanIterObserved[name] != w {
			t.Fatalf("%s: MeanIterObserved[%s] = %v, want %v", label, name, got.MeanIterObserved[name], w)
		}
	}
}

// TestIncrementalBitIdentical is the memo's core contract: after a
// single-subtree edit, a warm re-simulation (baseline streams cached)
// must be bit-identical to a cold full run of the edited model — for
// every worker count.
func TestIncrementalBitIdentical(t *testing.T) {
	const trials = 600
	for _, workers := range []int{1, 2, 8} {
		memo := NewMemo(0)
		base := Config{Trials: trials, Seed: 77, Workers: workers, Memo: memo}
		if _, err := Simulate(branchy(), base); err != nil {
			t.Fatal(err)
		}
		acts := edited("tb", 1.5)
		warm, err := Simulate(acts, base)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Simulate(acts, Config{Trials: trials, Seed: 77, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "warm vs cold", warm, cold)
		// Editing tb dirties tb plus its successors sim and signoff;
		// spec, rtl, and syn must come from the cache.
		if warm.ReusedActivityTrials != 3*trials {
			t.Fatalf("workers=%d: reused %d activity-trials, want %d",
				workers, warm.ReusedActivityTrials, 3*trials)
		}
		if warm.SampledActivityTrials != 3*trials {
			t.Fatalf("workers=%d: sampled %d activity-trials, want %d",
				workers, warm.SampledActivityTrials, 3*trials)
		}
	}
}

// TestIncrementalBitIdenticalProperty fuzzes the contract over edit
// targets, scales, and seeds.
func TestIncrementalBitIdenticalProperty(t *testing.T) {
	names := []string{"spec", "rtl", "tb", "syn", "sim", "signoff"}
	f := func(seed int64, who uint8, scaleRaw uint8) bool {
		target := names[int(who)%len(names)]
		scale := 1 + float64(scaleRaw)/128 // [1, 3)
		memo := NewMemo(0)
		cfg := Config{Trials: 120, Seed: seed, Memo: memo}
		if _, err := Simulate(branchy(), cfg); err != nil {
			return false
		}
		acts := edited(target, scale)
		warm, err := Simulate(acts, cfg)
		if err != nil {
			return false
		}
		cold, err := Simulate(acts, Config{Trials: 120, Seed: seed})
		if err != nil {
			return false
		}
		if len(warm.Durations) != len(cold.Durations) {
			return false
		}
		for i := range cold.Durations {
			if warm.Durations[i] != cold.Durations[i] {
				return false
			}
		}
		for name, w := range cold.Criticality {
			if warm.Criticality[name] != w {
				return false
			}
		}
		for name, w := range cold.MeanIterObserved {
			if warm.MeanIterObserved[name] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoFullHitResamplesNothing pins the ideal warm case: an
// unchanged model re-simulated with the same seed and trial count
// reuses every stream.
func TestMemoFullHitResamplesNothing(t *testing.T) {
	memo := NewMemo(0)
	cfg := Config{Trials: 300, Seed: 5, Memo: memo}
	cold, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "full hit", warm, cold)
	if warm.SampledActivityTrials != 0 {
		t.Fatalf("sampled %d activity-trials on a full hit", warm.SampledActivityTrials)
	}
	if warm.ReusedActivityTrials != int64(6*300) {
		t.Fatalf("reused %d activity-trials, want %d", warm.ReusedActivityTrials, 6*300)
	}
}

// TestMemoSeedAndTrialsPartition pins that neither a different seed nor
// a different trial count can hit another configuration's streams.
func TestMemoSeedAndTrialsPartition(t *testing.T) {
	memo := NewMemo(0)
	if _, err := Simulate(branchy(), Config{Trials: 200, Seed: 1, Memo: memo}); err != nil {
		t.Fatal(err)
	}
	otherSeed, err := Simulate(branchy(), Config{Trials: 200, Seed: 2, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed.ReusedActivityTrials != 0 {
		t.Fatal("seed 2 reused seed 1 streams")
	}
	otherTrials, err := Simulate(branchy(), Config{Trials: 300, Seed: 1, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if otherTrials.ReusedActivityTrials != 0 {
		t.Fatal("trials=300 reused trials=200 streams")
	}
}

// TestMemoSharedSubtreeAcrossModels: the memo keys on subtree content,
// not on the enclosing model, so two different networks sharing a
// predecessor closure share its streams.
func TestMemoSharedSubtreeAcrossModels(t *testing.T) {
	shared := []ActivityModel{
		{Name: "spec", Min: h(2), Mode: h(4), Max: h(8), MeanIterations: 1.3},
		{Name: "rtl", Min: h(6), Mode: h(10), Max: h(20), MeanIterations: 2, Preds: []string{"spec"}},
	}
	extended := append(append([]ActivityModel(nil), shared...),
		ActivityModel{Name: "gate", Min: h(1), Mode: h(2), Max: h(3), MeanIterations: 1, Preds: []string{"rtl"}})
	memo := NewMemo(0)
	if _, err := Simulate(shared, Config{Trials: 250, Seed: 4, Memo: memo}); err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(extended, Config{Trials: 250, Seed: 4, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedActivityTrials != 2*250 {
		t.Fatalf("reused %d activity-trials across models, want %d", warm.ReusedActivityTrials, 2*250)
	}
	cold, err := Simulate(extended, Config{Trials: 250, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cross-model warm vs cold", warm, cold)
}

// TestMemoBudgetDegradesGracefully: streams too large for the budget
// are never cached, and the run's results are unaffected.
func TestMemoBudgetDegradesGracefully(t *testing.T) {
	tiny := NewMemo(64) // smaller than any 200-trial stream
	cfg := Config{Trials: 200, Seed: 8, Memo: tiny}
	got, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Simulate(branchy(), Config{Trials: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "over-budget", got, cold)
	st := tiny.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("over-budget memo retained %d entries / %d bytes", st.Entries, st.Bytes)
	}
	if st.Rejects == 0 {
		t.Fatal("expected a budget reject")
	}
}

// TestMemoLRUEviction: inserts beyond the budget evict the least
// recently used streams first.
func TestMemoLRUEviction(t *testing.T) {
	one := entrySize(100)
	memo := NewMemo(3 * one)
	mk := func(fp uint64) memoKey { return memoKey{fp: fp, seed: 1, trials: 100} }
	buf := make([]time.Duration, 100)
	memo.insert(mk(1), buf, 0)
	memo.insert(mk(2), buf, 0)
	memo.insert(mk(3), buf, 0)
	if _, _, ok := memo.lookup(mk(1)); !ok { // touch 1 → 2 is now LRU
		t.Fatal("entry 1 missing")
	}
	memo.insert(mk(4), buf, 0)
	if _, _, ok := memo.lookup(mk(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, fp := range []uint64{1, 3, 4} {
		if _, _, ok := memo.lookup(mk(fp)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", fp)
		}
	}
	st := memo.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 3*one {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 3*one)
	}
}

// TestSubtreeFingerprints pins the Merkle propagation rules the memo's
// soundness rests on.
func TestSubtreeFingerprints(t *testing.T) {
	fpsOf := func(acts []ActivityModel) map[string]uint64 {
		idx := make(map[string]int)
		for i, a := range acts {
			idx[a.Name] = i
		}
		order, err := topo(acts, idx)
		if err != nil {
			t.Fatal(err)
		}
		fps := subtreeFingerprints(acts, idx, order)
		out := make(map[string]uint64)
		for i, a := range acts {
			out[a.Name] = fps[i]
		}
		return out
	}
	base := fpsOf(branchy())
	again := fpsOf(branchy())
	for name, fp := range base {
		if again[name] != fp {
			t.Fatalf("fingerprint of %s not deterministic", name)
		}
	}
	// Editing rtl must change rtl and every successor (syn, sim,
	// signoff) while leaving spec and tb alone.
	ed := fpsOf(edited("rtl", 2))
	for _, name := range []string{"rtl", "syn", "sim", "signoff"} {
		if ed[name] == base[name] {
			t.Errorf("edit of rtl did not propagate to %s", name)
		}
	}
	for _, name := range []string{"spec", "tb"} {
		if ed[name] != base[name] {
			t.Errorf("edit of rtl spuriously changed %s", name)
		}
	}
}

// TestModelsFingerprint pins the whole-network fingerprint used by the
// serve layer's cache tier.
func TestModelsFingerprint(t *testing.T) {
	a, err := ModelsFingerprint(branchy())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelsFingerprint(branchy())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("ModelsFingerprint not deterministic")
	}
	c, err := ModelsFingerprint(edited("sim", 1.1))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("edit did not change ModelsFingerprint")
	}
	if _, err := ModelsFingerprint(nil); err == nil {
		t.Fatal("empty model set accepted")
	}
	bad := branchy()
	bad[0].Min = 0
	if _, err := ModelsFingerprint(bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func BenchmarkColdSimulate(b *testing.B) {
	acts := edited("tb", 1.3)
	cfg := Config{Trials: 20000, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(acts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmAfterEdit(b *testing.B) {
	cfg := Config{Trials: 20000, Seed: 7}
	acts := edited("tb", 1.3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		memo := NewMemo(0)
		primed := cfg
		primed.Memo = memo
		if _, err := Simulate(branchy(), primed); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Simulate(acts, primed); err != nil {
			b.Fatal(err)
		}
	}
}
