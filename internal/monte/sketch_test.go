package monte

import (
	"math"
	"testing"
	"time"
)

// TestSketchQuantileErrorBound is the sketch's accuracy contract: for
// every quantile, the sketch estimate lands within the versioned
// relative-error bound of the exact sorted-trials answer.
func TestSketchQuantileErrorBound(t *testing.T) {
	cfg := Config{Trials: 20000, Seed: 31}
	exact, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sketch = true
	sk, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Sketch == nil || sk.Durations != nil {
		t.Fatal("sketch mode must drop Durations and set Sketch")
	}
	if sk.Sketch.Version() != SketchVersion {
		t.Fatalf("sketch version = %d, want %d", sk.Sketch.Version(), SketchVersion)
	}
	bound := sk.Sketch.RelativeError()
	if bound <= 0 || bound > 0.02 {
		t.Fatalf("relative error bound = %v, want small positive", bound)
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		e := exact.Percentile(q)
		g := sk.Percentile(q)
		tol := time.Duration(float64(e)*bound) + 1
		if diff := g - e; diff < -tol || diff > tol {
			t.Fatalf("q=%.2f: sketch %v vs exact %v exceeds bound %v", q, g, e, tol)
		}
	}
	// Extremes are exact.
	if sk.Percentile(0) != exact.Percentile(0) || sk.Percentile(1) != exact.Percentile(1) {
		t.Fatal("sketch extremes differ from exact")
	}
	// Mean comes from the exact running sum; only float summation order
	// differs from the exact path.
	if em, sm := exact.Mean(), sk.Mean(); em-sm > time.Microsecond || sm-em > time.Microsecond {
		t.Fatalf("sketch mean %v vs exact %v", sm, em)
	}
	// Trial count is preserved.
	if sk.Trials() != exact.Trials() {
		t.Fatalf("sketch trials = %d, want %d", sk.Trials(), exact.Trials())
	}
}

// TestSketchProbWithinBound: ProbWithin never overestimates and trails
// the exact probability by at most one bucket's mass.
func TestSketchProbWithinBound(t *testing.T) {
	cfg := Config{Trials: 8000, Seed: 41}
	exact, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sketch = true
	sk, err := Simulate(branchy(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxMass float64
	for _, c := range sk.Sketch.counts {
		if m := float64(c) / float64(sk.Sketch.n); m > maxMass {
			maxMass = m
		}
	}
	lo, hi := sk.Sketch.Min(), sk.Sketch.Max()
	for i := 0; i <= 50; i++ {
		target := lo + time.Duration(int64(hi-lo)*int64(i)/50)
		pe := exact.ProbWithin(target)
		ps := sk.ProbWithin(target)
		if ps > pe+1e-12 {
			t.Fatalf("target %v: sketch prob %v overestimates exact %v", target, ps, pe)
		}
		if pe-ps > maxMass+1e-12 {
			t.Fatalf("target %v: sketch prob %v trails exact %v by more than one bucket (%v)",
				target, ps, pe, maxMass)
		}
	}
	if p := sk.ProbWithin(hi); p != 1 {
		t.Fatalf("ProbWithin(max) = %v, want 1", p)
	}
	if p := sk.ProbWithin(lo - 1); p != 0 {
		t.Fatalf("ProbWithin(<min) = %v, want 0", p)
	}
}

// TestSketchWorkerDeterminism: sketch-mode runs are bit-identical for
// any worker count — the counter merge commutes and the float sum is
// merged in shard order.
func TestSketchWorkerDeterminism(t *testing.T) {
	ref, err := Simulate(branchy(), Config{Trials: 3000, Seed: 51, Workers: 1, Sketch: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := Simulate(branchy(), Config{Trials: 3000, Seed: 51, Workers: workers, Sketch: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Sketch.n != ref.Sketch.n || got.Sketch.sum != ref.Sketch.sum ||
			got.Sketch.min != ref.Sketch.min || got.Sketch.max != ref.Sketch.max {
			t.Fatalf("workers=%d: sketch aggregates differ", workers)
		}
		for j := range ref.Sketch.counts {
			if got.Sketch.counts[j] != ref.Sketch.counts[j] {
				t.Fatalf("workers=%d: bucket %d differs", workers, j)
			}
		}
	}
}

// TestSketchWithMemo: sketch mode composes with the trial-stream memo —
// a warm sketch run equals a cold sketch run bucket for bucket.
func TestSketchWithMemo(t *testing.T) {
	memo := NewMemo(0)
	cfg := Config{Trials: 2000, Seed: 61, Memo: memo, Sketch: true}
	if _, err := Simulate(branchy(), cfg); err != nil {
		t.Fatal(err)
	}
	acts := edited("rtl", 1.4)
	warm, err := Simulate(acts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedActivityTrials == 0 {
		t.Fatal("warm sketch run reused nothing")
	}
	cold, err := Simulate(acts, Config{Trials: 2000, Seed: 61, Sketch: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range cold.Sketch.counts {
		if warm.Sketch.counts[j] != cold.Sketch.counts[j] {
			t.Fatalf("bucket %d differs between warm and cold sketch runs", j)
		}
	}
	if warm.Sketch.min != cold.Sketch.min || warm.Sketch.max != cold.Sketch.max ||
		warm.Sketch.sum != cold.Sketch.sum {
		t.Fatal("sketch aggregates differ between warm and cold runs")
	}
}

// TestSketchBoundsMonotone: boundary construction survives degenerate
// ranges (tiny lo, hi barely above lo, custom resolutions).
func TestSketchBoundsMonotone(t *testing.T) {
	for _, tc := range []struct {
		lo, hi  time.Duration
		buckets int
	}{
		{0, 0, 0},
		{1, 2, 16},
		{time.Nanosecond, 10 * time.Nanosecond, 128},
		{time.Hour, 1000 * time.Hour, 512},
		{time.Hour, time.Hour, 8},
	} {
		s := newSketch(tc.lo, tc.hi, tc.buckets)
		for j := 1; j < len(s.bounds); j++ {
			if s.bounds[j] <= s.bounds[j-1] {
				t.Fatalf("lo=%v hi=%v: bounds[%d]=%v <= bounds[%d]=%v",
					tc.lo, tc.hi, j, s.bounds[j], j-1, s.bounds[j-1])
			}
		}
	}
}

// TestSketchEmpty: the accessors are well-defined before any
// observation.
func TestSketchEmpty(t *testing.T) {
	s := newSketch(time.Hour, 100*time.Hour, 64)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.ProbWithin(time.Hour) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch accessors not zero")
	}
}

// TestMeanOverflowRegression: the float64 accumulator must survive
// trial sets whose int64 duration sum overflows (the 1M-trial regime
// that motivated sketch mode).
func TestMeanOverflowRegression(t *testing.T) {
	span := 300 * time.Hour // ~1.08e15 ns; 10k of these overflow int64? No — but 1e7 would.
	n := 10000
	durs := make([]time.Duration, n)
	for i := range durs {
		durs[i] = span
	}
	r := &Result{Durations: durs}
	if got := r.Mean(); got != span {
		t.Fatalf("uniform mean = %v, want %v", got, span)
	}
	// Direct overflow probe: a synthetic sum beyond int64.
	big := make([]time.Duration, 0, 4)
	for i := 0; i < 4; i++ {
		big = append(big, math.MaxInt64/3)
	}
	r = &Result{Durations: big}
	if got := r.Mean(); got < math.MaxInt64/3-time.Second || got > math.MaxInt64/3+time.Second {
		t.Fatalf("overflow-regime mean = %d, want ~%d", got, int64(math.MaxInt64/3))
	}
}
