package monte

import (
	"testing"
	"time"

	"flowsched/internal/obs"
)

func obsModels() []ActivityModel {
	return []ActivityModel{
		{Name: "a", Min: time.Hour, Mode: 2 * time.Hour, Max: 4 * time.Hour, MeanIterations: 2},
		{Name: "b", Min: time.Hour, Mode: time.Hour, Max: 3 * time.Hour, MeanIterations: 1.5, Preds: []string{"a"}},
	}
}

// TestObsDoesNotPerturbResults is the determinism contract under
// instrumentation: the sampled distribution is bit-identical with and
// without an Obs attached, at any worker count.
func TestObsDoesNotPerturbResults(t *testing.T) {
	cfg := Config{Trials: 2000, Seed: 7}
	plain, err := Simulate(obsModels(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := cfg
		cfg.Workers = workers
		cfg.Obs = obs.New()
		inst, err := Simulate(obsModels(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.Durations) != len(plain.Durations) {
			t.Fatalf("workers=%d: %d durations, want %d", workers, len(inst.Durations), len(plain.Durations))
		}
		for i := range plain.Durations {
			if inst.Durations[i] != plain.Durations[i] {
				t.Fatalf("workers=%d: durations diverge at %d: %v != %v",
					workers, i, inst.Durations[i], plain.Durations[i])
			}
		}
	}
}

func TestObsRecordsShardSpansAndTrials(t *testing.T) {
	o := obs.New()
	vnow := time.Date(1995, 6, 5, 9, 0, 0, 0, time.UTC)
	// Big enough that every shard clears shardObsMinTrials, so the
	// per-shard spans and timings are recorded.
	trials := numShards * shardObsMinTrials
	if _, err := Simulate(obsModels(), Config{Trials: trials, Seed: 1, Workers: 2, Obs: o, VirtNow: vnow}); err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	if got := m.Counter("monte_trials_total").Value(); got != int64(trials) {
		t.Fatalf("monte_trials_total = %d, want %d", got, trials)
	}
	if got := m.Counter("monte_simulations_total").Value(); got != 1 {
		t.Fatalf("monte_simulations_total = %d, want 1", got)
	}
	if got := m.Histogram("monte_shard_seconds", nil).Count(); got != numShards {
		t.Fatalf("monte_shard_seconds count = %d, want %d", got, numShards)
	}
	if got := m.Counter("par_items_total").Value(); got != numShards {
		t.Fatalf("par_items_total = %d, want %d", got, numShards)
	}

	spans := o.Tracer().Spans()
	if len(spans) != numShards+1 {
		t.Fatalf("got %d spans, want %d", len(spans), numShards+1)
	}
	var roots, shards int
	for _, s := range spans {
		switch s.Name {
		case "monte.simulate":
			roots++
			if !s.VStart.Equal(vnow) || !s.VEnd.Equal(vnow) {
				t.Fatalf("root virtual interval [%v, %v], want point at %v", s.VStart, s.VEnd, vnow)
			}
		case "monte.shard":
			shards++
		}
	}
	if roots != 1 || shards != numShards {
		t.Fatalf("roots=%d shards=%d", roots, shards)
	}
	if err := obs.ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
}

// TestSmallRunSkipsShardSpans pins the adaptive gate: a run whose
// shards are tiny records only the root span and trial counters — the
// per-shard clock stamps would otherwise dominate the work measured.
func TestSmallRunSkipsShardSpans(t *testing.T) {
	o := obs.New()
	vnow := time.Date(1995, 6, 5, 9, 0, 0, 0, time.UTC)
	trials := numShards*shardObsMinTrials - 1
	if _, err := Simulate(obsModels(), Config{Trials: trials, Seed: 1, Workers: 2, Obs: o, VirtNow: vnow}); err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	if got := m.Counter("monte_trials_total").Value(); got != int64(trials) {
		t.Fatalf("monte_trials_total = %d, want %d", got, trials)
	}
	if got := m.Histogram("monte_shard_seconds", nil).Count(); got != 0 {
		t.Fatalf("monte_shard_seconds count = %d, want 0 below the gate", got)
	}
	spans := o.Tracer().Spans()
	if len(spans) != 1 || spans[0].Name != "monte.simulate" {
		t.Fatalf("spans = %v, want the root span only", spans)
	}
}

func TestUninstrumentedSimulateHasNoObsSideEffects(t *testing.T) {
	// Plain config: just make sure the nil path runs under -race.
	if _, err := Simulate(obsModels(), Config{Trials: 200, Seed: 3, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
