package monte

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"flowsched/internal/obs"
)

// TestContextDoesNotPerturbResults extends the determinism contract to
// the cancellation plumbing: an uncancelled run with a live context is
// bit-identical to a run with none, for every worker count and both
// kernels (scalar and memoized column).
func TestContextDoesNotPerturbResults(t *testing.T) {
	base, err := Simulate(branchy(), Config{Trials: 2000, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, workers := range []int{1, 4} {
		for _, memo := range []bool{false, true} {
			cfg := Config{Trials: 2000, Seed: 7, Workers: workers, Ctx: ctx}
			if memo {
				cfg.Memo = NewMemo(64 << 20)
			}
			got, err := Simulate(branchy(), cfg)
			if err != nil {
				t.Fatalf("workers=%d memo=%v: %v", workers, memo, err)
			}
			if !reflect.DeepEqual(got.Durations, base.Durations) {
				t.Fatalf("workers=%d memo=%v: durations diverge with a live context", workers, memo)
			}
			if !reflect.DeepEqual(got.Criticality, base.Criticality) {
				t.Fatalf("workers=%d memo=%v: criticality diverges with a live context", workers, memo)
			}
		}
	}
}

// TestPreCanceledContextStopsImmediately: a context canceled before the
// run starts must yield the context error and sample nothing.
func TestPreCanceledContextStopsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := obs.New()
	_, err := Simulate(branchy(), Config{Trials: 100_000, Seed: 1, Workers: 2, Ctx: ctx, Obs: o})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := o.Metrics().Counter("monte_trials_total").Value(); n != 0 {
		t.Fatalf("monte_trials_total = %d after pre-canceled run, want 0", n)
	}
}

// TestCancelMidRunStopsSampling: canceling during a large run stops the
// trial counter from advancing — the counter is the live progress
// signal the serving layer watches — and returns the context error.
func TestCancelMidRunStopsSampling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := obs.New()
	const trials = 2_000_000
	done := make(chan error, 1)
	go func() {
		_, err := Simulate(branchy(), Config{Trials: trials, Seed: 3, Workers: 2, Sketch: true, Ctx: ctx, Obs: o})
		done <- err
	}()
	// Wait for sampling to be demonstrably underway, then cancel.
	tc := o.Metrics().Counter("monte_trials_total")
	deadline := time.After(30 * time.Second)
	for tc.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("sampling never started")
		case err := <-done:
			t.Fatalf("run finished before cancel: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := tc.Value(); n >= trials {
		t.Fatalf("monte_trials_total = %d, want < %d (cancel should stop sampling)", n, trials)
	}
	// The counter must be fully quiescent once Simulate has returned.
	before := tc.Value()
	time.Sleep(20 * time.Millisecond)
	if after := tc.Value(); after != before {
		t.Fatalf("monte_trials_total advanced %d -> %d after Simulate returned", before, after)
	}
}

// TestCompletedRunCountsExactlyTrials: the per-shard accounting must sum
// to exactly Trials for completed runs, preserving the counter's
// historical meaning.
func TestCompletedRunCountsExactlyTrials(t *testing.T) {
	o := obs.New()
	if _, err := Simulate(branchy(), Config{Trials: 12_345, Seed: 9, Workers: 4, Obs: o}); err != nil {
		t.Fatal(err)
	}
	if n := o.Metrics().Counter("monte_trials_total").Value(); n != 12_345 {
		t.Fatalf("monte_trials_total = %d, want 12345", n)
	}
}
