package monte

import (
	"runtime"
	"testing"
)

// benchSimulate sweeps the engine over trial counts and worker counts;
// cmd/benchrisk records the same sweep (over the heavier E6 ASIC model)
// into BENCH_risk.json.
func benchSimulate(b *testing.B, trials, workers int) {
	b.Helper()
	acts := branchy()
	cfg := Config{Trials: trials, Seed: 7, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(acts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateSerial_1k(b *testing.B)   { benchSimulate(b, 1000, 1) }
func BenchmarkSimulateSerial_10k(b *testing.B)  { benchSimulate(b, 10000, 1) }
func BenchmarkSimulateSerial_100k(b *testing.B) { benchSimulate(b, 100000, 1) }

func BenchmarkSimulateParallel_1k(b *testing.B)   { benchSimulate(b, 1000, 0) }
func BenchmarkSimulateParallel_10k(b *testing.B)  { benchSimulate(b, 10000, 0) }
func BenchmarkSimulateParallel_100k(b *testing.B) { benchSimulate(b, 100000, 0) }

// BenchmarkSimulateWorkerSweep reports parallel scaling at 100k trials
// across worker counts up to the machine's core count.
func BenchmarkSimulateWorkerSweep(b *testing.B) {
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		b.Run(workerLabel(w), func(b *testing.B) { benchSimulate(b, 100000, w) })
	}
}

func workerLabel(w int) string {
	const digits = "0123456789"
	if w < 10 {
		return "workers=" + digits[w:w+1]
	}
	return "workers=" + digits[w/10:w/10+1] + digits[w%10:w%10+1]
}
