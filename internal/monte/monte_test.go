package monte

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func h(n int) time.Duration { return time.Duration(n) * time.Hour }

// diamond with deterministic durations (Min=Mode=Max) and single
// iterations: behaves exactly like CPM.
func deterministicDiamond() []ActivityModel {
	return []ActivityModel{
		{Name: "A", Min: h(8), Mode: h(8), Max: h(8), MeanIterations: 1},
		{Name: "B", Min: h(8), Mode: h(8), Max: h(8), MeanIterations: 1, Preds: []string{"A"}},
		{Name: "C", Min: h(16), Mode: h(16), Max: h(16), MeanIterations: 1, Preds: []string{"A"}},
		{Name: "D", Min: h(8), Mode: h(8), Max: h(8), MeanIterations: 1, Preds: []string{"B", "C"}},
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		acts []ActivityModel
		want string
	}{
		{"empty", nil, "no activities"},
		{"empty name", []ActivityModel{{Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1}}, "empty name"},
		{"zero min", []ActivityModel{{Name: "A", Mode: h(1), Max: h(1), MeanIterations: 1}}, "Min <= Mode"},
		{"inverted", []ActivityModel{{Name: "A", Min: h(2), Mode: h(1), Max: h(3), MeanIterations: 1}}, "Min <= Mode"},
		{"iterations", []ActivityModel{{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 0.5}}, "iterations"},
		{"duplicate", []ActivityModel{
			{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1},
			{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1},
		}, "duplicate"},
		{"unknown pred", []ActivityModel{
			{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1, Preds: []string{"X"}},
		}, "unknown predecessor"},
		{"self pred", []ActivityModel{
			{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1, Preds: []string{"A"}},
		}, "own predecessor"},
		{"cycle", []ActivityModel{
			{Name: "A", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1, Preds: []string{"B"}},
			{Name: "B", Min: h(1), Mode: h(1), Max: h(1), MeanIterations: 1, Preds: []string{"A"}},
		}, "cycle"},
	}
	for _, tc := range cases {
		if _, err := Simulate(tc.acts, Config{Trials: 10}); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestDeterministicMatchesCPM(t *testing.T) {
	res, err := Simulate(deterministicDiamond(), Config{Trials: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every trial must give exactly the CPM duration: 8+16+8 = 32h.
	for _, d := range res.Durations {
		if d != h(32) {
			t.Fatalf("deterministic trial span = %v, want 32h", d)
		}
	}
	if res.Mean() != h(32) {
		t.Fatalf("mean = %v", res.Mean())
	}
	// Critical path is A, C, D in every trial; B never.
	for _, act := range []string{"A", "C", "D"} {
		if res.Criticality[act] != 1.0 {
			t.Errorf("criticality[%s] = %v, want 1", act, res.Criticality[act])
		}
	}
	if res.Criticality["B"] != 0 {
		t.Errorf("criticality[B] = %v, want 0", res.Criticality["B"])
	}
}

func TestStochasticSpread(t *testing.T) {
	acts := []ActivityModel{
		{Name: "A", Min: h(4), Mode: h(8), Max: h(20), MeanIterations: 2},
	}
	res, err := Simulate(acts, Config{Trials: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p10, p90 := res.Percentile(0.1), res.Percentile(0.9)
	if p10 >= p90 {
		t.Fatalf("no spread: p10=%v p90=%v", p10, p90)
	}
	// Bounds: at least one iteration of at least Min; at most 4 (=2×mean)
	// iterations of at most Max.
	if res.Durations[0] < h(4) || res.Durations[len(res.Durations)-1] > 4*h(20) {
		t.Fatalf("range [%v, %v] out of bounds",
			res.Durations[0], res.Durations[len(res.Durations)-1])
	}
	// Observed mean iterations near 2 (capped geometric shifts it some).
	if mi := res.MeanIterObserved["A"]; mi < 1.3 || mi > 2.5 {
		t.Fatalf("mean iterations observed = %v", mi)
	}
}

func TestProbWithinMonotone(t *testing.T) {
	acts := []ActivityModel{
		{Name: "A", Min: h(4), Mode: h(8), Max: h(16), MeanIterations: 1.5},
	}
	res, err := Simulate(acts, Config{Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.ProbWithin(0); p != 0 {
		t.Fatalf("P(0) = %v", p)
	}
	if p := res.ProbWithin(h(1000)); p != 1 {
		t.Fatalf("P(huge) = %v", p)
	}
	prev := -1.0
	for _, target := range []time.Duration{h(4), h(8), h(16), h(32), h(64)} {
		p := res.ProbWithin(target)
		if p < prev {
			t.Fatalf("ProbWithin not monotone at %v", target)
		}
		prev = p
	}
	// Median consistency: P(p50) ≈ 0.5.
	if p := res.ProbWithin(res.Percentile(0.5)); math.Abs(p-0.5) > 0.05 {
		t.Fatalf("P(median) = %v", p)
	}
}

func TestDeterministicSeed(t *testing.T) {
	acts := deterministicDiamond()
	acts[2].Max = h(30) // add randomness
	a, _ := Simulate(acts, Config{Trials: 100, Seed: 5})
	b, _ := Simulate(acts, Config{Trials: 100, Seed: 5})
	for i := range a.Durations {
		if a.Durations[i] != b.Durations[i] {
			t.Fatal("not reproducible per seed")
		}
	}
	c, _ := Simulate(acts, Config{Trials: 100, Seed: 6})
	same := true
	for i := range a.Durations {
		if a.Durations[i] != c.Durations[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestDefaultTrials(t *testing.T) {
	res, err := Simulate(deterministicDiamond(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1000 {
		t.Fatalf("default trials = %d", len(res.Durations))
	}
}

func TestEmptyResultAccessors(t *testing.T) {
	r := &Result{}
	if r.Mean() != 0 || r.Percentile(0.5) != 0 || r.ProbWithin(h(1)) != 0 {
		t.Fatal("empty result accessors not zero")
	}
}

// Property: sampled spans always lie within the analytic bounds
// [sum over critical chain of Min, sum over all activities of 2*mean*Max].
func TestSpanBoundsProperty(t *testing.T) {
	f := func(seed int64, spreadRaw uint8) bool {
		spread := time.Duration(int(spreadRaw%10)+1) * time.Hour
		acts := []ActivityModel{
			{Name: "A", Min: h(2), Mode: h(2) + spread/2, Max: h(2) + spread, MeanIterations: 1.5},
			{Name: "B", Min: h(1), Mode: h(2), Max: h(4), MeanIterations: 1, Preds: []string{"A"}},
		}
		res, err := Simulate(acts, Config{Trials: 50, Seed: seed})
		if err != nil {
			return false
		}
		lo := h(2) + h(1)
		hi := 3*(h(2)+spread) + h(4) // A up to 3 iterations (2×1.5), B one
		for _, d := range res.Durations {
			if d < lo || d > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
