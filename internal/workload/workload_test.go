package workload

import (
	"testing"
	"testing/quick"
	"time"

	"flowsched/internal/flow"
)

func TestFig4(t *testing.T) {
	s := Fig4()
	if len(s.Rules()) != 2 || s.Name != "circuit" {
		t.Fatalf("Fig4 = %s", s.Format())
	}
}

func TestASIC(t *testing.T) {
	s := ASIC()
	if len(s.Rules()) != 8 {
		t.Fatalf("ASIC rules = %d", len(s.Rules()))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The full flow is extractable to its signoff reports.
	g, err := flow.FromSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Extract("drcreport", "lvsreport", "timingreport", "simreport")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Activities()) != 8 {
		t.Fatalf("full extraction covers %v", tr.Activities())
	}
}

func TestLayeredShape(t *testing.T) {
	s, err := Layered(LayeredConfig{Depth: 3, Width: 4, FanIn: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Rules()); got != 12 {
		t.Fatalf("rules = %d, want 12", got)
	}
	if got := len(s.PrimaryInputs()); got != 4 {
		t.Fatalf("primary inputs = %d, want 4", got)
	}
	// Every rule has exactly FanIn inputs.
	for _, r := range s.Rules() {
		if len(r.Inputs) != 2 {
			t.Fatalf("rule %s inputs = %v", r.Activity, r.Inputs)
		}
	}
}

func TestLayeredValidation(t *testing.T) {
	if _, err := Layered(LayeredConfig{Depth: 0, Width: 1}); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := Layered(LayeredConfig{Depth: 1, Width: 0}); err == nil {
		t.Fatal("width 0 accepted")
	}
	// FanIn clamps.
	s, err := Layered(LayeredConfig{Depth: 1, Width: 2, FanIn: 99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rules() {
		if len(r.Inputs) != 2 {
			t.Fatalf("clamped fanin = %d", len(r.Inputs))
		}
	}
}

func TestLayeredDeterministic(t *testing.T) {
	a, _ := Layered(LayeredConfig{Depth: 4, Width: 3, FanIn: 2, Seed: 7})
	b, _ := Layered(LayeredConfig{Depth: 4, Width: 3, FanIn: 2, Seed: 7})
	if a.Format() != b.Format() {
		t.Fatal("Layered not deterministic per seed")
	}
	c, _ := Layered(LayeredConfig{Depth: 4, Width: 3, FanIn: 2, Seed: 8})
	if a.Format() == c.Format() {
		t.Fatal("seed has no effect")
	}
}

// Property: layered schemas always validate and have Depth*Width rules.
func TestLayeredProperty(t *testing.T) {
	f := func(d, w, fi uint8, seed int64) bool {
		cfg := LayeredConfig{
			Depth: int(d%5) + 1, Width: int(w%5) + 1, FanIn: int(fi%4) + 1, Seed: seed,
		}
		s, err := Layered(cfg)
		if err != nil {
			return false
		}
		return s.Validate() == nil && len(s.Rules()) == cfg.Depth*cfg.Width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimates(t *testing.T) {
	s := ASIC()
	est, err := Estimates(s, 8*time.Hour, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.ByActivity) != 8 {
		t.Fatalf("estimates = %d", len(est.ByActivity))
	}
	lo := time.Duration(float64(8*time.Hour) * 0.75)
	hi := time.Duration(float64(8*time.Hour) * 1.25)
	for act, d := range est.ByActivity {
		if d < lo || d > hi {
			t.Fatalf("estimate %s = %v outside [%v, %v]", act, d, lo, hi)
		}
	}
	// Deterministic.
	est2, _ := Estimates(s, 8*time.Hour, 0.25, 3)
	for act := range est.ByActivity {
		if est.ByActivity[act] != est2.ByActivity[act] {
			t.Fatal("estimates not deterministic")
		}
	}
	if _, err := Estimates(s, 0, 0.1, 1); err == nil {
		t.Fatal("zero base accepted")
	}
	if _, err := Estimates(s, time.Hour, 1.0, 1); err == nil {
		t.Fatal("jitter 1 accepted")
	}
}

func TestAssignments(t *testing.T) {
	s := ASIC()
	team := []string{"ann", "bob", "cho"}
	a := Assignments(s, team)
	if len(a) != 8 {
		t.Fatalf("assignments = %d", len(a))
	}
	counts := map[string]int{}
	for _, rs := range a {
		if len(rs) != 1 {
			t.Fatalf("assignment = %v", rs)
		}
		counts[rs[0]]++
	}
	// Round robin over 8 activities and 3 people: 3/3/2.
	if counts["ann"] != 3 || counts["bob"] != 3 || counts["cho"] != 2 {
		t.Fatalf("distribution = %v", counts)
	}
	if Assignments(s, nil) != nil {
		t.Fatal("empty team should yield nil")
	}
}

func TestThreePoints(t *testing.T) {
	est, _ := Estimates(Fig4(), 10*time.Hour, 0, 1)
	tp := ThreePoints(est)
	p, err := tp.Estimate("Create", nil)
	if err != nil {
		t.Fatal(err)
	}
	// (6 + 4*10 + 18)/6 h = 10.67h approximately.
	want := (6*time.Hour + 40*time.Hour + 18*time.Hour) / 6
	if p.Work != want {
		t.Fatalf("three-point expected = %v, want %v", p.Work, want)
	}
}

func TestBoard(t *testing.T) {
	s := Board()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Rules()) != 6 {
		t.Fatalf("rules = %d", len(s.Rules()))
	}
	if got := s.PrimaryInputs(); len(got) != 1 || got[0] != "requirements" {
		t.Fatalf("primary inputs = %v", got)
	}
	g, err := flow.FromSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Extract("gerbers", "drcreport")
	if err != nil || len(tr.Activities()) != 6 {
		t.Fatalf("extraction = %v, %v", tr, err)
	}
}

func TestAnalog(t *testing.T) {
	s := Analog()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Rules()) != 6 {
		t.Fatalf("rules = %d", len(s.Rules()))
	}
	// The simulator tool class backs two distinct activities.
	pre, post := s.RuleByActivity("SimPre"), s.RuleByActivity("SimPost")
	if pre == nil || post == nil || pre.Tool != "simulator" || post.Tool != "simulator" {
		t.Fatalf("simulator rules = %v / %v", pre, post)
	}
	g, _ := flow.FromSchema(s)
	tr, err := g.Extract("postsim", "simreport")
	if err != nil || len(tr.Activities()) != 6 {
		t.Fatalf("extraction = %v, %v", tr, err)
	}
}
