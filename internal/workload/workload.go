// Package workload generates the design flows used by the examples,
// experiments, and benchmarks: the paper's Fig. 4 circuit schema, a
// realistic ASIC implementation flow, and parameterized layered DAG flows
// for scaling sweeps (experiment E3 in DESIGN.md).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/schema"
)

// Fig4Source is the paper's Fig. 4 example task schema in DSL form.
const Fig4Source = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

// Fig4 returns the paper's example schema: a netlist is created with an
// editor; a circuit simulator applied to netlist and stimuli yields a
// performance report.
func Fig4() *schema.Schema { return schema.MustParse(Fig4Source) }

// ASICSource is a realistic RTL-to-signoff implementation flow.
const ASICSource = `
schema asic
data rtl, constraints, testbench
data netlist, floorplan, layout, parasitics
data drcreport, lvsreport, timingreport, simreport
tool synthesizer, planner, router, extractor, checker, lvs, sta, simulator
rule Synthesize: netlist      <- synthesizer(rtl, constraints)
rule Floorplan:  floorplan    <- planner(netlist)
rule Route:      layout       <- router(netlist, floorplan)
rule Extract:    parasitics   <- extractor(layout)
rule DRC:        drcreport    <- checker(layout)
rule LVS:        lvsreport    <- lvs(layout, netlist)
rule STA:        timingreport <- sta(netlist, parasitics, constraints)
rule GateSim:    simreport    <- simulator(netlist, testbench)
`

// ASIC returns the RTL-to-signoff flow used by the chipdesign example.
func ASIC() *schema.Schema { return schema.MustParse(ASICSource) }

// BoardSource is a printed-circuit-board design flow: schematic capture
// through fabrication outputs.
const BoardSource = `
schema board
data requirements, schematic, bomlist, placement, routedpcb, drcreport, gerbers
tool editor, bomtool, placer, router, checker, camtool
rule Capture:  schematic <- editor(requirements)
rule BOM:      bomlist   <- bomtool(schematic)
rule Place:    placement <- placer(schematic)
rule RoutePCB: routedpcb <- router(placement, schematic)
rule CheckPCB: drcreport <- checker(routedpcb)
rule CAM:      gerbers   <- camtool(routedpcb, bomlist)
`

// Board returns the PCB design flow.
func Board() *schema.Schema { return schema.MustParse(BoardSource) }

// AnalogSource is an analog/mixed-signal block flow: schematic, sizing,
// simulation corners, layout, and extraction-verified resimulation.
const AnalogSource = `
schema analog
data spec, schematic, sizednetlist, tbvectors, simreport, layout, extracted, postsim
tool editor, sizer, simulator, layouter, extractor
rule Draw:    schematic    <- editor(spec)
rule Size:    sizednetlist <- sizer(schematic, spec)
rule SimPre:  simreport    <- simulator(sizednetlist, tbvectors)
rule Layout:  layout       <- layouter(sizednetlist)
rule Extract: extracted    <- extractor(layout)
rule SimPost: postsim      <- simulator(extracted, tbvectors)
`

// Analog returns the analog block flow. Note the simulator tool class is
// applied by two different activities (pre- and post-layout simulation),
// exercising the paper's "tools are not tied to specific tasks".
func Analog() *schema.Schema { return schema.MustParse(AnalogSource) }

// LayeredConfig parameterizes a synthetic layered flow.
type LayeredConfig struct {
	// Depth is the number of activity layers (>= 1).
	Depth int
	// Width is the number of activities per layer (>= 1).
	Width int
	// FanIn is the number of previous-layer inputs per activity
	// (clamped to Width; >= 1).
	FanIn int
	// Seed drives input selection.
	Seed int64
}

// Layered generates a layered DAG flow: Width primary inputs feed Depth
// layers of Width activities each, every activity consuming FanIn
// distinct outputs of the previous layer. The result has Depth*Width
// activities and deterministic structure per seed.
func Layered(cfg LayeredConfig) (*schema.Schema, error) {
	if cfg.Depth < 1 || cfg.Width < 1 {
		return nil, fmt.Errorf("workload: depth %d and width %d must be >= 1", cfg.Depth, cfg.Width)
	}
	if cfg.FanIn < 1 {
		cfg.FanIn = 1
	}
	if cfg.FanIn > cfg.Width {
		cfg.FanIn = cfg.Width
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := schema.New(fmt.Sprintf("layered_d%d_w%d", cfg.Depth, cfg.Width))
	if _, err := s.AddToolClass("xfrm"); err != nil {
		return nil, err
	}
	prev := make([]string, cfg.Width)
	for w := 0; w < cfg.Width; w++ {
		name := fmt.Sprintf("in%d", w)
		if _, err := s.AddDataClass(name); err != nil {
			return nil, err
		}
		prev[w] = name
	}
	for d := 1; d <= cfg.Depth; d++ {
		cur := make([]string, cfg.Width)
		for w := 0; w < cfg.Width; w++ {
			out := fmt.Sprintf("d%dw%d", d, w)
			if _, err := s.AddDataClass(out); err != nil {
				return nil, err
			}
			inputs := pick(rng, prev, cfg.FanIn, w)
			act := fmt.Sprintf("A_%d_%d", d, w)
			if _, err := s.AddRule(act, out, "xfrm", inputs...); err != nil {
				return nil, err
			}
			cur[w] = out
		}
		prev = cur
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// pick selects k distinct elements of prev, always including prev[anchor]
// so every chain stays connected.
func pick(rng *rand.Rand, prev []string, k, anchor int) []string {
	anchor = anchor % len(prev)
	out := []string{prev[anchor]}
	perm := rng.Perm(len(prev))
	for _, i := range perm {
		if len(out) == k {
			break
		}
		if i == anchor {
			continue
		}
		out = append(out, prev[i])
	}
	return out
}

// Estimates builds a fixed estimator assigning each activity a working
// time of base ± jitter (fraction), deterministic per seed.
func Estimates(sch *schema.Schema, base time.Duration, jitter float64, seed int64) (sched.Fixed, error) {
	if base <= 0 {
		return sched.Fixed{}, fmt.Errorf("workload: base estimate must be positive")
	}
	if jitter < 0 || jitter >= 1 {
		return sched.Fixed{}, fmt.Errorf("workload: jitter %v out of [0,1)", jitter)
	}
	rng := rand.New(rand.NewSource(seed))
	m := make(map[string]time.Duration)
	for _, r := range sch.Rules() {
		spread := 1 + jitter*(2*rng.Float64()-1)
		m[r.Activity] = time.Duration(float64(base) * spread)
	}
	return sched.Fixed{ByActivity: m}, nil
}

// Assignments distributes activities round-robin over a team,
// deterministically.
func Assignments(sch *schema.Schema, team []string) map[string][]string {
	if len(team) == 0 {
		return nil
	}
	out := make(map[string][]string)
	for i, r := range sch.Rules() {
		out[r.Activity] = []string{team[i%len(team)]}
	}
	return out
}

// ThreePoints derives PERT three-point estimates from a fixed table by
// spreading each point estimate into (0.6x, x, 1.8x).
func ThreePoints(f sched.Fixed) sched.PERT {
	out := sched.PERT{ByActivity: make(map[string]sched.ThreePoint, len(f.ByActivity))}
	for act, d := range f.ByActivity {
		out.ByActivity[act] = sched.ThreePoint{
			Optimistic:  time.Duration(float64(d) * 0.6),
			Likely:      d,
			Pessimistic: time.Duration(float64(d) * 1.8),
		}
	}
	return out
}
