// Package gantt renders ASCII Gantt charts of plan-versus-actual schedule
// data — the visualization the paper's §IV.B uses to examine design status
// ("a Gantt Chart displays graphically both the planned schedule and the
// accomplished schedule").
//
// Bars are drawn on a working-day axis:
//
//	Create    [ewj       ] ████████░░░░          plan
//	                       ▓▓▓▓▓▓▓▓▓▓▓▓▓▓        actual (slipped)
//
// using '#' for planned span, '=' for accomplished span, '>' for the
// in-progress frontier and '|' for today, so charts render anywhere.
package gantt

import (
	"fmt"
	"strings"
	"time"

	"flowsched/internal/vclock"
)

// Row is one task of a chart.
type Row struct {
	Name          string
	Resources     []string
	PlannedStart  time.Time
	PlannedFinish time.Time
	ActualStart   time.Time // zero if not started
	ActualFinish  time.Time // zero if not finished
	Done          bool
}

// Marker is a milestone diamond on the chart's time axis.
type Marker struct {
	Name string
	At   time.Time
	// Achieved milestones render '*', pending ones 'o'.
	Achieved bool
}

// Chart is a renderable Gantt chart.
type Chart struct {
	Title    string
	Calendar *vclock.Calendar
	Rows     []Row
	// Milestones are drawn as markers below the bars.
	Milestones []Marker
	// Now marks "today"; zero omits the marker.
	Now time.Time
	// Width is the number of columns for the time axis (default 60).
	Width int
}

// span returns the chart's overall time range.
func (c *Chart) span() (lo, hi time.Time, ok bool) {
	points := make([]time.Time, 0, 4*len(c.Rows)+len(c.Milestones))
	for _, r := range c.Rows {
		points = append(points, r.PlannedStart, r.PlannedFinish, r.ActualStart, r.ActualFinish)
	}
	for _, m := range c.Milestones {
		points = append(points, m.At)
	}
	for _, t := range points {
		if t.IsZero() {
			continue
		}
		if !ok {
			lo, hi, ok = t, t, true
			continue
		}
		if t.Before(lo) {
			lo = t
		}
		if t.After(hi) {
			hi = t
		}
	}
	if ok && !c.Now.IsZero() {
		if c.Now.Before(lo) {
			lo = c.Now
		}
		if c.Now.After(hi) {
			hi = c.Now
		}
	}
	return lo, hi, ok
}

// Render draws the chart.
func (c *Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 60
	}
	cal := c.Calendar
	if cal == nil {
		cal = vclock.Standard()
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	lo, hi, ok := c.span()
	if !ok {
		b.WriteString("(no scheduled activities)\n")
		return b.String()
	}
	total := cal.WorkBetween(lo, hi)
	if total <= 0 {
		total = time.Hour
	}
	col := func(t time.Time) int {
		if t.IsZero() {
			return -1
		}
		x := int(float64(width-1) * float64(cal.WorkBetween(lo, t)) / float64(total))
		if x < 0 {
			x = 0
		}
		if x > width-1 {
			x = width - 1
		}
		return x
	}

	nameW, resW := 4, 3
	for _, r := range c.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
		if rs := strings.Join(r.Resources, ","); len(rs) > resW {
			resW = len(rs)
		}
	}
	nowCol := col(c.Now)

	fmt.Fprintf(&b, "%-*s  %-*s  %s .. %s (%s working)\n",
		nameW, "task", resW, "who",
		lo.Format("2006-01-02"), hi.Format("2006-01-02"),
		fmtWork(total, cal))
	for _, r := range c.Rows {
		planned := bar(width, col(r.PlannedStart), col(r.PlannedFinish), '#', nowCol)
		fmt.Fprintf(&b, "%-*s  %-*s  %s plan\n", nameW, r.Name, resW,
			strings.Join(r.Resources, ","), planned)
		if !r.ActualStart.IsZero() {
			endCol := col(r.ActualFinish)
			ch := byte('=')
			if !r.Done {
				endCol = nowCol
				ch = '>'
			}
			actual := bar(width, col(r.ActualStart), endCol, ch, nowCol)
			fmt.Fprintf(&b, "%-*s  %-*s  %s actual\n", nameW, "", resW, "", actual)
		}
	}
	for _, m := range c.Milestones {
		ch := byte('o')
		if m.Achieved {
			ch = '*'
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		if at := col(m.At); at >= 0 && at < width {
			line[at] = ch
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %s milestone %s (%s)\n", nameW, "", resW, "",
			string(line), m.Name, m.At.Format("2006-01-02"))
	}
	if nowCol >= 0 {
		fmt.Fprintf(&b, "%-*s  %-*s  %s now = %s\n", nameW, "", resW, "",
			marker(width, nowCol), c.Now.Format("2006-01-02 15:04"))
	}
	return b.String()
}

// bar renders a horizontal bar from column a to column bcol inclusive,
// overlaying the now marker.
func bar(width, a, bcol int, ch byte, nowCol int) string {
	line := make([]byte, width)
	for i := range line {
		line[i] = ' '
	}
	if a >= 0 && bcol >= a {
		for i := a; i <= bcol && i < width; i++ {
			line[i] = ch
		}
	}
	if nowCol >= 0 && nowCol < width && line[nowCol] == ' ' {
		line[nowCol] = '|'
	}
	return string(line)
}

func marker(width, at int) string {
	line := make([]byte, width)
	for i := range line {
		line[i] = ' '
	}
	if at >= 0 && at < width {
		line[at] = '^'
	}
	return string(line)
}

// fmtWork renders a working duration in days+hours on the calendar.
func fmtWork(d time.Duration, cal *vclock.Calendar) string {
	daily := cal.DailyHours()
	if daily <= 0 {
		return d.String()
	}
	days := d / daily
	rest := d % daily
	switch {
	case days == 0:
		return fmt.Sprintf("%.1fh", rest.Hours())
	case rest == 0:
		return fmt.Sprintf("%dd", days)
	default:
		return fmt.Sprintf("%dd%.1fh", days, rest.Hours())
	}
}
