package gantt

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

func d(day int, hour int) time.Time {
	return time.Date(1995, time.June, day, hour, 0, 0, 0, time.UTC)
}

func sampleChart() *Chart {
	return &Chart{
		Title:    "circuit design",
		Calendar: vclock.Standard(),
		Now:      d(7, 13),
		Rows: []Row{
			{
				Name: "Create", Resources: []string{"ewj"},
				PlannedStart: d(5, 9), PlannedFinish: d(6, 17),
				ActualStart: d(5, 9), ActualFinish: d(7, 12), Done: true,
			},
			{
				Name: "Simulate", Resources: []string{"ewj", "jbb"},
				PlannedStart: d(7, 9), PlannedFinish: d(7, 17),
				ActualStart: d(7, 12),
			},
			{
				Name: "Signoff", Resources: nil,
				PlannedStart: d(8, 9), PlannedFinish: d(8, 17),
			},
		},
	}
}

func TestRenderContainsRows(t *testing.T) {
	out := sampleChart().Render()
	for _, want := range []string{"circuit design", "Create", "Simulate", "Signoff",
		"plan", "actual", "now = 1995-06-07 13:00", "ewj,jbb"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBarCharacters(t *testing.T) {
	out := sampleChart().Render()
	if !strings.Contains(out, "#") {
		t.Error("no planned bars")
	}
	if !strings.Contains(out, "=") {
		t.Error("no completed actual bar")
	}
	if !strings.Contains(out, ">") {
		t.Error("no in-progress bar")
	}
	if !strings.Contains(out, "^") {
		t.Error("no now marker")
	}
}

func TestRenderLineWidthsConsistent(t *testing.T) {
	c := sampleChart()
	c.Width = 40
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All bar lines (plan/actual) should have the same prefix width.
	var barLens []int
	for _, l := range lines {
		if strings.HasSuffix(l, "plan") || strings.HasSuffix(l, "actual") {
			barLens = append(barLens, len(l))
		}
	}
	if len(barLens) < 4 {
		t.Fatalf("expected >=4 bar lines, got %d:\n%s", len(barLens), out)
	}
	for _, l := range barLens[1:] {
		// "actual" is two characters longer than "plan".
		if l != barLens[0] && l != barLens[0]+2 && l != barLens[0]-2 {
			t.Fatalf("misaligned bars: %v\n%s", barLens, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no scheduled activities") {
		t.Fatalf("empty chart rendered %q", out)
	}
}

func TestRenderNoNowMarker(t *testing.T) {
	c := sampleChart()
	c.Now = time.Time{}
	out := c.Render()
	if strings.Contains(out, "now =") {
		t.Fatal("now marker present without Now")
	}
}

func TestRenderDefaultsCalendarAndWidth(t *testing.T) {
	c := sampleChart()
	c.Calendar = nil
	c.Width = 0
	out := c.Render()
	if len(out) == 0 || !strings.Contains(out, "Create") {
		t.Fatalf("defaulted chart broken:\n%s", out)
	}
}

func TestBarClamping(t *testing.T) {
	// A bar whose start is before the chart range start must clamp to 0.
	if got := bar(10, -1, 5, '#', -1); strings.Contains(got, "#") {
		t.Fatalf("bar with negative start drew: %q", got)
	}
	if got := bar(10, 2, 20, '#', -1); len(got) != 10 {
		t.Fatalf("bar overflow: %q", got)
	}
	if got := bar(10, 3, 2, '#', -1); strings.Contains(got, "#") {
		t.Fatalf("inverted bar drew: %q", got)
	}
}

func TestFmtWork(t *testing.T) {
	cal := vclock.Standard()
	cases := []struct {
		in   time.Duration
		want string
	}{
		{4 * time.Hour, "4.0h"},
		{8 * time.Hour, "1d"},
		{12 * time.Hour, "1d4.0h"},
		{40 * time.Hour, "5d"},
	}
	for _, tc := range cases {
		if got := fmtWork(tc.in, cal); got != tc.want {
			t.Errorf("fmtWork(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSpanIncludesNow(t *testing.T) {
	c := &Chart{
		Calendar: vclock.Standard(),
		Now:      d(20, 9),
		Rows: []Row{{
			Name: "X", PlannedStart: d(5, 9), PlannedFinish: d(6, 17),
		}},
	}
	lo, hi, ok := c.span()
	if !ok || !lo.Equal(d(5, 9)) || !hi.Equal(d(20, 9)) {
		t.Fatalf("span = %v..%v ok=%v", lo, hi, ok)
	}
	_ = t0
}

func TestMilestoneMarkers(t *testing.T) {
	c := sampleChart()
	c.Milestones = []Marker{
		{Name: "netlist-frozen", At: d(6, 17), Achieved: true},
		{Name: "signoff", At: d(8, 17)},
	}
	out := c.Render()
	if !strings.Contains(out, "milestone netlist-frozen (1995-06-06)") {
		t.Fatalf("achieved milestone missing:\n%s", out)
	}
	if !strings.Contains(out, "milestone signoff (1995-06-08)") {
		t.Fatalf("pending milestone missing:\n%s", out)
	}
	// Achieved renders '*', pending 'o'.
	var achievedLine, pendingLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "netlist-frozen") {
			achievedLine = line
		}
		if strings.Contains(line, "signoff") {
			pendingLine = line
		}
	}
	if !strings.Contains(achievedLine, "*") {
		t.Errorf("achieved marker glyph missing: %q", achievedLine)
	}
	if !strings.Contains(pendingLine, "o") {
		t.Errorf("pending marker glyph missing: %q", pendingLine)
	}
}

func TestMilestoneExtendsSpan(t *testing.T) {
	c := &Chart{
		Calendar: vclock.Standard(),
		Rows: []Row{{
			Name: "X", PlannedStart: d(5, 9), PlannedFinish: d(6, 17),
		}},
		Milestones: []Marker{{Name: "far", At: d(23, 9)}},
	}
	lo, hi, ok := c.span()
	if !ok || !lo.Equal(d(5, 9)) || !hi.Equal(d(23, 9)) {
		t.Fatalf("span = %v..%v ok=%v", lo, hi, ok)
	}
}
