// Package baseline models the state of practice the paper argues against:
// a project-management system (MacProject / Microsoft Project style) kept
// *separate* from the flow manager, synchronized by hand.
//
// "Project managers acquire projected and actual completion dates from the
// different designers working on the project, and manually insert the
// information into their project management system" (paper §I). That
// manual channel has a reporting period (status meetings), can miss
// updates, and therefore leaves the schedule stale. The integrated system
// records the same facts at the instant the flow manager creates them.
//
// This package turns that argument into a measurable experiment (E1 in
// DESIGN.md): replay one ground-truth stream of schedule events through
// both channels and measure the recording lag and the staleness of the
// manager's view.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// EventKind distinguishes task starts from completions.
type EventKind string

const (
	Start  EventKind = "start"
	Finish EventKind = "finish"
)

// Event is one ground-truth schedule fact produced by the flow manager.
type Event struct {
	Activity string
	Kind     EventKind
	At       time.Time
}

// Report is an event as it lands in a project-management system.
type Report struct {
	Event
	// RecordedAt is when the PM system learned the fact.
	RecordedAt time.Time
}

// Lag is the event's recording delay.
func (r Report) Lag() time.Duration { return r.RecordedAt.Sub(r.At) }

// SeparateConfig parameterizes the manual reporting channel.
type SeparateConfig struct {
	// Period is the reporting cadence (e.g. a weekly status meeting).
	Period time.Duration
	// FirstMeeting anchors the meeting grid; events before it wait for it.
	FirstMeeting time.Time
	// MissProb is the chance a fact is not reported at a given meeting
	// and slips to the next one.
	MissProb float64
	// Seed makes missed reports reproducible.
	Seed int64
}

func (c SeparateConfig) validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("baseline: reporting period must be positive")
	}
	if c.FirstMeeting.IsZero() {
		return fmt.Errorf("baseline: first meeting time required")
	}
	if c.MissProb < 0 || c.MissProb >= 1 {
		return fmt.Errorf("baseline: miss probability %v out of [0,1)", c.MissProb)
	}
	return nil
}

// SimulateSeparate replays events through the manual channel: each fact is
// recorded at the first status meeting at or after it happens, possibly
// slipping whole periods when the report is missed.
func SimulateSeparate(events []Event, cfg SeparateConfig) ([]Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Report, 0, len(events))
	for _, e := range events {
		meeting := cfg.FirstMeeting
		for meeting.Before(e.At) {
			meeting = meeting.Add(cfg.Period)
		}
		for rng.Float64() < cfg.MissProb {
			meeting = meeting.Add(cfg.Period)
		}
		out = append(out, Report{Event: e, RecordedAt: meeting})
	}
	return out, nil
}

// SimulateIntegrated replays events through the integrated system: every
// fact is recorded the instant the flow manager creates it, because "the
// status of the flow is maintained within the flow management system".
func SimulateIntegrated(events []Event) []Report {
	out := make([]Report, 0, len(events))
	for _, e := range events {
		out = append(out, Report{Event: e, RecordedAt: e.At})
	}
	return out
}

// DriftStats summarizes how far a PM system's view trails reality.
type DriftStats struct {
	// MeanLag and MaxLag are recording delays across all events.
	MeanLag, MaxLag time.Duration
	// StaleFraction is the fraction of the observation span during which
	// at least one fact had happened but was not yet recorded.
	StaleFraction float64
	// N is the number of events scored.
	N int
}

// Drift computes drift statistics over a report stream. The observation
// span runs from the earliest event to the latest recording time.
func Drift(reports []Report) (DriftStats, error) {
	if len(reports) == 0 {
		return DriftStats{}, fmt.Errorf("baseline: no reports")
	}
	var st DriftStats
	var total time.Duration
	lo := reports[0].At
	hi := reports[0].RecordedAt
	type iv struct{ a, b time.Time }
	var stale []iv
	for _, r := range reports {
		if r.RecordedAt.Before(r.At) {
			return DriftStats{}, fmt.Errorf("baseline: report for %s recorded before it happened", r.Activity)
		}
		lag := r.Lag()
		total += lag
		if lag > st.MaxLag {
			st.MaxLag = lag
		}
		if r.At.Before(lo) {
			lo = r.At
		}
		if r.RecordedAt.After(hi) {
			hi = r.RecordedAt
		}
		if lag > 0 {
			stale = append(stale, iv{r.At, r.RecordedAt})
		}
		st.N++
	}
	st.MeanLag = total / time.Duration(st.N)
	span := hi.Sub(lo)
	if span > 0 && len(stale) > 0 {
		// Merge stale intervals and sum their union.
		sort.Slice(stale, func(i, j int) bool { return stale[i].a.Before(stale[j].a) })
		var union time.Duration
		cur := stale[0]
		for _, s := range stale[1:] {
			if !s.a.After(cur.b) {
				if s.b.After(cur.b) {
					cur.b = s.b
				}
				continue
			}
			union += cur.b.Sub(cur.a)
			cur = s
		}
		union += cur.b.Sub(cur.a)
		st.StaleFraction = float64(union) / float64(span)
	}
	return st, nil
}

// Comparison pairs integrated and separate drift for one event stream.
type Comparison struct {
	Integrated, Separate DriftStats
}

// Compare runs both channels over the same events.
func Compare(events []Event, cfg SeparateConfig) (Comparison, error) {
	sep, err := SimulateSeparate(events, cfg)
	if err != nil {
		return Comparison{}, err
	}
	sd, err := Drift(sep)
	if err != nil {
		return Comparison{}, err
	}
	id, err := Drift(SimulateIntegrated(events))
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Integrated: id, Separate: sd}, nil
}
