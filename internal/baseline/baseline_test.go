package baseline

import (
	"testing"
	"testing/quick"
	"time"

	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

func week(n int) time.Duration { return time.Duration(n) * 7 * 24 * time.Hour }

func sampleEvents() []Event {
	return []Event{
		{Activity: "Create", Kind: Start, At: t0},
		{Activity: "Create", Kind: Finish, At: t0.Add(30 * time.Hour)},
		{Activity: "Simulate", Kind: Start, At: t0.Add(31 * time.Hour)},
		{Activity: "Simulate", Kind: Finish, At: t0.Add(80 * time.Hour)},
	}
}

func cfg() SeparateConfig {
	return SeparateConfig{
		Period:       week(1),
		FirstMeeting: t0.Add(48 * time.Hour), // Wednesday meeting
		Seed:         1,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []SeparateConfig{
		{Period: 0, FirstMeeting: t0},
		{Period: week(1)},
		{Period: week(1), FirstMeeting: t0, MissProb: 1},
		{Period: week(1), FirstMeeting: t0, MissProb: -0.1},
	}
	for i, c := range bad {
		if _, err := SimulateSeparate(sampleEvents(), c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSimulateIntegratedZeroLag(t *testing.T) {
	reps := SimulateIntegrated(sampleEvents())
	for _, r := range reps {
		if r.Lag() != 0 {
			t.Fatalf("integrated lag = %v", r.Lag())
		}
	}
}

func TestSimulateSeparateWaitsForMeeting(t *testing.T) {
	reps, err := SimulateSeparate(sampleEvents(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	// First event (Mon 09:00) is recorded at the Wednesday meeting.
	if !reps[0].RecordedAt.Equal(t0.Add(48 * time.Hour)) {
		t.Fatalf("first report at %v", reps[0].RecordedAt)
	}
	for _, r := range reps {
		if r.RecordedAt.Before(r.At) {
			t.Fatalf("report before event: %+v", r)
		}
	}
}

func TestSimulateSeparateEventAtMeetingInstant(t *testing.T) {
	c := cfg()
	ev := []Event{{Activity: "X", Kind: Start, At: c.FirstMeeting}}
	reps, err := SimulateSeparate(ev, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reps[0].RecordedAt.Equal(c.FirstMeeting) {
		t.Fatalf("event at meeting recorded at %v", reps[0].RecordedAt)
	}
}

func TestMissedReportsSlip(t *testing.T) {
	c := cfg()
	c.MissProb = 0.9
	c.Seed = 42
	reps, err := SimulateSeparate(sampleEvents(), c)
	if err != nil {
		t.Fatal(err)
	}
	slipped := false
	for _, r := range reps {
		if r.Lag() > week(1) {
			slipped = true
		}
	}
	if !slipped {
		t.Fatal("high miss probability produced no multi-period lags")
	}
	// Deterministic under the same seed.
	reps2, _ := SimulateSeparate(sampleEvents(), c)
	for i := range reps {
		if !reps[i].RecordedAt.Equal(reps2[i].RecordedAt) {
			t.Fatal("separate simulation not deterministic")
		}
	}
}

func TestDrift(t *testing.T) {
	reps := []Report{
		{Event: Event{Activity: "A", Kind: Start, At: t0}, RecordedAt: t0.Add(2 * time.Hour)},
		{Event: Event{Activity: "A", Kind: Finish, At: t0.Add(4 * time.Hour)}, RecordedAt: t0.Add(8 * time.Hour)},
	}
	st, err := Drift(reps)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2 || st.MeanLag != 3*time.Hour || st.MaxLag != 4*time.Hour {
		t.Fatalf("drift = %+v", st)
	}
	// Stale union: [0,2h] + [4h,8h] = 6h over an 8h span = 0.75.
	if st.StaleFraction < 0.74 || st.StaleFraction > 0.76 {
		t.Fatalf("stale fraction = %v, want 0.75", st.StaleFraction)
	}
}

func TestDriftOverlappingIntervals(t *testing.T) {
	reps := []Report{
		{Event: Event{Activity: "A", Kind: Start, At: t0}, RecordedAt: t0.Add(4 * time.Hour)},
		{Event: Event{Activity: "B", Kind: Start, At: t0.Add(2 * time.Hour)}, RecordedAt: t0.Add(6 * time.Hour)},
	}
	st, err := Drift(reps)
	if err != nil {
		t.Fatal(err)
	}
	// Union [0,6h] over span 6h = 1.0.
	if st.StaleFraction != 1.0 {
		t.Fatalf("stale fraction = %v, want 1", st.StaleFraction)
	}
}

func TestDriftErrors(t *testing.T) {
	if _, err := Drift(nil); err == nil {
		t.Fatal("empty reports accepted")
	}
	bad := []Report{{Event: Event{At: t0.Add(time.Hour)}, RecordedAt: t0}}
	if _, err := Drift(bad); err == nil {
		t.Fatal("time-travelling report accepted")
	}
}

func TestCompareIntegratedWins(t *testing.T) {
	cmp, err := Compare(sampleEvents(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Integrated.MeanLag != 0 || cmp.Integrated.StaleFraction != 0 {
		t.Fatalf("integrated drift = %+v", cmp.Integrated)
	}
	if cmp.Separate.MeanLag <= 0 {
		t.Fatalf("separate drift = %+v", cmp.Separate)
	}
}

// Property: separate-channel lag is bounded below by zero and the mean lag
// grows with the reporting period.
func TestLagGrowsWithPeriod(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		d1 := time.Duration(int(p1%10)+1) * 24 * time.Hour
		d2 := time.Duration(int(p2%10)+1) * 24 * time.Hour
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		mk := func(period time.Duration) DriftStats {
			c := SeparateConfig{Period: period, FirstMeeting: t0.Add(period), Seed: 7}
			reps, err := SimulateSeparate(sampleEvents(), c)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Drift(reps)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		s1, s2 := mk(d1), mk(d2)
		return s1.MeanLag >= 0 && s2.MeanLag >= s1.MeanLag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
