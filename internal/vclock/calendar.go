package vclock

import (
	"fmt"
	"time"
)

// Calendar models working time: which weekdays are worked and the daily
// working window. Schedule arithmetic (AddWork, WorkBetween) skips
// non-working time, so a 16h task started Friday 09:00 on a standard
// calendar finishes Monday 17:00, not Saturday 01:00.
//
// The zero Calendar is invalid; use Standard or NewCalendar.
type Calendar struct {
	workdays [7]bool       // indexed by time.Weekday
	dayStart time.Duration // offset from midnight, e.g. 9h
	dayEnd   time.Duration // offset from midnight, e.g. 17h
	daily    time.Duration // dayEnd - dayStart
	perWeek  int           // number of working days per week
	hols     map[civilDate]bool
}

type civilDate struct {
	y int
	m time.Month
	d int
}

func toCivil(t time.Time) civilDate {
	y, m, d := t.Date()
	return civilDate{y, m, d}
}

// Standard returns the conventional Monday–Friday, 09:00–17:00 calendar.
func Standard() *Calendar {
	c, err := NewCalendar([]time.Weekday{
		time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday,
	}, 9*time.Hour, 17*time.Hour)
	if err != nil {
		panic(err) // static arguments; cannot fail
	}
	return c
}

// Continuous returns a 24×7 calendar in which working time equals elapsed
// time. It is useful for benchmarks and for compute-farm activities that
// run unattended.
func Continuous() *Calendar {
	c, err := NewCalendar([]time.Weekday{
		time.Sunday, time.Monday, time.Tuesday, time.Wednesday,
		time.Thursday, time.Friday, time.Saturday,
	}, 0, 24*time.Hour)
	if err != nil {
		panic(err)
	}
	return c
}

// NewCalendar builds a calendar from a set of working weekdays and a daily
// window [dayStart, dayEnd) expressed as offsets from midnight.
func NewCalendar(days []time.Weekday, dayStart, dayEnd time.Duration) (*Calendar, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("vclock: calendar needs at least one working day")
	}
	if dayStart < 0 || dayEnd > 24*time.Hour || dayStart >= dayEnd {
		return nil, fmt.Errorf("vclock: invalid daily window [%v, %v)", dayStart, dayEnd)
	}
	c := &Calendar{dayStart: dayStart, dayEnd: dayEnd, daily: dayEnd - dayStart,
		hols: make(map[civilDate]bool)}
	for _, d := range days {
		if d < 0 || d > 6 {
			return nil, fmt.Errorf("vclock: invalid weekday %d", d)
		}
		if !c.workdays[d] {
			c.workdays[d] = true
			c.perWeek++
		}
	}
	return c, nil
}

// AddHoliday marks the civil date containing t as non-working.
func (c *Calendar) AddHoliday(t time.Time) { c.hols[toCivil(t)] = true }

// DailyHours reports the length of the working window of one working day.
func (c *Calendar) DailyHours() time.Duration { return c.daily }

// IsWorkday reports whether the date containing t is a working day.
func (c *Calendar) IsWorkday(t time.Time) bool {
	return c.workdays[t.Weekday()] && !c.hols[toCivil(t)]
}

// dayWindow returns the working window for the date containing t.
func (c *Calendar) dayWindow(t time.Time) (start, end time.Time) {
	y, m, d := t.Date()
	midnight := time.Date(y, m, d, 0, 0, 0, 0, t.Location())
	return midnight.Add(c.dayStart), midnight.Add(c.dayEnd)
}

// NextWorkInstant returns the earliest instant ≥ t that lies inside a
// working window.
func (c *Calendar) NextWorkInstant(t time.Time) time.Time {
	for i := 0; ; i++ {
		if i > 366*8 {
			// A calendar with ≥1 working weekday always finds a day within
			// two weeks plus holidays; this guard catches corrupted state.
			panic("vclock: no working day found within 8 years")
		}
		ws, we := c.dayWindow(t)
		if c.IsWorkday(t) {
			if t.Before(ws) {
				return ws
			}
			if t.Before(we) {
				return t
			}
		}
		// advance to next midnight
		y, m, d := t.Date()
		t = time.Date(y, m, d, 0, 0, 0, 0, t.Location()).Add(24 * time.Hour)
	}
}

// AddWork returns the instant at which an amount of working time `work`,
// started at t, completes. Starting instants outside working windows are
// first rolled forward to the next working instant. AddWork panics on
// negative work.
func (c *Calendar) AddWork(t time.Time, work time.Duration) time.Time {
	if work < 0 {
		panic(fmt.Sprintf("vclock: AddWork negative duration %v", work))
	}
	t = c.NextWorkInstant(t)
	for work > 0 {
		_, we := c.dayWindow(t)
		avail := we.Sub(t)
		if avail >= work {
			return t.Add(work)
		}
		work -= avail
		t = c.NextWorkInstant(we)
	}
	return t
}

// WorkBetween reports the amount of working time between a and b.
// If b precedes a the result is zero.
func (c *Calendar) WorkBetween(a, b time.Time) time.Duration {
	if !b.After(a) {
		return 0
	}
	var total time.Duration
	t := c.NextWorkInstant(a)
	for t.Before(b) {
		_, we := c.dayWindow(t)
		end := we
		if b.Before(we) {
			end = b
		}
		if end.After(t) {
			total += end.Sub(t)
		}
		t = c.NextWorkInstant(we)
	}
	return total
}

// Workdays converts a number of whole working days into working time.
func (c *Calendar) Workdays(n int) time.Duration {
	return time.Duration(n) * c.daily
}
