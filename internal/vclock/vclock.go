// Package vclock provides the virtual time base used throughout flowsched.
//
// All flow executions, schedule simulations, and tool runs advance a
// simulated clock rather than wall time, which makes every experiment
// deterministic and lets a multi-week design project "run" in microseconds.
// The package also models business calendars (working days and hours) so
// that schedule arithmetic — "this task takes three working days" — matches
// what a project-management system would compute.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Epoch is the default project start used when none is specified:
// Monday, 1995-06-05 09:00 UTC (the week DAC 1995 took place).
var Epoch = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

// Clock is a monotonic virtual clock. The zero value is not usable; create
// one with New or NewAt. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// New returns a clock starting at Epoch.
func New() *Clock { return NewAt(Epoch) }

// NewAt returns a clock starting at the given instant.
func NewAt(start time.Time) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration is a programming error and panics:
// virtual time, like real time, is monotonic.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic(fmt.Sprintf("vclock: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to t. If t is not after the current
// time the clock is unchanged. It returns the (possibly unchanged) time.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}

// Set rewinds or forwards the clock unconditionally. It exists for tests
// and for restoring persisted sessions; simulation code should use Advance.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
