package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("New clock at %v, want %v", c.Now(), Epoch)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New()
	got := c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Advance = %v, want %v", got, want)
	}
	if !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestClockAdvanceTo(t *testing.T) {
	c := New()
	future := Epoch.Add(3 * time.Hour)
	if got := c.AdvanceTo(future); !got.Equal(future) {
		t.Fatalf("AdvanceTo future = %v, want %v", got, future)
	}
	// Moving backwards is a no-op.
	if got := c.AdvanceTo(Epoch); !got.Equal(future) {
		t.Fatalf("AdvanceTo past moved clock to %v, want %v", got, future)
	}
}

func TestClockSet(t *testing.T) {
	c := New()
	past := Epoch.Add(-24 * time.Hour)
	c.Set(past)
	if !c.Now().Equal(past) {
		t.Fatalf("Set did not rewind: %v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	const workers, steps = 8, 250
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * steps * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Fatalf("concurrent Advance lost updates: %v, want %v", c.Now(), want)
	}
}

func TestStandardCalendarBasics(t *testing.T) {
	cal := Standard()
	if got := cal.DailyHours(); got != 8*time.Hour {
		t.Fatalf("DailyHours = %v, want 8h", got)
	}
	// Epoch is a Monday 09:00.
	if !cal.IsWorkday(Epoch) {
		t.Fatal("Epoch (Monday) should be a workday")
	}
	sat := time.Date(1995, time.June, 10, 12, 0, 0, 0, time.UTC)
	if cal.IsWorkday(sat) {
		t.Fatal("Saturday should not be a workday")
	}
}

func TestNewCalendarValidation(t *testing.T) {
	if _, err := NewCalendar(nil, 9*time.Hour, 17*time.Hour); err == nil {
		t.Fatal("empty weekday set accepted")
	}
	if _, err := NewCalendar([]time.Weekday{time.Monday}, 17*time.Hour, 9*time.Hour); err == nil {
		t.Fatal("inverted daily window accepted")
	}
	if _, err := NewCalendar([]time.Weekday{time.Monday}, -time.Hour, 9*time.Hour); err == nil {
		t.Fatal("negative dayStart accepted")
	}
	if _, err := NewCalendar([]time.Weekday{time.Weekday(9)}, 9*time.Hour, 17*time.Hour); err == nil {
		t.Fatal("invalid weekday accepted")
	}
}

func TestNextWorkInstant(t *testing.T) {
	cal := Standard()
	cases := []struct {
		name string
		in   time.Time
		want time.Time
	}{
		{"inside window unchanged",
			time.Date(1995, time.June, 5, 10, 30, 0, 0, time.UTC),
			time.Date(1995, time.June, 5, 10, 30, 0, 0, time.UTC)},
		{"before window rolls to 09:00",
			time.Date(1995, time.June, 5, 7, 0, 0, 0, time.UTC),
			time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)},
		{"after window rolls to next day",
			time.Date(1995, time.June, 5, 18, 0, 0, 0, time.UTC),
			time.Date(1995, time.June, 6, 9, 0, 0, 0, time.UTC)},
		{"weekend rolls to Monday",
			time.Date(1995, time.June, 10, 11, 0, 0, 0, time.UTC),
			time.Date(1995, time.June, 12, 9, 0, 0, 0, time.UTC)},
	}
	for _, tc := range cases {
		if got := cal.NextWorkInstant(tc.in); !got.Equal(tc.want) {
			t.Errorf("%s: NextWorkInstant(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestAddWorkWithinDay(t *testing.T) {
	cal := Standard()
	start := time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)
	got := cal.AddWork(start, 4*time.Hour)
	want := start.Add(4 * time.Hour)
	if !got.Equal(want) {
		t.Fatalf("AddWork 4h = %v, want %v", got, want)
	}
}

func TestAddWorkSpansWeekend(t *testing.T) {
	cal := Standard()
	// Friday 09:00 + 16h of work = Monday 17:00.
	fri := time.Date(1995, time.June, 9, 9, 0, 0, 0, time.UTC)
	got := cal.AddWork(fri, 16*time.Hour)
	want := time.Date(1995, time.June, 12, 17, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("AddWork over weekend = %v, want %v", got, want)
	}
}

func TestAddWorkZero(t *testing.T) {
	cal := Standard()
	// Zero work from a non-working instant still rolls forward to work time.
	sat := time.Date(1995, time.June, 10, 12, 0, 0, 0, time.UTC)
	got := cal.AddWork(sat, 0)
	want := time.Date(1995, time.June, 12, 9, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("AddWork(sat, 0) = %v, want %v", got, want)
	}
}

func TestAddWorkNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddWork negative did not panic")
		}
	}()
	Standard().AddWork(Epoch, -time.Minute)
}

func TestHolidaySkipped(t *testing.T) {
	cal := Standard()
	tue := time.Date(1995, time.June, 6, 0, 0, 0, 0, time.UTC)
	cal.AddHoliday(tue)
	// Monday 09:00 + 10h: 8h Monday, then Tuesday is a holiday, so the
	// remaining 2h land Wednesday 09:00–11:00.
	got := cal.AddWork(Epoch, 10*time.Hour)
	want := time.Date(1995, time.June, 7, 11, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("AddWork over holiday = %v, want %v", got, want)
	}
}

func TestWorkBetween(t *testing.T) {
	cal := Standard()
	a := time.Date(1995, time.June, 9, 13, 0, 0, 0, time.UTC)  // Friday 13:00
	b := time.Date(1995, time.June, 12, 11, 0, 0, 0, time.UTC) // Monday 11:00
	// Friday 13:00–17:00 (4h) + Monday 09:00–11:00 (2h) = 6h.
	if got := cal.WorkBetween(a, b); got != 6*time.Hour {
		t.Fatalf("WorkBetween = %v, want 6h", got)
	}
	if got := cal.WorkBetween(b, a); got != 0 {
		t.Fatalf("WorkBetween reversed = %v, want 0", got)
	}
}

func TestContinuousCalendarIsElapsed(t *testing.T) {
	cal := Continuous()
	got := cal.AddWork(Epoch, 100*time.Hour)
	want := Epoch.Add(100 * time.Hour)
	if !got.Equal(want) {
		t.Fatalf("Continuous AddWork = %v, want %v", got, want)
	}
	if d := cal.WorkBetween(Epoch, want); d != 100*time.Hour {
		t.Fatalf("Continuous WorkBetween = %v, want 100h", d)
	}
}

func TestWorkdays(t *testing.T) {
	if got := Standard().Workdays(3); got != 24*time.Hour {
		t.Fatalf("Workdays(3) = %v, want 24h of work", got)
	}
}

// Property: AddWork then WorkBetween is the identity on working durations.
func TestAddWorkWorkBetweenRoundTrip(t *testing.T) {
	cal := Standard()
	f := func(startOffsetMin uint16, workMin uint16) bool {
		start := Epoch.Add(time.Duration(startOffsetMin) * time.Minute)
		work := time.Duration(workMin) * time.Minute
		start = cal.NextWorkInstant(start)
		end := cal.AddWork(start, work)
		return cal.WorkBetween(start, end) == work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddWork is monotone in its work argument.
func TestAddWorkMonotone(t *testing.T) {
	cal := Standard()
	f := func(a, b uint16) bool {
		wa := time.Duration(a) * time.Minute
		wb := time.Duration(b) * time.Minute
		ta := cal.AddWork(Epoch, wa)
		tb := cal.AddWork(Epoch, wb)
		if wa <= wb {
			return !ta.After(tb)
		}
		return !tb.After(ta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: work composed across two AddWork calls equals one call.
func TestAddWorkComposes(t *testing.T) {
	cal := Standard()
	f := func(a, b uint16) bool {
		wa := time.Duration(a) * time.Minute
		wb := time.Duration(b) * time.Minute
		step := cal.AddWork(cal.AddWork(Epoch, wa), wb)
		whole := cal.AddWork(Epoch, wa+wb)
		return step.Equal(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
