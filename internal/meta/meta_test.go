package meta

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/schema"
	"flowsched/internal/store"
)

var t0 = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

func newSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(store.NewDB(), schema.MustParse(fig4))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceCreatesContainers(t *testing.T) {
	s := newSpace(t)
	for _, name := range []string{"netlist", "stimuli", "performance", "run:Create", "run:Simulate"} {
		if s.DB.Container(name) == nil {
			t.Errorf("container %q missing", name)
		}
	}
	if got := len(s.DB.ContainersIn(store.ExecutionSpace)); got != 5 {
		t.Fatalf("execution containers = %d, want 5", got)
	}
}

func TestNewSpaceRejectsInvalidSchema(t *testing.T) {
	if _, err := NewSpace(store.NewDB(), schema.New("empty")); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestImportEntity(t *testing.T) {
	s := newSpace(t)
	ref := design.Ref{Class: "stimuli", Version: 1, Sum: 42}
	e, err := s.ImportEntity("stimuli", ref, "jbb", t0)
	if err != nil {
		t.Fatal(err)
	}
	var ent Entity
	if err := e.Decode(&ent); err != nil {
		t.Fatal(err)
	}
	if ent.Class != "stimuli" || ent.Data != ref || ent.Activity != "" || ent.By != "jbb" {
		t.Fatalf("entity = %+v", ent)
	}
	if _, err := s.ImportEntity("editor", ref, "jbb", t0); err == nil {
		t.Fatal("imported into tool class")
	}
	if _, err := s.ImportEntity("ghost", ref, "jbb", t0); err == nil {
		t.Fatal("imported into unknown class")
	}
}

func TestRunLifecycle(t *testing.T) {
	s := newSpace(t)
	r1, err := s.BeginRun("Create", "editor#1", "ewj", t0)
	if err != nil {
		t.Fatal(err)
	}
	var run Run
	r1e := s.DB.Get(r1.ID)
	r1e.Decode(&run)
	if run.Iteration != 1 || run.Status != RunInProgress || run.Tool != "editor#1" {
		t.Fatalf("run = %+v", run)
	}
	if err := s.FinishRun(r1.ID, t0.Add(2*time.Hour), RunSucceeded); err != nil {
		t.Fatal(err)
	}
	// Entries are immutable: the pointer held across FinishRun keeps the
	// old payload; a fresh Get sees the new one.
	r1e.Decode(&run)
	if run.Status != RunInProgress {
		t.Fatalf("held entry pointer changed under us: %+v", run)
	}
	s.DB.Get(r1.ID).Decode(&run)
	if run.Status != RunSucceeded || !run.Finished.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("finished run = %+v", run)
	}
	// Second run gets iteration 2.
	r2, _ := s.BeginRun("Create", "editor#1", "ewj", t0.Add(3*time.Hour))
	var run2 Run
	s.DB.Get(r2.ID).Decode(&run2)
	if run2.Iteration != 2 {
		t.Fatalf("iteration = %d, want 2", run2.Iteration)
	}
}

func TestRunLifecycleErrors(t *testing.T) {
	s := newSpace(t)
	if _, err := s.BeginRun("Nope", "t", "d", t0); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if err := s.FinishRun("ghost/1", t0, RunSucceeded); err == nil {
		t.Fatal("unknown run accepted")
	}
	r, _ := s.BeginRun("Create", "e", "d", t0)
	if err := s.FinishRun(r.ID, t0.Add(-time.Hour), RunSucceeded); err == nil {
		t.Fatal("finish before start accepted")
	}
	s.FinishRun(r.ID, t0.Add(time.Hour), RunFailed)
	if err := s.FinishRun(r.ID, t0.Add(2*time.Hour), RunSucceeded); err == nil {
		t.Fatal("double finish accepted")
	}
}

func TestRecordEntity(t *testing.T) {
	s := newSpace(t)
	stim, _ := s.ImportEntity("stimuli", design.Ref{Class: "stimuli", Version: 1}, "jbb", t0)
	run, _ := s.BeginRun("Create", "editor#1", "ewj", t0)
	s.FinishRun(run.ID, t0.Add(time.Hour), RunSucceeded)
	nref := design.Ref{Class: "netlist", Version: 1, Sum: 7}
	ne, err := s.RecordEntity("netlist", run.ID, nref)
	if err != nil {
		t.Fatal(err)
	}
	var ent Entity
	s.DB.Get(ne.ID).Decode(&ent)
	if ent.Activity != "Create" || ent.RunID != run.ID || ent.Data != nref {
		t.Fatalf("entity = %+v", ent)
	}
	if ent.By != "ewj" || !ent.Finished.Equal(t0.Add(time.Hour)) {
		t.Fatalf("entity attribution = %+v", ent)
	}

	// Simulate consumes netlist + stimuli; deps recorded.
	run2, _ := s.BeginRun("Simulate", "sim#1", "ewj", t0.Add(time.Hour))
	s.FinishRun(run2.ID, t0.Add(3*time.Hour), RunSucceeded)
	pe, err := s.RecordEntity("performance", run2.ID,
		design.Ref{Class: "performance", Version: 1}, ne.ID, stim.ID)
	if err != nil {
		t.Fatal(err)
	}
	deps := s.DB.Get(pe.ID).Deps
	if len(deps) != 3 { // run + two entity deps
		t.Fatalf("deps = %v", deps)
	}
}

func TestRecordEntityErrors(t *testing.T) {
	s := newSpace(t)
	run, _ := s.BeginRun("Create", "e", "d", t0)
	s.FinishRun(run.ID, t0.Add(time.Hour), RunSucceeded)
	if _, err := s.RecordEntity("stimuli", run.ID, design.Ref{}); err == nil {
		t.Fatal("recorded entity for primary input class")
	}
	if _, err := s.RecordEntity("performance", run.ID, design.Ref{}); err == nil {
		t.Fatal("recorded entity under wrong activity's run")
	}
	if _, err := s.RecordEntity("netlist", "ghost/1", design.Ref{}); err == nil {
		t.Fatal("unknown run accepted")
	}
}

func TestEntitiesAndRunsQueries(t *testing.T) {
	s := newSpace(t)
	run, _ := s.BeginRun("Create", "e", "d", t0)
	s.FinishRun(run.ID, t0.Add(time.Hour), RunSucceeded)
	s.RecordEntity("netlist", run.ID, design.Ref{Class: "netlist", Version: 1})
	run2, _ := s.BeginRun("Create", "e", "d", t0.Add(2*time.Hour))
	s.FinishRun(run2.ID, t0.Add(3*time.Hour), RunSucceeded)
	s.RecordEntity("netlist", run2.ID, design.Ref{Class: "netlist", Version: 2})

	entries, ents, err := s.Entities("netlist")
	if err != nil || len(entries) != 2 || len(ents) != 2 {
		t.Fatalf("Entities = %d/%d, %v", len(entries), len(ents), err)
	}
	if ents[1].Data.Version != 2 {
		t.Fatalf("second entity = %+v", ents[1])
	}
	_, latest, err := s.LatestEntity("netlist")
	if err != nil || latest == nil || latest.Data.Version != 2 {
		t.Fatalf("LatestEntity = %+v, %v", latest, err)
	}
	_, none, err := s.LatestEntity("performance")
	if err != nil || none != nil {
		t.Fatalf("LatestEntity(empty) = %+v, %v", none, err)
	}
	_, runs, err := s.Runs("Create")
	if err != nil || len(runs) != 2 || runs[1].Iteration != 2 {
		t.Fatalf("Runs = %+v, %v", runs, err)
	}
	if _, _, err := s.Entities("ghost"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, _, err := s.Runs("ghost"); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if _, _, err := s.LatestEntity("ghost"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// Reproduces the instance population of the paper's Fig. 6: after two
// Create iterations and two Simulate iterations, the netlist and
// performance containers each hold two entity instances.
func TestFig6Population(t *testing.T) {
	s := newSpace(t)
	stim, _ := s.ImportEntity("stimuli", design.Ref{Class: "stimuli", Version: 1}, "jbb", t0)
	at := t0
	var lastNetlist *store.Entry
	for i := 0; i < 2; i++ {
		r, _ := s.BeginRun("Create", "editor#1", "ewj", at)
		at = at.Add(time.Hour)
		s.FinishRun(r.ID, at, RunSucceeded)
		lastNetlist, _ = s.RecordEntity("netlist", r.ID,
			design.Ref{Class: "netlist", Version: i + 1})
		r2, _ := s.BeginRun("Simulate", "sim#1", "ewj", at)
		at = at.Add(time.Hour)
		s.FinishRun(r2.ID, at, RunSucceeded)
		s.RecordEntity("performance", r2.ID,
			design.Ref{Class: "performance", Version: i + 1}, lastNetlist.ID, stim.ID)
	}
	dump := s.DB.Dump()
	for _, want := range []string{"netlist/2", "performance/2", "run:Create/2", "run:Simulate/2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Fig. 6 dump missing %q:\n%s", want, dump)
		}
	}
}
