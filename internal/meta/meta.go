// Package meta implements the execution half of Level 3: the design
// metadata objects created when a flow is actually executed.
//
// For each data class of the task schema the execution space holds a
// container of entity instances; for each activity it holds a container of
// runs. A run records one application of a tool (who, when, which tool
// instance, which iteration); an entity instance records one version of
// design data (its Level 4 ref, producing run, timestamps). In the paper's
// Fig. 2 these are the Run / Entity Instance / Instance Dependency objects
// of the Hercules representation.
package meta

import (
	"fmt"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/schema"
	"flowsched/internal/store"
)

// RunContainer returns the container name for an activity's runs.
func RunContainer(activity string) string { return "run:" + activity }

// RunStatus is the outcome of a run.
type RunStatus string

const (
	RunInProgress RunStatus = "in-progress"
	RunSucceeded  RunStatus = "succeeded"
	RunFailed     RunStatus = "failed"
)

// Run is the payload of a run instance: the metadata of one tool
// application.
type Run struct {
	Activity  string    `json:"activity"`
	Tool      string    `json:"tool"`      // bound tool instance ref
	By        string    `json:"by"`        // designer
	Iteration int       `json:"iteration"` // 1-based per activity
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished,omitempty"`
	Status    RunStatus `json:"status"`
}

// Entity is the payload of an entity instance: design metadata about one
// version of design data.
type Entity struct {
	Class    string     `json:"class"`
	Activity string     `json:"activity,omitempty"` // producing activity; "" if imported
	RunID    string     `json:"run,omitempty"`      // producing run entry ID
	Data     design.Ref `json:"data"`               // Level 4 link
	By       string     `json:"by"`
	Started  time.Time  `json:"started"`
	Finished time.Time  `json:"finished"`
}

// Space is a typed view of a task database's execution space for one
// schema. Creating a Space creates the execution containers; it never
// touches Level 1 or Level 2 data.
//
// A Space is normally bound to a live *store.DB. AtView rebinds it to an
// immutable snapshot: reads answer from a consistent moment of the
// database and write methods fail.
type Space struct {
	// DB is the write target; nil for a view-bound (read-only) space.
	DB     *store.DB
	Schema *schema.Schema

	// rd overrides the read source when view-bound; nil means read the DB.
	rd store.Reader
}

// Reader returns the space's read source: the bound snapshot for a
// view-bound space, otherwise the live database.
func (s *Space) Reader() store.Reader {
	if s.rd != nil {
		return s.rd
	}
	return s.DB
}

// AtView returns a read-only copy of the space whose queries execute
// against the snapshot v. Write methods (ImportEntity, BeginRun, …) return
// an error on the returned space.
func (s *Space) AtView(v *store.View) *Space {
	return &Space{Schema: s.Schema, rd: v}
}

// writable returns the live DB, or an error for a view-bound space.
func (s *Space) writable() (*store.DB, error) {
	if s.DB == nil {
		return nil, fmt.Errorf("meta: space is bound to a read-only view")
	}
	return s.DB, nil
}

// NewSpace initializes the execution space: one entity container per data
// class and one run container per activity.
func NewSpace(db *store.DB, sch *schema.Schema) (*Space, error) {
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	for _, c := range sch.DataClasses() {
		if _, err := db.CreateContainer(c.Name, store.ExecutionSpace, c.Name); err != nil {
			return nil, err
		}
	}
	for _, r := range sch.Rules() {
		if _, err := db.CreateContainer(RunContainer(r.Activity), store.ExecutionSpace, r.Activity); err != nil {
			return nil, err
		}
	}
	return &Space{DB: db, Schema: sch}, nil
}

// ImportEntity records externally supplied design data (a primary input
// such as hand-written stimuli) as an entity instance with no producing
// run.
func (s *Space) ImportEntity(class string, data design.Ref, by string, at time.Time) (*store.Entry, error) {
	c := s.Schema.Class(class)
	if c == nil || c.Kind != schema.DataClass {
		return nil, fmt.Errorf("meta: %q is not a data class", class)
	}
	db, err := s.writable()
	if err != nil {
		return nil, err
	}
	return db.Put(class, at, Entity{
		Class: class, Data: data, By: by, Started: at, Finished: at,
	})
}

// BeginRun records the start of a tool application for an activity. The
// iteration number is assigned automatically (1-based per activity).
func (s *Space) BeginRun(activity, tool, by string, at time.Time) (*store.Entry, error) {
	rule := s.Schema.RuleByActivity(activity)
	if rule == nil {
		return nil, fmt.Errorf("meta: unknown activity %q", activity)
	}
	db, err := s.writable()
	if err != nil {
		return nil, err
	}
	cname := RunContainer(activity)
	iter := len(db.Container(cname).Entries) + 1
	return db.Put(cname, at, Run{
		Activity: activity, Tool: tool, By: by, Iteration: iter,
		Started: at, Status: RunInProgress,
	})
}

// FinishRun closes a run with the given status.
func (s *Space) FinishRun(runID string, at time.Time, status RunStatus) error {
	db, err := s.writable()
	if err != nil {
		return err
	}
	e := db.Get(runID)
	if e == nil {
		return fmt.Errorf("meta: unknown run %q", runID)
	}
	var r Run
	if err := e.Decode(&r); err != nil {
		return err
	}
	if r.Status != RunInProgress {
		return fmt.Errorf("meta: run %s already finished (%s)", runID, r.Status)
	}
	if at.Before(r.Started) {
		return fmt.Errorf("meta: run %s finish %v precedes start %v", runID, at, r.Started)
	}
	r.Finished = at
	r.Status = status
	return db.SetPayload(runID, r)
}

// RecordEntity files the entity instance produced by a successful run,
// recording its data ref, designer, and time span, with instance
// dependencies on the consumed entity instances.
func (s *Space) RecordEntity(class, runID string, data design.Ref, deps ...string) (*store.Entry, error) {
	rule := s.Schema.Producer(class)
	if rule == nil {
		return nil, fmt.Errorf("meta: class %q has no producing activity", class)
	}
	db, err := s.writable()
	if err != nil {
		return nil, err
	}
	re := db.Get(runID)
	if re == nil {
		return nil, fmt.Errorf("meta: unknown run %q", runID)
	}
	var r Run
	if err := re.Decode(&r); err != nil {
		return nil, err
	}
	if r.Activity != rule.Activity {
		return nil, fmt.Errorf("meta: run %s belongs to activity %s, not producer %s of %s",
			runID, r.Activity, rule.Activity, class)
	}
	allDeps := append([]string{runID}, deps...)
	return db.Put(class, r.Finished, Entity{
		Class: class, Activity: r.Activity, RunID: runID, Data: data,
		By: r.By, Started: r.Started, Finished: r.Finished,
	}, allDeps...)
}

// Entities returns the decoded entity instances of a class in version
// order, paired with their entries.
func (s *Space) Entities(class string) ([]*store.Entry, []Entity, error) {
	c := s.Reader().Container(class)
	if c == nil {
		return nil, nil, fmt.Errorf("meta: unknown class %q", class)
	}
	ents := make([]Entity, len(c.Entries))
	for i, e := range c.Entries {
		if err := e.Decode(&ents[i]); err != nil {
			return nil, nil, fmt.Errorf("meta: entity %s: %w", e.ID, err)
		}
	}
	return append([]*store.Entry(nil), c.Entries...), ents, nil
}

// LatestEntity returns the newest entity instance of a class, or nil if
// none exist yet.
func (s *Space) LatestEntity(class string) (*store.Entry, *Entity, error) {
	c := s.Reader().Container(class)
	if c == nil {
		return nil, nil, fmt.Errorf("meta: unknown class %q", class)
	}
	e := c.Latest()
	if e == nil {
		return nil, nil, nil
	}
	var ent Entity
	if err := e.Decode(&ent); err != nil {
		return nil, nil, err
	}
	return e, &ent, nil
}

// Runs returns the decoded runs of an activity in iteration order.
func (s *Space) Runs(activity string) ([]*store.Entry, []Run, error) {
	c := s.Reader().Container(RunContainer(activity))
	if c == nil {
		return nil, nil, fmt.Errorf("meta: unknown activity %q", activity)
	}
	runs := make([]Run, len(c.Entries))
	for i, e := range c.Entries {
		if err := e.Decode(&runs[i]); err != nil {
			return nil, nil, fmt.Errorf("meta: run %s: %w", e.ID, err)
		}
	}
	return append([]*store.Entry(nil), c.Entries...), runs, nil
}
