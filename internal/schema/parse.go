package schema

import (
	"fmt"
	"strings"
)

// Parse reads a task schema from its textual DSL. The grammar, one
// statement per line:
//
//	schema NAME                      (optional, at most once, first)
//	data NAME[, NAME...]             declare data classes
//	tool NAME[, NAME...]             declare tool classes
//	rule ACT: OUT <- TOOL(IN, ...)   construction rule with explicit activity
//	OUT <- TOOL(IN, ...)             rule; activity name derived from TOOL
//	# comment                        (also trailing comments)
//
// Blank lines are ignored. Parse validates the schema before returning it.
func Parse(src string) (*Schema, error) {
	s := New("schema")
	named := false
	sawStmt := false
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(s, line, &named, sawStmt); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
		sawStmt = true
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseLine(s *Schema, line string, named *bool, sawStmt bool) error {
	switch {
	case strings.HasPrefix(line, "schema "):
		name := strings.TrimSpace(strings.TrimPrefix(line, "schema "))
		if *named {
			return fmt.Errorf("duplicate schema statement")
		}
		if sawStmt {
			return fmt.Errorf("schema statement must come first")
		}
		if err := validName(name); err != nil {
			return err
		}
		s.Name = name
		*named = true
		return nil
	case strings.HasPrefix(line, "data "):
		return parseClassList(line[len("data "):], s.AddDataClass)
	case strings.HasPrefix(line, "tool "):
		return parseClassList(line[len("tool "):], s.AddToolClass)
	default:
		return parseRule(s, line)
	}
}

func parseClassList(list string, add func(string) (*Class, error)) error {
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("empty class name in list")
		}
		if _, err := add(name); err != nil {
			return err
		}
	}
	return nil
}

// parseRule handles both "rule ACT: OUT <- TOOL(IN,...)" and the
// activity-less form "OUT <- TOOL(IN,...)".
func parseRule(s *Schema, line string) error {
	activity := ""
	body := line
	if strings.HasPrefix(line, "rule ") {
		rest := strings.TrimPrefix(line, "rule ")
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return fmt.Errorf("rule statement missing ':' in %q", line)
		}
		activity = strings.TrimSpace(rest[:colon])
		body = strings.TrimSpace(rest[colon+1:])
	}
	arrow := strings.Index(body, "<-")
	if arrow < 0 {
		return fmt.Errorf("expected construction rule (OUT <- TOOL(...)), got %q", line)
	}
	out := strings.TrimSpace(body[:arrow])
	app := strings.TrimSpace(body[arrow+2:])
	open := strings.IndexByte(app, '(')
	if open < 0 || !strings.HasSuffix(app, ")") {
		return fmt.Errorf("rule application must be TOOL(inputs), got %q", app)
	}
	tool := strings.TrimSpace(app[:open])
	argsText := strings.TrimSpace(app[open+1 : len(app)-1])
	var inputs []string
	if argsText != "" {
		for _, a := range strings.Split(argsText, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return fmt.Errorf("empty input in rule %q", line)
			}
			inputs = append(inputs, a)
		}
	}
	if activity == "" {
		// Derive the activity name from the tool, capitalized: the paper
		// names activities after their function ("Simulate" for simulator).
		activity = deriveActivity(s, tool)
	}
	_, err := s.AddRule(activity, out, tool, inputs...)
	return err
}

// deriveActivity builds an unused activity name from a tool class name.
func deriveActivity(s *Schema, tool string) string {
	base := tool
	if base != "" {
		base = strings.ToUpper(base[:1]) + base[1:]
	}
	name := base
	for i := 2; s.RuleByActivity(name) != nil; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

// MustParse is Parse that panics on error, for tests and fixed fixtures.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}
