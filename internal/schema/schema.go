// Package schema implements Level 1 of the four-level flow-management
// architecture: the basic elements from which design flows are created.
//
// A task schema declares the entity classes of a design process — data
// classes (netlist, stimuli, performance, …) and tool classes (editor,
// simulator, …) — and a set of construction rules of the form
//
//	d_i <- f(d_1, ..., d_n)
//
// stating that an instance of data class d_i is created by applying tool f
// to instances of classes d_1..d_n (paper §IV.A). Each rule corresponds to
// one design activity; the example of the paper's Fig. 4 is
//
//	rule Create:   netlist     <- editor()
//	rule Simulate: performance <- simulator(netlist, stimuli)
//
// The schema is the only Level 1 object; instantiating it yields Level 2
// flows (package flow), and parsing it into a task database creates the
// entity and schedule containers of Level 3 (packages meta and sched).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// ClassKind distinguishes the two kinds of entity class in a task schema.
type ClassKind int

const (
	// DataClass describes design data (netlists, layouts, reports …).
	DataClass ClassKind = iota
	// ToolClass describes CAD tools that transform design data.
	ToolClass
)

// String returns "data" or "tool".
func (k ClassKind) String() string {
	switch k {
	case DataClass:
		return "data"
	case ToolClass:
		return "tool"
	default:
		return fmt.Sprintf("ClassKind(%d)", int(k))
	}
}

// Class is an entity class: a named data or tool type declared by a schema.
type Class struct {
	Name string
	Kind ClassKind
	// Attrs carries free-form annotations (e.g. "format": "spice").
	Attrs map[string]string
}

// Rule is a construction rule: Output <- Tool(Inputs...). Each rule defines
// one design activity.
type Rule struct {
	// Activity names the design activity the rule describes (e.g.
	// "Simulate"). Activity names are unique within a schema.
	Activity string
	// Output is the data class the activity produces.
	Output string
	// Tool is the tool class applied.
	Tool string
	// Inputs are the data classes consumed, in declaration order. Empty for
	// source activities such as Create.
	Inputs []string
}

// String renders the rule in the DSL syntax.
func (r *Rule) String() string {
	return fmt.Sprintf("rule %s: %s <- %s(%s)",
		r.Activity, r.Output, r.Tool, strings.Join(r.Inputs, ", "))
}

// Schema is a complete task schema: entity classes plus construction rules.
// Build one programmatically with New/AddDataClass/AddToolClass/AddRule, or
// parse the DSL with Parse. A schema must pass Validate before it is used
// to instantiate flows.
type Schema struct {
	Name    string
	classes map[string]*Class
	order   []string // class declaration order, for stable output
	rules   []*Rule
	byAct   map[string]*Rule
	byOut   map[string]*Rule
}

// New returns an empty schema with the given name.
func New(name string) *Schema {
	return &Schema{
		Name:    name,
		classes: make(map[string]*Class),
		byAct:   make(map[string]*Rule),
		byOut:   make(map[string]*Rule),
	}
}

func validName(s string) error {
	if s == "" {
		return fmt.Errorf("schema: empty name")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("schema: name %q contains invalid character %q", s, r)
		}
	}
	return nil
}

func (s *Schema) addClass(name string, kind ClassKind) (*Class, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if c, ok := s.classes[name]; ok {
		if c.Kind != kind {
			return nil, fmt.Errorf("schema: class %q redeclared as %v (was %v)", name, kind, c.Kind)
		}
		return c, nil // idempotent redeclaration
	}
	c := &Class{Name: name, Kind: kind, Attrs: make(map[string]string)}
	s.classes[name] = c
	s.order = append(s.order, name)
	return c, nil
}

// AddDataClass declares a data class. Redeclaring an existing data class is
// a no-op; redeclaring a tool class as data is an error.
func (s *Schema) AddDataClass(name string) (*Class, error) {
	return s.addClass(name, DataClass)
}

// AddToolClass declares a tool class.
func (s *Schema) AddToolClass(name string) (*Class, error) {
	return s.addClass(name, ToolClass)
}

// AddRule adds the construction rule `output <- tool(inputs...)` for the
// named activity. All referenced classes must already be declared with the
// correct kind; activity names and output classes must be unique.
func (s *Schema) AddRule(activity, output, tool string, inputs ...string) (*Rule, error) {
	if err := validName(activity); err != nil {
		return nil, fmt.Errorf("schema: invalid activity: %w", err)
	}
	if _, dup := s.byAct[activity]; dup {
		return nil, fmt.Errorf("schema: duplicate activity %q", activity)
	}
	out, ok := s.classes[output]
	if !ok {
		return nil, fmt.Errorf("schema: rule %s: undeclared output class %q", activity, output)
	}
	if out.Kind != DataClass {
		return nil, fmt.Errorf("schema: rule %s: output %q is a %v class, want data", activity, output, out.Kind)
	}
	if _, dup := s.byOut[output]; dup {
		return nil, fmt.Errorf("schema: data class %q already produced by activity %q",
			output, s.byOut[output].Activity)
	}
	tl, ok := s.classes[tool]
	if !ok {
		return nil, fmt.Errorf("schema: rule %s: undeclared tool class %q", activity, tool)
	}
	if tl.Kind != ToolClass {
		return nil, fmt.Errorf("schema: rule %s: %q is a %v class, want tool", activity, tool, tl.Kind)
	}
	seen := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		ic, ok := s.classes[in]
		if !ok {
			return nil, fmt.Errorf("schema: rule %s: undeclared input class %q", activity, in)
		}
		if ic.Kind != DataClass {
			return nil, fmt.Errorf("schema: rule %s: input %q is a %v class, want data", activity, in, ic.Kind)
		}
		if in == output {
			return nil, fmt.Errorf("schema: rule %s: output %q listed as its own input", activity, in)
		}
		if seen[in] {
			return nil, fmt.Errorf("schema: rule %s: duplicate input %q", activity, in)
		}
		seen[in] = true
	}
	r := &Rule{Activity: activity, Output: output, Tool: tool, Inputs: append([]string(nil), inputs...)}
	s.rules = append(s.rules, r)
	s.byAct[activity] = r
	s.byOut[output] = r
	return r, nil
}

// Class returns the named class, or nil if undeclared.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// Classes returns all classes in declaration order.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.classes[n])
	}
	return out
}

// DataClasses returns the data classes in declaration order.
func (s *Schema) DataClasses() []*Class { return s.classesOf(DataClass) }

// ToolClasses returns the tool classes in declaration order.
func (s *Schema) ToolClasses() []*Class { return s.classesOf(ToolClass) }

func (s *Schema) classesOf(k ClassKind) []*Class {
	var out []*Class
	for _, n := range s.order {
		if c := s.classes[n]; c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Rules returns the construction rules in declaration order.
func (s *Schema) Rules() []*Rule { return append([]*Rule(nil), s.rules...) }

// RuleByActivity returns the rule for the named activity, or nil.
func (s *Schema) RuleByActivity(activity string) *Rule { return s.byAct[activity] }

// Producer returns the rule whose output is the given data class, or nil if
// the class is a primary input.
func (s *Schema) Producer(dataClass string) *Rule { return s.byOut[dataClass] }

// Consumers returns the rules that take the given data class as an input,
// in declaration order.
func (s *Schema) Consumers(dataClass string) []*Rule {
	var out []*Rule
	for _, r := range s.rules {
		for _, in := range r.Inputs {
			if in == dataClass {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// PrimaryInputs returns the data classes not produced by any rule, in
// declaration order. These are the leaves to which the designer binds
// concrete data instances before execution.
func (s *Schema) PrimaryInputs() []string {
	var out []string
	for _, n := range s.order {
		c := s.classes[n]
		if c.Kind == DataClass && s.byOut[n] == nil {
			out = append(out, n)
		}
	}
	return out
}

// PrimaryOutputs returns the data classes produced by some rule but
// consumed by none, in declaration order: the final products of the
// design process.
func (s *Schema) PrimaryOutputs() []string {
	consumed := make(map[string]bool)
	for _, r := range s.rules {
		for _, in := range r.Inputs {
			consumed[in] = true
		}
	}
	var out []string
	for _, n := range s.order {
		c := s.classes[n]
		if c.Kind == DataClass && s.byOut[n] != nil && !consumed[n] {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks global schema consistency: at least one rule, no unused
// tool classes, no data-dependency cycles, and every non-primary data class
// reachable from some rule. AddRule already enforces local well-formedness.
func (s *Schema) Validate() error {
	if len(s.rules) == 0 {
		return fmt.Errorf("schema %s: no construction rules", s.Name)
	}
	usedTools := make(map[string]bool)
	for _, r := range s.rules {
		usedTools[r.Tool] = true
	}
	for _, c := range s.ToolClasses() {
		if !usedTools[c.Name] {
			return fmt.Errorf("schema %s: tool class %q is not used by any rule", s.Name, c.Name)
		}
	}
	if _, err := s.TopoRules(); err != nil {
		return err
	}
	return nil
}

// TopoRules returns the rules in a topological order of their data
// dependencies (producers before consumers), or an error naming a cycle.
// The order is deterministic: among ready rules, declaration order wins.
func (s *Schema) TopoRules() ([]*Rule, error) {
	// indegree = number of inputs that are produced by some rule and not
	// yet emitted.
	indeg := make(map[string]int, len(s.rules))
	for _, r := range s.rules {
		n := 0
		for _, in := range r.Inputs {
			if s.byOut[in] != nil {
				n++
			}
		}
		indeg[r.Activity] = n
	}
	var order []*Rule
	emitted := make(map[string]bool)
	for len(order) < len(s.rules) {
		progress := false
		for _, r := range s.rules {
			if emitted[r.Activity] || indeg[r.Activity] != 0 {
				continue
			}
			emitted[r.Activity] = true
			order = append(order, r)
			progress = true
			for _, c := range s.Consumers(r.Output) {
				indeg[c.Activity]--
			}
		}
		if !progress {
			var stuck []string
			for _, r := range s.rules {
				if !emitted[r.Activity] {
					stuck = append(stuck, r.Activity)
				}
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("schema %s: dependency cycle among activities %v", s.Name, stuck)
		}
	}
	return order, nil
}

// Format renders the schema in the DSL accepted by Parse, suitable for
// round-tripping and for reproducing the paper's Fig. 4 textually.
func (s *Schema) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.Name)
	if dc := s.DataClasses(); len(dc) > 0 {
		names := make([]string, len(dc))
		for i, c := range dc {
			names[i] = c.Name
		}
		fmt.Fprintf(&b, "data %s\n", strings.Join(names, ", "))
	}
	if tc := s.ToolClasses(); len(tc) > 0 {
		names := make([]string, len(tc))
		for i, c := range tc {
			names[i] = c.Name
		}
		fmt.Fprintf(&b, "tool %s\n", strings.Join(names, ", "))
	}
	for _, r := range s.rules {
		fmt.Fprintf(&b, "%s\n", r)
	}
	return b.String()
}
