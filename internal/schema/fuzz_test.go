package schema

import (
	"strings"
	"testing"
)

// FuzzParse checks that the DSL parser never panics and that every
// schema it accepts survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"schema x\ndata d\ntool t\nrule A: d <- t()",
		"data a, b\ntool t\na <- t()\nb <- t(a)",
		"# comment only",
		"rule broken",
		"data d\ntool t\nrule A: d <- t(",
		"schema é\ndata d\ntool t\nrule A: d <- t()",
		"data d\ntool t\nrule A: d <- t()\nrule A: d <- t()",
		strings.Repeat("data d\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted schemas must be valid and round-trippable.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted invalid schema: %v\n%s", err, src)
		}
		re, err := Parse(s.Format())
		if err != nil {
			t.Fatalf("Format output unparseable: %v\n%s", err, s.Format())
		}
		if re.Format() != s.Format() {
			t.Fatalf("Format not stable:\n%s\nvs\n%s", s.Format(), re.Format())
		}
	})
}
