package schema

import (
	"strings"
	"testing"
)

// fig4 is the paper's Fig. 4 example task schema.
const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

func buildFig4(t *testing.T) *Schema {
	t.Helper()
	s, err := Parse(fig4)
	if err != nil {
		t.Fatalf("Parse(fig4): %v", err)
	}
	return s
}

func TestParseFig4(t *testing.T) {
	s := buildFig4(t)
	if s.Name != "circuit" {
		t.Errorf("Name = %q, want circuit", s.Name)
	}
	if got := len(s.DataClasses()); got != 3 {
		t.Errorf("data classes = %d, want 3", got)
	}
	if got := len(s.ToolClasses()); got != 2 {
		t.Errorf("tool classes = %d, want 2", got)
	}
	if got := len(s.Rules()); got != 2 {
		t.Fatalf("rules = %d, want 2", got)
	}
	sim := s.RuleByActivity("Simulate")
	if sim == nil {
		t.Fatal("no Simulate rule")
	}
	if sim.Output != "performance" || sim.Tool != "simulator" {
		t.Errorf("Simulate rule = %v", sim)
	}
	if len(sim.Inputs) != 2 || sim.Inputs[0] != "netlist" || sim.Inputs[1] != "stimuli" {
		t.Errorf("Simulate inputs = %v", sim.Inputs)
	}
}

func TestPrimaryInputsOutputs(t *testing.T) {
	s := buildFig4(t)
	if got := s.PrimaryInputs(); len(got) != 1 || got[0] != "stimuli" {
		t.Errorf("PrimaryInputs = %v, want [stimuli]", got)
	}
	if got := s.PrimaryOutputs(); len(got) != 1 || got[0] != "performance" {
		t.Errorf("PrimaryOutputs = %v, want [performance]", got)
	}
}

func TestProducerConsumers(t *testing.T) {
	s := buildFig4(t)
	if p := s.Producer("netlist"); p == nil || p.Activity != "Create" {
		t.Errorf("Producer(netlist) = %v, want Create", p)
	}
	if p := s.Producer("stimuli"); p != nil {
		t.Errorf("Producer(stimuli) = %v, want nil", p)
	}
	cons := s.Consumers("netlist")
	if len(cons) != 1 || cons[0].Activity != "Simulate" {
		t.Errorf("Consumers(netlist) = %v", cons)
	}
}

func TestTopoRules(t *testing.T) {
	s := buildFig4(t)
	order, err := s.TopoRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Activity != "Create" || order[1].Activity != "Simulate" {
		acts := make([]string, len(order))
		for i, r := range order {
			acts[i] = r.Activity
		}
		t.Fatalf("TopoRules = %v, want [Create Simulate]", acts)
	}
}

func TestCycleDetected(t *testing.T) {
	s := New("cyclic")
	mustClass(t, s.AddDataClass, "a")
	mustClass(t, s.AddDataClass, "b")
	mustClass(t, s.AddToolClass, "t")
	if _, err := s.AddRule("A", "a", "t", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRule("B", "b", "t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate = %v, want cycle error", err)
	}
}

func mustClass(t *testing.T, add func(string) (*Class, error), name string) {
	t.Helper()
	if _, err := add(name); err != nil {
		t.Fatal(err)
	}
}

func TestAddRuleRejections(t *testing.T) {
	mk := func() *Schema {
		s := New("x")
		s.AddDataClass("d1")
		s.AddDataClass("d2")
		s.AddToolClass("t1")
		return s
	}
	cases := []struct {
		name string
		do   func(s *Schema) error
		want string
	}{
		{"undeclared output", func(s *Schema) error {
			_, err := s.AddRule("A", "nope", "t1")
			return err
		}, "undeclared output"},
		{"tool as output", func(s *Schema) error {
			_, err := s.AddRule("A", "t1", "t1")
			return err
		}, "want data"},
		{"undeclared tool", func(s *Schema) error {
			_, err := s.AddRule("A", "d1", "nope")
			return err
		}, "undeclared tool"},
		{"data as tool", func(s *Schema) error {
			_, err := s.AddRule("A", "d1", "d2")
			return err
		}, "want tool"},
		{"undeclared input", func(s *Schema) error {
			_, err := s.AddRule("A", "d1", "t1", "nope")
			return err
		}, "undeclared input"},
		{"self input", func(s *Schema) error {
			_, err := s.AddRule("A", "d1", "t1", "d1")
			return err
		}, "own input"},
		{"duplicate input", func(s *Schema) error {
			_, err := s.AddRule("A", "d1", "t1", "d2", "d2")
			return err
		}, "duplicate input"},
		{"duplicate activity", func(s *Schema) error {
			if _, err := s.AddRule("A", "d1", "t1"); err != nil {
				return err
			}
			_, err := s.AddRule("A", "d2", "t1")
			return err
		}, "duplicate activity"},
		{"duplicate producer", func(s *Schema) error {
			if _, err := s.AddRule("A", "d1", "t1"); err != nil {
				return err
			}
			_, err := s.AddRule("B", "d1", "t1")
			return err
		}, "already produced"},
		{"empty activity", func(s *Schema) error {
			_, err := s.AddRule("", "d1", "t1")
			return err
		}, "empty name"},
	}
	for _, tc := range cases {
		err := tc.do(mk())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestClassRedeclaration(t *testing.T) {
	s := New("x")
	if _, err := s.AddDataClass("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddDataClass("d"); err != nil {
		t.Fatalf("idempotent data redeclaration failed: %v", err)
	}
	if _, err := s.AddToolClass("d"); err == nil {
		t.Fatal("kind-changing redeclaration accepted")
	}
	if got := len(s.Classes()); got != 1 {
		t.Fatalf("classes = %d, want 1", got)
	}
}

func TestValidateUnusedTool(t *testing.T) {
	s := New("x")
	s.AddDataClass("d")
	s.AddToolClass("used")
	s.AddToolClass("idle")
	if _, err := s.AddRule("A", "d", "used"); err != nil {
		t.Fatal(err)
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "idle") {
		t.Fatalf("Validate = %v, want unused-tool error naming idle", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("x").Validate(); err == nil {
		t.Fatal("empty schema validated")
	}
}

func TestInvalidClassName(t *testing.T) {
	s := New("x")
	if _, err := s.AddDataClass("bad name"); err == nil {
		t.Fatal("space in class name accepted")
	}
	if _, err := s.AddDataClass(""); err == nil {
		t.Fatal("empty class name accepted")
	}
}
