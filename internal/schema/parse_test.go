package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseActivityDerivedFromTool(t *testing.T) {
	s, err := Parse(`
data netlist
tool editor
netlist <- editor()
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.RuleByActivity("Editor") == nil {
		t.Fatalf("derived activity Editor missing; rules: %v", s.Rules())
	}
}

func TestParseDerivedActivityDisambiguated(t *testing.T) {
	s, err := Parse(`
data a, b
tool t
a <- t()
b <- t(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.RuleByActivity("T") == nil || s.RuleByActivity("T2") == nil {
		t.Fatalf("want activities T and T2; rules: %v", s.Rules())
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	s, err := Parse(`
# leading comment
schema c   # not a trailing comment target? yes it is

data d  # trailing
tool t
rule A: d <- t()  # rule comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "c" {
		t.Fatalf("Name = %q", s.Name)
	}
	if len(s.Rules()) != 1 {
		t.Fatalf("rules = %d, want 1", len(s.Rules()))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing colon", "data d\ntool t\nrule A d <- t()", "missing ':'"},
		{"missing arrow", "data d\ntool t\nrule A: d t()", "construction rule"},
		{"garbage line", "data d\ntool t\nwhatever", "construction rule"},
		{"missing parens", "data d\ntool t\nrule A: d <- t", "TOOL(inputs)"},
		{"empty input", "data d,e\ntool t\nrule A: d <- t(e,)", "empty input"},
		{"duplicate schema stmt", "schema a\nschema b\ndata d\ntool t\nrule A: d <- t()", "duplicate schema"},
		{"schema not first", "data d\nschema b\ntool t\nrule A: d <- t()", "must come first"},
		{"empty class in list", "data d,,e\ntool t\nrule A: d <- t()", "empty class name"},
		{"validation failure propagates", "data d\ntool t, idle\nrule A: d <- t()", "not used"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestParseErrorReportsLine(t *testing.T) {
	_, err := Parse("data d\ntool t\nbogus line here\nrule A: d <- t()")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `
schema asic
data rtl, netlist, layout, drcreport
tool synthesizer, router, checker
rule Synthesize: netlist <- synthesizer(rtl)
rule Route:      layout  <- router(netlist)
rule Check:      drcreport <- checker(layout, netlist)
`
	s1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s1.Format())
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, s1.Format())
	}
	if s1.Format() != s2.Format() {
		t.Fatalf("Format not a fixed point:\n%s\nvs\n%s", s1.Format(), s2.Format())
	}
	if len(s2.Rules()) != 3 || s2.Name != "asic" {
		t.Fatalf("round trip lost content: %s", s2.Format())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("nonsense")
}

// Property: any schema built from a random chain of activities parses its
// own Format output back to an equivalent schema.
func TestFormatRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		depth := int(n%8) + 1
		s := New("chain")
		s.AddToolClass("tool0")
		prev := ""
		for i := 0; i <= depth; i++ {
			name := "d" + string(rune('a'+i))
			s.AddDataClass(name)
			if i > 0 {
				if _, err := s.AddRule("A"+string(rune('a'+i)), name, "tool0", prev); err != nil {
					return false
				}
			}
			prev = name
		}
		if err := s.Validate(); err != nil {
			return false
		}
		re, err := Parse(s.Format())
		if err != nil {
			return false
		}
		return re.Format() == s.Format() && len(re.Rules()) == depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoRules emits producers before consumers.
func TestTopoOrderProperty(t *testing.T) {
	s := buildFig4(t)
	order, err := s.TopoRules()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, r := range order {
		pos[r.Output] = i
	}
	for i, r := range order {
		for _, in := range r.Inputs {
			if p, produced := pos[in]; produced && p >= i {
				t.Fatalf("consumer %s at %d before producer of %s at %d", r.Activity, i, in, p)
			}
		}
	}
}
