// Package level implements resource leveling and optimization — the
// paper's third motivating advantage (§I): "previous schedule data can be
// used … to optimize the resources associated with future projects."
//
// Given the activity network of a plan and a pool of interchangeable
// resources (designers), Level produces a list schedule: activities are
// dispatched in critical-path priority order onto the first free
// resource, respecting precedence. MinimalTeam then answers the
// optimization question directly: the smallest team whose makespan stays
// within a tolerance of the resource-unconstrained critical path.
package level

import (
	"fmt"
	"sort"
	"time"
)

// Task is one activity to schedule.
type Task struct {
	Name     string
	Duration time.Duration
	Preds    []string
}

// Assignment is one scheduled activity.
type Assignment struct {
	Task     string
	Resource string
	// Start and Finish are offsets from project start in working time.
	Start, Finish time.Duration
}

// Result is a leveled schedule.
type Result struct {
	Assignments []Assignment
	// Makespan is the overall span.
	Makespan time.Duration
	// CriticalPathLength is the precedence-only lower bound.
	CriticalPathLength time.Duration
	byTask             map[string]Assignment
}

// Of returns a task's assignment.
func (r *Result) Of(task string) (Assignment, bool) {
	a, ok := r.byTask[task]
	return a, ok
}

// Utilization reports busy-time fraction per resource over the makespan.
func (r *Result) Utilization() map[string]float64 {
	busy := make(map[string]time.Duration)
	for _, a := range r.Assignments {
		busy[a.Resource] += a.Finish - a.Start
	}
	out := make(map[string]float64, len(busy))
	for res, d := range busy {
		if r.Makespan > 0 {
			out[res] = float64(d) / float64(r.Makespan)
		}
	}
	return out
}

// validate checks the task set and returns indices and successor lists.
func validate(tasks []Task) (map[string]int, [][]int, error) {
	if len(tasks) == 0 {
		return nil, nil, fmt.Errorf("level: no tasks")
	}
	idx := make(map[string]int, len(tasks))
	for i, t := range tasks {
		if t.Name == "" {
			return nil, nil, fmt.Errorf("level: task %d has empty name", i)
		}
		if _, dup := idx[t.Name]; dup {
			return nil, nil, fmt.Errorf("level: duplicate task %q", t.Name)
		}
		if t.Duration <= 0 {
			return nil, nil, fmt.Errorf("level: task %q duration must be positive", t.Name)
		}
		idx[t.Name] = i
	}
	succ := make([][]int, len(tasks))
	for i, t := range tasks {
		for _, p := range t.Preds {
			pi, ok := idx[p]
			if !ok {
				return nil, nil, fmt.Errorf("level: task %q references unknown predecessor %q", t.Name, p)
			}
			if pi == i {
				return nil, nil, fmt.Errorf("level: task %q is its own predecessor", t.Name)
			}
			succ[pi] = append(succ[pi], i)
		}
	}
	return idx, succ, nil
}

// ranks computes each task's critical-path rank: the longest duration
// chain from the task to any sink (inclusive). It errors on cycles.
func ranks(tasks []Task, idx map[string]int, succ [][]int) ([]time.Duration, error) {
	rank := make([]time.Duration, len(tasks))
	state := make([]int, len(tasks)) // 0 unvisited, 1 in stack, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("level: precedence cycle through %q", tasks[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		var best time.Duration
		for _, s := range succ[i] {
			if err := visit(s); err != nil {
				return err
			}
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[i] = best + tasks[i].Duration
		state[i] = 2
		return nil
	}
	for i := range tasks {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return rank, nil
}

// Level schedules tasks onto the named resources by critical-path-first
// list scheduling.
func Level(tasks []Task, resources []string) (*Result, error) {
	if len(resources) == 0 {
		return nil, fmt.Errorf("level: no resources")
	}
	seen := make(map[string]bool, len(resources))
	for _, r := range resources {
		if r == "" {
			return nil, fmt.Errorf("level: empty resource name")
		}
		if seen[r] {
			return nil, fmt.Errorf("level: duplicate resource %q", r)
		}
		seen[r] = true
	}
	idx, succ, err := validate(tasks)
	if err != nil {
		return nil, err
	}
	rank, err := ranks(tasks, idx, succ)
	if err != nil {
		return nil, err
	}
	// Critical-path lower bound = max rank.
	var cp time.Duration
	for _, r := range rank {
		if r > cp {
			cp = r
		}
	}

	res := &Result{byTask: make(map[string]Assignment, len(tasks)), CriticalPathLength: cp}
	freeAt := make(map[string]time.Duration, len(resources))
	finished := make([]time.Duration, len(tasks))
	done := make([]bool, len(tasks))
	remaining := len(tasks)

	for remaining > 0 {
		// Ready tasks: all predecessors done.
		var ready []int
		for i, t := range tasks {
			if done[i] {
				continue
			}
			ok := true
			for _, p := range t.Preds {
				if !done[idx[p]] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		// Highest rank first; ties by name for determinism.
		sort.Slice(ready, func(a, b int) bool {
			if rank[ready[a]] != rank[ready[b]] {
				return rank[ready[a]] > rank[ready[b]]
			}
			return tasks[ready[a]].Name < tasks[ready[b]].Name
		})
		// Dispatch as many ready tasks as resources allow this wave.
		for _, i := range ready {
			// Pick the earliest-free resource; ties by name.
			var bestRes string
			for _, r := range resources {
				if bestRes == "" || freeAt[r] < freeAt[bestRes] ||
					(freeAt[r] == freeAt[bestRes] && r < bestRes) {
					bestRes = r
				}
			}
			earliest := freeAt[bestRes]
			for _, p := range tasks[i].Preds {
				if f := finished[idx[p]]; f > earliest {
					earliest = f
				}
			}
			a := Assignment{
				Task: tasks[i].Name, Resource: bestRes,
				Start: earliest, Finish: earliest + tasks[i].Duration,
			}
			res.Assignments = append(res.Assignments, a)
			res.byTask[a.Task] = a
			freeAt[bestRes] = a.Finish
			finished[i] = a.Finish
			done[i] = true
			remaining--
			if a.Finish > res.Makespan {
				res.Makespan = a.Finish
			}
		}
	}
	return res, nil
}

// MinimalTeam finds the smallest team size in [1, maxTeam] whose leveled
// makespan is within tolerance (e.g. 1.05 = 5%) of the critical-path
// lower bound, returning the size and its schedule. If no size meets the
// tolerance, the largest team's schedule is returned with its size.
func MinimalTeam(tasks []Task, maxTeam int, tolerance float64) (int, *Result, error) {
	if maxTeam < 1 {
		return 0, nil, fmt.Errorf("level: maxTeam must be >= 1")
	}
	if tolerance < 1 {
		return 0, nil, fmt.Errorf("level: tolerance must be >= 1")
	}
	var last *Result
	for size := 1; size <= maxTeam; size++ {
		resources := make([]string, size)
		for i := range resources {
			resources[i] = fmt.Sprintf("r%02d", i+1)
		}
		r, err := Level(tasks, resources)
		if err != nil {
			return 0, nil, err
		}
		last = r
		if float64(r.Makespan) <= tolerance*float64(r.CriticalPathLength) {
			return size, r, nil
		}
	}
	return maxTeam, last, nil
}
