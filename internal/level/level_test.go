package level

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func h(n int) time.Duration { return time.Duration(n) * time.Hour }

// diamond: A(8) -> B(8), C(16) -> D(8). CP = 32h.
func diamond() []Task {
	return []Task{
		{Name: "A", Duration: h(8)},
		{Name: "B", Duration: h(8), Preds: []string{"A"}},
		{Name: "C", Duration: h(16), Preds: []string{"A"}},
		{Name: "D", Duration: h(8), Preds: []string{"B", "C"}},
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
		res   []string
		want  string
	}{
		{"no tasks", nil, []string{"r"}, "no tasks"},
		{"no resources", diamond(), nil, "no resources"},
		{"empty resource", diamond(), []string{""}, "empty resource"},
		{"dup resource", diamond(), []string{"r", "r"}, "duplicate resource"},
		{"empty task name", []Task{{Name: "", Duration: h(1)}}, []string{"r"}, "empty name"},
		{"dup task", []Task{{Name: "A", Duration: h(1)}, {Name: "A", Duration: h(1)}}, []string{"r"}, "duplicate task"},
		{"zero duration", []Task{{Name: "A"}}, []string{"r"}, "positive"},
		{"unknown pred", []Task{{Name: "A", Duration: h(1), Preds: []string{"X"}}}, []string{"r"}, "unknown predecessor"},
		{"self pred", []Task{{Name: "A", Duration: h(1), Preds: []string{"A"}}}, []string{"r"}, "own predecessor"},
		{"cycle", []Task{
			{Name: "A", Duration: h(1), Preds: []string{"B"}},
			{Name: "B", Duration: h(1), Preds: []string{"A"}},
		}, []string{"r"}, "cycle"},
	}
	for _, tc := range cases {
		if _, err := Level(tc.tasks, tc.res); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestLevelTwoResourcesMatchesCriticalPath(t *testing.T) {
	r, err := Level(diamond(), []string{"ann", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalPathLength != h(32) {
		t.Fatalf("CP = %v", r.CriticalPathLength)
	}
	// With two people, B runs parallel to C: makespan equals CP.
	if r.Makespan != h(32) {
		t.Fatalf("makespan = %v, want 32h", r.Makespan)
	}
}

func TestLevelOneResourceSerializes(t *testing.T) {
	r, err := Level(diamond(), []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	// Everything serial: 8+8+16+8 = 40h.
	if r.Makespan != h(40) {
		t.Fatalf("makespan = %v, want 40h", r.Makespan)
	}
	// No overlap on the single resource.
	var spans []Assignment
	for _, a := range r.Assignments {
		spans = append(spans, a)
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].Start < spans[j].Finish && spans[j].Start < spans[i].Finish {
				t.Fatalf("overlap: %+v and %+v", spans[i], spans[j])
			}
		}
	}
}

func TestPrecedenceRespected(t *testing.T) {
	r, err := Level(diamond(), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Assignment {
		a, ok := r.Of(name)
		if !ok {
			t.Fatalf("no assignment for %s", name)
		}
		return a
	}
	if get("B").Start < get("A").Finish || get("C").Start < get("A").Finish {
		t.Fatal("children started before A finished")
	}
	if get("D").Start < get("C").Finish {
		t.Fatal("D started before C finished")
	}
}

func TestCriticalPathPriority(t *testing.T) {
	// Two independent chains; the long one must be dispatched first when
	// only one resource exists.
	tasks := []Task{
		{Name: "short", Duration: h(2)},
		{Name: "long1", Duration: h(10)},
		{Name: "long2", Duration: h(10), Preds: []string{"long1"}},
	}
	r, err := Level(tasks, []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	long1, _ := r.Of("long1")
	short, _ := r.Of("short")
	if long1.Start > short.Start {
		t.Fatalf("critical chain not prioritized: long1 at %v, short at %v", long1.Start, short.Start)
	}
}

func TestUtilization(t *testing.T) {
	r, err := Level(diamond(), []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	u := r.Utilization()
	if u["solo"] != 1.0 {
		t.Fatalf("solo utilization = %v, want 1", u["solo"])
	}
}

func TestMinimalTeam(t *testing.T) {
	// Diamond: one person gives 40h (1.25×CP); two people give 32h (CP).
	size, r, err := MinimalTeam(diamond(), 5, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Fatalf("minimal team = %d, want 2", size)
	}
	if r.Makespan != h(32) {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	// Loose tolerance accepts one person.
	size, _, err = MinimalTeam(diamond(), 5, 1.5)
	if err != nil || size != 1 {
		t.Fatalf("loose tolerance team = %d, %v", size, err)
	}
	// Impossible tolerance returns maxTeam.
	wide := []Task{
		{Name: "x1", Duration: h(8)}, {Name: "x2", Duration: h(8)},
		{Name: "x3", Duration: h(8)}, {Name: "x4", Duration: h(8)},
	}
	size, _, err = MinimalTeam(wide, 2, 1.0)
	if err != nil || size != 2 {
		t.Fatalf("capped team = %d, %v", size, err)
	}
	if _, _, err := MinimalTeam(diamond(), 0, 1.1); err == nil {
		t.Fatal("maxTeam 0 accepted")
	}
	if _, _, err := MinimalTeam(diamond(), 3, 0.5); err == nil {
		t.Fatal("tolerance < 1 accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Level(diamond(), []string{"x", "y"})
	b, _ := Level(diamond(), []string{"x", "y"})
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("not deterministic")
		}
	}
}

// Property: makespan is bounded below by the critical path and by total
// work divided by team size, and above by total work.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(durs []uint8, teamRaw uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 10 {
			durs = durs[:10]
		}
		team := int(teamRaw%4) + 1
		var tasks []Task
		var total time.Duration
		for i, d := range durs {
			dur := time.Duration(int(d)%16+1) * time.Hour
			total += dur
			task := Task{Name: string(rune('a' + i)), Duration: dur}
			if i > 0 && i%2 == 0 {
				task.Preds = []string{string(rune('a' + i - 1))}
			}
			tasks = append(tasks, task)
		}
		resources := make([]string, team)
		for i := range resources {
			resources[i] = string(rune('A' + i))
		}
		r, err := Level(tasks, resources)
		if err != nil {
			return false
		}
		lower := r.CriticalPathLength
		if byWork := total / time.Duration(team); byWork > lower {
			lower = byWork
		}
		return r.Makespan >= lower && r.Makespan <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
