package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flowsched/internal/tools"
)

// markerTool produces outputs that only carry an acceptance marker from
// iteration `cleanAfter` onward.
type markerTool struct {
	instance   string
	cleanAfter int
}

func (m *markerTool) Instance() string { return m.instance }
func (m *markerTool) Class() string    { return "checker" }

func (m *markerTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	out := fmt.Sprintf("report iteration %d\n", iteration)
	if iteration >= m.cleanAfter {
		out += "DRC CLEAN\n"
	}
	return tools.Result{Output: []byte(out), Work: time.Hour, GoalMet: true}, nil
}

func TestConstraintForcesIteration(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &markerTool{instance: "drc#1", cleanAfter: 3})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")

	res, err := m.ExecuteTask(tree, ExecOptions{
		Constraints: []Constraint{{
			Activity: "Create", Name: "drc-clean", Check: Contains("DRC CLEAN"),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tool says GoalMet every time, but the constraint rejects
	// iterations 1 and 2.
	if res.Outcomes[0].Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Outcomes[0].Iterations)
	}
	// All three versions are filed as metadata (bad versions exist too).
	if got := len(m.DB.Container("netlist").Entries); got != 3 {
		t.Fatalf("netlist versions = %d, want 3", got)
	}
	// Violations were emitted.
	violations := 0
	for _, ev := range m.Events() {
		if ev.Kind == EvConstraint {
			violations++
		}
	}
	if violations != 2 {
		t.Fatalf("constraint events = %d, want 2", violations)
	}
}

func TestConstraintExhaustsIterations(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &markerTool{instance: "drc#1", cleanAfter: 99})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	_, err := m.ExecuteTask(tree, ExecOptions{
		MaxIterations: 4,
		Constraints: []Constraint{{
			Activity: "Create", Name: "drc-clean", Check: Contains("DRC CLEAN"),
		}},
	})
	if !errors.Is(err, ErrGoalNotMet) {
		t.Fatalf("err = %v, want ErrGoalNotMet", err)
	}
}

func TestConstraintValidation(t *testing.T) {
	m := newManager(t)
	m.BindDefaults()
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	cases := []struct {
		name string
		c    Constraint
	}{
		{"no activity", Constraint{Name: "x", Check: NonEmpty}},
		{"no name", Constraint{Activity: "Create", Check: NonEmpty}},
		{"no check", Constraint{Activity: "Create", Name: "x"}},
		{"unknown activity", Constraint{Activity: "Ghost", Name: "x", Check: NonEmpty}},
	}
	for _, tc := range cases {
		_, err := m.ExecuteTask(tree, ExecOptions{Constraints: []Constraint{tc.c}})
		if err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestConstraintChecks(t *testing.T) {
	if NonEmpty(nil) == nil {
		t.Error("NonEmpty accepted empty")
	}
	if NonEmpty([]byte("x")) != nil {
		t.Error("NonEmpty rejected content")
	}
	c := Contains("CLEAN")
	if c([]byte("dirty")) == nil {
		t.Error("Contains accepted missing marker")
	}
	if c([]byte("all CLEAN here")) != nil {
		t.Error("Contains rejected marker")
	}
	mb := MaxBytes(4)
	if mb([]byte("12345")) == nil {
		t.Error("MaxBytes accepted oversize")
	}
	if mb([]byte("1234")) != nil {
		t.Error("MaxBytes rejected exact size")
	}
}

func TestConstraintOnOtherActivityIgnored(t *testing.T) {
	m := newManager(t)
	m.BindDefaults()
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	// Constraint on Simulate never matches Create's output marker, but
	// default simulated output is non-empty, so NonEmpty passes and the
	// flow completes.
	res, err := m.ExecuteTask(tree, ExecOptions{
		Constraints: []Constraint{{Activity: "Simulate", Name: "nonempty", Check: NonEmpty}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
}
