package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"flowsched/internal/flow"
	"flowsched/internal/store"
)

// Recovery is an execution's fault-tolerance policy. The zero value
// reproduces the engine's historical behaviour: no backoff, no run
// deadline, no failover, abort the execution on the first exhausted
// activity.
type Recovery struct {
	// Backoff inserts virtual-time waits between retries of a failed
	// run. A failed run costs calendar time — the paper's slip tracking
	// sees the waits as schedule pressure, exactly like the re-run
	// iterations of §IV.C.
	Backoff Backoff
	// RunDeadline caps one run's virtual working time. A run whose tool
	// reports more work than this (a hung simulator) is aborted on the
	// virtual clock: the activity is charged exactly RunDeadline of
	// working time and the run is recorded as failed. Zero disables.
	RunDeadline time.Duration
	// Failover rotates the activity's binding to the next alternate
	// tool instance (tools.Registry.AddAlternate) after each failed
	// run, so a dead license pool or broken install does not consume
	// the whole failure budget.
	Failover bool
	// ContinueOnBlock degrades gracefully: an activity that exhausts
	// its policy is marked blocked, its dependent subtree is fenced
	// off, and the rest of the flow plus the schedule tracker keep
	// running — the blockage surfaces as slip on the tracked plan
	// instead of invalidating it. Without it the execution aborts with
	// an *ExecError carrying a checkpoint.
	ContinueOnBlock bool
	// Verify, when set, validates an accepted run's output bytes (a
	// checksum or design-rule check). A verification failure does not
	// fail the run — the version is filed — but the design goals count
	// as unmet, forcing another iteration instead of completing the
	// task with corrupt data.
	Verify func(activity string, output []byte) error
}

// Backoff is an exponential virtual-time retry policy: the wait before
// retry n (1-based failure streak) is Initial*Factor^(n-1), capped at
// Max. The waits are working time on the project calendar.
type Backoff struct {
	// Initial is the wait after the first failure. Zero disables backoff.
	Initial time.Duration
	// Factor multiplies the wait per additional consecutive failure
	// (default 2).
	Factor float64
	// Max caps a single wait (0 = uncapped).
	Max time.Duration
}

// wait computes the backoff before the retry following failure number
// streak (>= 1).
func (b Backoff) wait(streak int) time.Duration {
	if b.Initial <= 0 || streak < 1 {
		return 0
	}
	f := b.Factor
	if f <= 0 {
		f = 2
	}
	w := float64(b.Initial)
	for i := 1; i < streak; i++ {
		w *= f
		if b.Max > 0 && w >= float64(b.Max) {
			return b.Max
		}
	}
	if b.Max > 0 && w > float64(b.Max) {
		return b.Max
	}
	return time.Duration(w)
}

// DefaultRecovery is a production-shaped policy: half-hour backoff
// doubling to a day, three-day run deadline, failover across alternates,
// and graceful degradation instead of aborting.
func DefaultRecovery() Recovery {
	return Recovery{
		Backoff:         Backoff{Initial: 30 * time.Minute, Factor: 2, Max: 24 * time.Hour},
		RunDeadline:     72 * time.Hour,
		Failover:        true,
		ContinueOnBlock: true,
	}
}

// ErrGoalNotMet is the terminal cause when an activity's iteration
// bound runs out before the design goals are met.
var ErrGoalNotMet = errors.New("design goals not met within the iteration bound")

// retryAfter is implemented by run errors that know when retrying can
// succeed (fault.LicenseError): the retry cursor jumps to that instant
// instead of burning the failure budget against a known-dead resource.
type retryAfter interface{ RetryAfter() time.Time }

// ActivityFailedError is the typed terminal failure of one activity: it
// exhausted its recovery policy (consecutive-failure bound or iteration
// bound). The completed-activity list names everything that finished
// before the failure — that work is durable in the task database and
// remains queryable; a checkpoint resume re-runs none of it.
type ActivityFailedError struct {
	// Activity is the failing activity.
	Activity string
	// Attempts is the number of tool applications this execution made
	// for the activity; Failures how many of them failed.
	Attempts int
	Failures int
	// Cause is the last run's error (or ErrGoalNotMet).
	Cause error
	// Completed lists the activities that completed before the failure,
	// in execution order.
	Completed []string
}

func (e *ActivityFailedError) Error() string {
	return fmt.Sprintf("engine: activity %s failed after %d attempt(s) (%d failed): %v",
		e.Activity, e.Attempts, e.Failures, e.Cause)
}

// Unwrap exposes the last cause to errors.Is/As.
func (e *ActivityFailedError) Unwrap() error { return e.Cause }

// ExecError is the typed failure of ExecuteTask: it carries the last
// consistent store snapshot (completed work is durable — nothing is
// discarded), the partial result, and a Resume path that continues from
// the completed activities rather than restarting the execution.
type ExecError struct {
	// Failed is the activity failure that aborted the execution.
	Failed *ActivityFailedError
	// Partial is the execution result up to the failure (completed
	// outcomes, started/partial timestamps).
	Partial *ExecResult
	// Snapshot is an immutable view of the task database at the moment
	// of the failure — the checkpoint a post-mortem inspects.
	Snapshot *store.View

	mgr  *Manager
	tree *flow.Tree
	opt  ExecOptions
}

func (e *ExecError) Error() string {
	done := "nothing completed"
	if n := len(e.Failed.Completed); n > 0 {
		done = fmt.Sprintf("%d completed: %s", n, strings.Join(e.Failed.Completed, ", "))
	}
	return fmt.Sprintf("%v (%s; resume continues from the checkpoint)", e.Failed, done)
}

// Unwrap exposes the activity failure to errors.Is/As.
func (e *ExecError) Unwrap() error { return e.Failed }

// Completed lists the activities whose final data is already accepted
// and durable; Resume skips them.
func (e *ExecError) Completed() []string {
	return append([]string(nil), e.Failed.Completed...)
}

// Resume continues the failed execution from its checkpoint: completed
// activities are rehydrated from the task database (their accepted
// entity instances feed dependents) and re-run zero times; only the
// failed activity and everything after it execute again, from the
// current virtual time. Rebind a working tool (or let backoff outlive
// the outage) before resuming, or the same failure recurs — in which
// case Resume returns a fresh *ExecError whose checkpoint includes any
// newly completed work.
func (e *ExecError) Resume() (*ExecResult, error) {
	if e == nil || e.mgr == nil {
		return nil, fmt.Errorf("engine: nothing to resume")
	}
	skip := make(map[string]bool, len(e.Failed.Completed))
	for _, a := range e.Failed.Completed {
		skip[a] = true
	}
	return e.mgr.execute(e.tree, e.opt, skip)
}
