package engine

import (
	"testing"
	"time"

	"flowsched/internal/obs"
	"flowsched/internal/sched"
)

// TestInstrumentedExecuteTraceContainment runs a planned parallel
// execution under full instrumentation and checks the dual-clock
// invariant plus the span and metric inventory the engine promises.
func TestInstrumentedExecuteTraceContainment(t *testing.T) {
	o := obs.New()
	m := diamondManager(t).Instrument(o)
	tree, _ := m.ExtractTree("merged")
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}

	spans := o.Tracer().Spans()
	if err := obs.ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	var root obs.SpanData
	for _, s := range spans {
		count[s.Name]++
		if s.Name == "engine.execute" {
			root = s
		}
	}
	want := map[string]int{
		"engine.plan": 1, "engine.execute": 1, "engine.propagate": 1,
		"engine.activity": 4, "engine.run": 4,
	}
	for name, n := range want {
		if count[name] != n {
			t.Errorf("%s spans = %d, want %d", name, count[name], n)
		}
	}
	// The execute root covers the whole result interval on the virtual
	// clock.
	if !root.VStart.Equal(res.Started) || !root.VEnd.Equal(res.Finished) {
		t.Errorf("execute span virtual [%v, %v], want [%v, %v]",
			root.VStart, root.VEnd, res.Started, res.Finished)
	}

	reg := o.Metrics()
	ev := reg.CounterVec("engine_events_total", "kind")
	if got := ev.With("run_started").Value(); got != 4 {
		t.Errorf(`engine_events_total{kind="run_started"} = %d, want 4`, got)
	}
	if got := reg.Histogram("engine_activity_virtual_seconds", nil).Count(); got != 4 {
		t.Errorf("engine_activity_virtual_seconds count = %d, want 4", got)
	}
	var total int64
	for _, m := range reg.Snapshot() {
		if m.Name == "engine_events_total" {
			total += int64(m.Value)
		}
	}
	if total < 8 {
		t.Errorf("engine_events_total (summed over kinds) = %d, suspiciously low", total)
	}
}

// TestErrorPathTraceContainment: when an activity aborts, its failed
// attempts consumed virtual time, and the engine charges them to the
// global clock before publishing the typed error — so the execute root
// ends exactly at the aborted activity's end and containment holds on
// the error path without needing a vfloor stretch.
func TestErrorPathTraceContainment(t *testing.T) {
	o := obs.New()
	m := diamondManager(t).Instrument(o)
	// D fails every run: three consecutive failures abort the task with
	// three calendar-hours on D's local cursor.
	m.BindTool("D", &flakyTool{class: "t", instance: "bad#1", failures: 99})
	tree, _ := m.ExtractTree("merged")
	if _, err := m.ExecuteTask(tree, ExecOptions{Parallel: true}); err == nil {
		t.Fatal("expected execution to fail")
	}

	spans := o.Tracer().Spans()
	if err := obs.ValidateContainment(spans); err != nil {
		t.Fatal(err)
	}
	var dspan, root obs.SpanData
	for _, s := range spans {
		switch {
		case s.Name == "engine.activity" && s.Detail == "D":
			dspan = s
		case s.Name == "engine.execute":
			root = s
		}
	}
	if dspan.ID == 0 || root.ID == 0 {
		t.Fatalf("missing spans: activity D %d, execute root %d", dspan.ID, root.ID)
	}
	if !dspan.VEnd.After(dspan.VStart) {
		t.Errorf("failed activity span has empty virtual interval [%v, %v]", dspan.VStart, dspan.VEnd)
	}
	// The abort was charged to the clock: the root ends at D's end, and
	// the global clock rests exactly there.
	if !root.VEnd.Equal(dspan.VEnd) {
		t.Errorf("root VEnd %v != aborted activity VEnd %v", root.VEnd, dspan.VEnd)
	}
	if !root.VEnd.Equal(m.Clock.Now()) {
		t.Errorf("root VEnd %v != global clock %v; failed attempts not charged to the clock",
			root.VEnd, m.Clock.Now())
	}
	if got := o.Metrics().CounterVec("engine_events_total", "kind").With("run_failed").Value(); got != 3 {
		t.Errorf(`engine_events_total{kind="run_failed"} = %d, want 3`, got)
	}
}
