package engine

import (
	"fmt"

	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// Fork branches an independent child manager off the manager's current
// state: the task database is forked copy-on-write (O(containers), no
// per-entry copies for untouched containers), the Level 4 design store is
// forked aliasing its immutable objects, tool bindings are cloned, the
// clock starts at the parent's current virtual time, and the event stream
// is copied. Schema, flow graph, and calendar are shared — they are
// immutable configuration.
//
// Parent and child never see each other's subsequent writes, which makes a
// fork the substrate for what-if exploration: re-plan or re-execute the
// child under different assumptions, compare, discard. The child is
// uninstrumented; call Instrument to attach its own observability.
func (m *Manager) Fork() (*Manager, error) { return m.ForkAtView(nil) }

// ForkAtView is Fork pinned to a snapshot: the child branches from the
// moment v captured instead of the live head, so several forks taken
// while the parent keeps executing all observe the identical Level 3
// state — what a snapshot-consistent what-if sweep needs. A nil view
// forks the current state (plain Fork).
func (m *Manager) ForkAtView(v *store.View) (*Manager, error) {
	db := m.DB.ForkAt(v)
	exec, err := meta.NewSpace(db, m.Schema)
	if err != nil {
		return nil, fmt.Errorf("engine: fork: %w", err)
	}
	sc, err := sched.NewSpace(db, m.Schema, m.Calendar)
	if err != nil {
		return nil, fmt.Errorf("engine: fork: %w", err)
	}
	return &Manager{
		Schema: m.Schema, Graph: m.Graph, DB: db, Data: m.Data.Fork(),
		Exec: exec, Sched: sc, Tools: m.Tools.Clone(),
		Clock: vclock.NewAt(m.Clock.Now()), Calendar: m.Calendar,
		Designer: m.Designer,
		ev:       &eventLog{evs: m.Events()},
	}, nil
}

// AtView returns a read-only shallow copy of the manager whose schedule
// and execution spaces answer against the snapshot v — every report or
// query that takes a *Manager can run against a consistent moment of the
// database while the original keeps executing. A nil view snapshots the
// current state. Write paths on the returned manager's spaces fail;
// Clock, Tools, and the event stream are shared with the original.
func (m *Manager) AtView(v *store.View) *Manager {
	if v == nil {
		v = m.DB.Snapshot()
	}
	c := *m
	c.Sched = m.Sched.AtView(v)
	c.Exec = m.Exec.AtView(v)
	return &c
}
