package engine

import (
	"testing"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
)

const diamond = `
schema diamond
data src, left, right, merged
tool t
rule A: src    <- t()
rule B: left   <- t(src)
rule C: right  <- t(src)
rule D: merged <- t(left, right)
`

// fixedTool always takes work and accepts on iteration 1.
type fixedTool struct {
	instance string
	work     time.Duration
}

func (f *fixedTool) Instance() string { return f.instance }
func (f *fixedTool) Class() string    { return "t" }
func (f *fixedTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	return tools.Result{Output: []byte(f.instance + " out"), Work: f.work, GoalMet: true}, nil
}

func diamondManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(schema.MustParse(diamond), vclock.Standard(), vclock.Epoch, "team")
	if err != nil {
		t.Fatal(err)
	}
	for _, act := range []string{"A", "B", "C", "D"} {
		if err := m.BindTool(act, &fixedTool{instance: act + "#1", work: 8 * time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestParallelExecutionOverlapsBranches(t *testing.T) {
	serial := diamondManager(t)
	tree, _ := serial.ExtractTree("merged")
	sres, err := serial.ExecuteTask(tree, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par := diamondManager(t)
	ptree, _ := par.ExtractTree("merged")
	pres, err := par.ExecuteTask(ptree, ExecOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Serial: 4×8h = 4 working days. Parallel: B and C overlap → 3 days.
	serialSpan := serial.Calendar.WorkBetween(sres.Started, sres.Finished)
	parSpan := par.Calendar.WorkBetween(pres.Started, pres.Finished)
	if serialSpan != 32*time.Hour {
		t.Fatalf("serial span = %v, want 32h", serialSpan)
	}
	if parSpan != 24*time.Hour {
		t.Fatalf("parallel span = %v, want 24h", parSpan)
	}
	// B and C really overlap on the timeline.
	var b, c ActivityOutcome
	for _, o := range pres.Outcomes {
		switch o.Activity {
		case "B":
			b = o
		case "C":
			c = o
		}
	}
	if !b.Started.Equal(c.Started) {
		t.Fatalf("B starts %v, C starts %v; want simultaneous", b.Started, c.Started)
	}
	// D starts only after both.
	var d ActivityOutcome
	for _, o := range pres.Outcomes {
		if o.Activity == "D" {
			d = o
		}
	}
	if d.Started.Before(b.Finished) || d.Started.Before(c.Finished) {
		t.Fatalf("D started %v before producers finished (%v, %v)", d.Started, b.Finished, c.Finished)
	}
}

func TestParallelMatchesPlan(t *testing.T) {
	m := diamondManager(t)
	tree, _ := m.ExtractTree("merged")
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	// With deterministic 8h tools and 8h estimates, actuals equal the
	// plan exactly — the integrated model's best case.
	for _, o := range res.Outcomes {
		_, in, err := m.Sched.Instance(&pr.Plan, o.Activity)
		if err != nil {
			t.Fatal(err)
		}
		if !in.ActualStart.Equal(in.PlannedStart) || !in.ActualFinish.Equal(in.PlannedFinish) {
			t.Fatalf("%s actual %v..%v vs planned %v..%v",
				o.Activity, in.ActualStart, in.ActualFinish, in.PlannedStart, in.PlannedFinish)
		}
	}
	// The plan's finish is unchanged after propagation (no slip event).
	for _, ev := range m.Events() {
		if ev.Kind == EvSlip {
			t.Fatalf("unexpected slip: %s", ev.Detail)
		}
	}
}

func TestParallelChainEqualsSerial(t *testing.T) {
	// For a pure chain there is nothing to overlap: identical spans.
	run := func(parallel bool) time.Duration {
		m := newManager(t)
		m.BindDefaults()
		m.Import("stimuli", []byte("v"))
		tree, _ := m.ExtractTree("performance")
		res, err := m.ExecuteTask(tree, ExecOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return m.Calendar.WorkBetween(res.Started, res.Finished)
	}
	if s, p := run(false), run(true); s != p {
		t.Fatalf("chain spans differ: serial %v vs parallel %v", s, p)
	}
}
