package engine

import (
	"reflect"
	"testing"
)

func TestEventHookObservesEmissionOrder(t *testing.T) {
	m := diamondManager(t)
	var hooked []Event
	m.SetEventHook(func(e Event) { hooked = append(hooked, e) })
	tree, _ := m.ExtractTree("merged")
	if _, err := m.ExecuteTask(tree, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(hooked, evs) {
		t.Fatalf("hook saw %d events, stream holds %d — must match in order",
			len(hooked), len(evs))
	}

	// RestoreEvents seeds a fresh manager's stream with the history, and
	// EventsSince cursors resume past it.
	r := diamondManager(t)
	r.RestoreEvents(evs)
	if !reflect.DeepEqual(r.Events(), evs) {
		t.Fatal("RestoreEvents did not reproduce the stream")
	}
	if got := r.EventsSince(len(evs)); got != nil {
		t.Fatalf("EventsSince(len) = %d events, want none", len(got))
	}

	// nil removes the hook; forks do not inherit it.
	m.SetEventHook(func(Event) { t.Fatal("hook fired after removal") })
	f, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	m.SetEventHook(nil)
	ftree, _ := f.ExtractTree("merged")
	if _, err := f.ExecuteTask(ftree, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
}
