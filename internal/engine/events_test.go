package engine

import (
	"testing"
	"time"
)

// TestParallelEventStreamOrderedPerActivity pins the ExecOptions
// contract: "In parallel mode the event stream is ordered per activity,
// not globally." Within one activity the events appear in emission
// order with non-decreasing virtual timestamps; across activities the
// stream may (and, on the diamond, does) step backwards in virtual
// time, because overlapping branches are emitted branch-by-branch.
func TestParallelEventStreamOrderedPerActivity(t *testing.T) {
	m := diamondManager(t)
	tree, _ := m.ExtractTree("merged")
	if _, err := m.ExecuteTask(tree, ExecOptions{Parallel: true}); err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}

	// Per-activity: virtual timestamps never decrease, and each
	// activity's run-started precedes its run-finished.
	byAct := make(map[string][]Event)
	for _, ev := range evs {
		if ev.Activity != "" {
			byAct[ev.Activity] = append(byAct[ev.Activity], ev)
		}
	}
	for _, act := range []string{"A", "B", "C", "D"} {
		stream := byAct[act]
		if len(stream) == 0 {
			t.Fatalf("no events for activity %s", act)
		}
		started := -1
		for i, ev := range stream {
			if i > 0 && ev.At.Before(stream[i-1].At) {
				t.Fatalf("%s: event %d (%s) at %v precedes event %d at %v",
					act, i, ev.Kind, ev.At, i-1, stream[i-1].At)
			}
			switch ev.Kind {
			case EvRunStarted:
				started = i
			case EvRunFinished:
				if started < 0 {
					t.Fatalf("%s: run-finished before run-started", act)
				}
			}
		}
	}

	// Globally: B and C overlap on the virtual timeline, so the flat
	// stream must contain at least one backwards step — the documented
	// boundary of the ordering guarantee.
	inverted := false
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Fatal("diamond stream is globally time-ordered; expected per-activity ordering only")
	}
}

// TestEventsSinceCursor covers the incremental poll path: EventsSince
// returns exactly the unseen tail, clamps bad cursors, and hands out
// copies that cannot alias the manager's stream.
func TestEventsSinceCursor(t *testing.T) {
	m := diamondManager(t)
	tree, _ := m.ExtractTree("merged")
	if _, err := m.ExecuteTask(tree, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	all := m.Events()
	n := len(all)
	if n < 4 {
		t.Fatalf("only %d events", n)
	}

	if got := m.EventsSince(0); len(got) != n {
		t.Fatalf("EventsSince(0) = %d events, want %d", len(got), n)
	}
	if got := m.EventsSince(-3); len(got) != n {
		t.Fatalf("EventsSince(-3) = %d events, want %d (clamped)", len(got), n)
	}
	tail := m.EventsSince(2)
	if len(tail) != n-2 || tail[0] != all[2] {
		t.Fatalf("EventsSince(2) = %d events starting %v, want %d starting %v",
			len(tail), tail[0], n-2, all[2])
	}
	if got := m.EventsSince(n); got != nil {
		t.Fatalf("EventsSince(len) = %v, want nil", got)
	}
	if got := m.EventsSince(n + 50); got != nil {
		t.Fatalf("EventsSince(past end) = %v, want nil", got)
	}

	// A poller resuming with seq += len(returned) sees every event
	// exactly once.
	seq, seen := 0, 0
	for {
		batch := m.EventsSince(seq)
		if batch == nil {
			break
		}
		seq += len(batch)
		seen += len(batch)
	}
	if seen != n {
		t.Fatalf("cursor walk saw %d events, want %d", seen, n)
	}

	// Returned slices are copies.
	tail[0].Detail = "mutated"
	if m.Events()[2].Detail == "mutated" {
		t.Fatal("EventsSince aliases the manager's event stream")
	}
}

// TestEventsAfterWakesOnAppend pins the push-consumer contract: when no
// events past the cursor exist, EventsAfter hands back a channel that
// closes at the next append, after which a re-read returns exactly the
// new tail — the primitive the HTTP SSE hub blocks on instead of
// polling.
func TestEventsAfterWakesOnAppend(t *testing.T) {
	l := &eventLog{}
	l.append(Event{Kind: EvRunStarted, Activity: "A"})

	// Existing tail: returned immediately, no wake channel.
	evs, wake := l.after(0)
	if len(evs) != 1 || wake != nil {
		t.Fatalf("after(0) = %d events, wake %v; want 1 events, nil wake", len(evs), wake)
	}

	// Caught up: no events, a wake channel that is not yet closed.
	evs, wake = l.after(1)
	if evs != nil || wake == nil {
		t.Fatalf("after(1) = %v, %v; want nil events and a wake channel", evs, wake)
	}
	select {
	case <-wake:
		t.Fatal("wake channel closed before any append")
	default:
	}

	done := make(chan []Event)
	go func() {
		<-wake
		tail, _ := l.after(1)
		done <- tail
	}()
	l.append(Event{Kind: EvRunFinished, Activity: "A"})
	select {
	case tail := <-done:
		if len(tail) != 1 || tail[0].Kind != EvRunFinished {
			t.Fatalf("woken read = %+v, want the one appended event", tail)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EventsAfter waiter never woke on append")
	}

	// Two waiters share one wake channel; both see the same close.
	_, w1 := l.after(2)
	_, w2 := l.after(2)
	if w1 != w2 {
		t.Fatal("concurrent waiters got different wake channels")
	}
	if n := l.count(); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}
