// Package engine implements the Hercules-like workflow manager: the system
// that formulates, plans, executes, and tracks design tasks over the task
// database.
//
// The manager owns one database with both Level 3 spaces (execution and
// schedule), the Level 4 design-data store, a virtual clock, and the tool
// bindings. Its lifecycle mirrors paper §IV.A:
//
//  1. define a task schema (package schema) — New initializes the
//     containers from it;
//  2. extract a task tree covering the intended scope (ExtractTree);
//  3. bind tools and input data (BindTool / Import);
//  4. plan: simulate the execution to create schedule instances (Plan);
//  5. execute: post-order traversal running each activity until the
//     design goals are met, creating runs and entity instances
//     (ExecuteTask);
//  6. complete: link final entity instances to schedule instances and
//     propagate any slip through the plan (done by ExecuteTask when
//     AutoComplete is set, or explicitly via CompleteActivity).
package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/flow"
	"flowsched/internal/meta"
	"flowsched/internal/obs"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
)

// EventKind classifies manager events.
type EventKind string

const (
	EvRunStarted    EventKind = "run-started"
	EvRunFinished   EventKind = "run-finished"
	EvRunFailed     EventKind = "run-failed"
	EvEntityCreated EventKind = "entity-created"
	EvTaskStarted   EventKind = "task-started"
	EvTaskComplete  EventKind = "task-complete"
	EvPlanCreated   EventKind = "plan-created"
	EvSlip          EventKind = "slip"
	// Recovery events (see Recovery): a retried run after virtual-time
	// backoff, a run aborted on the vclock deadline, a rotation to an
	// alternate tool instance, an output rejected by the verifier, an
	// activity blocked (policy exhausted, or fenced behind a blocked
	// producer), and an activity skipped by a checkpoint resume.
	EvRunRetry     EventKind = "run-retry"
	EvRunTimeout   EventKind = "run-timeout"
	EvFailover     EventKind = "tool-failover"
	EvVerifyFailed EventKind = "verify-failed"
	EvBlocked      EventKind = "activity-blocked"
	EvResumed      EventKind = "activity-resumed"
)

// Event is one entry of the manager's event stream, consumed by the UI
// and the experiment reports.
type Event struct {
	Kind     EventKind
	Activity string
	At       time.Time
	Detail   string
}

// eventLog is the manager's append-only event stream behind its own small
// mutex: emit appends from the executing goroutine while pollers read
// Events/EventsSince concurrently (the hercules `events` command, status
// dashboards). It lives behind a pointer so Manager stays copyable
// (AtView) without copying a lock.
type eventLog struct {
	mu   sync.Mutex
	evs  []Event
	hook func(Event)
	wake chan struct{} // closed (and replaced) on append; lazily created
}

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	l.evs = append(l.evs, e)
	if l.wake != nil {
		close(l.wake)
		l.wake = nil
	}
	hook := l.hook
	l.mu.Unlock()
	if hook != nil {
		hook(e)
	}
}

func (l *eventLog) since(seq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq >= len(l.evs) {
		return nil
	}
	return append([]Event(nil), l.evs[seq:]...)
}

// after is since plus a wakeup: when no events past seq exist yet, it
// returns a channel that is closed at the next append, so a streaming
// consumer can block instead of polling. The channel is shared by all
// waiters of the current log length and is only valid for one wait.
func (l *eventLog) after(seq int) ([]Event, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < len(l.evs) {
		return append([]Event(nil), l.evs[seq:]...), nil
	}
	if l.wake == nil {
		l.wake = make(chan struct{})
	}
	return nil, l.wake
}

func (l *eventLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.evs)
}

// Manager is the workflow manager.
type Manager struct {
	Schema   *schema.Schema
	Graph    *flow.Graph
	DB       *store.DB
	Data     *design.Store
	Exec     *meta.Space
	Sched    *sched.Space
	Tools    *tools.Registry
	Clock    *vclock.Clock
	Calendar *vclock.Calendar
	Designer string

	ev *eventLog

	// Observability (nil until Instrument): the tracer carries
	// dual-clock spans for plan/execute/activity/run, the registry the
	// event and duration metrics. Execution is single-goroutine (the
	// Parallel exec mode composes virtual timelines, not goroutines), so
	// the handles and the lazily-grown event-counter map need no lock;
	// the event stream itself is lock-guarded because pollers read it
	// from other goroutines.
	tr         *obs.Tracer
	reg        *obs.Registry
	mEvents    *obs.CounterVec
	hActivity  *obs.Histogram
	hSlip      *obs.Histogram
	hBackoff   *obs.Histogram
	evCounters map[EventKind]*obs.Counter
}

// New builds a manager for a schema: it creates the task database with
// both Level 3 spaces initialized from the schema, an empty design-data
// store, and a clock at the given start time.
func New(sch *schema.Schema, cal *vclock.Calendar, start time.Time, designer string) (*Manager, error) {
	if cal == nil {
		return nil, fmt.Errorf("engine: nil calendar")
	}
	if designer == "" {
		return nil, fmt.Errorf("engine: empty designer")
	}
	g, err := flow.FromSchema(sch)
	if err != nil {
		return nil, err
	}
	db := store.NewDB()
	exec, err := meta.NewSpace(db, sch)
	if err != nil {
		return nil, err
	}
	sc, err := sched.NewSpace(db, sch, cal)
	if err != nil {
		return nil, err
	}
	return &Manager{
		Schema: sch, Graph: g, DB: db, Data: design.NewStore(),
		Exec: exec, Sched: sc, Tools: tools.NewRegistry(),
		Clock: vclock.NewAt(start), Calendar: cal, Designer: designer,
		ev: &eventLog{},
	}, nil
}

// Restore builds a manager over an existing task database and design-data
// store — the resume path after loading a persisted session. The schema
// must be the one the database was created from (container initialization
// is idempotent and verifies space/class agreement). Tool bindings are
// not persisted; rebind before executing.
func Restore(sch *schema.Schema, cal *vclock.Calendar, db *store.DB,
	data *design.Store, now time.Time, designer string) (*Manager, error) {
	if cal == nil {
		return nil, fmt.Errorf("engine: nil calendar")
	}
	if db == nil || data == nil {
		return nil, fmt.Errorf("engine: nil database or data store")
	}
	if designer == "" {
		return nil, fmt.Errorf("engine: empty designer")
	}
	g, err := flow.FromSchema(sch)
	if err != nil {
		return nil, err
	}
	exec, err := meta.NewSpace(db, sch)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	sc, err := sched.NewSpace(db, sch, cal)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	return &Manager{
		Schema: sch, Graph: g, DB: db, Data: data,
		Exec: exec, Sched: sc, Tools: tools.NewRegistry(),
		Clock: vclock.NewAt(now), Calendar: cal, Designer: designer,
		ev: &eventLog{},
	}, nil
}

// Instrument attaches an observability bundle: manager events and
// durations feed the metrics registry, plan/execute/activity/run work
// is traced as dual-clock spans, and the task database counts its
// container operations. Instrumenting is optional — an uninstrumented
// manager pays only nil checks. Returns m for chaining.
func (m *Manager) Instrument(o *obs.Obs) *Manager {
	if o == nil {
		return m
	}
	m.tr = o.Tracer()
	if reg := o.Metrics(); reg != nil {
		m.reg = reg
		// One labeled family carries every event kind; the old flat
		// engine_event_<kind>_total counters are the kind= dimension now.
		m.mEvents = reg.BoundedCounterVec("engine_events_total", 32, "kind")
		m.hActivity = reg.Histogram("engine_activity_virtual_seconds", nil)
		m.hSlip = reg.Histogram("engine_slip_seconds", nil)
		m.hBackoff = reg.Histogram("engine_backoff_virtual_seconds", nil)
		m.evCounters = make(map[EventKind]*obs.Counter)
	}
	m.DB.Instrument(o)
	return m
}

// Events returns a copy of the whole event stream. Pollers that only
// need the tail should use EventsSince. Safe to call while the manager
// executes on another goroutine.
func (m *Manager) Events() []Event { return m.ev.since(0) }

// EventsSince returns a copy of the events from sequence number seq on
// (seq counts events already seen; 0 means all). The stream is
// append-only, so a poller can resume with seq += len(returned) without
// re-copying the full history each time. Safe to call while the manager
// executes on another goroutine.
func (m *Manager) EventsSince(seq int) []Event { return m.ev.since(seq) }

// EventsAfter is EventsSince for push consumers: when events past seq
// already exist they are returned immediately (wake is nil); otherwise
// the returned channel is closed at the next append (or stream
// restore), after which the caller re-reads. One goroutine per stream
// can ride this without ever polling.
func (m *Manager) EventsAfter(seq int) ([]Event, <-chan struct{}) { return m.ev.after(seq) }

// EventCount reports the current length of the event stream — the
// cursor at which a new push consumer should start following.
func (m *Manager) EventCount() int { return m.ev.count() }

// SetEventHook installs fn to observe every event as it is emitted, after
// it is appended to the stream — the change feed a write-ahead log
// subscribes to. Events are emitted from the executing goroutine in
// order; fn must not call back into the manager. One hook at most; nil
// removes it. Forked children do not inherit the hook.
func (m *Manager) SetEventHook(fn func(Event)) {
	m.ev.mu.Lock()
	m.ev.hook = fn
	m.ev.mu.Unlock()
}

// RestoreEvents replaces the event stream with a recovered history — the
// resume path after write-ahead-log replay, so EventsSince cursors and
// event-log renderings pick up exactly where the crashed process left
// off. Only call on a freshly restored manager, before execution.
func (m *Manager) RestoreEvents(evs []Event) {
	m.ev.mu.Lock()
	m.ev.evs = append([]Event(nil), evs...)
	if m.ev.wake != nil {
		close(m.ev.wake)
		m.ev.wake = nil
	}
	m.ev.mu.Unlock()
}

func (m *Manager) emit(kind EventKind, activity string, at time.Time, format string, args ...any) {
	m.ev.append(Event{
		Kind: kind, Activity: activity, At: at, Detail: fmt.Sprintf(format, args...),
	})
	if m.reg != nil {
		m.eventCounter(kind).Inc()
	}
}

// eventCounter returns the cached engine_events_total{kind=...} series
// handle (dashes folded to underscores), creating it on first use.
func (m *Manager) eventCounter(kind EventKind) *obs.Counter {
	c, ok := m.evCounters[kind]
	if !ok {
		c = m.mEvents.With(strings.ReplaceAll(string(kind), "-", "_"))
		m.evCounters[kind] = c
	}
	return c
}

// ExtractTree extracts the task tree covering the targets.
func (m *Manager) ExtractTree(targets ...string) (*flow.Tree, error) {
	return m.Graph.Extract(targets...)
}

// BindTool binds a tool instance to an activity for subsequent executions.
func (m *Manager) BindTool(activity string, t tools.Tool) error {
	if m.Schema.RuleByActivity(activity) == nil {
		return fmt.Errorf("engine: unknown activity %q", activity)
	}
	return m.Tools.Bind(activity, t)
}

// BindDefaults binds a default simulated tool instance to every activity
// that lacks one, named "<toolclass>#1".
func (m *Manager) BindDefaults() error {
	for _, r := range m.Schema.Rules() {
		if m.Tools.For(r.Activity) != nil {
			continue
		}
		t, err := tools.DefaultFor(r.Tool, r.Tool+"#1")
		if err != nil {
			return err
		}
		if err := m.Tools.Bind(r.Activity, t); err != nil {
			return err
		}
	}
	return nil
}

// Import files external design data for a primary-input class: the bytes
// go to Level 4, an entity instance records them at Level 3.
func (m *Manager) Import(class string, data []byte) (*store.Entry, error) {
	now := m.Clock.Now()
	ref, err := m.Data.Put(class, data, "", now)
	if err != nil {
		return nil, err
	}
	e, err := m.Exec.ImportEntity(class, ref, m.Designer, now)
	if err != nil {
		return nil, err
	}
	m.emit(EvEntityCreated, "", now, "imported %s as %s", ref, e.ID)
	return e, nil
}

// Plan simulates the execution of the tree from the current virtual time,
// creating a new plan version (see sched.Space.Plan).
func (m *Manager) Plan(tree *flow.Tree, est sched.Estimator, opt sched.PlanOptions) (*sched.PlanResult, error) {
	// The plan span's virtual interval covers the simulated horizon:
	// from now to the projected project finish.
	sp := m.tr.Start(nil, "engine.plan", m.Clock.Now())
	res, err := m.Sched.Plan(tree, m.Clock.Now(), est, opt)
	if err != nil {
		sp.End(m.Clock.Now())
		return nil, err
	}
	sp.SetDetail("plan v" + strconv.Itoa(res.Plan.Version))
	sp.End(res.Plan.Finish)
	m.emit(EvPlanCreated, "", m.Clock.Now(), "plan v%d: finish %s",
		res.Plan.Version, res.Plan.Finish.Format("2006-01-02 15:04"))
	return res, nil
}

// ExecOptions tunes a task execution.
type ExecOptions struct {
	// Plan, when non-nil, is tracked: actual starts are recorded, final
	// entities linked (with AutoComplete), and slips propagated.
	Plan *sched.Plan
	// AutoComplete marks each activity complete and links its final
	// entity instance once the design goals are met. Without it the
	// designer calls CompleteActivity explicitly.
	AutoComplete bool
	// MaxIterations bounds re-running one activity (default 10).
	MaxIterations int
	// MaxFailures bounds consecutive failed runs per activity (default 3).
	MaxFailures int
	// Constraints are acceptance conditions on activity outputs; a
	// violating version is filed as metadata but does not complete the
	// task, forcing another iteration.
	Constraints []Constraint
	// Parallel executes independent branches concurrently on the virtual
	// timeline, matching the plan's semantics: an activity starts when its
	// in-tree producers finish, not when the previous traversal step does.
	// Serial (default) models a single designer working the post order.
	// In parallel mode the event stream is ordered per activity, not
	// globally.
	Parallel bool
	// Recovery is the fault-tolerance policy: retry backoff, run
	// deadlines, tool failover, output verification, and graceful
	// degradation. The zero value reproduces the historical behaviour
	// (abort on the first exhausted activity, no backoff).
	Recovery Recovery
	// TraceParent, when non-nil, nests the execution's root span under
	// an enclosing span on the same tracer (a request or scenario-run
	// span). Nil keeps engine.execute a trace root.
	TraceParent *obs.Span
}

func (o *ExecOptions) defaults() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 3
	}
}

// ActivityOutcome summarizes one activity's execution.
type ActivityOutcome struct {
	Activity   string
	Iterations int
	Failures   int
	// FinalEntity is the entity instance holding the accepted version.
	FinalEntity *store.Entry
	Started     time.Time
	Finished    time.Time
}

// ExecResult summarizes a task execution.
type ExecResult struct {
	Outcomes []ActivityOutcome
	Started  time.Time
	Finished time.Time
	// Blocked lists activities fenced off by graceful degradation
	// (Recovery.ContinueOnBlock): the activity that exhausted its
	// policy plus every dependent behind it, in traversal order. Empty
	// on a clean execution.
	Blocked []string
	// Resumed lists activities a checkpoint resume skipped because
	// their accepted final data already existed.
	Resumed []string
}

// ExecuteTask runs the task tree: a post-order traversal in which each
// activity is iterated until the design goals are met (the simulated
// designer's accept decision), creating a run and an entity instance per
// iteration. Time advances on the virtual clock through the working
// calendar. Leaf data classes must have imported entity instances and
// every in-scope activity a bound tool.
//
// Failure semantics: an activity that exhausts its recovery policy
// either blocks (Recovery.ContinueOnBlock — the dependent subtree is
// fenced, the rest keeps running, ExecResult.Blocked reports the fence)
// or aborts the execution with a typed *ExecError carrying the last
// consistent store snapshot and a Resume path that re-runs zero
// already-completed activities. Completed work is durable either way.
func (m *Manager) ExecuteTask(tree *flow.Tree, opt ExecOptions) (*ExecResult, error) {
	return m.execute(tree, opt, nil)
}

// execute is ExecuteTask plus the checkpoint-resume skip set: skipped
// activities are rehydrated from their accepted entity instances in the
// task database instead of being re-run.
func (m *Manager) execute(tree *flow.Tree, opt ExecOptions, skip map[string]bool) (*ExecResult, error) {
	opt.defaults()
	for _, c := range opt.Constraints {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if m.Schema.RuleByActivity(c.Activity) == nil {
			return nil, fmt.Errorf("engine: constraint %s on unknown activity %q", c.Name, c.Activity)
		}
	}
	if err := m.checkReady(tree); err != nil {
		return nil, err
	}
	res := &ExecResult{Started: m.Clock.Now()}
	root := m.tr.Start(opt.TraceParent, "engine.execute", res.Started)
	root.SetDetail("activities=" + strconv.Itoa(len(tree.Activities())))
	// Deferred so error paths publish too; a child activity whose local
	// cursor ran past the global clock stretches the root (see
	// obs.Span.End), keeping virtual containment intact.
	defer func() { root.End(m.Clock.Now()) }()
	// latest accepted bytes + entity per data class, seeded from imports.
	bytesOf := make(map[string][]byte)
	entityOf := make(map[string]*store.Entry)
	for _, leaf := range tree.Leaves() {
		e, ent, err := m.Exec.LatestEntity(leaf)
		if err != nil {
			return nil, err
		}
		obj, err := m.Data.Get(ent.Data)
		if err != nil {
			return nil, fmt.Errorf("engine: leaf %s: %w", leaf, err)
		}
		bytesOf[leaf] = obj.Bytes
		entityOf[leaf] = e
	}

	finishOf := make(map[string]time.Time) // activity -> actual finish
	blocked := make(map[string]string)     // activity -> blockage cause
	var completed []string                 // accepted activities, execution order
	for _, act := range tree.Activities() {
		if skip[act] {
			// Checkpoint resume: the accepted final data already exists
			// in the task database; rehydrate it to feed dependents and
			// re-run nothing.
			if err := m.rehydrate(act, bytesOf, entityOf, finishOf); err != nil {
				return res, err
			}
			completed = append(completed, act)
			res.Resumed = append(res.Resumed, act)
			m.emit(EvResumed, act, m.Clock.Now(), "checkpoint: accepted data reused, 0 runs")
			continue
		}
		// Graceful degradation: an activity behind a blocked producer
		// can never get its inputs — fence it rather than fail it.
		if cause := m.fencedBy(tree, act, blocked); cause != "" {
			m.blockActivity(act, "fenced: "+cause, blocked, res, opt)
			continue
		}
		startAt := res.Started
		if opt.Parallel {
			// Plan semantics: start when the in-tree producers finish.
			for _, pred := range tree.Graph.Predecessors(act) {
				if tree.Contains(pred) && finishOf[pred].After(startAt) {
					startAt = finishOf[pred]
				}
			}
		} else {
			startAt = m.Clock.Now()
		}
		out, err := m.runActivity(tree, act, startAt, bytesOf, entityOf, opt, root)
		if err != nil {
			if out != nil && !out.Finished.IsZero() {
				// The failed attempts consumed real virtual time.
				m.Clock.AdvanceTo(out.Finished)
			}
			var afe *ActivityFailedError
			if !errors.As(err, &afe) {
				return res, err // infrastructure error: abort as before
			}
			if opt.Recovery.ContinueOnBlock {
				m.blockActivity(act, afe.Error(), blocked, res, opt)
				continue
			}
			afe.Completed = append([]string(nil), completed...)
			res.Finished = m.Clock.Now()
			return res, &ExecError{
				Failed: afe, Partial: res, Snapshot: m.DB.Snapshot(),
				mgr: m, tree: tree, opt: opt,
			}
		}
		finishOf[act] = out.Finished
		m.hActivity.Observe(out.Finished.Sub(out.Started).Seconds())
		m.Clock.AdvanceTo(out.Finished)
		res.Outcomes = append(res.Outcomes, *out)
		completed = append(completed, act)
	}
	res.Finished = m.Clock.Now()
	if opt.Plan != nil {
		// Propagation consumes no virtual time: a point-interval span
		// whose detail carries the projected finish.
		psp := m.tr.Start(root, "engine.propagate", m.Clock.Now())
		before := opt.Plan.Finish
		projected, err := m.Sched.Propagate(opt.Plan, m.Clock.Now())
		if err != nil {
			psp.End(m.Clock.Now())
			return res, err
		}
		psp.SetDetail("projected finish " + projected.Format("2006-01-02"))
		psp.End(m.Clock.Now())
		if projected.After(before) {
			m.hSlip.Observe(projected.Sub(before).Seconds())
			m.emit(EvSlip, "", m.Clock.Now(), "project finish slipped %s -> %s",
				before.Format("2006-01-02"), projected.Format("2006-01-02"))
		}
	}
	return res, nil
}

// checkReady verifies bindings: tool per activity, imported data per leaf.
func (m *Manager) checkReady(tree *flow.Tree) error {
	for _, act := range tree.Activities() {
		if m.Tools.For(act) == nil {
			return fmt.Errorf("engine: no tool bound to activity %q", act)
		}
	}
	for _, leaf := range tree.Leaves() {
		_, ent, err := m.Exec.LatestEntity(leaf)
		if err != nil {
			return err
		}
		if ent == nil {
			return fmt.Errorf("engine: leaf class %q has no imported data", leaf)
		}
	}
	return nil
}

// rehydrate reloads an already-completed activity's accepted output
// from the task database: bytes from Level 4, the entity instance, and
// the recorded finish — the checkpoint a resume continues from.
func (m *Manager) rehydrate(act string, bytesOf map[string][]byte,
	entityOf map[string]*store.Entry, finishOf map[string]time.Time) error {
	rule := m.Schema.RuleByActivity(act)
	if rule == nil {
		return fmt.Errorf("engine: resume: unknown activity %q", act)
	}
	e, ent, err := m.Exec.LatestEntity(rule.Output)
	if err != nil {
		return err
	}
	if ent == nil {
		return fmt.Errorf("engine: resume: activity %s marked completed but no %s entity exists",
			act, rule.Output)
	}
	obj, err := m.Data.Get(ent.Data)
	if err != nil {
		return fmt.Errorf("engine: resume %s: %w", act, err)
	}
	bytesOf[rule.Output] = obj.Bytes
	entityOf[rule.Output] = e
	finishOf[act] = ent.Finished
	return nil
}

// fencedBy reports why act cannot run: the first in-tree producer found
// in the blocked set, or "" when all producers delivered.
func (m *Manager) fencedBy(tree *flow.Tree, act string, blocked map[string]string) string {
	for _, pred := range tree.Graph.Predecessors(act) {
		if !tree.Contains(pred) {
			continue
		}
		if _, isBlocked := blocked[pred]; isBlocked {
			return "producer " + pred + " is blocked"
		}
	}
	return ""
}

// blockActivity fences one activity off: the event stream, the metrics,
// the result, and (under a tracked plan) the schedule instance all
// record the blockage, and execution continues past it.
func (m *Manager) blockActivity(act, cause string, blocked map[string]string,
	res *ExecResult, opt ExecOptions) {
	blocked[act] = cause
	res.Blocked = append(res.Blocked, act)
	now := m.Clock.Now()
	m.emit(EvBlocked, act, now, "%s", cause)
	if opt.Plan != nil {
		// MarkBlocked fails only for already-complete activities, which
		// cannot be in the blocked set.
		_ = m.Sched.MarkBlocked(opt.Plan, act, cause, now)
	}
}

// runActivity iterates one activity until its goals are met, starting
// its first run no earlier than startAt. It advances a local time cursor
// rather than the global clock, so the caller decides how activity
// timelines compose (serial or parallel).
func (m *Manager) runActivity(tree *flow.Tree, act string, startAt time.Time,
	bytesOf map[string][]byte, entityOf map[string]*store.Entry, opt ExecOptions,
	parent *obs.Span) (*ActivityOutcome, error) {

	rule := m.Schema.RuleByActivity(act)
	out := &ActivityOutcome{Activity: act}
	rec := opt.Recovery
	failStreak := 0
	goalReached := false
	now := startAt

	asp := m.tr.Start(parent, "engine.activity", startAt)
	asp.SetDetail(act)
	defer func() { asp.End(now) }()

	for iter := 1; iter <= opt.MaxIterations; iter++ {
		// Resolved per iteration: failover may have rotated the binding.
		tool := m.Tools.For(act)
		inputs := make(map[string][]byte, len(rule.Inputs))
		var deps []string
		for _, in := range rule.Inputs {
			b, ok := bytesOf[in]
			if !ok {
				return nil, fmt.Errorf("engine: activity %s: input %s not yet produced", act, in)
			}
			inputs[in] = b
			deps = append(deps, entityOf[in].ID)
		}

		start := m.Calendar.NextWorkInstant(now)
		if out.Started.IsZero() {
			out.Started = start
		}
		runEntry, err := m.Exec.BeginRun(act, tool.Instance(), m.Designer, start)
		if err != nil {
			return nil, err
		}
		m.emit(EvRunStarted, act, start, "run %s (iteration %d)", runEntry.ID, iter)

		rsp := m.tr.Start(asp, "engine.run", start)
		rsp.SetDetail(runEntry.ID + " iter=" + strconv.Itoa(iter))
		result, runErr := tool.Run(inputs, iter)
		if runErr == nil && rec.RunDeadline > 0 && result.Work > rec.RunDeadline {
			// A hung tool: abort the run on the virtual clock. The
			// activity is charged exactly the deadline of working time.
			runErr = fmt.Errorf("engine: run %s exceeded deadline %v (tool reported %v)",
				runEntry.ID, rec.RunDeadline, result.Work)
			result.Work = rec.RunDeadline
			m.emit(EvRunTimeout, act, m.Calendar.AddWork(start, rec.RunDeadline),
				"run %s aborted at deadline %v", runEntry.ID, rec.RunDeadline)
		}
		finish := m.Calendar.AddWork(start, result.Work)
		now = finish
		rsp.End(finish)

		if runErr != nil {
			if err := m.Exec.FinishRun(runEntry.ID, finish, meta.RunFailed); err != nil {
				return nil, err
			}
			out.Failures++
			failStreak++
			m.emit(EvRunFailed, act, finish, "%v", runErr)
			if failStreak >= opt.MaxFailures {
				out.Finished = now
				return out, &ActivityFailedError{
					Activity: act, Attempts: iter, Failures: out.Failures, Cause: runErr,
				}
			}
			// Retry: exponential virtual-time backoff, stretched to any
			// known recovery instant (a license outage's end), then
			// failover to the next alternate tool instance.
			wait := rec.Backoff.wait(failStreak)
			retryAt := m.Calendar.AddWork(now, wait)
			if ra, ok := runErr.(retryAfter); ok {
				if t := ra.RetryAfter(); t.After(retryAt) {
					retryAt = t
					wait = m.Calendar.WorkBetween(now, t)
				}
			}
			if retryAt.After(now) {
				m.hBackoff.Observe(wait.Seconds())
				now = retryAt
			}
			m.emit(EvRunRetry, act, now, "retry %d after %s backoff", failStreak, wait.Round(time.Minute))
			if rec.Failover {
				if alt, rotated := m.Tools.Rotate(act); rotated {
					m.emit(EvFailover, act, now, "failover %s -> %s", tool.Instance(), alt.Instance())
				}
			}
			continue
		}
		failStreak = 0
		if err := m.Exec.FinishRun(runEntry.ID, finish, meta.RunSucceeded); err != nil {
			return nil, err
		}
		ref, err := m.Data.Put(rule.Output, result.Output, runEntry.ID, finish)
		if err != nil {
			return nil, err
		}
		entity, err := m.Exec.RecordEntity(rule.Output, runEntry.ID, ref, deps...)
		if err != nil {
			return nil, err
		}
		out.Iterations = iter
		out.FinalEntity = entity
		m.emit(EvEntityCreated, act, finish, "%s (%s)", entity.ID, ref)
		m.emit(EvRunFinished, act, finish, "run %s ok, goalMet=%v", runEntry.ID, result.GoalMet)

		if opt.Plan != nil && out.Iterations == iter && entityOf[rule.Output] == nil {
			// The first data instance sets the actual start date (§IV.C);
			// the recorded date is the producing run's start, while the
			// event itself happens when the instance is created.
			if err := m.Sched.MarkStarted(opt.Plan, act, out.Started); err == nil {
				m.emit(EvTaskStarted, act, finish, "actual start recorded as %s",
					out.Started.Format("2006-01-02 15:04"))
			}
		}
		bytesOf[rule.Output] = result.Output
		entityOf[rule.Output] = entity

		goalMet := result.GoalMet
		if goalMet && rec.Verify != nil {
			// The verifier (a checksum, a design-rule check) guards against
			// accepting corrupt output. The version stays filed for the
			// post-mortem, but the goals count as unmet.
			if verr := rec.Verify(act, result.Output); verr != nil {
				m.emit(EvVerifyFailed, act, finish, "%s rejected: %v", entity.ID, verr)
				goalMet = false
			}
		}
		if goalMet {
			// A version the designer would accept must still satisfy the
			// flow's acceptance constraints; a violation forces iteration.
			if err := m.checkConstraints(opt.Constraints, act, result.Output, finish); err != nil {
				goalMet = false
			}
		}
		if goalMet {
			goalReached = true
			break
		}
	}
	if out.FinalEntity == nil || !goalReached {
		out.Finished = now
		return out, &ActivityFailedError{
			Activity: act, Attempts: opt.MaxIterations, Failures: out.Failures,
			Cause: ErrGoalNotMet,
		}
	}
	out.Finished = now
	if opt.Plan != nil && opt.AutoComplete {
		if err := m.Sched.Complete(opt.Plan, act, out.FinalEntity.ID, out.Finished); err != nil {
			return nil, err
		}
		m.emit(EvTaskComplete, act, out.Finished, "linked %s", out.FinalEntity.ID)
	}
	return out, nil
}

// CompleteActivity lets the designer explicitly designate an entity
// instance as the final design data for an activity under a plan,
// creating the schedule<->entity link.
func (m *Manager) CompleteActivity(p *sched.Plan, activity, entityID string) error {
	if err := m.Sched.Complete(p, activity, entityID, m.Clock.Now()); err != nil {
		return err
	}
	m.emit(EvTaskComplete, activity, m.Clock.Now(), "linked %s", entityID)
	return nil
}
