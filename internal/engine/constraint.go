package engine

import (
	"bytes"
	"fmt"
	"time"
)

// Constraint is an acceptance condition on an activity's output — the
// constraint handling of hierarchical flow environments (paper ref [12],
// van der Wolf et al.). A produced version that violates a constraint
// does not meet the design goals, so the activity iterates even if the
// designer model would have accepted it; the violation is recorded in
// the event stream.
type Constraint struct {
	// Activity names the activity whose output is checked.
	Activity string
	// Name labels the constraint in events ("drc-clean", "nonempty").
	Name string
	// Check returns an error describing the violation, nil when clean.
	Check func(output []byte) error
}

func (c Constraint) validate() error {
	if c.Activity == "" {
		return fmt.Errorf("engine: constraint %q has no activity", c.Name)
	}
	if c.Name == "" {
		return fmt.Errorf("engine: constraint on %s has no name", c.Activity)
	}
	if c.Check == nil {
		return fmt.Errorf("engine: constraint %s on %s has no check", c.Name, c.Activity)
	}
	return nil
}

// EvConstraint is emitted when an output violates a constraint.
const EvConstraint EventKind = "constraint-violated"

// checkConstraints applies the constraints bound to an activity and
// returns the first violation (nil when clean). Violations are emitted.
func (m *Manager) checkConstraints(cs []Constraint, activity string, output []byte, at time.Time) error {
	for _, c := range cs {
		if c.Activity != activity {
			continue
		}
		if err := c.Check(output); err != nil {
			m.emit(EvConstraint, activity, at, "%s: %v", c.Name, err)
			return fmt.Errorf("engine: constraint %s: %w", c.Name, err)
		}
	}
	return nil
}

// NonEmpty is a constraint check requiring non-empty output.
func NonEmpty(output []byte) error {
	if len(output) == 0 {
		return fmt.Errorf("output is empty")
	}
	return nil
}

// Contains returns a check requiring the output to contain the marker
// (e.g. "DRC CLEAN" in a checker report).
func Contains(marker string) func([]byte) error {
	return func(output []byte) error {
		if !bytes.Contains(output, []byte(marker)) {
			return fmt.Errorf("output lacks marker %q", marker)
		}
		return nil
	}
}

// MaxBytes returns a check bounding the output size (a stand-in for area
// or runtime budgets).
func MaxBytes(n int) func([]byte) error {
	return func(output []byte) error {
		if len(output) > n {
			return fmt.Errorf("output is %d bytes, budget %d", len(output), n)
		}
		return nil
	}
}
