package engine

import (
	"errors"
	"testing"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/tools"
)

func TestBackoffWait(t *testing.T) {
	b := Backoff{Initial: time.Hour, Factor: 2, Max: 5 * time.Hour}
	cases := []struct {
		streak int
		want   time.Duration
	}{
		{0, 0}, {1, time.Hour}, {2, 2 * time.Hour}, {3, 4 * time.Hour},
		{4, 5 * time.Hour}, {10, 5 * time.Hour},
	}
	for _, c := range cases {
		if got := b.wait(c.streak); got != c.want {
			t.Errorf("wait(%d) = %v, want %v", c.streak, got, c.want)
		}
	}
	if got := (Backoff{}).wait(3); got != 0 {
		t.Errorf("zero backoff wait = %v, want 0", got)
	}
	// Factor defaults to 2 when unset.
	if got := (Backoff{Initial: time.Hour}).wait(2); got != 2*time.Hour {
		t.Errorf("default-factor wait = %v, want 2h", got)
	}
}

// TestBackoffConsumesVirtualTime: retries after failures wait on the
// calendar, so the same flaky execution finishes later with backoff than
// without, and the retries surface as run-retry events.
func TestBackoffConsumesVirtualTime(t *testing.T) {
	run := func(b Backoff) (*ExecResult, []Event) {
		m := newManager(t)
		m.BindTool("Create", &flakyTool{class: "editor", instance: "flaky#1", failures: 2})
		sim, _ := tools.DefaultFor("simulator", "s#1")
		m.BindTool("Simulate", sim)
		m.Import("stimuli", []byte("v"))
		tree, _ := m.ExtractTree("performance")
		res, err := m.ExecuteTask(tree, ExecOptions{
			MaxFailures: 3,
			Recovery:    Recovery{Backoff: b},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Events()
	}
	plain, _ := run(Backoff{})
	slow, evs := run(Backoff{Initial: 4 * time.Hour, Factor: 2})
	if !slow.Finished.After(plain.Finished) {
		t.Fatalf("backoff finish %v not after plain finish %v", slow.Finished, plain.Finished)
	}
	retries := 0
	for _, e := range evs {
		if e.Kind == EvRunRetry {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("run-retry events = %d, want 2", retries)
	}
}

// hangTool hangs (an absurd virtual runtime) on its first call, then
// behaves normally.
type hangTool struct {
	calls int
}

func (h *hangTool) Instance() string { return "hang#1" }
func (h *hangTool) Class() string    { return "editor" }
func (h *hangTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	h.calls++
	if h.calls == 1 {
		return tools.Result{Output: []byte("late"), Work: 1000 * time.Hour, GoalMet: true}, nil
	}
	return tools.Result{Output: []byte("ok"), Work: 2 * time.Hour, GoalMet: true}, nil
}

// TestRunDeadlineAbortsHungTool: a run deadline converts a hang into a
// failed run charged exactly the deadline of working time; the retry then
// completes the activity.
func TestRunDeadlineAbortsHungTool(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &hangTool{})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	res, err := m.ExecuteTask(tree, ExecOptions{
		Recovery: Recovery{RunDeadline: 72 * time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	create := res.Outcomes[0]
	if create.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (the aborted hang)", create.Failures)
	}
	var timeouts int
	for _, e := range m.Events() {
		if e.Kind == EvRunTimeout {
			timeouts++
		}
	}
	if timeouts != 1 {
		t.Fatalf("run-timeout events = %d, want 1", timeouts)
	}
	// The hang cost 72h of work, not 1000h: well under 1000h of calendar
	// distance on the standard calendar.
	if span := create.Finished.Sub(create.Started); span > 60*24*time.Hour {
		t.Fatalf("span %v suggests the full hang was charged", span)
	}
	// Without a deadline the hang runs to completion and is accepted.
	m2 := newManager(t)
	m2.BindTool("Create", &hangTool{})
	m2.BindTool("Simulate", sim)
	m2.Import("stimuli", []byte("v"))
	tree2, _ := m2.ExtractTree("performance")
	res2, err := m2.ExecuteTask(tree2, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcomes[0].Failures != 0 {
		t.Fatal("hang failed without a deadline")
	}
	if !res2.Finished.After(res.Finished) {
		t.Fatal("undeadlined hang finished earlier than the aborted one")
	}
}

// TestFailoverRotatesToAlternate: with a dead active instance and a
// working alternate, failover completes the activity on the alternate and
// emits a tool-failover event.
func TestFailoverRotatesToAlternate(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &flakyTool{class: "editor", instance: "dead#1", failures: 99})
	good, _ := tools.DefaultFor("editor", "good#2")
	if err := m.Tools.AddAlternate("Create", good); err != nil {
		t.Fatal(err)
	}
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	res, err := m.ExecuteTask(tree, ExecOptions{
		Recovery: Recovery{Failover: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(res.Outcomes))
	}
	failovers := 0
	for _, e := range m.Events() {
		if e.Kind == EvFailover {
			failovers++
		}
	}
	if failovers == 0 {
		t.Fatal("no tool-failover event emitted")
	}
	// The accepting run executed on the alternate instance.
	_, runs, _ := m.Exec.Runs("Create")
	if last := runs[len(runs)-1]; last.Tool != "good#2" {
		t.Fatalf("final run tool = %s, want good#2", last.Tool)
	}
}

// retryAfterErr is a failure that knows when retrying can succeed.
type retryAfterErr struct{ until time.Time }

func (e *retryAfterErr) Error() string         { return "resource gone until " + e.until.Format("01-02 15:04") }
func (e *retryAfterErr) RetryAfter() time.Time { return e.until }

// TestRetryAfterStretchesBackoff: when a failure carries RetryAfter, the
// retry cursor jumps to that instant instead of hammering a dead resource
// through the failure budget.
func TestRetryAfterStretchesBackoff(t *testing.T) {
	m := newManager(t)
	outageEnd := t0.Add(10 * 24 * time.Hour)
	fail := &scriptedTool{
		instance: "lic#1", class: "editor",
		errs: []error{&retryAfterErr{until: outageEnd}},
	}
	m.BindTool("Create", fail)
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	res, err := m.ExecuteTask(tree, ExecOptions{
		Recovery: Recovery{Backoff: Backoff{Initial: time.Hour}},
	})
	if err != nil {
		t.Fatal(err)
	}
	create := res.Outcomes[0]
	if create.Failures != 1 {
		t.Fatalf("failures = %d, want 1", create.Failures)
	}
	// The accepting run started only after the outage lifted.
	if !create.Finished.After(outageEnd) {
		t.Fatalf("finished %v before the outage end %v", create.Finished, outageEnd)
	}
}

// scriptedTool returns the scripted errors in order, then succeeds.
type scriptedTool struct {
	instance, class string
	errs            []error
	calls           int
}

func (s *scriptedTool) Instance() string { return s.instance }
func (s *scriptedTool) Class() string    { return s.class }
func (s *scriptedTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	s.calls++
	if s.calls <= len(s.errs) {
		return tools.Result{Work: time.Hour}, s.errs[s.calls-1]
	}
	return tools.Result{Output: []byte("ok"), Work: 2 * time.Hour, GoalMet: true}, nil
}

// TestContinueOnBlockFencesSubtree: in the diamond, a dead B blocks; D
// (needing B's output) is fenced; A and C still complete, and the tracked
// plan reports both as blocked with growing slip.
func TestContinueOnBlockFencesSubtree(t *testing.T) {
	m := diamondManager(t)
	m.BindTool("B", &flakyTool{class: "t", instance: "deadB#1", failures: 99})
	tree, _ := m.ExtractTree("merged")
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteTask(tree, ExecOptions{
		Plan: &pr.Plan, AutoComplete: true,
		Recovery: Recovery{ContinueOnBlock: true},
	})
	if err != nil {
		t.Fatalf("graceful degradation aborted: %v", err)
	}
	if len(res.Blocked) != 2 || res.Blocked[0] != "B" || res.Blocked[1] != "D" {
		t.Fatalf("blocked = %v, want [B D]", res.Blocked)
	}
	done := map[string]bool{}
	for _, o := range res.Outcomes {
		done[o.Activity] = true
	}
	if !done["A"] || !done["C"] || done["B"] || done["D"] {
		t.Fatalf("outcomes = %v, want exactly A and C", done)
	}
	blockedEvents := 0
	for _, e := range m.Events() {
		if e.Kind == EvBlocked {
			blockedEvents++
		}
	}
	if blockedEvents != 2 {
		t.Fatalf("activity-blocked events = %d, want 2", blockedEvents)
	}
	// The tracked plan reports the blockage as slip, not as a dead plan.
	if _, err := m.Sched.Propagate(&pr.Plan, m.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	sts, err := m.Sched.Status(&pr.Plan, m.Clock.Now().Add(14*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]sched.State{}
	var blockedSlip time.Duration
	for _, st := range sts {
		states[st.Activity] = st.State
		if st.Activity == "B" {
			blockedSlip = st.Slip
		}
	}
	if states["B"] != sched.Blocked || states["D"] != sched.Blocked {
		t.Fatalf("states = %v, want B and D blocked", states)
	}
	if states["A"] != sched.Done || states["C"] != sched.Done {
		t.Fatalf("states = %v, want A and C done", states)
	}
	if blockedSlip <= 0 {
		t.Fatal("blocked activity reports no slip")
	}
	// Recovery: rebind a working tool and re-execute — completion clears
	// the blocked flag. (AutoComplete is off: A and C are already
	// complete under this plan, so B and D are completed explicitly.)
	m.BindTool("B", &fixedTool{instance: "B#2", work: 4 * time.Hour})
	res, err = m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Activity == "B" || o.Activity == "D" {
			if err := m.CompleteActivity(&pr.Plan, o.Activity, o.FinalEntity.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	sts, _ = m.Sched.Status(&pr.Plan, m.Clock.Now())
	for _, st := range sts {
		if st.State == sched.Blocked {
			t.Fatalf("activity %s still blocked after recovery", st.Activity)
		}
	}
}

// TestCheckpointResumeRunsNothingTwice is the acceptance criterion: a
// killed execution resumed via the ExecError checkpoint re-runs zero
// already-completed activities, verified by run-entry counts.
func TestCheckpointResumeRunsNothingTwice(t *testing.T) {
	m := diamondManager(t)
	m.BindTool("D", &flakyTool{class: "t", instance: "deadD#1", failures: 99})
	tree, _ := m.ExtractTree("merged")
	_, err := m.ExecuteTask(tree, ExecOptions{})
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *ExecError", err)
	}
	if got := ee.Completed(); len(got) != 3 {
		t.Fatalf("completed = %v, want A, B, C", got)
	}
	if ee.Snapshot == nil {
		t.Fatal("checkpoint carries no store snapshot")
	}
	// The completed work is durable and queryable through the snapshot.
	for _, class := range []string{"src", "left", "right"} {
		c := ee.Snapshot.Container(class)
		if c == nil || len(c.Entries) == 0 {
			t.Fatalf("snapshot has no %s entities", class)
		}
	}
	runsBefore := map[string]int{}
	for _, act := range []string{"A", "B", "C"} {
		_, runs, _ := m.Exec.Runs(act)
		runsBefore[act] = len(runs)
		if runsBefore[act] == 0 {
			t.Fatalf("no runs recorded for completed activity %s", act)
		}
	}

	// Fix the tool, resume from the checkpoint.
	m.BindTool("D", &fixedTool{instance: "D#2", work: 4 * time.Hour})
	res, err := ee.Resume()
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(res.Resumed) != 3 {
		t.Fatalf("resumed = %v, want A, B, C skipped", res.Resumed)
	}
	for _, act := range []string{"A", "B", "C"} {
		_, runs, _ := m.Exec.Runs(act)
		if len(runs) != runsBefore[act] {
			t.Fatalf("resume re-ran %s: %d runs, had %d", act, len(runs), runsBefore[act])
		}
	}
	_, druns, _ := m.Exec.Runs("D")
	if len(druns) == 0 {
		t.Fatal("resume did not run D")
	}
	resumed := 0
	for _, e := range m.Events() {
		if e.Kind == EvResumed {
			resumed++
		}
	}
	if resumed != 3 {
		t.Fatalf("activity-resumed events = %d, want 3", resumed)
	}
	// Resuming twice keeps working (the error value is reusable).
	if _, err := ee.Resume(); err != nil {
		t.Fatalf("second resume failed: %v", err)
	}
}

// corruptingTool emits marked output on iteration 1 and clean output
// afterwards.
type corruptingTool struct{}

func (c *corruptingTool) Instance() string { return "corr#1" }
func (c *corruptingTool) Class() string    { return "editor" }
func (c *corruptingTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	out := []byte("clean design data")
	if iteration == 1 {
		out = []byte("BAD design data")
	}
	return tools.Result{Output: out, Work: 2 * time.Hour, GoalMet: true}, nil
}

// TestVerifyForcesIteration: a Verify hook rejecting the first iteration's
// output forces a second iteration; the corrupt version stays filed but
// is not the final entity.
func TestVerifyForcesIteration(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &corruptingTool{})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	res, err := m.ExecuteTask(tree, ExecOptions{
		Recovery: Recovery{Verify: func(act string, out []byte) error {
			if string(out[:3]) == "BAD" {
				return errors.New("checksum mismatch")
			}
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	create := res.Outcomes[0]
	if create.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2 (verify forced one more)", create.Iterations)
	}
	_, ent, err := m.Exec.LatestEntity("netlist")
	if err != nil || ent == nil {
		t.Fatalf("latest netlist entity: %v", err)
	}
	obj, err := m.Data.Get(ent.Data)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Bytes[:5]) != "clean" {
		t.Fatalf("accepted output %q is the corrupt version", obj.Bytes)
	}
	verifyEvents := 0
	for _, e := range m.Events() {
		if e.Kind == EvVerifyFailed {
			verifyEvents++
		}
	}
	if verifyEvents != 1 {
		t.Fatalf("verify-failed events = %d, want 1", verifyEvents)
	}
}
