package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/tools"
	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(schema.MustParse(fig4), vclock.Standard(), t0, "ewj")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ready prepares a manager with default tools and imported stimuli.
func ready(t *testing.T) *Manager {
	t.Helper()
	m := newManager(t)
	if err := m.BindDefaults(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Import("stimuli", []byte("pulse 0 5 1ns\n")); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	sch := schema.MustParse(fig4)
	if _, err := New(sch, nil, t0, "x"); err == nil {
		t.Fatal("nil calendar accepted")
	}
	if _, err := New(sch, vclock.Standard(), t0, ""); err == nil {
		t.Fatal("empty designer accepted")
	}
	if _, err := New(schema.New("bad"), vclock.Standard(), t0, "x"); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestNewInitializesBothSpaces(t *testing.T) {
	m := newManager(t)
	st := m.DB.Stats()
	if st[store.ExecutionSpace].Containers != 5 { // 3 data + 2 run
		t.Fatalf("execution containers = %d", st[store.ExecutionSpace].Containers)
	}
	if st[store.ScheduleSpace].Containers != 3 { // plan + 2 activities
		t.Fatalf("schedule containers = %d", st[store.ScheduleSpace].Containers)
	}
}

func TestBindToolValidation(t *testing.T) {
	m := newManager(t)
	tool, _ := tools.DefaultFor("editor", "e#1")
	if err := m.BindTool("Nope", tool); err == nil {
		t.Fatal("unknown activity accepted")
	}
	if err := m.BindTool("Create", tool); err != nil {
		t.Fatal(err)
	}
}

func TestBindDefaultsPreservesExisting(t *testing.T) {
	m := newManager(t)
	custom, _ := tools.DefaultFor("editor", "custom#9")
	m.BindTool("Create", custom)
	if err := m.BindDefaults(); err != nil {
		t.Fatal(err)
	}
	if got := m.Tools.For("Create").Instance(); got != "custom#9" {
		t.Fatalf("BindDefaults replaced custom binding: %s", got)
	}
	if m.Tools.For("Simulate") == nil {
		t.Fatal("Simulate not bound")
	}
}

func TestImport(t *testing.T) {
	m := newManager(t)
	e, err := m.Import("stimuli", []byte("vec"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Container != "stimuli" {
		t.Fatalf("entity container = %s", e.Container)
	}
	if m.Data.Versions("stimuli") != 1 {
		t.Fatal("Level 4 object missing")
	}
	if _, err := m.Import("editor", []byte("x")); err == nil {
		t.Fatal("import into tool class accepted")
	}
}

func TestExecuteTaskNotReady(t *testing.T) {
	m := newManager(t)
	tree, _ := m.ExtractTree("performance")
	if _, err := m.ExecuteTask(tree, ExecOptions{}); err == nil || !strings.Contains(err.Error(), "no tool") {
		t.Fatalf("err = %v, want no-tool", err)
	}
	m.BindDefaults()
	if _, err := m.ExecuteTask(tree, ExecOptions{}); err == nil || !strings.Contains(err.Error(), "no imported data") {
		t.Fatalf("err = %v, want no-data", err)
	}
}

func TestExecuteTaskProducesEntities(t *testing.T) {
	m := ready(t)
	tree, _ := m.ExtractTree("performance")
	res, err := m.ExecuteTask(tree, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Iterations < 1 || o.FinalEntity == nil {
			t.Fatalf("outcome = %+v", o)
		}
		if !o.Finished.After(o.Started) {
			t.Fatalf("no time elapsed for %s", o.Activity)
		}
	}
	// Entity instances exist for netlist and performance.
	for _, class := range []string{"netlist", "performance"} {
		_, latest, err := m.Exec.LatestEntity(class)
		if err != nil || latest == nil {
			t.Fatalf("no %s entity: %v", class, err)
		}
		// Level 4 object retrievable.
		if _, err := m.Data.Get(latest.Data); err != nil {
			t.Fatalf("level 4 data for %s: %v", class, err)
		}
	}
	// Virtual clock advanced.
	if !m.Clock.Now().After(t0) {
		t.Fatal("clock did not advance")
	}
	// Runs recorded with iterations.
	_, runs, _ := m.Exec.Runs("Create")
	if len(runs) == 0 || runs[0].Status != "succeeded" && runs[0].Status != "failed" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestExecuteTaskDeterministic(t *testing.T) {
	run := func() time.Time {
		m := ready(t)
		tree, _ := m.ExtractTree("performance")
		if _, err := m.ExecuteTask(tree, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		return m.Clock.Now()
	}
	if a, b := run(), run(); !a.Equal(b) {
		t.Fatalf("execution not deterministic: %v vs %v", a, b)
	}
}

func TestExecuteTaskTracksPlan(t *testing.T) {
	m := ready(t)
	tree, _ := m.ExtractTree("performance")
	est := sched.Fixed{Default: 8 * time.Hour}
	pr, err := m.Plan(tree, est, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		se, in, err := m.Sched.Instance(&pr.Plan, o.Activity)
		if err != nil {
			t.Fatal(err)
		}
		if !in.Done || in.LinkedEntity != o.FinalEntity.ID {
			t.Fatalf("%s schedule instance = %+v", o.Activity, in)
		}
		if !m.DB.Linked(se.ID, o.FinalEntity.ID) {
			t.Fatalf("%s not linked to %s", se.ID, o.FinalEntity.ID)
		}
		if !in.ActualStart.Equal(o.Started) {
			t.Fatalf("%s actual start %v != outcome %v", o.Activity, in.ActualStart, o.Started)
		}
	}
	// Plan finish reflects actual completion after propagation.
	_, p, _ := m.Sched.PlanByVersion(pr.Plan.Version)
	if !p.Finish.Equal(m.Clock.Now()) && p.Finish.Before(m.Clock.Now()) {
		t.Fatalf("plan finish %v vs clock %v", p.Finish, m.Clock.Now())
	}
}

func TestExecuteTaskManualComplete(t *testing.T) {
	m := ready(t)
	tree, _ := m.ExtractTree("performance")
	pr, _ := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan})
	if err != nil {
		t.Fatal(err)
	}
	_, in, _ := m.Sched.Instance(&pr.Plan, "Create")
	if in.Done {
		t.Fatal("auto-completed without AutoComplete")
	}
	if !in.Started() {
		t.Fatal("actual start not recorded")
	}
	if err := m.CompleteActivity(&pr.Plan, "Create", res.Outcomes[0].FinalEntity.ID); err != nil {
		t.Fatal(err)
	}
	_, in, _ = m.Sched.Instance(&pr.Plan, "Create")
	if !in.Done {
		t.Fatal("manual completion failed")
	}
}

func TestExecuteTaskFailuresBail(t *testing.T) {
	m := newManager(t)
	// A tool that always fails.
	bad, err := tools.NewSim("editor", "broken#1",
		tools.Profile{Base: time.Hour, MeanIterations: 1, FailureRate: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	m.BindTool("Create", bad)
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	_, err = m.ExecuteTask(tree, ExecOptions{MaxFailures: 2})
	var afe *ActivityFailedError
	if !errors.As(err, &afe) {
		t.Fatalf("err = %v, want *ActivityFailedError", err)
	}
	if afe.Activity != "Create" || afe.Attempts != 2 || afe.Failures != 2 {
		t.Fatalf("failure = %+v, want Create after 2 attempts, 2 failed", afe)
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *ExecError checkpoint", err)
	}
	if len(ee.Completed()) != 0 {
		t.Fatalf("completed = %v, want none", ee.Completed())
	}
	// Failed runs were still recorded as metadata — completed (here:
	// attempted) work remains queryable after the typed error.
	_, runs, _ := m.Exec.Runs("Create")
	if len(runs) != 2 {
		t.Fatalf("failed runs recorded = %d, want 2", len(runs))
	}
}

func TestEventsStream(t *testing.T) {
	m := ready(t)
	tree, _ := m.ExtractTree("performance")
	pr, _ := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if _, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true}); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[EventKind]int)
	for _, e := range m.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []EventKind{EvPlanCreated, EvRunStarted, EvRunFinished, EvEntityCreated, EvTaskStarted, EvTaskComplete} {
		if kinds[want] == 0 {
			t.Errorf("no %s events; got %v", want, kinds)
		}
	}
	// Events are chronologically ordered.
	evs := m.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("events out of order at %d: %v < %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

// Reproduces Fig. 6/7 shape: iterations yield multiple entity instances
// per container, completion links exactly one per activity.
func TestFig7OneLinkPerActivity(t *testing.T) {
	m := ready(t)
	tree, _ := m.ExtractTree("performance")
	pr, _ := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if _, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true}); err != nil {
		t.Fatal(err)
	}
	for _, act := range []string{"Create", "Simulate"} {
		c := m.DB.Container(sched.Container(act))
		links := 0
		for _, e := range c.Entries {
			links += len(e.Links)
		}
		if links != 1 {
			t.Errorf("%s schedule container has %d links, want exactly 1", act, links)
		}
	}
}
