package engine

import (
	"testing"
	"time"

	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/tools"
)

// flakyTool fails its first `failures` runs, then behaves like a normal
// scripted tool.
type flakyTool struct {
	class, instance string
	failures        int
	calls           int
}

func (f *flakyTool) Instance() string { return f.instance }
func (f *flakyTool) Class() string    { return f.class }

func (f *flakyTool) Run(inputs map[string][]byte, iteration int) (tools.Result, error) {
	f.calls++
	if f.calls <= f.failures {
		return tools.Result{Work: time.Hour}, errTestCrash
	}
	return tools.Result{
		Output:  []byte("ok output"),
		Work:    2 * time.Hour,
		GoalMet: true,
	}, nil
}

type crashErr struct{}

func (crashErr) Error() string { return "simulated tool crash" }

var errTestCrash = crashErr{}

// TestRecoveryAfterToolCrashes: a tool fails twice (under MaxFailures=3),
// the engine retries within the same execution, and the task completes;
// the failed runs remain recorded as design metadata.
func TestRecoveryAfterToolCrashes(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &flakyTool{class: "editor", instance: "flaky#1", failures: 2})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")

	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true, MaxFailures: 3})
	if err != nil {
		t.Fatal(err)
	}
	create := res.Outcomes[0]
	if create.Failures != 2 {
		t.Fatalf("failures = %d, want 2", create.Failures)
	}
	// 3 runs total: 2 failed + 1 succeeded.
	_, runs, _ := m.Exec.Runs("Create")
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	failed := 0
	for _, r := range runs {
		if r.Status == meta.RunFailed {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("failed runs = %d", failed)
	}
	// Completed and linked despite the crashes.
	_, in, _ := m.Sched.Instance(&pr.Plan, "Create")
	if !in.Done {
		t.Fatal("Create not completed after recovery")
	}
	// Failed runs consumed virtual time: the actual span exceeds one
	// clean run.
	if span := create.Finished.Sub(create.Started); span < 4*time.Hour {
		t.Fatalf("span %v too short for 2 failures + success", span)
	}
}

// TestResumeAfterBailout: the first execution bails (MaxFailures hit); the
// designer rebinds a working tool and re-executes the same tree. The new
// execution succeeds and iteration numbering continues across executions.
func TestResumeAfterBailout(t *testing.T) {
	m := newManager(t)
	m.BindTool("Create", &flakyTool{class: "editor", instance: "dead#1", failures: 99})
	sim, _ := tools.DefaultFor("simulator", "s#1")
	m.BindTool("Simulate", sim)
	m.Import("stimuli", []byte("v"))
	tree, _ := m.ExtractTree("performance")
	pr, err := m.Plan(tree, sched.Fixed{Default: 8 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, MaxFailures: 2}); err == nil {
		t.Fatal("broken tool execution succeeded")
	}
	// Rebind a working editor and retry.
	ed, _ := tools.DefaultFor("editor", "good#1")
	m.BindTool("Create", ed)
	res, err := m.ExecuteTask(tree, ExecOptions{Plan: &pr.Plan, AutoComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// Run history spans both executions: 2 failed + the retry's runs.
	_, runs, _ := m.Exec.Runs("Create")
	if len(runs) < 3 {
		t.Fatalf("runs = %d, want >= 3 across executions", len(runs))
	}
	if runs[len(runs)-1].Iteration != len(runs) {
		t.Fatalf("iteration numbering reset: %+v", runs[len(runs)-1])
	}
	// Propagated plan shows the schedule slipped past the original finish.
	_, plan2, _ := m.Sched.PlanByVersion(pr.Plan.Version)
	if !plan2.Finish.After(pr.Plan.Start.Add(24 * time.Hour)) {
		t.Fatalf("plan finish %v does not reflect crash delay", plan2.Finish)
	}
}

// TestRestoreValidation covers the Restore constructor directly (the
// happy path is exercised end-to-end by the root package's Load tests).
func TestRestoreValidation(t *testing.T) {
	m := newManager(t)
	sch := m.Schema
	cal := m.Calendar
	db := m.DB
	data := m.Data
	now := m.Clock.Now()
	if _, err := Restore(sch, nil, db, data, now, "x"); err == nil {
		t.Fatal("nil calendar accepted")
	}
	if _, err := Restore(sch, cal, nil, data, now, "x"); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := Restore(sch, cal, db, nil, now, "x"); err == nil {
		t.Fatal("nil data store accepted")
	}
	if _, err := Restore(sch, cal, db, data, now, ""); err == nil {
		t.Fatal("empty designer accepted")
	}
	re, err := Restore(sch, cal, db, data, now, "resumer")
	if err != nil {
		t.Fatal(err)
	}
	if re.DB != db || re.Data != data || !re.Clock.Now().Equal(now) {
		t.Fatal("restore did not adopt existing state")
	}
	// A schema that conflicts with the DB's existing containers is
	// rejected: a data class named "schedule" would need an
	// execution-space container, but the restored DB already holds the
	// schedule-space plan container of that name.
	bad := schema.New("bad")
	bad.AddDataClass("schedule")
	bad.AddToolClass("t")
	if _, err := bad.AddRule("A", "schedule", "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bad, cal, db, data, now, "x"); err == nil {
		t.Fatal("conflicting schema accepted")
	}
}
