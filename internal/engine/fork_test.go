package engine

import (
	"sync"
	"testing"
	"time"

	"flowsched/internal/sched"
)

// run plans and executes the manager's full flow, returning the plan.
func runFlow(t *testing.T, m *Manager) *sched.Plan {
	t.Helper()
	tree, err := m.ExtractTree("performance")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Plan(tree, sched.Fixed{Default: 4 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteTask(tree, ExecOptions{Plan: &res.Plan, AutoComplete: true}); err != nil {
		t.Fatal(err)
	}
	return &res.Plan
}

func TestForkIsIndependent(t *testing.T) {
	m := ready(t)
	plan := runFlow(t, m)

	f, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.DB.Dump() != m.DB.Dump() {
		t.Fatal("fork database differs from parent at fork time")
	}
	if len(f.Events()) != len(m.Events()) {
		t.Fatal("fork lost the parent's event history")
	}
	if f.Clock.Now() != m.Clock.Now() {
		t.Fatal("fork clock not at parent's virtual now")
	}

	parentDump := m.DB.Dump()
	// Re-plan and re-execute only in the fork.
	fplan := runFlow(t, f)
	if fplan.Version != plan.Version+1 {
		t.Fatalf("fork plan version = %d, want %d", fplan.Version, plan.Version+1)
	}
	if m.DB.Dump() != parentDump {
		t.Fatal("fork execution leaked into parent database")
	}
	if _, _, err := m.Sched.PlanByVersion(fplan.Version); err == nil {
		t.Fatal("parent sees fork's plan version")
	}
	// Fork's design store is independent: new data filed in the fork
	// never appears in the parent (identical re-run bytes deduplicate, so
	// force fresh content).
	parentObjects := m.Data.TotalObjects()
	if _, err := f.Data.Put("stimuli", []byte("fork-only vectors\n"), "", f.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	if m.Data.TotalObjects() != parentObjects {
		t.Fatal("fork design-data write leaked into parent store")
	}
	// Parent keeps working after the fork diverged.
	if _, err := m.Import("stimuli", []byte("pulse 1 9 2ns\n")); err != nil {
		t.Fatal(err)
	}
	if got := len(f.DB.Container("stimuli").Entries); got != 1 {
		t.Fatalf("parent import visible in fork: %d stimuli entries", got)
	}
	// Rebinding tools in the fork leaves the parent binding alone.
	if f.Tools.For("Create") == nil || m.Tools.For("Create") == nil {
		t.Fatal("tool bindings missing after fork")
	}
}

func TestAtViewIsConsistentAndReadOnly(t *testing.T) {
	m := ready(t)
	plan := runFlow(t, m)

	r := m.AtView(nil)
	wantDump := m.DB.Dump()

	// Reads work and agree with the live state at snapshot time.
	if _, p, err := r.Sched.CurrentPlan(); err != nil || p.Version != plan.Version {
		t.Fatalf("view-bound CurrentPlan: %v", err)
	}
	st, err := r.Sched.Status(plan, m.Clock.Now())
	if err != nil || len(st) == 0 {
		t.Fatalf("view-bound Status: %v", err)
	}
	if _, _, err := r.Exec.LatestEntity("performance"); err != nil {
		t.Fatalf("view-bound LatestEntity: %v", err)
	}

	// Writes on the view-bound spaces fail without touching the DB.
	if err := r.Sched.MarkStarted(plan, "Create", m.Clock.Now()); err == nil {
		t.Fatal("view-bound MarkStarted succeeded")
	}
	if _, err := r.Exec.BeginRun("Create", "editor#1", "ewj", m.Clock.Now()); err == nil {
		t.Fatal("view-bound BeginRun succeeded")
	}
	tree, _ := m.ExtractTree("performance")
	if _, err := r.Sched.Plan(tree, m.Clock.Now(), sched.Fixed{Default: time.Hour}, sched.PlanOptions{}); err == nil {
		t.Fatal("view-bound Plan succeeded")
	}

	// Later live writes don't reach the view.
	if _, err := m.Import("stimuli", []byte("late import\n")); err != nil {
		t.Fatal(err)
	}
	if c := r.Sched.Reader().Container("stimuli"); len(c.Entries) != 1 {
		t.Fatalf("view sees %d stimuli entries, want 1", len(c.Entries))
	}
	if m.DB.Dump() == wantDump {
		t.Fatal("live dump unchanged after import")
	}
}

// Satellite: Events/EventsSince polled concurrently with an executing
// manager must be race-free (run under -race in tier-1).
func TestEventsPollingDuringExecution(t *testing.T) {
	m := ready(t)
	tree, err := m.ExtractTree("performance")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Plan(tree, sched.Fixed{Default: 4 * time.Hour}, sched.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var polled int
	wg.Add(1)
	go func() { // poller: the hercules `events` pattern
		defer wg.Done()
		seq := 0
		for {
			evs := m.EventsSince(seq)
			seq += len(evs)
			polled += len(evs)
			select {
			case <-done:
				polled += len(m.EventsSince(seq))
				return
			default:
			}
		}
	}()
	if _, err := m.ExecuteTask(tree, ExecOptions{Plan: &res.Plan, AutoComplete: true, Parallel: true}); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if total := len(m.Events()); polled != total {
		t.Fatalf("poller saw %d events, stream has %d", polled, total)
	}
}
