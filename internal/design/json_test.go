package design

import (
	"encoding/json"
	"testing"
)

func TestStoreJSONRoundTrip(t *testing.T) {
	s := NewStore()
	r1, _ := s.Put("netlist", []byte("rev 1\x00binary\xff"), "Create/1", t0)
	s.Put("netlist", []byte("rev 2"), "Create/2", t0)
	s.Put("stimuli", []byte("vectors"), "", t0)

	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	re := NewStore()
	if err := json.Unmarshal(blob, re); err != nil {
		t.Fatal(err)
	}
	if re.Versions("netlist") != 2 || re.Versions("stimuli") != 1 {
		t.Fatalf("versions = %d/%d", re.Versions("netlist"), re.Versions("stimuli"))
	}
	o, err := re.Get(r1)
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Bytes) != "rev 1\x00binary\xff" || o.Producer != "Create/1" {
		t.Fatalf("object = %+v", o)
	}
	// Dedup index restored: identical content returns the existing ref.
	r1b, _ := re.Put("netlist", []byte("rev 1\x00binary\xff"), "", t0)
	if r1b != r1 {
		t.Fatalf("dedup lost across restore: %v vs %v", r1b, r1)
	}
	// Stable second round trip.
	blob2, _ := json.Marshal(re)
	re2 := NewStore()
	if err := json.Unmarshal(blob2, re2); err != nil {
		t.Fatal(err)
	}
	if re2.TotalBytes() != s.TotalBytes() {
		t.Fatal("byte totals diverged")
	}
}

func TestStoreJSONRejectsCorrupt(t *testing.T) {
	cases := []struct{ name, blob string }{
		{"bad json", "{"},
		{"non-dense", `{"classes":{"a":[{"version":2,"sum":0,"bytes":null}]}}`},
		{"hash mismatch", `{"classes":{"a":[{"version":1,"sum":12345,"bytes":"aGk="}]}}`},
	}
	for _, tc := range cases {
		re := NewStore()
		if err := json.Unmarshal([]byte(tc.blob), re); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// Restore into non-empty store rejected.
	s := NewStore()
	s.Put("x", []byte("y"), "", t0)
	if err := json.Unmarshal([]byte(`{"classes":{}}`), s); err == nil {
		t.Error("restore into non-empty store accepted")
	}
}
