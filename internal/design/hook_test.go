package design

import (
	"fmt"
	"testing"
)

func TestPutHookObservesOnlyInserts(t *testing.T) {
	s := NewStore()
	var inserts []*Object
	s.SetPutHook(func(o *Object) { inserts = append(inserts, o) })

	r1, err := s.Put("netlist", []byte("rev 1"), "Create/1", t0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("netlist", []byte("rev 1"), "Create/1", t0); err != nil { // dedup
		t.Fatal(err)
	}
	if _, err := s.Put("netlist", []byte("rev 2"), "Create/2", t0.Add(1)); err != nil {
		t.Fatal(err)
	}
	if len(inserts) != 2 {
		t.Fatalf("hook saw %d inserts, want 2 (dedup must be silent)", len(inserts))
	}
	if inserts[0].Ref != r1 {
		t.Fatalf("first insert ref = %v, want %v", inserts[0].Ref, r1)
	}

	// Replaying the observed inserts reproduces the chains exactly.
	r := NewStore()
	for _, o := range inserts {
		ref, err := r.Put(o.Ref.Class, o.Bytes, o.Producer, o.Created)
		if err != nil {
			t.Fatal(err)
		}
		if ref != o.Ref {
			t.Fatalf("replayed ref = %v, want %v", ref, o.Ref)
		}
	}
	if r.TotalObjects() != s.TotalObjects() || r.TotalBytes() != s.TotalBytes() {
		t.Fatalf("replayed store %d obj/%d B, want %d/%d",
			r.TotalObjects(), r.TotalBytes(), s.TotalObjects(), s.TotalBytes())
	}

	// nil removes; forks do not inherit.
	s.SetPutHook(nil)
	if _, err := s.Put("netlist", []byte("rev 3"), "", t0); err != nil {
		t.Fatal(err)
	}
	s.SetPutHook(func(*Object) { t.Fatal("fork inherited hook") })
	f := s.Fork()
	s.SetPutHook(nil)
	for i := 0; i < 3; i++ {
		if _, err := f.Put("stim", []byte(fmt.Sprintf("v%d", i)), "", t0); err != nil {
			t.Fatal(err)
		}
	}
}
