package design

import (
	"encoding/json"
	"fmt"
	"time"
)

// objectJSON is the persisted form of one object.
type objectJSON struct {
	Version  int       `json:"version"`
	Sum      uint64    `json:"sum"`
	Created  time.Time `json:"created"`
	Producer string    `json:"producer,omitempty"`
	Bytes    []byte    `json:"bytes"`
}

// storeJSON is the persisted form of a Store.
type storeJSON struct {
	Classes map[string][]objectJSON `json:"classes"`
}

// MarshalJSON serializes the store (content included, base64-encoded).
func (s *Store) MarshalJSON() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := storeJSON{Classes: make(map[string][]objectJSON, len(s.byClass))}
	for class, chain := range s.byClass {
		objs := make([]objectJSON, len(chain))
		for i, o := range chain {
			objs[i] = objectJSON{
				Version: o.Ref.Version, Sum: o.Ref.Sum,
				Created: o.Created, Producer: o.Producer, Bytes: o.Bytes,
			}
		}
		out.Classes[class] = objs
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a store serialized by MarshalJSON into an empty
// Store, verifying content hashes and version density.
func (s *Store) UnmarshalJSON(data []byte) error {
	var in storeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("design: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byClass) != 0 {
		return fmt.Errorf("design: restore into non-empty store")
	}
	if s.byClass == nil {
		s.byClass = make(map[string][]*Object)
		s.bySum = make(map[uint64]*Object)
	}
	for class, objs := range in.Classes {
		chain := make([]*Object, len(objs))
		for i, oj := range objs {
			if oj.Version != i+1 {
				return fmt.Errorf("design: restore: class %q has non-dense versions", class)
			}
			if hashBytes(oj.Bytes) != oj.Sum {
				return fmt.Errorf("design: restore: object %s@%d hash mismatch", class, oj.Version)
			}
			o := &Object{
				Ref:      Ref{Class: class, Version: oj.Version, Sum: oj.Sum},
				Created:  oj.Created,
				Producer: oj.Producer,
				Bytes:    oj.Bytes,
			}
			chain[i] = o
			s.bySum[oj.Sum] = o
		}
		s.byClass[class] = chain
	}
	return nil
}
