package design

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(1995, time.June, 5, 9, 0, 0, 0, time.UTC)

func TestPutGet(t *testing.T) {
	s := NewStore()
	ref, err := s.Put("netlist", []byte(".subckt inv in out\n"), "Create/1", t0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Class != "netlist" || ref.Version != 1 {
		t.Fatalf("ref = %v", ref)
	}
	o, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Bytes) != ".subckt inv in out\n" || o.Producer != "Create/1" {
		t.Fatalf("object = %+v", o)
	}
}

func TestPutEmptyClass(t *testing.T) {
	if _, err := NewStore().Put("", []byte("x"), "", t0); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestVersionChain(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 3; i++ {
		ref, err := s.Put("netlist", []byte(fmt.Sprintf("rev %d", i)), "", t0)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Version != i {
			t.Fatalf("version = %d, want %d", ref.Version, i)
		}
	}
	if s.Versions("netlist") != 3 {
		t.Fatalf("Versions = %d", s.Versions("netlist"))
	}
	if got := s.Latest("netlist"); got == nil || string(got.Bytes) != "rev 3" {
		t.Fatalf("Latest = %+v", got)
	}
	if s.Latest("nothing") != nil {
		t.Fatal("Latest of empty class non-nil")
	}
}

func TestDeduplication(t *testing.T) {
	s := NewStore()
	r1, _ := s.Put("netlist", []byte("same"), "", t0)
	r2, _ := s.Put("netlist", []byte("same"), "", t0.Add(time.Hour))
	if r1 != r2 {
		t.Fatalf("identical content not deduplicated: %v vs %v", r1, r2)
	}
	if s.Versions("netlist") != 1 {
		t.Fatalf("Versions = %d after dedup", s.Versions("netlist"))
	}
}

func TestGetErrors(t *testing.T) {
	s := NewStore()
	ref, _ := s.Put("netlist", []byte("x"), "", t0)
	if _, err := s.Get(Ref{Class: "netlist", Version: 9, Sum: ref.Sum}); err == nil {
		t.Fatal("out-of-range version accepted")
	}
	if _, err := s.Get(Ref{Class: "netlist", Version: 1, Sum: ref.Sum + 1}); err == nil {
		t.Fatal("hash mismatch accepted")
	}
	if _, err := s.Get(Ref{Class: "ghost", Version: 1}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Class: "netlist", Version: 2, Sum: 0xdeadbeef}
	if got := r.String(); !strings.HasPrefix(got, "netlist@2#") {
		t.Fatalf("String = %q", got)
	}
	if !(Ref{}).IsZero() || r.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestClassesAndTotalBytes(t *testing.T) {
	s := NewStore()
	s.Put("b", []byte("12345"), "", t0)
	s.Put("a", []byte("123"), "", t0)
	cls := s.Classes()
	if len(cls) != 2 || cls[0] != "a" || cls[1] != "b" {
		t.Fatalf("Classes = %v", cls)
	}
	if got := s.TotalBytes(); got != 8 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

// Property: Put then Get round-trips content for arbitrary byte strings.
func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	f := func(data []byte) bool {
		ref, err := s.Put("blob", data, "", t0)
		if err != nil {
			return false
		}
		o, err := s.Get(ref)
		if err != nil {
			return false
		}
		return string(o.Bytes) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: storing the same content twice never grows the version chain.
func TestDedupProperty(t *testing.T) {
	f := func(data []byte) bool {
		s := NewStore()
		r1, err1 := s.Put("c", data, "", t0)
		r2, err2 := s.Put("c", data, "", t0)
		return err1 == nil && err2 == nil && r1 == r2 && s.Versions("c") == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
