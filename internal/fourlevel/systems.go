package fourlevel

import (
	"fmt"

	"flowsched/internal/engine"
	"flowsched/internal/flow"
	"flowsched/internal/petri"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/trace"
	"flowsched/internal/vclock"
)

// topoActivities returns a schema's activities in producer-first order.
func topoActivities(sch *schema.Schema) ([]string, error) {
	rules, err := sch.TopoRules()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Activity
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Roadmap (Philips): data-flow based architecture over the OTO-D model.

// Roadmap adapts the Roadmap Model: flows built from typed flow elements
// with slots; executing a flow creates Run objects over representations.
type Roadmap struct {
	graph *flow.Graph
	runs  int
	reps  int
}

// Name implements System.
func (*Roadmap) Name() string { return "RoadMap" }

// Vocabulary implements System.
func (*Roadmap) Vocabulary() Vocabulary {
	return Vocabulary{
		{"FlowType (Tool)", "Pin (PinType)", "Port (DataType)"},
		{"Flow", "InSlot", "OutSlot", "FlowHierarchy"},
		{"Run"},
		{"Representation", "File Group"},
	}
}

// Instantiate implements System.
func (r *Roadmap) Instantiate(sch *schema.Schema) error {
	g, err := flow.FromSchema(sch)
	if err != nil {
		return err
	}
	r.graph = g
	return nil
}

// Execute implements System.
func (r *Roadmap) Execute() (ExecutionSummary, error) {
	if r.graph == nil {
		return ExecutionSummary{}, fmt.Errorf("roadmap: not instantiated")
	}
	acts, err := topoActivities(r.graph.Schema)
	if err != nil {
		return ExecutionSummary{}, err
	}
	r.runs += len(acts) // one Run per flow node
	r.reps += len(acts) // each Run yields one Representation
	return ExecutionSummary{Level3: r.runs, Level4: r.reps, Activities: acts}, nil
}

// ---------------------------------------------------------------------------
// ELSIS (Delft): OTO-D flow architecture extended with data hierarchy.

// ELSIS adapts the ELSIS CAD framework. Its distinguishing feature over
// Roadmap is hierarchy support, modelled here as hierarchical grouping of
// the flow into subflows per primary output.
type ELSIS struct {
	graph     *flow.Graph
	hierarchy map[string][]string // primary output -> covering activities
	repUsages int
	objects   int
}

// Name implements System.
func (*ELSIS) Name() string { return "ELSIS" }

// Vocabulary implements System.
func (*ELSIS) Vocabulary() Vocabulary {
	return Vocabulary{
		{"Tool", "Pin", "DataType"},
		{"PortInst", "Channel", "FlowHierarchy"},
		{"Representation", "RepUsage"},
		{"Design Object"},
	}
}

// Instantiate implements System.
func (e *ELSIS) Instantiate(sch *schema.Schema) error {
	g, err := flow.FromSchema(sch)
	if err != nil {
		return err
	}
	e.graph = g
	e.hierarchy = make(map[string][]string)
	for _, out := range sch.PrimaryOutputs() {
		tr, err := g.Extract(out)
		if err != nil {
			return err
		}
		e.hierarchy[out] = tr.Activities()
	}
	return nil
}

// Hierarchy exposes the subflow decomposition (ELSIS's hierarchy levels).
func (e *ELSIS) Hierarchy() map[string][]string { return e.hierarchy }

// Execute implements System.
func (e *ELSIS) Execute() (ExecutionSummary, error) {
	if e.graph == nil {
		return ExecutionSummary{}, fmt.Errorf("elsis: not instantiated")
	}
	acts, err := topoActivities(e.graph.Schema)
	if err != nil {
		return ExecutionSummary{}, err
	}
	// Each activity creates a Representation plus a RepUsage per input.
	for _, a := range acts {
		rule := e.graph.Schema.RuleByActivity(a)
		e.repUsages += 1 + len(rule.Inputs)
		e.objects++
	}
	return ExecutionSummary{Level3: e.repUsages, Level4: e.objects, Activities: acts}, nil
}

// ---------------------------------------------------------------------------
// Hercules (CMU): the task-schema workflow manager — the paper's host
// system, adapted over the real engine.

// Hercules adapts the full Hercules-like workflow manager of package
// engine: Execute really runs tools, creating runs, entity instances, and
// Level 4 design objects.
type Hercules struct {
	mgr *engine.Manager
}

// Name implements System.
func (*Hercules) Name() string { return "Hercules" }

// Vocabulary implements System.
func (*Hercules) Vocabulary() Vocabulary {
	return Vocabulary{
		{"Entity (Task Schema)", "Tool", "Data"},
		{"Task", "Node", "Arc"},
		{"Run", "Entity Inst.", "Inst Dep."},
		{"Design Object"},
	}
}

// Instantiate implements System.
func (h *Hercules) Instantiate(sch *schema.Schema) error {
	m, err := engine.New(sch, vclock.Standard(), vclock.Epoch, "adapter")
	if err != nil {
		return err
	}
	if err := m.BindDefaults(); err != nil {
		return err
	}
	for _, leaf := range sch.PrimaryInputs() {
		if _, err := m.Import(leaf, []byte("seed data for "+leaf)); err != nil {
			return err
		}
	}
	h.mgr = m
	return nil
}

// Execute implements System.
func (h *Hercules) Execute() (ExecutionSummary, error) {
	if h.mgr == nil {
		return ExecutionSummary{}, fmt.Errorf("hercules: not instantiated")
	}
	targets := h.mgr.Schema.PrimaryOutputs()
	tree, err := h.mgr.ExtractTree(targets...)
	if err != nil {
		return ExecutionSummary{}, err
	}
	if _, err := h.mgr.ExecuteTask(tree, engine.ExecOptions{}); err != nil {
		return ExecutionSummary{}, err
	}
	st := h.mgr.DB.Stats()[store.ExecutionSpace]
	return ExecutionSummary{
		Level3:     st.Instances,
		Level4:     h.mgr.Data.TotalObjects(),
		Activities: tree.Activities(),
	}, nil
}

// ---------------------------------------------------------------------------
// History Model (UC Berkeley): task specification language recording the
// dynamic design process as transactions.

// History adapts the History Model: design tasks specified in a task
// language; execution appends transactions to the design process record.
type History struct {
	sch          *schema.Schema
	transactions []string
	objects      int
}

// Name implements System.
func (*History) Name() string { return "History Model" }

// Vocabulary implements System.
func (*History) Vocabulary() Vocabulary {
	return Vocabulary{
		{"Task Templates"},
		{"Design Tasks", "Design Activity"},
		{"Design Process", "Transaction"},
		{"Cyclops Data Object"},
	}
}

// Instantiate implements System.
func (h *History) Instantiate(sch *schema.Schema) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	h.sch = sch
	return nil
}

// Transactions exposes the recorded design process.
func (h *History) Transactions() []string {
	return append([]string(nil), h.transactions...)
}

// Execute implements System.
func (h *History) Execute() (ExecutionSummary, error) {
	if h.sch == nil {
		return ExecutionSummary{}, fmt.Errorf("history: not instantiated")
	}
	acts, err := topoActivities(h.sch)
	if err != nil {
		return ExecutionSummary{}, err
	}
	for _, a := range acts {
		rule := h.sch.RuleByActivity(a)
		h.transactions = append(h.transactions,
			fmt.Sprintf("txn %d: %s -> %s", len(h.transactions)+1, a, rule.Output))
		h.objects++
	}
	return ExecutionSummary{Level3: len(h.transactions), Level4: h.objects, Activities: acts}, nil
}

// ---------------------------------------------------------------------------
// Hilda (Siemens): Petri-net flow representation.

// Hilda adapts the Hilda CAD framework over a real Petri net: a place per
// data class, a transition per activity, a ready token per source
// activity; execution is the token game.
type Hilda struct {
	sch *schema.Schema
	net *petri.Net
}

// Name implements System.
func (*Hilda) Name() string { return "Hilda" }

// Vocabulary implements System.
func (*Hilda) Vocabulary() Vocabulary {
	return Vocabulary{
		{"Transitions", "Places", "Arcs"},
		{"Patterns (Reusable)"},
		{"Tokens", "Firings"},
		{"Data Tokens"},
	}
}

// Instantiate implements System.
func (h *Hilda) Instantiate(sch *schema.Schema) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	n := petri.NewNet()
	for _, c := range sch.DataClasses() {
		tokens := 0
		if sch.Producer(c.Name) == nil {
			tokens = 1 // primary inputs are available
		}
		if err := n.AddPlace(c.Name, tokens); err != nil {
			return err
		}
	}
	for _, r := range sch.Rules() {
		inputs := make(map[string]int, len(r.Inputs)+1)
		for _, in := range r.Inputs {
			inputs[in] = 1
		}
		if len(r.Inputs) == 0 {
			// Source activities fire once from a dedicated ready place.
			ready := "ready:" + r.Activity
			if err := n.AddPlace(ready, 1); err != nil {
				return err
			}
			inputs[ready] = 1
		}
		if err := n.AddTransition(r.Activity, inputs, map[string]int{r.Output: 1}); err != nil {
			return err
		}
	}
	h.sch = sch
	h.net = n
	return nil
}

// Net exposes the underlying Petri net.
func (h *Hilda) Net() *petri.Net { return h.net }

// Execute implements System.
func (h *Hilda) Execute() (ExecutionSummary, error) {
	if h.net == nil {
		return ExecutionSummary{}, fmt.Errorf("hilda: not instantiated")
	}
	seq, err := h.net.Run(10000)
	if err != nil {
		return ExecutionSummary{}, err
	}
	return ExecutionSummary{
		Level3:     h.net.Fired(),
		Level4:     h.net.TotalTokens(),
		Activities: seq,
	}, nil
}

// ---------------------------------------------------------------------------
// VOV (UC Berkeley): trace-based; the flow is not planned a priori.

// VOV adapts the VOV system over a real trace: Instantiate only registers
// the designer's input data (VOV holds that "a design process cannot be
// planned a priori"); Execute records the session as it happens, growing
// the trace.
type VOV struct {
	sch *schema.Schema
	tr  *trace.Trace
}

// Name implements System.
func (*VOV) Name() string { return "VOV" }

// Vocabulary implements System.
func (*VOV) Vocabulary() Vocabulary {
	return Vocabulary{
		{}, // no a-priori flow elements
		{"Trace"},
		{"Trace Transaction"},
		{"Places (data)"},
	}
}

// Instantiate implements System.
func (v *VOV) Instantiate(sch *schema.Schema) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	v.sch = sch
	v.tr = trace.New()
	for _, in := range sch.PrimaryInputs() {
		if err := v.tr.AddData(in); err != nil {
			return err
		}
	}
	return nil
}

// Trace exposes the recorded trace.
func (v *VOV) Trace() *trace.Trace { return v.tr }

// Execute implements System.
func (v *VOV) Execute() (ExecutionSummary, error) {
	if v.tr == nil {
		return ExecutionSummary{}, fmt.Errorf("vov: not instantiated")
	}
	acts, err := topoActivities(v.sch)
	if err != nil {
		return ExecutionSummary{}, err
	}
	for _, a := range acts {
		rule := v.sch.RuleByActivity(a)
		if _, err := v.tr.Record(rule.Tool, rule.Inputs, []string{rule.Output}); err != nil {
			return ExecutionSummary{}, err
		}
	}
	return ExecutionSummary{
		Level3:     len(v.tr.Invocations()),
		Level4:     len(v.tr.Data()),
		Activities: acts,
	}, nil
}

// AllSystems returns fresh instances of every surveyed system, in the
// paper's Table I column order.
func AllSystems() []System {
	return []System{&Roadmap{}, &ELSIS{}, &Hercules{}, &History{}, &Hilda{}, &VOV{}}
}
