package fourlevel

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/schema"
)

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

func instantiateAll(t *testing.T) []System {
	t.Helper()
	systems := AllSystems()
	for _, s := range systems {
		if err := s.Instantiate(schema.MustParse(fig4)); err != nil {
			t.Fatalf("%s: Instantiate: %v", s.Name(), err)
		}
	}
	return systems
}

func TestAllSystemsExecute(t *testing.T) {
	for _, s := range instantiateAll(t) {
		sum, err := s.Execute()
		if err != nil {
			t.Errorf("%s: Execute: %v", s.Name(), err)
			continue
		}
		if sum.Level3 <= 0 {
			t.Errorf("%s: no Level 3 artifacts (%+v)", s.Name(), sum)
		}
		if sum.Level4 <= 0 {
			t.Errorf("%s: no Level 4 artifacts (%+v)", s.Name(), sum)
		}
		if len(sum.Activities) < 2 {
			t.Errorf("%s: activities = %v", s.Name(), sum.Activities)
		}
		// Create must precede Simulate in every system's execution order.
		ci, si := -1, -1
		for i, a := range sum.Activities {
			switch a {
			case "Create":
				ci = i
			case "Simulate":
				si = i
			}
		}
		if ci < 0 || si < 0 || ci > si {
			t.Errorf("%s: execution order %v violates precedence", s.Name(), sum.Activities)
		}
	}
}

func TestExecuteBeforeInstantiate(t *testing.T) {
	for _, s := range AllSystems() {
		if _, err := s.Execute(); err == nil {
			t.Errorf("%s: Execute before Instantiate accepted", s.Name())
		}
	}
}

func TestAttachScheduleOnEverySystem(t *testing.T) {
	// The paper's generality claim (§V): the schedule model attaches to
	// any system of this architecture.
	for _, s := range instantiateAll(t) {
		insts, err := AttachSchedule(s, 8*time.Hour)
		if err != nil {
			t.Errorf("%s: AttachSchedule: %v", s.Name(), err)
			continue
		}
		if len(insts) < 2 {
			t.Errorf("%s: schedule instances = %d", s.Name(), len(insts))
			continue
		}
		// Instances are serialized and non-overlapping.
		for i := 1; i < len(insts); i++ {
			if insts[i].Start < insts[i-1].Start+insts[i-1].Work {
				t.Errorf("%s: schedule instances overlap: %+v %+v",
					s.Name(), insts[i-1], insts[i])
			}
		}
		if insts[0].System != s.Name() {
			t.Errorf("instance system = %q", insts[0].System)
		}
	}
}

func TestAttachScheduleValidation(t *testing.T) {
	sys := &Roadmap{}
	sys.Instantiate(schema.MustParse(fig4))
	if _, err := AttachSchedule(sys, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := AttachSchedule(&Roadmap{}, time.Hour); err == nil {
		t.Fatal("uninstantiated system accepted")
	}
}

func TestTableI(t *testing.T) {
	out := TableI(instantiateAll(t))
	for _, want := range []string{
		"TABLE I", "RoadMap", "ELSIS", "Hercules", "History Model", "Hilda", "VOV",
		"FlowType (Tool)", "Task Templates", "Patterns (Reusable)", "Trace Transaction",
		"Run", "Entity Inst.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	// VOV has no Level 1 vocabulary; rendered as a dash.
	if !strings.Contains(out, "—") {
		t.Error("empty cell not rendered as dash")
	}
	if got := TableI(nil); !strings.Contains(got, "no systems") {
		t.Errorf("empty TableI = %q", got)
	}
}

func TestHildaNetShape(t *testing.T) {
	h := &Hilda{}
	if err := h.Instantiate(schema.MustParse(fig4)); err != nil {
		t.Fatal(err)
	}
	// Before execution: stimuli marked (primary input), netlist empty.
	if h.Net().Marking("stimuli") != 1 || h.Net().Marking("netlist") != 0 {
		t.Fatalf("initial marking: %s", h.Net())
	}
	sum, err := h.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if h.Net().Marking("performance") != 1 {
		t.Fatalf("final marking: %s", h.Net())
	}
	if sum.Level3 != 2 { // two firings
		t.Fatalf("firings = %d", sum.Level3)
	}
}

func TestVOVGrowsTrace(t *testing.T) {
	v := &VOV{}
	if err := v.Instantiate(schema.MustParse(fig4)); err != nil {
		t.Fatal(err)
	}
	if len(v.Trace().Invocations()) != 0 {
		t.Fatal("VOV planned a priori")
	}
	if _, err := v.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Trace().Invocations()); got != 2 {
		t.Fatalf("trace invocations = %d", got)
	}
	// Second execution grows the trace further (iteration).
	if _, err := v.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Trace().Invocations()); got != 4 {
		t.Fatalf("trace after second pass = %d", got)
	}
}

func TestELSISHierarchy(t *testing.T) {
	e := &ELSIS{}
	if err := e.Instantiate(schema.MustParse(fig4)); err != nil {
		t.Fatal(err)
	}
	h := e.Hierarchy()
	acts, ok := h["performance"]
	if !ok || len(acts) != 2 {
		t.Fatalf("hierarchy = %v", h)
	}
}

func TestHistoryTransactions(t *testing.T) {
	h := &History{}
	if err := h.Instantiate(schema.MustParse(fig4)); err != nil {
		t.Fatal(err)
	}
	h.Execute()
	txns := h.Transactions()
	if len(txns) != 2 || !strings.Contains(txns[0], "Create") {
		t.Fatalf("transactions = %v", txns)
	}
}

func TestHerculesAdapterRealExecution(t *testing.T) {
	hc := &Hercules{}
	if err := hc.Instantiate(schema.MustParse(fig4)); err != nil {
		t.Fatal(err)
	}
	sum, err := hc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Real execution: runs + entities at Level 3 (at least one run and
	// one entity per activity plus the imported stimulus).
	if sum.Level3 < 5 {
		t.Fatalf("hercules level 3 = %d, want >= 5", sum.Level3)
	}
	if sum.Level4 < 3 {
		t.Fatalf("hercules level 4 = %d, want >= 3", sum.Level4)
	}
}
