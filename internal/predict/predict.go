// Package predict implements duration prediction from historical schedule
// metadata — the paper's motivating advantage ("previous schedule data can
// be used to predict the duration of future projects", §I) and its
// footnoted future work ("instances of tools and data that are bound to
// tasks may serve as inputs to such a prediction model", §IV.A).
//
// A predictor maps an activity's history of (duration, size) samples to a
// duration estimate for a new task of known size. Three predictors are
// provided: the sample mean, an exponentially weighted moving average that
// favours recent projects, and a least-squares regression on task size for
// workloads whose duration scales with a measurable input (gate count,
// net count, …).
package predict

import (
	"fmt"
	"math"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/vclock"
)

// Sample is one historical observation of an activity.
type Sample struct {
	// Duration is the measured working time of the completed task.
	Duration time.Duration
	// Size quantifies the task input (e.g. cell count). Predictors that
	// ignore size accept zero.
	Size float64
}

// Predictor estimates the duration of a new task from history.
type Predictor interface {
	// Predict returns the estimated working time for a task of the given
	// size. It errors if the history is insufficient.
	Predict(history []Sample, size float64) (time.Duration, error)
}

// Mean predicts the arithmetic mean of historical durations.
type Mean struct{}

// Predict implements Predictor.
func (Mean) Predict(history []Sample, _ float64) (time.Duration, error) {
	if len(history) == 0 {
		return 0, fmt.Errorf("predict: empty history")
	}
	var total time.Duration
	for _, s := range history {
		total += s.Duration
	}
	return total / time.Duration(len(history)), nil
}

// EWMA predicts an exponentially weighted moving average, weighting the
// most recent samples highest. Alpha in (0, 1] is the smoothing factor.
type EWMA struct{ Alpha float64 }

// Predict implements Predictor.
func (e EWMA) Predict(history []Sample, _ float64) (time.Duration, error) {
	if len(history) == 0 {
		return 0, fmt.Errorf("predict: empty history")
	}
	if e.Alpha <= 0 || e.Alpha > 1 {
		return 0, fmt.Errorf("predict: alpha %v out of (0,1]", e.Alpha)
	}
	acc := float64(history[0].Duration)
	for _, s := range history[1:] {
		acc = e.Alpha*float64(s.Duration) + (1-e.Alpha)*acc
	}
	return time.Duration(acc), nil
}

// Regression predicts duration = a + b·size by ordinary least squares.
// It needs at least two samples with distinct sizes; with degenerate
// sizes it falls back to the mean.
type Regression struct{}

// Predict implements Predictor.
func (Regression) Predict(history []Sample, size float64) (time.Duration, error) {
	if len(history) == 0 {
		return 0, fmt.Errorf("predict: empty history")
	}
	n := float64(len(history))
	var sx, sy, sxx, sxy float64
	for _, s := range history {
		x, y := s.Size, s.Duration.Hours()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if len(history) < 2 || math.Abs(den) < 1e-12 {
		return Mean{}.Predict(history, size)
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	hours := a + b*size
	if hours <= 0 {
		// Extrapolation collapsed; a prediction of non-positive duration
		// is never useful, so fall back to the mean.
		return Mean{}.Predict(history, size)
	}
	return time.Duration(hours * float64(time.Hour)), nil
}

// HistoryOf extracts the completed-duration samples of an activity from a
// schedule space, oldest first. sizes[i] is the task size of the
// activity's i-th schedule instance (version order, counting instances
// that never completed), so a gap in the history — a planned-but-undone
// version — never shifts later sizes onto the wrong sample. sizes may be
// nil (or short) for size-free predictors.
func HistoryOf(sp *sched.Space, cal *vclock.Calendar, activity string, sizes []float64) ([]Sample, error) {
	_, insts, err := sp.History(activity)
	if err != nil {
		return nil, err
	}
	var out []Sample
	for i, in := range insts {
		if !in.Done || in.ActualStart.IsZero() {
			continue
		}
		s := Sample{Duration: cal.WorkBetween(in.ActualStart, in.ActualFinish)}
		if sizes != nil && i < len(sizes) {
			s.Size = sizes[i]
		}
		out = append(out, s)
	}
	return out, nil
}

// Accuracy summarizes prediction error over a test set.
type Accuracy struct {
	// MAE is the mean absolute error.
	MAE time.Duration
	// MAPE is the mean absolute percentage error in [0, ∞), averaged
	// over the NPct samples with a non-zero actual duration (a percentage
	// error against a zero actual is undefined). Zero when NPct is zero.
	MAPE float64
	// N is the number of scored predictions.
	N int
	// NPct is the number of predictions that contributed to MAPE.
	NPct int
}

// Evaluate walks a sample sequence chronologically, predicting each
// sample from the ones before it, and scores the predictions against the
// actual durations. The first Warmup samples are used as seed history
// only (minimum 1).
func Evaluate(p Predictor, samples []Sample, warmup int) (Accuracy, error) {
	if warmup < 1 {
		warmup = 1
	}
	if len(samples) <= warmup {
		return Accuracy{}, fmt.Errorf("predict: need more than %d samples, have %d", warmup, len(samples))
	}
	var acc Accuracy
	var absErr time.Duration
	var pctErr float64
	for i := warmup; i < len(samples); i++ {
		got, err := p.Predict(samples[:i], samples[i].Size)
		if err != nil {
			return Accuracy{}, err
		}
		diff := got - samples[i].Duration
		if diff < 0 {
			diff = -diff
		}
		absErr += diff
		if samples[i].Duration > 0 {
			pctErr += float64(diff) / float64(samples[i].Duration)
			acc.NPct++
		}
		acc.N++
	}
	acc.MAE = absErr / time.Duration(acc.N)
	if acc.NPct > 0 {
		acc.MAPE = pctErr / float64(acc.NPct)
	}
	return acc, nil
}
