package predict

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func h(n float64) time.Duration { return time.Duration(n * float64(time.Hour)) }

func samples(durs ...float64) []Sample {
	out := make([]Sample, len(durs))
	for i, d := range durs {
		out[i] = Sample{Duration: h(d)}
	}
	return out
}

func TestMean(t *testing.T) {
	d, err := Mean{}.Predict(samples(8, 16, 24), 0)
	if err != nil || d != h(16) {
		t.Fatalf("Mean = %v, %v", d, err)
	}
	if _, err := (Mean{}).Predict(nil, 0); err == nil {
		t.Fatal("empty history accepted")
	}
}

func TestEWMA(t *testing.T) {
	// Alpha=1 returns the last sample.
	d, err := EWMA{Alpha: 1}.Predict(samples(8, 16, 40), 0)
	if err != nil || d != h(40) {
		t.Fatalf("EWMA(1) = %v, %v", d, err)
	}
	// Alpha=0.5 over [8, 16]: 0.5*16 + 0.5*8 = 12.
	d, err = EWMA{Alpha: 0.5}.Predict(samples(8, 16), 0)
	if err != nil || d != h(12) {
		t.Fatalf("EWMA(0.5) = %v, %v", d, err)
	}
	if _, err := (EWMA{Alpha: 0}).Predict(samples(8), 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := (EWMA{Alpha: 2}).Predict(samples(8), 0); err == nil {
		t.Fatal("alpha 2 accepted")
	}
	if _, err := (EWMA{Alpha: 0.5}).Predict(nil, 0); err == nil {
		t.Fatal("empty history accepted")
	}
}

func TestEWMAWeightsRecent(t *testing.T) {
	// History trending upward: EWMA should exceed the mean.
	hist := samples(8, 10, 12, 14, 30)
	ew, _ := EWMA{Alpha: 0.6}.Predict(hist, 0)
	mn, _ := Mean{}.Predict(hist, 0)
	if ew <= mn {
		t.Fatalf("EWMA %v not above mean %v on rising trend", ew, mn)
	}
}

func TestRegressionPerfectLine(t *testing.T) {
	// duration = 2 + 3*size hours.
	hist := []Sample{
		{Duration: h(5), Size: 1},
		{Duration: h(8), Size: 2},
		{Duration: h(11), Size: 3},
	}
	d, err := Regression{}.Predict(hist, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Hours()-17) > 1e-6 {
		t.Fatalf("Regression(5) = %v, want 17h", d)
	}
}

func TestRegressionDegenerateFallsBack(t *testing.T) {
	// All sizes equal: slope undefined, falls back to mean.
	hist := []Sample{
		{Duration: h(10), Size: 2},
		{Duration: h(20), Size: 2},
	}
	d, err := Regression{}.Predict(hist, 7)
	if err != nil || d != h(15) {
		t.Fatalf("degenerate regression = %v, %v, want mean 15h", d, err)
	}
	// Single sample: mean as well.
	d, err = Regression{}.Predict(hist[:1], 7)
	if err != nil || d != h(10) {
		t.Fatalf("single-sample regression = %v, %v", d, err)
	}
	if _, err := (Regression{}).Predict(nil, 0); err == nil {
		t.Fatal("empty history accepted")
	}
}

func TestRegressionNonPositiveFallsBack(t *testing.T) {
	// Steep negative slope: extrapolating far right goes negative.
	hist := []Sample{
		{Duration: h(20), Size: 1},
		{Duration: h(2), Size: 2},
	}
	d, err := Regression{}.Predict(hist, 10)
	if err != nil || d != h(11) {
		t.Fatalf("collapsed regression = %v, %v, want mean 11h", d, err)
	}
}

func TestEvaluate(t *testing.T) {
	// Constant history: mean predictor is exact after warmup.
	acc, err := Evaluate(Mean{}, samples(10, 10, 10, 10, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N != 3 || acc.MAE != 0 || acc.MAPE != 0 {
		t.Fatalf("accuracy = %+v", acc)
	}
	// Insufficient data.
	if _, err := Evaluate(Mean{}, samples(10), 1); err == nil {
		t.Fatal("insufficient samples accepted")
	}
	// Warmup below 1 clamps.
	if _, err := Evaluate(Mean{}, samples(10, 12), 0); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateImprovesWithHistory(t *testing.T) {
	// Noisy-but-stationary series: with more history, mean MAE shrinks or
	// stays comparable versus one-sample warmup on the tail.
	series := samples(8, 12, 10, 9, 11, 10, 10, 9, 11, 10)
	short, err := Evaluate(Mean{}, series[:4], 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Evaluate(Mean{}, series, 6)
	if err != nil {
		t.Fatal(err)
	}
	if long.MAE > short.MAE {
		t.Fatalf("more history worsened MAE: %v > %v", long.MAE, short.MAE)
	}
}

// Property: mean prediction always lies within [min, max] of history.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		hist := make([]Sample, len(raw))
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		for i, r := range raw {
			d := time.Duration(int(r)+1) * time.Hour
			hist[i] = Sample{Duration: d}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		got, err := Mean{}.Predict(hist, 0)
		return err == nil && got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA prediction also lies within history bounds.
func TestEWMABoundsProperty(t *testing.T) {
	f := func(raw []uint8, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := (float64(alphaRaw%9) + 1) / 10
		hist := make([]Sample, len(raw))
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		for i, r := range raw {
			d := time.Duration(int(r)+1) * time.Hour
			hist[i] = Sample{Duration: d}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		got, err := EWMA{Alpha: alpha}.Predict(hist, 0)
		return err == nil && got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the size-alignment bug: sizes are indexed by instance
// position (schedule version order), so a planned-but-never-completed
// instance in the middle of the history must not shift later sizes onto
// the wrong sample.
func TestHistoryOfSizesSurviveGaps(t *testing.T) {
	sch := schemaMustParse(t)
	db := storeNew()
	sp, err := schedNewSpace(db, sch)
	if err != nil {
		t.Fatal(err)
	}
	tree := extractPerformance(t, sch)
	est := fixedEst(16)
	for i := 0; i < 3; i++ {
		res, err := sp.Plan(tree, epoch(), est, planOptions())
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// The middle pass is planned but never executed — the gap.
			continue
		}
		start := epoch()
		finish := calStandard().AddWork(start, time.Duration(8*(i+1))*time.Hour)
		sp.MarkStarted(&res.Plan, "Create", start)
		ent := putEntity(t, sp, db)
		if err := sp.Complete(&res.Plan, "Create", ent, finish); err != nil {
			t.Fatal(err)
		}
	}
	// One size per schedule instance, completed or not.
	samples, err := HistoryOf(sp, calStandard(), "Create", []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2 (gap skipped)", len(samples))
	}
	if samples[0].Size != 10 {
		t.Errorf("sample 0 size = %v, want 10", samples[0].Size)
	}
	// Pre-fix, the sample from instance 3 was attached sizes[1]=20 — the
	// size of the instance that never completed.
	if samples[1].Size != 30 {
		t.Errorf("sample 1 size = %v, want 30 (instance position, not output position)", samples[1].Size)
	}
}

// Regression for the MAPE deflation bug: zero-duration samples are
// excluded from the percentage sum, so they must be excluded from the
// divisor too.
func TestEvaluateMAPEExcludesZeroDurationSamples(t *testing.T) {
	hist := []Sample{
		{Duration: h(4)}, // warmup seed
		{Duration: 0},    // zero-duration test sample: scored for MAE only
		{Duration: h(4)}, // predicted mean(4h, 0) = 2h -> 50% error
	}
	acc, err := Evaluate(Mean{}, hist, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N != 2 || acc.NPct != 1 {
		t.Fatalf("N = %d, NPct = %d, want 2 and 1", acc.N, acc.NPct)
	}
	// MAE still averages both test samples: (|4h-0| + |2h-4h|) / 2 = 3h.
	if acc.MAE != h(3) {
		t.Errorf("MAE = %v, want 3h", acc.MAE)
	}
	// MAPE averages only the scorable sample: 0.5. Pre-fix it divided by
	// N=2 and silently reported 0.25.
	if math.Abs(acc.MAPE-0.5) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.5", acc.MAPE)
	}
}

func TestEvaluateMAPEDefinedWithNoScorableSamples(t *testing.T) {
	acc, err := Evaluate(Mean{}, []Sample{{Duration: h(4)}, {Duration: 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc.NPct != 0 {
		t.Fatalf("NPct = %d, want 0", acc.NPct)
	}
	if acc.MAPE != 0 || math.IsNaN(acc.MAPE) {
		t.Errorf("MAPE = %v, want 0 when nothing is scorable", acc.MAPE)
	}
}

func TestHistoryOf(t *testing.T) {
	// Build a schedule space with two completed Create instances.
	sch := schemaMustParse(t)
	db := storeNew()
	sp, err := schedNewSpace(db, sch)
	if err != nil {
		t.Fatal(err)
	}
	tree := extractPerformance(t, sch)
	est := fixedEst(16)
	for i := 0; i < 2; i++ {
		res, err := sp.Plan(tree, epoch(), est, planOptions())
		if err != nil {
			t.Fatal(err)
		}
		start := epoch()
		// 8h of work on the first pass, 16h on the second.
		finish := calStandard().AddWork(start, time.Duration(8*(i+1))*time.Hour)
		sp.MarkStarted(&res.Plan, "Create", start)
		ent := putEntity(t, sp, db)
		if err := sp.Complete(&res.Plan, "Create", ent, finish); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := HistoryOf(sp, calStandard(), "Create", []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Size != 1 || samples[1].Size != 2 {
		t.Fatalf("sizes = %+v", samples)
	}
	if samples[0].Duration <= 0 || samples[1].Duration <= samples[0].Duration {
		t.Fatalf("durations = %+v", samples)
	}
	// Unknown activity errors.
	if _, err := HistoryOf(sp, calStandard(), "Ghost", nil); err == nil {
		t.Fatal("unknown activity accepted")
	}
	// nil sizes allowed.
	s2, err := HistoryOf(sp, calStandard(), "Create", nil)
	if err != nil || len(s2) != 2 || s2[0].Size != 0 {
		t.Fatalf("nil sizes = %+v, %v", s2, err)
	}
}
