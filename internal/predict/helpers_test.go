package predict

import (
	"testing"
	"time"

	"flowsched/internal/flow"
	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

// Helpers for HistoryOf tests, which need a populated schedule space.

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

func schemaMustParse(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustParse(fig4)
}

func storeNew() *store.DB { return store.NewDB() }

func schedNewSpace(db *store.DB, sch *schema.Schema) (*sched.Space, error) {
	// The execution space must exist too, so entity containers are
	// available for completion links.
	if _, err := meta.NewSpace(db, sch); err != nil {
		return nil, err
	}
	return sched.NewSpace(db, sch, vclock.Standard())
}

func extractPerformance(t *testing.T, sch *schema.Schema) *flow.Tree {
	t.Helper()
	g, err := flow.FromSchema(sch)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.Extract("performance")
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func fixedEst(hours int) sched.Fixed {
	return sched.Fixed{Default: time.Duration(hours) * time.Hour}
}

func planOptions() sched.PlanOptions { return sched.PlanOptions{} }

func epoch() time.Time { return vclock.Epoch }

func calStandard() *vclock.Calendar { return vclock.Standard() }

// putEntity files a raw netlist entity instance for Complete to link to.
func putEntity(t *testing.T, sp *sched.Space, db *store.DB) string {
	t.Helper()
	e, err := db.Put("netlist", epoch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return e.ID
}
