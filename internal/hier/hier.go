// Package hier implements hierarchical task grouping — the process-side
// hierarchy of flow managers like Hercules (whose user interface presents
// a task *tree*) and ELSIS (whose model adds hierarchy support, paper
// §II [12]). A Grouping organizes a flow's activities into named
// composite tasks ("Frontend", "Signoff", …); plan and status roll up to
// the composite level, so a project manager can view "a portion of the
// overall schedule" (§IV.C) at whatever granularity suits the meeting.
package hier

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"flowsched/internal/sched"
)

// Grouping maps composite task names to their member activities.
type Grouping struct {
	names  []string            // composite order
	member map[string][]string // composite -> activities
	owner  map[string]string   // activity -> composite
}

// NewGrouping validates and builds a grouping. Composites must be named,
// non-empty, and disjoint.
func NewGrouping(groups map[string][]string) (*Grouping, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("hier: empty grouping")
	}
	g := &Grouping{
		member: make(map[string][]string, len(groups)),
		owner:  make(map[string]string),
	}
	for name := range groups {
		g.names = append(g.names, name)
	}
	sort.Strings(g.names)
	for _, name := range g.names {
		acts := groups[name]
		if name == "" {
			return nil, fmt.Errorf("hier: composite with empty name")
		}
		if len(acts) == 0 {
			return nil, fmt.Errorf("hier: composite %q has no activities", name)
		}
		for _, a := range acts {
			if a == "" {
				return nil, fmt.Errorf("hier: composite %q contains empty activity", name)
			}
			if prev, dup := g.owner[a]; dup {
				return nil, fmt.Errorf("hier: activity %q in both %q and %q", a, prev, name)
			}
			g.owner[a] = name
		}
		g.member[name] = append([]string(nil), acts...)
	}
	return g, nil
}

// Composites returns the composite names, sorted.
func (g *Grouping) Composites() []string { return append([]string(nil), g.names...) }

// Members returns a composite's activities.
func (g *Grouping) Members(composite string) []string {
	return append([]string(nil), g.member[composite]...)
}

// Owner returns the composite containing an activity ("" if ungrouped).
func (g *Grouping) Owner(activity string) string { return g.owner[activity] }

// CheckCovers verifies that every activity of the plan belongs to some
// composite and that no composite references activities outside the plan.
func (g *Grouping) CheckCovers(p *sched.Plan) error {
	inPlan := make(map[string]bool, len(p.Activities))
	for _, a := range p.Activities {
		inPlan[a] = true
		if g.owner[a] == "" {
			return fmt.Errorf("hier: activity %q not covered by any composite", a)
		}
	}
	for _, name := range g.names {
		for _, a := range g.member[name] {
			if !inPlan[a] {
				return fmt.Errorf("hier: composite %q references %q outside the plan", name, a)
			}
		}
	}
	return nil
}

// CompositeStatus is the rolled-up status of one composite task.
type CompositeStatus struct {
	Name          string
	Activities    int
	DoneCount     int
	State         sched.State
	PlannedStart  time.Time
	PlannedFinish time.Time
	ActualStart   time.Time
	ActualFinish  time.Time // zero until every member is done
	// Slip is the maximum member slip.
	Slip time.Duration
}

// Rollup computes composite statuses from a plan's per-activity status
// rows (sched.Space.Status output). Composites appear in sorted order.
func (g *Grouping) Rollup(rows []sched.ActivityStatus) ([]CompositeStatus, error) {
	byComposite := make(map[string][]sched.ActivityStatus)
	for _, r := range rows {
		owner := g.owner[r.Activity]
		if owner == "" {
			return nil, fmt.Errorf("hier: activity %q not covered by any composite", r.Activity)
		}
		byComposite[owner] = append(byComposite[owner], r)
	}
	var out []CompositeStatus
	for _, name := range g.names {
		members := byComposite[name]
		if len(members) == 0 {
			continue
		}
		cs := CompositeStatus{Name: name, Activities: len(members)}
		allDone := true
		anyStarted := false
		for i, m := range members {
			if i == 0 || m.PlannedStart.Before(cs.PlannedStart) {
				cs.PlannedStart = m.PlannedStart
			}
			if m.PlannedFinish.After(cs.PlannedFinish) {
				cs.PlannedFinish = m.PlannedFinish
			}
			if !m.ActualStart.IsZero() {
				anyStarted = true
				if cs.ActualStart.IsZero() || m.ActualStart.Before(cs.ActualStart) {
					cs.ActualStart = m.ActualStart
				}
			}
			if m.State == sched.Done {
				cs.DoneCount++
				if m.ActualFinish.After(cs.ActualFinish) {
					cs.ActualFinish = m.ActualFinish
				}
			} else {
				allDone = false
			}
			if m.Slip > cs.Slip {
				cs.Slip = m.Slip
			}
		}
		switch {
		case allDone:
			cs.State = sched.Done
		case anyStarted:
			cs.State = sched.InProgress
		default:
			cs.State = sched.Pending
		}
		if !allDone {
			cs.ActualFinish = time.Time{}
		}
		out = append(out, cs)
	}
	return out, nil
}

// Outline renders the hierarchy as an indented outline with per-composite
// progress — the manager's view of "a portion of the overall schedule".
func (g *Grouping) Outline(rows []sched.ActivityStatus) (string, error) {
	comps, err := g.Rollup(rows)
	if err != nil {
		return "", err
	}
	byAct := make(map[string]sched.ActivityStatus, len(rows))
	for _, r := range rows {
		byAct[r.Activity] = r
	}
	var b strings.Builder
	for _, c := range comps {
		fmt.Fprintf(&b, "%-14s %d/%d done  [%s .. %s] %s",
			c.Name, c.DoneCount, c.Activities,
			c.PlannedStart.Format("01-02"), c.PlannedFinish.Format("01-02"), c.State)
		if c.Slip > 0 {
			fmt.Fprintf(&b, "  SLIP %s", c.Slip.Round(time.Minute))
		}
		b.WriteString("\n")
		for _, a := range g.member[c.Name] {
			r, ok := byAct[a]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %s\n", a, r.State)
		}
	}
	return b.String(), nil
}
