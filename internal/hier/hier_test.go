package hier

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/sched"
	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

func d(day, hour int) time.Time {
	return time.Date(1995, time.June, day, hour, 0, 0, 0, time.UTC)
}

func asicGroups(t *testing.T) *Grouping {
	t.Helper()
	g, err := NewGrouping(map[string][]string{
		"Frontend": {"Synthesize", "GateSim"},
		"Backend":  {"Floorplan", "Route", "Extract"},
		"Signoff":  {"DRC", "LVS", "STA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupingValidation(t *testing.T) {
	cases := []struct {
		name   string
		groups map[string][]string
		want   string
	}{
		{"empty", nil, "empty grouping"},
		{"empty composite name", map[string][]string{"": {"A"}}, "empty name"},
		{"no members", map[string][]string{"X": {}}, "no activities"},
		{"empty activity", map[string][]string{"X": {""}}, "empty activity"},
		{"overlap", map[string][]string{"X": {"A"}, "Y": {"A"}}, "in both"},
	}
	for _, tc := range cases {
		if _, err := NewGrouping(tc.groups); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	g := asicGroups(t)
	comps := g.Composites()
	if len(comps) != 3 || comps[0] != "Backend" { // sorted
		t.Fatalf("Composites = %v", comps)
	}
	if got := g.Members("Signoff"); len(got) != 3 {
		t.Fatalf("Members = %v", got)
	}
	if g.Owner("Route") != "Backend" || g.Owner("Ghost") != "" {
		t.Fatalf("Owner wrong: %q/%q", g.Owner("Route"), g.Owner("Ghost"))
	}
}

func TestCheckCovers(t *testing.T) {
	g := asicGroups(t)
	plan := &sched.Plan{Activities: []string{
		"Synthesize", "Floorplan", "Route", "Extract", "DRC", "LVS", "STA", "GateSim",
	}}
	if err := g.CheckCovers(plan); err != nil {
		t.Fatal(err)
	}
	// Uncovered activity.
	plan2 := &sched.Plan{Activities: append(plan.Activities, "Extra")}
	if err := g.CheckCovers(plan2); err == nil {
		t.Fatal("uncovered activity accepted")
	}
	// Composite referencing an activity outside the plan.
	plan3 := &sched.Plan{Activities: plan.Activities[:7]} // drop GateSim
	if err := g.CheckCovers(plan3); err == nil {
		t.Fatal("out-of-plan member accepted")
	}
}

func sampleRows() []sched.ActivityStatus {
	return []sched.ActivityStatus{
		{Activity: "Synthesize", State: sched.Done,
			PlannedStart: d(5, 9), PlannedFinish: d(6, 17),
			ActualStart: d(5, 9), ActualFinish: d(7, 17), Slip: 8 * time.Hour},
		{Activity: "GateSim", State: sched.InProgress,
			PlannedStart: d(7, 9), PlannedFinish: d(8, 17),
			ActualStart: d(8, 9)},
		{Activity: "Floorplan", State: sched.Pending,
			PlannedStart: d(8, 9), PlannedFinish: d(8, 17)},
		{Activity: "Route", State: sched.Pending,
			PlannedStart: d(9, 9), PlannedFinish: d(12, 17)},
		{Activity: "Extract", State: sched.Pending,
			PlannedStart: d(13, 9), PlannedFinish: d(13, 17)},
		{Activity: "DRC", State: sched.Pending,
			PlannedStart: d(14, 9), PlannedFinish: d(14, 17)},
		{Activity: "LVS", State: sched.Pending,
			PlannedStart: d(14, 9), PlannedFinish: d(14, 17)},
		{Activity: "STA", State: sched.Pending,
			PlannedStart: d(14, 9), PlannedFinish: d(15, 17)},
	}
}

func TestRollup(t *testing.T) {
	g := asicGroups(t)
	comps, err := g.Rollup(sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("composites = %d", len(comps))
	}
	byName := map[string]CompositeStatus{}
	for _, c := range comps {
		byName[c.Name] = c
	}
	fe := byName["Frontend"]
	if fe.State != sched.InProgress || fe.DoneCount != 1 || fe.Activities != 2 {
		t.Fatalf("Frontend = %+v", fe)
	}
	// Frontend planned window spans both members.
	if !fe.PlannedStart.Equal(d(5, 9)) || !fe.PlannedFinish.Equal(d(8, 17)) {
		t.Fatalf("Frontend window = %v .. %v", fe.PlannedStart, fe.PlannedFinish)
	}
	// Not all done: no actual finish; slip = max member slip.
	if !fe.ActualFinish.IsZero() || fe.Slip != 8*time.Hour {
		t.Fatalf("Frontend rollup = %+v", fe)
	}
	be := byName["Backend"]
	if be.State != sched.Pending || !be.ActualStart.IsZero() {
		t.Fatalf("Backend = %+v", be)
	}
}

func TestRollupAllDone(t *testing.T) {
	g, _ := NewGrouping(map[string][]string{"X": {"A", "B"}})
	rows := []sched.ActivityStatus{
		{Activity: "A", State: sched.Done, ActualStart: d(5, 9), ActualFinish: d(6, 17),
			PlannedStart: d(5, 9), PlannedFinish: d(6, 17)},
		{Activity: "B", State: sched.Done, ActualStart: d(7, 9), ActualFinish: d(8, 17),
			PlannedStart: d(7, 9), PlannedFinish: d(8, 17)},
	}
	comps, err := g.Rollup(rows)
	if err != nil {
		t.Fatal(err)
	}
	c := comps[0]
	if c.State != sched.Done || !c.ActualFinish.Equal(d(8, 17)) || !c.ActualStart.Equal(d(5, 9)) {
		t.Fatalf("rollup = %+v", c)
	}
}

func TestRollupUncovered(t *testing.T) {
	g, _ := NewGrouping(map[string][]string{"X": {"A"}})
	rows := []sched.ActivityStatus{{Activity: "Mystery"}}
	if _, err := g.Rollup(rows); err == nil {
		t.Fatal("uncovered activity accepted")
	}
}

func TestOutline(t *testing.T) {
	g := asicGroups(t)
	out, err := g.Outline(sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Frontend", "1/2 done", "SLIP 8h", "Backend", "0/3 done",
		"Signoff", "Synthesize", "done", "in-progress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("outline missing %q:\n%s", want, out)
		}
	}
	// Composites come before their members and in sorted order.
	if strings.Index(out, "Backend") > strings.Index(out, "Frontend") {
		t.Errorf("composites unsorted:\n%s", out)
	}
}
