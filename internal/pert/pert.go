// Package pert implements the network schedule models that "predominate in
// project planning" (paper §III): CPM forward/backward passes with slack
// and critical-path extraction, plus PERT three-point variance analysis
// and completion-probability estimates.
//
// The package operates on an abstract activity network in working-time
// units, so it serves both the schedule space (analysing a plan) and the
// stand-alone baseline project-management system (package baseline).
package pert

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Activity is one node of an activity network.
type Activity struct {
	Name string
	// Duration is the expected working time.
	Duration time.Duration
	// Optimistic/Pessimistic bound Duration for PERT variance; both zero
	// means a point estimate (zero variance).
	Optimistic, Pessimistic time.Duration
	// Preds are the names of activities that must finish first.
	Preds []string
}

// Network is a set of activities with precedence constraints.
type Network struct {
	acts  []Activity
	index map[string]int
}

// NewNetwork validates and builds a network: names unique and non-empty,
// durations positive, predecessors declared, no cycles.
func NewNetwork(acts []Activity) (*Network, error) {
	n := &Network{acts: append([]Activity(nil), acts...), index: make(map[string]int, len(acts))}
	if len(acts) == 0 {
		return nil, fmt.Errorf("pert: empty network")
	}
	for i, a := range n.acts {
		if a.Name == "" {
			return nil, fmt.Errorf("pert: activity %d has empty name", i)
		}
		if _, dup := n.index[a.Name]; dup {
			return nil, fmt.Errorf("pert: duplicate activity %q", a.Name)
		}
		if a.Duration <= 0 {
			return nil, fmt.Errorf("pert: activity %q duration %v must be positive", a.Name, a.Duration)
		}
		if a.Optimistic < 0 || (a.Pessimistic != 0 && a.Pessimistic < a.Optimistic) {
			return nil, fmt.Errorf("pert: activity %q has inverted bounds", a.Name)
		}
		n.index[a.Name] = i
	}
	for _, a := range n.acts {
		for _, p := range a.Preds {
			if _, ok := n.index[p]; !ok {
				return nil, fmt.Errorf("pert: activity %q references undeclared predecessor %q", a.Name, p)
			}
			if p == a.Name {
				return nil, fmt.Errorf("pert: activity %q is its own predecessor", a.Name)
			}
		}
	}
	if _, err := n.topo(); err != nil {
		return nil, err
	}
	return n, nil
}

// topo returns activity indices in topological order.
func (n *Network) topo() ([]int, error) {
	indeg := make([]int, len(n.acts))
	succ := make([][]int, len(n.acts))
	for i, a := range n.acts {
		for _, p := range a.Preds {
			pi := n.index[p]
			succ[pi] = append(succ[pi], i)
			indeg[i]++
		}
	}
	var queue []int
	for i := range n.acts {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(n.acts) {
		var stuck []string
		for i, a := range n.acts {
			if indeg[i] > 0 {
				stuck = append(stuck, a.Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("pert: precedence cycle among %v", stuck)
	}
	return order, nil
}

// Timing is the CPM analysis of one activity.
type Timing struct {
	Name                    string
	EarlyStart, EarlyFinish time.Duration
	LateStart, LateFinish   time.Duration
	Slack                   time.Duration
	Critical                bool
}

// Result is a full CPM/PERT analysis.
type Result struct {
	// Timings per activity, in input order.
	Timings []Timing
	// Duration is the project span (longest path).
	Duration time.Duration
	// CriticalPath is one longest chain of critical activities, in order.
	CriticalPath []string
	// Variance is the summed PERT variance along CriticalPath, in hours².
	Variance float64
}

// Analyze runs the CPM forward and backward passes.
func (n *Network) Analyze() (*Result, error) {
	order, err := n.topo()
	if err != nil {
		return nil, err
	}
	es := make([]time.Duration, len(n.acts))
	ef := make([]time.Duration, len(n.acts))
	for _, i := range order {
		for _, p := range n.acts[i].Preds {
			if pf := ef[n.index[p]]; pf > es[i] {
				es[i] = pf
			}
		}
		ef[i] = es[i] + n.acts[i].Duration
	}
	var project time.Duration
	for i := range n.acts {
		if ef[i] > project {
			project = ef[i]
		}
	}
	lf := make([]time.Duration, len(n.acts))
	ls := make([]time.Duration, len(n.acts))
	for i := range lf {
		lf[i] = project
	}
	// Backward pass: walk reverse topological order; a predecessor's late
	// finish is the min late start of its successors.
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		ls[i] = lf[i] - n.acts[i].Duration
		for _, p := range n.acts[i].Preds {
			pi := n.index[p]
			if ls[i] < lf[pi] {
				lf[pi] = ls[i]
			}
		}
	}
	res := &Result{Duration: project}
	for i, a := range n.acts {
		slack := ls[i] - es[i]
		res.Timings = append(res.Timings, Timing{
			Name: a.Name, EarlyStart: es[i], EarlyFinish: ef[i],
			LateStart: ls[i], LateFinish: lf[i],
			Slack: slack, Critical: slack == 0,
		})
	}
	res.CriticalPath = n.criticalChain(order, es, ef)
	for _, name := range res.CriticalPath {
		res.Variance += n.acts[n.index[name]].varianceHours2()
	}
	return res, nil
}

// criticalChain extracts one longest path by walking critical activities
// whose early finish feeds the next early start.
func (n *Network) criticalChain(order []int, es, ef []time.Duration) []string {
	// Find terminal activity with maximum early finish.
	best := order[0]
	for _, i := range order {
		if ef[i] > ef[best] {
			best = i
		}
	}
	var rev []string
	for i := best; ; {
		rev = append(rev, n.acts[i].Name)
		// Predecessor on the critical chain: ef == es of current.
		next := -1
		for _, p := range n.acts[i].Preds {
			pi := n.index[p]
			if ef[pi] == es[i] {
				next = pi
				break
			}
		}
		if next < 0 {
			break
		}
		i = next
	}
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// varianceHours2 is the PERT activity variance ((P-O)/6)² in hours².
func (a Activity) varianceHours2() float64 {
	if a.Optimistic == 0 && a.Pessimistic == 0 {
		return 0
	}
	d := (a.Pessimistic - a.Optimistic).Hours() / 6
	return d * d
}

// CompletionProbability estimates P(project finishes within target
// working time) under the PERT normal approximation along the critical
// path. With zero variance it is a step function at the expected
// duration.
func (r *Result) CompletionProbability(target time.Duration) float64 {
	mean := r.Duration.Hours()
	sigma := math.Sqrt(r.Variance)
	if sigma == 0 {
		if target.Hours() >= mean {
			return 1
		}
		return 0
	}
	z := (target.Hours() - mean) / sigma
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Timing returns the timing row for an activity name, or nil.
func (r *Result) Timing(name string) *Timing {
	for i := range r.Timings {
		if r.Timings[i].Name == name {
			return &r.Timings[i]
		}
	}
	return nil
}
