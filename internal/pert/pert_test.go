package pert

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func h(n int) time.Duration { return time.Duration(n) * time.Hour }

// diamond: A(8) -> B(8), C(16) -> D(8); critical path A,C,D = 32h.
func diamond() []Activity {
	return []Activity{
		{Name: "A", Duration: h(8)},
		{Name: "B", Duration: h(8), Preds: []string{"A"}},
		{Name: "C", Duration: h(16), Preds: []string{"A"}},
		{Name: "D", Duration: h(8), Preds: []string{"B", "C"}},
	}
}

func analyze(t *testing.T, acts []Activity) *Result {
	t.Helper()
	n, err := NewNetwork(acts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewNetworkValidation(t *testing.T) {
	cases := []struct {
		name string
		acts []Activity
		want string
	}{
		{"empty", nil, "empty network"},
		{"empty name", []Activity{{Name: "", Duration: h(1)}}, "empty name"},
		{"duplicate", []Activity{{Name: "A", Duration: h(1)}, {Name: "A", Duration: h(1)}}, "duplicate"},
		{"zero duration", []Activity{{Name: "A"}}, "positive"},
		{"undeclared pred", []Activity{{Name: "A", Duration: h(1), Preds: []string{"X"}}}, "undeclared"},
		{"self pred", []Activity{{Name: "A", Duration: h(1), Preds: []string{"A"}}}, "own predecessor"},
		{"inverted bounds", []Activity{{Name: "A", Duration: h(4), Optimistic: h(8), Pessimistic: h(2)}}, "inverted"},
		{"cycle", []Activity{
			{Name: "A", Duration: h(1), Preds: []string{"B"}},
			{Name: "B", Duration: h(1), Preds: []string{"A"}},
		}, "cycle"},
	}
	for _, tc := range cases {
		_, err := NewNetwork(tc.acts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestAnalyzeDiamond(t *testing.T) {
	r := analyze(t, diamond())
	if r.Duration != h(32) {
		t.Fatalf("project duration = %v, want 32h", r.Duration)
	}
	want := []string{"A", "C", "D"}
	if len(r.CriticalPath) != 3 {
		t.Fatalf("critical path = %v", r.CriticalPath)
	}
	for i, name := range want {
		if r.CriticalPath[i] != name {
			t.Fatalf("critical path = %v, want %v", r.CriticalPath, want)
		}
	}
	b := r.Timing("B")
	if b.Slack != h(8) || b.Critical {
		t.Fatalf("B timing = %+v, want 8h slack non-critical", b)
	}
	for _, name := range want {
		tm := r.Timing(name)
		if tm.Slack != 0 || !tm.Critical {
			t.Fatalf("%s should be critical with zero slack: %+v", name, tm)
		}
	}
	if r.Timing("C").EarlyStart != h(8) || r.Timing("C").EarlyFinish != h(24) {
		t.Fatalf("C timing = %+v", r.Timing("C"))
	}
	if r.Timing("B").LateStart != h(16) {
		t.Fatalf("B late start = %v, want 16h", r.Timing("B").LateStart)
	}
	if r.Timing("missing") != nil {
		t.Fatal("Timing for missing returned non-nil")
	}
}

func TestAnalyzeSingle(t *testing.T) {
	r := analyze(t, []Activity{{Name: "only", Duration: h(5)}})
	if r.Duration != h(5) || len(r.CriticalPath) != 1 || r.CriticalPath[0] != "only" {
		t.Fatalf("result = %+v", r)
	}
}

func TestAnalyzeParallelChains(t *testing.T) {
	r := analyze(t, []Activity{
		{Name: "a1", Duration: h(4)},
		{Name: "a2", Duration: h(4), Preds: []string{"a1"}},
		{Name: "b1", Duration: h(10)},
	})
	if r.Duration != h(10) {
		t.Fatalf("duration = %v", r.Duration)
	}
	if len(r.CriticalPath) != 1 || r.CriticalPath[0] != "b1" {
		t.Fatalf("critical path = %v", r.CriticalPath)
	}
	if r.Timing("a1").Slack != h(2) || r.Timing("a2").Slack != h(2) {
		t.Fatalf("slacks = %v %v", r.Timing("a1").Slack, r.Timing("a2").Slack)
	}
}

func TestVarianceAndProbability(t *testing.T) {
	acts := []Activity{
		{Name: "A", Duration: h(8), Optimistic: h(5), Pessimistic: h(17)},
		{Name: "B", Duration: h(8), Optimistic: h(2), Pessimistic: h(14)},
	}
	acts[1].Preds = []string{"A"}
	r := analyze(t, acts)
	// Variance = ((17-5)/6)² + ((14-2)/6)² = 4 + 4 = 8 h².
	if math.Abs(r.Variance-8) > 1e-9 {
		t.Fatalf("variance = %v, want 8", r.Variance)
	}
	// At the mean the probability is 0.5.
	if p := r.CompletionProbability(h(16)); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(16h) = %v, want 0.5", p)
	}
	if p := r.CompletionProbability(h(30)); p < 0.99 {
		t.Fatalf("P(30h) = %v, want ~1", p)
	}
	if p := r.CompletionProbability(h(2)); p > 0.01 {
		t.Fatalf("P(2h) = %v, want ~0", p)
	}
}

func TestZeroVarianceStep(t *testing.T) {
	r := analyze(t, diamond())
	if r.Variance != 0 {
		t.Fatalf("variance = %v", r.Variance)
	}
	if r.CompletionProbability(h(32)) != 1 || r.CompletionProbability(h(31)) != 0 {
		t.Fatal("zero-variance probability not a step at the mean")
	}
}

// Property: on random chains, project duration is the sum of durations and
// every activity is critical.
func TestChainProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 12 {
			durs = durs[:12]
		}
		var acts []Activity
		var total time.Duration
		for i, d := range durs {
			dur := time.Duration(int(d)%20+1) * time.Hour
			total += dur
			a := Activity{Name: string(rune('a' + i)), Duration: dur}
			if i > 0 {
				a.Preds = []string{string(rune('a' + i - 1))}
			}
			acts = append(acts, a)
		}
		n, err := NewNetwork(acts)
		if err != nil {
			return false
		}
		r, err := n.Analyze()
		if err != nil {
			return false
		}
		if r.Duration != total || len(r.CriticalPath) != len(acts) {
			return false
		}
		for _, tm := range r.Timings {
			if !tm.Critical || tm.Slack != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: slack is never negative and EarlyFinish-EarlyStart equals the
// duration for arbitrary two-layer networks.
func TestTimingInvariants(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%6) + 1
		acts := []Activity{{Name: "src", Duration: h(3)}}
		for i := 0; i < width; i++ {
			acts = append(acts, Activity{
				Name: "mid" + string(rune('a'+i)), Duration: h(i + 1),
				Preds: []string{"src"},
			})
		}
		n, err := NewNetwork(acts)
		if err != nil {
			return false
		}
		r, err := n.Analyze()
		if err != nil {
			return false
		}
		for i, tm := range r.Timings {
			if tm.Slack < 0 {
				return false
			}
			if tm.EarlyFinish-tm.EarlyStart != acts[i].Duration {
				return false
			}
			if tm.LateFinish-tm.LateStart != acts[i].Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
