package export

import (
	"strings"
	"testing"
	"time"

	"flowsched/internal/design"
	"flowsched/internal/flow"
	"flowsched/internal/meta"
	"flowsched/internal/sched"
	"flowsched/internal/schema"
	"flowsched/internal/store"
	"flowsched/internal/vclock"
)

var t0 = vclock.Epoch

const fig4 = `
schema circuit
data netlist, stimuli, performance
tool editor, simulator
rule Create:   netlist     <- editor()
rule Simulate: performance <- simulator(netlist, stimuli)
`

type fixture struct {
	sp   *sched.Space
	exec *meta.Space
	plan sched.Plan
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sch := schema.MustParse(fig4)
	db := store.NewDB()
	exec, err := meta.NewSpace(db, sch)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.NewSpace(db, sch, vclock.Standard())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := flow.FromSchema(sch)
	tree, _ := g.Extract("performance")
	est := sched.Fixed{ByActivity: map[string]time.Duration{
		"Create": 16 * time.Hour, "Simulate": 8 * time.Hour,
	}}
	res, err := sp.Plan(tree, t0, est, sched.PlanOptions{
		Assignments: map[string][]string{"Create": {"ewj"}, "Simulate": {"ewj", "jbb"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sp: sp, exec: exec, plan: res.Plan}
}

func TestPlanCSV(t *testing.T) {
	fx := newFixture(t)
	out, err := PlanCSV(fx.sp, &fx.plan)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "activity,resources,estimate_hours") {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.Contains(lines[1], "Create,ewj,16.00,1995-06-05T09:00") {
		t.Fatalf("Create row = %s", lines[1])
	}
	if !strings.Contains(lines[2], "ewj;jbb") {
		t.Fatalf("Simulate resources = %s", lines[2])
	}
	if _, err := PlanCSV(nil, &fx.plan); err == nil {
		t.Fatal("nil space accepted")
	}
}

func TestMPX(t *testing.T) {
	fx := newFixture(t)
	out, err := MPX(fx.sp, &fx.plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "MPX,flowsched,4.0\n") {
		t.Fatalf("header:\n%s", out)
	}
	if !strings.Contains(out, "10,Project,performance,") {
		t.Fatalf("project record missing:\n%s", out)
	}
	// Simulate (task 2) must reference Create (task 1) as predecessor.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "70,2,Simulate") && strings.HasSuffix(line, ",1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("predecessor record missing:\n%s", out)
	}
	if _, err := MPX(fx.sp, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestParseActualsCSV(t *testing.T) {
	src := `activity,actual_start,actual_finish,done
Create,1995-06-05T09:00,1995-06-06T17:00,true
Simulate,1995-06-07T09:00,,false
`
	actuals, err := ParseActualsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(actuals) != 2 {
		t.Fatalf("rows = %d", len(actuals))
	}
	if !actuals[0].Done || actuals[0].Finish.IsZero() {
		t.Fatalf("row 0 = %+v", actuals[0])
	}
	if actuals[1].Done || !actuals[1].Finish.IsZero() {
		t.Fatalf("row 1 = %+v", actuals[1])
	}
}

func TestParseActualsCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad start", "Create,yesterday,,false\n"},
		{"bad finish", "Create,1995-06-05T09:00,soon,false\n"},
		{"bad done", "Create,1995-06-05T09:00,,maybe\n"},
		{"done without finish", "Create,1995-06-05T09:00,,true\n"},
		{"empty activity", ",1995-06-05T09:00,,false\n"},
		{"wrong fields", "Create,1995-06-05T09:00\n"},
	}
	for _, tc := range cases {
		if _, err := ParseActualsCSV(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestApplyActuals(t *testing.T) {
	fx := newFixture(t)
	// Record a real netlist entity the resolver can link to.
	run, _ := fx.exec.BeginRun("Create", "editor#1", "ewj", t0)
	finish := t0.Add(32 * time.Hour)
	fx.exec.FinishRun(run.ID, finish, meta.RunSucceeded)
	ent, _ := fx.exec.RecordEntity("netlist", run.ID, design.Ref{Class: "netlist", Version: 1})

	actuals := []Actual{
		{Activity: "Create", Start: t0, Finish: finish, Done: true},
		{Activity: "Simulate", Start: finish},
	}
	resolve := func(activity string) (string, error) { return ent.ID, nil }
	n, err := ApplyActuals(fx.sp, &fx.plan, actuals, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied = %d", n)
	}
	_, in, _ := fx.sp.Instance(&fx.plan, "Create")
	if !in.Done || in.LinkedEntity != ent.ID {
		t.Fatalf("Create = %+v", in)
	}
	_, sim, _ := fx.sp.Instance(&fx.plan, "Simulate")
	if !sim.Started() || sim.Done {
		t.Fatalf("Simulate = %+v", sim)
	}
	// Round trip: the applied actuals show up in a fresh CSV export.
	out, _ := PlanCSV(fx.sp, &fx.plan)
	if !strings.Contains(out, "true") {
		t.Fatalf("export missing applied completion:\n%s", out)
	}
}

func TestApplyActualsErrors(t *testing.T) {
	fx := newFixture(t)
	resolve := func(string) (string, error) { return "ghost/1", nil }
	if _, err := ApplyActuals(nil, &fx.plan, nil, resolve); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := ApplyActuals(fx.sp, &fx.plan, nil, nil); err == nil {
		t.Fatal("nil resolver accepted")
	}
	bad := []Actual{{Activity: "Ghost", Start: t0}}
	if _, err := ApplyActuals(fx.sp, &fx.plan, bad, resolve); err == nil {
		t.Fatal("unknown activity accepted")
	}
	// Resolver pointing at a missing entity fails cleanly.
	done := []Actual{{Activity: "Create", Start: t0, Finish: t0.Add(time.Hour), Done: true}}
	if _, err := ApplyActuals(fx.sp, &fx.plan, done, resolve); err == nil {
		t.Fatal("dangling entity accepted")
	}
}
