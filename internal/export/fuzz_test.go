package export

import (
	"strings"
	"testing"
)

// FuzzParseActualsCSV checks the actuals importer never panics and never
// returns rows that violate its own invariants.
func FuzzParseActualsCSV(f *testing.F) {
	seeds := []string{
		"",
		"activity,actual_start,actual_finish,done\n",
		"Create,1995-06-05T09:00,1995-06-06T17:00,true\n",
		"Create,1995-06-05T09:00,,false\n",
		"Create,bogus,,false\n",
		"a,b,c\n",
		"\"quoted,name\",1995-06-05T09:00,,false\n",
		"Create,1995-06-05T09:00,,true\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		actuals, err := ParseActualsCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, a := range actuals {
			if a.Activity == "" {
				t.Fatalf("accepted empty activity from %q", src)
			}
			if a.Start.IsZero() {
				t.Fatalf("accepted zero start from %q", src)
			}
			if a.Done && a.Finish.IsZero() {
				t.Fatalf("accepted done-without-finish from %q", src)
			}
		}
	})
}
