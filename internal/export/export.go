// Package export bridges the integrated system to conventional
// project-management tooling — the MacProject / Microsoft Project world
// the paper's introduction describes. Plans and status reports export as
// CSV and as a minimal MPX-style record stream (the 1990s interchange
// format of Microsoft Project); actual dates collected by hand can be
// imported back and applied to the schedule space, which makes the
// separate-channel baseline (package baseline) runnable against real
// files, not just simulated meetings.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"flowsched/internal/sched"
)

const timeLayout = "2006-01-02T15:04"

// PlanCSV renders a plan's schedule instances as CSV:
// activity,resources,estimate_hours,planned_start,planned_finish,
// actual_start,actual_finish,done.
func PlanCSV(sp *sched.Space, p *sched.Plan) (string, error) {
	if sp == nil || p == nil {
		return "", fmt.Errorf("export: nil space or plan")
	}
	_, insts, err := sp.Instances(p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write([]string{"activity", "resources", "estimate_hours",
		"planned_start", "planned_finish", "actual_start", "actual_finish", "done"}); err != nil {
		return "", err
	}
	for _, in := range insts {
		rec := []string{
			in.Activity,
			strings.Join(in.Resources, ";"),
			strconv.FormatFloat(in.EstWork.Hours(), 'f', 2, 64),
			in.PlannedStart.Format(timeLayout),
			in.PlannedFinish.Format(timeLayout),
			fmtTime(in.ActualStart),
			fmtTime(in.ActualFinish),
			strconv.FormatBool(in.Done),
		}
		if err := w.Write(rec); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(timeLayout)
}

// MPX renders a plan as a minimal MPX-style record stream: one header
// record, one task record per activity with unique ID, name, duration,
// dates, and predecessor IDs — enough for a legacy PM tool importer.
func MPX(sp *sched.Space, p *sched.Plan) (string, error) {
	if sp == nil || p == nil {
		return "", fmt.Errorf("export: nil space or plan")
	}
	_, insts, err := sp.Instances(p)
	if err != nil {
		return "", err
	}
	id := make(map[string]int, len(insts))
	for i, in := range insts {
		id[in.Activity] = i + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MPX,flowsched,4.0\n")
	fmt.Fprintf(&b, "10,Project,%s,%s\n", strings.Join(p.Targets, ";"),
		p.Start.Format(timeLayout))
	for _, in := range insts {
		var preds []string
		rule := sp.Schema.RuleByActivity(in.Activity)
		if rule != nil {
			for _, input := range rule.Inputs {
				if prod := sp.Schema.Producer(input); prod != nil {
					if pid, ok := id[prod.Activity]; ok {
						preds = append(preds, strconv.Itoa(pid))
					}
				}
			}
		}
		fmt.Fprintf(&b, "70,%d,%s,%.2fh,%s,%s,%s\n",
			id[in.Activity], in.Activity, in.EstWork.Hours(),
			in.PlannedStart.Format(timeLayout), in.PlannedFinish.Format(timeLayout),
			strings.Join(preds, ";"))
	}
	return b.String(), nil
}

// Actual is one manually collected status row.
type Actual struct {
	Activity string
	Start    time.Time
	Finish   time.Time // zero if not finished
	Done     bool
}

// ParseActualsCSV reads rows of activity,actual_start,actual_finish,done
// (header optional). Empty finish means in progress.
func ParseActualsCSV(r io.Reader) ([]Actual, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: parse actuals: %w", err)
	}
	var out []Actual
	for i, rec := range recs {
		if i == 0 && rec[0] == "activity" {
			continue // header
		}
		a := Actual{Activity: strings.TrimSpace(rec[0])}
		if a.Activity == "" {
			return nil, fmt.Errorf("export: row %d: empty activity", i+1)
		}
		if a.Start, err = time.Parse(timeLayout, strings.TrimSpace(rec[1])); err != nil {
			return nil, fmt.Errorf("export: row %d: bad start: %w", i+1, err)
		}
		if f := strings.TrimSpace(rec[2]); f != "" {
			if a.Finish, err = time.Parse(timeLayout, f); err != nil {
				return nil, fmt.Errorf("export: row %d: bad finish: %w", i+1, err)
			}
		}
		if a.Done, err = strconv.ParseBool(strings.TrimSpace(rec[3])); err != nil {
			return nil, fmt.Errorf("export: row %d: bad done flag: %w", i+1, err)
		}
		if a.Done && a.Finish.IsZero() {
			return nil, fmt.Errorf("export: row %d: done without finish date", i+1)
		}
		out = append(out, a)
	}
	return out, nil
}

// EntityResolver supplies the final entity instance ID for a completed
// activity, so imported completions still create the paper's
// schedule↔entity link.
type EntityResolver func(activity string) (entityID string, err error)

// ApplyActuals applies manually collected status to a plan: starts are
// recorded, completed activities are linked via the resolver. It returns
// how many rows were applied.
func ApplyActuals(sp *sched.Space, p *sched.Plan, actuals []Actual, resolve EntityResolver) (int, error) {
	if sp == nil || p == nil {
		return 0, fmt.Errorf("export: nil space or plan")
	}
	if resolve == nil {
		return 0, fmt.Errorf("export: nil entity resolver")
	}
	applied := 0
	for _, a := range actuals {
		if err := sp.MarkStarted(p, a.Activity, a.Start); err != nil {
			return applied, fmt.Errorf("export: %s: %w", a.Activity, err)
		}
		if a.Done {
			entityID, err := resolve(a.Activity)
			if err != nil {
				return applied, fmt.Errorf("export: resolve %s: %w", a.Activity, err)
			}
			if err := sp.Complete(p, a.Activity, entityID, a.Finish); err != nil {
				return applied, fmt.Errorf("export: %s: %w", a.Activity, err)
			}
		}
		applied++
	}
	return applied, nil
}
