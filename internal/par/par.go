// Package par provides a small bounded worker pool for data-parallel
// sweeps over independent work items. It is the shared concurrency
// substrate for the repo's compute-heavy paths (Monte-Carlo risk
// shards, workload and report sweeps): callers describe work as a
// function of an index, the pool bounds how many indices run at once,
// and ForEach blocks until every index has been processed.
//
// The pool is deliberately dumb: no queues, no futures. Work is claimed
// index-by-index from an atomic counter, so items of uneven cost
// balance across workers automatically. A Pool is stateless between
// calls and safe for concurrent use; the zero-cost way to force serial
// execution is New(1), which runs every index in order on the calling
// goroutine.
//
// Cancellation is cooperative and claim-granular: the Ctx variants stop
// claiming new indices once the context is done, wait for in-flight
// items to return, and report ctx.Err(). Items already running are not
// interrupted — work functions that run long per index should check the
// context themselves.
//
// A panicking work item does not crash the process from an anonymous
// goroutine: the panic is recovered, attributed to its index, and
// re-raised on the caller's goroutine as a *PanicError.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flowsched/internal/obs"
)

// PanicError is re-raised on the ForEach caller when a work item
// panics: it attributes the panic to the failing index and preserves
// the original value and stack.
type PanicError struct {
	// Index is the work-item index whose fn panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: work item %d panicked: %v", e.Index, e.Value)
}

// Pool is a reusable bounded worker pool.
type Pool struct {
	workers int

	// Cached observability handles (nil = uninstrumented, no-op).
	items  *obs.Counter   // par_items_total: work items claimed
	active *obs.Gauge     // par_active_workers: currently running workers
	wait   *obs.Histogram // par_claim_wait_seconds: ForEach start -> each worker's first claim
}

// New returns a pool running at most workers items concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0), i.e. all usable cores.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Instrument attaches observability to the pool (pool occupancy, items
// claimed, claim wait) and returns it for chaining. A nil Obs leaves
// the pool uninstrumented.
func (p *Pool) Instrument(o *obs.Obs) *Pool {
	m := o.Metrics()
	if m != nil {
		p.items = m.Counter("par_items_total")
		p.active = m.Gauge("par_active_workers")
		p.wait = m.Histogram("par_claim_wait_seconds", nil)
	}
	return p
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), using at most
// p.Workers() goroutines, and blocks until all calls have returned.
// With one worker (or n == 1) the indices run in order on the calling
// goroutine. If fn panics, the panic is recovered on the worker,
// remaining items may be skipped, and a *PanicError naming the lowest
// observed failing index is re-raised on the caller's goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.forEach(nil, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done
// no further indices are claimed, in-flight items drain, and ctx.Err()
// is returned. A nil ctx (or one that never cancels) behaves exactly
// like ForEach and returns nil. Which trailing indices were skipped on
// cancellation is unspecified — callers must treat a non-nil return as
// "results incomplete".
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.forEach(ctx, n, fn)
}

func (p *Pool) forEach(ctx context.Context, n int, fn func(i int)) error {
	done := func() bool { return false }
	if ctx != nil {
		d := ctx.Done()
		done = func() bool {
			select {
			case <-d:
				return true
			default:
				return false
			}
		}
	}
	var t0 time.Time
	if p.wait != nil {
		t0 = time.Now()
	}
	run := func(i int) (pe *PanicError) {
		defer func() {
			if v := recover(); v != nil {
				pe = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		p.items.Inc()
		fn(i)
		return nil
	}

	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		p.active.Add(1)
		defer p.active.Add(-1)
		if p.wait != nil && n > 0 {
			p.wait.Observe(time.Since(t0).Seconds())
		}
		for i := 0; i < n; i++ {
			if done() {
				return ctx.Err()
			}
			if pe := run(i); pe != nil {
				panic(pe)
			}
		}
		return nil
	}

	var next atomic.Int64
	var mu sync.Mutex
	var first *PanicError
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			p.active.Add(1)
			defer p.active.Add(-1)
			if p.wait != nil {
				p.wait.Observe(time.Since(t0).Seconds())
			}
			for {
				if done() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if pe := run(i); pe != nil {
					mu.Lock()
					if first == nil || pe.Index < first.Index {
						first = pe
					}
					mu.Unlock()
					// Stop claiming further items on this worker; the
					// other workers drain what they already claimed.
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// ForEachErr is ForEach for fallible work. Every index runs regardless
// of other indices' failures (results stay deterministic under any
// worker count), and the error for the lowest failing index is
// returned.
func (p *Pool) ForEachErr(n int, fn func(i int) error) error {
	return p.ForEachErrCtx(nil, n, fn)
}

// ForEachErrCtx is ForEachErr with cooperative cancellation. If the
// context is done before every index ran, ctx.Err() is returned (it
// takes precedence over item errors, since the item error set is
// incomplete and nondeterministic under cancellation).
func (p *Pool) ForEachErrCtx(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	if err := p.forEach(ctx, n, func(i int) {
		errs[i] = fn(i)
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
