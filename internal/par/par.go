// Package par provides a small bounded worker pool for data-parallel
// sweeps over independent work items. It is the shared concurrency
// substrate for the repo's compute-heavy paths (Monte-Carlo risk
// shards, workload and report sweeps): callers describe work as a
// function of an index, the pool bounds how many indices run at once,
// and ForEach blocks until every index has been processed.
//
// The pool is deliberately dumb: no queues, no futures, no context
// plumbing. Work is claimed index-by-index from an atomic counter, so
// items of uneven cost balance across workers automatically. A Pool is
// stateless between calls and safe for concurrent use; the zero-cost
// way to force serial execution is New(1), which runs every index in
// order on the calling goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable bounded worker pool.
type Pool struct {
	workers int
}

// New returns a pool running at most workers items concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0), i.e. all usable cores.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), using at most
// p.Workers() goroutines, and blocks until all calls have returned.
// With one worker (or n == 1) the indices run in order on the calling
// goroutine. fn must not panic: a panic on a pooled goroutine crashes
// the program, as with any unrecovered goroutine panic.
func (p *Pool) ForEach(n int, fn func(i int)) {
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work. Every index runs regardless
// of other indices' failures (results stay deterministic under any
// worker count), and the error for the lowest failing index is
// returned.
func (p *Pool) ForEachErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	p.ForEach(n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
