package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 7, 100} {
			counts := make([]int32, n)
			New(workers).ForEach(n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	New(1).ForEach(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5", len(order))
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var running, peak atomic.Int32
	New(workers).ForEach(64, func(i int) {
		now := running.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		running.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, bound is %d", p, workers)
	}
}

func TestNewDefaultsToAllCores(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("negative workers = %d", w)
	}
	if w := New(6).Workers(); w != 6 {
		t.Fatalf("explicit workers = %d", w)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEachErr(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestForEachErrAllIndicesRunDespiteFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := New(4).ForEachErr(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20 despite early failure", ran.Load())
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	if err := New(2).ForEachErr(8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
