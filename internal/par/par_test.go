package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"flowsched/internal/obs"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 7, 100} {
			counts := make([]int32, n)
			New(workers).ForEach(n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	New(1).ForEach(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5", len(order))
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var running, peak atomic.Int32
	New(workers).ForEach(64, func(i int) {
		now := running.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		running.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, bound is %d", p, workers)
	}
}

func TestNewDefaultsToAllCores(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("negative workers = %d", w)
	}
	if w := New(6).Workers(); w != 6 {
		t.Fatalf("explicit workers = %d", w)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEachErr(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestForEachErrAllIndicesRunDespiteFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := New(4).ForEachErr(20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20 despite early failure", ran.Load())
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	if err := New(2).ForEachErr(8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// capturePanic runs f and returns the recovered panic value.
func capturePanic(t *testing.T, f func()) any {
	t.Helper()
	var got any
	func() {
		defer func() { got = recover() }()
		f()
	}()
	if got == nil {
		t.Fatal("expected a panic")
	}
	return got
}

func TestForEachRecoversWorkerPanicWithIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := capturePanic(t, func() {
			New(workers).ForEach(10, func(i int) {
				if i == 6 {
					panic("kaboom")
				}
			})
		})
		pe, ok := got.(*PanicError)
		if !ok {
			t.Fatalf("workers=%d: panic value %T, want *PanicError", workers, got)
		}
		if pe.Index != 6 || pe.Value != "kaboom" {
			t.Fatalf("workers=%d: PanicError = index %d value %v", workers, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("workers=%d: missing stack trace", workers)
		}
		if !strings.Contains(pe.Error(), "work item 6") {
			t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
		}
	}
}

func TestForEachPanicReportsLowestObservedIndex(t *testing.T) {
	// Serial: index 2 panics first and is reported immediately.
	got := capturePanic(t, func() {
		New(1).ForEach(10, func(i int) {
			if i >= 2 {
				panic(i)
			}
		})
	})
	if pe := got.(*PanicError); pe.Index != 2 {
		t.Fatalf("serial: index %d, want 2", pe.Index)
	}
	// Parallel with every item panicking: the reported index is the
	// lowest among the panics actually observed, and the pool must not
	// deadlock or crash the process.
	got = capturePanic(t, func() {
		New(4).ForEach(10, func(i int) { panic(i) })
	})
	pe := got.(*PanicError)
	if pe.Index < 0 || pe.Index >= 10 {
		t.Fatalf("parallel: index %d out of range", pe.Index)
	}
}

func TestForEachPanicDoesNotPoisonPool(t *testing.T) {
	p := New(4)
	capturePanic(t, func() {
		p.ForEach(8, func(i int) { panic("once") })
	})
	// The same pool keeps working after a panic.
	var ran atomic.Int32
	p.ForEach(8, func(int) { ran.Add(1) })
	if ran.Load() != 8 {
		t.Fatalf("pool ran %d of 8 after recovery", ran.Load())
	}
}

func TestInstrumentedPoolCountsWork(t *testing.T) {
	o := obs.New()
	p := New(3).Instrument(o)
	var ran atomic.Int32
	p.ForEach(32, func(int) { ran.Add(1) })
	p.ForEach(10, func(int) { ran.Add(1) })
	if ran.Load() != 42 {
		t.Fatalf("ran %d of 42", ran.Load())
	}
	m := o.Metrics()
	if got := m.Counter("par_items_total").Value(); got != 42 {
		t.Fatalf("par_items_total = %d, want 42", got)
	}
	if got := m.Gauge("par_active_workers").Value(); got != 0 {
		t.Fatalf("par_active_workers = %d after ForEach, want 0", got)
	}
	// Claim wait is observed once per worker per ForEach (3 workers x 2
	// calls), not per item — the histogram tracks pool spin-up, and a
	// per-item clock stamp would dominate cheap work items.
	if got := m.Histogram("par_claim_wait_seconds", nil).Count(); got != 6 {
		t.Fatalf("par_claim_wait_seconds count = %d, want 6", got)
	}
}

func TestUninstrumentedPoolIsNoop(t *testing.T) {
	// Instrument(nil) and a plain pool behave identically.
	var ran atomic.Int32
	New(2).Instrument(nil).ForEach(5, func(int) { ran.Add(1) })
	if ran.Load() != 5 {
		t.Fatalf("ran %d of 5", ran.Load())
	}
}

func TestForEachCtxNilAndLiveContextsRunEverything(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		for _, workers := range []int{1, 4} {
			counts := make([]int32, 50)
			if err := New(workers).ForEachCtx(ctx, 50, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d: err = %v", workers, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
				}
			}
		}
	}
}

func TestForEachCtxStopsClaimingOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := New(workers).ForEachCtx(ctx, 10_000, func(i int) {
			if ran.Add(1) == int32(workers) {
				cancel() // cancel while items are in flight
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Fatalf("workers=%d: every index ran despite cancellation", workers)
		}
		cancel()
	}
}

func TestForEachCtxPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := New(4).ForEachCtx(ctx, 100, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-canceled context", ran.Load())
	}
}

func TestForEachErrCtxCancelTakesPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := New(1).ForEachErrCtx(ctx, 10, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (item errors are incomplete under cancel)", err)
	}
}
