package trace

import (
	"fmt"
	"strings"
	"testing"
)

// buildASIC records a small VOV-style session:
//
//	rtl --synth--> netlist --route--> layout --drc--> report
//	                  \--sta(netlist, sdc)--> timing
func buildASIC(t *testing.T) *Trace {
	t.Helper()
	tr := New()
	for _, d := range []string{"rtl", "sdc"} {
		if err := tr.AddData(d); err != nil {
			t.Fatal(err)
		}
	}
	steps := []struct {
		tool    string
		in, out []string
	}{
		{"synth", []string{"rtl"}, []string{"netlist"}},
		{"route", []string{"netlist"}, []string{"layout"}},
		{"drc", []string{"layout"}, []string{"report"}},
		{"sta", []string{"netlist", "sdc"}, []string{"timing"}},
	}
	for _, s := range steps {
		if _, err := tr.Record(s.tool, s.in, s.out); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAddDataValidation(t *testing.T) {
	tr := New()
	if err := tr.AddData(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := tr.AddData("x"); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddData("x"); err != nil {
		t.Fatal("redeclaration should be a no-op")
	}
}

func TestRecordValidation(t *testing.T) {
	tr := New()
	tr.AddData("in")
	if _, err := tr.Record("", []string{"in"}, []string{"out"}); err == nil {
		t.Fatal("empty tool accepted")
	}
	if _, err := tr.Record("t", []string{"ghost"}, []string{"out"}); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := tr.Record("t", []string{"in"}, nil); err == nil {
		t.Fatal("no outputs accepted")
	}
	if _, err := tr.Record("t", []string{"in"}, []string{""}); err == nil {
		t.Fatal("empty output accepted")
	}
}

func TestRecordBuildsGraph(t *testing.T) {
	tr := buildASIC(t)
	if got := len(tr.Invocations()); got != 4 {
		t.Fatalf("invocations = %d", got)
	}
	if got := tr.Data(); len(got) != 6 {
		t.Fatalf("data nodes = %v", got)
	}
	p := tr.Producer("layout")
	if p == nil || p.Tool != "route" {
		t.Fatalf("Producer(layout) = %+v", p)
	}
	if tr.Producer("rtl") != nil {
		t.Fatal("designer data has a producer")
	}
	for _, inv := range tr.Invocations() {
		if !inv.UpToDate {
			t.Fatalf("fresh invocation stale: %+v", inv)
		}
	}
}

func TestMarkChangedPropagates(t *testing.T) {
	tr := buildASIC(t)
	affected, err := tr.MarkChanged("rtl")
	if err != nil {
		t.Fatal(err)
	}
	// Everything downstream of rtl: synth(0), route(1), drc(2), sta(3).
	if len(affected) != 4 {
		t.Fatalf("affected = %v", affected)
	}
	if got := tr.OutOfDate(); len(got) != 4 {
		t.Fatalf("OutOfDate = %v", got)
	}
}

func TestMarkChangedPartial(t *testing.T) {
	tr := buildASIC(t)
	affected, err := tr.MarkChanged("sdc")
	if err != nil {
		t.Fatal(err)
	}
	// Only sta consumes sdc.
	if len(affected) != 1 || tr.Invocations()[affected[0]].Tool != "sta" {
		t.Fatalf("affected = %v", affected)
	}
	if _, err := tr.MarkChanged("ghost"); err == nil {
		t.Fatal("unknown data accepted")
	}
}

func TestRetraceOrder(t *testing.T) {
	tr := buildASIC(t)
	tr.MarkChanged("rtl")
	var order []string
	redone, err := tr.Retrace(func(inv *Invocation) error {
		order = append(order, inv.Tool)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(redone) != 4 {
		t.Fatalf("redone = %v", redone)
	}
	// Dependency order: synth before route before drc; sta after synth.
	idx := map[string]int{}
	for i, tool := range order {
		idx[tool] = i
	}
	if !(idx["synth"] < idx["route"] && idx["route"] < idx["drc"] && idx["synth"] < idx["sta"]) {
		t.Fatalf("retrace order = %v", order)
	}
	if len(tr.OutOfDate()) != 0 {
		t.Fatal("stale invocations remain after retrace")
	}
}

func TestRetraceErrors(t *testing.T) {
	tr := buildASIC(t)
	if _, err := tr.Retrace(nil); err == nil {
		t.Fatal("nil runner accepted")
	}
	tr.MarkChanged("rtl")
	n := 0
	_, err := tr.Retrace(func(inv *Invocation) error {
		n++
		if n == 2 {
			return fmt.Errorf("license lost")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "license lost") {
		t.Fatalf("err = %v", err)
	}
	// One invocation was redone, three remain stale.
	if got := len(tr.OutOfDate()); got != 3 {
		t.Fatalf("OutOfDate after failed retrace = %d", got)
	}
}

func TestReproducedOutputChangesProducer(t *testing.T) {
	tr := buildASIC(t)
	// Re-run synth: the new invocation now owns netlist.
	inv, err := tr.Record("synth", []string{"rtl"}, []string{"netlist"})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr.Producer("netlist"); p.ID != inv.ID {
		t.Fatalf("producer not updated: %+v", p)
	}
	// Changing rtl still reaches downstream consumers through the new
	// producer's outputs.
	affected, _ := tr.MarkChanged("rtl")
	if len(affected) < 2 {
		t.Fatalf("affected = %v", affected)
	}
}
